// Figure 3: averaged percentage error in #edges (top), d_max (middle) and
// Gini coefficient (bottom) for the four generators on the four skewed
// quality datasets:
//   O(m)            - Chung-Lu multigraph (loops/multi-edges retained)
//   O(m) simple     - erased Chung-Lu
//   O(n^2) edgeskip - Bernoulli Chung-Lu via edge skipping
//   ours            - Algorithm IV.1 (probability solver + edge skip + 1
//                     swap iteration, as in the paper's comparison)
//
// Expected shape (paper VIII-A): the O(m) model is closest on most
// metrics except where multi-edges distort it; among SIMPLE generators,
// ours wins #edges and d_max decisively; Gini keeps a low-degree error
// floor for every expectation-matching generator.

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/metrics.hpp"
#include "core/null_model.hpp"
#include "gen/chung_lu.hpp"
#include "gen/datasets.hpp"

int main() {
  using namespace nullgraph;
  const int trials = 5;
  struct Row {
    std::string dataset;
    QualityErrors om, om_simple, edgeskip, ours;
  };
  std::vector<Row> rows;

  for (const DatasetSpec& spec : quality_datasets()) {
    const DegreeDistribution dist = build_dataset(spec);
    std::vector<QualityErrors> om, om_simple, edgeskip, ours;
    for (int t = 0; t < trials; ++t) {
      const std::uint64_t seed = 700 + static_cast<std::uint64_t>(t);
      om.push_back(
          quality_errors(dist, chung_lu_multigraph(dist, {.seed = seed})));
      om_simple.push_back(
          quality_errors(dist, erased_chung_lu(dist, {.seed = seed})));
      edgeskip.push_back(
          quality_errors(dist, bernoulli_chung_lu(dist, seed)));
      GenerateConfig config;
      config.seed = seed;
      config.swap_iterations = 1;
      ours.push_back(
          quality_errors(dist, generate_null_graph(dist, config).edges));
    }
    rows.push_back({spec.name, average(om), average(om_simple),
                    average(edgeskip), average(ours)});
  }

  const auto print_metric = [&](const char* title,
                                auto member) {
    std::printf("\n%% error in %s\n", title);
    std::printf("%-12s %12s %14s %18s %12s\n", "dataset", "O(m)",
                "O(m) simple", "O(n^2) edgeskip", "ours");
    for (const Row& row : rows) {
      std::printf("%-12s %12.3f %14.3f %18.3f %12.3f\n", row.dataset.c_str(),
                  100 * (row.om.*member), 100 * (row.om_simple.*member),
                  100 * (row.edgeskip.*member), 100 * (row.ours.*member));
    }
  };

  std::printf("Figure 3: output quality vs input distribution "
              "(%d trials each, 1 swap iteration)\n", trials);
  print_metric("# edges", &QualityErrors::edge_count);
  print_metric("d_max", &QualityErrors::max_degree);
  print_metric("Gini coefficient", &QualityErrors::gini);
  return 0;
}
