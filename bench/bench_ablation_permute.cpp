// Ablation: random permutation algorithm. The paper reports an order of
// magnitude gained by the Shun et al. approach over other parallel
// permutation libraries. Compares: serial Knuth shuffle, std::shuffle, the
// reservation-based parallel permutation, and the permutation cost
// embedded in one swap iteration.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <numeric>
#include <random>

#include "permute/permutation.hpp"

namespace {

using namespace nullgraph;

void bm_serial_knuth(benchmark::State& state) {
  std::vector<std::uint64_t> values(state.range(0));
  std::iota(values.begin(), values.end(), 0u);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    serial_permute(std::span<std::uint64_t>(values), seed++);
    benchmark::DoNotOptimize(values.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void bm_std_shuffle(benchmark::State& state) {
  std::vector<std::uint64_t> values(state.range(0));
  std::iota(values.begin(), values.end(), 0u);
  std::mt19937_64 rng(1);
  for (auto _ : state) {
    std::shuffle(values.begin(), values.end(), rng);
    benchmark::DoNotOptimize(values.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void bm_parallel_reservation(benchmark::State& state) {
  std::vector<std::uint64_t> values(state.range(0));
  std::iota(values.begin(), values.end(), 0u);
  std::uint64_t seed = 1;
  std::size_t rounds = 0;
  for (auto _ : state) {
    rounds = parallel_permute(std::span<std::uint64_t>(values), seed++).rounds;
    benchmark::DoNotOptimize(values.data());
  }
  state.counters["rounds"] = benchmark::Counter(static_cast<double>(rounds));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void bm_target_generation_only(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto targets = knuth_targets(static_cast<std::size_t>(state.range(0)),
                                 seed++);
    benchmark::DoNotOptimize(targets.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

}  // namespace

BENCHMARK(bm_serial_knuth)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 22)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(bm_std_shuffle)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 22)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(bm_parallel_reservation)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 22)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(bm_target_generation_only)->Arg(1 << 20)->Arg(1 << 22)
    ->Unit(benchmark::kMillisecond);
