// Figure 2: output error in the degree distribution when generating a null
// model with the ERASED configuration/Chung-Lu approach on the as20-like
// distribution. One row per degree class: target count, realized count
// (averaged over trials), relative error — the paper plots this error
// against degree. Our generator is shown alongside as the fix.

#include <cstdio>
#include <vector>

#include "core/null_model.hpp"
#include "gen/chung_lu.hpp"
#include "gen/datasets.hpp"

int main() {
  using namespace nullgraph;
  const DegreeDistribution dist = as20_like();
  const std::uint64_t n = dist.num_vertices();
  const std::uint64_t dmax = dist.max_degree();
  const int trials = 20;

  auto histogram = [&](const EdgeList& edges) {
    std::vector<double> h(dmax + 2, 0.0);
    for (const std::uint64_t d : degrees_of(edges, n))
      h[d <= dmax ? d : dmax + 1] += 1.0;
    return h;
  };

  std::vector<double> erased(dmax + 2, 0.0), ours(dmax + 2, 0.0);
  for (int t = 0; t < trials; ++t) {
    const auto he =
        histogram(erased_chung_lu(dist, {.seed = 50 + static_cast<std::uint64_t>(t)}));
    GenerateConfig config;
    config.seed = 50 + static_cast<std::uint64_t>(t);
    config.swap_iterations = 1;
    const auto ho = histogram(generate_null_graph(dist, config).edges);
    for (std::size_t d = 0; d < he.size(); ++d) {
      erased[d] += he[d] / trials;
      ours[d] += ho[d] / trials;
    }
  }

  std::printf("Figure 2: per-degree output error, erased model vs ours "
              "(as20-like, %d trials)\n", trials);
  std::printf("%-8s %10s %12s %12s %12s %12s\n", "degree", "target",
              "erased", "err_erased", "ours", "err_ours");
  double total_err_erased = 0, total_err_ours = 0, total = 0;
  for (std::size_t c = 0; c < dist.num_classes(); ++c) {
    const std::uint64_t d = dist.degree_of_class(c);
    const double want = static_cast<double>(dist.count_of_class(c));
    const double err_e = std::abs(erased[d] - want) / want;
    const double err_o = std::abs(ours[d] - want) / want;
    total_err_erased += std::abs(erased[d] - want);
    total_err_ours += std::abs(ours[d] - want);
    total += want;
    std::printf("%-8llu %10.0f %12.1f %12.4f %12.1f %12.4f\n",
                static_cast<unsigned long long>(d), want, erased[d], err_e,
                ours[d], err_o);
  }
  std::printf("\naggregate L1 count error: erased %.1f (%.2f%% of n), ours "
              "%.1f (%.2f%% of n)\n",
              total_err_erased, 100 * total_err_erased / total,
              total_err_ours, 100 * total_err_ours / total);
  return 0;
}
