// Table I: test graph characteristics — n, m, d_avg, d_max, |D| — for the
// eight dataset stand-ins, next to the paper's published targets. The
// stand-ins are power-law fits (DESIGN.md, substitutions); big instances
// are built at their default down-scale, so compare SHAPE (d_avg, skew)
// rather than raw n/m for those.
//
// NULLGRAPH_BENCH_SCALE=<f> rescales every instance.

#include <cstdio>

#include "analysis/gini.hpp"
#include "gen/datasets.hpp"

int main() {
  using namespace nullgraph;
  std::printf("Table I: test graph characteristics (stand-ins vs paper)\n");
  std::printf("%-12s | %11s %11s %7s %9s %7s %7s | %11s %11s %9s\n",
              "Network", "n", "m", "d_avg", "d_max", "|D|", "Gini",
              "paper n", "paper m", "paper dmax");
  std::printf("%.*s\n", 126,
              "----------------------------------------------------------"
              "----------------------------------------------------------"
              "----------");
  for (const DatasetSpec& spec : paper_datasets()) {
    const DegreeDistribution dist = build_dataset(spec);
    std::printf("%-12s | %11llu %11llu %7.2f %9llu %7zu %7.3f | %11llu "
                "%11llu %9llu\n",
                spec.name.c_str(),
                static_cast<unsigned long long>(dist.num_vertices()),
                static_cast<unsigned long long>(dist.num_edges()),
                dist.average_degree(),
                static_cast<unsigned long long>(dist.max_degree()),
                dist.num_classes(), gini_coefficient(dist),
                static_cast<unsigned long long>(spec.n),
                static_cast<unsigned long long>(spec.m),
                static_cast<unsigned long long>(spec.dmax));
  }
  return 0;
}
