// Mixing ablation (Sections III-A, IX): how many swap iterations until
// (a) every edge has successfully swapped at least once and (b) the swap
// acceptance rate reaches steady state — across graphs of different
// density and skew. Supports the paper's closing conjecture that required
// iterations track the chance of an unsuccessful swap (density/skew), not
// graph scale.

#include <cstdio>

#include "core/double_edge_swap.hpp"
#include "core/null_model.hpp"
#include "gen/datasets.hpp"
#include "gen/powerlaw.hpp"

int main() {
  using namespace nullgraph;
  struct Instance {
    const char* label;
    DegreeDistribution dist;
  };
  PowerlawParams sparse_flat;
  sparse_flat.n = 100000;
  sparse_flat.gamma = 3.0;
  sparse_flat.dmax = 50;
  PowerlawParams dense_flat = sparse_flat;
  dense_flat.gamma = 1.6;
  dense_flat.dmax = 300;
  const Instance instances[] = {
      {"sparse/flat (n=100k, g=3.0)", powerlaw_distribution(sparse_flat)},
      {"dense/skewed (n=100k, g=1.6)", powerlaw_distribution(dense_flat)},
      {"as20-like (skewed, small)", as20_like()},
      {"Meso-like (dense, tiny)", build_dataset(*find_dataset("Meso"))},
  };

  std::printf("Mixing ablation: swap acceptance and coverage vs iteration\n");
  for (const Instance& instance : instances) {
    GenerateConfig gen_config;
    gen_config.swap_iterations = 0;
    EdgeList edges = generate_null_graph(instance.dist, gen_config).edges;
    const std::size_t m = edges.size();
    std::printf("\n%s  (m=%zu, density=%.2e)\n", instance.label, m,
                2.0 * static_cast<double>(m) /
                    (static_cast<double>(instance.dist.num_vertices()) *
                     static_cast<double>(instance.dist.num_vertices() - 1)));
    std::printf("%-6s %12s %14s\n", "iter", "accept_rate", "cum_coverage");
    std::size_t covered_after = 0;
    for (std::size_t total_iters : {1u, 2u, 4u, 8u, 16u}) {
      EdgeList copy = edges;
      SwapConfig config;
      config.iterations = total_iters;
      config.seed = 99;
      config.track_swapped_edges = true;
      const SwapStats stats = swap_edges(copy, config);
      const SwapIterationStats& last = stats.iterations.back();
      const double rate = static_cast<double>(last.swapped) /
                          static_cast<double>(last.attempted);
      const double coverage =
          static_cast<double>(stats.edges_ever_swapped) /
          static_cast<double>(m);
      std::printf("%-6zu %12.4f %14.6f\n", total_iters, rate, coverage);
      if (coverage >= 1.0 && covered_after == 0) covered_after = total_iters;
    }
    if (covered_after > 0)
      std::printf("all edges swapped by iteration %zu\n", covered_after);
  }
  return 0;
}
