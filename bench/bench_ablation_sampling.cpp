// Ablation: Chung-Lu O(m) endpoint sampling strategy. The paper attributes
// the O(m) models' slowdown at scale to the O(log n) binary search per
// weighted draw; this quantifies the alternatives: per-vertex binary
// search (faithful baseline), per-class binary search (O(log |D|)), and a
// Walker alias table (O(1)).

#include <benchmark/benchmark.h>

#include "gen/chung_lu.hpp"
#include "gen/datasets.hpp"

namespace {

using namespace nullgraph;

void bm_chung_lu(benchmark::State& state, ClSampler sampler) {
  const DatasetSpec spec = *find_dataset("WikiTalk");
  const DegreeDistribution dist =
      build_dataset(spec, 0.05);  // ~235k edges: sampling-dominated
  ChungLuConfig config;
  config.sampler = sampler;
  config.seed = 1;
  std::size_t edges_generated = 0;
  for (auto _ : state) {
    EdgeList edges = chung_lu_multigraph(dist, config);
    benchmark::DoNotOptimize(edges.data());
    ++config.seed;
    edges_generated = edges.size();
  }
  // items = endpoint draws (2 per edge)
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(edges_generated) * 2);
}

}  // namespace

BENCHMARK_CAPTURE(bm_chung_lu, binary_search_vertex,
                  ClSampler::kBinarySearchVertex)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_chung_lu, binary_search_class,
                  ClSampler::kBinarySearchClass)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_chung_lu, alias_table, ClSampler::kAlias)
    ->Unit(benchmark::kMillisecond);
