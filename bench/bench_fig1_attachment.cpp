// Figure 1: attachment probabilities between the LARGEST degree vertex and
// every other vertex degree, for a null model on the as20 (AS-733-like)
// degree distribution. Two series, as in the paper:
//   * Chung-Lu:        the closed-form w_i w_j / 2m (uncapped -> exceeds 1)
//   * Uniform Random:  empirical probabilities over 100 uniformly random
//                      simple graphs (Havel-Hakimi + heavy double-edge
//                      swapping)
// The paper's point: the closed form "fails dramatically", exceeding 1 for
// most pairings with the hub.

#include <cstdio>

#include "analysis/attachment.hpp"
#include "core/double_edge_swap.hpp"
#include "gen/datasets.hpp"
#include "gen/havel_hakimi.hpp"

int main() {
  using namespace nullgraph;
  const DegreeDistribution dist = as20_like();
  const std::size_t nc = dist.num_classes();
  const double two_m = static_cast<double>(dist.num_stubs());
  const double dmax = static_cast<double>(dist.max_degree());

  const int samples = 100;
  AttachmentAccumulator acc(dist);
  for (int s = 0; s < samples; ++s) {
    EdgeList edges = havel_hakimi(dist);
    swap_edges(edges, {.iterations = 16,
                       .seed = 100 + static_cast<std::uint64_t>(s)});
    acc.add(edges);
  }
  const ProbabilityMatrix empirical = acc.average();

  std::printf("Figure 1: attachment probability of the d_max=%llu vertex vs "
              "other degrees (as20-like, %d uniform samples)\n",
              static_cast<unsigned long long>(dist.max_degree()), samples);
  std::printf("%-10s %16s %16s\n", "degree", "Chung-Lu", "UniformRandom");
  int exceeding_one = 0;
  for (std::size_t c = 0; c < nc; ++c) {
    const double d = static_cast<double>(dist.degree_of_class(c));
    const double chung_lu = dmax * d / two_m;  // uncapped, as in Fig. 1
    if (chung_lu > 1.0) ++exceeding_one;
    std::printf("%-10.0f %16.4f %16.4f\n", d, chung_lu,
                empirical.at(nc - 1, c));
  }
  std::printf("\nChung-Lu probability exceeds 1 for %d of %zu degree "
              "classes (the paper's headline failure)\n",
              exceeding_one, nc);
  return 0;
}
