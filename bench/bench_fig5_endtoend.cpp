// Figure 5: shared-memory end-to-end generation time from a degree
// distribution, per dataset per method, with ONE double-edge swap iteration
// (the paper's protocol — mixing time is graph-dependent).
//
// Expected shape: methods comparable at small scale; at large scale the
// edge-skipping generators beat the O(m) generators, whose weighted
// sampling pays a binary search per endpoint draw (paper: ~2x).
//
// Instances build at their default laptop down-scales; set
// NULLGRAPH_BENCH_SCALE to rescale.

#include <benchmark/benchmark.h>

#include "core/null_model.hpp"
#include "gen/chung_lu.hpp"
#include "gen/datasets.hpp"

namespace {

using namespace nullgraph;

enum class Method { kOm, kOmSimple, kEdgeskip, kOurs };

void run_end_to_end(benchmark::State& state, const DatasetSpec& spec,
                    Method method) {
  const DegreeDistribution dist = build_dataset(spec);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    EdgeList edges;
    switch (method) {
      case Method::kOm:
        edges = chung_lu_multigraph(dist, {.seed = seed});
        swap_edges(edges, {.iterations = 1, .seed = seed});
        break;
      case Method::kOmSimple:
        edges = erased_chung_lu(dist, {.seed = seed});
        swap_edges(edges, {.iterations = 1, .seed = seed});
        break;
      case Method::kEdgeskip:
        edges = bernoulli_chung_lu(dist, seed);
        swap_edges(edges, {.iterations = 1, .seed = seed});
        break;
      case Method::kOurs: {
        GenerateConfig config;
        config.seed = seed;
        config.swap_iterations = 1;
        edges = generate_null_graph(dist, config).edges;
        break;
      }
    }
    benchmark::DoNotOptimize(edges.data());
    ++seed;
    state.counters["edges"] =
        benchmark::Counter(static_cast<double>(edges.size()));
    state.counters["edges/s"] = benchmark::Counter(
        static_cast<double>(edges.size()), benchmark::Counter::kIsRate);
  }
}

const struct {
  const char* label;
  Method method;
} kMethods[] = {
    {"O(m)", Method::kOm},
    {"O(m)_simple", Method::kOmSimple},
    {"O(n2)_edgeskip", Method::kEdgeskip},
    {"ours", Method::kOurs},
};

const int registered = [] {
  for (const DatasetSpec& spec : paper_datasets()) {
    for (const auto& m : kMethods) {
      benchmark::RegisterBenchmark(
          (std::string("fig5/") + spec.name + "/" + m.label).c_str(),
          [spec, method = m.method](benchmark::State& state) {
            run_end_to_end(state, spec, method);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  return 0;
}();

}  // namespace
