// Registry dispatch overhead: the same generation through the direct
// library call vs model::run_model (lookup + capability validation +
// sampling-space census + model-block fill).
//
// The acceptance bar is <3% registry overhead on the null-model pair:
// its pipeline verifies its own space (space_verified = true), so the
// driver adds only lookup/validation/bookkeeping — strictly O(1) against
// an O(m) generation. The chung-lu and rmat pairs additionally price the
// driver's output census (one O(m) pass over the edges), which IS the
// registry path for backends without structural guarantees — reported so
// a census regression is visible, not gated at 3%.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>

#include "analysis/metrics.hpp"
#include "core/null_model.hpp"
#include "gen/chung_lu.hpp"
#include "gen/powerlaw.hpp"
#include "model/driver.hpp"

namespace {

using namespace nullgraph;

PowerlawParams bench_powerlaw() {
  return {.n = 100000, .gamma = 2.5, .dmin = 2, .dmax = 300};
}

model::ModelSpec bench_spec(std::string backend, std::uint64_t seed) {
  model::ModelSpec spec;
  spec.backend = std::move(backend);
  spec.seed = seed;
  spec.params = {{"powerlaw", ""}, {"n", "100000"},
                 {"dmin", "2"}, {"dmax", "300"}};
  return spec;
}

void record_edges(benchmark::State& state, std::size_t edges) {
  state.counters["edges"] = benchmark::Counter(static_cast<double>(edges));
  state.counters["edges/s"] = benchmark::Counter(
      static_cast<double>(edges), benchmark::Counter::kIsRate);
}

// --------------------------------------------------- null-model (the bar)

void BM_NullModelDirect(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    // Mirror the pre-registry cmd_generate body per run: build the
    // distribution, generate, compute the quality-error summary. The
    // registry pair must not get to amortize work the old path repeated.
    const DegreeDistribution dist = powerlaw_distribution(bench_powerlaw());
    GenerateConfig config;
    config.seed = seed++;
    config.swap_iterations = 2;
    GenerateResult result = generate_null_graph(dist, config);
    const QualityErrors errors = quality_errors(dist, result.edges);
    benchmark::DoNotOptimize(errors.edge_count);
    benchmark::DoNotOptimize(result.edges.data());
    record_edges(state, result.edges.size());
  }
}
BENCHMARK(BM_NullModelDirect)->Unit(benchmark::kMillisecond);

void BM_NullModelRegistry(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    model::ModelSpec spec = bench_spec("null-model", seed++);
    spec.swap_iterations = 2;
    Result<model::ModelRun> run = model::run_model(spec, {});
    benchmark::DoNotOptimize(run.value().output.result.edges.data());
    record_edges(state, run.value().output.result.edges.size());
  }
}
BENCHMARK(BM_NullModelRegistry)->Unit(benchmark::kMillisecond);

// ----------------------------- chung-lu (registry path adds the census)

void BM_ChungLuDirect(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const DegreeDistribution dist = powerlaw_distribution(bench_powerlaw());
    ChungLuConfig config;
    config.seed = seed++;
    EdgeList edges = chung_lu_multigraph(dist, config);
    benchmark::DoNotOptimize(edges.data());
    record_edges(state, edges.size());
  }
}
BENCHMARK(BM_ChungLuDirect)->Unit(benchmark::kMillisecond);

void BM_ChungLuRegistry(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Result<model::ModelRun> run =
        model::run_model(bench_spec("chung-lu", seed++), {});
    benchmark::DoNotOptimize(run.value().output.result.edges.data());
    record_edges(state, run.value().output.result.edges.size());
  }
}
BENCHMARK(BM_ChungLuRegistry)->Unit(benchmark::kMillisecond);

// --------------------------------- rmat (new backend, registry-only door)

void BM_RmatRegistry(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    model::ModelSpec spec;
    spec.backend = "rmat";
    spec.seed = seed++;
    spec.params = {{"scale", "16"}, {"edge-factor", "8"}};
    Result<model::ModelRun> run = model::run_model(spec, {});
    benchmark::DoNotOptimize(run.value().output.result.edges.data());
    record_edges(state, run.value().output.result.edges.size());
  }
}
BENCHMARK(BM_RmatRegistry)->Unit(benchmark::kMillisecond);

}  // namespace
