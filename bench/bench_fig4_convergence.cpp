// Figure 4: error in pairwise attachment probabilities relative to a
// uniformly random sample, as a function of double-edge swap iterations.
// Series, as in the paper: the O(m) model (swaps double as simplification),
// the erased O(m) model, the O(n^2)-edgeskip model, and ours. Error is the
// L1 norm of P_gen - P_base, with P_base from Havel-Hakimi + 128 swap
// iterations (the paper's baseline).
//
// Expected shape: O(m) starts worst (multi-edges waste early swaps) but
// converges; all simple methods drop fast, under ~1% of the initial error
// within a handful of iterations; ours converges slightly slower than the
// other simple generators but from a better-matched distribution.

#include <cstdio>
#include <vector>

#include "analysis/attachment.hpp"
#include "core/double_edge_swap.hpp"
#include "core/null_model.hpp"
#include "gen/chung_lu.hpp"
#include "gen/datasets.hpp"
#include "gen/havel_hakimi.hpp"

int main() {
  using namespace nullgraph;
  const DegreeDistribution dist = as20_like();
  const int samples = 16;
  const std::vector<std::size_t> iteration_grid{0, 1, 2, 4, 8, 16, 24, 32};

  // Baseline: the paper's Havel-Hakimi + 128 full swap iterations. A
  // second, independent uniform ensemble measures the sampling-noise FLOOR
  // of the metric: a perfectly mixed generator can converge to the floor,
  // not to zero, at finite sample counts.
  auto uniform_ensemble = [&](std::uint64_t seed_base) {
    AttachmentAccumulator acc(dist);
    for (int s = 0; s < samples; ++s) {
      EdgeList edges = havel_hakimi(dist);
      swap_edges(edges, {.iterations = 128,
                         .seed = seed_base + static_cast<std::uint64_t>(s)});
      acc.add(edges);
    }
    return acc.average();
  };
  const ProbabilityMatrix base = uniform_ensemble(9000);
  const ProbabilityMatrix floor_probe = uniform_ensemble(77000);

  enum Method { kOm, kOmSimple, kEdgeskip, kOurs, kNumMethods };
  const char* names[kNumMethods] = {"O(m)", "O(m) simple", "O(n^2) edgeskip",
                                    "ours"};

  auto starting_edges = [&](Method method, std::uint64_t seed) {
    switch (method) {
      case kOm:
        return chung_lu_multigraph(dist, {.seed = seed});
      case kOmSimple:
        return erased_chung_lu(dist, {.seed = seed});
      case kEdgeskip:
        return bernoulli_chung_lu(dist, seed);
      case kOurs: {
        GenerateConfig config;
        config.seed = seed;
        config.swap_iterations = 0;  // swaps applied explicitly below
        return generate_null_graph(dist, config).edges;
      }
      default:
        return EdgeList{};
    }
  };

  // Error metric: pair-count-weighted L1 (the L1 difference in expected
  // edges between attachment structures), normalized by m. The raw
  // entry-wise L1 is dominated by sampling noise from singleton degree
  // classes and never converges at feasible sample counts.
  const double m = static_cast<double>(dist.num_edges());
  std::printf("Figure 4: error in pairwise attachment probabilities vs swap "
              "iterations\n(as20-like, %d samples per point, pair-weighted "
              "L1 / m)\n", samples);
  std::printf("%-6s %14s %14s %16s %14s\n", "iters", names[0], names[1],
              names[2], names[3]);
  for (const std::size_t iters : iteration_grid) {
    double errors[kNumMethods];
    for (int method = 0; method < kNumMethods; ++method) {
      AttachmentAccumulator acc(dist);
      for (int s = 0; s < samples; ++s) {
        const std::uint64_t seed = 300 + static_cast<std::uint64_t>(s) * 13;
        EdgeList edges = starting_edges(static_cast<Method>(method), seed);
        if (iters > 0)
          swap_edges(edges, {.iterations = iters, .seed = seed ^ 0xabcdu});
        acc.add(edges);
      }
      errors[method] = ProbabilityMatrix::weighted_l1_distance(
                           acc.average(), base, dist) / m;
    }
    std::printf("%-6zu %14.4f %14.4f %16.4f %14.4f\n", iters, errors[0],
                errors[1], errors[2], errors[3]);
  }
  const double floor_error =
      ProbabilityMatrix::weighted_l1_distance(floor_probe, base, dist) / m;
  std::printf("\nsampling-noise floor (independent uniform ensemble vs "
              "baseline): %.4f\n", floor_error);
  std::printf("a generator has mixed once its curve reaches the floor\n");
  return 0;
}
