// Telemetry overhead (DESIGN.md §7): the same end-to-end generation with
// no telemetry attached (the default), with metrics only, with tracing
// only, and with both.
//
// The acceptance bar is on BM_ObsOff vs BM_ObsDetachedSites: every
// instrumentation site is compiled in unconditionally, so the "off"
// configuration still executes the null-handle branches (TraceSpan with a
// null sink, skipped counter adds, the detached probe-histogram branch in
// ConcurrentHashSet::insert). That compiled-in-but-disabled cost must stay
// under 3% of the uninstrumented runtime — since there IS no
// uninstrumented build anymore, the bar is enforced as: BM_ObsOff and
// BM_ObsFull must be within a few percent of each other, and the absolute
// per-swap cost of the attached instruments (one striped relaxed
// fetch_add per counter bump, one binary search + two fetch_adds per
// hash-set probe) is visible as the Off->Metrics delta.
//
// The live-operations plane (DESIGN.md §12) adds three more sinks, each
// with its own off/quiet/busy story:
//   - BM_ObsEventsQuiet: an EventLog on a real file, fed only the pipeline's
//     natural phase-boundary events (a handful per run) — the steady-state
//     cost an operator pays for `--events-out`;
//   - BM_ObsEventsBusy: every sink at once — metrics, tracing, the event
//     log, AND a flight-recorder mirror — the worst-case fully-instrumented
//     configuration, still expected within a few percent of BM_ObsOff
//     because every emission site sits on a cold control-flow edge.
//
// BM_CounterAdd / BM_HistogramRecord / BM_EventEmit / BM_FlightRecord /
// BM_PrometheusRender microbenches pin down the per-op instrument costs
// that the end-to-end numbers aggregate.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <string>

#include "core/null_model.hpp"
#include "gen/powerlaw.hpp"
#include "obs/event_log.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "obs/trace.hpp"

namespace {

using namespace nullgraph;

// A real file target for the event-log benches; bytes land on disk like an
// operator's --events-out would (std::tmpnam would trip lint; a fixed name
// under /tmp is fine for a benchmark process).
std::string bench_events_path() {
  return "/tmp/nullgraph_bench_events.jsonl";
}

struct Sinks {
  bool metrics = false;
  bool trace = false;
  bool events = false;
  bool flight = false;
};

void run_generation(benchmark::State& state, Sinks sinks) {
  const DegreeDistribution dist = powerlaw_distribution(
      {.n = 200000, .gamma = 2.5, .dmin = 2, .dmax = 300});
  std::uint64_t seed = 1;
  for (auto _ : state) {
    obs::MetricsRegistry registry;
    obs::TraceSink sink;
    obs::EventLog events;
    obs::FlightRecorder flight;
    GenerateConfig config;
    config.seed = seed++;
    config.swap_iterations = 2;
    if (sinks.metrics) config.obs.metrics = &registry;
    if (sinks.trace) config.obs.trace = &sink;
    if (sinks.events) {
      if (!events.open(bench_events_path()).ok()) {
        state.SkipWithError("cannot open bench event log");
        return;
      }
      if (sinks.flight) events.attach_flight_recorder(&flight);
      config.obs.events = &events;
    }
    GenerateResult result = generate_null_graph(dist, config);
    benchmark::DoNotOptimize(result.edges.data());
    state.counters["edges"] =
        benchmark::Counter(static_cast<double>(result.edges.size()));
    state.counters["edges/s"] = benchmark::Counter(
        static_cast<double>(result.edges.size()), benchmark::Counter::kIsRate);
    if (sinks.trace)
      state.counters["trace_events"] =
          benchmark::Counter(static_cast<double>(sink.event_count()));
    if (sinks.events)
      state.counters["events"] =
          benchmark::Counter(static_cast<double>(events.emitted()));
  }
  if (sinks.events) std::remove(bench_events_path().c_str());
}

// Null handles everywhere: the <3% compiled-in-but-disabled bar.
void BM_ObsOff(benchmark::State& state) { run_generation(state, {}); }
void BM_ObsMetrics(benchmark::State& state) {
  run_generation(state, {.metrics = true});
}
void BM_ObsTrace(benchmark::State& state) {
  run_generation(state, {.trace = true});
}
void BM_ObsFull(benchmark::State& state) {
  run_generation(state, {.metrics = true, .trace = true});
}
// Event log on a file, phase-boundary traffic only.
void BM_ObsEventsQuiet(benchmark::State& state) {
  run_generation(state, {.events = true});
}
// Every sink live at once, flight ring mirroring each event line.
void BM_ObsEventsBusy(benchmark::State& state) {
  run_generation(state,
                 {.metrics = true, .trace = true, .events = true,
                  .flight = true});
}

BENCHMARK(BM_ObsOff)->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK(BM_ObsMetrics)->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK(BM_ObsTrace)->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK(BM_ObsFull)->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK(BM_ObsEventsQuiet)->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK(BM_ObsEventsBusy)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_CounterAdd(benchmark::State& state) {
  obs::Counter counter("bench");
  for (auto _ : state) counter.add(1);
  benchmark::DoNotOptimize(counter.value());
  state.SetItemsProcessed(state.iterations());
}

void BM_HistogramRecord(benchmark::State& state) {
  obs::Histogram hist("bench", 1,
                      {1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128});
  std::int64_t v = 0;
  for (auto _ : state) hist.record((v++ & 63) + 1);
  benchmark::DoNotOptimize(hist.snapshot().count);
  state.SetItemsProcessed(state.iterations());
}

// One structured event end-to-end: JSONL formatting + flight-ring mirror
// (file-less sink, so the fwrite cost of the quiet/busy end-to-end benches
// is excluded and the formatting itself is visible).
void BM_EventEmit(benchmark::State& state) {
  obs::FlightRecorder flight;
  obs::EventLog log;
  log.attach_flight_recorder(&flight);
  std::uint64_t value = 0;
  for (auto _ : state)
    log.emit({obs::EventKind::kShardCommit, 7, 1234567, "edge generation",
              ++value, "bench shard"});
  benchmark::DoNotOptimize(log.emitted());
  state.SetItemsProcessed(state.iterations());
}

// The seqlock ring alone: the floor for black-box-only (--flight-out) mode.
void BM_FlightRecord(benchmark::State& state) {
  obs::FlightRecorder flight;
  const std::string line =
      "{\"ts_us\":17000000000,\"event\":\"shard_commit\",\"job\":7,"
      "\"value\":42,\"detail\":\"bench shard\"}";
  for (auto _ : state) flight.record(line);
  state.SetItemsProcessed(state.iterations());
}

// Rendering a realistically sized registry into the exposition format —
// the per-scrape cost of the daemon `metrics` verb and of each
// --metrics-out snapshot tick.
void BM_PrometheusRender(benchmark::State& state) {
  obs::MetricsRegistry registry;
  for (int i = 0; i < 24; ++i)
    registry.counter("bench.counter_" + std::to_string(i))
        ->add(static_cast<std::uint64_t>(i) * 977);
  for (int i = 0; i < 8; ++i)
    registry.gauge("bench.gauge_" + std::to_string(i))->set(i * 31);
  obs::Histogram* hist = registry.histogram(
      "bench.latency", 1, {1, 2, 4, 8, 16, 32, 64, 128, 256, 512});
  for (std::int64_t v = 0; v < 512; ++v) hist->record(v);
  std::size_t bytes = 0;
  for (auto _ : state) {
    const std::string body = render_prometheus(registry.snapshot());
    bytes = body.size();
    benchmark::DoNotOptimize(body.data());
  }
  state.counters["body_bytes"] =
      benchmark::Counter(static_cast<double>(bytes));
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_CounterAdd);
BENCHMARK(BM_HistogramRecord);
BENCHMARK(BM_EventEmit);
BENCHMARK(BM_FlightRecord);
BENCHMARK(BM_PrometheusRender);

}  // namespace
