// Telemetry overhead (DESIGN.md §7): the same end-to-end generation with
// no telemetry attached (the default), with metrics only, with tracing
// only, and with both.
//
// The acceptance bar is on BM_ObsOff vs BM_ObsDetachedSites: every
// instrumentation site is compiled in unconditionally, so the "off"
// configuration still executes the null-handle branches (TraceSpan with a
// null sink, skipped counter adds, the detached probe-histogram branch in
// ConcurrentHashSet::insert). That compiled-in-but-disabled cost must stay
// under 3% of the uninstrumented runtime — since there IS no
// uninstrumented build anymore, the bar is enforced as: BM_ObsOff and
// BM_ObsFull must be within a few percent of each other, and the absolute
// per-swap cost of the attached instruments (one striped relaxed
// fetch_add per counter bump, one binary search + two fetch_adds per
// hash-set probe) is visible as the Off->Metrics delta.
//
// BM_CounterAdd / BM_HistogramRecord microbenches pin down the per-op
// instrument costs that the end-to-end numbers aggregate.

#include <benchmark/benchmark.h>

#include <cstdint>

#include "core/null_model.hpp"
#include "gen/powerlaw.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using namespace nullgraph;

void run_generation(benchmark::State& state, bool metrics, bool trace) {
  const DegreeDistribution dist = powerlaw_distribution(
      {.n = 200000, .gamma = 2.5, .dmin = 2, .dmax = 300});
  std::uint64_t seed = 1;
  for (auto _ : state) {
    obs::MetricsRegistry registry;
    obs::TraceSink sink;
    GenerateConfig config;
    config.seed = seed++;
    config.swap_iterations = 2;
    if (metrics) config.obs.metrics = &registry;
    if (trace) config.obs.trace = &sink;
    GenerateResult result = generate_null_graph(dist, config);
    benchmark::DoNotOptimize(result.edges.data());
    state.counters["edges"] =
        benchmark::Counter(static_cast<double>(result.edges.size()));
    state.counters["edges/s"] = benchmark::Counter(
        static_cast<double>(result.edges.size()), benchmark::Counter::kIsRate);
    if (trace)
      state.counters["trace_events"] =
          benchmark::Counter(static_cast<double>(sink.event_count()));
  }
}

// Null handles everywhere: the <3% compiled-in-but-disabled bar.
void BM_ObsOff(benchmark::State& state) {
  run_generation(state, /*metrics=*/false, /*trace=*/false);
}
void BM_ObsMetrics(benchmark::State& state) {
  run_generation(state, /*metrics=*/true, /*trace=*/false);
}
void BM_ObsTrace(benchmark::State& state) {
  run_generation(state, /*metrics=*/false, /*trace=*/true);
}
void BM_ObsFull(benchmark::State& state) {
  run_generation(state, /*metrics=*/true, /*trace=*/true);
}

BENCHMARK(BM_ObsOff)->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK(BM_ObsMetrics)->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK(BM_ObsTrace)->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK(BM_ObsFull)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_CounterAdd(benchmark::State& state) {
  obs::Counter counter("bench");
  for (auto _ : state) counter.add(1);
  benchmark::DoNotOptimize(counter.value());
  state.SetItemsProcessed(state.iterations());
}

void BM_HistogramRecord(benchmark::State& state) {
  obs::Histogram hist("bench", 1,
                      {1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128});
  std::int64_t v = 0;
  for (auto _ : state) hist.record((v++ & 63) + 1);
  benchmark::DoNotOptimize(hist.snapshot().count);
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_CounterAdd);
BENCHMARK(BM_HistogramRecord);

}  // namespace
