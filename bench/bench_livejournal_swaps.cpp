// Section VIII-C: the comparison against Bhuiyan et al.'s distributed edge
// switching. The paper reports, for LiveJournal: ~15 s serial and ~3 s on
// 16 cores to successfully swap ALL edges (3 swap iterations), ~1 s for a
// single parallel iteration which swaps 99.9% of edges. We reproduce the
// experiment on the LiveJournal stand-in at its default scale and report
// the same quantities (absolute numbers scale with instance size and core
// count; the paper's cited numbers are printed for reference).

#include <cstdio>

#include "core/double_edge_swap.hpp"
#include "core/null_model.hpp"
#include "gen/datasets.hpp"
#include "util/timer.hpp"

int main() {
  using namespace nullgraph;
  const DatasetSpec spec = *find_dataset("LiveJournal");
  const DegreeDistribution dist = build_dataset(spec);
  std::printf("LiveJournal stand-in: n=%llu m=%llu (paper instance: n=4.1M "
              "m=27M)\n",
              static_cast<unsigned long long>(dist.num_vertices()),
              static_cast<unsigned long long>(dist.num_edges()));

  GenerateConfig gen_config;
  gen_config.swap_iterations = 0;
  const EdgeList start = generate_null_graph(dist, gen_config).edges;

  // One parallel iteration: time + fraction of edges swapped.
  {
    EdgeList edges = start;
    SwapConfig config;
    config.iterations = 1;
    config.seed = 2;
    config.track_swapped_edges = true;
    Stopwatch watch;
    const SwapStats stats = swap_edges(edges, config);
    std::printf("parallel, 1 iteration:  %7.3f s, %.3f%% of edges swapped "
                "(paper: ~1 s, 99.9%%)\n",
                watch.seconds(),
                100.0 * static_cast<double>(stats.edges_ever_swapped) /
                    static_cast<double>(edges.size()));
  }
  // Three parallel iterations: the paper's "swap all edges" protocol.
  {
    EdgeList edges = start;
    SwapConfig config;
    config.iterations = 3;
    config.seed = 3;
    config.track_swapped_edges = true;
    Stopwatch watch;
    const SwapStats stats = swap_edges(edges, config);
    std::printf("parallel, 3 iterations: %7.3f s, %.3f%% of edges swapped "
                "(paper: 3 s on 16 cores)\n",
                watch.seconds(),
                100.0 * static_cast<double>(stats.edges_ever_swapped) /
                    static_cast<double>(edges.size()));
  }
  // Serial reference, 3 iterations.
  {
    EdgeList edges = start;
    SwapConfig config;
    config.iterations = 3;
    config.seed = 3;
    config.track_swapped_edges = true;
    Stopwatch watch;
    const SwapStats stats = swap_edges_serial(edges, config);
    std::printf("serial,   3 iterations: %7.3f s, %.3f%% of edges swapped "
                "(paper: 15 s serial; Bhuiyan et al.: ~300 s serial)\n",
                watch.seconds(),
                100.0 * static_cast<double>(stats.edges_ever_swapped) /
                    static_cast<double>(edges.size()));
  }
  return 0;
}
