// Ablation: concurrent hash table probing policy (linear vs quadratic, the
// paper's "linear (or quadratic) probing") and load factor sensitivity, on
// the exact workload the swap kernel generates: bulk TestAndSet of packed
// edge keys followed by a mixed hit/miss probe stream.

#include <benchmark/benchmark.h>

#include "ds/concurrent_hash_set.hpp"
#include "ds/edge.hpp"
#include "exec/exec.hpp"
#include "util/rng.hpp"

namespace {

using namespace nullgraph;

std::vector<std::uint64_t> edge_keys(std::size_t count, std::uint64_t seed) {
  Xoshiro256ss rng(seed);
  std::vector<std::uint64_t> keys(count);
  for (auto& key : keys) {
    const VertexId u = static_cast<VertexId>(rng.bounded(1u << 24));
    const VertexId v = static_cast<VertexId>(rng.bounded(1u << 24));
    key = Edge{u, v == u ? v + 1 : v}.key();
  }
  return keys;
}

void bm_bulk_insert(benchmark::State& state, Probing probing) {
  const std::size_t count = static_cast<std::size_t>(state.range(0));
  const auto keys = edge_keys(count, 7);
  const exec::ParallelContext ctx;
  for (auto _ : state) {
    ConcurrentHashSet set(count, probing);
    const std::size_t fresh = exec::reduce<std::size_t>(
        ctx, count, exec::kDefaultGrain, 0,
        [&](const exec::Chunk& chunk) {
          std::size_t mine = 0;
          for (std::size_t i = chunk.begin; i < chunk.end; ++i)
            if (!set.test_and_set(keys[i])) ++mine;
          return mine;
        },
        [](std::size_t a, std::size_t b) { return a + b; });
    benchmark::DoNotOptimize(fresh);
  }
  state.SetItemsProcessed(state.iterations() * count);
}

void bm_mixed_probe(benchmark::State& state, Probing probing) {
  const std::size_t count = static_cast<std::size_t>(state.range(0));
  const auto existing = edge_keys(count, 7);
  const auto probes = edge_keys(count, 8);  // ~all misses
  ConcurrentHashSet set(2 * count, probing);
  for (const auto key : existing) set.test_and_set(key);
  const exec::ParallelContext ctx;
  for (auto _ : state) {
    const std::size_t hits = exec::reduce<std::size_t>(
        ctx, count, exec::kDefaultGrain, 0,
        [&](const exec::Chunk& chunk) {
          std::size_t mine = 0;
          for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
            if (set.contains(existing[i])) ++mine;  // hot hits
            if (set.contains(probes[i])) ++mine;    // cold misses
          }
          return mine;
        },
        [](std::size_t a, std::size_t b) { return a + b; });
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * 2 * count);
}

}  // namespace

BENCHMARK_CAPTURE(bm_bulk_insert, linear, Probing::kLinear)
    ->Arg(1 << 16)->Arg(1 << 20)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_bulk_insert, quadratic, Probing::kQuadratic)
    ->Arg(1 << 16)->Arg(1 << 20)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_mixed_probe, linear, Probing::kLinear)
    ->Arg(1 << 16)->Arg(1 << 20)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_mixed_probe, quadratic, Probing::kQuadratic)
    ->Arg(1 << 16)->Arg(1 << 20)->Unit(benchmark::kMillisecond);
