// Figure 6: per-phase execution time of OUR end-to-end method —
// probability computation, edge generation, double-edge swapping — per
// dataset. The paper's observation: despite O(|D|^2) work, probability
// generation is proportionally cheap because |D| << d_max << m; swapping
// dominates.

#include <benchmark/benchmark.h>

#include "core/null_model.hpp"
#include "gen/datasets.hpp"

namespace {

using namespace nullgraph;

void run_phases(benchmark::State& state, const DatasetSpec& spec) {
  const DegreeDistribution dist = build_dataset(spec);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    GenerateConfig config;
    config.seed = seed++;
    config.swap_iterations = 1;
    const GenerateResult result = generate_null_graph(dist, config);
    benchmark::DoNotOptimize(result.edges.data());
    state.counters["probabilities_s"] =
        benchmark::Counter(result.timing.seconds("probabilities"));
    state.counters["edge_generation_s"] =
        benchmark::Counter(result.timing.seconds("edge generation"));
    state.counters["swaps_s"] =
        benchmark::Counter(result.timing.seconds("swaps"));
    state.counters["D"] =
        benchmark::Counter(static_cast<double>(dist.num_classes()));
    state.counters["m"] =
        benchmark::Counter(static_cast<double>(result.edges.size()));
  }
}

const int registered = [] {
  for (const DatasetSpec& spec : paper_datasets()) {
    benchmark::RegisterBenchmark(
        (std::string("fig6/") + spec.name).c_str(),
        [spec](benchmark::State& state) { run_phases(state, spec); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  return 0;
}();

}  // namespace
