// Thread-scaling of the three parallel kernels (the paper's scalability
// story, Figure 5/6 context): double-edge swapping, edge-skipping
// generation and the reservation-based permutation, swept over OpenMP
// thread counts up to the hardware limit. On a single-core host this
// documents overheads rather than speedups; on a multi-core host it
// reproduces the paper's scaling claims.

#include <benchmark/benchmark.h>
#include <omp.h>

#include "core/double_edge_swap.hpp"
#include "core/null_model.hpp"
#include "gen/datasets.hpp"
#include "permute/permutation.hpp"
#include "prob/heuristics.hpp"
#include "skip/edge_skip.hpp"

namespace {

using namespace nullgraph;

const DegreeDistribution& instance() {
  static const DegreeDistribution dist =
      build_dataset(*find_dataset("WikiTalk"), 0.1);
  return dist;
}

void bm_swap_threads(benchmark::State& state) {
  omp_set_num_threads(static_cast<int>(state.range(0)));
  GenerateConfig config;
  config.swap_iterations = 0;
  EdgeList base = generate_null_graph(instance(), config).edges;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    EdgeList edges = base;
    swap_edges(edges, {.iterations = 1, .seed = seed++});
    benchmark::DoNotOptimize(edges.data());
  }
  omp_set_num_threads(omp_get_num_procs());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(base.size()));
}

void bm_edge_skip_threads(benchmark::State& state) {
  omp_set_num_threads(static_cast<int>(state.range(0)));
  const ProbabilityMatrix P = greedy_probabilities(instance());
  std::uint64_t seed = 1;
  std::size_t edges_out = 0;
  for (auto _ : state) {
    EdgeList edges = edge_skip_generate(P, instance(), {.seed = seed++});
    edges_out = edges.size();
    benchmark::DoNotOptimize(edges.data());
  }
  omp_set_num_threads(omp_get_num_procs());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(edges_out));
}

void bm_permute_threads(benchmark::State& state) {
  omp_set_num_threads(static_cast<int>(state.range(0)));
  std::vector<std::uint64_t> values(1 << 21);
  for (std::size_t i = 0; i < values.size(); ++i) values[i] = i;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    parallel_permute(std::span<std::uint64_t>(values), seed++);
    benchmark::DoNotOptimize(values.data());
  }
  omp_set_num_threads(omp_get_num_procs());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(values.size()));
}

void thread_args(benchmark::internal::Benchmark* bench) {
  const int max_threads = omp_get_num_procs();
  for (int t = 1; t <= max_threads; t *= 2) bench->Arg(t);
  if ((max_threads & (max_threads - 1)) != 0) bench->Arg(max_threads);
}

}  // namespace

BENCHMARK(bm_swap_threads)->Apply(thread_args)
    ->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK(bm_edge_skip_threads)->Apply(thread_args)
    ->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK(bm_permute_threads)->Apply(thread_args)
    ->Unit(benchmark::kMillisecond)->Iterations(2);
