// Out-of-core spill overhead: the same end-to-end generation kept in RAM
// (SpillConfig off) and force-routed through CRC-framed shard files
// (DESIGN.md §10), plus the streaming merge that reassembles the shards
// into one in-memory edge list.
//
// Expected shape: the spill path trades the in-core edge vector for
// sequential shard writes (CRC-32 per 32K-edge block, fsync+rename per
// shard), so BM_SpillForced pays disk bandwidth on top of the identical
// generation math — the interesting number is the ratio, which bounds
// what a memory-ceiling degradation costs a run that would otherwise
// have died with kMemoryBudget. BM_SpillMergeLoad isolates the read
// side: CRC-checked block streaming of every shard back into RAM.
//
// Shard-count sweep (2/8/32) shows the per-shard commit cost: more
// shards = more fsync+rename barriers over the same bytes.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <filesystem>
#include <string>

#include "core/null_model.hpp"
#include "gen/powerlaw.hpp"
#include "io/shard_merge.hpp"

namespace {

using namespace nullgraph;

DegreeDistribution bench_dist() {
  return powerlaw_distribution(
      {.n = 200000, .gamma = 2.5, .dmin = 2, .dmax = 300});
}

std::string fresh_spill_dir() {
  const auto dir =
      std::filesystem::temp_directory_path() / "nullgraph-bench-spill";
  std::filesystem::remove_all(dir);
  return dir.string();
}

void BM_SpillOff(benchmark::State& state) {
  const DegreeDistribution dist = bench_dist();
  std::uint64_t seed = 1;
  for (auto _ : state) {
    GenerateConfig config;
    config.seed = seed++;
    config.swap_iterations = 0;
    GenerateResult result = generate_null_graph(dist, config);
    benchmark::DoNotOptimize(result.edges.data());
    state.counters["edges"] =
        benchmark::Counter(static_cast<double>(result.edges.size()));
    state.counters["edges/s"] = benchmark::Counter(
        static_cast<double>(result.edges.size()), benchmark::Counter::kIsRate);
  }
}

void BM_SpillForced(benchmark::State& state) {
  const DegreeDistribution dist = bench_dist();
  std::uint64_t seed = 1;
  for (auto _ : state) {
    state.PauseTiming();
    const std::string dir = fresh_spill_dir();  // no stale-shard reuse
    state.ResumeTiming();
    GenerateConfig config;
    config.seed = seed++;
    config.swap_iterations = 0;
    config.spill.enabled = true;
    config.spill.force = true;
    config.spill.dir = dir;
    config.spill.shard_count = static_cast<std::uint64_t>(state.range(0));
    GenerateResult result = generate_null_graph(dist, config);
    benchmark::DoNotOptimize(result.spill.edges_on_disk);
    state.counters["edges"] =
        benchmark::Counter(static_cast<double>(result.spill.edges_on_disk));
    state.counters["edges/s"] =
        benchmark::Counter(static_cast<double>(result.spill.edges_on_disk),
                           benchmark::Counter::kIsRate);
    state.counters["shards"] =
        benchmark::Counter(static_cast<double>(result.spill.shards_written));
    state.counters["max_shard_edges"] =
        benchmark::Counter(static_cast<double>(result.spill.max_shard_edges));
  }
  std::filesystem::remove_all(
      std::filesystem::temp_directory_path() / "nullgraph-bench-spill");
}

void BM_SpillMergeLoad(benchmark::State& state) {
  // One spilled graph, read back repeatedly: CRC-checked block streaming
  // of every shard into a single in-memory edge list.
  const DegreeDistribution dist = bench_dist();
  const std::string dir = fresh_spill_dir();
  GenerateConfig config;
  config.seed = 1;
  config.swap_iterations = 0;
  config.spill.enabled = true;
  config.spill.force = true;
  config.spill.dir = dir;
  config.spill.shard_count = 8;
  const GenerateResult spilled = generate_null_graph(dist, config);
  if (!spilled.report.first_error().ok() || !spilled.spill.spilled) {
    state.SkipWithError("spill generation failed; nothing to merge");
    return;
  }
  for (auto _ : state) {
    auto merged = load_all_shards(dir, spilled.spill.shard_count);
    if (!merged.ok()) {
      state.SkipWithError("load_all_shards failed");
      return;
    }
    benchmark::DoNotOptimize(merged.value().data());
    state.counters["edges"] =
        benchmark::Counter(static_cast<double>(merged.value().size()));
    state.counters["edges/s"] =
        benchmark::Counter(static_cast<double>(merged.value().size()),
                           benchmark::Counter::kIsRate);
  }
  std::filesystem::remove_all(dir);
}

BENCHMARK(BM_SpillOff)->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK(BM_SpillForced)
    ->Arg(2)
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);
BENCHMARK(BM_SpillMergeLoad)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace
