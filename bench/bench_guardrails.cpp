// Guardrail overhead: the same end-to-end generation with checks off
// (RecoveryPolicy::kOff), the default record-only policy (kReport), and
// full repair mode on a clean run (kRepair, nothing to fix).
//
// Expected shape: the invariant checks are O(m) census/degree passes over
// the finished edge list, so kReport and kRepair must stay within a few
// percent of kOff (the acceptance bar is <5%); the generation phases
// themselves dominate.
//
// BM_GuardrailsGoverned adds the run-governance layer on top of kReport
// with an unlimited budget — the CLI's default configuration. Its cost is
// the per-chunk governor polls (one relaxed load on the common path, a
// clock read per 4096 swap pairs), so it shares the same <5% bar.
//
// BM_ExecOverhead* isolates the exec layer itself: the same memory-bound
// hash-sum kernel through a frozen pre-refactor raw `#pragma omp` loop
// (raw_omp_hash_sum) and through exec::reduce with the default grain. The
// exec variant pays for the chunk dispatch, the per-chunk partial vector,
// and the serial chunk-order fold; the acceptance bar is <3% over raw.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "core/null_model.hpp"
#include "exec/exec.hpp"
#include "gen/powerlaw.hpp"

namespace {

using namespace nullgraph;

void run_policy(benchmark::State& state, RecoveryPolicy policy,
                bool governed = false) {
  const DegreeDistribution dist = powerlaw_distribution(
      {.n = 200000, .gamma = 2.5, .dmin = 2, .dmax = 300});
  std::uint64_t seed = 1;
  for (auto _ : state) {
    GenerateConfig config;
    config.seed = seed++;
    config.swap_iterations = 1;
    config.guardrails.policy = policy;
    config.governance.enabled = governed;  // unlimited budget: polls only
    GenerateResult result = generate_null_graph(dist, config);
    benchmark::DoNotOptimize(result.edges.data());
    state.counters["edges"] =
        benchmark::Counter(static_cast<double>(result.edges.size()));
    state.counters["edges/s"] = benchmark::Counter(
        static_cast<double>(result.edges.size()), benchmark::Counter::kIsRate);
  }
}

void BM_GuardrailsOff(benchmark::State& state) {
  run_policy(state, RecoveryPolicy::kOff);
}
void BM_GuardrailsReport(benchmark::State& state) {
  run_policy(state, RecoveryPolicy::kReport);
}
void BM_GuardrailsRepair(benchmark::State& state) {
  run_policy(state, RecoveryPolicy::kRepair);
}
void BM_GuardrailsGoverned(benchmark::State& state) {
  run_policy(state, RecoveryPolicy::kReport, /*governed=*/true);
}

BENCHMARK(BM_GuardrailsOff)->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK(BM_GuardrailsReport)->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK(BM_GuardrailsRepair)->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK(BM_GuardrailsGoverned)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

std::vector<std::uint64_t> hash_sum_input(std::size_t n) {
  std::vector<std::uint64_t> values(n);
  std::iota(values.begin(), values.end(), 1u);
  return values;
}

void BM_ExecOverheadRawOmp(benchmark::State& state) {
  const auto values = hash_sum_input(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec::detail::raw_omp_hash_sum(
        values.data(), values.size(), exec::kDefaultGrain));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_ExecOverheadReduce(benchmark::State& state) {
  const auto values = hash_sum_input(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec::detail::exec_hash_sum(
        values.data(), values.size(), exec::kDefaultGrain));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

BENCHMARK(BM_ExecOverheadRawOmp)
    ->Arg(1 << 20)->Arg(1 << 24)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ExecOverheadReduce)
    ->Arg(1 << 20)->Arg(1 << 24)->Unit(benchmark::kMillisecond);

}  // namespace
