// Extension bench: assortativity-targeted rewiring (Xulvi-Brunet-Sokolov
// on the Algorithm III.1 machinery). Reports the assortativity trajectory
// under full bias in both directions, plus throughput — the "tuned null
// model family" use-case.

#include <cstdio>

#include "analysis/metrics.hpp"
#include "core/rewire.hpp"
#include "gen/datasets.hpp"
#include "gen/havel_hakimi.hpp"
#include "skip/erdos_renyi.hpp"
#include "util/timer.hpp"

int main() {
  using namespace nullgraph;
  // Two regimes: an ER graph (degrees concentrated -> wide attainable r
  // range) and the skewed as20-like graph (structural cutoffs pin the
  // assortative ceiling near the uniform value — the known scale-free
  // constraint, visible below).
  struct Instance {
    const char* label;
    EdgeList base;
  };
  const Instance instances[] = {
      {"ER(20000, avg deg 10)", erdos_renyi(20000, 10.0 / 19999.0, 3)},
      {"as20-like (Havel-Hakimi)", havel_hakimi(as20_like())},
  };
  for (const Instance& instance : instances) {
    const EdgeList& base = instance.base;
    std::printf("XBS rewiring on %s (m=%zu), bias=1.0\n", instance.label,
                base.size());
    std::printf("%-6s %14s %16s\n", "iters", "assortative_r",
                "disassortative_r");
    for (const std::size_t iters : {0u, 1u, 2u, 4u, 8u, 16u, 32u}) {
      EdgeList up = base;
      EdgeList down = base;
      if (iters > 0) {
        rewire_assortativity(up, {.iterations = iters,
                                  .seed = 7,
                                  .bias = 1.0,
                                  .target = MixingTarget::kAssortative});
        rewire_assortativity(down,
                             {.iterations = iters,
                              .seed = 7,
                              .bias = 1.0,
                              .target = MixingTarget::kDisassortative});
      }
      std::printf("%-6zu %14.4f %16.4f\n", iters, degree_assortativity(up),
                  degree_assortativity(down));
    }
    std::printf("\n");
  }
  const EdgeList base = havel_hakimi(as20_like());

  Stopwatch watch;
  EdgeList timed = base;
  const RewireStats stats =
      rewire_assortativity(timed, {.iterations = 32, .seed = 9, .bias = 1.0});
  std::printf("\nthroughput: %.2fM proposals/s (%zu committed of %zu)\n",
              static_cast<double>(stats.attempted) / watch.seconds() / 1e6,
              stats.swapped, stats.attempted);
  return 0;
}
