// Ablation: probability-generation heuristics (Section IV-A). Compares the
// paper's stub-matching formulation, our greedy allocator, capped
// Chung-Lu, and Chung-Lu + fixed-point refinement (the paper's future-work
// correction), on solver residuals and wall time per dataset.

#include <cstdio>

#include "gen/datasets.hpp"
#include "prob/heuristics.hpp"
#include "util/timer.hpp"

int main() {
  using namespace nullgraph;
  std::printf("Probability heuristic ablation: expected-degree residuals\n");
  std::printf("%-12s %-22s %14s %14s %12s %10s\n", "dataset", "method",
              "max_class_err", "stub_err", "edge_err", "time_ms");
  for (const DatasetSpec& spec : quality_datasets()) {
    const DegreeDistribution dist = build_dataset(
        spec, std::min(spec.default_scale, 100000.0 / spec.n));
    struct Entry {
      const char* name;
      ProbabilityMatrix matrix;
      double ms;
    };
    std::vector<Entry> entries;
    {
      Stopwatch w;
      auto P = greedy_probabilities(dist);
      entries.push_back({"greedy (ours)", std::move(P), w.seconds() * 1e3});
    }
    {
      Stopwatch w;
      auto P = stub_matching_probabilities(dist);
      entries.push_back({"stub-matching (paper)", std::move(P),
                         w.seconds() * 1e3});
    }
    {
      Stopwatch w;
      auto P = chung_lu_probabilities(dist);
      entries.push_back({"chung-lu capped", std::move(P), w.seconds() * 1e3});
    }
    {
      Stopwatch w;
      auto P = chung_lu_probabilities(dist);
      refine_probabilities(P, dist, 32);
      entries.push_back({"chung-lu + refine32", std::move(P),
                         w.seconds() * 1e3});
    }
    for (const Entry& entry : entries) {
      const ProbabilityDiagnostics diag = diagnose(entry.matrix, dist);
      std::printf("%-12s %-22s %14.5f %14.5f %12.5f %10.2f\n",
                  spec.name.c_str(), entry.name,
                  diag.max_relative_degree_error,
                  diag.total_relative_stub_error, diag.relative_edge_error,
                  entry.ms);
    }
  }
  return 0;
}
