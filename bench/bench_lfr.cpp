// Section VI: LFR-like hierarchical generation quality. For a sweep of
// mixing parameters, report achieved mu, degree-distribution fit, and the
// observation motivating the section: per-community degree distributions
// of small skewed communities stay accurate because every layer runs the
// full probability-solver pipeline (where plain Chung-Lu layering fails).

#include <cstdio>
#include <vector>

#include "analysis/community.hpp"
#include "analysis/gini.hpp"
#include "ds/csr_graph.hpp"
#include "ds/edge_list.hpp"
#include "lfr/lfr.hpp"
#include "util/timer.hpp"

int main() {
  using namespace nullgraph;
  std::printf("LFR-like generation (n=50k, degrees ~ d^-2.5 in [5,100], "
              "communities ~ s^-1.5 in [50,800])\n");
  std::printf("%-6s %10s %12s %10s %12s %10s %10s %10s %10s\n", "mu",
              "edges", "communities", "mu_out", "avg_degree", "gini",
              "time_s", "lpa_nmi", "lpa_Q");
  for (const double mu : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6}) {
    LfrParams params;
    params.n = 50'000;
    params.degree_exponent = 2.5;
    params.dmin = 5;
    params.dmax = 100;
    params.community_exponent = 1.5;
    params.cmin = 50;
    params.cmax = 800;
    params.mu = mu;
    params.seed = 20;
    params.swap_iterations = 3;
    Stopwatch watch;
    const LfrGraph graph = generate_lfr(params);
    const double seconds = watch.seconds();
    const auto degrees = degrees_of(graph.edges, params.n);
    // The benchmark's purpose: recovery by a community detector degrades
    // as mu rises (Section VI).
    const CsrGraph csr(graph.edges, params.n);
    const auto detected = label_propagation(csr, {.seed = 31});
    const double nmi =
        normalized_mutual_information(detected, graph.community);
    const double q = modularity(graph.edges, detected);
    std::printf("%-6.2f %10zu %12zu %10.4f %12.2f %10.4f %10.3f %10.4f "
                "%10.4f\n",
                mu, graph.edges.size(), graph.num_communities,
                graph.achieved_mu,
                2.0 * static_cast<double>(graph.edges.size()) /
                    static_cast<double>(params.n),
                gini_coefficient(degrees), seconds, nmi, q);
  }
  return 0;
}
