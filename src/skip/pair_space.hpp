#pragma once
// Shared internals of Algorithm IV.2's edge-skipping: the pair-space
// decode, the geometric-skip traversal, and the stateless task seeding.
//
// Extracted from edge_skip.cpp so the sharded out-of-core generator
// (sharded_skip.hpp) emits EXACTLY the same streams: bit-identical
// regeneration of any shard depends on both paths sharing these
// definitions, not re-implementing them. Everything here is
// deterministic in (seed, pair, chunk) and free of global state.

#include <cmath>
#include <cstdint>

#include "ds/degree_distribution.hpp"
#include "ds/edge.hpp"
#include "util/rng.hpp"

namespace nullgraph::skip_detail {

/// Stateless task seed: decorrelates (seed, pair, chunk) triples.
inline std::uint64_t task_seed(std::uint64_t seed, std::uint64_t pair,
                               std::uint64_t chunk) {
  std::uint64_t state = seed ^ (pair * 0x9e3779b97f4a7c15ULL) ^
                        (chunk * 0xbf58476d1ce4e5b9ULL);
  splitmix64_next(state);
  return splitmix64_next(state);
}

/// Pair space between two distinct classes (hi class index > lo class
/// index) or within one class (hi == lo).
struct PairSpace {
  std::uint64_t size = 0;      // number of candidate pairs
  std::uint64_t lo_count = 0;  // N(j): row stride for the decode
  std::uint64_t hi_offset = 0; // first vertex id of the hi class
  std::uint64_t lo_offset = 0; // first vertex id of the lo class
  bool diagonal = false;

  /// Decodes pair index t (0-based) into a concrete edge.
  Edge decode(std::uint64_t t) const noexcept {
    if (!diagonal) {
      const std::uint64_t u = t / lo_count;
      const std::uint64_t v = t % lo_count;
      return {static_cast<VertexId>(hi_offset + u),
              static_cast<VertexId>(lo_offset + v)};
    }
    // Triangular decode: t = u(u-1)/2 + v with 0 <= v < u. The float sqrt
    // gets us within one of the right row; integer correction makes the
    // decode exact for any t < 2^63.
    std::uint64_t u = static_cast<std::uint64_t>(
        (1.0 + std::sqrt(1.0 + 8.0 * static_cast<double>(t))) / 2.0);
    while (u >= 1 && u * (u - 1) / 2 > t) --u;
    while ((u + 1) * u / 2 <= t) ++u;
    const std::uint64_t v = t - u * (u - 1) / 2;
    return {static_cast<VertexId>(hi_offset + u),
            static_cast<VertexId>(lo_offset + v)};
  }
};

inline PairSpace make_space(const DegreeDistribution& dist, std::size_t hi,
                            std::size_t lo) {
  PairSpace space;
  const std::uint64_t n_hi = dist.count_of_class(hi);
  const std::uint64_t n_lo = dist.count_of_class(lo);
  space.lo_count = n_lo;
  space.hi_offset = dist.class_offset(hi);
  space.lo_offset = dist.class_offset(lo);
  space.diagonal = hi == lo;
  space.size = space.diagonal ? n_hi * (n_hi - 1) / 2 : n_hi * n_lo;
  return space;
}

/// Inverts the flat class-pair index: pair = k(k+1)/2 + j with k >= j.
inline void pair_to_classes(std::uint64_t pair, std::uint64_t& k,
                            std::uint64_t& j) {
  k = static_cast<std::uint64_t>(
      (std::sqrt(8.0 * static_cast<double>(pair) + 1.0) - 1.0) / 2.0);
  while (k * (k + 1) / 2 > pair) --k;
  while ((k + 1) * (k + 2) / 2 <= pair) ++k;
  j = pair - k * (k + 1) / 2;
}

/// Geometric-skip traversal of [begin, end) with per-pair probability p;
/// calls emit(t) for each selected index. The heart of Algorithm IV.2.
template <typename EmitFn>
void traverse(double p, std::uint64_t begin, std::uint64_t end,
              Xoshiro256ss& rng, EmitFn&& emit) {
  // !(p > 0) rather than p <= 0: a NaN probability (corrupted matrix) must
  // fall through to the early return, not reach the log-skip arithmetic
  // where it would drive `t` through undefined float->int conversion.
  if (!(p > 0.0) || begin >= end) return;
  if (p >= 1.0) {
    for (std::uint64_t t = begin; t < end; ++t) emit(t);
    return;
  }
  const double log_1mp = std::log1p(-p);
  std::uint64_t t = begin;
  while (true) {
    const double r = rng.uniform_open();
    const double skip = std::floor(std::log(r) / log_1mp);
    if (skip >= static_cast<double>(end - t)) return;
    t += static_cast<std::uint64_t>(skip);
    if (t >= end) return;
    emit(t);
    if (++t >= end) return;
  }
}

}  // namespace nullgraph::skip_detail
