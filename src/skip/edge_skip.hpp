#pragma once
// Parallel edge-skipping (Algorithm IV.2, after Batagelj & Brandes [4],
// Miller & Hagberg [21], Slota et al. [33]).
//
// Every unordered vertex pair between degree classes i and j forms an
// ordered "space"; instead of flipping a coin per pair (Bernoulli,
// O(n^2)), we jump through each space with geometric skip lengths
//   l = floor(log(r) / log(1 - p)),  r ~ U(0,1),
// touching only the selected pairs — O(m) expected work. Spaces whose
// expected yield is large are split into independently-seeded chunks, so
// parallelism is available both across and within class pairs; splitting a
// Bernoulli process at an index boundary leaves it a Bernoulli process,
// so the output distribution is exactly that of the O(n^2) model.
//
// Output is always simple: each pair is considered at most once.

#include <cstdint>

#include "ds/degree_distribution.hpp"
#include "ds/edge_list.hpp"
#include "exec/phase_timing.hpp"
#include "prob/probability_matrix.hpp"
#include "robustness/governance.hpp"

namespace nullgraph {

struct EdgeSkipConfig {
  std::uint64_t seed = 1;
  /// Target expected edges per parallel task; spaces expecting more are
  /// split. Chunking is data-dependent only, so output is reproducible for
  /// a fixed seed regardless of thread count.
  std::uint64_t edges_per_task = 1u << 16;
  /// Optional run governance, polled once per task (class pair or chunk).
  /// On a stop verdict the remaining tasks emit nothing; the partial edge
  /// list is still simple (each pair considered at most once).
  const RunGovernor* governor = nullptr;
  /// Optional exec-layer phase records (wall time / chunk counts).
  exec::PhaseTimingSink* timings = nullptr;
};

/// Generates a simple edge list whose degree distribution matches `dist` in
/// expectation when `P` solves the Section IV-A system. Vertex ids follow
/// the DegreeDistribution convention (classes ascending, contiguous ids).
EdgeList edge_skip_generate(const ProbabilityMatrix& P,
                            const DegreeDistribution& dist,
                            const EdgeSkipConfig& config = {});

/// Serial reference implementation (single space traversal per class pair,
/// exactly Algorithm IV.2's inner loop); used for validation.
EdgeList edge_skip_generate_serial(const ProbabilityMatrix& P,
                                   const DegreeDistribution& dist,
                                   std::uint64_t seed = 1);

}  // namespace nullgraph
