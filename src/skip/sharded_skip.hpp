#pragma once
// Deterministic sharding of the edge-skip Bernoulli space, the generation
// half of out-of-core mode (DESIGN.md §10).
//
// edge_skip_generate emits edges in a canonical order: all "small" class
// pairs ascending (one independently-seeded stream per pair), then all
// pre-split big-space chunks ascending. This file names that order — a
// flat list of UNITS — and slices it into `shard_count` contiguous ranges
// at yield-balanced cut points (shard_unit_range). Because every unit's
// RNG stream is stateless in (seed, pair, chunk):
//
//   * shards generate independently, in any order, on any thread count;
//   * concatenating shards 0..S-1 is BIT-IDENTICAL to the in-core output;
//   * a lost or corrupt shard regenerates alone, bit-identically — the
//     property shard-granular resume (--resume <spill-dir>) is built on;
//   * units never straddle shards, so shards partition the candidate-pair
//     space: an edge can only ever appear in one shard, which is why the
//     shard-local dedup census (ds/shard_census.hpp) is sound without any
//     cross-shard structure.
//
// Memory: shard boundaries are chosen so each shard's EXPECTED yield is
// ~expected_edges / shard_count (up to one unit's yield, itself bounded
// by edges_per_task for big chunks) — not so each shard holds the same
// number of units. Powerlaw class structure concentrates most edges in a
// few early class pairs; a count-balanced slice would leave shard 0
// holding nearly everything and defeat the memory bound out-of-core mode
// exists to provide.

#include <cstdint>
#include <utility>
#include <vector>

#include "ds/degree_distribution.hpp"
#include "ds/edge_list.hpp"
#include "prob/probability_matrix.hpp"
#include "skip/edge_skip.hpp"

namespace nullgraph {

/// The canonical unit list for one (P, dist, seed, edges_per_task). Built
/// once per run; O(num class pairs) memory, no per-unit PairSpace stored
/// (spaces are recomputed on demand — the plan must stay small even when
/// the graph does not fit in memory).
struct SkipShardPlan {
  std::uint64_t seed = 0;
  std::uint64_t edges_per_task = 0;

  /// Class-pair ids whose whole space is one unit, ascending.
  std::vector<std::uint64_t> small_pairs;

  /// Pre-split chunk of a big space; (pair, chunk) ascending.
  struct BigChunk {
    std::uint64_t pair = 0;
    std::uint64_t chunk = 0;
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
  };
  std::vector<BigChunk> big_chunks;

  /// Expected edges over all units (== P.expected_edges(dist) restricted
  /// to positive entries).
  double expected_edges = 0.0;

  /// Expected yield of each unit in canonical order (small pairs then big
  /// chunks); prefix sums of this drive shard_unit_range's cut points.
  std::vector<double> unit_yields;

  [[nodiscard]] std::uint64_t unit_count() const noexcept {
    return small_pairs.size() + big_chunks.size();
  }
};

/// Enumerates units in canonical order. Uses config.{seed, edges_per_task}
/// with EXACTLY edge_skip_generate's small/big classification arithmetic —
/// the two must never diverge, or shard concatenation stops matching the
/// in-core output.
SkipShardPlan plan_edge_skip(const ProbabilityMatrix& P,
                             const DegreeDistribution& dist,
                             const EdgeSkipConfig& config = {});

/// Contiguous unit range [begin, end) of shard `shard_index` under the
/// yield-balanced partition: cut s sits at the first unit whose prefix
/// yield reaches expected_edges * s / shard_count. A pure, deterministic
/// function of (plan, shard_count) — resume and fsck rebuild the plan
/// from the manifest and recover byte-identical boundaries. Adjacent
/// shards tile exactly (shard s's end == shard s+1's begin); falls back
/// to the count-balanced block_range when yields are absent or all zero.
std::pair<std::uint64_t, std::uint64_t> shard_unit_range(
    const SkipShardPlan& plan, std::uint64_t shard_index,
    std::uint64_t shard_count);

/// Generates shard `shard_index` of `shard_count`: the units in
/// shard_unit_range(plan, shard_index, shard_count). Parallel inside the
/// shard (exec::collect, governed via config.governor); the returned
/// list's order is the canonical unit order restricted to this shard.
/// Precondition: plan built from the same (P, dist, config).
EdgeList edge_skip_generate_shard(const ProbabilityMatrix& P,
                                  const DegreeDistribution& dist,
                                  const SkipShardPlan& plan,
                                  const EdgeSkipConfig& config,
                                  std::uint64_t shard_index,
                                  std::uint64_t shard_count);

}  // namespace nullgraph
