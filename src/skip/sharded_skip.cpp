#include "skip/sharded_skip.hpp"

#include <algorithm>
#include <cmath>

#include "exec/exec.hpp"
#include "skip/pair_space.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace nullgraph {

using skip_detail::PairSpace;
using skip_detail::make_space;
using skip_detail::pair_to_classes;
using skip_detail::task_seed;
using skip_detail::traverse;

SkipShardPlan plan_edge_skip(const ProbabilityMatrix& P,
                             const DegreeDistribution& dist,
                             const EdgeSkipConfig& config) {
  SkipShardPlan plan;
  plan.seed = config.seed;
  plan.edges_per_task = config.edges_per_task;
  // Yields accumulate per kind during the single pass, then concatenate in
  // canonical unit order (all small pairs before all big chunks).
  std::vector<double> small_yields, chunk_yields;
  const std::size_t nc = dist.num_classes();
  for (std::uint64_t k = 0, pair = 0; k < nc; ++k) {
    for (std::uint64_t j = 0; j <= k; ++j, ++pair) {
      const double p = P.at(k, j);
      if (!(p > 0.0)) continue;  // also skips NaN (see traverse)
      const PairSpace space = make_space(dist, k, j);
      // Same float arithmetic as edge_skip_generate's classification — the
      // <= comparison must agree bit-for-bit on the boundary.
      const double p_eff = std::min(p, 1.0);
      const double expected = p_eff * static_cast<double>(space.size);
      plan.expected_edges += expected;
      if (expected <= static_cast<double>(config.edges_per_task)) {
        plan.small_pairs.push_back(pair);
        small_yields.push_back(expected);
        continue;
      }
      const std::uint64_t chunks = static_cast<std::uint64_t>(
          expected / static_cast<double>(config.edges_per_task)) + 1;
      for (std::uint64_t c = 0; c < chunks; ++c) {
        const auto [begin, end] =
            block_range(static_cast<int>(c), static_cast<int>(chunks),
                        space.size);
        plan.big_chunks.push_back({pair, c, begin, end});
        chunk_yields.push_back(p_eff * static_cast<double>(end - begin));
      }
    }
  }
  plan.unit_yields = std::move(small_yields);
  plan.unit_yields.insert(plan.unit_yields.end(), chunk_yields.begin(),
                          chunk_yields.end());
  return plan;
}

std::pair<std::uint64_t, std::uint64_t> shard_unit_range(
    const SkipShardPlan& plan, std::uint64_t shard_index,
    std::uint64_t shard_count) {
  const std::uint64_t units = plan.unit_count();
  if (shard_count == 0) return {0, units};
  if (!(plan.expected_edges > 0.0) || plan.unit_yields.size() != units) {
    const auto [begin, end] =
        block_range(static_cast<int>(shard_index),
                    static_cast<int>(shard_count), units);
    return {begin, end};
  }
  // Cut s sits at the first unit whose (exclusive) prefix yield reaches
  // total * s / shard_count. One sequential scan — the prefix sum must
  // accumulate in the same order on every call or adjacent shards computed
  // in different processes (generate vs. resume) would stop tiling.
  const double total = plan.expected_edges;
  const double lo = total * static_cast<double>(shard_index) /
                    static_cast<double>(shard_count);
  const double hi = total * static_cast<double>(shard_index + 1) /
                    static_cast<double>(shard_count);
  std::uint64_t begin = units;
  std::uint64_t end = units;
  double prefix = 0.0;
  for (std::uint64_t u = 0; u < units; ++u) {
    if (begin == units && prefix >= lo) begin = u;
    if (begin != units && prefix >= hi) {
      end = u;
      break;
    }
    prefix += plan.unit_yields[u];
  }
  if (shard_index + 1 == shard_count) end = units;  // absorb float residue
  if (end < begin) end = begin;
  return {begin, end};
}

EdgeList edge_skip_generate_shard(const ProbabilityMatrix& P,
                                  const DegreeDistribution& dist,
                                  const SkipShardPlan& plan,
                                  const EdgeSkipConfig& config,
                                  std::uint64_t shard_index,
                                  std::uint64_t shard_count) {
  const auto [unit_begin, unit_end] =
      shard_unit_range(plan, shard_index, shard_count);

  exec::ParallelContext ctx;
  ctx.seed = config.seed;
  ctx.governor = config.governor;
  ctx.timings = config.timings;
  ctx.phase = "edge generation (shard)";

  const std::uint64_t num_small = plan.small_pairs.size();
  // Grain 1: per-unit buffers concatenated in unit order. The grain only
  // shapes parallel efficiency — output order is unit-ascending either
  // way, which is what makes shard concatenation == in-core output.
  return exec::collect<Edge>(
      ctx, unit_end - unit_begin, 1,
      [&, unit_begin = unit_begin](const exec::Chunk& chunk, EdgeList& mine) {
        for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
          const std::uint64_t unit = unit_begin + i;
          std::uint64_t pair = 0, rng_chunk = 0, begin = 0, end = 0;
          if (unit < num_small) {
            pair = plan.small_pairs[unit];
          } else {
            const SkipShardPlan::BigChunk& bc =
                plan.big_chunks[unit - num_small];
            pair = bc.pair;
            rng_chunk = bc.chunk;
            begin = bc.begin;
            end = bc.end;
          }
          std::uint64_t k = 0, j = 0;
          pair_to_classes(pair, k, j);
          const double p = P.at(k, j);
          const PairSpace space = make_space(dist, k, j);
          if (unit < num_small) end = space.size;
          Xoshiro256ss rng(task_seed(plan.seed, pair, rng_chunk));
          traverse(p, begin, end, rng,
                   [&](std::uint64_t t) { mine.push_back(space.decode(t)); });
        }
      });
}

}  // namespace nullgraph
