#include "skip/erdos_renyi.hpp"

#include "ds/degree_distribution.hpp"
#include "prob/probability_matrix.hpp"
#include "skip/edge_skip.hpp"

namespace nullgraph {

EdgeList erdos_renyi(std::uint64_t n, double p, std::uint64_t seed,
                     std::uint64_t edges_per_task) {
  if (n == 0) return {};
  // One degree class holding all n vertices; degree value is irrelevant to
  // the space decode (picked even so the stub total is valid).
  DegreeDistribution dist({{2, n}});
  ProbabilityMatrix P(1);
  P.set(0, 0, p);
  EdgeSkipConfig config;
  config.seed = seed;
  config.edges_per_task = edges_per_task;
  return edge_skip_generate(P, dist, config);
}

}  // namespace nullgraph
