#pragma once
// Erdős–Rényi G(n, p) via edge-skipping: the single-space special case of
// Algorithm IV.2. Useful on its own and as the simplest correctness probe
// of the skip machinery (expected edge count p * C(n,2)).

#include <cstdint>

#include "ds/edge_list.hpp"

namespace nullgraph {

/// Simple G(n, p) sample; O(p n^2) expected work, parallel across chunks.
EdgeList erdos_renyi(std::uint64_t n, double p, std::uint64_t seed = 1,
                     std::uint64_t edges_per_task = 1u << 16);

}  // namespace nullgraph
