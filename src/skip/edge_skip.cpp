#include "skip/edge_skip.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "exec/exec.hpp"
#include "skip/pair_space.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace nullgraph {

using skip_detail::PairSpace;
using skip_detail::make_space;
using skip_detail::pair_to_classes;
using skip_detail::task_seed;
using skip_detail::traverse;

namespace {

struct Task {
  std::uint64_t pair_index = 0;
  std::uint64_t chunk = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  double p = 0.0;
  PairSpace space;
};

}  // namespace

EdgeList edge_skip_generate(const ProbabilityMatrix& P,
                            const DegreeDistribution& dist,
                            const EdgeSkipConfig& config) {
  const std::size_t nc = dist.num_classes();
  const std::uint64_t num_pairs = nc * (nc + 1) / 2;
  // Spaces whose expected yield exceeds edges_per_task become explicit
  // chunked tasks (few: bounded by m / edges_per_task); everything else is
  // handled inline by the pair loop. Chunking depends only on the data, so
  // the output is thread-count independent for a fixed seed.
  std::vector<Task> big_tasks;
  for (std::uint64_t k = 0, pair = 0; k < nc; ++k) {
    for (std::uint64_t j = 0; j <= k; ++j, ++pair) {
      const double p = P.at(k, j);
      if (!(p > 0.0)) continue;  // also skips NaN (see traverse)
      const PairSpace space = make_space(dist, k, j);
      const double expected = std::min(p, 1.0) * static_cast<double>(space.size);
      if (expected <= static_cast<double>(config.edges_per_task)) continue;
      const std::uint64_t chunks = static_cast<std::uint64_t>(
          expected / static_cast<double>(config.edges_per_task)) + 1;
      for (std::uint64_t c = 0; c < chunks; ++c) {
        const auto [begin, end] =
            block_range(static_cast<int>(c), static_cast<int>(chunks),
                        space.size);
        big_tasks.push_back({pair, c, begin, end, p, space});
      }
    }
  }

  exec::ParallelContext ctx;
  ctx.seed = config.seed;
  ctx.governor = config.governor;
  ctx.timings = config.timings;
  ctx.phase = "edge generation";
  // Small spaces: one task per class pair. Per-chunk buffers concatenated
  // in chunk order make the output order thread-count-invariant; the edges
  // themselves come from the stateless (seed, pair, chunk) streams, so the
  // full list is bit-identical at any thread count. (sharded_skip.hpp
  // relies on this exact order — small pairs ascending, then big-task
  // chunks ascending — to make shard concatenation reproduce it.)
  EdgeList edges = exec::collect<Edge>(
      ctx, num_pairs, 64, [&](const exec::Chunk& chunk, EdgeList& mine) {
        for (std::uint64_t pair = chunk.begin; pair < chunk.end; ++pair) {
          std::uint64_t k = 0, j = 0;
          pair_to_classes(pair, k, j);
          const double p = P.at(k, j);
          if (!(p > 0.0)) continue;  // also skips NaN (see traverse)
          const PairSpace space = make_space(dist, k, j);
          if (std::min(p, 1.0) * static_cast<double>(space.size) >
              static_cast<double>(config.edges_per_task))
            continue;  // handled by the big-task loop
          Xoshiro256ss rng(task_seed(config.seed, pair, 0));
          traverse(p, 0, space.size, rng,
                   [&](std::uint64_t t) { mine.push_back(space.decode(t)); });
        }
      });
  // Large spaces: one exec chunk per pre-split task chunk.
  EdgeList big = exec::collect<Edge>(
      ctx, big_tasks.size(), 1, [&](const exec::Chunk& chunk, EdgeList& mine) {
        for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
          const Task& task = big_tasks[i];
          Xoshiro256ss rng(
              task_seed(config.seed, task.pair_index, task.chunk));
          traverse(task.p, task.begin, task.end, rng, [&](std::uint64_t t) {
            mine.push_back(task.space.decode(t));
          });
        }
      });
  edges.insert(edges.end(), big.begin(), big.end());
  return edges;
}

EdgeList edge_skip_generate_serial(const ProbabilityMatrix& P,
                                   const DegreeDistribution& dist,
                                   std::uint64_t seed) {
  EdgeList edges;
  const std::size_t nc = dist.num_classes();
  for (std::uint64_t k = 0, pair = 0; k < nc; ++k) {
    for (std::uint64_t j = 0; j <= k; ++j, ++pair) {
      const double p = P.at(k, j);
      if (!(p > 0.0)) continue;  // also skips NaN (see traverse)
      const PairSpace space = make_space(dist, k, j);
      Xoshiro256ss rng(task_seed(seed, pair, 0));
      traverse(p, 0, space.size, rng,
               [&](std::uint64_t t) { edges.push_back(space.decode(t)); });
    }
  }
  return edges;
}

}  // namespace nullgraph
