#include "skip/edge_skip.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "exec/exec.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace nullgraph {

namespace {

/// Stateless task seed: decorrelates (seed, pair, chunk) triples.
std::uint64_t task_seed(std::uint64_t seed, std::uint64_t pair,
                        std::uint64_t chunk) {
  std::uint64_t state = seed ^ (pair * 0x9e3779b97f4a7c15ULL) ^
                        (chunk * 0xbf58476d1ce4e5b9ULL);
  splitmix64_next(state);
  return splitmix64_next(state);
}

/// Pair space between two distinct classes (hi class index > lo class
/// index) or within one class (hi == lo).
struct PairSpace {
  std::uint64_t size = 0;      // number of candidate pairs
  std::uint64_t lo_count = 0;  // N(j): row stride for the decode
  std::uint64_t hi_offset = 0; // first vertex id of the hi class
  std::uint64_t lo_offset = 0; // first vertex id of the lo class
  bool diagonal = false;

  /// Decodes pair index t (0-based) into a concrete edge.
  Edge decode(std::uint64_t t) const noexcept {
    if (!diagonal) {
      const std::uint64_t u = t / lo_count;
      const std::uint64_t v = t % lo_count;
      return {static_cast<VertexId>(hi_offset + u),
              static_cast<VertexId>(lo_offset + v)};
    }
    // Triangular decode: t = u(u-1)/2 + v with 0 <= v < u. The float sqrt
    // gets us within one of the right row; integer correction makes the
    // decode exact for any t < 2^63.
    std::uint64_t u = static_cast<std::uint64_t>(
        (1.0 + std::sqrt(1.0 + 8.0 * static_cast<double>(t))) / 2.0);
    while (u >= 1 && u * (u - 1) / 2 > t) --u;
    while ((u + 1) * u / 2 <= t) ++u;
    const std::uint64_t v = t - u * (u - 1) / 2;
    return {static_cast<VertexId>(hi_offset + u),
            static_cast<VertexId>(lo_offset + v)};
  }
};

PairSpace make_space(const DegreeDistribution& dist, std::size_t hi,
                     std::size_t lo) {
  PairSpace space;
  const std::uint64_t n_hi = dist.count_of_class(hi);
  const std::uint64_t n_lo = dist.count_of_class(lo);
  space.lo_count = n_lo;
  space.hi_offset = dist.class_offset(hi);
  space.lo_offset = dist.class_offset(lo);
  space.diagonal = hi == lo;
  space.size = space.diagonal ? n_hi * (n_hi - 1) / 2 : n_hi * n_lo;
  return space;
}

/// Geometric-skip traversal of [begin, end) with per-pair probability p;
/// calls emit(t) for each selected index. The heart of Algorithm IV.2.
template <typename EmitFn>
void traverse(double p, std::uint64_t begin, std::uint64_t end,
              Xoshiro256ss& rng, EmitFn&& emit) {
  // !(p > 0) rather than p <= 0: a NaN probability (corrupted matrix) must
  // fall through to the early return, not reach the log-skip arithmetic
  // where it would drive `t` through undefined float->int conversion.
  if (!(p > 0.0) || begin >= end) return;
  if (p >= 1.0) {
    for (std::uint64_t t = begin; t < end; ++t) emit(t);
    return;
  }
  const double log_1mp = std::log1p(-p);
  std::uint64_t t = begin;
  while (true) {
    const double r = rng.uniform_open();
    const double skip = std::floor(std::log(r) / log_1mp);
    if (skip >= static_cast<double>(end - t)) return;
    t += static_cast<std::uint64_t>(skip);
    if (t >= end) return;
    emit(t);
    if (++t >= end) return;
  }
}

struct Task {
  std::uint64_t pair_index = 0;
  std::uint64_t chunk = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  double p = 0.0;
  PairSpace space;
};

}  // namespace

EdgeList edge_skip_generate(const ProbabilityMatrix& P,
                            const DegreeDistribution& dist,
                            const EdgeSkipConfig& config) {
  const std::size_t nc = dist.num_classes();
  const std::uint64_t num_pairs = nc * (nc + 1) / 2;
  // Spaces whose expected yield exceeds edges_per_task become explicit
  // chunked tasks (few: bounded by m / edges_per_task); everything else is
  // handled inline by the pair loop. Chunking depends only on the data, so
  // the output is thread-count independent for a fixed seed.
  std::vector<Task> big_tasks;
  for (std::uint64_t k = 0, pair = 0; k < nc; ++k) {
    for (std::uint64_t j = 0; j <= k; ++j, ++pair) {
      const double p = P.at(k, j);
      if (!(p > 0.0)) continue;  // also skips NaN (see traverse)
      const PairSpace space = make_space(dist, k, j);
      const double expected = std::min(p, 1.0) * static_cast<double>(space.size);
      if (expected <= static_cast<double>(config.edges_per_task)) continue;
      const std::uint64_t chunks = static_cast<std::uint64_t>(
          expected / static_cast<double>(config.edges_per_task)) + 1;
      for (std::uint64_t c = 0; c < chunks; ++c) {
        const auto [begin, end] =
            block_range(static_cast<int>(c), static_cast<int>(chunks),
                        space.size);
        big_tasks.push_back({pair, c, begin, end, p, space});
      }
    }
  }

  exec::ParallelContext ctx;
  ctx.seed = config.seed;
  ctx.governor = config.governor;
  ctx.timings = config.timings;
  ctx.phase = "edge generation";
  // Small spaces: one task per class pair. Per-chunk buffers concatenated
  // in chunk order make the output order thread-count-invariant; the edges
  // themselves come from the stateless (seed, pair, chunk) streams, so the
  // full list is bit-identical at any thread count.
  EdgeList edges = exec::collect<Edge>(
      ctx, num_pairs, 64, [&](const exec::Chunk& chunk, EdgeList& mine) {
        for (std::uint64_t pair = chunk.begin; pair < chunk.end; ++pair) {
          // Invert pair -> (k, j), k >= j, pair = k(k+1)/2 + j.
          std::uint64_t k = static_cast<std::uint64_t>(
              (std::sqrt(8.0 * static_cast<double>(pair) + 1.0) - 1.0) / 2.0);
          while (k * (k + 1) / 2 > pair) --k;
          while ((k + 1) * (k + 2) / 2 <= pair) ++k;
          const std::uint64_t j = pair - k * (k + 1) / 2;
          const double p = P.at(k, j);
          if (!(p > 0.0)) continue;  // also skips NaN (see traverse)
          const PairSpace space = make_space(dist, k, j);
          if (std::min(p, 1.0) * static_cast<double>(space.size) >
              static_cast<double>(config.edges_per_task))
            continue;  // handled by the big-task loop
          Xoshiro256ss rng(task_seed(config.seed, pair, 0));
          traverse(p, 0, space.size, rng,
                   [&](std::uint64_t t) { mine.push_back(space.decode(t)); });
        }
      });
  // Large spaces: one exec chunk per pre-split task chunk.
  EdgeList big = exec::collect<Edge>(
      ctx, big_tasks.size(), 1, [&](const exec::Chunk& chunk, EdgeList& mine) {
        for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
          const Task& task = big_tasks[i];
          Xoshiro256ss rng(
              task_seed(config.seed, task.pair_index, task.chunk));
          traverse(task.p, task.begin, task.end, rng, [&](std::uint64_t t) {
            mine.push_back(task.space.decode(t));
          });
        }
      });
  edges.insert(edges.end(), big.begin(), big.end());
  return edges;
}

EdgeList edge_skip_generate_serial(const ProbabilityMatrix& P,
                                   const DegreeDistribution& dist,
                                   std::uint64_t seed) {
  EdgeList edges;
  const std::size_t nc = dist.num_classes();
  for (std::uint64_t k = 0, pair = 0; k < nc; ++k) {
    for (std::uint64_t j = 0; j <= k; ++j, ++pair) {
      const double p = P.at(k, j);
      if (!(p > 0.0)) continue;  // also skips NaN (see traverse)
      const PairSpace space = make_space(dist, k, j);
      Xoshiro256ss rng(task_seed(seed, pair, 0));
      traverse(p, 0, space.size, rng,
               [&](std::uint64_t t) { edges.push_back(space.decode(t)); });
    }
  }
  return edges;
}

}  // namespace nullgraph
