#pragma once
// The `nullgraph serve` daemon loop: accept connections on a Unix-domain
// socket, run admission + request parsing inline, hand accepted jobs to
// the Scheduler, answer control verbs (ping/stats/shutdown) directly.
//
// Lifecycle:
//   1. listen on socket_path (stale socket files are replaced);
//   2. recover the checkpoint spool BEFORE accepting — jobs a previous
//      daemon was SIGKILLed out of either resume to a committed output or
//      fail cleanly (CRC-rejected snapshot), never leave torn files;
//   3. accept loop with a poll deadline so the CLI's signal flag is
//      noticed within accept_poll_ms; a signal (or a shutdown request)
//      stops admission, evicts the queue with typed kJobEvicted replies,
//      and drains running jobs;
//   4. report totals to the caller.
//
// Chaos hooks (FaultPlan): accept_fail drops the next N accepted
// connections on the floor; slow_client_ms sleeps after each accept —
// both exist so scripts/chaos_serve.sh can drill the failure paths
// deterministically.

#include <atomic>
#include <cstdint>

#include "robustness/fault_injection.hpp"
#include "robustness/status.hpp"
#include "svc/scheduler.hpp"

namespace nullgraph::svc {

struct DaemonConfig {
  std::string socket_path;
  SchedulerConfig scheduler;
  /// Per-frame deadline for client traffic; a peer that stalls longer
  /// gets a kClientProtocol reply and is dropped.
  int read_timeout_ms = 5000;
  /// Accept-poll cadence: the upper bound on signal-to-shutdown latency.
  int accept_poll_ms = 200;
  /// Daemon-level chaos (accept_fail / slow_client_ms).
  FaultPlan faults;
  /// Borrowed CLI signal flag (the received signo, 0 while running).
  const std::atomic<int>* stop_signal = nullptr;
};

struct DaemonReport {
  SchedulerStats stats;
  std::size_t recovered = 0;
  std::uint64_t connections = 0;
  std::uint64_t protocol_errors = 0;
};

/// Runs the daemon until a signal or a shutdown request; blocks the
/// calling thread. kIoError only for socket-setup failures — per-client
/// trouble is handled (and counted) inside the loop.
Result<DaemonReport> run_daemon(const DaemonConfig& config);

}  // namespace nullgraph::svc
