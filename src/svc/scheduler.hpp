#pragma once
// Job scheduler for `nullgraph serve`: a bounded admission queue in front
// of N worker slots, each of which runs one whole generation pipeline at a
// time under its own governance.
//
// Fault-isolation contract (the reason this file exists):
//   - every job gets its OWN RunGovernor wiring — deadline, memory share
//     of the daemon ceiling, cancel token — so one job blowing its budget
//     curtails THAT job (best-so-far graph + Curtailment entry) and
//     touches nothing else;
//   - a job that fails outright (unreadable input, invariant violation,
//     even a stray exception) is reported to its client as a typed Status
//     and the slot moves on;
//   - admission is strictly bounded: a full queue (or an inline upload
//     that would push tracked bytes past the memory ceiling) is a typed
//     kOverloaded with a retry-after hint, never an allocation attempt;
//   - worker threads share the machine through ThreadArbiter leases, so
//     N concurrent pipelines never oversubscribe the OpenMP pool.
//
// Crash tolerance: jobs that request checkpointing (and a server-side
// output path) write a job-<id>.meta next to their checkpoint in the
// spool directory. recover_spool() — run by the daemon BEFORE accepting —
// finishes such jobs after a SIGKILL: a CRC-valid checkpoint resumes and
// commits its output atomically; a torn/corrupt one is a cleanly-failed
// job (kCheckpointInvalid), counted and removed, never UB.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "exec/thread_budget.hpp"
#include "robustness/fault_injection.hpp"
#include "robustness/governance.hpp"
#include "robustness/status.hpp"
#include "svc/job.hpp"
#include "util/thread_annotations.hpp"

namespace nullgraph::obs {
class MetricsRegistry;
class EventLog;
class FlightRecorder;
}

namespace nullgraph::svc {

struct SchedulerConfig {
  /// Concurrent worker slots (jobs running at once).
  int slots = 2;
  /// Jobs that may WAIT beyond the running ones; admission rejects past
  /// this with kOverloaded.
  std::size_t queue_capacity = 4;
  /// Global ceiling on tracked job memory (inline uploads at admission;
  /// each running job also gets ceiling/slots as its swap-phase
  /// RunBudget::max_memory_bytes). 0 = unlimited.
  std::size_t memory_ceiling_bytes = 0;
  /// Checkpoint + meta spool for crash recovery ("" disables).
  std::string spool_dir;
  /// Per-job run-report JSON directory ("" disables).
  std::string report_dir;
  /// Worker-thread pool handed out by the arbiter (0 = machine default).
  int total_threads = 0;
  /// Borrowed daemon-level registry for queue/admission/latency metrics.
  obs::MetricsRegistry* metrics = nullptr;
  /// Borrowed serve-wide structured event log (job lifecycle + pipeline
  /// events from every slot interleave here, keyed by job id).
  obs::EventLog* events = nullptr;
  /// Borrowed crash flight recorder; when `flight_path` is also set, the
  /// scheduler dumps the ring there whenever a job curtails or fails with
  /// kShardCorrupt (the daemon-side black-box triggers; fatal signals are
  /// the CLI's trigger).
  obs::FlightRecorder* flight = nullptr;
  std::string flight_path;
  /// Chaos: forwarded to each job's guardrails (fail_checkpoint_writes).
  FaultPlan faults;
};

struct SchedulerStats {
  std::size_t running = 0;
  std::size_t queued = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t evicted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t recovered = 0;
  /// Milliseconds since the scheduler was constructed.
  std::uint64_t uptime_ms = 0;
  /// Spool entries consumed at startup recovery (successful AND failed
  /// replays; `recovered` counts only the successes).
  std::uint64_t spool_replayed = 0;
  /// Finished jobs bucketed by the process exit code their final Status
  /// maps to, ascending by code. The `stats` verb and the `metrics` verb
  /// both render from this one tally.
  std::vector<std::pair<int, std::uint64_t>> jobs_by_exit_code;
};

class Scheduler {
 public:
  explicit Scheduler(SchedulerConfig config);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Admission control. On acceptance: writes the {"ok":true,"job_id":N}
  /// control frame, takes ownership of `client_fd` (-1 = no client, used
  /// by tests), enqueues, returns Ok. On rejection: returns kOverloaded
  /// (queue/memory full) or kJobEvicted (shutting down) WITHOUT writing
  /// to or closing the fd — the caller owns the reject reply.
  Status submit(JobSpec spec, int client_fd) NG_EXCLUDES(mutex_);

  /// Client-facing backoff hint: scales with how much work is ahead.
  std::uint64_t retry_after_ms() const NG_EXCLUDES(mutex_);

  SchedulerStats stats() const NG_EXCLUDES(mutex_);

  /// Pushes the current stats() into the config's MetricsRegistry as
  /// serve.* gauges (uptime, active slots, queue depth, tracked bytes,
  /// per-exit-code tallies) plus process memory — the daemon calls this
  /// before rendering the `metrics` verb so scrapes and `stats` replies
  /// derive from the same source of truth. No-op without a registry.
  void publish_metrics() NG_EXCLUDES(mutex_);

  /// Stops admission; with `evict_queued` every waiting job is answered
  /// kJobEvicted and dropped, otherwise the queue drains. Running jobs
  /// always finish. Idempotent; joins the workers.
  void shutdown(bool evict_queued) NG_EXCLUDES(mutex_);

  /// Startup crash recovery over the spool (see file comment). Returns
  /// the number of jobs resumed to completion.
  std::size_t recover_spool();

 private:
  struct Job {
    std::uint64_t id = 0;
    JobSpec spec;
    int client_fd = -1;
    CancelToken cancel;
    /// Absolute monotonic µs at admission; the traced "queue wait" span
    /// runs from here to dequeue.
    std::uint64_t admitted_us = 0;
  };

  void worker_loop();
  void run_job(Job job);
  Status execute(const Job& job, int granted_threads,
                 struct JobExecution& out);
  void finish_spool_entry(std::uint64_t id);

  SchedulerConfig config_;
  exec::ThreadArbiter arbiter_;
  std::vector<std::thread> workers_;

  mutable Mutex mutex_;
  std::condition_variable_any cv_;
  std::deque<Job> queue_ NG_GUARDED_BY(mutex_);
  bool stopping_ NG_GUARDED_BY(mutex_) = false;
  std::uint64_t next_id_ NG_GUARDED_BY(mutex_) = 1;
  std::size_t running_ NG_GUARDED_BY(mutex_) = 0;
  std::size_t tracked_bytes_ NG_GUARDED_BY(mutex_) = 0;
  SchedulerStats tallies_ NG_GUARDED_BY(mutex_);
  std::map<int, std::uint64_t> by_exit_code_ NG_GUARDED_BY(mutex_);
  std::uint64_t spool_replayed_ NG_GUARDED_BY(mutex_) = 0;
  const std::chrono::steady_clock::time_point started_ =
      std::chrono::steady_clock::now();
  bool joined_ = false;  // touched only by shutdown/destructor
};

}  // namespace nullgraph::svc
