#include "svc/daemon.hpp"

#include <unistd.h>

#include <chrono>
#include <thread>

#include "obs/json_writer.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "svc/wire.hpp"

namespace nullgraph::svc {

namespace {

std::string render_stats(const SchedulerStats& stats, const DaemonConfig& cfg) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("ok", true);
  w.kv("running", stats.running);
  w.kv("queued", stats.queued);
  w.kv("completed", stats.completed);
  w.kv("failed", stats.failed);
  w.kv("evicted", stats.evicted);
  w.kv("rejected", stats.rejected);
  w.kv("recovered", stats.recovered);
  w.kv("slots", cfg.scheduler.slots);
  w.kv("queue_capacity", cfg.scheduler.queue_capacity);
  w.kv("uptime_ms", stats.uptime_ms);
  w.kv("spool_replayed", stats.spool_replayed);
  w.key("exit_codes").begin_object();
  for (const auto& [code, count] : stats.jobs_by_exit_code)
    w.kv(std::to_string(code), count);
  w.end_object();
  w.end_object();
  return std::move(w).str();
}

/// The `metrics` verb's reply. Control frames are contractually JSON, so
/// the Prometheus exposition travels as a string body inside the envelope;
/// the CLI's `submit --metrics` unwraps and prints it verbatim.
std::string render_metrics_reply(Scheduler& scheduler,
                                 obs::MetricsRegistry* metrics) {
  std::string body;
  if (metrics != nullptr) {
    scheduler.publish_metrics();
    body = obs::render_prometheus(metrics->snapshot());
  }
  obs::JsonWriter w;
  w.begin_object();
  w.kv("ok", true);
  w.kv("content_type", "text/plain; version=0.0.4");
  w.kv("body", body);
  w.end_object();
  return std::move(w).str();
}

/// Per-connection outcome the accept loop needs to know about.
struct ConnectionVerdict {
  bool shutdown_requested = false;
  bool protocol_error = false;
};

/// Reads the request, routes control verbs, submits jobs. Owns `fd`
/// except when the scheduler accepted the job (it streams the result and
/// closes). Every early exit answers the client with a typed reject —
/// a misbehaving client learns WHY it was dropped.
ConnectionVerdict handle_connection(int fd, const DaemonConfig& config,
                                    Scheduler& scheduler) {
  ConnectionVerdict verdict;
  const auto reject_and_close = [&](const Status& status,
                                    std::uint64_t retry_after) {
    (void)write_control(fd, render_reject(status, retry_after));
    // reason: the peer may already be gone; the reject is best effort.
    close_fd(fd);
    verdict.protocol_error = status.code() == StatusCode::kClientProtocol;
  };

  Result<Frame> request = read_frame(fd, config.read_timeout_ms);
  if (!request.ok()) {
    reject_and_close(request.status(), 0);
    return verdict;
  }
  if (request.value().type != FrameType::kControl) {
    reject_and_close(Status(StatusCode::kClientProtocol,
                            "request must be a control frame"),
                     0);
    return verdict;
  }
  Result<JsonValue> doc = parse_json(request.value().text());
  if (!doc.ok() || !doc.value().is_object()) {
    reject_and_close(doc.ok() ? Status(StatusCode::kClientProtocol,
                                       "request must be a JSON object")
                              : doc.status(),
                     0);
    return verdict;
  }
  const JsonObject& obj = doc.value().as_object();
  const std::string op = get_string(obj, "op");

  if (op == "ping") {
    (void)write_control(fd, "{\"ok\":true}");
    // reason: health probe; nothing to do if the prober vanished.
    close_fd(fd);
    return verdict;
  }
  if (op == "stats") {
    (void)write_control(fd, render_stats(scheduler.stats(), config));
    // reason: same best-effort reply as ping.
    close_fd(fd);
    return verdict;
  }
  if (op == "metrics") {
    (void)write_control(
        fd, render_metrics_reply(scheduler, config.scheduler.metrics));
    // reason: same best-effort reply as ping.
    close_fd(fd);
    return verdict;
  }
  if (op == "shutdown") {
    (void)write_control(fd, "{\"ok\":true}");
    // reason: the daemon stops whether or not the requester hears the ack.
    close_fd(fd);
    verdict.shutdown_requested = true;
    return verdict;
  }

  Result<JobSpec> spec = parse_job_spec(obj);
  if (!spec.ok()) {
    reject_and_close(spec.status(), 0);
    return verdict;
  }

  if (spec.value().edges_follow) {
    // Inline upload: binary edge frames, terminated by a control frame.
    // Growth is capped BEFORE allocation so a lying client cannot balloon
    // the daemon past its ceiling.
    const std::size_t cap = config.scheduler.memory_ceiling_bytes > 0
                                ? config.scheduler.memory_ceiling_bytes
                                : (std::size_t{1} << 30);
    std::size_t received = 0;
    while (true) {
      Result<Frame> frame = read_frame(fd, config.read_timeout_ms);
      if (!frame.ok()) {
        reject_and_close(frame.status(), 0);
        return verdict;
      }
      if (frame.value().type == FrameType::kControl) break;  // upload done
      received += frame.value().payload.size();
      if (received > cap) {
        reject_and_close(
            Status(StatusCode::kOverloaded,
                   "inline upload exceeds the daemon memory ceiling"),
            scheduler.retry_after_ms());
        return verdict;
      }
      Result<EdgeList> chunk = decode_edges(frame.value());
      if (!chunk.ok()) {
        reject_and_close(chunk.status(), 0);
        return verdict;
      }
      EdgeList& edges = spec.value().edges;
      edges.insert(edges.end(), chunk.value().begin(), chunk.value().end());
    }
  }

  const Status admitted = scheduler.submit(std::move(spec).value(), fd);
  if (!admitted.ok())
    reject_and_close(admitted, scheduler.retry_after_ms());
  // On success the scheduler now owns fd.
  return verdict;
}

}  // namespace

Result<DaemonReport> run_daemon(const DaemonConfig& config) {
  Result<int> listener = listen_unix(config.socket_path);
  if (!listener.ok()) return listener.status();
  const int listen_fd = listener.value();

  Scheduler scheduler(config.scheduler);
  DaemonReport report;
  report.recovered = scheduler.recover_spool();

  std::size_t accept_drops_left = config.faults.accept_fail;
  obs::MetricsRegistry* metrics = config.scheduler.metrics;
  bool shutdown_requested = false;

  while (!shutdown_requested) {
    // relaxed: the flag is a lone int set by a signal handler; the accept
    // poll provides the latency bound and no other state is published.
    if (config.stop_signal != nullptr &&
        config.stop_signal->load(std::memory_order_relaxed) != 0)
      break;
    Result<int> accepted = accept_with_timeout(listen_fd, config.accept_poll_ms);
    if (!accepted.ok()) {
      // A broken listen socket is unrecoverable; shut down gracefully so
      // queued clients still get their eviction notices.
      close_fd(listen_fd);
      scheduler.shutdown(true);
      ::unlink(config.socket_path.c_str());
      return accepted.status();
    }
    const int fd = accepted.value();
    if (fd < 0) continue;  // poll timeout: re-check the stop flag
    ++report.connections;
    if (metrics != nullptr) metrics->counter("serve.connections")->add();

    if (accept_drops_left > 0) {
      // Chaos: pretend accept() handed us a connection we then lost —
      // clients must survive an unanswered connect (retry path).
      --accept_drops_left;
      if (metrics != nullptr)
        metrics->counter("serve.chaos_accept_drops")->add();
      close_fd(fd);
      continue;
    }
    if (config.faults.slow_client_ms > 0)
      std::this_thread::sleep_for(
          std::chrono::milliseconds(config.faults.slow_client_ms));

    const ConnectionVerdict verdict =
        handle_connection(fd, config, scheduler);
    if (verdict.protocol_error) {
      ++report.protocol_errors;
      if (metrics != nullptr)
        metrics->counter("serve.client_protocol_errors")->add();
    }
    shutdown_requested = verdict.shutdown_requested;
  }

  close_fd(listen_fd);
  // Graceful stop: reject-with-kJobEvicted everything still queued, let
  // running jobs finish streaming to their clients.
  scheduler.shutdown(true);
  ::unlink(config.socket_path.c_str());
  report.stats = scheduler.stats();
  return report;
}

}  // namespace nullgraph::svc
