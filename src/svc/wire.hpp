#pragma once
// Wire format for `nullgraph serve` (DESIGN.md "Service mode").
//
// Every message is one length-prefixed frame over a connected
// Unix-domain-socket byte stream:
//
//   offset  size  field
//   0       4     payload length L (u32, native-endian like checkpoints —
//                 client and daemon share a machine by construction)
//   4       1     frame type
//   5       L     payload
//
//   type 0  kControl  UTF-8 JSON document (requests, admission replies,
//                     job results, stats, shutdown)
//   type 1  kEdges    binary edge chunk: L/8 edges of two u32 endpoints
//                     each (ds/edge.hpp layout, memcpy-compatible)
//
// Robustness contract: the read side is fully defensive — a frame length
// over the caller's cap, a short read, an unknown type, or a peer that
// stalls past the poll deadline is a typed kClientProtocol/kIoError
// Result, never UB or a wedged thread. The write side suppresses SIGPIPE
// (MSG_NOSIGNAL) so a client that vanishes mid-stream fails the write
// with a Status instead of killing the daemon.
//
// Socket/syscall confinement: socket(), accept(), bind() etc. live only in
// src/svc/ (enforced by the scripts/lint svc-confinement rule).

#include <cstdint>
#include <string>
#include <vector>

#include "ds/edge_list.hpp"
#include "robustness/status.hpp"

namespace nullgraph::svc {

enum class FrameType : std::uint8_t { kControl = 0, kEdges = 1 };

struct Frame {
  FrameType type = FrameType::kControl;
  std::vector<unsigned char> payload;

  std::string text() const {
    return std::string(payload.begin(), payload.end());
  }
};

/// Default cap on one frame's payload; a client claiming more is a
/// protocol violation (memory-bomb defense), not an allocation attempt.
inline constexpr std::size_t kMaxFramePayload = std::size_t{64} << 20;

/// Edges per kEdges frame when streaming a result (64k edges = 512 KiB
/// per frame: big enough to amortize syscalls, small enough to interleave
/// fairly when several jobs stream at once).
inline constexpr std::size_t kEdgesPerFrame = std::size_t{1} << 16;

/// Blocking write of one frame. kIoError on a closed/failed peer.
Status write_frame(int fd, FrameType type, const void* payload,
                   std::size_t size);
Status write_control(int fd, const std::string& json);
/// Streams `edges` as consecutive kEdges frames of at most kEdgesPerFrame.
Status write_edge_frames(int fd, const EdgeList& edges);

/// Reads one frame, waiting at most `timeout_ms` for EACH poll (0 = wait
/// forever). kClientProtocol when the peer stalls past the deadline,
/// claims more than `max_payload`, or sends an unknown type; kIoError on
/// EOF/socket failure.
Result<Frame> read_frame(int fd, int timeout_ms,
                         std::size_t max_payload = kMaxFramePayload);

/// Reinterprets a kEdges payload; kClientProtocol when the length is not
/// a whole number of edges.
Result<EdgeList> decode_edges(const Frame& frame);

/// Listening Unix-domain socket at `path` (unlinks a stale file first).
/// kIoError on any syscall failure, with errno text.
Result<int> listen_unix(const std::string& path, int backlog = 64);

/// Connected client socket to the daemon at `path`.
Result<int> connect_unix(const std::string& path);

/// accept(2) with a poll deadline; returns -1 (not an error) on timeout
/// so accept loops can poll their stop flag.
Result<int> accept_with_timeout(int listen_fd, int timeout_ms);

/// close(2) wrapper so callers outside src/svc/ never touch the fd API.
void close_fd(int fd) noexcept;

}  // namespace nullgraph::svc
