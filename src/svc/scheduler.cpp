#include "svc/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/null_model.hpp"
#include "io/checkpoint.hpp"
#include "io/graph_io.hpp"
#include "io/shard_merge.hpp"
#include "model/driver.hpp"
#include "model/registry.hpp"
#include "obs/event_log.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/process_stats.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "svc/wire.hpp"

namespace nullgraph::svc {

namespace fs = std::filesystem;

namespace {

/// Latency buckets in ms: log-ish spacing from sub-ms to a minute.
const std::vector<std::int64_t> kLatencyEdges = {
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000, 30000, 60000};

Status read_whole_file(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) return Status(StatusCode::kIoError, "cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return Status::Ok();
}

}  // namespace

/// Everything one job run produces besides its final Status. Owns the
/// per-job metrics registry so a job's counters can never bleed into a
/// neighbor's report.
struct JobExecution {
  GenerateResult result;
  StatusCode curtailed = StatusCode::kOk;
  std::string report_path;
  obs::MetricsRegistry metrics;
  /// Borrowed per-job sink (run_job's stack) when the client asked for
  /// trace propagation; null otherwise.
  obs::TraceSink* trace = nullptr;
  /// The report's `model` block (generate jobs run through the registry
  /// driver; shuffle jobs have no model).
  obs::ModelBlock model;
  bool has_model = false;
};

Scheduler::Scheduler(SchedulerConfig config)
    : config_(std::move(config)), arbiter_(config_.total_threads) {
  if (config_.slots < 1) config_.slots = 1;
  std::error_code ec;
  if (!config_.spool_dir.empty()) fs::create_directories(config_.spool_dir, ec);
  if (!config_.report_dir.empty())
    fs::create_directories(config_.report_dir, ec);
  workers_.reserve(static_cast<std::size_t>(config_.slots));
  for (int i = 0; i < config_.slots; ++i)
    workers_.emplace_back(&Scheduler::worker_loop, this);
}

Scheduler::~Scheduler() { shutdown(true); }

Status Scheduler::submit(JobSpec spec, int client_fd) {
  const std::size_t bytes = spec.edges.size() * sizeof(Edge);
  const std::uint64_t trace_id = spec.trace_id;
  const char* const op_name = spec.op_name();
  std::uint64_t admitted_id = 0;
  Job job;
  {
    MutexLock lock(mutex_);
    if (stopping_)
      return Status(StatusCode::kJobEvicted, "daemon is shutting down");
    if (queue_.size() >= config_.queue_capacity) {
      ++tallies_.rejected;
      if (config_.metrics != nullptr)
        config_.metrics->counter("serve.admission_rejects")->add();
      return Status(StatusCode::kOverloaded,
                    "queue full: " + std::to_string(running_) + " running, " +
                        std::to_string(queue_.size()) + " waiting");
    }
    if (config_.memory_ceiling_bytes > 0 &&
        tracked_bytes_ + bytes > config_.memory_ceiling_bytes) {
      ++tallies_.rejected;
      if (config_.metrics != nullptr)
        config_.metrics->counter("serve.admission_rejects")->add();
      return Status(StatusCode::kOverloaded,
                    "memory ceiling: " + std::to_string(tracked_bytes_) +
                        " tracked + " + std::to_string(bytes) + " requested > " +
                        std::to_string(config_.memory_ceiling_bytes));
    }
    job.id = next_id_++;
    job.spec = std::move(spec);
    job.client_fd = client_fd;
    job.admitted_us = obs::monotonic_us();
    admitted_id = job.id;
    // The accepted reply goes out BEFORE the job is visible to a worker,
    // so it can never interleave with the worker's result frames. The
    // write happens under the mutex, which is safe because admission is
    // single-threaded (the daemon's accept loop) and the reply is far
    // smaller than a Unix socket buffer.
    if (client_fd >= 0)
      (void)write_control(client_fd, render_admission_ok(job.id));
    // reason: a vanished client only means nobody reads the result; the
    // job itself (and any server-side output) still runs.
    tracked_bytes_ += bytes;
    queue_.push_back(std::move(job));
    if (config_.metrics != nullptr)
      config_.metrics->gauge("serve.queue_depth")
          ->set(static_cast<std::int64_t>(queue_.size()));
  }
  cv_.notify_one();
  if (config_.events != nullptr)
    config_.events->emit({obs::EventKind::kJobAdmitted, admitted_id, trace_id,
                          {}, 0, op_name});
  return Status::Ok();
}

std::uint64_t Scheduler::retry_after_ms() const {
  MutexLock lock(mutex_);
  return 100 * static_cast<std::uint64_t>(running_ + queue_.size() + 1);
}

SchedulerStats Scheduler::stats() const {
  const std::uint64_t uptime = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - started_)
          .count());
  MutexLock lock(mutex_);
  SchedulerStats s = tallies_;
  s.running = running_;
  s.queued = queue_.size();
  s.uptime_ms = uptime;
  s.spool_replayed = spool_replayed_;
  s.jobs_by_exit_code.assign(by_exit_code_.begin(), by_exit_code_.end());
  return s;
}

void Scheduler::publish_metrics() {
  obs::MetricsRegistry* m = config_.metrics;
  if (m == nullptr) return;
  const SchedulerStats s = stats();
  m->gauge("serve.uptime_ms")->set(static_cast<std::int64_t>(s.uptime_ms));
  m->gauge("serve.active_slots")->set(static_cast<std::int64_t>(s.running));
  m->gauge("serve.queue_depth")->set(static_cast<std::int64_t>(s.queued));
  m->gauge("serve.spool_replayed")
      ->set(static_cast<std::int64_t>(s.spool_replayed));
  m->gauge("serve.memory_ceiling_bytes")
      ->set(static_cast<std::int64_t>(config_.memory_ceiling_bytes));
  {
    MutexLock lock(mutex_);
    m->gauge("serve.tracked_bytes")
        ->set(static_cast<std::int64_t>(tracked_bytes_));
  }
  for (const auto& [code, count] : s.jobs_by_exit_code)
    m->gauge("serve.jobs_exit_" + std::to_string(code))
        ->set(static_cast<std::int64_t>(count));
  // "Governor memory" for operators: the process's live RSS / peak RSS
  // gauges, refreshed at every publish (scrape) point.
  record_process_memory(m);
}

void Scheduler::worker_loop() {
  while (true) {
    Job job;
    std::size_t bytes = 0;
    {
      MutexLock lock(mutex_);
      while (queue_.empty() && !stopping_) cv_.wait(mutex_);
      if (queue_.empty()) return;  // stopping and drained
      job = std::move(queue_.front());
      queue_.pop_front();
      bytes = job.spec.edges.size() * sizeof(Edge);
      ++running_;
      if (config_.metrics != nullptr)
        config_.metrics->gauge("serve.queue_depth")
            ->set(static_cast<std::int64_t>(queue_.size()));
    }
    run_job(std::move(job));
    {
      MutexLock lock(mutex_);
      --running_;
      tracked_bytes_ -= std::min(tracked_bytes_, bytes);
    }
  }
}

void Scheduler::run_job(Job job) {
  const auto start = std::chrono::steady_clock::now();
  // Per-job trace sink, built only when the client propagated a trace id;
  // its spans return in the result frame so the client can merge them into
  // one cross-process Perfetto trace. The queue-wait span is retroactive:
  // it began at admission, before this sink existed.
  const bool traced = job.spec.trace_id != 0;
  obs::TraceSink trace;
  if (traced)
    trace.complete_between("queue wait", job.admitted_us, obs::monotonic_us());
  if (job.spec.inject_slow_ms > 0)
    std::this_thread::sleep_for(
        std::chrono::milliseconds(job.spec.inject_slow_ms));

  // The lease IS the multi-tenancy: every ParallelContext constructed
  // anywhere below inherits this slot's thread share.
  const std::uint64_t arbitration_begin_us = traced ? trace.now_us() : 0;
  exec::ThreadBudgetLease lease(arbiter_, job.spec.threads);
  if (traced) trace.complete("arbitration", arbitration_begin_us);
  JobExecution ex;
  ex.trace = traced ? &trace : nullptr;
  Status final_status = execute(job, lease.threads(), ex);

  if (final_status.ok() && !job.spec.out_path.empty()) {
    // A spilled job's graph lives in shard files under the spool; stream
    // them into the output with bounded memory instead of materializing.
    if (ex.result.spill.spilled)
      final_status = concat_shards_to_text_file(ex.result.spill.dir,
                                                ex.result.spill.shard_count,
                                                job.spec.out_path);
    else
      final_status = write_edge_list_file_atomic(job.spec.out_path,
                                                 ex.result.edges);
  }

  if (!config_.report_dir.empty()) {
    obs::RunReportInputs inputs;
    inputs.command = job.spec.op_name();
    inputs.argv = {"serve", job.spec.op_name(),
                   "job_id=" + std::to_string(job.id)};
    inputs.seed = job.spec.seed;
    inputs.threads = lease.threads();
    inputs.swap_iterations_requested = job.spec.swaps;
    inputs.result = &ex.result;
    inputs.metrics = &ex.metrics;
    if (ex.has_model) inputs.model = &ex.model;
    const std::string path =
        config_.report_dir + "/job-" + std::to_string(job.id) + ".json";
    if (obs::write_run_report(path, inputs).ok()) {
      ex.report_path = path;
    } else if (config_.metrics != nullptr) {
      config_.metrics->counter("serve.report_write_failures")->add();
    }
  }

  std::vector<obs::TraceEventView> spans;
  if (traced) spans = trace.export_events();

  // Black-box triggers (DESIGN.md §12): curtailment and shard corruption
  // are exactly the "something went wrong mid-flight" moments whose recent
  // event history an operator wants preserved before it laps out of the
  // ring. The dump commits BEFORE the client is answered, so a typed
  // curtailment exit at the client guarantees flight.jsonl is on disk.
  if (config_.flight != nullptr && !config_.flight_path.empty() &&
      (ex.curtailed != StatusCode::kOk ||
       final_status.code() == StatusCode::kShardCorrupt)) {
    if (!config_.flight->dump_to(config_.flight_path).ok() &&
        config_.metrics != nullptr)
      config_.metrics->counter("serve.flight_dump_failures")->add();
  }

  if (job.client_fd >= 0) {
    bool client_alive = true;
    if (final_status.ok() && job.spec.out_path.empty())
      client_alive = write_edge_frames(job.client_fd, ex.result.edges).ok();
    const Status sent = write_control(
        job.client_fd,
        render_result(job.id, final_status, ex.curtailed,
                      ex.result.spill.spilled
                          ? static_cast<std::size_t>(
                                ex.result.spill.edges_on_disk)
                          : ex.result.edges.size(),
                      ex.report_path, job.spec.out_path,
                      spans.empty() ? nullptr : &spans));
    if ((!client_alive || !sent.ok()) && config_.metrics != nullptr)
      config_.metrics->counter("serve.client_gone")->add();
    close_fd(job.client_fd);
  }

  finish_spool_entry(job.id);

  const auto latency = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  // The decisive code mirrors the client's exit-status contract: a clean
  // run that was curtailed still counts under the curtailment's code.
  const StatusCode decisive = final_status.ok() && ex.curtailed != StatusCode::kOk
                                  ? ex.curtailed
                                  : final_status.code();
  const int exit_code = status_exit_code(decisive);
  {
    MutexLock lock(mutex_);
    if (final_status.ok())
      ++tallies_.completed;
    else
      ++tallies_.failed;
    ++by_exit_code_[exit_code];
  }
  if (config_.events != nullptr)
    config_.events->emit({obs::EventKind::kJobCompleted, job.id,
                          job.spec.trace_id, {},
                          static_cast<std::uint64_t>(exit_code),
                          status_code_name(decisive)});
  if (config_.metrics != nullptr) {
    config_.metrics
        ->counter(final_status.ok() ? "serve.jobs_completed"
                                    : "serve.jobs_failed")
        ->add();
    if (ex.curtailed != StatusCode::kOk)
      config_.metrics->counter("serve.jobs_curtailed")->add();
    config_.metrics->histogram("serve.job_latency_ms", 0, kLatencyEdges)
        ->record(latency);
  }
}

Status Scheduler::execute(const Job& job, int granted_threads,
                          JobExecution& ex) {
  (void)granted_threads;  // reason: installed thread-locally by the lease;
                          // kept in the signature for report plumbing.
  const JobSpec& spec = job.spec;
  // Generate jobs dispatch through the model-backend registry; the
  // capability descriptor gates which substrate features get armed. The
  // backend name was validated at parse time, so a null lookup here means
  // a legacy spec ("" -> null-model) or a test replaced the registry.
  const model::GeneratorBackend* backend =
      spec.op == JobSpec::Op::kGenerate
          ? model::find_backend(spec.backend.empty() ? "null-model"
                                                     : spec.backend)
          : nullptr;
  const model::BackendCapabilities caps =
      backend != nullptr ? backend->capabilities()
                         : model::BackendCapabilities{};

  GenerateConfig cfg;
  cfg.seed = spec.seed;
  cfg.swap_iterations = spec.swaps;
  cfg.guardrails.faults.fail_checkpoint_writes =
      config_.faults.fail_checkpoint_writes;
  cfg.governance.enabled = true;
  cfg.governance.budget.deadline_ms = spec.deadline_ms;
  if (config_.memory_ceiling_bytes > 0)
    cfg.governance.budget.max_memory_bytes =
        config_.memory_ceiling_bytes / static_cast<std::size_t>(config_.slots);
  cfg.governance.cancel = job.cancel;
  if (spec.op == JobSpec::Op::kGenerate && caps.spill &&
      !spec.out_path.empty() && !config_.spool_dir.empty()) {
    // Out-of-core degradation for daemon jobs: a generate whose projected
    // footprint would cross its slot's memory share spills under the spool
    // (and the delivery path streams shards -> out_path) instead of
    // aborting with kMemoryBudget. Client-streamed jobs stay in-core —
    // their reply protocol sends edges from memory.
    cfg.spill.enabled = true;
    cfg.spill.dir =
        config_.spool_dir + "/job-" + std::to_string(job.id) + "-spill";
  }
  const bool checkpoint_ok =
      spec.op == JobSpec::Op::kShuffle || caps.checkpoint;
  if (spec.checkpoint_every > 0 && checkpoint_ok &&
      !config_.spool_dir.empty()) {
    cfg.governance.checkpoint_every = spec.checkpoint_every;
    cfg.governance.checkpoint_path =
        config_.spool_dir + "/job-" + std::to_string(job.id) + ".ckpt";
    if (!spec.out_path.empty()) {
      // Arm crash recovery: the meta records where this run was headed.
      // Compact-JSON surgery (the writer always ends an object with '}')
      // splices the job id into the serialized spec.
      std::string meta = serialize_job_spec(spec);
      meta.pop_back();
      meta += ",\"job_id\":" + std::to_string(job.id) + "}";
      const std::string meta_path =
          config_.spool_dir + "/job-" + std::to_string(job.id) + ".meta";
      std::ofstream out(meta_path);
      out << meta;
    }
  }
  cfg.obs.metrics = &ex.metrics;
  cfg.obs.trace = ex.trace;
  cfg.obs.events = config_.events;
  cfg.obs.job_id = job.id;
  cfg.obs.trace_id = spec.trace_id;

  // Fault isolation: NOTHING a job does may take down the slot. Typed
  // failures flow back as Status; stray exceptions become kInternal.
  try {
    if (spec.op == JobSpec::Op::kGenerate) {
      model::ModelSpec mspec;
      mspec.backend = spec.backend.empty() ? "null-model" : spec.backend;
      mspec.seed = spec.seed;
      if (caps.swaps) mspec.swap_iterations = spec.swaps;
      if (!spec.space.empty() || !spec.labeling.empty()) {
        model::SamplingSpace space = backend != nullptr
                                         ? backend->default_space()
                                         : model::SamplingSpace{};
        if (!spec.space.empty()) {
          const Result<model::SamplingSpace> parsed =
              model::parse_space(spec.space);
          if (!parsed.ok()) return parsed.status();
          space.self_loops = parsed.value().self_loops;
          space.multi_edges = parsed.value().multi_edges;
        }
        if (!spec.labeling.empty()) {
          const Result<model::Labeling> parsed =
              model::parse_labeling(spec.labeling);
          if (!parsed.ok()) return parsed.status();
          space.labeling = parsed.value();
        }
        mspec.space = space;
      }
      if (!spec.backend.empty()) {
        mspec.params = spec.params;
        if (!spec.dist_path.empty() && !mspec.has_param("dist"))
          mspec.params.emplace_back("dist", spec.dist_path);
      } else if (!spec.dist_path.empty()) {
        mspec.params.emplace_back("dist", spec.dist_path);
      } else {
        // Legacy power-law protocol -> declared null-model parameters.
        char gamma[32];
        std::snprintf(gamma, sizeof gamma, "%.17g", spec.powerlaw.gamma);
        mspec.params = {{"powerlaw", ""},
                        {"n", std::to_string(spec.powerlaw.n)},
                        {"gamma", gamma},
                        {"dmin", std::to_string(spec.powerlaw.dmin)},
                        {"dmax", std::to_string(spec.powerlaw.dmax)}};
      }
      model::PipelineContext mctx;
      mctx.guardrails = cfg.guardrails;
      mctx.governance = cfg.governance;
      mctx.spill = cfg.spill;
      mctx.obs = cfg.obs;
      // Delivery (shard concat / atomic write / edge frames) stays in
      // run_job, so the driver gets no out_path.
      Result<model::ModelRun> run = model::run_model(mspec, mctx);
      if (!run.ok()) return run.status();
      ex.result = std::move(run.value().output.result);
      ex.model = std::move(run.value().model);
      ex.has_model = true;
      ex.curtailed = ex.result.report.curtailed_by();
      return ex.result.report.first_error();
    }
    Result<GenerateResult> run = [&]() -> Result<GenerateResult> {
      if (!spec.in_path.empty()) {
        Result<EdgeList> edges = try_read_edge_list_file(spec.in_path);
        if (!edges.ok()) return edges.status();
        return shuffle_graph_checked(std::move(edges).value(), cfg);
      }
      return shuffle_graph_checked(spec.edges, cfg);
    }();
    if (!run.ok()) return run.status();
    ex.result = std::move(run).value();
    ex.curtailed = ex.result.report.curtailed_by();
    return ex.result.report.first_error();
  } catch (const StatusError& error) {
    return error.status();
  } catch (const std::exception& error) {
    return Status(StatusCode::kInternal,
                  std::string("job raised: ") + error.what());
  }
}

void Scheduler::finish_spool_entry(std::uint64_t id) {
  if (config_.spool_dir.empty()) return;
  const std::string stem = config_.spool_dir + "/job-" + std::to_string(id);
  (void)std::remove((stem + ".meta").c_str());
  // reason: best-effort cleanup; a missing file is the common case.
  (void)std::remove((stem + ".ckpt").c_str());
  // reason: same.
}

void Scheduler::shutdown(bool evict_queued) {
  std::deque<Job> evictees;
  {
    MutexLock lock(mutex_);
    stopping_ = true;
    if (evict_queued) {
      evictees.swap(queue_);
      tallies_.evicted += evictees.size();
      tracked_bytes_ = 0;
      if (config_.metrics != nullptr) {
        config_.metrics->gauge("serve.queue_depth")->set(0);
        if (!evictees.empty())
          config_.metrics->counter("serve.jobs_evicted")
              ->add(evictees.size());
      }
    }
  }
  cv_.notify_all();
  const Status evicted(StatusCode::kJobEvicted,
                       "daemon shutting down before the job could run");
  for (Job& job : evictees) {
    if (config_.events != nullptr)
      config_.events->emit({obs::EventKind::kJobEvicted, job.id,
                            job.spec.trace_id, {}, 0, "daemon shutdown"});
    if (job.client_fd >= 0) {
      (void)write_control(job.client_fd,
                          render_result(job.id, evicted, StatusCode::kOk, 0,
                                        "", ""));
      // reason: eviction notice to a possibly-gone client; best effort.
      close_fd(job.client_fd);
    }
  }
  if (!joined_) {  // shutdown/destructor run sequentially by contract
    for (std::thread& worker : workers_)
      if (worker.joinable()) worker.join();
    joined_ = true;
  }
}

std::size_t Scheduler::recover_spool() {
  if (config_.spool_dir.empty()) return 0;
  std::error_code ec;
  std::vector<std::string> metas;
  for (const auto& entry : fs::directory_iterator(config_.spool_dir, ec)) {
    const std::string path = entry.path().string();
    if (path.size() > 5 && path.rfind(".meta") == path.size() - 5)
      metas.push_back(path);
  }
  std::size_t recovered = 0;
  for (const std::string& meta_path : metas) {
    const std::string stem = meta_path.substr(0, meta_path.size() - 5);
    const std::string ckpt_path = stem + ".ckpt";
    Status final_status = Status::Ok();
    std::string text;
    JobSpec spec;
    if (Status s = read_whole_file(meta_path, text); !s.ok()) {
      final_status = s;
    } else if (Result<JsonValue> doc = parse_json(text); !doc.ok()) {
      final_status = Status(StatusCode::kCheckpointInvalid,
                            "torn spool meta: " + doc.status().message());
    } else if (Result<JobSpec> parsed = parse_job_spec(doc.value().as_object());
               !parsed.ok()) {
      final_status = parsed.status();
    } else {
      spec = std::move(parsed).value();
      Result<Checkpoint> ckpt = try_read_checkpoint(ckpt_path);
      if (!ckpt.ok()) {
        // Truncated or bit-flipped snapshot: a CLEANLY-failed job, the
        // CRC already refused it — never resumed, never UB.
        final_status = ckpt.status();
      } else {
        try {
          GenerateConfig cfg;
          cfg.governance.enabled = true;
          cfg.governance.budget.deadline_ms = spec.deadline_ms;
          GenerateResult result =
              resume_null_graph(ckpt.value(), cfg);
          final_status = result.report.first_error();
          if (final_status.ok() && !spec.out_path.empty())
            final_status =
                write_edge_list_file_atomic(spec.out_path, result.edges);
        } catch (const StatusError& error) {
          final_status = error.status();
        } catch (const std::exception& error) {
          final_status = Status(StatusCode::kInternal,
                                std::string("resume raised: ") + error.what());
        }
      }
    }
    (void)std::remove(meta_path.c_str());
    // reason: the spool entry is consumed whatever the outcome.
    (void)std::remove(ckpt_path.c_str());
    // reason: same.
    if (config_.events != nullptr)
      config_.events->emit(
          {obs::EventKind::kJobCompleted, 0, 0, {},
           static_cast<std::uint64_t>(status_exit_code(final_status.code())),
           "spool replay"});
    MutexLock lock(mutex_);
    ++spool_replayed_;
    ++by_exit_code_[status_exit_code(final_status.code())];
    if (final_status.ok()) {
      ++recovered;
      ++tallies_.recovered;
      if (config_.metrics != nullptr)
        config_.metrics->counter("serve.jobs_recovered")->add();
    } else {
      ++tallies_.failed;
      if (config_.metrics != nullptr)
        config_.metrics->counter("serve.recovery_failed")->add();
    }
  }
  return recovered;
}

}  // namespace nullgraph::svc
