#include "svc/client.hpp"

#include "svc/wire.hpp"

namespace nullgraph::svc {

namespace {

/// RAII socket so every early return below closes the connection.
class Connection {
 public:
  static Result<Connection> open(const std::string& socket_path) {
    Result<int> fd = connect_unix(socket_path);
    if (!fd.ok()) return fd.status();
    return Connection(fd.value());
  }

  Connection(Connection&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;
  Connection& operator=(Connection&&) = delete;
  ~Connection() { close_fd(fd_); }

  int fd() const noexcept { return fd_; }

 private:
  explicit Connection(int fd) : fd_(fd) {}
  int fd_ = -1;
};

Status status_from_reply(const JsonObject& reply) {
  return Status(status_code_from_id(get_u64(reply, "code_id",
                                            static_cast<std::uint64_t>(
                                                StatusCode::kInternal))),
                get_string(reply, "message"));
}

Result<JsonObject> read_control_object(int fd, int timeout_ms) {
  Result<Frame> frame = read_frame(fd, timeout_ms);
  if (!frame.ok()) return frame.status();
  if (frame.value().type != FrameType::kControl)
    return Status(StatusCode::kClientProtocol,
                  "expected a control frame from the daemon");
  Result<JsonValue> doc = parse_json(frame.value().text());
  if (!doc.ok()) return doc.status();
  if (!doc.value().is_object())
    return Status(StatusCode::kClientProtocol,
                  "daemon reply is not a JSON object");
  return doc.value().as_object();
}

}  // namespace

Result<SubmitOutcome> submit_job(const SubmitOptions& options,
                                 const JobSpec& spec) {
  obs::TraceSink* trace = options.trace;
  std::uint64_t begin_us = trace != nullptr ? trace->now_us() : 0;
  Result<Connection> conn = Connection::open(options.socket_path);
  if (!conn.ok()) return conn.status();
  if (trace != nullptr) trace->complete("connect", begin_us);
  const int fd = conn.value().fd();

  if (trace != nullptr) begin_us = trace->now_us();
  if (Status s = write_control(fd, serialize_job_spec(spec)); !s.ok())
    return s;
  if (spec.edges_follow) {
    if (Status s = write_edge_frames(fd, spec.edges); !s.ok()) return s;
    if (Status s = write_control(fd, "{\"end\":true}"); !s.ok()) return s;
  }
  if (trace != nullptr) trace->complete("send request", begin_us);

  SubmitOutcome outcome;
  if (trace != nullptr) begin_us = trace->now_us();
  Result<JsonObject> admission =
      read_control_object(fd, options.reply_timeout_ms);
  if (trace != nullptr) trace->complete("await admission", begin_us);
  if (!admission.ok()) return admission.status();
  if (!get_bool(admission.value(), "ok", false)) {
    outcome.admission = status_from_reply(admission.value());
    outcome.retry_after_ms = get_u64(admission.value(), "retry_after_ms", 0);
    return outcome;
  }
  outcome.job_id = get_u64(admission.value(), "job_id", 0);

  // Result stream: zero or more edge frames, then the final verdict.
  if (trace != nullptr) begin_us = trace->now_us();
  while (true) {
    Result<Frame> frame = read_frame(fd, options.reply_timeout_ms);
    if (!frame.ok()) return frame.status();
    if (frame.value().type == FrameType::kEdges) {
      Result<EdgeList> chunk = decode_edges(frame.value());
      if (!chunk.ok()) return chunk.status();
      outcome.edges.insert(outcome.edges.end(), chunk.value().begin(),
                           chunk.value().end());
      continue;
    }
    Result<JsonValue> doc = parse_json(frame.value().text());
    if (!doc.ok()) return doc.status();
    const JsonObject& reply = doc.value().as_object();
    outcome.final_status = get_bool(reply, "ok", false)
                               ? Status::Ok()
                               : status_from_reply(reply);
    outcome.curtailed = get_string(reply, "curtailed");
    outcome.curtailed_code =
        status_code_from_id(get_u64(reply, "curtailed_id", 0));
    outcome.edge_count = get_u64(reply, "edges", 0);
    outcome.report_path = get_string(reply, "report");
    outcome.out_path = get_string(reply, "out");
    if (const JsonValue* spans = find(reply, "spans");
        spans != nullptr && spans->kind() == JsonValue::Kind::kArray) {
      for (const JsonValue& entry : spans->as_array()) {
        if (!entry.is_object()) continue;
        const JsonObject& span = entry.as_object();
        obs::TraceEventView view;
        view.name = get_string(span, "name");
        const std::string ph = get_string(span, "ph");
        view.phase = ph.empty() ? 'X' : ph[0];
        view.ts_us = get_u64(span, "ts_us", 0);
        view.dur_us = get_u64(span, "dur_us", 0);
        view.tid = static_cast<int>(get_u64(span, "tid", 0));
        outcome.daemon_spans.push_back(std::move(view));
      }
    }
    if (trace != nullptr) trace->complete("await result", begin_us);
    return outcome;
  }
}

Result<std::string> request_stats(const SubmitOptions& options) {
  Result<Connection> conn = Connection::open(options.socket_path);
  if (!conn.ok()) return conn.status();
  const int fd = conn.value().fd();
  if (Status s = write_control(fd, "{\"op\":\"stats\"}"); !s.ok()) return s;
  // Validate before returning: a malformed daemon frame must surface as a
  // typed error here, not as a raw pass-through every caller would have to
  // re-parse defensively.
  Result<Frame> frame = read_frame(fd, options.reply_timeout_ms);
  if (!frame.ok()) return frame.status();
  if (frame.value().type != FrameType::kControl)
    return Status(StatusCode::kClientProtocol,
                  "daemon stats reply is not a control frame");
  std::string text = frame.value().text();
  Result<JsonValue> doc = parse_json(text);
  if (!doc.ok())
    return Status(StatusCode::kClientProtocol,
                  "daemon stats reply is not valid JSON: " +
                      doc.status().message());
  if (!doc.value().is_object())
    return Status(StatusCode::kClientProtocol,
                  "daemon stats reply is not a JSON object");
  if (!get_bool(doc.value().as_object(), "ok", false))
    return status_from_reply(doc.value().as_object());
  return text;
}

Result<std::string> request_metrics(const SubmitOptions& options) {
  Result<Connection> conn = Connection::open(options.socket_path);
  if (!conn.ok()) return conn.status();
  const int fd = conn.value().fd();
  if (Status s = write_control(fd, "{\"op\":\"metrics\"}"); !s.ok()) return s;
  Result<JsonObject> reply = read_control_object(fd, options.reply_timeout_ms);
  if (!reply.ok()) return reply.status();
  if (!get_bool(reply.value(), "ok", false))
    return status_from_reply(reply.value());
  const JsonValue* body = find(reply.value(), "body");
  if (body == nullptr || body->kind() != JsonValue::Kind::kString)
    return Status(StatusCode::kClientProtocol,
                  "daemon metrics reply has no \"body\" string");
  return body->as_string();
}

Status request_shutdown(const SubmitOptions& options) {
  Result<Connection> conn = Connection::open(options.socket_path);
  if (!conn.ok()) return conn.status();
  const int fd = conn.value().fd();
  if (Status s = write_control(fd, "{\"op\":\"shutdown\"}"); !s.ok()) return s;
  Result<JsonObject> reply = read_control_object(fd, options.reply_timeout_ms);
  if (!reply.ok()) return reply.status();
  return get_bool(reply.value(), "ok", false)
             ? Status::Ok()
             : status_from_reply(reply.value());
}

Status ping(const SubmitOptions& options) {
  Result<Connection> conn = Connection::open(options.socket_path);
  if (!conn.ok()) return conn.status();
  const int fd = conn.value().fd();
  if (Status s = write_control(fd, "{\"op\":\"ping\"}"); !s.ok()) return s;
  Result<JsonObject> reply = read_control_object(fd, options.reply_timeout_ms);
  if (!reply.ok()) return reply.status();
  return get_bool(reply.value(), "ok", false)
             ? Status::Ok()
             : Status(StatusCode::kClientProtocol, "daemon ping not ok");
}

}  // namespace nullgraph::svc
