#pragma once
// JobSpec: one service request, as parsed from (and serialized to) the
// control-frame JSON. Shared by the daemon (parse + validate untrusted
// client input), the submit client (serialize), and the crash-recovery
// spool (specs are re-serialized into job-<id>.meta files so a restarted
// daemon knows where a checkpointed run was headed).
//
// Validation philosophy: every field of a client message is hostile until
// proven otherwise — a missing or mistyped REQUIRED field is a typed
// kClientProtocol naming the key, never a default silently applied.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ds/edge_list.hpp"
#include "gen/powerlaw.hpp"
#include "obs/trace.hpp"
#include "robustness/status.hpp"
#include "svc/json.hpp"

namespace nullgraph::svc {

struct JobSpec {
  enum class Op { kGenerate, kShuffle };
  Op op = Op::kGenerate;

  /// Generate: which registered model backend runs the job. Empty = the
  /// legacy protocol, mapped to "null-model" with the power-law fields
  /// below; set = a registry name (validated at parse time) whose inputs
  /// travel in `params`.
  std::string backend;
  /// Backend parameters, verbatim key/value strings (the keys each backend
  /// declares; `nullgraph backends` lists them).
  std::vector<std::pair<std::string, std::string>> params;
  /// Sampling-space request: "" keeps the backend default. Validated
  /// spellings: simple|loopy|multi|loopy-multi and stub|vertex.
  std::string space;
  std::string labeling;

  /// Generate (legacy protocol): synthetic power-law input (default), or a
  /// server-side degree-distribution file when `dist_path` is set.
  PowerlawParams powerlaw;
  std::string dist_path;

  /// Shuffle: server-side edge-list file, or an inline upload when
  /// `edges_follow` (client streams kEdges frames after the request).
  std::string in_path;
  bool edges_follow = false;
  /// Inline-uploaded edges (filled by the daemon's request reader, not by
  /// parse_job_spec).
  EdgeList edges;

  std::uint64_t seed = 1;
  std::size_t swaps = 10;
  /// Per-job wall-clock deadline; expiry curtails (best-so-far graph +
  /// Curtailment entry), it does not fail the job.
  std::uint64_t deadline_ms = 0;
  /// Worker threads the job wants; 0 = an equal share of the daemon pool.
  int threads = 0;
  /// Checkpoint the swap chain every N iterations into the daemon spool
  /// (0 = off). Checkpointed jobs survive a daemon SIGKILL via restart
  /// recovery as long as they also set `out_path`.
  std::size_t checkpoint_every = 0;
  /// Server-side output path (written atomically). Empty = stream the edge
  /// list back over the connection instead.
  std::string out_path;
  /// Test hook: sleep this long inside the job slot before running, so
  /// chaos drills can hold slots busy deterministically.
  std::uint64_t inject_slow_ms = 0;
  /// Trace propagation (DESIGN.md §12): when nonzero, the daemon builds a
  /// per-job TraceSink whose spans (queue wait, arbitration, phases) come
  /// back in the result frame's "spans" array, stamped with this
  /// correlation id, so the client can merge them with its own spans into
  /// ONE Perfetto trace. parent_span names the client-side span the
  /// daemon's work nests under (0 = root).
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;

  const char* op_name() const noexcept {
    return op == Op::kGenerate ? "generate" : "shuffle";
  }
};

/// Parses and validates the request object ({"op":"generate",...}).
/// kClientProtocol names the missing/invalid key. The `op` key must be
/// "generate" or "shuffle" — control verbs (stats/shutdown/ping) are
/// routed before this is called.
Result<JobSpec> parse_job_spec(const JsonObject& request);

/// The spec as a request/meta JSON document (round-trips through
/// parse_job_spec; inline edges travel as separate frames, never in JSON).
std::string serialize_job_spec(const JobSpec& spec);

/// StatusCode from its stable numeric id, clamped to kInternal for ids a
/// newer peer might send.
StatusCode status_code_from_id(std::uint64_t id) noexcept;

/// Control-message renderers shared by the daemon and scheduler, so every
/// reply carries the same shape: the status both as a stable name (for
/// humans and logs) and numeric id + process exit code (for programs).
std::string render_admission_ok(std::uint64_t job_id);
std::string render_reject(const Status& status, std::uint64_t retry_after_ms);
/// `spans`: the job's exported trace events (absolute monotonic µs), sent
/// only when the client asked for tracing; null/empty omits the array.
std::string render_result(std::uint64_t job_id, const Status& final_status,
                          StatusCode curtailed, std::size_t edge_count,
                          const std::string& report_path,
                          const std::string& out_path,
                          const std::vector<obs::TraceEventView>* spans =
                              nullptr);

}  // namespace nullgraph::svc
