#include "svc/job.hpp"

#include "model/registry.hpp"
#include "model/sampling_space.hpp"
#include "obs/json_writer.hpp"

namespace nullgraph::svc {

namespace {

Status bad_field(std::string_view key, const char* why) {
  return Status(StatusCode::kClientProtocol,
                "request field '" + std::string(key) + "' " + why);
}

}  // namespace

Result<JobSpec> parse_job_spec(const JsonObject& request) {
  JobSpec spec;
  const std::string op = get_string(request, "op");
  if (op == "generate") {
    spec.op = JobSpec::Op::kGenerate;
  } else if (op == "shuffle") {
    spec.op = JobSpec::Op::kShuffle;
  } else {
    return bad_field("op", "must be \"generate\" or \"shuffle\"");
  }

  spec.seed = get_u64(request, "seed", spec.seed);
  spec.swaps = static_cast<std::size_t>(get_u64(request, "swaps", spec.swaps));
  spec.deadline_ms = get_u64(request, "deadline_ms", 0);
  spec.threads = static_cast<int>(get_u64(request, "threads", 0));
  spec.checkpoint_every =
      static_cast<std::size_t>(get_u64(request, "checkpoint_every", 0));
  spec.out_path = get_string(request, "out");
  spec.inject_slow_ms = get_u64(request, "inject_slow_ms", 0);
  spec.trace_id = get_u64(request, "trace_id", 0);
  spec.parent_span = get_u64(request, "parent_span", 0);

  if (spec.op == JobSpec::Op::kGenerate) {
    spec.backend = get_string(request, "backend");
    if (!spec.backend.empty() &&
        model::find_backend(spec.backend) == nullptr)
      return bad_field("backend",
                       ("names no registered backend (known: " +
                        model::known_backend_names() + ")")
                           .c_str());
    spec.space = get_string(request, "space");
    if (!spec.space.empty() && !model::parse_space(spec.space).ok())
      return bad_field("space", "must be simple|loopy|multi|loopy-multi");
    spec.labeling = get_string(request, "labeling");
    if (!spec.labeling.empty() && !model::parse_labeling(spec.labeling).ok())
      return bad_field("labeling", "must be stub|vertex");
    if (const JsonValue* params = find(request, "params")) {
      if (!params->is_object())
        return bad_field("params", "must be an object of string values");
      for (const auto& [key, value] : params->as_object()) {
        if (value.kind() != JsonValue::Kind::kString)
          return bad_field("params", "must be an object of string values");
        spec.params.emplace_back(key, value.as_string());
      }
    }
    spec.dist_path = get_string(request, "dist");
    // Per-backend parameter validation belongs to the registry driver; the
    // legacy power-law fields keep their hostile checks here because the
    // legacy protocol has no declared-parameter list to defer to.
    if (spec.backend.empty() && spec.dist_path.empty()) {
      spec.powerlaw.n = get_u64(request, "n", spec.powerlaw.n);
      if (spec.powerlaw.n == 0) return bad_field("n", "must be positive");
      spec.powerlaw.gamma = get_double(request, "gamma", spec.powerlaw.gamma);
      if (!(spec.powerlaw.gamma > 0))
        return bad_field("gamma", "must be positive");
      spec.powerlaw.dmin = get_u64(request, "dmin", spec.powerlaw.dmin);
      spec.powerlaw.dmax = get_u64(request, "dmax", spec.powerlaw.dmax);
      if (spec.powerlaw.dmin == 0 || spec.powerlaw.dmax < spec.powerlaw.dmin)
        return bad_field("dmin/dmax", "must satisfy 1 <= dmin <= dmax");
    }
  } else {
    spec.in_path = get_string(request, "in");
    spec.edges_follow = get_bool(request, "edges_follow", false);
    if (spec.in_path.empty() && !spec.edges_follow)
      return bad_field("in", "shuffle needs \"in\" or \"edges_follow\":true");
    if (!spec.in_path.empty() && spec.edges_follow)
      return bad_field("in", "cannot combine \"in\" with \"edges_follow\"");
  }
  return spec;
}

std::string serialize_job_spec(const JobSpec& spec) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("op", spec.op_name());
  if (spec.op == JobSpec::Op::kGenerate) {
    if (!spec.backend.empty()) w.kv("backend", spec.backend);
    if (!spec.space.empty()) w.kv("space", spec.space);
    if (!spec.labeling.empty()) w.kv("labeling", spec.labeling);
    if (!spec.params.empty()) {
      w.key("params").begin_object();
      for (const auto& [key, value] : spec.params) w.kv(key, value);
      w.end_object();
    }
    if (!spec.dist_path.empty()) {
      w.kv("dist", spec.dist_path);
    } else if (spec.backend.empty()) {
      w.kv("n", spec.powerlaw.n);
      w.kv("gamma", spec.powerlaw.gamma);
      w.kv("dmin", spec.powerlaw.dmin);
      w.kv("dmax", spec.powerlaw.dmax);
    }
  } else {
    if (!spec.in_path.empty()) w.kv("in", spec.in_path);
    if (spec.edges_follow) w.kv("edges_follow", true);
  }
  w.kv("seed", spec.seed);
  w.kv("swaps", spec.swaps);
  if (spec.deadline_ms > 0) w.kv("deadline_ms", spec.deadline_ms);
  if (spec.threads > 0) w.kv("threads", spec.threads);
  if (spec.checkpoint_every > 0)
    w.kv("checkpoint_every", spec.checkpoint_every);
  if (!spec.out_path.empty()) w.kv("out", spec.out_path);
  if (spec.inject_slow_ms > 0) w.kv("inject_slow_ms", spec.inject_slow_ms);
  if (spec.trace_id != 0) w.kv("trace_id", spec.trace_id);
  if (spec.parent_span != 0) w.kv("parent_span", spec.parent_span);
  w.end_object();
  return std::move(w).str();
}

StatusCode status_code_from_id(std::uint64_t id) noexcept {
  if (id > static_cast<std::uint64_t>(StatusCode::kClientProtocol))
    return StatusCode::kInternal;
  return static_cast<StatusCode>(id);
}

namespace {

void put_status(obs::JsonWriter& w, const Status& status) {
  w.kv("code", status_code_name(status.code()));
  w.kv("code_id", static_cast<std::uint64_t>(status.code()));
  w.kv("exit_code", status_exit_code(status.code()));
  if (!status.message().empty()) w.kv("message", status.message());
}

}  // namespace

std::string render_admission_ok(std::uint64_t job_id) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("ok", true);
  w.kv("job_id", job_id);
  w.end_object();
  return std::move(w).str();
}

std::string render_reject(const Status& status, std::uint64_t retry_after_ms) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("ok", false);
  put_status(w, status);
  if (retry_after_ms > 0) w.kv("retry_after_ms", retry_after_ms);
  w.end_object();
  return std::move(w).str();
}

std::string render_result(std::uint64_t job_id, const Status& final_status,
                          StatusCode curtailed, std::size_t edge_count,
                          const std::string& report_path,
                          const std::string& out_path,
                          const std::vector<obs::TraceEventView>* spans) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("done", true);
  w.kv("ok", final_status.ok());
  w.kv("job_id", job_id);
  put_status(w, final_status);
  if (curtailed != StatusCode::kOk) {
    w.kv("curtailed", status_code_name(curtailed));
    w.kv("curtailed_id", static_cast<std::uint64_t>(curtailed));
  }
  w.kv("edges", edge_count);
  if (!report_path.empty()) w.kv("report", report_path);
  if (!out_path.empty()) w.kv("out", out_path);
  if (spans != nullptr && !spans->empty()) {
    w.key("spans").begin_array();
    for (const obs::TraceEventView& e : *spans) {
      w.begin_object();
      w.kv("name", e.name);
      w.kv("ph", std::string_view(&e.phase, 1));
      w.kv("ts_us", e.ts_us);
      w.kv("dur_us", e.dur_us);
      w.kv("tid", e.tid);
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();
  return std::move(w).str();
}

}  // namespace nullgraph::svc
