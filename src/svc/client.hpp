#pragma once
// Client side of the serve protocol: connect, submit, collect. Used by
// the `nullgraph submit` CLI verb, the serve_smoke CI tier, and the
// service tests — all three speak through this one implementation so the
// protocol has exactly two endpoints (daemon.cpp and this file).

#include <cstdint>
#include <string>
#include <vector>

#include "ds/edge_list.hpp"
#include "obs/trace.hpp"
#include "robustness/status.hpp"
#include "svc/job.hpp"

namespace nullgraph::svc {

struct SubmitOptions {
  std::string socket_path;
  /// Deadline for each reply frame (0 = wait however long the job takes).
  int reply_timeout_ms = 0;
  /// Borrowed client-side trace sink: when set, submit_job records its own
  /// protocol spans (connect, send request, await admission, await result)
  /// here, so the CLI can merge them with the daemon's returned spans into
  /// one cross-process trace.
  obs::TraceSink* trace = nullptr;
};

struct SubmitOutcome {
  /// Admission verdict: Ok when the job ran; kOverloaded / kJobEvicted /
  /// kClientProtocol when the daemon turned the request away.
  Status admission;
  std::uint64_t job_id = 0;
  /// Backoff hint accompanying a kOverloaded reject.
  std::uint64_t retry_after_ms = 0;
  /// The job's own typed outcome (meaningful only when admission is Ok).
  Status final_status;
  /// Governance curtailment name ("kDeadlineExceeded", ...) or "", plus
  /// the typed code for exit-status mapping.
  std::string curtailed;
  StatusCode curtailed_code = StatusCode::kOk;
  /// Edge count the daemon reported.
  std::uint64_t edge_count = 0;
  /// Streamed result (empty when the job wrote a server-side out path).
  EdgeList edges;
  std::string report_path;
  std::string out_path;
  /// Worker-side spans from the result frame (absolute monotonic µs; only
  /// populated when the spec carried a trace_id and the daemon traced).
  std::vector<obs::TraceEventView> daemon_spans;

  /// The status a CLI should exit with: admission failure first, then the
  /// job's own outcome.
  const Status& decisive() const noexcept {
    return admission.ok() ? final_status : admission;
  }
};

/// Submits one job and blocks until the daemon's final verdict. Transport
/// failures (daemon not running, connection died) are the Result's error;
/// protocol-level rejections land in SubmitOutcome::admission so callers
/// can distinguish "no daemon" from "daemon said no".
Result<SubmitOutcome> submit_job(const SubmitOptions& options,
                                 const JobSpec& spec);

/// {"op":"stats"} round-trip. Returns the daemon's JSON reply only after
/// validating it IS a well-formed ok-reply: a malformed frame (wrong type,
/// broken JSON, non-object) surfaces as a typed kClientProtocol and an
/// {"ok":false,...} reply as its embedded status — never a raw
/// pass-through the caller would have to re-parse defensively.
Result<std::string> request_stats(const SubmitOptions& options);

/// {"op":"metrics"} round-trip; returns the Prometheus text exposition
/// unwrapped from the daemon's JSON envelope.
Result<std::string> request_metrics(const SubmitOptions& options);

/// {"op":"shutdown"} — asks the daemon to stop (queued jobs are evicted,
/// running jobs drain).
Status request_shutdown(const SubmitOptions& options);

/// {"op":"ping"} health probe.
Status ping(const SubmitOptions& options);

}  // namespace nullgraph::svc
