#include "svc/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace nullgraph::svc {

namespace {

const JsonObject kEmptyObject;
const JsonArray kEmptyArray;

/// Recursive-descent parser over a string_view with an explicit cursor.
/// Depth is capped so hostile nesting cannot overflow the daemon's stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> parse() {
    Result<JsonValue> value = parse_value(0);
    if (!value.ok()) return value;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing bytes after document");
    return value;
  }

 private:
  static constexpr int kMaxDepth = 32;

  Status fail(const std::string& what) const {
    return Status(StatusCode::kClientProtocol,
                  "bad JSON at byte " + std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> parse_value(int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object(depth);
    if (c == '[') return parse_array(depth);
    if (c == '"') {
      Result<std::string> s = parse_string();
      if (!s.ok()) return s.status();
      return JsonValue(std::move(s.value()));
    }
    if (consume_word("true")) return JsonValue(true);
    if (consume_word("false")) return JsonValue(false);
    if (consume_word("null")) return JsonValue();
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    return fail(std::string("unexpected character '") + c + "'");
  }

  Result<JsonValue> parse_object(int depth) {
    ++pos_;  // '{'
    JsonObject obj;
    skip_ws();
    if (consume('}')) return JsonValue(std::move(obj));
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"')
        return fail("expected object key");
      Result<std::string> key = parse_string();
      if (!key.ok()) return key.status();
      skip_ws();
      if (!consume(':')) return fail("expected ':' after key");
      Result<JsonValue> value = parse_value(depth + 1);
      if (!value.ok()) return value;
      obj.insert_or_assign(std::move(key.value()), std::move(value.value()));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return JsonValue(std::move(obj));
      return fail("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> parse_array(int depth) {
    ++pos_;  // '['
    JsonArray arr;
    skip_ws();
    if (consume(']')) return JsonValue(std::move(arr));
    while (true) {
      Result<JsonValue> value = parse_value(depth + 1);
      if (!value.ok()) return value;
      arr.push_back(std::move(value.value()));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return JsonValue(std::move(arr));
      return fail("expected ',' or ']' in array");
    }
  }

  Result<std::string> parse_string() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("unescaped control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              return fail("bad hex digit in \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // needed by the protocol; a lone surrogate encodes as-is).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return fail("bad escape character");
      }
    }
    return fail("unterminated string");
  }

  Result<JsonValue> parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
      ++pos_;
    bool integral = pos_ > start && text_[start] != '-';
    if (consume('.')) {
      integral = false;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
        ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
        ++pos_;
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") return fail("bad number");
    if (integral) {
      std::uint64_t u = 0;
      const auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), u);
      if (ec == std::errc() && ptr == token.data() + token.size())
        return JsonValue(u);
      // Falls through to double for digit runs above 2^64.
    }
    const std::string copy(token);  // strtod needs a terminator
    char* end = nullptr;
    const double d = std::strtod(copy.c_str(), &end);
    if (end != copy.c_str() + copy.size()) return fail("bad number");
    return JsonValue(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonObject& JsonValue::as_object() const {
  return object_ ? *object_ : kEmptyObject;
}

const JsonArray& JsonValue::as_array() const {
  return array_ ? *array_ : kEmptyArray;
}

const JsonValue* find(const JsonObject& obj, std::string_view key) {
  const auto it = obj.find(std::string(key));
  return it == obj.end() ? nullptr : &it->second;
}

std::uint64_t get_u64(const JsonObject& obj, std::string_view key,
                      std::uint64_t fallback) {
  const JsonValue* v = find(obj, key);
  return v != nullptr ? v->as_u64(fallback) : fallback;
}

double get_double(const JsonObject& obj, std::string_view key,
                  double fallback) {
  const JsonValue* v = find(obj, key);
  return v != nullptr ? v->as_double(fallback) : fallback;
}

bool get_bool(const JsonObject& obj, std::string_view key, bool fallback) {
  const JsonValue* v = find(obj, key);
  return v != nullptr ? v->as_bool(fallback) : fallback;
}

std::string get_string(const JsonObject& obj, std::string_view key,
                       const std::string& fallback) {
  const JsonValue* v = find(obj, key);
  if (v == nullptr || v->kind() != JsonValue::Kind::kString) return fallback;
  return v->as_string();
}

Result<JsonValue> parse_json(std::string_view text) {
  return Parser(text).parse();
}

}  // namespace nullgraph::svc
