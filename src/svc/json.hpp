#pragma once
// Minimal JSON reader for the serve wire protocol's control messages.
//
// The write side reuses obs::JsonWriter; this is the missing read side,
// scoped to what the protocol needs: objects, arrays, strings, numbers,
// booleans and null, with strict RFC 8259 syntax. Anything off is a typed
// kClientProtocol failure — a malformed control message is CLIENT traffic
// the daemon must survive, never an internal error.
//
// Numbers keep unsigned-integer fidelity: a token of pure digits is stored
// as u64 (seeds use the full range; a double would silently round above
// 2^53) and only falls back to double for signs, fractions and exponents.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "robustness/status.hpp"

namespace nullgraph::svc {

class JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kUnsigned, kDouble, kString, kObject,
                    kArray };

  JsonValue() = default;
  explicit JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  explicit JsonValue(std::uint64_t u) : kind_(Kind::kUnsigned), unsigned_(u) {}
  explicit JsonValue(double d) : kind_(Kind::kDouble), double_(d) {}
  explicit JsonValue(std::string s)
      : kind_(Kind::kString), string_(std::move(s)) {}
  explicit JsonValue(JsonObject o)
      : kind_(Kind::kObject),
        object_(std::make_shared<JsonObject>(std::move(o))) {}
  explicit JsonValue(JsonArray a)
      : kind_(Kind::kArray), array_(std::make_shared<JsonArray>(std::move(a))) {}

  Kind kind() const noexcept { return kind_; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }

  /// Typed accessors; each returns the fallback when the value is absent
  /// or of the wrong kind (the protocol treats missing and mistyped
  /// optional fields identically — required fields are validated by the
  /// request parser, which reports which key is bad).
  bool as_bool(bool fallback = false) const noexcept {
    return kind_ == Kind::kBool ? bool_ : fallback;
  }
  std::uint64_t as_u64(std::uint64_t fallback = 0) const noexcept {
    if (kind_ == Kind::kUnsigned) return unsigned_;
    if (kind_ == Kind::kDouble && double_ >= 0) {
      return static_cast<std::uint64_t>(double_);
    }
    return fallback;
  }
  double as_double(double fallback = 0.0) const noexcept {
    if (kind_ == Kind::kDouble) return double_;
    if (kind_ == Kind::kUnsigned) return static_cast<double>(unsigned_);
    return fallback;
  }
  const std::string& as_string() const noexcept { return string_; }
  const JsonObject& as_object() const;
  const JsonArray& as_array() const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::uint64_t unsigned_ = 0;
  double double_ = 0.0;
  std::string string_;
  // shared_ptr keeps JsonValue copyable without recursive value layout.
  std::shared_ptr<JsonObject> object_;
  std::shared_ptr<JsonArray> array_;
};

/// Convenience lookups on a parsed control message.
const JsonValue* find(const JsonObject& obj, std::string_view key);
std::uint64_t get_u64(const JsonObject& obj, std::string_view key,
                      std::uint64_t fallback);
double get_double(const JsonObject& obj, std::string_view key,
                  double fallback);
bool get_bool(const JsonObject& obj, std::string_view key, bool fallback);
std::string get_string(const JsonObject& obj, std::string_view key,
                       const std::string& fallback = "");

/// Strict parse of one JSON document (must consume the whole input).
/// kClientProtocol with the offending byte offset on any syntax error.
Result<JsonValue> parse_json(std::string_view text);

}  // namespace nullgraph::svc
