#include "svc/wire.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace nullgraph::svc {

namespace {

Status errno_status(const std::string& what) {
  return Status(StatusCode::kIoError, what + ": " + std::strerror(errno));
}

/// Full-buffer send; EINTR restarts, everything else is kIoError.
/// MSG_NOSIGNAL: a peer that closed mid-stream must surface as a Status
/// on this write, not as SIGPIPE terminating the daemon.
Status send_all(int fd, const void* data, std::size_t size) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  while (size > 0) {
    const ssize_t n = ::send(fd, p, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_status("socket write failed");
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

/// Full-buffer read with a per-poll deadline. A peer that stops sending
/// mid-frame is a protocol violation (kClientProtocol), not an I/O error:
/// the transport is fine, the client is misbehaving.
Status recv_all(int fd, void* data, std::size_t size, int timeout_ms) {
  unsigned char* p = static_cast<unsigned char*>(data);
  while (size > 0) {
    struct pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms > 0 ? timeout_ms : -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return errno_status("poll failed");
    }
    if (ready == 0)
      return Status(StatusCode::kClientProtocol,
                    "peer stalled mid-frame past " +
                        std::to_string(timeout_ms) + "ms deadline");
    const ssize_t n = ::recv(fd, p, size, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_status("socket read failed");
    }
    if (n == 0)
      return Status(StatusCode::kIoError, "peer closed connection mid-frame");
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

Status fill_unix_addr(const std::string& path, sockaddr_un& addr) {
  std::memset(&addr, 0, sizeof addr);
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path)
    return Status(StatusCode::kIoError,
                  "socket path too long (" + std::to_string(path.size()) +
                      " bytes): " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return Status::Ok();
}

}  // namespace

Status write_frame(int fd, FrameType type, const void* payload,
                   std::size_t size) {
  if (size > kMaxFramePayload)
    return Status(StatusCode::kInvalidArgument,
                  "frame payload exceeds cap: " + std::to_string(size));
  unsigned char header[5];
  const std::uint32_t len = static_cast<std::uint32_t>(size);
  std::memcpy(header, &len, 4);
  header[4] = static_cast<unsigned char>(type);
  if (Status s = send_all(fd, header, sizeof header); !s.ok()) return s;
  if (size == 0) return Status::Ok();
  return send_all(fd, payload, size);
}

Status write_control(int fd, const std::string& json) {
  return write_frame(fd, FrameType::kControl, json.data(), json.size());
}

Status write_edge_frames(int fd, const EdgeList& edges) {
  static_assert(sizeof(Edge) == 8, "wire format assumes packed u32 pairs");
  std::size_t offset = 0;
  while (offset < edges.size()) {
    const std::size_t count = std::min(kEdgesPerFrame, edges.size() - offset);
    if (Status s = write_frame(fd, FrameType::kEdges, edges.data() + offset,
                               count * sizeof(Edge));
        !s.ok())
      return s;
    offset += count;
  }
  return Status::Ok();
}

Result<Frame> read_frame(int fd, int timeout_ms, std::size_t max_payload) {
  unsigned char header[5];
  if (Status s = recv_all(fd, header, sizeof header, timeout_ms); !s.ok())
    return s;
  std::uint32_t len = 0;
  std::memcpy(&len, header, 4);
  if (len > max_payload)
    return Status(StatusCode::kClientProtocol,
                  "frame claims " + std::to_string(len) +
                      " bytes, cap is " + std::to_string(max_payload));
  if (header[4] > static_cast<unsigned char>(FrameType::kEdges))
    return Status(StatusCode::kClientProtocol,
                  "unknown frame type " + std::to_string(header[4]));
  Frame frame;
  frame.type = static_cast<FrameType>(header[4]);
  frame.payload.resize(len);
  if (len > 0) {
    if (Status s = recv_all(fd, frame.payload.data(), len, timeout_ms);
        !s.ok())
      return s;
  }
  return frame;
}

Result<EdgeList> decode_edges(const Frame& frame) {
  if (frame.type != FrameType::kEdges)
    return Status(StatusCode::kClientProtocol,
                  "expected an edge frame, got control");
  if (frame.payload.size() % sizeof(Edge) != 0)
    return Status(StatusCode::kClientProtocol,
                  "edge frame payload is not a whole number of edges: " +
                      std::to_string(frame.payload.size()) + " bytes");
  EdgeList edges(frame.payload.size() / sizeof(Edge));
  std::memcpy(edges.data(), frame.payload.data(), frame.payload.size());
  return edges;
}

Result<int> listen_unix(const std::string& path, int backlog) {
  sockaddr_un addr;
  if (Status s = fill_unix_addr(path, addr); !s.ok()) return s;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return errno_status("socket() failed");
  ::unlink(path.c_str());  // stale socket file from a killed daemon
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    Status s = errno_status("bind failed for " + path);
    ::close(fd);
    return s;
  }
  if (::listen(fd, backlog) != 0) {
    Status s = errno_status("listen failed for " + path);
    ::close(fd);
    return s;
  }
  return fd;
}

Result<int> connect_unix(const std::string& path) {
  sockaddr_un addr;
  if (Status s = fill_unix_addr(path, addr); !s.ok()) return s;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return errno_status("socket() failed");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    Status s = errno_status("cannot connect to daemon at " + path);
    ::close(fd);
    return s;
  }
  return fd;
}

Result<int> accept_with_timeout(int listen_fd, int timeout_ms) {
  struct pollfd pfd{listen_fd, POLLIN, 0};
  while (true) {
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;  // signal delivery; caller polls stop flag
      return errno_status("poll on listen socket failed");
    }
    if (ready == 0) return -1;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return errno_status("accept failed");
    }
    return fd;
  }
}

void close_fd(int fd) noexcept {
  if (fd >= 0) ::close(fd);
}

}  // namespace nullgraph::svc
