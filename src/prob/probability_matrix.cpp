#include "prob/probability_matrix.hpp"

#include <algorithm>
#include <cmath>

#include "exec/exec.hpp"

namespace nullgraph {

void ProbabilityMatrix::clamp() {
  const exec::ParallelContext ctx;
  exec::for_chunks(ctx, values_.size(), exec::kDefaultGrain,
                   [&](const exec::Chunk& chunk) {
                     for (std::size_t k = chunk.begin; k < chunk.end; ++k)
                       values_[k] = std::clamp(values_[k], 0.0, 1.0);
                   });
}

double ProbabilityMatrix::max_value() const noexcept {
  const exec::ParallelContext ctx;
  return exec::reduce<double>(
      ctx, values_.size(), exec::kDefaultGrain, 0.0,
      [&](const exec::Chunk& chunk) {
        double hi = 0.0;
        for (std::size_t k = chunk.begin; k < chunk.end; ++k)
          if (values_[k] > hi) hi = values_[k];
        return hi;
      },
      [](double a, double b) { return a > b ? a : b; });
}

double ProbabilityMatrix::expected_degree(
    std::size_t c, const DegreeDistribution& dist) const {
  double sum = 0.0;
  for (std::size_t j = 0; j < num_classes_; ++j)
    sum += static_cast<double>(dist.count_of_class(j)) * at(c, j);
  return sum - at(c, c);
}

double ProbabilityMatrix::expected_edges(
    const DegreeDistribution& dist) const {
  const exec::ParallelContext ctx;
  return exec::reduce<double>(
      ctx, num_classes_, 16, 0.0,
      [&](const exec::Chunk& chunk) {
        double sum = 0.0;
        for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
          const double ni = static_cast<double>(dist.count_of_class(i));
          for (std::size_t j = 0; j < i; ++j)
            sum += at(i, j) * ni * static_cast<double>(dist.count_of_class(j));
          sum += at(i, i) * ni * (ni - 1.0) / 2.0;
        }
        return sum;
      },
      [](double a, double b) { return a + b; });
}

double ProbabilityMatrix::l1_distance(const ProbabilityMatrix& a,
                                      const ProbabilityMatrix& b) {
  const exec::ParallelContext ctx;
  return exec::reduce<double>(
      ctx, a.values_.size(), exec::kDefaultGrain, 0.0,
      [&](const exec::Chunk& chunk) {
        double sum = 0.0;
        for (std::size_t k = chunk.begin; k < chunk.end; ++k)
          sum += std::abs(a.values_[k] - b.values_[k]);
        return sum;
      },
      [](double x, double y) { return x + y; });
}

double ProbabilityMatrix::weighted_l1_distance(
    const ProbabilityMatrix& a, const ProbabilityMatrix& b,
    const DegreeDistribution& dist) {
  const std::size_t nc = a.num_classes_;
  const exec::ParallelContext ctx;
  return exec::reduce<double>(
      ctx, nc, 16, 0.0,
      [&](const exec::Chunk& chunk) {
        double sum = 0.0;
        for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
          const double ni = static_cast<double>(dist.count_of_class(i));
          for (std::size_t j = 0; j < i; ++j) {
            const double pairs =
                ni * static_cast<double>(dist.count_of_class(j));
            sum += std::abs(a.at(i, j) - b.at(i, j)) * pairs;
          }
          sum += std::abs(a.at(i, i) - b.at(i, i)) * ni * (ni - 1.0) / 2.0;
        }
        return sum;
      },
      [](double x, double y) { return x + y; });
}

ProbabilityDiagnostics diagnose(const ProbabilityMatrix& matrix,
                                const DegreeDistribution& dist) {
  ProbabilityDiagnostics diag;
  double weighted_error = 0.0;
  for (std::size_t c = 0; c < dist.num_classes(); ++c) {
    const double target = static_cast<double>(dist.degree_of_class(c));
    const double expected = matrix.expected_degree(c, dist);
    const double rel = target > 0 ? std::abs(expected - target) / target : 0;
    diag.max_relative_degree_error =
        std::max(diag.max_relative_degree_error, rel);
    weighted_error += std::abs(expected - target) *
                      static_cast<double>(dist.count_of_class(c));
  }
  const double stubs = static_cast<double>(dist.num_stubs());
  diag.total_relative_stub_error = stubs > 0 ? weighted_error / stubs : 0.0;
  const double m = static_cast<double>(dist.num_edges());
  diag.relative_edge_error =
      m > 0 ? std::abs(matrix.expected_edges(dist) - m) / m : 0.0;
  diag.max_probability = matrix.max_value();
  return diag;
}

}  // namespace nullgraph
