#include "prob/probability_matrix.hpp"

#include <algorithm>
#include <cmath>

namespace nullgraph {

void ProbabilityMatrix::clamp() {
#pragma omp parallel for schedule(static)
  for (std::size_t k = 0; k < values_.size(); ++k)
    values_[k] = std::clamp(values_[k], 0.0, 1.0);
}

double ProbabilityMatrix::max_value() const noexcept {
  double result = 0.0;
#pragma omp parallel for reduction(max : result) schedule(static)
  for (std::size_t k = 0; k < values_.size(); ++k)
    if (values_[k] > result) result = values_[k];
  return result;
}

double ProbabilityMatrix::expected_degree(
    std::size_t c, const DegreeDistribution& dist) const {
  double sum = 0.0;
  for (std::size_t j = 0; j < num_classes_; ++j)
    sum += static_cast<double>(dist.count_of_class(j)) * at(c, j);
  return sum - at(c, c);
}

double ProbabilityMatrix::expected_edges(
    const DegreeDistribution& dist) const {
  double sum = 0.0;
#pragma omp parallel for reduction(+ : sum) schedule(dynamic, 16)
  for (std::size_t i = 0; i < num_classes_; ++i) {
    const double ni = static_cast<double>(dist.count_of_class(i));
    for (std::size_t j = 0; j < i; ++j)
      sum += at(i, j) * ni * static_cast<double>(dist.count_of_class(j));
    sum += at(i, i) * ni * (ni - 1.0) / 2.0;
  }
  return sum;
}

double ProbabilityMatrix::l1_distance(const ProbabilityMatrix& a,
                                      const ProbabilityMatrix& b) {
  double sum = 0.0;
#pragma omp parallel for reduction(+ : sum) schedule(static)
  for (std::size_t k = 0; k < a.values_.size(); ++k)
    sum += std::abs(a.values_[k] - b.values_[k]);
  return sum;
}

double ProbabilityMatrix::weighted_l1_distance(
    const ProbabilityMatrix& a, const ProbabilityMatrix& b,
    const DegreeDistribution& dist) {
  double sum = 0.0;
  const std::size_t nc = a.num_classes_;
#pragma omp parallel for reduction(+ : sum) schedule(dynamic, 16)
  for (std::size_t i = 0; i < nc; ++i) {
    const double ni = static_cast<double>(dist.count_of_class(i));
    for (std::size_t j = 0; j < i; ++j) {
      const double pairs = ni * static_cast<double>(dist.count_of_class(j));
      sum += std::abs(a.at(i, j) - b.at(i, j)) * pairs;
    }
    sum += std::abs(a.at(i, i) - b.at(i, i)) * ni * (ni - 1.0) / 2.0;
  }
  return sum;
}

ProbabilityDiagnostics diagnose(const ProbabilityMatrix& matrix,
                                const DegreeDistribution& dist) {
  ProbabilityDiagnostics diag;
  double weighted_error = 0.0;
  for (std::size_t c = 0; c < dist.num_classes(); ++c) {
    const double target = static_cast<double>(dist.degree_of_class(c));
    const double expected = matrix.expected_degree(c, dist);
    const double rel = target > 0 ? std::abs(expected - target) / target : 0;
    diag.max_relative_degree_error =
        std::max(diag.max_relative_degree_error, rel);
    weighted_error += std::abs(expected - target) *
                      static_cast<double>(dist.count_of_class(c));
  }
  const double stubs = static_cast<double>(dist.num_stubs());
  diag.total_relative_stub_error = stubs > 0 ? weighted_error / stubs : 0.0;
  const double m = static_cast<double>(dist.num_edges());
  diag.relative_edge_error =
      m > 0 ? std::abs(matrix.expected_edges(dist) - m) / m : 0.0;
  diag.max_probability = matrix.max_value();
  return diag;
}

}  // namespace nullgraph
