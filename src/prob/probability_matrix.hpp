#pragma once
// ProbabilityMatrix: symmetric |D| x |D| pairwise edge probabilities between
// degree classes — the P of Algorithms IV.1/IV.2. Stored as the packed
// lower triangle (|D|(|D|+1)/2 doubles), honouring the paper's O(|D|^2)
// space bound at half the naive constant.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ds/degree_distribution.hpp"

namespace nullgraph {

class ProbabilityMatrix {
 public:
  ProbabilityMatrix() = default;
  explicit ProbabilityMatrix(std::size_t num_classes)
      : num_classes_(num_classes),
        values_(num_classes * (num_classes + 1) / 2, 0.0) {}

  std::size_t num_classes() const noexcept { return num_classes_; }

  double at(std::size_t i, std::size_t j) const noexcept {
    return values_[index(i, j)];
  }
  void set(std::size_t i, std::size_t j, double p) noexcept {
    values_[index(i, j)] = p;
  }
  void add(std::size_t i, std::size_t j, double p) noexcept {
    values_[index(i, j)] += p;
  }

  /// Clamps every entry into [0, 1].
  void clamp();

  double max_value() const noexcept;

  /// Expected degree of a vertex in class c under a Bernoulli generator:
  ///   sum_j count(j) * P(c, j)  -  P(c, c)
  /// (the LHS of the paper's system of equations; the subtraction accounts
  /// for a vertex not pairing with itself).
  double expected_degree(std::size_t c, const DegreeDistribution& dist) const;

  /// Expected number of edges over all pair spaces:
  ///   sum_{i<j} P(i,j) n_i n_j + sum_i P(i,i) C(n_i, 2).
  double expected_edges(const DegreeDistribution& dist) const;

  /// Entry-wise L1 distance over the packed triangle (off-diagonal entries
  /// counted once; the convention used for Figure 4's error curves).
  static double l1_distance(const ProbabilityMatrix& a,
                            const ProbabilityMatrix& b);

  /// Pair-count-weighted L1 distance: sum over class pairs of
  /// |a - b| * (number of vertex pairs in that space). Equals the L1
  /// difference in EXPECTED EDGES between the two attachment structures,
  /// so sampling noise from tiny classes (a single hub vs a single hub)
  /// does not swamp the signal the way it does in the raw entry-wise L1.
  static double weighted_l1_distance(const ProbabilityMatrix& a,
                                     const ProbabilityMatrix& b,
                                     const DegreeDistribution& dist);

 private:
  std::size_t index(std::size_t i, std::size_t j) const noexcept {
    if (i < j) std::swap(i, j);
    return i * (i + 1) / 2 + j;
  }

  std::size_t num_classes_ = 0;
  std::vector<double> values_;
};

/// Per-class diagnostics of how well a probability matrix realizes its
/// target distribution (the paper's "error is small for non-contrived
/// networks" claim, made measurable).
struct ProbabilityDiagnostics {
  /// max over classes of |expected_degree(c) - degree(c)| / degree(c)
  double max_relative_degree_error = 0.0;
  /// total expected degree error weighted by class counts, relative to 2m
  double total_relative_stub_error = 0.0;
  /// expected edges vs target m, relative
  double relative_edge_error = 0.0;
  /// largest matrix entry (must stay <= 1 for a Bernoulli generator)
  double max_probability = 0.0;
};

ProbabilityDiagnostics diagnose(const ProbabilityMatrix& matrix,
                                const DegreeDistribution& dist);

}  // namespace nullgraph
