#pragma once
// Probability-generation heuristics (Section IV-A). Given a degree
// distribution, produce pairwise class probabilities P such that a
// Bernoulli edge-skipping generator reproduces the distribution in
// expectation — the step for which "no closed-form solution exists".
//
// Three generators are provided:
//  * chung_lu_probabilities     — the classical (capped) w_i w_j / 2m,
//                                 the O(n^2)-edgeskip baseline of Fig. 3.
//  * stub_matching_probabilities— the paper's heuristic: ordered classes,
//                                 doubled free-stub array, half-probability
//                                 accumulation p_ij + p_ji.
//  * greedy_probabilities       — a descending single-pass stub allocator
//                                 with exact per-class stub accounting
//                                 (water-filling against simplicity caps);
//                                 matches d_max and m by construction and
//                                 is the library default.
//
// All run in O(|D|^2) work / O(|D|) parallel depth, matching Section V.

// All heuristics accept an optional RunGovernor and poll it at per-row /
// per-step granularity; on a stop verdict the remaining rows are left at
// their zero default (still a valid, if underfilled, probability matrix)
// and the caller reads the governor's stop_reason().

#include <cstddef>

#include "ds/degree_distribution.hpp"
#include "exec/phase_timing.hpp"
#include "prob/probability_matrix.hpp"
#include "robustness/governance.hpp"

namespace nullgraph {

/// Capped Chung-Lu probabilities: P(i,j) = min(1, d_i d_j / 2m). The
/// optional sink collects exec-layer records under "probabilities".
ProbabilityMatrix chung_lu_probabilities(
    const DegreeDistribution& dist, const RunGovernor* governor = nullptr,
    exec::PhaseTimingSink* timings = nullptr);

/// The paper's Section IV-A heuristic, implemented as published: classes
/// ordered by degree, free-stub array FE initialized to twice the stub
/// counts, e_ij = Min(FE_i FE_j / (sum FE - FE_i), n_i n_j, FE_j),
/// p_ij = e_ij / (2 n_i n_j), accumulated symmetrically.
ProbabilityMatrix stub_matching_probabilities(
    const DegreeDistribution& dist, const RunGovernor* governor = nullptr);

/// Greedy descending allocator: process classes from d_max down, allocating
/// each class's remaining stubs across the not-yet-processed classes
/// proportionally to their remaining stubs, capped by space sizes (keeps
/// every P <= 1) and by the receiving class's remaining stubs. Fractional
/// allocations; `rounds` water-filling passes absorb cap-bound residue.
ProbabilityMatrix greedy_probabilities(const DegreeDistribution& dist,
                                       int rounds = 32,
                                       const RunGovernor* governor = nullptr);

/// Optional fixed-point refinement (the paper's "future work" correction):
/// multiplicative per-class scaling toward the expected-degree system,
/// clamped to [0, 1]. Improves the low-degree fit Chung-Lu style matrices
/// get wrong; used by the probability ablation benchmark.
void refine_probabilities(ProbabilityMatrix& matrix,
                          const DegreeDistribution& dist, int iterations = 16,
                          const RunGovernor* governor = nullptr,
                          exec::PhaseTimingSink* timings = nullptr);

}  // namespace nullgraph
