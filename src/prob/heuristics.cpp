#include "prob/heuristics.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "exec/exec.hpp"

namespace nullgraph {

namespace {

/// Per-chunk governance poll inside the parallel heuristics: an OpenMP for
/// cannot break, so governed rows that start after the verdict simply no-op
/// (their matrix rows keep the zero default).
inline bool governed_stop(const RunGovernor* governor) noexcept {
  return governor != nullptr &&
         governor->should_stop() != StatusCode::kOk;
}

}  // namespace

ProbabilityMatrix chung_lu_probabilities(const DegreeDistribution& dist,
                                         const RunGovernor* governor,
                                         exec::PhaseTimingSink* timings) {
  const std::size_t nc = dist.num_classes();
  ProbabilityMatrix matrix(nc);
  const double two_m = static_cast<double>(dist.num_stubs());
  if (two_m == 0) return matrix;
  exec::ParallelContext ctx;
  ctx.governor = governor;
  ctx.timings = timings;
  ctx.phase = "probabilities";
  exec::for_chunks(ctx, nc, 16, [&](const exec::Chunk& chunk) {
    for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
      const double di = static_cast<double>(dist.degree_of_class(i));
      for (std::size_t j = 0; j <= i; ++j) {
        const double dj = static_cast<double>(dist.degree_of_class(j));
        matrix.set(i, j, std::min(1.0, di * dj / two_m));
      }
    }
  });
  return matrix;
}

ProbabilityMatrix stub_matching_probabilities(
    const DegreeDistribution& dist, const RunGovernor* governor) {
  // Faithful rendering of Section IV-A. Classes are processed in descending
  // expected-degree order; FE starts at TWICE the stub counts and each
  // allocation contributes the half-probability p_ij = e_ij / (2 n_i n_j),
  // so the symmetric accumulation P = p_ij + p_ji lands at full strength.
  // The paper leaves the stub-removal bookkeeping implicit; we remove
  // exactly the e_ij stubs its own e_ij formula allocates (linear
  // accounting), which reproduces its claimed behaviour on power-law
  // inputs (see tests/test_prob_heuristics and bench_ablation_prob).
  const std::size_t nc = dist.num_classes();
  ProbabilityMatrix matrix(nc);
  if (nc == 0) return matrix;
  std::vector<double> free_stubs(nc);
  for (std::size_t c = 0; c < nc; ++c) {
    free_stubs[c] = 2.0 * static_cast<double>(dist.degree_of_class(c)) *
                    static_cast<double>(dist.count_of_class(c));
  }
  // Our classes are stored ascending; iterate descending (largest first).
  for (std::size_t step = 0; step < nc; ++step) {
    if (governed_stop(governor)) break;
    const std::size_t i = nc - 1 - step;
    double total = 0.0;
    for (double fe : free_stubs) total += fe;
    const double denom = total - free_stubs[i];
    const double ni = static_cast<double>(dist.count_of_class(i));
    double handed_out = 0.0;
    for (std::size_t jstep = 0; jstep < nc; ++jstep) {
      const std::size_t j = nc - 1 - jstep;
      const double nj = static_cast<double>(dist.count_of_class(j));
      double naive = 0.0;
      if (denom > 0.0 && free_stubs[i] > 0.0)
        naive = free_stubs[i] * free_stubs[j] / denom;
      const double pair_cap = i == j ? ni * (ni - 1.0) : ni * nj;
      const double edges =
          std::max(0.0, std::min({naive, pair_cap, free_stubs[j]}));
      if (edges <= 0.0) continue;
      const double p = edges / (2.0 * ni * nj);
      matrix.add(i, j, p);
      free_stubs[j] -= edges;
      handed_out += edges;
    }
    free_stubs[i] = std::max(0.0, free_stubs[i] - handed_out);
  }
  matrix.clamp();
  return matrix;
}

ProbabilityMatrix greedy_probabilities(const DegreeDistribution& dist,
                                       int rounds,
                                       const RunGovernor* governor) {
  // Descending single-pass allocator with exact stub accounting. When class
  // c is processed, ALL of its remaining stubs are distributed (fractional
  // expected-edge allocations) across itself and the not-yet-processed
  // classes, proportionally to their remaining stubs and capped so that no
  // pair probability exceeds 1 and no class is overdrawn. Because each
  // allocation of e expected edges between classes a and b raises a's
  // expected degree by exactly e / n_a, exhausting the stub array makes the
  // expected output degree of every class equal its target.
  const std::size_t nc = dist.num_classes();
  ProbabilityMatrix matrix(nc);
  if (nc == 0) return matrix;
  std::vector<double> stubs(nc);
  for (std::size_t c = 0; c < nc; ++c) {
    stubs[c] = static_cast<double>(dist.degree_of_class(c)) *
               static_cast<double>(dist.count_of_class(c));
  }
  constexpr double kEps = 1e-9;
  for (std::size_t step = 0; step < nc; ++step) {
    if (governed_stop(governor)) break;
    const std::size_t c = nc - 1 - step;  // descending degree
    const double n_c = static_cast<double>(dist.count_of_class(c));
    const double self_pairs = n_c * (n_c - 1.0) / 2.0;
    // Uniform-matching share of internal edges first: S_c^2 / (2T), capped
    // by the simple-graph space and by the stubs themselves.
    double total = 0.0;
    for (std::size_t k = 0; k <= c; ++k) total += stubs[k];
    if (total > 0.0 && stubs[c] > 0.0 && self_pairs > 0.0) {
      const double want = stubs[c] * stubs[c] / (2.0 * total);
      const double internal =
          std::min({want, self_pairs * (1.0 - matrix.at(c, c)),
                    stubs[c] / 2.0});
      if (internal > 0.0) {
        matrix.add(c, c, internal / self_pairs);
        stubs[c] -= 2.0 * internal;
      }
    }
    // Water-filling across the remaining classes; repeated rounds absorb
    // residue when a space cap or a small class's stub pool binds.
    for (int round = 0; round < rounds && stubs[c] > kEps; ++round) {
      double weight = 0.0;
      for (std::size_t j = 0; j < c; ++j)
        if (stubs[j] > kEps && matrix.at(c, j) < 1.0) weight += stubs[j];
      if (weight <= kEps) break;
      const double budget = stubs[c];
      double allocated = 0.0;
      for (std::size_t j = 0; j < c; ++j) {
        if (stubs[j] <= kEps) continue;
        const double n_j = static_cast<double>(dist.count_of_class(j));
        const double cap = (1.0 - matrix.at(c, j)) * n_c * n_j;
        if (cap <= kEps) continue;
        const double e =
            std::min({budget * stubs[j] / weight, cap, stubs[j]});
        if (e <= 0.0) continue;
        matrix.add(c, j, e / (n_c * n_j));
        stubs[j] -= e;
        allocated += e;
      }
      stubs[c] = std::max(0.0, stubs[c] - allocated);
      if (allocated <= kEps * budget) {
        // Caps everywhere; push what's left into the self space if any
        // room remains, then give up (tiny residual, reported by
        // diagnose()).
        if (self_pairs > 0.0 && matrix.at(c, c) < 1.0) {
          const double room = (1.0 - matrix.at(c, c)) * self_pairs;
          const double internal = std::min(room, stubs[c] / 2.0);
          matrix.add(c, c, internal / self_pairs);
          stubs[c] -= 2.0 * internal;
        }
        break;
      }
    }
  }
  matrix.clamp();
  return matrix;
}

void refine_probabilities(ProbabilityMatrix& matrix,
                          const DegreeDistribution& dist, int iterations,
                          const RunGovernor* governor,
                          exec::PhaseTimingSink* timings) {
  const std::size_t nc = dist.num_classes();
  std::vector<double> scale(nc, 1.0);
  for (int iter = 0; iter < iterations; ++iter) {
    if (governed_stop(governor)) break;
    for (std::size_t c = 0; c < nc; ++c) {
      const double expected = matrix.expected_degree(c, dist);
      const double target = static_cast<double>(dist.degree_of_class(c));
      // A non-finite expectation (corrupted entry upstream) must not poison
      // the whole row through a NaN/inf scale factor.
      scale[c] = std::isfinite(expected) && expected > 1e-12
                     ? target / expected
                     : 1.0;
    }
    exec::ParallelContext ctx;
    ctx.governor = governor;
    ctx.timings = timings;
    ctx.phase = "probabilities";
    exec::for_chunks(ctx, nc, 16, [&](const exec::Chunk& chunk) {
      for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
          const double factor = std::sqrt(scale[i] * scale[j]);
          const double scaled = matrix.at(i, j) * factor;
          if (!std::isfinite(scaled)) continue;
          matrix.set(i, j, std::clamp(scaled, 0.0, 1.0));
        }
      }
    });
  }
}

}  // namespace nullgraph
