#pragma once
// Crash flight recorder: a fixed-size lock-free ring of the most recent
// event-log lines, dumped atomically to a `flight.jsonl` when something
// goes badly wrong — a fatal signal, kShardCorrupt, curtailment, or a
// watchdog stall. It is the black box the chaos drills inspect after
// killing a daemon: the last kSlots events survive on disk even when the
// process never got to write a report.
//
// Concurrency: record() claims a monotonically increasing ticket with one
// relaxed fetch_add and owns slot (ticket-1) % kSlots. Each slot carries a
// seqlock-style sequence word: writers store 0 (claim), copy the line, then
// store the ticket with release; dump() accepts a slot only when its
// sequence equals the exact ticket that slot should hold, so lapped or
// mid-copy slots are silently skipped instead of emitting torn lines.
//
// Signal-safety: dump() is async-signal-safe — fixed-size buffers, no
// allocation, no locks, only open/write/fsync/close/rename syscalls — so
// the CLI's fatal-signal handler can call it directly. The write goes to
// "<path>.tmp" then renames, so an observer never reads a partial dump.
// This is no longer just asserted: dump() is a registered signal-safe
// root of the semantic analyzer (scripts/analyze/run_analysis.py), which
// walks its call cone and fails the check tier if anything outside the
// POSIX async-signal-safe allowlist becomes reachable.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "robustness/status.hpp"

namespace nullgraph::obs {

class FlightRecorder {
 public:
  /// Ring capacity (events) and per-event byte budget. 256 × 256 B = 64 KiB
  /// resident — cheap enough to always arm when any event sink is on.
  static constexpr std::size_t kSlots = 256;
  static constexpr std::size_t kLineBytes = 256;

  FlightRecorder() = default;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Appends one line (a complete JSONL record, trailing '\n' included) to
  /// the ring, truncating to kLineBytes-1 and forcing the newline back on.
  /// Wait-free; never blocks the emitting thread.
  void record(std::string_view line) noexcept;

  /// Lines recorded since construction (lapped lines included).
  std::uint64_t recorded() const noexcept {
    // relaxed: statistics read.
    return next_.load(std::memory_order_relaxed);
  }

  /// Async-signal-safe dump of the surviving ring contents, oldest first,
  /// via <path>.tmp + rename. Returns false on any syscall failure or when
  /// `path` (+ ".tmp") exceeds the fixed internal buffer. Safe to call
  /// from a signal handler AND concurrently with record().
  bool dump(const char* path) const noexcept;

  /// Typed wrapper for normal-path (non-signal) callers.
  [[nodiscard]] Status dump_to(const std::string& path) const;

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};  // 0 = empty/claimed, else ticket
    std::uint32_t len = 0;
    char line[kLineBytes];
  };

  std::atomic<std::uint64_t> next_{0};  // tickets issued (1-based contents)
  Slot slots_[kSlots];
};

}  // namespace nullgraph::obs
