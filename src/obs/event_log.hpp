#pragma once
// Structured event log: a JSONL sink for the operationally meaningful state
// transitions of a run or a serve daemon — job admitted/evicted/completed,
// phase start/end, curtailment, degradation, shard commit, checkpoint.
//
// One line per event, flushed per line, so the stream is tail -f-able live
// and any crash (even SIGKILL) leaves a valid-JSONL prefix on disk. Line
// schema (keys in this fixed order; zero/empty fields omitted):
//
//   {"ts_us":<abs monotonic µs>,"event":"<kind>","job":N,"trace":N,
//    "phase":"...","value":N,"detail":"..."}
//
// ts_us is monotonic_us() (see obs/trace.hpp): absolute CLOCK_MONOTONIC,
// machine-wide comparable across the client, daemon, and worker processes,
// and deterministically sourced (the determinism lint bans the wall clock).
//
// Emission sites are the COLD control-flow edges of the pipeline — phase
// boundaries, per-shard commits, governance verdicts — never per-element
// inner loops; the obs-confinement lint enforces that boundary. The sink
// mirrors every line into an optional FlightRecorder ring, so the crash
// flight recorder sees exactly the event stream, no separate plumbing.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

#include "obs/obs_context.hpp"
#include "robustness/status.hpp"
#include "util/thread_annotations.hpp"

namespace nullgraph::obs {

class FlightRecorder;

enum class EventKind : int {
  kJobAdmitted = 0,
  kJobEvicted,
  kJobCompleted,
  kPhaseStart,
  kPhaseEnd,
  kCurtailment,
  kDegradation,
  kShardCommit,
  kCheckpoint,
};

/// Stable wire name ("job_admitted", "phase_start", ...). These strings are
/// the schema contract with scripts/validate_events.py and obs_tail.py.
const char* event_kind_name(EventKind kind) noexcept;

/// One event, all fields optional except the kind. string_views are
/// borrowed for the duration of the emit() call only.
struct Event {
  EventKind kind = EventKind::kPhaseStart;
  std::uint64_t job_id = 0;    // serve job id; 0 (batch) omitted
  std::uint64_t trace_id = 0;  // trace correlation id; 0 omitted
  std::string_view phase;      // pipeline phase name; empty omitted
  std::uint64_t value = 0;     // kind-specific scalar; 0 omitted
  std::string_view detail;     // free-form annotation; empty omitted
};

class EventLog {
 public:
  EventLog() = default;
  ~EventLog();
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Opens `path` for append. A log can also run file-less with only a
  /// flight recorder attached (the daemon's black-box-only mode).
  Status open(const std::string& path) NG_EXCLUDES(mutex_);

  /// Mirrors every subsequent line into `recorder`'s ring. Call before
  /// sharing the log across threads; the pointer is borrowed.
  void attach_flight_recorder(FlightRecorder* recorder) noexcept {
    recorder_ = recorder;
  }

  /// True when emit() goes anywhere (file or ring).
  bool active() const noexcept {
    // relaxed: fast-path hint only; emit() revalidates under the mutex.
    return has_file_.load(std::memory_order_relaxed) || recorder_ != nullptr;
  }

  /// Formats and writes one JSONL line. Thread-safe; the line is built
  /// outside the lock, the ring is lock-free, only the fwrite serializes.
  void emit(const Event& event) NG_EXCLUDES(mutex_);

  std::uint64_t emitted() const noexcept {
    // relaxed: statistics counter read.
    return emitted_.load(std::memory_order_relaxed);
  }

 private:
  mutable Mutex mutex_;
  std::FILE* file_ NG_GUARDED_BY(mutex_) = nullptr;
  std::atomic<bool> has_file_{false};
  FlightRecorder* recorder_ = nullptr;
  std::atomic<std::uint64_t> emitted_{0};
};

/// The one-branch guarded emit used at instrumentation sites: stamps the
/// context's job/trace ids onto the event and forwards to the sink (or does
/// nothing when no sink is attached).
inline void emit_event(const ObsContext& obs, EventKind kind,
                       std::string_view phase, std::uint64_t value = 0,
                       std::string_view detail = {}) {
  if (obs.events == nullptr) return;
  obs.events->emit({kind, obs.job_id, obs.trace_id, phase, value, detail});
}

/// RAII phase bracket: kPhaseStart at construction, kPhaseEnd with
/// value = elapsed µs at destruction. Null-sink cost is two branches.
class PhaseEventScope {
 public:
  PhaseEventScope(const ObsContext& obs, std::string_view phase) noexcept;
  ~PhaseEventScope();
  PhaseEventScope(const PhaseEventScope&) = delete;
  PhaseEventScope& operator=(const PhaseEventScope&) = delete;

 private:
  const ObsContext& obs_;
  std::string_view phase_;
  std::uint64_t begin_us_ = 0;
};

}  // namespace nullgraph::obs
