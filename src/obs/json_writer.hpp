#pragma once
// Minimal streaming JSON writer for the telemetry subsystem. Keys are
// emitted in call order (the run-report schema promises a stable key
// order, so the writer must never reorder), output is compact (no
// whitespace), strings are escaped per RFC 8259, and non-finite doubles
// degrade to null because JSON has no NaN/Inf.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace nullgraph::obs {

class JsonWriter {
 public:
  JsonWriter& begin_object() {
    value_prefix();
    out_ += '{';
    stack_.push_back({true, 0});
    return *this;
  }
  JsonWriter& end_object() {
    out_ += '}';
    stack_.pop_back();
    return *this;
  }
  JsonWriter& begin_array() {
    value_prefix();
    out_ += '[';
    stack_.push_back({false, 0});
    return *this;
  }
  JsonWriter& end_array() {
    out_ += ']';
    stack_.pop_back();
    return *this;
  }

  JsonWriter& key(std::string_view name) {
    if (stack_.back().entries++ > 0) out_ += ',';
    append_string(name);
    out_ += ':';
    return *this;
  }

  JsonWriter& value(std::string_view text) {
    value_prefix();
    append_string(text);
    return *this;
  }
  JsonWriter& value(const char* text) {
    return value(std::string_view(text));
  }
  JsonWriter& value(bool flag) {
    value_prefix();
    out_ += flag ? "true" : "false";
    return *this;
  }
  /// One template for every integer type: int/std::size_t/std::uint64_t
  /// overlap across platforms, so distinct overloads would collide.
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  JsonWriter& value(T number) {
    value_prefix();
    if constexpr (std::is_signed_v<T>)
      out_ += std::to_string(static_cast<long long>(number));
    else
      out_ += std::to_string(static_cast<unsigned long long>(number));
    return *this;
  }
  JsonWriter& value(double number) {
    value_prefix();
    if (!std::isfinite(number)) {
      out_ += "null";
      return *this;
    }
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%.12g", number);
    out_ += buffer;
    return *this;
  }

  template <typename T>
  JsonWriter& kv(std::string_view name, T&& v) {
    key(name);
    return value(std::forward<T>(v));
  }

  const std::string& str() const& { return out_; }
  std::string str() && { return std::move(out_); }

 private:
  struct Level {
    bool object;
    std::size_t entries;
  };

  /// Comma handling for array elements; object values follow their key.
  void value_prefix() {
    if (!stack_.empty() && !stack_.back().object)
      if (stack_.back().entries++ > 0) out_ += ',';
  }

  void append_string(std::string_view text) {
    out_ += '"';
    for (const char c : text) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\r': out_ += "\\r"; break;
        case '\t': out_ += "\\t"; break;
        case '\b': out_ += "\\b"; break;
        case '\f': out_ += "\\f"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buffer[8];
            std::snprintf(buffer, sizeof buffer, "\\u%04x",
                          static_cast<unsigned>(c));
            out_ += buffer;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<Level> stack_;
};

}  // namespace nullgraph::obs
