#pragma once
// ObsContext: the two-pointer telemetry handle threaded through configs and
// exec::ParallelContext. Both pointers are borrowed (the CLI or test owns
// the registry/sink) and both default to null, which is the documented
// "no sink attached" fast path: every instrumentation site guards on the
// pointer and pays one predictable branch.
//
// Forward declarations only — code that merely carries an ObsContext does
// not pull in the metrics/trace headers; instrumentation sites include
// obs/metrics.hpp and obs/trace.hpp themselves.

namespace nullgraph::obs {

class MetricsRegistry;
class TraceSink;

struct ObsContext {
  MetricsRegistry* metrics = nullptr;
  TraceSink* trace = nullptr;

  bool active() const noexcept {
    return metrics != nullptr || trace != nullptr;
  }
};

}  // namespace nullgraph::obs
