#pragma once
// ObsContext: the borrowed-pointer telemetry handle threaded through configs
// and exec::ParallelContext. All pointers are borrowed (the CLI, daemon, or
// test owns the registry/sink/log) and all default to null, which is the
// documented "no sink attached" fast path: every instrumentation site guards
// on the pointer and pays one predictable branch.
//
// job_id / trace_id are plain correlation values (not pointers): they stamp
// every structured event and exported trace span so one serve daemon's
// interleaved jobs can be teased apart downstream. Zero means "batch run /
// no trace requested" and is omitted from serialized output.
//
// Forward declarations only — code that merely carries an ObsContext does
// not pull in the metrics/trace/event headers; instrumentation sites include
// obs/metrics.hpp, obs/trace.hpp, or obs/event_log.hpp themselves.

#include <cstdint>

namespace nullgraph::obs {

class MetricsRegistry;
class TraceSink;
class EventLog;

struct ObsContext {
  MetricsRegistry* metrics = nullptr;
  TraceSink* trace = nullptr;
  EventLog* events = nullptr;
  std::uint64_t job_id = 0;    // serve job id; 0 = batch run
  std::uint64_t trace_id = 0;  // client-chosen trace correlation id; 0 = none

  bool active() const noexcept {
    return metrics != nullptr || trace != nullptr || events != nullptr;
  }
};

}  // namespace nullgraph::obs
