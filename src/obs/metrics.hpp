#pragma once
// MetricsRegistry: named counters, gauges, and fixed-bucket histograms for
// the telemetry subsystem.
//
// Design constraints (ISSUE 4 / DESIGN.md §7):
//   - lock-cheap recording: counters and histogram buckets are striped
//     over cache-line-padded atomic slots indexed by a per-thread stripe
//     id, so concurrent add()/record() calls from the swap phase's worker
//     threads almost never touch the same cache line;
//   - registration (name -> handle) takes a mutex, but hot paths acquire
//     their handles ONCE before entering a loop, so the mutex is off the
//     critical path;
//   - aggregation happens only at snapshot() time, which merges the
//     stripes and sorts instruments by name for a stable report order;
//   - when no registry is attached the instrumentation sites hold null
//     handles and pay one branch — the <3% bench_obs_overhead bar.

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/thread_annotations.hpp"

namespace nullgraph::obs {

/// Stripe count for per-thread accumulation; power of two.
inline constexpr std::size_t kMetricStripes = 16;

/// Calling thread's stripe index, assigned round-robin on first use and
/// stable for the thread's lifetime. Shared by every instrument.
std::size_t thread_stripe() noexcept;

namespace detail {
struct alignas(64) PaddedU64 {
  std::atomic<std::uint64_t> value{0};
};
struct alignas(64) PaddedI64 {
  std::atomic<std::int64_t> value{0};
};
}  // namespace detail

/// Monotonic counter. add() is wait-free on a striped relaxed atomic.
/// Construct through MetricsRegistry::counter (the public constructor
/// exists for the registry's container and direct use in tests).
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  void add(std::uint64_t n = 1) noexcept {
    // relaxed: striped statistics counter; only the eventual sum matters
    // and no reader infers ordering of other memory from it.
    slots_[thread_stripe() & (kMetricStripes - 1)].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  /// Merged total over all stripes.
  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    // relaxed: snapshot merge; concurrent adds may or may not be included,
    // which is inherent to reading a live counter.
    for (const auto& slot : slots_)
      total += slot.value.load(std::memory_order_relaxed);
    return total;
  }

  const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
  std::array<detail::PaddedU64, kMetricStripes> slots_;
};

/// Last-writer-wins gauge for point-in-time values (thread counts, table
/// capacities, achieved mixing ratios scaled by the caller).
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  void set(std::int64_t v) noexcept {
    // relaxed: last-writer-wins point-in-time value, no dependent data.
    value_.store(v, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    // relaxed: see set().
    return value_.load(std::memory_order_relaxed);
  }
  const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
  std::atomic<std::int64_t> value_{0};
};

/// Merged view of one histogram at snapshot time. Bucket i counts values v
/// with lower <= v <= edges[i] (and v > edges[i-1] for i > 0); values
/// below `lower` land in `underflow`, values above edges.back() in
/// `overflow`.
struct HistogramSnapshot {
  std::string name;
  std::int64_t lower = 0;
  std::vector<std::int64_t> edges;
  std::vector<std::uint64_t> counts;  // one per edge
  std::uint64_t underflow = 0;
  std::uint64_t overflow = 0;
  std::uint64_t count = 0;   // total observations including under/overflow
  std::int64_t sum = 0;      // sum of observed values
};

/// Fixed-bucket histogram over int64 values. record() is wait-free: one
/// binary search over the (small, immutable) edge list plus two striped
/// relaxed fetch_adds.
class Histogram {
 public:
  Histogram(std::string name, std::int64_t lower,
            std::vector<std::int64_t> edges);

  void record(std::int64_t v) noexcept;

  const std::string& name() const noexcept { return name_; }
  HistogramSnapshot snapshot() const;

 private:
  std::string name_;
  std::int64_t lower_ = 0;
  std::vector<std::int64_t> edges_;   // ascending inclusive upper bounds
  std::size_t row_ = 0;               // edges + underflow + overflow
  std::unique_ptr<detail::PaddedU64[]> counts_;  // kMetricStripes * row_
  std::array<detail::PaddedI64, kMetricStripes> sums_;
};

struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};
struct GaugeSnapshot {
  std::string name;
  std::int64_t value = 0;
};

/// Point-in-time merged view of a registry, sorted by instrument name so
/// serialized reports have a stable order.
struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  bool empty() const noexcept {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

/// Owner of all instruments for one run. Handles returned by
/// counter()/gauge()/histogram() are stable for the registry's lifetime;
/// re-requesting a name returns the existing instrument (a histogram's
/// first registration fixes its buckets).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* counter(std::string_view name) NG_EXCLUDES(mutex_);
  Gauge* gauge(std::string_view name) NG_EXCLUDES(mutex_);
  Histogram* histogram(std::string_view name, std::int64_t lower,
                       std::vector<std::int64_t> edges) NG_EXCLUDES(mutex_);

  MetricsSnapshot snapshot() const NG_EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_;
  // deque: stable element addresses. The containers are guarded (insertion
  // races with registration); the instruments' own counters are striped
  // atomics and safe to hit through handles without the mutex.
  std::deque<Counter> counters_ NG_GUARDED_BY(mutex_);
  std::deque<Gauge> gauges_ NG_GUARDED_BY(mutex_);
  std::deque<Histogram> histograms_ NG_GUARDED_BY(mutex_);
};

}  // namespace nullgraph::obs
