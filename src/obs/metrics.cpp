#include "obs/metrics.hpp"

#include <algorithm>
#include <cassert>

namespace nullgraph::obs {

std::size_t thread_stripe() noexcept {
  static std::atomic<std::size_t> next{0};
  // relaxed: round-robin stripe ticket; only uniqueness matters, and
  // fetch_add is atomic at any ordering.
  thread_local const std::size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed);
  return stripe;
}

Histogram::Histogram(std::string name, std::int64_t lower,
                     std::vector<std::int64_t> edges)
    : name_(std::move(name)), lower_(lower), edges_(std::move(edges)) {
  assert(std::is_sorted(edges_.begin(), edges_.end()) &&
         "histogram edges must be ascending");
  row_ = edges_.size() + 2;  // [underflow][buckets...][overflow]
  counts_ = std::make_unique<detail::PaddedU64[]>(kMetricStripes * row_);
}

void Histogram::record(std::int64_t v) noexcept {
  std::size_t bucket;
  if (v < lower_) {
    bucket = 0;
  } else {
    const auto it = std::lower_bound(edges_.begin(), edges_.end(), v);
    bucket = it == edges_.end()
                 ? row_ - 1
                 : 1 + static_cast<std::size_t>(it - edges_.begin());
  }
  const std::size_t stripe = thread_stripe() & (kMetricStripes - 1);
  // relaxed: striped statistics accumulation (same contract as
  // Counter::add — eventual sums only, no ordering consumers).
  counts_[stripe * row_ + bucket].value.fetch_add(1,
                                                  std::memory_order_relaxed);
  sums_[stripe].value.fetch_add(v, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot out;
  out.name = name_;
  out.lower = lower_;
  out.edges = edges_;
  out.counts.assign(edges_.size(), 0);
  // relaxed: snapshot merge over live stripes; a racing record() lands in
  // this snapshot or the next, both correct.
  for (std::size_t stripe = 0; stripe < kMetricStripes; ++stripe) {
    const std::size_t base = stripe * row_;
    out.underflow += counts_[base].value.load(std::memory_order_relaxed);
    for (std::size_t b = 0; b < edges_.size(); ++b)
      out.counts[b] +=
          counts_[base + 1 + b].value.load(std::memory_order_relaxed);
    out.overflow +=
        counts_[base + row_ - 1].value.load(std::memory_order_relaxed);
    out.sum += sums_[stripe].value.load(std::memory_order_relaxed);
  }
  out.count = out.underflow + out.overflow;
  for (const std::uint64_t c : out.counts) out.count += c;
  return out;
}

Counter* MetricsRegistry::counter(std::string_view name) {
  MutexLock lock(mutex_);
  for (Counter& c : counters_)
    if (c.name() == name) return &c;
  return &counters_.emplace_back(std::string(name));
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  MutexLock lock(mutex_);
  for (Gauge& g : gauges_)
    if (g.name() == name) return &g;
  return &gauges_.emplace_back(std::string(name));
}

Histogram* MetricsRegistry::histogram(std::string_view name,
                                      std::int64_t lower,
                                      std::vector<std::int64_t> edges) {
  MutexLock lock(mutex_);
  for (Histogram& h : histograms_)
    if (h.name() == name) return &h;  // first registration fixes buckets
  return &histograms_.emplace_back(std::string(name), lower,
                                   std::move(edges));
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  {
    MutexLock lock(mutex_);
    for (const Counter& c : counters_)
      out.counters.push_back({c.name(), c.value()});
    for (const Gauge& g : gauges_)
      out.gauges.push_back({g.name(), g.value()});
    for (const Histogram& h : histograms_)
      out.histograms.push_back(h.snapshot());
  }
  std::sort(out.counters.begin(), out.counters.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  std::sort(out.gauges.begin(), out.gauges.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  std::sort(out.histograms.begin(), out.histograms.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  return out;
}

}  // namespace nullgraph::obs
