#pragma once
// Prometheus text-format exposition (version 0.0.4) over MetricsSnapshot.
//
// The registry's instrument names use dotted paths ("serve.queue_depth");
// render_prometheus sanitizes them into the metric-name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]* by mapping every other byte to '_' and prefixing
// "nullgraph_", so "serve.queue_depth" exposes as
// nullgraph_serve_queue_depth. Histograms render in the cumulative
// le-labeled bucket form Prometheus expects: each bucket counts ALL
// observations <= its edge (the registry's underflow bucket folds into the
// first edge, overflow only into +Inf), plus _sum and _count series.
//
// Two consumers share the renderer: the daemon's `metrics` control verb
// (body wrapped in the JSON reply envelope — control frames are
// contractually JSON) and batch runs' --metrics-out periodic snapshots,
// written by MetricsExporter below.

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "obs/metrics.hpp"
#include "robustness/status.hpp"

namespace nullgraph::obs {

/// "serve.queue_depth" -> "nullgraph_serve_queue_depth".
std::string prometheus_name(std::string_view name);

/// Full exposition: counters, gauges, histograms, each with a # TYPE line,
/// instruments in snapshot (name-sorted) order. Empty snapshot -> "".
std::string render_prometheus(const MetricsSnapshot& snapshot);

/// Background writer for --metrics-out: every `every_ms` it renders the
/// registry and atomically replaces `path` (write temp, flush, rename), so
/// a scraper or `watch cat` never sees a torn exposition. stop_and_flush()
/// joins the thread and writes one final snapshot — callers get an
/// end-of-run exposition even when the run outpaces the period.
class MetricsExporter {
 public:
  MetricsExporter() = default;
  ~MetricsExporter() { stop_and_flush(); }
  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;

  /// Spawns the writer thread. `registry` must outlive the exporter.
  Status start(const MetricsRegistry* registry, std::string path,
               std::uint64_t every_ms);

  /// Idempotent; safe to call without start().
  void stop_and_flush();

  /// Snapshots written so far (including the final flush).
  std::uint64_t snapshots_written() const noexcept {
    // relaxed: statistics counter read, no ordering implied.
    return written_.load(std::memory_order_relaxed);
  }

 private:
  Status write_snapshot() const;

  const MetricsRegistry* registry_ = nullptr;
  std::string path_;
  std::uint64_t every_ms_ = 0;
  std::thread worker_;
  std::atomic<bool> stop_{false};
  mutable std::atomic<std::uint64_t> written_{0};
};

}  // namespace nullgraph::obs
