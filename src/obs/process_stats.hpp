#pragma once
// Process resident-memory sampling, the telemetry half of out-of-core
// mode's acceptance story: a spilled run PROVES its memory stayed bounded
// by publishing the kernel's own numbers (VmRSS / VmHWM from
// /proc/self/status) as gauges next to the spill counters, instead of
// asking the reader to trust the footprint model.
//
// Linux-only by data source; on platforms without /proc the sample is
// invalid() and the gauges are simply not published (callers never branch
// on platform).

#include <cstdint>

namespace nullgraph::obs {

class MetricsRegistry;

struct ProcessMemory {
  std::int64_t resident_kb = -1;       // VmRSS: current resident set
  std::int64_t peak_resident_kb = -1;  // VmHWM: lifetime high-water mark

  [[nodiscard]] bool valid() const noexcept {
    return resident_kb >= 0 && peak_resident_kb >= 0;
  }
};

/// One read of /proc/self/status; invalid() when unavailable.
ProcessMemory sample_process_memory();

/// Samples and publishes gauges "mem.resident_kb" / "mem.peak_resident_kb".
/// No-op on a null registry or when sampling is unavailable.
void record_process_memory(MetricsRegistry* metrics);

}  // namespace nullgraph::obs
