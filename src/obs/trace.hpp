#pragma once
// Chrome-trace-event emission (the JSON format Perfetto and
// chrome://tracing load natively). A TraceSink buffers events in memory —
// spans are per phase / per swap iteration / per exec loop, never per
// element, so a mutex-guarded vector is far off the hot path — and
// serializes {"traceEvents":[...]} on demand.
//
// TraceSpan is the RAII recording primitive: construction stamps the start
// time, destruction emits one complete ("ph":"X") event. A null sink makes
// both constructor and destructor a branch and nothing else, which is what
// keeps the instrumentation compiled-in but near-zero-cost when --trace-out
// is absent.

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "robustness/status.hpp"
#include "util/thread_annotations.hpp"

namespace nullgraph::obs {

/// Absolute monotonic microseconds (CLOCK_MONOTONIC's epoch — boot time on
/// Linux). The epoch is machine-wide, so values taken in different processes
/// on the same host are directly comparable; this is what lets a client and
/// the serve daemon stamp spans of ONE merged trace without touching the
/// (lint-banned, non-deterministic) wall clock.
inline std::uint64_t monotonic_us() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One exported trace event with an ABSOLUTE monotonic timestamp (see
/// monotonic_us). This is the cross-process exchange form: the daemon ships
/// these in the result frame and the client merges them with its own spans.
struct TraceEventView {
  std::string name;
  char phase = 'X';          // 'X' complete, 'i' instant
  std::uint64_t ts_us = 0;   // absolute monotonic µs
  std::uint64_t dur_us = 0;  // 'X' only
  int tid = 0;
};

class TraceSink {
 public:
  TraceSink() : start_(std::chrono::steady_clock::now()) {}
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Microseconds since sink construction (the trace's time origin).
  std::uint64_t now_us() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

  /// Absolute monotonic µs of sink construction (the value now_us() is
  /// relative to).
  std::uint64_t origin_us() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            start_.time_since_epoch())
            .count());
  }

  /// One complete ("X") event spanning [begin_us, now]. Thread-safe.
  void complete(std::string name, std::uint64_t begin_us) NG_EXCLUDES(mutex_);

  /// One complete event over an absolute monotonic interval — for spans
  /// that begin before the sink exists (a serve job's queue wait starts at
  /// admission, but the per-job sink is built at dequeue). Timestamps
  /// before the sink's origin clamp to 0. Thread-safe.
  void complete_between(std::string name, std::uint64_t begin_abs_us,
                        std::uint64_t end_abs_us) NG_EXCLUDES(mutex_);

  /// One instant ("i") event at the current time. Thread-safe.
  void instant(std::string name) NG_EXCLUDES(mutex_);

  std::size_t event_count() const NG_EXCLUDES(mutex_);

  /// All buffered events rebased to ABSOLUTE monotonic µs, in emission
  /// order — the wire/export form (see TraceEventView). Thread-safe.
  std::vector<TraceEventView> export_events() const NG_EXCLUDES(mutex_);

  /// {"traceEvents":[...],"displayTimeUnit":"ms"} — Perfetto-loadable.
  std::string to_json() const NG_EXCLUDES(mutex_);

  /// Serializes to `path`; kIoError on failure.
  Status write(const std::string& path) const;

 private:
  struct Event {
    std::string name;
    char phase;         // 'X' complete, 'i' instant
    std::uint64_t ts;   // µs since sink start
    std::uint64_t dur;  // 'X' only
    int tid;
  };

  mutable Mutex mutex_;
  std::vector<Event> events_ NG_GUARDED_BY(mutex_);
  std::chrono::steady_clock::time_point start_;
};

/// RAII span: emits one complete event over its lifetime. Movable-from is
/// deliberately not supported; spans live on the stack of the code they
/// measure.
class TraceSpan {
 public:
  TraceSpan(TraceSink* sink, const char* name) noexcept
      : sink_(sink), name_(name), begin_us_(sink ? sink->now_us() : 0) {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() {
    if (sink_ != nullptr) sink_->complete(name_, begin_us_);
  }

 private:
  TraceSink* sink_;
  const char* name_;
  std::uint64_t begin_us_;
};

}  // namespace nullgraph::obs
