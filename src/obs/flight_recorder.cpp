#include "obs/flight_recorder.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

namespace nullgraph::obs {

void FlightRecorder::record(std::string_view line) noexcept {
  // relaxed: the ticket only orders THIS slot's ownership; the per-slot
  // seq release below publishes the line bytes.
  const std::uint64_t ticket =
      next_.fetch_add(1, std::memory_order_relaxed) + 1;
  Slot& slot = slots_[(ticket - 1) % kSlots];
  // Claim: readers seeing 0 (or a stale ticket) skip the slot.
  slot.seq.store(0, std::memory_order_relaxed);
  std::size_t n = line.size();
  if (n > kLineBytes - 1) n = kLineBytes - 1;
  std::memcpy(slot.line, line.data(), n);
  if (n == 0 || slot.line[n - 1] != '\n') slot.line[n++] = '\n';
  slot.len = static_cast<std::uint32_t>(n);
  // release: publishes line/len to any dump() that acquires this ticket.
  slot.seq.store(ticket, std::memory_order_release);
}

// analyzer: signal-safe-root — the semantic analyzer (scripts/analyze/,
// signal-safety rule) walks the call graph from here and proves the whole
// cone async-signal-safe: fixed buffers, no allocation, no locks, only
// open/write/fsync/close/rename.
bool FlightRecorder::dump(const char* path) const noexcept {
  char tmp[512];
  const std::size_t path_len = std::strlen(path);
  if (path_len + 5 >= sizeof tmp) return false;
  std::memcpy(tmp, path, path_len);
  std::memcpy(tmp + path_len, ".tmp", 5);

  const int fd = ::open(tmp, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;

  // relaxed: a handler may interrupt a record() mid-copy; the per-slot
  // acquire below decides per line whether the bytes are trustworthy.
  const std::uint64_t issued = next_.load(std::memory_order_relaxed);
  const std::uint64_t first = issued > kSlots ? issued - kSlots + 1 : 1;
  bool ok = true;
  for (std::uint64_t ticket = first; ticket <= issued && ok; ++ticket) {
    const Slot& slot = slots_[(ticket - 1) % kSlots];
    // acquire: pairs with record()'s release; an exact ticket match means
    // the copy for THIS generation finished and was not yet lapped.
    if (slot.seq.load(std::memory_order_acquire) != ticket) continue;
    std::size_t off = 0;
    while (off < slot.len) {
      const ::ssize_t w = ::write(fd, slot.line + off, slot.len - off);
      if (w <= 0) { ok = false; break; }
      off += static_cast<std::size_t>(w);
    }
  }
  if (::fsync(fd) != 0) ok = false;
  if (::close(fd) != 0) ok = false;
  if (ok && ::rename(tmp, path) != 0) ok = false;
  return ok;
}

Status FlightRecorder::dump_to(const std::string& path) const {
  if (!dump(path.c_str()))
    return Status(StatusCode::kIoError,
                  "flight recorder dump to " + path + " failed");
  return Status::Ok();
}

}  // namespace nullgraph::obs
