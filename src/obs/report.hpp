#pragma once
// Versioned machine-readable run reports (--report-json). One JSON
// document per run, with a STABLE top-level key order (golden-tested):
//
//   report_version, tool, command, config, phase_seconds, exec_phases,
//   checks, curtailments, recovery, faults_injected, swap_chain?, lfr?,
//   metrics, degradations, spill, model?
//
// The schema is append-only: new keys may be added, existing keys keep
// their meaning, and report_version bumps on any breaking change so
// scripts/compare_reports.py can refuse mismatched pairs.
//
// This module sits ABOVE core and lfr (it serializes their result types);
// the rest of obs (metrics/trace/json) sits below everything. That split
// is why obs ships as two CMake targets: nullgraph_obs and
// nullgraph_report.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "robustness/status.hpp"

namespace nullgraph {
struct GenerateResult;
struct LfrGraph;
}  // namespace nullgraph

namespace nullgraph::obs {

inline constexpr int kReportVersion = 1;

/// Sliding-window length for the acceptance-rate time series (matches the
/// stall watchdog's default window so the two diagnostics line up).
inline constexpr std::size_t kAcceptanceWindow = 8;

/// The report's `model` block: which registered backend produced the run
/// and the sampling space it declared (model/driver.cpp fills one per
/// registry-driven run). Plain strings so obs stays below src/model/ in
/// the layer DAG.
struct ModelBlock {
  std::string backend;
  std::string space;      // "simple" | "loopy" | "multi" | "loopy-multi"
  bool self_loops = false;
  bool multi_edges = false;
  std::string labeling;   // "stub" | "vertex"
  std::vector<std::string> capabilities;
  /// True when the space is structurally guaranteed by the pipeline; false
  /// means the driver censused the output (verdict in `checks`).
  bool space_verified = false;
};

struct RunReportInputs {
  std::string command;             // "generate", "shuffle", "resume", "lfr"
  std::vector<std::string> argv;   // config fingerprint: the full CLI line
  std::uint64_t seed = 0;
  int threads = 0;
  std::size_t swap_iterations_requested = 0;
  /// Exactly one of `result` / `lfr` is set for CLI runs; both may be null
  /// for a config-only report (used by the golden schema test).
  const nullgraph::GenerateResult* result = nullptr;
  const nullgraph::LfrGraph* lfr = nullptr;
  const MetricsRegistry* metrics = nullptr;
  /// Registry-driven runs only; null keeps the `model` key out entirely.
  const ModelBlock* model = nullptr;
};

/// The report as a compact JSON string.
std::string render_run_report(const RunReportInputs& inputs);

/// Renders and writes to `path`; kIoError on failure.
Status write_run_report(const std::string& path,
                        const RunReportInputs& inputs);

/// Windowed acceptance series: element i is committed/attempted over the
/// trailing window of (at most) `window` iterations ending at i. Exposed
/// for tests.
std::vector<double> windowed_acceptance(
    const std::vector<std::size_t>& attempted,
    const std::vector<std::size_t>& swapped, std::size_t window);

}  // namespace nullgraph::obs
