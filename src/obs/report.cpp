#include "obs/report.hpp"

#include <algorithm>
#include <cstdio>

#include "core/null_model.hpp"
#include "io/graph_io.hpp"
#include "lfr/lfr.hpp"
#include "obs/json_writer.hpp"

namespace nullgraph::obs {
namespace {

void write_exec_phase(JsonWriter& json, const exec::PhaseTiming& row) {
  json.begin_object();
  json.kv("phase", row.phase);
  json.kv("wall_ms", row.wall_ms);
  json.kv("loops", row.loops);
  json.kv("max_loop_wall_ms", row.max_loop_wall_ms);
  json.kv("chunks", row.chunks);
  json.kv("chunks_skipped", row.chunks_skipped);
  json.kv("threads", row.threads);
  json.kv("chunk_ms_min", row.chunk_ms_min);
  json.kv("chunk_ms_mean", row.chunk_ms_mean());
  json.kv("chunk_ms_max", row.chunk_ms_max);
  json.kv("chunk_samples", row.chunk_samples);
  json.kv("load_imbalance", row.load_imbalance());
  json.end_object();
}

void write_series(JsonWriter& json, const char* key,
                  const std::vector<std::size_t>& values) {
  json.key(key).begin_array();
  for (const std::size_t v : values) json.value(v);
  json.end_array();
}

void write_swap_chain(JsonWriter& json, const RunReportInputs& inputs,
                      const SwapStats& stats) {
  const auto& its = stats.iterations;
  std::vector<std::size_t> attempted, swapped, rejected_existing,
      rejected_loop, input_self_loops, input_multi_edges;
  attempted.reserve(its.size());
  for (const SwapIterationStats& it : its) {
    attempted.push_back(it.attempted);
    swapped.push_back(it.swapped);
    rejected_existing.push_back(it.rejected_existing);
    rejected_loop.push_back(it.rejected_loop);
    input_self_loops.push_back(it.input_self_loops);
    input_multi_edges.push_back(it.input_multi_edges);
  }

  json.key("swap_chain").begin_object();
  json.kv("iterations_requested", inputs.swap_iterations_requested);
  json.kv("iterations_run", its.size());
  json.kv("total_swapped", stats.total_swapped());
  json.kv("overall_acceptance", stats.acceptance());
  json.kv("stop_reason", status_code_name(stats.stop_reason));
  json.kv("edges_ever_swapped", stats.edges_ever_swapped);
  json.key("acceptance").begin_array();
  for (std::size_t i = 0; i < its.size(); ++i)
    json.value(attempted[i] == 0 ? 0.0
                                 : static_cast<double>(swapped[i]) /
                                       static_cast<double>(attempted[i]));
  json.end_array();
  json.kv("acceptance_window", kAcceptanceWindow);
  const std::vector<double> windowed =
      windowed_acceptance(attempted, swapped, kAcceptanceWindow);
  json.key("windowed_acceptance").begin_array();
  for (const double v : windowed) json.value(v);
  json.end_array();
  write_series(json, "attempted", attempted);
  write_series(json, "swapped", swapped);
  write_series(json, "rejected_existing", rejected_existing);
  write_series(json, "rejected_loop", rejected_loop);
  write_series(json, "input_self_loops", input_self_loops);
  write_series(json, "input_multi_edges", input_multi_edges);
  json.end_object();
}

void write_metrics(JsonWriter& json, const MetricsSnapshot& snap) {
  json.key("metrics").begin_object();
  json.key("counters").begin_array();
  for (const CounterSnapshot& c : snap.counters) {
    json.begin_object();
    json.kv("name", c.name);
    json.kv("value", c.value);
    json.end_object();
  }
  json.end_array();
  json.key("gauges").begin_array();
  for (const GaugeSnapshot& g : snap.gauges) {
    json.begin_object();
    json.kv("name", g.name);
    json.kv("value", g.value);
    json.end_object();
  }
  json.end_array();
  json.key("histograms").begin_array();
  for (const HistogramSnapshot& h : snap.histograms) {
    json.begin_object();
    json.kv("name", h.name);
    json.kv("lower", h.lower);
    json.key("edges").begin_array();
    for (const std::int64_t e : h.edges) json.value(e);
    json.end_array();
    json.key("counts").begin_array();
    for (const std::uint64_t c : h.counts) json.value(c);
    json.end_array();
    json.kv("underflow", h.underflow);
    json.kv("overflow", h.overflow);
    json.kv("count", h.count);
    json.kv("sum", h.sum);
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

}  // namespace

std::vector<double> windowed_acceptance(
    const std::vector<std::size_t>& attempted,
    const std::vector<std::size_t>& swapped, std::size_t window) {
  const std::size_t n = std::min(attempted.size(), swapped.size());
  std::vector<double> out(n, 0.0);
  if (window == 0) window = 1;
  std::size_t win_attempted = 0, win_swapped = 0;
  for (std::size_t i = 0; i < n; ++i) {
    win_attempted += attempted[i];
    win_swapped += swapped[i];
    if (i >= window) {
      win_attempted -= attempted[i - window];
      win_swapped -= swapped[i - window];
    }
    out[i] = win_attempted == 0 ? 0.0
                                : static_cast<double>(win_swapped) /
                                      static_cast<double>(win_attempted);
  }
  return out;
}

std::string render_run_report(const RunReportInputs& inputs) {
  JsonWriter json;
  json.begin_object();
  // Top-level key ORDER is part of the schema (golden-tested); append new
  // keys at the end of their object, never reorder.
  json.kv("report_version", kReportVersion);
  json.kv("tool", "nullgraph");
  json.kv("command", inputs.command);

  json.key("config").begin_object();
  json.kv("seed", inputs.seed);
  json.kv("threads", inputs.threads);
  json.kv("swap_iterations", inputs.swap_iterations_requested);
  json.key("argv").begin_array();
  for (const std::string& arg : inputs.argv) json.value(arg);
  json.end_array();
  json.end_object();

  json.key("phase_seconds").begin_object();
  if (inputs.result != nullptr)
    for (const auto& [phase, seconds] : inputs.result->timing.phases())
      json.kv(phase, seconds);
  json.end_object();

  json.key("exec_phases").begin_array();
  if (inputs.result != nullptr)
    for (const exec::PhaseTiming& row : inputs.result->report.phase_timings)
      write_exec_phase(json, row);
  json.end_array();

  json.key("checks").begin_array();
  if (inputs.result != nullptr) {
    for (const PhaseCheck& check : inputs.result->report.checks) {
      json.begin_object();
      json.kv("phase", check.phase);
      json.kv("code", status_code_name(check.status.code()));
      json.kv("message", check.status.message());
      json.kv("repaired", check.repaired);
      json.kv("holds", check.holds());
      json.end_object();
    }
  }
  json.end_array();

  json.key("curtailments").begin_array();
  if (inputs.result != nullptr) {
    for (const Curtailment& cut : inputs.result->report.curtailments) {
      json.begin_object();
      json.kv("phase", cut.phase);
      json.kv("reason", status_code_name(cut.reason));
      json.kv("completed", cut.completed);
      json.kv("requested", cut.requested);
      json.kv("acceptance", cut.acceptance);
      json.end_object();
    }
  }
  json.end_array();

  json.key("recovery").begin_object();
  {
    const PipelineReport* rep =
        inputs.result != nullptr ? &inputs.result->report : nullptr;
    json.kv("retries_used", rep ? rep->retries_used : 0);
    json.key("repair").begin_object();
    const RepairStats repair = rep ? rep->repair : RepairStats{};
    json.kv("loops_erased", repair.loops_erased);
    json.kv("duplicates_erased", repair.duplicates_erased);
    json.kv("surplus_edges_removed", repair.surplus_edges_removed);
    json.kv("edges_added", repair.edges_added);
    json.kv("rewired_patches", repair.rewired_patches);
    json.kv("residual_deficit", repair.residual_deficit);
    json.end_object();
    json.kv("probability_entries_sanitized",
            rep ? rep->probability_entries_sanitized : 0);
  }
  json.end_object();

  json.key("faults_injected").begin_object();
  {
    const EdgeFaultStats faults = inputs.result != nullptr
                                      ? inputs.result->report.faults_injected
                                      : EdgeFaultStats{};
    json.kv("edges_dropped", faults.dropped);
    json.kv("edges_duplicated", faults.duplicated);
    json.kv("self_loops_added", faults.loops_added);
    json.kv("prob_entries_corrupted",
            inputs.result != nullptr
                ? inputs.result->report.prob_entries_corrupted
                : 0);
  }
  json.end_object();

  if (inputs.result != nullptr)
    write_swap_chain(json, inputs, inputs.result->swap_stats);

  if (inputs.lfr != nullptr) {
    json.key("lfr").begin_object();
    // Registry-driven runs move the LFR edges into the shared
    // GenerateResult; fall back to it when the LfrGraph was drained.
    json.kv("edges", inputs.lfr->edges.empty() && inputs.result != nullptr
                         ? inputs.result->edges.size()
                         : inputs.lfr->edges.size());
    json.kv("num_communities", inputs.lfr->num_communities);
    json.kv("communities_completed", inputs.lfr->communities_completed);
    json.kv("achieved_mu", inputs.lfr->achieved_mu);
    json.kv("merged_duplicates", inputs.lfr->merged_duplicates);
    json.kv("curtailed", status_code_name(inputs.lfr->curtailed));
    json.end_object();
  }

  write_metrics(json,
                inputs.metrics != nullptr ? inputs.metrics->snapshot()
                                          : MetricsSnapshot{});

  // Appended after "metrics" (schema is append-only; key order is golden-
  // tested): graceful-degradation decisions and the out-of-core outcome.
  json.key("degradations").begin_array();
  if (inputs.result != nullptr) {
    for (const DegradationEvent& d : inputs.result->report.degradations) {
      json.begin_object();
      json.kv("phase", d.phase);
      json.kv("action", d.action);
      json.kv("trigger", status_code_name(d.trigger));
      json.kv("detail", d.detail);
      json.end_object();
    }
  }
  json.end_array();

  json.key("spill").begin_object();
  {
    const SpillSummary spill =
        inputs.result != nullptr ? inputs.result->spill : SpillSummary{};
    json.kv("spilled", spill.spilled);
    json.kv("dir", spill.dir);
    json.kv("shard_count", spill.shard_count);
    json.kv("edges_on_disk", spill.edges_on_disk);
    json.kv("shards_written", spill.shards_written);
    json.kv("shards_reused", spill.shards_reused);
    json.kv("max_shard_edges", spill.max_shard_edges);
  }
  json.end_object();

  if (inputs.model != nullptr) {
    json.key("model").begin_object();
    json.kv("backend", inputs.model->backend);
    json.key("sampling_space").begin_object();
    json.kv("name", inputs.model->space);
    json.kv("self_loops", inputs.model->self_loops);
    json.kv("multi_edges", inputs.model->multi_edges);
    json.kv("labeling", inputs.model->labeling);
    json.end_object();
    json.key("capabilities").begin_array();
    for (const std::string& cap : inputs.model->capabilities)
      json.value(cap);
    json.end_array();
    json.kv("space_verified", inputs.model->space_verified);
    json.end_object();
  }

  json.end_object();
  return std::move(json).str();
}

Status write_run_report(const std::string& path,
                        const RunReportInputs& inputs) {
  // Atomic commit through the io layer (legal here: report sits ABOVE
  // core/io, unlike the rest of obs): a crash mid-report leaves the old
  // report or none, never a torn JSON document.
  return write_text_file_atomic(path, render_run_report(inputs));
}

}  // namespace nullgraph::obs
