#include "obs/process_stats.hpp"

#include <cstdio>
#include <cstring>

#include "obs/metrics.hpp"

namespace nullgraph::obs {

ProcessMemory sample_process_memory() {
  ProcessMemory mem;
  // Raw fopen is deliberate: obs sits BELOW the io layer (io links obs),
  // so the atomic-writer helpers are out of reach — and /proc is a
  // read-only pseudo-filesystem anyway (io-confinement lint allowlists
  // this file).
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return mem;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    long long kb = 0;
    if (std::sscanf(line, "VmRSS: %lld kB", &kb) == 1)
      mem.resident_kb = kb;
    else if (std::sscanf(line, "VmHWM: %lld kB", &kb) == 1)
      mem.peak_resident_kb = kb;
    if (mem.valid()) break;
  }
  std::fclose(f);
  return mem;
}

void record_process_memory(MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  const ProcessMemory mem = sample_process_memory();
  if (!mem.valid()) return;
  metrics->gauge("mem.resident_kb")->set(mem.resident_kb);
  metrics->gauge("mem.peak_resident_kb")->set(mem.peak_resident_kb);
}

}  // namespace nullgraph::obs
