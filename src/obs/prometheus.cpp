#include "obs/prometheus.hpp"

#include <chrono>
#include <cinttypes>
#include <cstdio>

namespace nullgraph::obs {
namespace {

void append_name(std::string& out, std::string_view name) {
  out += "nullgraph_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
}

// Label VALUES keep their raw bytes but escape per the exposition format:
// backslash, double-quote, and newline.
void append_label_value(std::string& out, std::string_view value) {
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  out += buf;
}

void append_type_line(std::string& out, std::string_view name,
                      const char* type) {
  out += "# TYPE ";
  append_name(out, name);
  out += ' ';
  out += type;
  out += '\n';
}

}  // namespace

std::string prometheus_name(std::string_view name) {
  std::string out;
  append_name(out, name);
  return out;
}

std::string render_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const CounterSnapshot& c : snapshot.counters) {
    append_type_line(out, c.name, "counter");
    append_name(out, c.name);
    out += ' ';
    append_u64(out, c.value);
    out += '\n';
  }
  for (const GaugeSnapshot& g : snapshot.gauges) {
    append_type_line(out, g.name, "gauge");
    append_name(out, g.name);
    out += ' ';
    append_i64(out, g.value);
    out += '\n';
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    append_type_line(out, h.name, "histogram");
    // Cumulative le buckets: underflow observations are <= the first edge
    // too, so they fold into every bucket; overflow only reaches +Inf.
    std::uint64_t cumulative = h.underflow;
    for (std::size_t i = 0; i < h.edges.size(); ++i) {
      cumulative += h.counts[i];
      append_name(out, h.name);
      out += "_bucket{le=\"";
      std::string edge;
      append_i64(edge, h.edges[i]);
      append_label_value(out, edge);
      out += "\"} ";
      append_u64(out, cumulative);
      out += '\n';
    }
    append_name(out, h.name);
    out += "_bucket{le=\"+Inf\"} ";
    append_u64(out, h.count);
    out += '\n';
    append_name(out, h.name);
    out += "_sum ";
    append_i64(out, h.sum);
    out += '\n';
    append_name(out, h.name);
    out += "_count ";
    append_u64(out, h.count);
    out += '\n';
  }
  return out;
}

Status MetricsExporter::start(const MetricsRegistry* registry,
                              std::string path, std::uint64_t every_ms) {
  if (registry == nullptr)
    return Status(StatusCode::kInvalidArgument,
                  "metrics exporter needs a registry");
  if (worker_.joinable())
    return Status(StatusCode::kInvalidArgument,
                  "metrics exporter already started");
  registry_ = registry;
  path_ = std::move(path);
  every_ms_ = every_ms == 0 ? 1 : every_ms;
  // relaxed: lone stop flag polled by the worker; thread creation below
  // publishes everything it needs to see.
  stop_.store(false, std::memory_order_relaxed);
  // First snapshot synchronously, so `path` exists (possibly as an empty
  // exposition) the moment start() returns and scrapers never race file
  // creation. Its Status also vets the path before the thread spawns.
  Status first = write_snapshot();
  if (!first.ok()) return first;
  worker_ = std::thread([this] {
    using namespace std::chrono;
    auto next = steady_clock::now() + milliseconds(every_ms_);
    // relaxed: plain stop flag; join() below synchronizes the final state.
    while (!stop_.load(std::memory_order_relaxed)) {
      if (steady_clock::now() >= next) {
        (void)write_snapshot();  // transient write failure: retry next tick
        next += milliseconds(every_ms_);
      }
      std::this_thread::sleep_for(
          milliseconds(every_ms_ < 50 ? every_ms_ : 50));
    }
  });
  return Status::Ok();
}

void MetricsExporter::stop_and_flush() {
  if (!worker_.joinable()) return;
  // relaxed: see the worker loop.
  stop_.store(true, std::memory_order_relaxed);
  worker_.join();
  (void)write_snapshot();
}

Status MetricsExporter::write_snapshot() const {
  const std::string body = render_prometheus(registry_->snapshot());
  // obs sits below io in the layer DAG (calling up would cycle), so the
  // temp-write-rename commit is done with raw stdio here; the artifact is
  // a diagnostics exposition, but scrapers still must never see half a
  // file, hence the same atomic-replace discipline the io layer uses.
  const std::string tmp = path_ + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr)
    return Status(StatusCode::kIoError, "cannot open " + tmp);
  const std::size_t n = std::fwrite(body.data(), 1, body.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (n != body.size() || !closed)
    return Status(StatusCode::kIoError, "short write to " + tmp);
  if (std::rename(tmp.c_str(), path_.c_str()) != 0)
    return Status(StatusCode::kIoError, "cannot rename " + tmp);
  // relaxed: statistics counter read by tests, no dependent data.
  written_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

}  // namespace nullgraph::obs
