#include "obs/event_log.hpp"

#include "obs/flight_recorder.hpp"
#include "obs/json_writer.hpp"
#include "obs/trace.hpp"

namespace nullgraph::obs {

const char* event_kind_name(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kJobAdmitted: return "job_admitted";
    case EventKind::kJobEvicted: return "job_evicted";
    case EventKind::kJobCompleted: return "job_completed";
    case EventKind::kPhaseStart: return "phase_start";
    case EventKind::kPhaseEnd: return "phase_end";
    case EventKind::kCurtailment: return "curtailment";
    case EventKind::kDegradation: return "degradation";
    case EventKind::kShardCommit: return "shard_commit";
    case EventKind::kCheckpoint: return "checkpoint";
  }
  return "unknown";
}

EventLog::~EventLog() {
  MutexLock lock(mutex_);
  if (file_ != nullptr) std::fclose(file_);
  file_ = nullptr;
}

Status EventLog::open(const std::string& path) {
  // obs sits below io in the layer DAG (calling up would cycle); this is a
  // per-line-flushed append stream whose value IS its crash-surviving
  // prefix, so the io layer's temp-write-rename commit would defeat it.
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr)
    return Status(StatusCode::kIoError, "cannot open event log " + path);
  MutexLock lock(mutex_);
  if (file_ != nullptr) std::fclose(file_);
  file_ = f;
  // relaxed: lone fast-path flag; emit() re-checks file_ under the mutex.
  has_file_.store(true, std::memory_order_relaxed);
  return Status::Ok();
}

void EventLog::emit(const Event& event) {
  if (!active()) return;
  JsonWriter json;
  json.begin_object();
  json.kv("ts_us", monotonic_us());
  json.kv("event", event_kind_name(event.kind));
  if (event.job_id != 0) json.kv("job", event.job_id);
  if (event.trace_id != 0) json.kv("trace", event.trace_id);
  if (!event.phase.empty()) json.kv("phase", event.phase);
  if (event.value != 0) json.kv("value", event.value);
  if (!event.detail.empty()) json.kv("detail", event.detail);
  json.end_object();
  std::string line = std::move(json).str();
  line += '\n';
  if (recorder_ != nullptr) recorder_->record(line);
  // relaxed: statistics counter and a fast-path flag; the mutex below is
  // the synchronization point for the file handle itself.
  emitted_.fetch_add(1, std::memory_order_relaxed);
  if (!has_file_.load(std::memory_order_relaxed)) return;
  MutexLock lock(mutex_);
  if (file_ == nullptr) return;
  // Flush per line: a tail -f reader sees events live, and a crash — even
  // SIGKILL — leaves a valid JSONL prefix, never a torn line (stdio only
  // passes whole buffers to write(2), and each line is one buffer).
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fflush(file_);
}

PhaseEventScope::PhaseEventScope(const ObsContext& obs,
                                 std::string_view phase) noexcept
    : obs_(obs), phase_(phase) {
  if (obs_.events == nullptr) return;
  begin_us_ = monotonic_us();
  emit_event(obs_, EventKind::kPhaseStart, phase_);
}

PhaseEventScope::~PhaseEventScope() {
  if (obs_.events == nullptr) return;
  emit_event(obs_, EventKind::kPhaseEnd, phase_, monotonic_us() - begin_us_);
}

}  // namespace nullgraph::obs
