#include "obs/trace.hpp"

#include <cstdio>

#include "obs/json_writer.hpp"
#include "util/parallel.hpp"

namespace nullgraph::obs {

void TraceSink::complete(std::string name, std::uint64_t begin_us) {
  const std::uint64_t end_us = now_us();
  const std::uint64_t dur = end_us >= begin_us ? end_us - begin_us : 0;
  MutexLock lock(mutex_);
  events_.push_back({std::move(name), 'X', begin_us, dur, thread_id()});
}

void TraceSink::complete_between(std::string name, std::uint64_t begin_abs_us,
                                 std::uint64_t end_abs_us) {
  const std::uint64_t origin = origin_us();
  const std::uint64_t ts = begin_abs_us > origin ? begin_abs_us - origin : 0;
  const std::uint64_t dur =
      end_abs_us > begin_abs_us ? end_abs_us - begin_abs_us : 0;
  MutexLock lock(mutex_);
  events_.push_back({std::move(name), 'X', ts, dur, thread_id()});
}

void TraceSink::instant(std::string name) {
  const std::uint64_t ts = now_us();
  MutexLock lock(mutex_);
  events_.push_back({std::move(name), 'i', ts, 0, thread_id()});
}

std::size_t TraceSink::event_count() const {
  MutexLock lock(mutex_);
  return events_.size();
}

std::vector<TraceEventView> TraceSink::export_events() const {
  const std::uint64_t origin = origin_us();
  std::vector<Event> events;
  {
    MutexLock lock(mutex_);
    events = events_;
  }
  std::vector<TraceEventView> out;
  out.reserve(events.size());
  for (Event& e : events)
    out.push_back({std::move(e.name), e.phase, origin + e.ts, e.dur, e.tid});
  return out;
}

std::string TraceSink::to_json() const {
  std::vector<Event> events;
  {
    MutexLock lock(mutex_);
    events = events_;
  }
  JsonWriter json;
  json.begin_object();
  json.key("traceEvents").begin_array();
  // Process metadata first so Perfetto labels the single-process track.
  json.begin_object();
  json.kv("name", "process_name").kv("ph", "M").kv("pid", 1);
  json.key("args").begin_object().kv("name", "nullgraph").end_object();
  json.end_object();
  for (const Event& e : events) {
    json.begin_object();
    json.kv("name", e.name);
    json.kv("cat", "nullgraph");
    json.kv("ph", std::string_view(&e.phase, 1));
    json.kv("ts", e.ts);
    if (e.phase == 'X') json.kv("dur", e.dur);
    if (e.phase == 'i') json.kv("s", "g");  // global-scope instant
    json.kv("pid", 1);
    json.kv("tid", e.tid);
    json.end_object();
  }
  json.end_array();
  json.kv("displayTimeUnit", "ms");
  json.end_object();
  return std::move(json).str();
}

Status TraceSink::write(const std::string& path) const {
  const std::string body = to_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr)
    return Status(StatusCode::kIoError, "cannot open " + path);
  const std::size_t written = std::fwrite(body.data(), 1, body.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != body.size() || !closed)
    return Status(StatusCode::kIoError, "short write to " + path);
  return Status::Ok();
}

}  // namespace nullgraph::obs
