#pragma once
// Directed generators: the Algorithm IV.1 pipeline transplanted to simple
// digraphs (Durak et al. [14]; Erdős, Miklós & Toroczkai [15]).
//
//  * DirectedProbabilityMatrix — full (asymmetric) |D| x |D| arc
//    probabilities between (in, out) joint classes.
//  * directed_greedy_probabilities — the stub allocator: out-stubs of each
//    class are distributed over in-stubs, capped by space sizes, so the
//    expected realized (in, out) distribution matches the target.
//  * directed_edge_skip — geometric skip sampling over ordered-pair
//    spaces (the diagonal space excludes self-arcs, so output is simple).
//  * directed_chung_lu — the O(m) baseline: m arcs drawn out-stub x
//    in-stub with replacement (loops/duplicates possible), plus an erased
//    variant.
//  * kleitman_wang — greedy exact realization of a digraphical (in, out)
//    sequence (the directed Havel-Hakimi of [15]); doubles as the
//    digraphicality test.

#include <cstdint>
#include <vector>

#include "directed/directed_distribution.hpp"
#include "robustness/governance.hpp"

namespace nullgraph {

class DirectedProbabilityMatrix {
 public:
  DirectedProbabilityMatrix() = default;
  explicit DirectedProbabilityMatrix(std::size_t num_classes)
      : num_classes_(num_classes), values_(num_classes * num_classes, 0.0) {}

  std::size_t num_classes() const noexcept { return num_classes_; }
  /// P(from-class i -> to-class j); NOT symmetric.
  double at(std::size_t i, std::size_t j) const noexcept {
    return values_[i * num_classes_ + j];
  }
  void set(std::size_t i, std::size_t j, double p) noexcept {
    values_[i * num_classes_ + j] = p;
  }
  void add(std::size_t i, std::size_t j, double p) noexcept {
    values_[i * num_classes_ + j] += p;
  }
  double max_value() const noexcept;

  /// Expected out-degree of a class-i vertex: sum_j n_j P(i,j) - P(i,i).
  double expected_out_degree(std::size_t i,
                             const DirectedDegreeDistribution& dist) const;
  /// Expected in-degree of a class-j vertex: sum_i n_i P(i,j) - P(j,j).
  double expected_in_degree(std::size_t j,
                            const DirectedDegreeDistribution& dist) const;
  /// Expected total arcs over all ordered spaces.
  double expected_arcs(const DirectedDegreeDistribution& dist) const;

 private:
  std::size_t num_classes_ = 0;
  std::vector<double> values_;
};

/// Greedy out-stub -> in-stub allocator; the directed analogue of
/// greedy_probabilities. O(|D|^2 * rounds).
DirectedProbabilityMatrix directed_greedy_probabilities(
    const DirectedDegreeDistribution& dist, int rounds = 32);

/// Capped directed Chung-Lu probabilities: P(i,j) = min(1, out_i in_j / m).
DirectedProbabilityMatrix directed_chung_lu_probabilities(
    const DirectedDegreeDistribution& dist);

/// Simple digraph via parallel edge skipping over the ordered spaces.
/// The optional governor is polled per chunk; a curtailed run returns the
/// arcs generated so far (still simple — pair spaces are disjoint).
ArcList directed_edge_skip(const DirectedProbabilityMatrix& P,
                           const DirectedDegreeDistribution& dist,
                           std::uint64_t seed = 1,
                           std::uint64_t arcs_per_task = 1u << 16,
                           const RunGovernor* governor = nullptr);

/// O(m) directed Chung-Lu multigraph: m arcs, each drawn (out-stub,
/// in-stub) with replacement. A governed stop truncates the draw cleanly
/// (fewer arcs, no placeholder entries).
ArcList directed_chung_lu_multigraph(const DirectedDegreeDistribution& dist,
                                     std::uint64_t seed = 1,
                                     const RunGovernor* governor = nullptr);

/// directed_chung_lu_multigraph with loops and duplicate arcs erased.
ArcList erased_directed_chung_lu(const DirectedDegreeDistribution& dist,
                                 std::uint64_t seed = 1,
                                 const RunGovernor* governor = nullptr);

/// Exact greedy realization (Kleitman-Wang / directed Havel-Hakimi):
/// connects each vertex's out-stubs to the largest residual in-degrees.
/// Throws std::invalid_argument when the pair of sequences is not
/// digraphical. Reference implementation, O(n * (n + d log d)).
ArcList kleitman_wang(const std::vector<std::uint64_t>& in_degrees,
                      const std::vector<std::uint64_t>& out_degrees);

/// Digraphicality test via attempted construction.
bool is_digraphical(const std::vector<std::uint64_t>& in_degrees,
                    const std::vector<std::uint64_t>& out_degrees);

/// End-to-end directed Algorithm IV.1: greedy probabilities -> directed
/// edge-skipping -> directed swaps. Output is a simple digraph whose
/// (in, out) joint distribution matches `dist` in expectation.
ArcList generate_directed_null_graph(const DirectedDegreeDistribution& dist,
                                     std::uint64_t seed = 1,
                                     std::size_t swap_iterations = 10,
                                     const RunGovernor* governor = nullptr);

}  // namespace nullgraph
