#include "directed/directed_swap.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "ds/concurrent_hash_set.hpp"
#include "exec/exec.hpp"
#include "permute/permutation.hpp"
#include "util/rng.hpp"

namespace nullgraph {

namespace {

struct ArcPairCounts {
  std::size_t swapped = 0;
  std::size_t rejected_existing = 0;
  std::size_t rejected_loop = 0;
};

}  // namespace

DirectedSwapStats directed_swap_arcs(ArcList& arcs,
                                     const DirectedSwapConfig& config) {
  DirectedSwapStats stats;
  stats.iterations.resize(config.iterations);
  const std::size_t m = arcs.size();
  if (m < 2) return stats;

  // Refill (<= m keys) plus 2 candidates per pair — sized so the <= 0.5
  // load-factor invariant holds through a whole iteration.
  ConcurrentHashSet table(m + 2 * (m / 2));
  // Refill runs ungoverned (a skipped chunk would leave keys out of T and
  // risk duplicate commits); only the pair loop is skippable.
  const exec::ParallelContext refill_ctx;
  exec::ParallelContext pair_ctx;
  pair_ctx.governor = config.governor;
  std::uint64_t seed_chain = config.seed;
  for (std::size_t iter = 0; iter < config.iterations; ++iter) {
    if (pair_ctx.stopped()) break;
    DirectedSwapIterationStats& it_stats = stats.iterations[iter];
    const std::uint64_t permute_seed = splitmix64_next(seed_chain);

    if (iter > 0) table.clear();
    exec::for_chunks(refill_ctx, m, exec::kDefaultGrain,
                     [&](const exec::Chunk& chunk) {
                       for (std::size_t i = chunk.begin; i < chunk.end; ++i)
                         table.preload(arcs[i].key());
                     });

    const std::vector<std::uint64_t> targets = knuth_targets(m, permute_seed);
    apply_targets_parallel(std::span<Arc>(arcs),
                           std::span<const std::uint64_t>(targets.data(),
                                                          targets.size()),
                           config.governor);

    const std::size_t pairs = m / 2;
    const ArcPairCounts counts = exec::reduce<ArcPairCounts>(
        pair_ctx, pairs, 4096, ArcPairCounts{},
        [&](const exec::Chunk& chunk) {
          ArcPairCounts mine;
          for (std::size_t k = chunk.begin; k < chunk.end; ++k) {
            const Arc a = arcs[2 * k];
            const Arc b = arcs[2 * k + 1];
            // Single valid partnering: (u->y), (x->v). No coin needed — the
            // other pairing reverses directions and breaks the in/out
            // degrees.
            const Arc g{a.from, b.to};
            const Arc h{b.from, a.to};
            if (g.is_loop() || h.is_loop()) {
              ++mine.rejected_loop;
              continue;
            }
            if (table.test_and_set(g.key()) || table.test_and_set(h.key())) {
              ++mine.rejected_existing;
              continue;
            }
            arcs[2 * k] = g;
            arcs[2 * k + 1] = h;
            ++mine.swapped;
          }
          return mine;
        },
        [](ArcPairCounts a, ArcPairCounts b) {
          a.swapped += b.swapped;
          a.rejected_existing += b.rejected_existing;
          a.rejected_loop += b.rejected_loop;
          return a;
        });
    it_stats.attempted = pairs;
    it_stats.swapped = counts.swapped;
    it_stats.rejected_existing = counts.rejected_existing;
    it_stats.rejected_loop = counts.rejected_loop;
  }
  return stats;
}

std::size_t reverse_directed_triangles(ArcList& arcs, std::uint64_t seed,
                                       std::size_t attempts) {
  const std::size_t m = arcs.size();
  if (m < 3) return 0;
  // Exact arc-set membership plus an out-adjacency index (arc indices per
  // source vertex), both maintained incrementally across reversals.
  std::unordered_set<EdgeKey> present;
  present.reserve(2 * m);
  std::unordered_map<VertexId, std::vector<std::size_t>> out_arcs;
  for (std::size_t i = 0; i < m; ++i) {
    present.insert(arcs[i].key());
    out_arcs[arcs[i].from].push_back(i);
  }
  auto drop_out_entry = [&out_arcs](VertexId from, std::size_t index) {
    std::vector<std::size_t>& list = out_arcs[from];
    list.erase(std::find(list.begin(), list.end(), index));
  };

  Xoshiro256ss rng(seed);
  std::size_t reversed = 0;
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    // Lazy chain: skip half the attempts at random so the reversal count
    // per pass is never deterministic (on tiny all-triangle instances
    // every attempt succeeds, which would make the pass parity-periodic).
    if (rng.flip()) continue;
    // Sample arc u -> v, extend along a random arc v -> w, close via the
    // membership test for w -> u.
    const std::size_t i = static_cast<std::size_t>(rng.bounded(m));
    const Arc a = arcs[i];
    const auto it = out_arcs.find(a.to);
    if (it == out_arcs.end() || it->second.empty()) continue;
    const std::size_t j = it->second[rng.bounded(it->second.size())];
    const Arc b = arcs[j];
    if (b.to == a.from || b.to == a.to) continue;  // degenerate w
    const Arc c{b.to, a.from};
    if (!present.contains(c.key())) continue;  // not a triangle
    // Reversal candidates; all three must be absent for simplicity.
    const Arc ra{a.to, a.from}, rb{b.to, b.from}, rc{c.to, c.from};
    if (present.contains(ra.key()) || present.contains(rb.key()) ||
        present.contains(rc.key()))
      continue;
    // Locate c's index through the out-adjacency of its source.
    std::vector<std::size_t>& c_list = out_arcs[c.from];
    const auto c_pos = std::find_if(
        c_list.begin(), c_list.end(),
        [&](std::size_t index) { return arcs[index] == c; });
    const std::size_t k = *c_pos;
    // Commit: replace the three arcs and patch both indices.
    for (const auto& [index, before, after] :
         {std::tuple{i, a, ra}, std::tuple{j, b, rb}, std::tuple{k, c, rc}}) {
      present.erase(before.key());
      present.insert(after.key());
      drop_out_entry(before.from, index);
      arcs[index] = after;
      out_arcs[after.from].push_back(index);
    }
    ++reversed;
  }
  return reversed;
}

DirectedSwapStats directed_swap_arcs_complete(
    ArcList& arcs, const DirectedSwapConfig& config) {
  DirectedSwapStats stats;
  stats.iterations.reserve(config.iterations);
  std::uint64_t seed_chain = config.seed;
  for (std::size_t iter = 0; iter < config.iterations; ++iter) {
    DirectedSwapConfig one;
    one.iterations = 1;
    one.seed = splitmix64_next(seed_chain);
    const DirectedSwapStats step = directed_swap_arcs(arcs, one);
    stats.iterations.push_back(step.iterations.front());
    reverse_directed_triangles(arcs, splitmix64_next(seed_chain),
                               arcs.size());
  }
  return stats;
}

}  // namespace nullgraph
