#pragma once
// Directed extension (Section I: "our results can be extrapolated to
// directed graphs with certain considerations [14], [15]").
//
// A directed degree distribution is a list of (in-degree, out-degree)
// joint classes with vertex counts. The same id convention as the
// undirected DegreeDistribution applies: classes are sorted (by out-degree
// then in-degree) and vertices are numbered contiguously per class.
//
// Arcs are ordered pairs; a simple directed graph has no self-loops and no
// duplicate arcs (antiparallel arcs u->v and v->u are both allowed, as in
// Durak et al. [14]).

#include <cstdint>
#include <vector>

#include "ds/edge.hpp"

namespace nullgraph {

/// A directed arc u -> v. Same 8-byte footprint as Edge; the key is the
/// ORDERED packing, so {u,v} and {v,u} are distinct arcs.
struct Arc {
  VertexId from = 0;
  VertexId to = 0;

  friend constexpr bool operator==(const Arc&, const Arc&) noexcept = default;

  constexpr bool is_loop() const noexcept { return from == to; }

  constexpr EdgeKey key() const noexcept {
    return (static_cast<EdgeKey>(from) << 32) | static_cast<EdgeKey>(to);
  }
};

using ArcList = std::vector<Arc>;

struct DirectedDegreeClass {
  std::uint64_t in_degree = 0;
  std::uint64_t out_degree = 0;
  std::uint64_t count = 0;

  friend bool operator==(const DirectedDegreeClass&,
                         const DirectedDegreeClass&) = default;
};

class DirectedDegreeDistribution {
 public:
  DirectedDegreeDistribution() = default;

  /// Merges duplicate (in, out) classes; throws std::invalid_argument when
  /// total in-degree != total out-degree (no digraph realizes it).
  explicit DirectedDegreeDistribution(
      std::vector<DirectedDegreeClass> classes);

  /// From per-vertex (in, out) sequences (same length).
  static DirectedDegreeDistribution from_sequences(
      const std::vector<std::uint64_t>& in_degrees,
      const std::vector<std::uint64_t>& out_degrees);

  /// Observed distribution of an arc list.
  static DirectedDegreeDistribution from_arcs(const ArcList& arcs,
                                              std::size_t n = 0);

  std::size_t num_classes() const noexcept { return classes_.size(); }
  const std::vector<DirectedDegreeClass>& classes() const noexcept {
    return classes_;
  }
  std::uint64_t num_vertices() const noexcept { return total_vertices_; }
  /// Total arcs m = sum of in-degrees = sum of out-degrees.
  std::uint64_t num_arcs() const noexcept { return total_arcs_; }
  std::uint64_t max_in_degree() const noexcept;
  std::uint64_t max_out_degree() const noexcept;

  std::uint64_t class_offset(std::size_t c) const noexcept {
    return offsets_[c];
  }
  std::size_t class_of_vertex(std::uint64_t v) const noexcept;
  const DirectedDegreeClass& class_at(std::size_t c) const noexcept {
    return classes_[c];
  }

  /// Per-vertex target sequences in id order.
  std::vector<std::uint64_t> in_sequence() const;
  std::vector<std::uint64_t> out_sequence() const;

  friend bool operator==(const DirectedDegreeDistribution&,
                         const DirectedDegreeDistribution&) = default;

 private:
  std::vector<DirectedDegreeClass> classes_;
  std::vector<std::uint64_t> offsets_;
  std::uint64_t total_vertices_ = 0;
  std::uint64_t total_arcs_ = 0;
};

/// Per-vertex in/out degrees of an arc list.
std::vector<std::uint64_t> in_degrees_of(const ArcList& arcs,
                                         std::size_t n = 0);
std::vector<std::uint64_t> out_degrees_of(const ArcList& arcs,
                                          std::size_t n = 0);

/// Number of vertices implied by the largest endpoint.
std::size_t vertex_count(const ArcList& arcs);

/// Self-loop / duplicate-arc census (duplicates = extra copies).
struct ArcCensus {
  std::size_t self_loops = 0;
  std::size_t duplicate_arcs = 0;
  bool simple() const noexcept {
    return self_loops == 0 && duplicate_arcs == 0;
  }
};
ArcCensus census(const ArcList& arcs);
bool is_simple(const ArcList& arcs);

/// True when both lists hold the same multiset of arcs.
bool same_arc_multiset(const ArcList& a, const ArcList& b);

}  // namespace nullgraph
