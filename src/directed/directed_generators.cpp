#include "directed/directed_generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "directed/directed_swap.hpp"
#include "ds/concurrent_hash_set.hpp"
#include "exec/exec.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace nullgraph {

double DirectedProbabilityMatrix::max_value() const noexcept {
  double best = 0.0;
  for (double v : values_) best = std::max(best, v);
  return best;
}

double DirectedProbabilityMatrix::expected_out_degree(
    std::size_t i, const DirectedDegreeDistribution& dist) const {
  double sum = 0.0;
  for (std::size_t j = 0; j < num_classes_; ++j)
    sum += static_cast<double>(dist.class_at(j).count) * at(i, j);
  return sum - at(i, i);
}

double DirectedProbabilityMatrix::expected_in_degree(
    std::size_t j, const DirectedDegreeDistribution& dist) const {
  double sum = 0.0;
  for (std::size_t i = 0; i < num_classes_; ++i)
    sum += static_cast<double>(dist.class_at(i).count) * at(i, j);
  return sum - at(j, j);
}

double DirectedProbabilityMatrix::expected_arcs(
    const DirectedDegreeDistribution& dist) const {
  double sum = 0.0;
  for (std::size_t i = 0; i < num_classes_; ++i) {
    const double ni = static_cast<double>(dist.class_at(i).count);
    for (std::size_t j = 0; j < num_classes_; ++j) {
      const double nj = static_cast<double>(dist.class_at(j).count);
      const double space = i == j ? ni * (ni - 1.0) : ni * nj;
      sum += at(i, j) * space;
    }
  }
  return sum;
}

DirectedProbabilityMatrix directed_greedy_probabilities(
    const DirectedDegreeDistribution& dist, int rounds) {
  const std::size_t nc = dist.num_classes();
  DirectedProbabilityMatrix P(nc);
  if (nc == 0) return P;
  std::vector<double> out_stubs(nc), in_stubs(nc), counts(nc);
  for (std::size_t c = 0; c < nc; ++c) {
    const DirectedDegreeClass& cls = dist.class_at(c);
    counts[c] = static_cast<double>(cls.count);
    out_stubs[c] = static_cast<double>(cls.out_degree) * counts[c];
    in_stubs[c] = static_cast<double>(cls.in_degree) * counts[c];
  }
  constexpr double kEps = 1e-9;
  // Classes ascend by out-degree; allocate the heaviest out-classes first
  // so the hubs' arcs are never crowded out by space caps.
  for (std::size_t step = 0; step < nc; ++step) {
    const std::size_t i = nc - 1 - step;
    for (int round = 0; round < rounds && out_stubs[i] > kEps; ++round) {
      double weight = 0.0;
      for (std::size_t j = 0; j < nc; ++j)
        if (in_stubs[j] > kEps && P.at(i, j) < 1.0) weight += in_stubs[j];
      if (weight <= kEps) break;
      const double budget = out_stubs[i];
      double allocated = 0.0;
      for (std::size_t j = 0; j < nc; ++j) {
        if (in_stubs[j] <= kEps) continue;
        const double space =
            i == j ? counts[i] * (counts[i] - 1.0) : counts[i] * counts[j];
        const double cap = (1.0 - P.at(i, j)) * space;
        if (cap <= kEps) continue;
        const double arcs =
            std::min({budget * in_stubs[j] / weight, cap, in_stubs[j]});
        if (arcs <= 0.0) continue;
        P.add(i, j, arcs / space);
        in_stubs[j] -= arcs;
        allocated += arcs;
      }
      out_stubs[i] = std::max(0.0, out_stubs[i] - allocated);
      if (allocated <= kEps * budget) break;  // caps everywhere
    }
  }
  return P;
}

DirectedProbabilityMatrix directed_chung_lu_probabilities(
    const DirectedDegreeDistribution& dist) {
  const std::size_t nc = dist.num_classes();
  DirectedProbabilityMatrix P(nc);
  const double m = static_cast<double>(dist.num_arcs());
  if (m == 0) return P;
  for (std::size_t i = 0; i < nc; ++i) {
    const double out_i = static_cast<double>(dist.class_at(i).out_degree);
    for (std::size_t j = 0; j < nc; ++j) {
      const double in_j = static_cast<double>(dist.class_at(j).in_degree);
      P.set(i, j, std::min(1.0, out_i * in_j / m));
    }
  }
  return P;
}

namespace {

std::uint64_t task_seed(std::uint64_t seed, std::uint64_t pair,
                        std::uint64_t chunk) {
  std::uint64_t state = seed ^ (pair * 0x9e3779b97f4a7c15ULL) ^
                        (chunk * 0xbf58476d1ce4e5b9ULL);
  splitmix64_next(state);
  return splitmix64_next(state);
}

/// Ordered-pair space between from-class (n_from vertices at from_offset)
/// and to-class; the diagonal space skips self-pairs.
struct ArcSpace {
  std::uint64_t size = 0;
  std::uint64_t to_count = 0;
  std::uint64_t from_offset = 0;
  std::uint64_t to_offset = 0;
  bool diagonal = false;

  Arc decode(std::uint64_t t) const noexcept {
    if (!diagonal) {
      return {static_cast<VertexId>(from_offset + t / to_count),
              static_cast<VertexId>(to_offset + t % to_count)};
    }
    // n(n-1) ordered non-diagonal pairs: row u holds n-1 targets, with the
    // slot for v == u skipped.
    const std::uint64_t u = t / (to_count - 1);
    const std::uint64_t r = t % (to_count - 1);
    const std::uint64_t v = r + (r >= u ? 1 : 0);
    return {static_cast<VertexId>(from_offset + u),
            static_cast<VertexId>(to_offset + v)};
  }
};

template <typename EmitFn>
void traverse(double p, std::uint64_t begin, std::uint64_t end,
              Xoshiro256ss& rng, EmitFn&& emit) {
  if (p <= 0.0 || begin >= end) return;
  if (p >= 1.0) {
    for (std::uint64_t t = begin; t < end; ++t) emit(t);
    return;
  }
  const double log_1mp = std::log1p(-p);
  std::uint64_t t = begin;
  while (true) {
    const double skip = std::floor(std::log(rng.uniform_open()) / log_1mp);
    if (skip >= static_cast<double>(end - t)) return;
    t += static_cast<std::uint64_t>(skip);
    if (t >= end) return;
    emit(t);
    if (++t >= end) return;
  }
}

}  // namespace

ArcList directed_edge_skip(const DirectedProbabilityMatrix& P,
                           const DirectedDegreeDistribution& dist,
                           std::uint64_t seed, std::uint64_t arcs_per_task,
                           const RunGovernor* governor) {
  const std::size_t nc = dist.num_classes();
  const std::uint64_t num_pairs = nc * nc;
  exec::ParallelContext ctx;
  ctx.seed = seed;
  ctx.governor = governor;
  ctx.phase = "directed edge generation";
  // Per-pair streams stay keyed by (seed, pair, subtask), so the arc set
  // is invariant under both thread count and exec chunking.
  return exec::collect<Arc>(
      ctx, num_pairs, 64, [&](const exec::Chunk& chunk, ArcList& mine) {
        for (std::uint64_t pair = chunk.begin; pair < chunk.end; ++pair) {
          const std::size_t i = static_cast<std::size_t>(pair / nc);
          const std::size_t j = static_cast<std::size_t>(pair % nc);
          const double p = P.at(i, j);
          if (p <= 0.0) continue;
          ArcSpace space;
          const std::uint64_t ni = dist.class_at(i).count;
          const std::uint64_t nj = dist.class_at(j).count;
          space.to_count = nj;
          space.from_offset = dist.class_offset(i);
          space.to_offset = dist.class_offset(j);
          space.diagonal = i == j;
          space.size = space.diagonal ? ni * (ni - 1) : ni * nj;
          if (space.diagonal && ni < 2) continue;
          // Large spaces are split into subtasks with independent stateless
          // seeds; the split depends only on the data.
          const double expected = p * static_cast<double>(space.size);
          const std::uint64_t subtasks =
              expected > static_cast<double>(arcs_per_task)
                  ? static_cast<std::uint64_t>(
                        expected / static_cast<double>(arcs_per_task)) + 1
                  : 1;
          for (std::uint64_t c = 0; c < subtasks; ++c) {
            const auto [begin, end] = block_range(
                static_cast<std::size_t>(c),
                static_cast<std::size_t>(subtasks), space.size);
            Xoshiro256ss rng(task_seed(seed, pair, c));
            traverse(p, begin, end, rng, [&](std::uint64_t t) {
              mine.push_back(space.decode(t));
            });
          }
        }
      });
}

ArcList directed_chung_lu_multigraph(const DirectedDegreeDistribution& dist,
                                     std::uint64_t seed,
                                     const RunGovernor* governor) {
  const std::uint64_t m = dist.num_arcs();
  if (m == 0) return {};
  const std::size_t nc = dist.num_classes();
  // Cumulative stub tables per class; a uniform stub index maps to the
  // vertex owning it (out-stubs for sources, in-stubs for targets).
  std::vector<std::uint64_t> out_cum(nc + 1, 0), in_cum(nc + 1, 0);
  for (std::size_t c = 0; c < nc; ++c) {
    out_cum[c + 1] =
        out_cum[c] + dist.class_at(c).out_degree * dist.class_at(c).count;
    in_cum[c + 1] =
        in_cum[c] + dist.class_at(c).in_degree * dist.class_at(c).count;
  }
  auto draw = [&](const std::vector<std::uint64_t>& cum, bool out,
                  Xoshiro256ss& rng) {
    const std::uint64_t s = rng.bounded(cum.back());
    const std::size_t c = static_cast<std::size_t>(
        std::upper_bound(cum.begin(), cum.end(), s) - cum.begin() - 1);
    const std::uint64_t d = out ? dist.class_at(c).out_degree
                                : dist.class_at(c).in_degree;
    return static_cast<VertexId>(dist.class_offset(c) + (s - cum[c]) / d);
  };
  // Per-chunk RNG streams: the draw is thread-count-invariant, and a
  // governed stop truncates the arc list cleanly instead of leaving
  // placeholder arcs behind.
  exec::ParallelContext ctx;
  ctx.seed = seed;
  ctx.governor = governor;
  ctx.phase = "directed chung-lu draws";
  constexpr std::size_t kBlock = std::size_t{1} << 14;
  return exec::collect<Arc>(
      ctx, m, kBlock, [&](const exec::Chunk& chunk, ArcList& mine) {
        Xoshiro256ss rng = chunk.rng();
        mine.reserve(chunk.size());
        for (std::uint64_t a = chunk.begin; a < chunk.end; ++a)
          mine.push_back({draw(out_cum, true, rng), draw(in_cum, false, rng)});
      });
}

ArcList erased_directed_chung_lu(const DirectedDegreeDistribution& dist,
                                 std::uint64_t seed,
                                 const RunGovernor* governor) {
  const ArcList arcs = directed_chung_lu_multigraph(dist, seed, governor);
  ConcurrentHashSet seen(arcs.size());
  // The erasure pass is cheap relative to the draw; it runs ungoverned so
  // the kept set is exactly the first-occurrence set of the draw above.
  const exec::ParallelContext ctx;
  return exec::collect<Arc>(
      ctx, arcs.size(), exec::kDefaultGrain,
      [&](const exec::Chunk& chunk, ArcList& mine) {
        for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
          if (!arcs[i].is_loop() && !seen.test_and_set(arcs[i].key()))
            mine.push_back(arcs[i]);
        }
      });
}

ArcList kleitman_wang(const std::vector<std::uint64_t>& in_degrees,
                      const std::vector<std::uint64_t>& out_degrees) {
  const std::size_t n = in_degrees.size();
  if (out_degrees.size() != n)
    throw std::invalid_argument("kleitman_wang: sequence length mismatch");
  std::uint64_t total_in = 0, total_out = 0;
  for (std::size_t v = 0; v < n; ++v) {
    total_in += in_degrees[v];
    total_out += out_degrees[v];
  }
  if (total_in != total_out)
    throw std::invalid_argument("kleitman_wang: in/out totals differ");

  std::vector<std::uint64_t> residual_in = in_degrees;
  std::vector<std::uint64_t> residual_out = out_degrees;
  ArcList arcs;
  arcs.reserve(total_out);
  // Process sources in descending out-degree (any order is valid for the
  // Kleitman-Wang theorem as long as targets are the largest residual
  // in-degrees excluding the source).
  std::vector<VertexId> sources(n);
  std::iota(sources.begin(), sources.end(), 0u);
  std::stable_sort(sources.begin(), sources.end(),
                   [&](VertexId a, VertexId b) {
                     return out_degrees[a] > out_degrees[b];
                   });
  std::vector<VertexId> candidates;
  candidates.reserve(n);
  for (const VertexId source : sources) {
    const std::uint64_t want = out_degrees[source];
    if (want == 0) break;
    candidates.clear();
    for (VertexId v = 0; v < n; ++v)
      if (v != source && residual_in[v] > 0) candidates.push_back(v);
    if (candidates.size() < want)
      throw std::invalid_argument("kleitman_wang: not digraphical");
    // Kleitman-Wang ordering: largest residual in-degree first, ties by
    // larger remaining out-degree (the lexicographic (in, out) order the
    // theorem requires), then id for determinism. Breaking in-degree ties
    // toward exhausted-out vertices can strand in-stubs on the source.
    std::nth_element(candidates.begin(),
                     candidates.begin() + static_cast<std::ptrdiff_t>(want),
                     candidates.end(), [&](VertexId a, VertexId b) {
                       if (residual_in[a] != residual_in[b])
                         return residual_in[a] > residual_in[b];
                       if (residual_out[a] != residual_out[b])
                         return residual_out[a] > residual_out[b];
                       return a < b;
                     });
    for (std::uint64_t k = 0; k < want; ++k) {
      const VertexId target = candidates[k];
      arcs.push_back({source, target});
      --residual_in[target];
    }
    residual_out[source] = 0;
  }
  for (std::size_t v = 0; v < n; ++v)
    if (residual_in[v] != 0)
      throw std::invalid_argument("kleitman_wang: not digraphical");
  return arcs;
}

bool is_digraphical(const std::vector<std::uint64_t>& in_degrees,
                    const std::vector<std::uint64_t>& out_degrees) {
  try {
    kleitman_wang(in_degrees, out_degrees);
    return true;
  } catch (const std::invalid_argument&) {
    return false;
  }
}

ArcList generate_directed_null_graph(const DirectedDegreeDistribution& dist,
                                     std::uint64_t seed,
                                     std::size_t swap_iterations,
                                     const RunGovernor* governor) {
  std::uint64_t seed_chain = seed;
  const DirectedProbabilityMatrix P = directed_greedy_probabilities(dist);
  ArcList arcs = directed_edge_skip(P, dist, splitmix64_next(seed_chain),
                                    std::uint64_t{1} << 16, governor);
  DirectedSwapConfig config;
  config.iterations = swap_iterations;
  config.seed = splitmix64_next(seed_chain);
  config.governor = governor;
  directed_swap_arcs(arcs, config);
  return arcs;
}

}  // namespace nullgraph
