#include "directed/directed_distribution.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "ds/concurrent_hash_set.hpp"
#include "exec/exec.hpp"

namespace nullgraph {

DirectedDegreeDistribution::DirectedDegreeDistribution(
    std::vector<DirectedDegreeClass> classes)
    : classes_(std::move(classes)) {
  std::sort(classes_.begin(), classes_.end(),
            [](const DirectedDegreeClass& a, const DirectedDegreeClass& b) {
              if (a.out_degree != b.out_degree)
                return a.out_degree < b.out_degree;
              return a.in_degree < b.in_degree;
            });
  std::size_t out = 0;
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    if (classes_[i].count == 0) continue;
    if (out > 0 && classes_[out - 1].in_degree == classes_[i].in_degree &&
        classes_[out - 1].out_degree == classes_[i].out_degree) {
      classes_[out - 1].count += classes_[i].count;
    } else {
      classes_[out++] = classes_[i];
    }
  }
  classes_.resize(out);

  offsets_.assign(classes_.size() + 1, 0);
  total_vertices_ = 0;
  std::uint64_t total_in = 0, total_out = 0;
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    offsets_[c] = total_vertices_;
    total_vertices_ += classes_[c].count;
    total_in += classes_[c].in_degree * classes_[c].count;
    total_out += classes_[c].out_degree * classes_[c].count;
  }
  offsets_[classes_.size()] = total_vertices_;
  if (total_in != total_out) {
    throw std::invalid_argument(
        "DirectedDegreeDistribution: total in-degree != total out-degree");
  }
  total_arcs_ = total_in;
}

DirectedDegreeDistribution DirectedDegreeDistribution::from_sequences(
    const std::vector<std::uint64_t>& in_degrees,
    const std::vector<std::uint64_t>& out_degrees) {
  if (in_degrees.size() != out_degrees.size())
    throw std::invalid_argument(
        "from_sequences: in/out sequences differ in length");
  std::vector<DirectedDegreeClass> classes;
  classes.reserve(in_degrees.size());
  for (std::size_t v = 0; v < in_degrees.size(); ++v)
    classes.push_back({in_degrees[v], out_degrees[v], 1});
  return DirectedDegreeDistribution(std::move(classes));
}

DirectedDegreeDistribution DirectedDegreeDistribution::from_arcs(
    const ArcList& arcs, std::size_t n) {
  if (n == 0) n = vertex_count(arcs);
  return from_sequences(in_degrees_of(arcs, n), out_degrees_of(arcs, n));
}

std::uint64_t DirectedDegreeDistribution::max_in_degree() const noexcept {
  std::uint64_t best = 0;
  for (const DirectedDegreeClass& c : classes_)
    best = std::max(best, c.in_degree);
  return best;
}

std::uint64_t DirectedDegreeDistribution::max_out_degree() const noexcept {
  return classes_.empty() ? 0 : classes_.back().out_degree;
}

std::size_t DirectedDegreeDistribution::class_of_vertex(std::uint64_t v)
    const noexcept {
  const auto it = std::upper_bound(offsets_.begin(), offsets_.end(), v);
  return static_cast<std::size_t>(it - offsets_.begin()) - 1;
}

std::vector<std::uint64_t> DirectedDegreeDistribution::in_sequence() const {
  std::vector<std::uint64_t> sequence(total_vertices_);
  for (std::size_t c = 0; c < classes_.size(); ++c)
    for (std::uint64_t v = offsets_[c]; v < offsets_[c + 1]; ++v)
      sequence[v] = classes_[c].in_degree;
  return sequence;
}

std::vector<std::uint64_t> DirectedDegreeDistribution::out_sequence() const {
  std::vector<std::uint64_t> sequence(total_vertices_);
  for (std::size_t c = 0; c < classes_.size(); ++c)
    for (std::uint64_t v = offsets_[c]; v < offsets_[c + 1]; ++v)
      sequence[v] = classes_[c].out_degree;
  return sequence;
}

std::size_t vertex_count(const ArcList& arcs) {
  if (arcs.empty()) return 0;
  // Diagnostic reductions run ungoverned: callers rely on exact counts.
  const exec::ParallelContext ctx;
  const VertexId max_id = exec::reduce<VertexId>(
      ctx, arcs.size(), exec::kDefaultGrain, 0,
      [&](const exec::Chunk& chunk) {
        VertexId mine = 0;
        for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
          const VertexId hi =
              arcs[i].from > arcs[i].to ? arcs[i].from : arcs[i].to;
          if (hi > mine) mine = hi;
        }
        return mine;
      },
      [](VertexId a, VertexId b) { return a > b ? a : b; });
  return static_cast<std::size_t>(max_id) + 1;
}

std::vector<std::uint64_t> in_degrees_of(const ArcList& arcs, std::size_t n) {
  n = std::max(n, vertex_count(arcs));
  std::vector<std::uint64_t> degree(n, 0);
  const exec::ParallelContext ctx;
  exec::for_chunks(ctx, arcs.size(), exec::kDefaultGrain,
                   [&](const exec::Chunk& chunk) {
                     for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
                       std::atomic_ref<std::uint64_t> slot(
                           degree[arcs[i].to]);
                       // relaxed: in-degree tally published by the loop
                       // barrier, not by this add.
                       slot.fetch_add(1, std::memory_order_relaxed);
                     }
                   });
  return degree;
}

std::vector<std::uint64_t> out_degrees_of(const ArcList& arcs,
                                          std::size_t n) {
  n = std::max(n, vertex_count(arcs));
  std::vector<std::uint64_t> degree(n, 0);
  const exec::ParallelContext ctx;
  exec::for_chunks(ctx, arcs.size(), exec::kDefaultGrain,
                   [&](const exec::Chunk& chunk) {
                     for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
                       std::atomic_ref<std::uint64_t> slot(
                           degree[arcs[i].from]);
                       // relaxed: out-degree tally published by the loop
                       // barrier, not by this add.
                       slot.fetch_add(1, std::memory_order_relaxed);
                     }
                   });
  return degree;
}

ArcCensus census(const ArcList& arcs) {
  ConcurrentHashSet seen(arcs.size());
  const exec::ParallelContext ctx;
  const ArcCensus result = exec::reduce<ArcCensus>(
      ctx, arcs.size(), exec::kDefaultGrain, ArcCensus{},
      [&](const exec::Chunk& chunk) {
        ArcCensus mine;
        for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
          if (arcs[i].is_loop()) {
            ++mine.self_loops;
            continue;
          }
          if (seen.test_and_set(arcs[i].key())) ++mine.duplicate_arcs;
        }
        return mine;
      },
      [](ArcCensus a, ArcCensus b) {
        a.self_loops += b.self_loops;
        a.duplicate_arcs += b.duplicate_arcs;
        return a;
      });
  return result;
}

bool is_simple(const ArcList& arcs) { return census(arcs).simple(); }

bool same_arc_multiset(const ArcList& a, const ArcList& b) {
  if (a.size() != b.size()) return false;
  auto keys = [](const ArcList& arcs) {
    std::vector<EdgeKey> out(arcs.size());
    const exec::ParallelContext ctx;
    exec::for_chunks(ctx, arcs.size(), exec::kDefaultGrain,
                     [&](const exec::Chunk& chunk) {
                       for (std::size_t i = chunk.begin; i < chunk.end; ++i)
                         out[i] = arcs[i].key();
                     });
    std::sort(out.begin(), out.end());
    return out;
  };
  return keys(a) == keys(b);
}

}  // namespace nullgraph
