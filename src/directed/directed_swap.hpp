#pragma once
// Parallel double-edge swaps for simple digraphs: the Algorithm III.1
// machinery with the single direction-preserving partnering. Arcs
// a = (u -> v), b = (x -> y) swap to (u -> y), (x -> v), which preserves
// every vertex's in- AND out-degree (the other partnering would reverse
// arc directions and change them). Simplicity checks run against a
// concurrent table of ORDERED arc keys.
//
// Known caveat (Erdős, Miklós & Toroczkai [15]): the directed 2-swap chain
// is not irreducible on every digraph space — an induced directed 3-cycle
// cannot be reversed by 2-swaps alone (every proposal makes a self-loop),
// so spaces that differ only by 3-cycle orientations split into separate
// ergodic classes. The standard remedy is an additional triangle-reversal
// move; for the degree sequences this library targets (large, skewed) the
// affected states are a vanishing fraction and the practical impact is
// nil, but exact small-space sampling should be aware of it
// (tests/test_uniformity_extended pins the behaviour).
//
// Second small-space caveat, shared with the undirected parallel chain: on
// inputs where every proposal is accepted (e.g. permutation matrices /
// perfect matchings), each iteration commits a fixed number of swaps, so
// the chain can be PERIODIC in swap parity at fixed iteration counts —
// randomize the horizon when sampling such spaces exactly. Real graph
// workloads have rejections and shared endpoints, which break the
// periodicity immediately.

#include <cstddef>
#include <cstdint>

#include "directed/directed_distribution.hpp"
#include "robustness/governance.hpp"

namespace nullgraph {

struct DirectedSwapConfig {
  std::size_t iterations = 10;
  std::uint64_t seed = 1;
  /// Optional run governance: polled at iteration boundaries and per chunk
  /// inside the pair loop. A curtailed chain leaves `arcs` a valid digraph
  /// with the original in/out degrees.
  const RunGovernor* governor = nullptr;
};

struct DirectedSwapIterationStats {
  std::size_t attempted = 0;
  std::size_t swapped = 0;
  std::size_t rejected_existing = 0;
  std::size_t rejected_loop = 0;
};

struct DirectedSwapStats {
  std::vector<DirectedSwapIterationStats> iterations;

  std::size_t total_swapped() const noexcept {
    std::size_t sum = 0;
    for (const auto& it : iterations) sum += it.swapped;
    return sum;
  }
};

/// Parallel directed swaps; mutates `arcs` in place.
DirectedSwapStats directed_swap_arcs(ArcList& arcs,
                                     const DirectedSwapConfig& config = {});

/// One serial pass of Erdős–Miklós–Toroczkai TRIANGLE REVERSALS: samples
/// `attempts` random arcs, completes each to a directed triangle
/// (u -> v -> w -> u) through an out-adjacency index when possible, and
/// reverses the triangle when none of the reversed arcs already exists.
/// Preserves every in/out degree and simplicity; combined with
/// directed_swap_arcs this restores irreducibility on spaces where plain
/// 2-swaps are stuck (see the header caveat). Returns the number of
/// triangles reversed.
std::size_t reverse_directed_triangles(ArcList& arcs, std::uint64_t seed,
                                       std::size_t attempts);

/// Convenience chain alternating parallel 2-swaps with triangle-reversal
/// passes (attempts ~ m per pass): the fully-mixing directed sampler.
DirectedSwapStats directed_swap_arcs_complete(
    ArcList& arcs, const DirectedSwapConfig& config = {});

}  // namespace nullgraph
