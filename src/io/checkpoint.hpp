#pragma once
// Checkpoint format v1: a versioned, CRC-guarded binary snapshot of a
// generation run taken at swap-iteration boundaries, so an interrupted run
// can resume and reproduce the uninterrupted output bit-for-bit.
//
// Layout (all integers native-endian; v1 snapshots are not portable across
// byte orders — a documented limitation, the service restarts runs on the
// machine class that started them):
//
//   offset  size  field
//   0       8     magic "NGCKPT\0\1" (includes a format-breaking byte)
//   8       4     version (u32, currently 1)
//   12      8     swap_seed        SwapConfig::seed of the original run
//   20      8     total_iterations requested swap iterations
//   28      8     completed_iterations at snapshot time
//   36      8     chain_state      seed_chain AFTER the completed iterations
//   44      8     degree_fingerprint of the edge list (cheap resume sanity)
//   52      8     edge_count m
//   60      8*m   edges (two u32 endpoints per edge, see ds/edge.hpp)
//   60+8m   4     CRC-32 (poly 0xEDB88320) over bytes [12, 60+8m)
//
// Writes are crash-consistent: the snapshot goes to "<path>.tmp", is
// flushed and fsync'd, then renamed over <path> — a torn write can only
// lose the newest snapshot, never corrupt the previous one. Reads verify
// magic, version, CRC, and the payload length implied by edge_count;
// anything off is kCheckpointInvalid (or kIoError for filesystem trouble).

#include <cstdint>
#include <functional>
#include <string>

#include "ds/edge_list.hpp"
#include "robustness/status.hpp"

namespace nullgraph::obs {
class Counter;
}  // namespace nullgraph::obs

namespace nullgraph {

inline constexpr std::uint32_t kCheckpointVersion = 1;

/// One snapshot's contents — everything swap_edges needs to continue the
/// chain exactly (see SwapConfig::start_iteration / resume_chain_state).
struct Checkpoint {
  std::uint64_t swap_seed = 0;
  std::uint64_t total_iterations = 0;
  std::uint64_t completed_iterations = 0;
  std::uint64_t chain_state = 0;
  std::uint64_t degree_fingerprint = 0;
  EdgeList edges;
};

/// Atomically writes `ckpt` to `path` (write-to-temp, fsync, rename).
Status write_checkpoint(const std::string& path, const Checkpoint& ckpt);

/// Transient-fault policy for durable writers (the swap phase's checkpoint
/// sink, the serve daemon's per-job spool, and the spill-shard committer):
/// a full disk or a flaky device (ENOSPC/EIO) gets bounded exponential
/// backoff — `attempts` tries in total, sleeping backoff_ms, 2*backoff_ms,
/// ... between them — then the kIoError is surfaced typed for the caller's
/// report, never an abort, because a failed snapshot must not kill the run
/// it exists to protect. (A failed SPILL write is different: the shard IS
/// the data, so the spill phase propagates the surfaced error.)
struct CheckpointRetryPolicy {
  /// Total write attempts (first try + retries). 0 behaves as 1.
  std::size_t attempts = 3;
  /// Backoff before retry k (1-based) is backoff_ms << (k-1).
  std::uint64_t backoff_ms = 25;
  /// Injectable clock for tests: when set, called with each backoff
  /// duration instead of sleeping, so backoff schedules are asserted
  /// without wall-clock waits.
  std::function<void(std::uint64_t)> sleep_fn;
  /// Fault injection: while non-null and non-zero, each write attempt
  /// decrements the counter and fails with a synthesized kIoError instead
  /// of touching the filesystem (--inject-ckpt-fail / --inject-spill-fail).
  std::size_t* inject_io_failures = nullptr;
  /// Optional metrics counter ("checkpoint.retries" / "spill.write_retries")
  /// bumped once per retry actually performed.
  obs::Counter* retries = nullptr;
};

/// Runs `attempt` under the bounded-backoff policy above: non-kIoError
/// results return immediately, kIoError is retried until the attempt budget
/// is spent. Shared by checkpoint and spill-shard commits.
Status write_with_retry(const std::function<Status()>& attempt,
                        const CheckpointRetryPolicy& policy);

/// write_checkpoint under the bounded-backoff policy (injection included).
Status write_checkpoint_with_retry(const std::string& path,
                                   const Checkpoint& ckpt,
                                   const CheckpointRetryPolicy& policy = {});

/// Reads and verifies a snapshot. kIoError when the file cannot be opened;
/// kCheckpointInvalid for bad magic, unknown version, truncation, or a CRC
/// mismatch (message says which).
Result<Checkpoint> try_read_checkpoint(const std::string& path);

/// CRC-32 (IEEE, poly 0xEDB88320), exposed for tests.
std::uint32_t crc32_bytes(const void* data, std::size_t size,
                          std::uint32_t seed = 0);

}  // namespace nullgraph
