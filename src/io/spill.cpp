#include "io/spill.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "io/graph_io.hpp"

namespace nullgraph {

namespace {

constexpr std::array<unsigned char, 8> kShardMagic = {'N', 'G', 'S', 'H',
                                                      'R', 'D', '\0', '\1'};
// magic + version + shard_index + shard_count + header CRC.
constexpr std::size_t kShardHeaderSize = 8 + 4 + 8 + 8 + 4;

Status corrupt(const std::string& why, const std::string& path) {
  return Status(StatusCode::kShardCorrupt, why + ": " + path);
}

void append_u32(std::string& out, std::uint32_t value) {
  out.append(reinterpret_cast<const char*>(&value), sizeof(value));
}

void append_u64(std::string& out, std::uint64_t value) {
  out.append(reinterpret_cast<const char*>(&value), sizeof(value));
}

/// Best-effort directory fsync so the rename that commits a shard is
/// itself durable. Filesystems that reject fsync on a directory fd (or
/// platforms without O_DIRECTORY semantics) degrade to the file-level
/// fsync the writer already did, which is the checkpoint layer's contract.
void sync_directory(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return;
  (void)::fsync(fd);  // best-effort by design, see above
  (void)::close(fd);
}

bool read_exact(std::FILE* file, void* out, std::size_t size) {
  return std::fread(out, 1, size, file) == size;
}

}  // namespace

std::string manifest_path(const std::string& dir) {
  return dir + "/manifest.ngm";
}

std::string shard_path(const std::string& dir, std::uint64_t shard_index) {
  char name[32];
  std::snprintf(name, sizeof(name), "shard-%06llu.ngsh",
                static_cast<unsigned long long>(shard_index));
  return dir + "/" + name;
}

Status ensure_spill_dir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0) return Status::Ok();
  if (errno == EEXIST) {
    struct stat st{};
    if (::stat(dir.c_str(), &st) == 0 && S_ISDIR(st.st_mode))
      return Status::Ok();
    return Status(StatusCode::kIoError,
                  "spill path exists but is not a directory: " + dir);
  }
  return Status(StatusCode::kIoError, "cannot create spill directory: " + dir);
}

Status write_shard_manifest(const std::string& dir,
                            const ShardManifest& manifest) {
  std::ostringstream body;
  body << "ngspill 1\n"
       << "seed " << manifest.seed << '\n'
       << "edges_per_task " << manifest.edges_per_task << '\n'
       << "shards " << manifest.shard_count << '\n'
       << "prob_method " << manifest.probability_method << '\n'
       << "refine " << manifest.refine_iterations << '\n'
       << "classes " << manifest.classes.size() << '\n';
  for (const auto& [degree, count] : manifest.classes)
    body << degree << ' ' << count << '\n';
  body << "end\n";
  if (Status s = write_text_file_atomic(manifest_path(dir), body.str());
      !s.ok())
    return s;
  sync_directory(dir);
  return Status::Ok();
}

Result<ShardManifest> read_shard_manifest(const std::string& dir) {
  const std::string path = manifest_path(dir);
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr)
    return Status(StatusCode::kIoError, "cannot open manifest: " + path);
  std::string text;
  std::array<char, 4096> chunk;
  std::size_t got;
  while ((got = std::fread(chunk.data(), 1, chunk.size(), file)) > 0)
    text.append(chunk.data(), got);
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error)
    return Status(StatusCode::kIoError, "read error on manifest: " + path);

  std::istringstream in(text);
  std::string keyword;
  std::uint64_t version = 0;
  if (!(in >> keyword >> version) || keyword != "ngspill" || version != 1)
    return corrupt("bad manifest header (want 'ngspill 1')", path);

  ShardManifest manifest;
  std::uint64_t num_classes = 0;
  const auto want = [&](const char* key, std::uint64_t& out) -> bool {
    return static_cast<bool>(in >> keyword >> out) && keyword == key;
  };
  if (!want("seed", manifest.seed) ||
      !want("edges_per_task", manifest.edges_per_task) ||
      !want("shards", manifest.shard_count) ||
      !want("prob_method", manifest.probability_method) ||
      !want("refine", manifest.refine_iterations) ||
      !want("classes", num_classes))
    return corrupt("malformed manifest field", path);
  manifest.classes.reserve(num_classes);
  for (std::uint64_t i = 0; i < num_classes; ++i) {
    std::uint64_t degree = 0, count = 0;
    if (!(in >> degree >> count))
      return corrupt("truncated manifest class table", path);
    manifest.classes.emplace_back(degree, count);
  }
  if (!(in >> keyword) || keyword != "end")
    return corrupt("manifest missing end marker (torn write?)", path);
  if (manifest.shard_count == 0)
    return corrupt("manifest declares zero shards", path);
  return manifest;
}

Status write_spill_shard(const std::string& dir, std::uint64_t shard_index,
                         std::uint64_t shard_count, const EdgeList& edges,
                         const CheckpointRetryPolicy& retry,
                         SpillWriteStats* stats) {
  const std::string path = shard_path(dir, shard_index);
  const std::string tmp = path + ".tmp";

  const auto attempt = [&]() -> Status {
    SpillWriteStats written;
    std::FILE* file = std::fopen(tmp.c_str(), "wb");
    if (file == nullptr)
      return Status(StatusCode::kIoError,
                    "cannot open shard temp file: " + tmp);

    // Header: the CRC covers the index/count fields only; blocks carry
    // their own CRCs, so validation can stream with bounded memory.
    std::string header(reinterpret_cast<const char*>(kShardMagic.data()),
                       kShardMagic.size());
    append_u32(header, kSpillShardVersion);
    const std::size_t covered_from = header.size();
    append_u64(header, shard_index);
    append_u64(header, shard_count);
    append_u32(header, crc32_bytes(header.data() + covered_from,
                                   header.size() - covered_from));

    bool wrote =
        std::fwrite(header.data(), 1, header.size(), file) == header.size();
    written.bytes_written += header.size();

    for (std::size_t at = 0; wrote && at < edges.size();
         at += kSpillBlockEdges) {
      const std::size_t n = std::min(kSpillBlockEdges, edges.size() - at);
      const auto payload_bytes = static_cast<std::uint32_t>(n * sizeof(Edge));
      const auto* payload =
          reinterpret_cast<const unsigned char*>(edges.data() + at);
      std::string frame;
      frame.reserve(8);
      append_u32(frame, payload_bytes);
      append_u32(frame, crc32_bytes(payload, payload_bytes));
      wrote = std::fwrite(frame.data(), 1, frame.size(), file) ==
                  frame.size() &&
              std::fwrite(payload, 1, payload_bytes, file) == payload_bytes;
      written.bytes_written += frame.size() + payload_bytes;
      ++written.blocks;
    }

    // End marker: zero-length frame + CRC-guarded total, so truncation at
    // ANY byte — even between complete blocks — is detectable.
    std::string footer;
    append_u32(footer, 0);
    const auto total = static_cast<std::uint64_t>(edges.size());
    footer.append(reinterpret_cast<const char*>(&total), sizeof(total));
    append_u32(footer, crc32_bytes(&total, sizeof(total)));
    wrote = wrote &&
            std::fwrite(footer.data(), 1, footer.size(), file) ==
                footer.size();
    written.bytes_written += footer.size();

    wrote = wrote && std::fflush(file) == 0 && fsync(fileno(file)) == 0;
    if (std::fclose(file) != 0 || !wrote) {
      std::remove(tmp.c_str());
      return Status(StatusCode::kIoError, "short write to " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      std::remove(tmp.c_str());
      return Status(StatusCode::kIoError,
                    "cannot rename shard into place: " + path);
    }
    sync_directory(dir);
    if (stats != nullptr) *stats = written;
    return Status::Ok();
  };

  Status status = write_with_retry(attempt, retry);
  if (!status.ok() && status.code() == StatusCode::kIoError &&
      status.message().find(path) == std::string::npos &&
      status.message().find(tmp) == std::string::npos)
    return Status(StatusCode::kIoError, status.message() + ": " + path);
  return status;
}

Status read_spill_shard_blocks(
    const std::string& path,
    const std::function<void(const Edge*, std::size_t)>& sink,
    SpillShardInfo* info) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr)
    return Status(StatusCode::kIoError, "cannot open shard: " + path);
  // Single-exit wrapper so every early return closes the handle.
  const auto finish = [&](Status s) {
    std::fclose(file);
    return s;
  };
  const auto torn = [&](const char* what) {
    return finish(std::ferror(file) != 0
                      ? Status(StatusCode::kIoError,
                               std::string("read error (") + what +
                                   "): " + path)
                      : corrupt(std::string("torn shard (truncated ") + what +
                                    ")",
                                path));
  };

  std::array<unsigned char, kShardHeaderSize> header;
  if (!read_exact(file, header.data(), header.size())) return torn("header");
  if (std::memcmp(header.data(), kShardMagic.data(), kShardMagic.size()) != 0)
    return finish(corrupt("bad magic (not a spill shard)", path));
  std::uint32_t version;
  std::memcpy(&version, header.data() + 8, sizeof(version));
  if (version != kSpillShardVersion)
    return finish(corrupt(
        "unsupported shard version " + std::to_string(version), path));
  std::uint32_t header_crc;
  std::memcpy(&header_crc, header.data() + 28, sizeof(header_crc));
  if (crc32_bytes(header.data() + 12, 16) != header_crc)
    return finish(corrupt("header CRC mismatch", path));

  SpillShardInfo parsed;
  std::memcpy(&parsed.shard_index, header.data() + 12, 8);
  std::memcpy(&parsed.shard_count, header.data() + 20, 8);
  parsed.file_bytes = header.size();

  constexpr std::size_t kMaxPayload = kSpillBlockEdges * sizeof(Edge);
  std::vector<Edge> block(kSpillBlockEdges);
  while (true) {
    std::uint32_t payload_bytes;
    if (!read_exact(file, &payload_bytes, sizeof(payload_bytes)))
      return torn("frame length");
    parsed.file_bytes += sizeof(payload_bytes);
    if (payload_bytes == 0) break;  // end marker follows
    if (payload_bytes % sizeof(Edge) != 0 || payload_bytes > kMaxPayload)
      return finish(corrupt("implausible frame length " +
                                std::to_string(payload_bytes),
                            path));
    std::uint32_t stored_crc;
    if (!read_exact(file, &stored_crc, sizeof(stored_crc)))
      return torn("frame CRC");
    if (!read_exact(file, block.data(), payload_bytes))
      return torn("block payload");
    parsed.file_bytes += sizeof(stored_crc) + payload_bytes;
    if (crc32_bytes(block.data(), payload_bytes) != stored_crc)
      return finish(corrupt("block CRC mismatch at edge " +
                                std::to_string(parsed.edge_count),
                            path));
    const std::size_t n = payload_bytes / sizeof(Edge);
    parsed.edge_count += n;
    if (sink) sink(block.data(), n);
  }

  std::uint64_t declared_count;
  std::uint32_t footer_crc;
  if (!read_exact(file, &declared_count, sizeof(declared_count)) ||
      !read_exact(file, &footer_crc, sizeof(footer_crc)))
    return torn("footer");
  parsed.file_bytes += sizeof(declared_count) + sizeof(footer_crc);
  if (crc32_bytes(&declared_count, sizeof(declared_count)) != footer_crc)
    return finish(corrupt("footer CRC mismatch", path));
  if (declared_count != parsed.edge_count)
    return finish(corrupt("edge count mismatch (footer says " +
                              std::to_string(declared_count) + ", frames held " +
                              std::to_string(parsed.edge_count) + ")",
                          path));
  unsigned char extra;
  if (std::fread(&extra, 1, 1, file) == 1)
    return finish(corrupt("trailing bytes after end marker", path));
  if (std::ferror(file) != 0)
    return finish(Status(StatusCode::kIoError,
                         "read error (trailing check): " + path));
  if (info != nullptr) *info = parsed;
  return finish(Status::Ok());
}

Result<EdgeList> read_spill_shard(const std::string& path) {
  EdgeList edges;
  Status s = read_spill_shard_blocks(
      path,
      [&](const Edge* block, std::size_t n) {
        edges.insert(edges.end(), block, block + n);
      },
      nullptr);
  if (!s.ok()) return s;
  return edges;
}

Status validate_spill_shard(const std::string& path,
                            std::uint64_t shard_index,
                            std::uint64_t shard_count,
                            SpillShardInfo* info) {
  SpillShardInfo parsed;
  if (Status s = read_spill_shard_blocks(path, nullptr, &parsed); !s.ok())
    return s;
  if (parsed.shard_index != shard_index || parsed.shard_count != shard_count)
    return corrupt("shard header names shard " +
                       std::to_string(parsed.shard_index) + "/" +
                       std::to_string(parsed.shard_count) + ", expected " +
                       std::to_string(shard_index) + "/" +
                       std::to_string(shard_count),
                   path);
  if (info != nullptr) *info = parsed;
  return Status::Ok();
}

}  // namespace nullgraph
