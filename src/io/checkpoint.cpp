#include "io/checkpoint.hpp"

#include <unistd.h>

#include <array>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace nullgraph {

namespace {

constexpr std::array<unsigned char, 8> kMagic = {'N', 'G', 'C', 'K',
                                                 'P', 'T', '\0', '\1'};
constexpr std::size_t kHeaderFields = 6;  // u64s between version and edges

void put_u32(std::vector<unsigned char>& out, std::uint32_t value) {
  unsigned char bytes[sizeof(value)];
  std::memcpy(bytes, &value, sizeof(value));
  out.insert(out.end(), bytes, bytes + sizeof(value));
}

void put_u64(std::vector<unsigned char>& out, std::uint64_t value) {
  unsigned char bytes[sizeof(value)];
  std::memcpy(bytes, &value, sizeof(value));
  out.insert(out.end(), bytes, bytes + sizeof(value));
}

std::uint64_t get_u64(const unsigned char* at) {
  std::uint64_t value;
  std::memcpy(&value, at, sizeof(value));
  return value;
}

Status invalid(const std::string& why) {
  return Status(StatusCode::kCheckpointInvalid, why);
}

}  // namespace

std::uint32_t crc32_bytes(const void* data, std::size_t size,
                          std::uint32_t seed) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = ~seed;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i)
    crc = table[(crc ^ bytes[i]) & 0xffu] ^ (crc >> 8);
  return ~crc;
}

Status write_checkpoint(const std::string& path, const Checkpoint& ckpt) {
  // Serialize the whole snapshot in memory first (checkpoints are taken at
  // iteration boundaries of runs whose edge list already fits in memory, so
  // one more copy is cheap next to the table the swap phase keeps).
  std::vector<unsigned char> blob;
  blob.reserve(64 + ckpt.edges.size() * sizeof(Edge) + 4);
  blob.insert(blob.end(), kMagic.begin(), kMagic.end());
  put_u32(blob, kCheckpointVersion);
  const std::size_t covered_from = blob.size();  // CRC covers from here on
  put_u64(blob, ckpt.swap_seed);
  put_u64(blob, ckpt.total_iterations);
  put_u64(blob, ckpt.completed_iterations);
  put_u64(blob, ckpt.chain_state);
  put_u64(blob, ckpt.degree_fingerprint);
  put_u64(blob, static_cast<std::uint64_t>(ckpt.edges.size()));
  if (!ckpt.edges.empty()) {
    const auto* edge_bytes =
        reinterpret_cast<const unsigned char*>(ckpt.edges.data());
    blob.insert(blob.end(), edge_bytes,
                edge_bytes + ckpt.edges.size() * sizeof(Edge));
  }
  put_u32(blob, crc32_bytes(blob.data() + covered_from,
                            blob.size() - covered_from));

  // Crash-consistent commit: temp file, flush, fsync, rename.
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr)
    return Status(StatusCode::kIoError,
                  "cannot open checkpoint temp file: " + tmp);
  const bool wrote =
      std::fwrite(blob.data(), 1, blob.size(), file) == blob.size() &&
      std::fflush(file) == 0 && fsync(fileno(file)) == 0;
  if (std::fclose(file) != 0 || !wrote) {
    std::remove(tmp.c_str());
    return Status(StatusCode::kIoError, "short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status(StatusCode::kIoError,
                  "cannot rename checkpoint into place: " + path);
  }
  return Status::Ok();
}

Status write_with_retry(const std::function<Status()>& attempt,
                        const CheckpointRetryPolicy& policy) {
  const auto guarded_attempt = [&]() -> Status {
    if (policy.inject_io_failures != nullptr && *policy.inject_io_failures > 0) {
      --*policy.inject_io_failures;
      return Status(StatusCode::kIoError,
                    "injected write failure (ENOSPC/EIO drill)");
    }
    return attempt();
  };
  const std::size_t attempts = policy.attempts == 0 ? 1 : policy.attempts;
  Status status = guarded_attempt();
  for (std::size_t retry = 1;
       retry < attempts && !status.ok() &&
       status.code() == StatusCode::kIoError;
       ++retry) {
    // Exponential backoff: ENOSPC/EIO are often transient (log rotation, a
    // competing writer) but a device that stays broken must not stall the
    // phase the write is protecting — hence the bounded attempt budget.
    const std::uint64_t delay_ms = policy.backoff_ms << (retry - 1);
    if (policy.sleep_fn) {
      policy.sleep_fn(delay_ms);
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    }
    if (policy.retries != nullptr) policy.retries->add(1);
    status = guarded_attempt();
  }
  return status;
}

Status write_checkpoint_with_retry(const std::string& path,
                                   const Checkpoint& ckpt,
                                   const CheckpointRetryPolicy& policy) {
  Status status = write_with_retry(
      [&]() -> Status { return write_checkpoint(path, ckpt); }, policy);
  if (!status.ok() && status.code() == StatusCode::kIoError &&
      status.message().find(path) == std::string::npos) {
    // Injected failures carry no path; attach it so reports name the file.
    return Status(StatusCode::kIoError, status.message() + ": " + path);
  }
  return status;
}

Result<Checkpoint> try_read_checkpoint(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr)
    return Status(StatusCode::kIoError, "cannot open checkpoint: " + path);
  std::vector<unsigned char> blob;
  std::array<unsigned char, 1 << 16> chunk;
  std::size_t got;
  while ((got = std::fread(chunk.data(), 1, chunk.size(), file)) > 0)
    blob.insert(blob.end(), chunk.data(), chunk.data() + got);
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error)
    return Status(StatusCode::kIoError, "read error on checkpoint: " + path);

  constexpr std::size_t header_size =
      kMagic.size() + sizeof(std::uint32_t) + kHeaderFields * sizeof(std::uint64_t);
  if (blob.size() < header_size + sizeof(std::uint32_t))
    return invalid("truncated checkpoint (shorter than header): " + path);
  if (std::memcmp(blob.data(), kMagic.data(), kMagic.size()) != 0)
    return invalid("bad magic (not a checkpoint file): " + path);
  std::uint32_t version;
  std::memcpy(&version, blob.data() + kMagic.size(), sizeof(version));
  if (version != kCheckpointVersion)
    return invalid("unsupported checkpoint version " +
                   std::to_string(version) + ": " + path);

  const std::size_t covered_from = kMagic.size() + sizeof(version);
  const unsigned char* fields = blob.data() + covered_from;
  Checkpoint ckpt;
  ckpt.swap_seed = get_u64(fields + 0 * 8);
  ckpt.total_iterations = get_u64(fields + 1 * 8);
  ckpt.completed_iterations = get_u64(fields + 2 * 8);
  ckpt.chain_state = get_u64(fields + 3 * 8);
  ckpt.degree_fingerprint = get_u64(fields + 4 * 8);
  const std::uint64_t edge_count = get_u64(fields + 5 * 8);

  const std::uint64_t expected_size =
      header_size + edge_count * sizeof(Edge) + sizeof(std::uint32_t);
  if (edge_count > (blob.size() / sizeof(Edge)) ||
      blob.size() != expected_size)
    return invalid("payload length mismatch (" + std::to_string(blob.size()) +
                   " bytes for " + std::to_string(edge_count) +
                   " edges): " + path);

  const std::size_t covered_size =
      blob.size() - covered_from - sizeof(std::uint32_t);
  std::uint32_t stored_crc;
  std::memcpy(&stored_crc, blob.data() + blob.size() - sizeof(stored_crc),
              sizeof(stored_crc));
  if (crc32_bytes(blob.data() + covered_from, covered_size) != stored_crc)
    return invalid("CRC mismatch (corrupted checkpoint): " + path);

  ckpt.edges.resize(edge_count);
  if (edge_count > 0)
    std::memcpy(ckpt.edges.data(), blob.data() + header_size,
                edge_count * sizeof(Edge));
  return ckpt;
}

}  // namespace nullgraph
