#include "io/shard_merge.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <queue>
#include <vector>

#include "ds/edge.hpp"
#include "io/spill.hpp"

namespace nullgraph {

namespace {

/// Buffered reader over one sorted run file of raw u64 keys.
class RunReader {
 public:
  explicit RunReader(std::FILE* file) : file_(file) {}

  bool next(std::uint64_t& key) {
    if (at_ == filled_) {
      filled_ = std::fread(buffer_.data(), sizeof(std::uint64_t),
                           buffer_.size(), file_);
      at_ = 0;
      if (filled_ == 0) return false;
    }
    key = buffer_[at_++];
    return true;
  }

  bool failed() const { return std::ferror(file_) != 0; }

 private:
  std::FILE* file_;
  std::vector<std::uint64_t> buffer_ = std::vector<std::uint64_t>(4096);
  std::size_t at_ = 0;
  std::size_t filled_ = 0;
};

std::string run_path(const std::string& dir, std::uint64_t shard) {
  return shard_path(dir, shard) + ".run";
}

void remove_runs(const std::string& dir, std::uint64_t shard_count) {
  for (std::uint64_t s = 0; s < shard_count; ++s)
    std::remove(run_path(dir, s).c_str());
}

}  // namespace

Status concat_shards_to_text_file(const std::string& dir,
                                  std::uint64_t shard_count,
                                  const std::string& path,
                                  std::uint64_t* edges_out) {
  const std::string tmp = path + ".tmp";
  std::FILE* out = std::fopen(tmp.c_str(), "w");
  if (out == nullptr)
    return Status(StatusCode::kIoError, "cannot open temp output: " + tmp);

  bool wrote = true;
  std::uint64_t total = 0;
  Status status = Status::Ok();
  for (std::uint64_t s = 0; s < shard_count && wrote && status.ok(); ++s) {
    status = read_spill_shard_blocks(
        shard_path(dir, s),
        [&](const Edge* block, std::size_t n) {
          for (std::size_t i = 0; i < n && wrote; ++i)
            wrote = std::fprintf(out, "%u %u\n", block[i].u, block[i].v) >= 0;
          total += n;
        },
        nullptr);
  }
  wrote = wrote && std::fflush(out) == 0 && fsync(fileno(out)) == 0;
  if (std::fclose(out) != 0 || !wrote) {
    std::remove(tmp.c_str());
    return status.ok()
               ? Status(StatusCode::kIoError, "short write to " + tmp)
               : status;
  }
  if (!status.ok()) {
    std::remove(tmp.c_str());
    return status;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status(StatusCode::kIoError,
                  "cannot rename output into place: " + path);
  }
  if (edges_out != nullptr) *edges_out = total;
  return Status::Ok();
}

Result<EdgeList> load_all_shards(const std::string& dir,
                                 std::uint64_t shard_count) {
  EdgeList edges;
  for (std::uint64_t s = 0; s < shard_count; ++s) {
    Status status = read_spill_shard_blocks(
        shard_path(dir, s),
        [&](const Edge* block, std::size_t n) {
          edges.insert(edges.end(), block, block + n);
        },
        nullptr);
    if (!status.ok()) return status;
  }
  return edges;
}

Result<std::uint64_t> count_shard_edges(const std::string& dir,
                                        std::uint64_t shard_count) {
  std::uint64_t total = 0;
  for (std::uint64_t s = 0; s < shard_count; ++s) {
    SpillShardInfo info;
    if (Status status = read_spill_shard_blocks(shard_path(dir, s), nullptr,
                                                &info);
        !status.ok())
      return status;
    total += info.edge_count;
  }
  return total;
}

Result<SimplicityCensus> merged_census_external(const std::string& dir,
                                                std::uint64_t shard_count) {
  SimplicityCensus census;

  // Pass 1: one sorted key run per shard. Memory peaks at one shard's keys
  // — the same bound the spill plan already guarantees for generation.
  for (std::uint64_t s = 0; s < shard_count; ++s) {
    std::vector<std::uint64_t> keys;
    Status status = read_spill_shard_blocks(
        shard_path(dir, s),
        [&](const Edge* block, std::size_t n) {
          for (std::size_t i = 0; i < n; ++i) {
            if (block[i].is_loop())
              ++census.self_loops;
            else
              keys.push_back(block[i].key());
          }
        },
        nullptr);
    if (!status.ok()) {
      remove_runs(dir, s);
      return status;
    }
    std::sort(keys.begin(), keys.end());
    const std::string rp = run_path(dir, s);
    std::FILE* run = std::fopen(rp.c_str(), "wb");
    const bool wrote =
        run != nullptr &&
        std::fwrite(keys.data(), sizeof(std::uint64_t), keys.size(), run) ==
            keys.size();
    if (run != nullptr) std::fclose(run);
    if (!wrote) {
      remove_runs(dir, s + 1);
      return Status(StatusCode::kIoError, "cannot write merge run: " + rp);
    }
  }

  // Pass 2: k-way heap merge over the runs; adjacent equal keys in the
  // merged stream are multi-edges, wherever the copies live.
  std::vector<std::FILE*> files(shard_count, nullptr);
  std::vector<RunReader> readers;
  readers.reserve(shard_count);
  Status status = Status::Ok();
  for (std::uint64_t s = 0; s < shard_count && status.ok(); ++s) {
    files[s] = std::fopen(run_path(dir, s).c_str(), "rb");
    if (files[s] == nullptr)
      status = Status(StatusCode::kIoError,
                      "cannot reopen merge run: " + run_path(dir, s));
    else
      readers.emplace_back(files[s]);
  }
  if (status.ok()) {
    using HeapItem = std::pair<std::uint64_t, std::size_t>;  // key, run
    std::priority_queue<HeapItem, std::vector<HeapItem>,
                        std::greater<HeapItem>>
        heap;
    for (std::size_t s = 0; s < readers.size(); ++s) {
      std::uint64_t key;
      if (readers[s].next(key)) heap.emplace(key, s);
    }
    bool have_prev = false;
    std::uint64_t prev = 0;
    while (!heap.empty()) {
      const auto [key, s] = heap.top();
      heap.pop();
      if (have_prev && key == prev) ++census.multi_edges;
      prev = key;
      have_prev = true;
      std::uint64_t next_key;
      if (readers[s].next(next_key)) heap.emplace(next_key, s);
    }
    for (std::size_t s = 0; s < readers.size() && status.ok(); ++s)
      if (readers[s].failed())
        status = Status(StatusCode::kIoError,
                        "read error on merge run: " + run_path(dir, s));
  }
  for (std::FILE* f : files)
    if (f != nullptr) std::fclose(f);
  remove_runs(dir, shard_count);
  if (!status.ok()) return status;
  return census;
}

}  // namespace nullgraph
