#pragma once
// Plain-text I/O: edge lists ("u v" per line) and degree distributions
// ("degree count" per line). Lines starting with '#' or '%' are comments,
// compatible with SNAP-style downloads.

#include <iosfwd>
#include <string>

#include "ds/degree_distribution.hpp"
#include "ds/edge_list.hpp"

namespace nullgraph {

EdgeList read_edge_list(std::istream& in);
EdgeList read_edge_list_file(const std::string& path);
void write_edge_list(std::ostream& out, const EdgeList& edges);
void write_edge_list_file(const std::string& path, const EdgeList& edges);

DegreeDistribution read_degree_distribution(std::istream& in);
DegreeDistribution read_degree_distribution_file(const std::string& path);
void write_degree_distribution(std::ostream& out,
                               const DegreeDistribution& dist);
void write_degree_distribution_file(const std::string& path,
                                    const DegreeDistribution& dist);

}  // namespace nullgraph
