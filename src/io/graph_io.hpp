#pragma once
// Plain-text I/O: edge lists ("u v" per line) and degree distributions
// ("degree count" per line). Lines starting with '#' or '%' are comments,
// compatible with SNAP-style downloads.
//
// Parsing is strict: every data line must hold exactly two base-10
// unsigned integers (no sign, no trailing tokens) that fit the receiving
// type — anything else is kIoMalformed with the offending line quoted.
// The try_* functions return Result<T>; the legacy signatures wrap them
// and throw StatusError (a std::runtime_error) on failure.

#include <iosfwd>
#include <string>

#include "ds/degree_distribution.hpp"
#include "ds/edge_list.hpp"
#include "robustness/status.hpp"

namespace nullgraph {

Result<EdgeList> try_read_edge_list(std::istream& in);
Result<EdgeList> try_read_edge_list_file(const std::string& path);
Result<DegreeDistribution> try_read_degree_distribution(std::istream& in);
Result<DegreeDistribution> try_read_degree_distribution_file(
    const std::string& path);

EdgeList read_edge_list(std::istream& in);
EdgeList read_edge_list_file(const std::string& path);
void write_edge_list(std::ostream& out, const EdgeList& edges);
void write_edge_list_file(const std::string& path, const EdgeList& edges);

/// Crash-consistent edge-list write for service outputs: write-to-temp,
/// flush, fsync, rename — the same commit discipline as checkpoints, so a
/// SIGKILLed daemon can never leave a torn output for a client (or a
/// restart) to pick up. kIoError on any filesystem failure, including
/// short writes (ENOSPC no longer truncates silently).
/// write_edge_list_file is the throwing wrapper over the same path.
Status write_edge_list_file_atomic(const std::string& path,
                                   const EdgeList& edges);

/// Atomic whole-file text write (temp + fsync + rename) for small artifacts
/// — run reports, manifests, sidecars. Keeps raw stdio confined to src/io/
/// (the io-confinement lint); kIoError on any filesystem failure.
Status write_text_file_atomic(const std::string& path, const std::string& body);

DegreeDistribution read_degree_distribution(std::istream& in);
DegreeDistribution read_degree_distribution_file(const std::string& path);
void write_degree_distribution(std::ostream& out,
                               const DegreeDistribution& dist);
void write_degree_distribution_file(const std::string& path,
                                    const DegreeDistribution& dist);

}  // namespace nullgraph
