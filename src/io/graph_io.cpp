#include "io/graph_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace nullgraph {

namespace {

bool skip_line(const std::string& line) {
  for (char c : line) {
    if (c == ' ' || c == '\t') continue;
    return c == '#' || c == '%';
  }
  return true;  // blank
}

std::ifstream open_input(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  return in;
}

std::ofstream open_output(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  return out;
}

}  // namespace

EdgeList read_edge_list(std::istream& in) {
  EdgeList edges;
  std::string line;
  while (std::getline(in, line)) {
    if (skip_line(line)) continue;
    std::istringstream fields(line);
    std::uint64_t u = 0, v = 0;
    if (!(fields >> u >> v))
      throw std::runtime_error("malformed edge line: " + line);
    edges.push_back({static_cast<VertexId>(u), static_cast<VertexId>(v)});
  }
  return edges;
}

EdgeList read_edge_list_file(const std::string& path) {
  auto in = open_input(path);
  return read_edge_list(in);
}

void write_edge_list(std::ostream& out, const EdgeList& edges) {
  for (const Edge& e : edges) out << e.u << ' ' << e.v << '\n';
}

void write_edge_list_file(const std::string& path, const EdgeList& edges) {
  auto out = open_output(path);
  write_edge_list(out, edges);
}

DegreeDistribution read_degree_distribution(std::istream& in) {
  std::vector<DegreeClass> classes;
  std::string line;
  while (std::getline(in, line)) {
    if (skip_line(line)) continue;
    std::istringstream fields(line);
    std::uint64_t degree = 0, count = 0;
    if (!(fields >> degree >> count))
      throw std::runtime_error("malformed distribution line: " + line);
    classes.push_back({degree, count});
  }
  return DegreeDistribution(std::move(classes));
}

DegreeDistribution read_degree_distribution_file(const std::string& path) {
  auto in = open_input(path);
  return read_degree_distribution(in);
}

void write_degree_distribution(std::ostream& out,
                               const DegreeDistribution& dist) {
  for (const DegreeClass& c : dist.classes())
    out << c.degree << ' ' << c.count << '\n';
}

void write_degree_distribution_file(const std::string& path,
                                    const DegreeDistribution& dist) {
  auto out = open_output(path);
  write_degree_distribution(out, dist);
}

}  // namespace nullgraph
