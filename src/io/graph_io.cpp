#include "io/graph_io.hpp"

#include <unistd.h>

#include <charconv>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>

namespace nullgraph {

namespace {

bool skip_line(const std::string& line) {
  for (char c : line) {
    if (c == ' ' || c == '\t') continue;
    return c == '#' || c == '%';
  }
  return true;  // blank
}

/// Splits a data line into exactly two unsigned integers <= `max_value`.
/// Rejects signs (so "-1" cannot wrap into a huge unsigned id), non-digit
/// tokens, and trailing garbage ("1 2 3").
Status parse_pair(const std::string& line, std::uint64_t max_value,
                  std::uint64_t& a, std::uint64_t& b) {
  const char* p = line.data();
  const char* end = p + line.size();
  std::uint64_t* const out[2] = {&a, &b};
  int fields = 0;
  while (true) {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\r')) ++p;
    if (p == end) break;
    if (fields == 2)
      return Status(StatusCode::kIoMalformed,
                    "trailing tokens on line: " + line);
    if (*p < '0' || *p > '9')
      return Status(StatusCode::kIoMalformed,
                    (*p == '-' ? "negative value on line: "
                               : "non-numeric token on line: ") +
                        line);
    const auto [next, ec] = std::from_chars(p, end, *out[fields]);
    if (ec == std::errc::result_out_of_range || *out[fields] > max_value)
      return Status(StatusCode::kIoMalformed,
                    "value out of range on line: " + line);
    if (ec != std::errc())
      return Status(StatusCode::kIoMalformed, "malformed line: " + line);
    p = next;
    if (p < end && *p != ' ' && *p != '\t' && *p != '\r')
      return Status(StatusCode::kIoMalformed,
                    "non-numeric token on line: " + line);
    ++fields;
  }
  if (fields != 2)
    return Status(StatusCode::kIoMalformed,
                  "expected two fields on line: " + line);
  return Status::Ok();
}

Status open_input(const std::string& path, std::ifstream& in) {
  in.open(path);
  if (!in)
    return Status(StatusCode::kIoError, "cannot open for reading: " + path);
  return Status::Ok();
}

std::ofstream open_output(const std::string& path) {
  std::ofstream out(path);
  if (!out)
    throw StatusError(
        Status(StatusCode::kIoError, "cannot open for writing: " + path));
  return out;
}

/// Shared atomic-commit tail: fflush + fsync + fclose + rename, cleaning up
/// the temp file on any failure. `wrote` carries the caller's payload
/// write success so a short write (ENOSPC) is surfaced, never committed.
Status commit_temp_file(std::FILE* file, bool wrote, const std::string& tmp,
                        const std::string& path) {
  wrote = wrote && std::fflush(file) == 0 && fsync(fileno(file)) == 0;
  if (std::fclose(file) != 0 || !wrote) {
    std::remove(tmp.c_str());
    return Status(StatusCode::kIoError, "short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status(StatusCode::kIoError,
                  "cannot rename output into place: " + path);
  }
  return Status::Ok();
}

}  // namespace

Result<EdgeList> try_read_edge_list(std::istream& in) {
  EdgeList edges;
  std::string line;
  while (std::getline(in, line)) {
    if (skip_line(line)) continue;
    std::uint64_t u = 0, v = 0;
    if (Status s = parse_pair(line, std::numeric_limits<VertexId>::max(), u, v);
        !s.ok())
      return s;
    edges.push_back({static_cast<VertexId>(u), static_cast<VertexId>(v)});
  }
  return edges;
}

Result<EdgeList> try_read_edge_list_file(const std::string& path) {
  std::ifstream in;
  if (Status s = open_input(path, in); !s.ok()) return s;
  return try_read_edge_list(in);
}

EdgeList read_edge_list(std::istream& in) {
  return try_read_edge_list(in).take();
}

EdgeList read_edge_list_file(const std::string& path) {
  return try_read_edge_list_file(path).take();
}

void write_edge_list(std::ostream& out, const EdgeList& edges) {
  for (const Edge& e : edges) out << e.u << ' ' << e.v << '\n';
}

void write_edge_list_file(const std::string& path, const EdgeList& edges) {
  // Historically an unchecked ofstream: ENOSPC mid-write produced a
  // silently truncated output with exit 0. Route the legacy API through
  // the atomic writer so a short write is a typed kIoError and a partial
  // file can never land under the final name.
  if (Status s = write_edge_list_file_atomic(path, edges); !s.ok())
    throw StatusError(s);
}

Status write_edge_list_file_atomic(const std::string& path,
                                   const EdgeList& edges) {
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "w");
  if (file == nullptr)
    return Status(StatusCode::kIoError, "cannot open temp output: " + tmp);
  bool wrote = true;
  for (const Edge& e : edges) {
    if (std::fprintf(file, "%u %u\n", e.u, e.v) < 0) {
      wrote = false;
      break;
    }
  }
  return commit_temp_file(file, wrote, tmp, path);
}

Status write_text_file_atomic(const std::string& path,
                              const std::string& body) {
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "w");
  if (file == nullptr)
    return Status(StatusCode::kIoError, "cannot open temp output: " + tmp);
  const bool wrote =
      std::fwrite(body.data(), 1, body.size(), file) == body.size();
  return commit_temp_file(file, wrote, tmp, path);
}

Result<DegreeDistribution> try_read_degree_distribution(std::istream& in) {
  std::vector<DegreeClass> classes;
  std::string line;
  while (std::getline(in, line)) {
    if (skip_line(line)) continue;
    std::uint64_t degree = 0, count = 0;
    if (Status s = parse_pair(line, std::numeric_limits<std::uint64_t>::max(),
                              degree, count);
        !s.ok())
      return s;
    classes.push_back({degree, count});
  }
  try {
    return DegreeDistribution(std::move(classes));
  } catch (const std::invalid_argument& error) {
    // Odd stub total and friends: surface as typed input rejection.
    return Status(StatusCode::kNotGraphical, error.what());
  }
}

Result<DegreeDistribution> try_read_degree_distribution_file(
    const std::string& path) {
  std::ifstream in;
  if (Status s = open_input(path, in); !s.ok()) return s;
  return try_read_degree_distribution(in);
}

DegreeDistribution read_degree_distribution(std::istream& in) {
  return try_read_degree_distribution(in).take();
}

DegreeDistribution read_degree_distribution_file(const std::string& path) {
  return try_read_degree_distribution_file(path).take();
}

void write_degree_distribution(std::ostream& out,
                               const DegreeDistribution& dist) {
  for (const DegreeClass& c : dist.classes())
    out << c.degree << ' ' << c.count << '\n';
}

void write_degree_distribution_file(const std::string& path,
                                    const DegreeDistribution& dist) {
  auto out = open_output(path);
  write_degree_distribution(out, dist);
}

}  // namespace nullgraph
