#pragma once
// Shard merging: how a spill directory becomes a graph again.
//
// Two merge modes, both preserving determinism:
//
//   concat_* — ORDER-PRESERVING merge. Shards partition the canonical
//     edge-skip emission order into contiguous ranges (src/skip/
//     sharded_skip.hpp), so concatenating shard 0..S-1 reproduces the
//     in-core pipeline's edge list bit-for-bit. The text variant streams
//     block-at-a-time with bounded memory, which is THE out-of-core exit
//     path: a graph larger than RAM goes shard files -> output file
//     without ever materializing the full edge list.
//
//   merged_census_external — k-way merge by edge KEY. Each shard's keys
//     are sorted and spilled as a run file, then a k-way heap merge counts
//     duplicate keys across shards with O(shards * buffer) memory. Used by
//     `nullgraph fsck --deep` to prove the shard set is globally simple
//     (cross-shard duplicates are impossible when shards partition the
//     Bernoulli pair space — this check catches a directory assembled from
//     mismatched runs, where that assumption no longer holds).

#include <cstdint>
#include <string>

#include "ds/edge_list.hpp"
#include "robustness/status.hpp"

namespace nullgraph {

/// Streams shards 0..shard_count-1 of `dir`, in order, into a plain-text
/// edge list at `path` ("u v" lines, identical bytes to
/// write_edge_list_file_atomic of the concatenated list). Atomic commit;
/// bounded memory (one spill block at a time). Error taxonomy follows
/// read_spill_shard_blocks (kShardCorrupt names the bad shard).
Status concat_shards_to_text_file(const std::string& dir,
                                  std::uint64_t shard_count,
                                  const std::string& path,
                                  std::uint64_t* edges_out = nullptr);

/// In-memory order-preserving merge, for runs whose merged list fits after
/// all (spill taken under a ceiling that later rose, tests, fsck).
Result<EdgeList> load_all_shards(const std::string& dir,
                                 std::uint64_t shard_count);

/// Total edges across all shards without materializing any of them.
Result<std::uint64_t> count_shard_edges(const std::string& dir,
                                        std::uint64_t shard_count);

/// Cross-shard simplicity census via external k-way merge (see header
/// comment). Temp run files live under `dir` and are removed on every
/// path out.
Result<SimplicityCensus> merged_census_external(const std::string& dir,
                                                std::uint64_t shard_count);

}  // namespace nullgraph
