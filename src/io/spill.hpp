#pragma once
// Durable spill shards: the out-of-core generation substrate.
//
// A spill directory holds one run's partial results as independent shard
// files plus a manifest describing how to regenerate any of them:
//
//   <dir>/manifest.ngm      text manifest (versioned key-value + classes)
//   <dir>/shard-000000.ngsh CRC-framed binary edge shards, one per shard
//   <dir>/shard-000001.ngsh ...
//
// Shard file layout (native-endian, like checkpoints):
//
//   offset  size  field
//   0       8     magic "NGSHRD\0\1"
//   8       4     version (u32, currently 1)
//   12      8     shard_index (u64)
//   20      8     shard_count (u64)
//   28      4     CRC-32 over bytes [12, 28)
//   then framed blocks until the end marker:
//   +0      4     payload_bytes (u32, multiple of sizeof(Edge), != 0)
//   +4      4     CRC-32 of the payload
//   +8      ..    payload (edges, ds/edge.hpp layout)
//   end marker:
//   +0      4     payload_bytes == 0
//   +4      8     total edge count (u64)
//   +12     4     CRC-32 over the count field
//
// Every shard commits atomically: written to "<path>.tmp", flushed,
// fsync'd, renamed (and the directory fsync'd so the rename itself is
// durable). A SIGKILL therefore leaves either a complete, CRC-verifiable
// shard or no shard at all — the reader maps any framing or CRC problem,
// including truncation mid-block, to typed kShardCorrupt, so resume and
// fsck regenerate exactly the shards that need it. The chunk-seeded RNG
// streams (src/skip/) make that regeneration bit-identical.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ds/edge_list.hpp"
#include "io/checkpoint.hpp"
#include "robustness/status.hpp"

namespace nullgraph {

inline constexpr std::uint32_t kSpillShardVersion = 1;

/// Edges per CRC-framed block (256 KiB payloads): big enough to amortize
/// the frame, small enough that torn-write detection is fine-grained.
inline constexpr std::size_t kSpillBlockEdges = std::size_t{1} << 15;

/// Everything needed to regenerate any shard of a spilled run. The degree
/// classes are stored inline so `nullgraph fsck --repair` and `--resume
/// <dir>` need no other input; probability_method / refine_iterations are
/// opaque u64s at this layer (core interprets them).
struct ShardManifest {
  std::uint64_t seed = 0;
  std::uint64_t edges_per_task = 0;
  std::uint64_t shard_count = 0;
  std::uint64_t probability_method = 0;
  std::uint64_t refine_iterations = 0;
  /// (degree, count) per degree class, ascending — the DegreeDistribution.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> classes;
};

/// "<dir>/manifest.ngm" / "<dir>/shard-%06llu.ngsh".
std::string manifest_path(const std::string& dir);
std::string shard_path(const std::string& dir, std::uint64_t shard_index);

/// mkdir -p (one level): ok when the directory already exists.
Status ensure_spill_dir(const std::string& dir);

/// Atomically writes the manifest (same commit discipline as shards).
Status write_shard_manifest(const std::string& dir,
                            const ShardManifest& manifest);

/// Parses "<dir>/manifest.ngm". kIoError when missing/unreadable,
/// kShardCorrupt when present but malformed (a torn manifest means the
/// spill directory is not trustworthy as a whole).
Result<ShardManifest> read_shard_manifest(const std::string& dir);

/// Header fields + totals recovered from one shard file.
struct SpillShardInfo {
  std::uint64_t shard_index = 0;
  std::uint64_t shard_count = 0;
  std::uint64_t edge_count = 0;
  std::uint64_t file_bytes = 0;
};

struct SpillWriteStats {
  std::uint64_t bytes_written = 0;
  std::uint64_t blocks = 0;
};

/// Writes one shard's edges as a CRC-framed file under the bounded-backoff
/// retry policy (each attempt rewrites the temp file from scratch; the
/// policy's injection counter drives --inject-spill-fail). A surfaced
/// kIoError here is fatal to the spill phase: unlike a checkpoint, the
/// shard IS the data.
Status write_spill_shard(const std::string& dir, std::uint64_t shard_index,
                         std::uint64_t shard_count, const EdgeList& edges,
                         const CheckpointRetryPolicy& retry = {},
                         SpillWriteStats* stats = nullptr);

/// Streams one shard's blocks through `sink` (may be null to validate
/// only) with bounded memory, verifying the header CRC and every block
/// CRC on the way. Framing damage of any kind — bad magic, truncation
/// mid-block, CRC mismatch, edge-count disagreement — is kShardCorrupt
/// with the file and failure named; kIoError is reserved for the file
/// being unopenable/unreadable.
Status read_spill_shard_blocks(
    const std::string& path,
    const std::function<void(const Edge*, std::size_t)>& sink,
    SpillShardInfo* info = nullptr);

/// Whole-shard load (one shard fits in memory by construction of the spill
/// plan). Same error taxonomy as read_spill_shard_blocks.
Result<EdgeList> read_spill_shard(const std::string& path);

/// Validation without materializing edges: kOk for a sound shard whose
/// header matches (shard_index, shard_count), kShardCorrupt otherwise.
Status validate_spill_shard(const std::string& path,
                            std::uint64_t shard_index,
                            std::uint64_t shard_count,
                            SpillShardInfo* info = nullptr);

}  // namespace nullgraph
