#include "gen/powerlaw.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/rng.hpp"

namespace nullgraph {

namespace {

std::vector<double> degree_weights(std::uint64_t dmin, std::uint64_t dmax,
                                   double gamma) {
  std::vector<double> weights(dmax - dmin + 1);
  for (std::uint64_t d = dmin; d <= dmax; ++d)
    weights[d - dmin] = std::pow(static_cast<double>(d), -gamma);
  return weights;
}

}  // namespace

DegreeDistribution powerlaw_distribution(const PowerlawParams& params) {
  if (params.dmin == 0 || params.dmin > params.dmax || params.n == 0)
    throw std::invalid_argument("powerlaw_distribution: bad parameters");
  const std::vector<double> weights =
      degree_weights(params.dmin, params.dmax, params.gamma);
  const double total_weight =
      std::accumulate(weights.begin(), weights.end(), 0.0);

  const std::uint64_t reserved = params.force_dmax ? 1 : 0;
  const std::uint64_t to_place = params.n - std::min(params.n, reserved);
  // Largest-remainder apportionment of to_place vertices over the degrees.
  std::vector<std::uint64_t> counts(weights.size(), 0);
  std::vector<std::pair<double, std::size_t>> remainders;
  remainders.reserve(weights.size());
  std::uint64_t placed = 0;
  for (std::size_t k = 0; k < weights.size(); ++k) {
    const double share =
        static_cast<double>(to_place) * weights[k] / total_weight;
    counts[k] = static_cast<std::uint64_t>(share);
    placed += counts[k];
    remainders.emplace_back(share - std::floor(share), k);
  }
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (std::size_t r = 0; placed < to_place && r < remainders.size(); ++r) {
    ++counts[remainders[r].second];
    ++placed;
  }
  if (params.force_dmax) ++counts.back();

  // Even stub total: shift one vertex up a degree (or down, at the edges).
  std::uint64_t stubs = 0;
  for (std::size_t k = 0; k < counts.size(); ++k)
    stubs += counts[k] * (params.dmin + k);
  if (stubs % 2 != 0) {
    bool fixed = false;
    for (std::size_t k = 0; k + 1 < counts.size() && !fixed; ++k) {
      if (counts[k] > 0) {
        --counts[k];
        ++counts[k + 1];
        fixed = true;
      }
    }
    if (!fixed) {
      // Single-degree-class corner: move one vertex down instead.
      for (std::size_t k = counts.size(); k-- > 1 && !fixed;) {
        if (counts[k] > 0) {
          --counts[k];
          ++counts[k - 1];
          fixed = true;
        }
      }
    }
    if (!fixed)
      throw std::invalid_argument(
          "powerlaw_distribution: cannot even the stub total");
  }

  auto build = [&]() {
    std::vector<DegreeClass> classes;
    for (std::size_t k = 0; k < counts.size(); ++k)
      if (counts[k] > 0) classes.push_back({params.dmin + k, counts[k]});
    return DegreeDistribution(std::move(classes));
  };

  DegreeDistribution dist = build();
  if (params.make_graphical) {
    // Heavy tails can fail Erdős–Gallai; demote top-degree vertices two
    // steps at a time (parity preserved) until the sequence is graphical.
    int guard = 1 << 20;
    while (!dist.is_graphical() && guard-- > 0) {
      std::size_t top = counts.size();
      while (top-- > 0 && counts[top] == 0) {
      }
      if (top == static_cast<std::size_t>(-1) || top < 2) break;
      --counts[top];
      ++counts[top - 2];
      dist = build();
    }
  }
  return dist;
}

double fit_powerlaw_gamma(std::uint64_t n, double target_avg_degree,
                          std::uint64_t dmin, std::uint64_t dmax) {
  (void)n;  // the continuous average is n-independent
  auto average = [&](double gamma) {
    double num = 0.0, den = 0.0;
    for (std::uint64_t d = dmin; d <= dmax; ++d) {
      const double w = std::pow(static_cast<double>(d), -gamma);
      num += static_cast<double>(d) * w;
      den += w;
    }
    return num / den;
  };
  double lo = 1.01, hi = 6.0;
  if (target_avg_degree >= average(lo)) return lo;
  if (target_avg_degree <= average(hi)) return hi;
  for (int iter = 0; iter < 80; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (average(mid) > target_avg_degree)
      lo = mid;  // average decreases with gamma
    else
      hi = mid;
  }
  return 0.5 * (lo + hi);
}

std::vector<std::uint64_t> sample_powerlaw_sequence(std::uint64_t n,
                                                    double gamma,
                                                    std::uint64_t dmin,
                                                    std::uint64_t dmax,
                                                    std::uint64_t seed) {
  const std::vector<double> weights = degree_weights(dmin, dmax, gamma);
  std::vector<double> cumulative(weights.size());
  std::partial_sum(weights.begin(), weights.end(), cumulative.begin());
  const double total = cumulative.back();
  std::vector<std::uint64_t> degrees(n);
  Xoshiro256ss rng(seed);
  std::uint64_t sum = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    const double u = rng.uniform() * total;
    const auto it =
        std::lower_bound(cumulative.begin(), cumulative.end(), u);
    degrees[i] = dmin + static_cast<std::uint64_t>(it - cumulative.begin());
    sum += degrees[i];
  }
  if (sum % 2 != 0 && n > 0) {
    if (degrees[0] < dmax)
      ++degrees[0];
    else
      --degrees[0];
  }
  return degrees;
}

}  // namespace nullgraph
