#include "gen/configuration_model.hpp"

#include "exec/exec.hpp"
#include "permute/permutation.hpp"
#include "util/rng.hpp"

namespace nullgraph {

EdgeList configuration_multigraph(const DegreeDistribution& dist,
                                  std::uint64_t seed,
                                  const RunGovernor* governor) {
  const std::uint64_t stubs = dist.num_stubs();
  std::vector<VertexId> stub_owner(stubs);
  // Stub array: vertex v appears degree(v) times. Classes own contiguous
  // id and stub ranges, so the fill parallelizes per class. The fill and
  // the pairing run ungoverned (a skipped chunk would leave zero-vertex
  // stubs); governance acts through the permutation's per-round polls.
  const std::size_t nc = dist.num_classes();
  std::vector<std::uint64_t> stub_offset(nc + 1, 0);
  for (std::size_t c = 0; c < nc; ++c) {
    stub_offset[c + 1] = stub_offset[c] +
                         dist.degree_of_class(c) * dist.count_of_class(c);
  }
  const exec::ParallelContext ctx;
  exec::for_chunks(ctx, nc, 1, [&](const exec::Chunk& chunk) {
    for (std::size_t c = chunk.begin; c < chunk.end; ++c) {
      const std::uint64_t d = dist.degree_of_class(c);
      std::uint64_t pos = stub_offset[c];
      for (std::uint64_t v = dist.class_offset(c);
           v < dist.class_offset(c + 1); ++v) {
        for (std::uint64_t k = 0; k < d; ++k)
          stub_owner[pos++] = static_cast<VertexId>(v);
      }
    }
  });
  parallel_permute(std::span<VertexId>(stub_owner), seed, governor);
  EdgeList edges(stubs / 2);
  exec::for_chunks(ctx, edges.size(), exec::kDefaultGrain,
                   [&](const exec::Chunk& chunk) {
                     for (std::size_t e = chunk.begin; e < chunk.end; ++e)
                       edges[e] = {stub_owner[2 * e], stub_owner[2 * e + 1]};
                   });
  return edges;
}

EdgeList erased_configuration(const DegreeDistribution& dist,
                              std::uint64_t seed,
                              const RunGovernor* governor) {
  EdgeList edges = configuration_multigraph(dist, seed, governor);
  return erase_nonsimple(edges);
}

std::optional<EdgeList> repeated_configuration(const DegreeDistribution& dist,
                                               std::uint64_t seed,
                                               int max_attempts,
                                               const RunGovernor* governor) {
  std::uint64_t state = seed;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (governor != nullptr && governor->should_stop() != StatusCode::kOk)
      return std::nullopt;
    EdgeList edges = configuration_multigraph(dist, splitmix64_next(state),
                                              governor);
    if (is_simple(edges)) return edges;
  }
  return std::nullopt;
}

}  // namespace nullgraph
