#pragma once
// Discrete power-law degree distributions — the synthetic stand-ins for the
// paper's SNAP/WebGraph datasets (see DESIGN.md, substitutions). Counts
// follow n_d proportional to d^-gamma on [dmin, dmax], apportioned to
// exactly n vertices by largest remainder, nudged to an even stub total,
// and (optionally) trimmed until graphical.

#include <cstdint>
#include <vector>

#include "ds/degree_distribution.hpp"

namespace nullgraph {

struct PowerlawParams {
  std::uint64_t n = 1000;
  double gamma = 2.5;
  std::uint64_t dmin = 1;
  std::uint64_t dmax = 100;
  /// Guarantee at least one vertex at dmax (real datasets report their
  /// observed maximum, so the stand-ins should hit theirs too).
  bool force_dmax = true;
  /// Shave the top classes until Erdős–Gallai passes (needed only for
  /// extremely heavy tails).
  bool make_graphical = true;
};

/// Deterministic apportionment: same params, same distribution.
DegreeDistribution powerlaw_distribution(const PowerlawParams& params);

/// Finds gamma such that powerlaw_distribution hits `target_avg_degree`
/// (monotone in gamma; plain bisection on [1.01, 6]).
double fit_powerlaw_gamma(std::uint64_t n, double target_avg_degree,
                          std::uint64_t dmin, std::uint64_t dmax);

/// I.i.d. random power-law degree sequence (inverse-CDF sampling); used by
/// the LFR generator where each community needs its own random draw. The
/// sum is nudged by +-1 on one element to be even.
std::vector<std::uint64_t> sample_powerlaw_sequence(std::uint64_t n,
                                                    double gamma,
                                                    std::uint64_t dmin,
                                                    std::uint64_t dmax,
                                                    std::uint64_t seed);

}  // namespace nullgraph
