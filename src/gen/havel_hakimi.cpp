#include "gen/havel_hakimi.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace nullgraph {

namespace {

/// Core worker. `order` holds vertex ids sorted by descending degree and is
/// never reordered; `residual[pos]` is the remaining degree of order[pos].
/// Degrees are decremented only on suffixes of equal-degree blocks, which
/// keeps `residual` sorted descending without moving data.
EdgeList run_havel_hakimi(const std::vector<VertexId>& order,
                          std::vector<std::uint64_t> residual,
                          std::uint64_t total_stubs) {
  const std::size_t n = order.size();
  EdgeList edges;
  edges.reserve(total_stubs / 2);
  if (n == 0) return edges;

  const std::uint64_t dmax = residual.empty() ? 0 : residual.front();
  // last_of[d] = last position whose residual equals d. Valid only while
  // some active position holds degree d; sortedness guarantees at most one
  // contiguous block per degree value.
  std::vector<std::size_t> last_of(dmax + 1, 0);
  for (std::size_t pos = 0; pos < n; ++pos)
    last_of[residual[pos]] = pos;

  for (std::size_t head = 0; head < n; ++head) {
    const std::uint64_t want = residual[head];
    if (want == 0) break;  // sorted: everything after is 0 too
    if (head + want > n - 1)
      throw std::invalid_argument("havel_hakimi: sequence not graphical");
    const VertexId v = order[head];
    residual[head] = 0;
    const std::size_t range_end = head + static_cast<std::size_t>(want);
    std::size_t i = head + 1;
    while (i <= range_end) {
      const std::uint64_t d = residual[i];
      if (d == 0)
        throw std::invalid_argument("havel_hakimi: sequence not graphical");
      const std::size_t block_end = last_of[d];
      if (block_end <= range_end) {
        // The tail of this degree block is consumed ([i..block_end]; the
        // block can extend LEFT of i when earlier decrements in this same
        // step merged a fresh degree-d run into it).
        for (std::size_t j = i; j <= block_end; ++j) {
          edges.push_back({v, order[j]});
          residual[j] = d - 1;
        }
        if (i > 0 && residual[i - 1] == d) {
          last_of[d] = i - 1;  // leftover left part keeps degree d
        }
        if (d >= 2 &&
            !(block_end + 1 < n && residual[block_end + 1] == d - 1)) {
          last_of[d - 1] = block_end;
        }
        i = block_end + 1;
      } else {
        // Partial cover: take the LAST c vertices of the block (same
        // degree, so any choice is a valid Havel-Hakimi step) to keep the
        // residual array sorted.
        const std::size_t c = range_end - i + 1;
        const std::size_t take_begin = block_end - c + 1;
        for (std::size_t j = take_begin; j <= block_end; ++j) {
          edges.push_back({v, order[j]});
          residual[j] = d - 1;
        }
        last_of[d] = take_begin - 1;
        if (d >= 2 &&
            !(block_end + 1 < n && residual[block_end + 1] == d - 1)) {
          last_of[d - 1] = block_end;
        }
        i = range_end + 1;
      }
    }
  }
  if (edges.size() * 2 != total_stubs)
    throw std::invalid_argument("havel_hakimi: sequence not graphical");
  return edges;
}

}  // namespace

EdgeList havel_hakimi(const DegreeDistribution& dist) {
  const std::size_t n = dist.num_vertices();
  std::vector<VertexId> order(n);
  std::vector<std::uint64_t> residual(n);
  // Classes ascend by degree; walk them backwards for a descending order.
  std::size_t pos = 0;
  for (std::size_t step = 0; step < dist.num_classes(); ++step) {
    const std::size_t c = dist.num_classes() - 1 - step;
    for (std::uint64_t v = dist.class_offset(c);
         v < dist.class_offset(c + 1); ++v) {
      order[pos] = static_cast<VertexId>(v);
      residual[pos] = dist.degree_of_class(c);
      ++pos;
    }
  }
  return run_havel_hakimi(order, std::move(residual), dist.num_stubs());
}

EdgeList havel_hakimi_sequence(const std::vector<std::uint64_t>& degrees) {
  const std::size_t n = degrees.size();
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](VertexId a, VertexId b) {
                     return degrees[a] > degrees[b];
                   });
  std::vector<std::uint64_t> residual(n);
  std::uint64_t total = 0;
  for (std::size_t pos = 0; pos < n; ++pos) {
    residual[pos] = degrees[order[pos]];
    total += residual[pos];
  }
  if (total % 2 != 0)
    throw std::invalid_argument("havel_hakimi: odd degree total");
  return run_havel_hakimi(order, std::move(residual), total);
}

}  // namespace nullgraph
