#include "gen/chung_lu.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "exec/exec.hpp"
#include "prob/heuristics.hpp"
#include "skip/edge_skip.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace nullgraph {

namespace {

/// Weighted endpoint sampler: draws vertex ids proportionally to degree.
/// Each strategy maps a uniform stub index s in [0, 2m) to the vertex that
/// owns stub s, so all three are exactly equivalent in distribution.
class EndpointSampler {
 public:
  EndpointSampler(const DegreeDistribution& dist, ClSampler kind)
      : dist_(dist), kind_(kind) {
    const std::size_t nc = dist.num_classes();
    class_stub_offset_.assign(nc + 1, 0);
    for (std::size_t c = 0; c < nc; ++c) {
      class_stub_offset_[c + 1] =
          class_stub_offset_[c] +
          dist.degree_of_class(c) * dist.count_of_class(c);
    }
    if (kind_ == ClSampler::kBinarySearchVertex) {
      // Faithful baseline: per-vertex cumulative weights, O(log n) search.
      vertex_cum_.assign(dist.num_vertices() + 1, 0);
      const exec::ParallelContext ctx;
      exec::for_chunks(ctx, nc, 1, [&](const exec::Chunk& chunk) {
        for (std::size_t c = chunk.begin; c < chunk.end; ++c) {
          const std::uint64_t d = dist.degree_of_class(c);
          std::uint64_t cum = class_stub_offset_[c];
          for (std::uint64_t v = dist.class_offset(c);
               v < dist.class_offset(c + 1); ++v) {
            vertex_cum_[v] = cum;
            cum += d;
          }
        }
      });
      vertex_cum_.back() = class_stub_offset_.back();
    } else if (kind_ == ClSampler::kAlias) {
      build_alias();
    }
  }

  std::uint64_t total_stubs() const noexcept {
    return class_stub_offset_.back();
  }

  VertexId draw(Xoshiro256ss& rng) const {
    switch (kind_) {
      case ClSampler::kBinarySearchVertex: {
        const std::uint64_t s = rng.bounded(total_stubs());
        const auto it = std::upper_bound(vertex_cum_.begin(),
                                         vertex_cum_.end(), s);
        return static_cast<VertexId>(it - vertex_cum_.begin() - 1);
      }
      case ClSampler::kBinarySearchClass: {
        const std::uint64_t s = rng.bounded(total_stubs());
        const auto it = std::upper_bound(class_stub_offset_.begin(),
                                         class_stub_offset_.end(), s);
        const std::size_t c =
            static_cast<std::size_t>(it - class_stub_offset_.begin()) - 1;
        const std::uint64_t within = s - class_stub_offset_[c];
        return static_cast<VertexId>(dist_.class_offset(c) +
                                     within / dist_.degree_of_class(c));
      }
      case ClSampler::kAlias: {
        // Walker alias over classes (uniform column, biased coin), then a
        // uniform vertex within the winning class.
        const std::size_t nc = dist_.num_classes();
        const std::uint64_t col = rng.bounded(nc);
        const std::size_t c =
            rng.uniform() < alias_prob_[col] ? col : alias_other_[col];
        return static_cast<VertexId>(dist_.class_offset(c) +
                                     rng.bounded(dist_.count_of_class(c)));
      }
    }
    return 0;  // unreachable
  }

 private:
  void build_alias() {
    // Vose's method over class stub weights.
    const std::size_t nc = dist_.num_classes();
    alias_prob_.assign(nc, 1.0);
    alias_other_.assign(nc, 0);
    const double mean =
        static_cast<double>(total_stubs()) / static_cast<double>(nc);
    std::vector<double> scaled(nc);
    std::vector<std::size_t> small, large;
    for (std::size_t c = 0; c < nc; ++c) {
      scaled[c] = static_cast<double>(dist_.degree_of_class(c) *
                                      dist_.count_of_class(c)) /
                  mean;
      (scaled[c] < 1.0 ? small : large).push_back(c);
    }
    while (!small.empty() && !large.empty()) {
      const std::size_t s = small.back();
      const std::size_t l = large.back();
      small.pop_back();
      alias_prob_[s] = scaled[s];
      alias_other_[s] = l;
      scaled[l] -= 1.0 - scaled[s];
      if (scaled[l] < 1.0) {
        large.pop_back();
        small.push_back(l);
      }
    }
    for (std::size_t c : large) alias_prob_[c] = 1.0;
    for (std::size_t c : small) alias_prob_[c] = 1.0;
  }

  const DegreeDistribution& dist_;
  ClSampler kind_;
  std::vector<std::uint64_t> class_stub_offset_;
  std::vector<std::uint64_t> vertex_cum_;
  std::vector<double> alias_prob_;
  std::vector<std::size_t> alias_other_;
};

}  // namespace

EdgeList chung_lu_multigraph(const DegreeDistribution& dist,
                             const ChungLuConfig& config) {
  const std::uint64_t m = dist.num_edges();
  if (m == 0) return {};
  const EndpointSampler sampler(dist, config.sampler);
  if (sampler.total_stubs() == 0)
    throw std::invalid_argument("chung_lu_multigraph: no stubs");
  // Chunk-indexed RNG streams: each chunk draws from its own generator
  // seeded by (run seed, chunk index), so the output is bit-identical at
  // any thread count. collect (rather than indexed writes) lets a governed
  // stop truncate the list instead of leaving zero-initialized edges.
  exec::ParallelContext ctx;
  ctx.seed = config.seed;
  ctx.governor = config.governor;
  ctx.timings = config.timings;
  ctx.phase = "chung-lu draws";
  constexpr std::uint64_t kBlock = 1u << 14;
  return exec::collect<Edge>(
      ctx, m, kBlock, [&](const exec::Chunk& chunk, EdgeList& mine) {
        Xoshiro256ss rng = chunk.rng();
        mine.reserve(chunk.size());
        for (std::uint64_t e = chunk.begin; e < chunk.end; ++e) {
          mine.push_back({sampler.draw(rng), sampler.draw(rng)});
        }
      });
}

EdgeList erased_chung_lu(const DegreeDistribution& dist,
                         const ChungLuConfig& config) {
  EdgeList edges = chung_lu_multigraph(dist, config);
  return erase_nonsimple(edges);
}

EdgeList bernoulli_chung_lu(const DegreeDistribution& dist,
                            std::uint64_t seed) {
  const ProbabilityMatrix P = chung_lu_probabilities(dist);
  EdgeSkipConfig config;
  config.seed = seed;
  return edge_skip_generate(P, dist, config);
}

}  // namespace nullgraph
