#include "gen/datasets.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "gen/powerlaw.hpp"

namespace nullgraph {

const std::vector<DatasetSpec>& paper_datasets() {
  // n / m / d_max from Table I (d_max values lost to the table's formatting
  // are filled from the datasets' published statistics). default_scale
  // keeps the largest instances tractable on a laptop-class machine; the
  // NULLGRAPH_BENCH_SCALE env var rescales everything at run time.
  static const std::vector<DatasetSpec> specs = {
      {"Meso", 1'800, 3'100, 401, 1.0, 1},
      {"as20", 6'500, 12'500, 1'500, 1.0, 1},
      {"WikiTalk", 2'400'000, 4'700'000, 100'000, 0.25, 1},
      {"DBPedia", 6'700'000, 193'000'000, 500'000, 0.01, 1},
      {"LiveJournal", 4'100'000, 27'000'000, 20'000, 0.1, 1},
      {"Friendster", 40'000'000, 1'800'000'000, 56'000, 0.001, 1},
      {"Twitter", 39'000'000, 1'400'000'000, 3'000'000, 0.001, 1},
      {"uk-2005", 30'000'000, 728'000'000, 1'700'000, 0.002, 1},
  };
  return specs;
}

std::vector<DatasetSpec> quality_datasets() {
  const auto& all = paper_datasets();
  return {all.begin(), all.begin() + 4};
}

std::optional<DatasetSpec> find_dataset(const std::string& name) {
  for (const DatasetSpec& spec : paper_datasets())
    if (spec.name == name) return spec;
  return std::nullopt;
}

namespace {

double env_scale() {
  const char* raw = std::getenv("NULLGRAPH_BENCH_SCALE");
  if (raw == nullptr) return 1.0;
  const double value = std::atof(raw);
  return value > 0.0 ? value : 1.0;
}

}  // namespace

DegreeDistribution build_dataset(const DatasetSpec& spec, double scale) {
  if (scale <= 0.0) scale = spec.default_scale * env_scale();
  scale = std::min(scale, 1.0);
  PowerlawParams params;
  params.n = std::max<std::uint64_t>(
      64, static_cast<std::uint64_t>(static_cast<double>(spec.n) * scale));
  const std::uint64_t target_m = std::max<std::uint64_t>(
      64, static_cast<std::uint64_t>(static_cast<double>(spec.m) * scale));
  // Scaled d_max: shrink with sqrt(scale) — a linear shrink would cap the
  // achievable average degree below the target on dense instances
  // (Friendster's d_avg = 90 needs a tail) — and cap so one hub cannot
  // exceed a third of the graph (keeps the instance graphical).
  params.dmax = std::max<std::uint64_t>(
      16, std::min(static_cast<std::uint64_t>(
                       static_cast<double>(spec.dmax) * std::sqrt(scale)),
                   params.n / 3));
  params.dmin = spec.dmin;
  // Calibrate gamma against the REALIZED edge count: integer apportionment
  // drops fractional tail classes, so the continuous-average fit of
  // fit_powerlaw_gamma lands systematically low on small skewed instances.
  // Realized m decreases with gamma; bisect.
  double lo = 1.01, hi = 6.0;
  DegreeDistribution best = powerlaw_distribution([&] {
    PowerlawParams p = params;
    p.gamma = fit_powerlaw_gamma(params.n, 2.0 * static_cast<double>(target_m) /
                                               static_cast<double>(params.n),
                                 params.dmin, params.dmax);
    return p;
  }());
  for (int iter = 0; iter < 40; ++iter) {
    params.gamma = 0.5 * (lo + hi);
    const DegreeDistribution candidate = powerlaw_distribution(params);
    const auto err = [&](const DegreeDistribution& d) {
      return std::abs(static_cast<double>(d.num_edges()) -
                      static_cast<double>(target_m));
    };
    if (err(candidate) < err(best)) best = candidate;
    if (candidate.num_edges() > target_m)
      lo = params.gamma;
    else
      hi = params.gamma;
  }
  return best;
}

DegreeDistribution as20_like() {
  DatasetSpec spec = *find_dataset("as20");
  return build_dataset(spec, 1.0);
}

}  // namespace nullgraph
