#pragma once
// Configuration-model generators (Molloy & Reed [24]): uniform random stub
// pairing. Background baselines from Section II-B — the "repeated" variant
// shows why re-rolling until simple is hopeless on skewed inputs, and the
// "erased" variant is the classical accuracy-losing fix (Figure 2's model
// family). Stub pairing uses the parallel permutation, so generation is
// fully parallel.

#include <cstdint>
#include <optional>

#include "ds/degree_distribution.hpp"
#include "ds/edge_list.hpp"

namespace nullgraph {

/// Uniform random pairing of all stubs: a loopy multigraph whose degree
/// sequence matches `dist` EXACTLY (unlike Chung-Lu, which only matches in
/// expectation).
EdgeList configuration_multigraph(const DegreeDistribution& dist,
                                  std::uint64_t seed = 1);

/// configuration_multigraph with loops and duplicate edges erased.
EdgeList erased_configuration(const DegreeDistribution& dist,
                              std::uint64_t seed = 1);

/// Repeated configuration model: re-pair from scratch until the result is
/// simple, at most `max_attempts` times. Returns nullopt on failure — the
/// expected outcome for skewed distributions, where the expected number of
/// multi-edges exceeds one (Section II-B).
std::optional<EdgeList> repeated_configuration(const DegreeDistribution& dist,
                                               std::uint64_t seed = 1,
                                               int max_attempts = 100);

}  // namespace nullgraph
