#pragma once
// Configuration-model generators (Molloy & Reed [24]): uniform random stub
// pairing. Background baselines from Section II-B — the "repeated" variant
// shows why re-rolling until simple is hopeless on skewed inputs, and the
// "erased" variant is the classical accuracy-losing fix (Figure 2's model
// family). Stub pairing uses the parallel permutation, so generation is
// fully parallel.

#include <cstdint>
#include <optional>

#include "ds/degree_distribution.hpp"
#include "ds/edge_list.hpp"
#include "robustness/governance.hpp"

namespace nullgraph {

/// Uniform random pairing of all stubs: a loopy multigraph whose degree
/// sequence matches `dist` EXACTLY (unlike Chung-Lu, which only matches in
/// expectation). The optional governor is polled per permutation round; a
/// stopped run pairs a partially-shuffled stub array (still a valid
/// multigraph realization of `dist`, just less mixed).
EdgeList configuration_multigraph(const DegreeDistribution& dist,
                                  std::uint64_t seed = 1,
                                  const RunGovernor* governor = nullptr);

/// configuration_multigraph with loops and duplicate edges erased.
EdgeList erased_configuration(const DegreeDistribution& dist,
                              std::uint64_t seed = 1,
                              const RunGovernor* governor = nullptr);

/// Repeated configuration model: re-pair from scratch until the result is
/// simple, at most `max_attempts` times. Returns nullopt on failure — the
/// expected outcome for skewed distributions, where the expected number of
/// multi-edges exceeds one (Section II-B).
std::optional<EdgeList> repeated_configuration(const DegreeDistribution& dist,
                                               std::uint64_t seed = 1,
                                               int max_attempts = 100,
                                               const RunGovernor* governor =
                                                   nullptr);

}  // namespace nullgraph
