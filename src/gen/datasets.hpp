#pragma once
// Synthetic stand-ins for the paper's Table I test graphs. We do not ship
// SNAP/WebGraph data; each entry records the published (n, m, d_max) and a
// default down-scale for this machine, and build_dataset() fits a discrete
// power law to those targets (see DESIGN.md, substitutions). The first four
// are the skewed "quality" instances, the last four the scalability ones.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ds/degree_distribution.hpp"

namespace nullgraph {

struct DatasetSpec {
  std::string name;
  std::uint64_t n = 0;      // published vertex count
  std::uint64_t m = 0;      // published edge count
  std::uint64_t dmax = 0;   // published (or best-known) max degree
  double default_scale = 1.0;  // down-scale applied by default on laptops
  std::uint64_t dmin = 1;
};

/// The eight Table I instances, in paper order.
const std::vector<DatasetSpec>& paper_datasets();

/// The four skewed quality-comparison instances (Meso..DBPedia).
std::vector<DatasetSpec> quality_datasets();

std::optional<DatasetSpec> find_dataset(const std::string& name);

/// Power-law stand-in scaled by `scale` (<= 0 means the spec's default,
/// further multiplied by the NULLGRAPH_BENCH_SCALE environment variable
/// when set). Guaranteed graphical and even-stubbed.
DegreeDistribution build_dataset(const DatasetSpec& spec, double scale = 0.0);

/// A fixed AS-733-like (as20) distribution at full published scale; the
/// instance behind Figures 1 and 2.
DegreeDistribution as20_like();

}  // namespace nullgraph
