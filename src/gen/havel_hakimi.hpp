#pragma once
// Havel–Hakimi construction: realizes a graphical degree distribution as a
// concrete simple graph. The paper uses "Havel–Hakimi generation and 128
// full iterations of double-edge swaps" as its uniformly-random ground
// truth (Section VIII); we follow suit for Figures 1 and 4.
//
// The implementation is the block/run-length variant: vertices sorted by
// descending degree never move; connecting the current maximum to the next
// d largest only shifts degree-block boundaries, giving O(m + n + B) total
// work where B is the number of block boundary updates (B = O(m)).

#include <cstdint>

#include "ds/degree_distribution.hpp"
#include "ds/edge_list.hpp"

namespace nullgraph {

/// Builds a simple graph exactly realizing `dist` (vertex ids follow the
/// DegreeDistribution convention). Throws std::invalid_argument when the
/// distribution is not graphical.
EdgeList havel_hakimi(const DegreeDistribution& dist);

/// Same, for an explicit per-vertex degree sequence; the output edge uses
/// the caller's vertex indices.
EdgeList havel_hakimi_sequence(const std::vector<std::uint64_t>& degrees);

}  // namespace nullgraph
