#pragma once
// Chung-Lu generators — the baselines of Section VIII.
//
//  * chung_lu_multigraph:   the O(m) model. 2m biased endpoint draws with
//                           replacement; consecutive draws pair into edges.
//                           Produces self-loops and multi-edges.
//  * erased_chung_lu:       the "O(m) simple" model — O(m) draws, then
//                           self-loops and duplicate edges discarded (at a
//                           cost in output-degree accuracy; Figure 2).
//  * bernoulli_chung_lu:    the "O(n^2) edgeskip" model — capped Chung-Lu
//                           pair probabilities fed through edge-skipping.
//                           Simple by construction, O(m) expected work.
//
// Endpoint sampling strategies (the paper uses a binary search over a
// weighted list, O(log n) per draw; we add two cheaper ablations):
//  * kBinarySearchVertex: search the per-vertex cumulative weight array.
//  * kBinarySearchClass:  search the per-class cumulative stub array
//                         (O(log |D|)), then index into the class.
//  * kAlias:              Walker alias table over vertices, O(1) per draw.

#include <cstdint>

#include "ds/degree_distribution.hpp"
#include "ds/edge_list.hpp"
#include "exec/phase_timing.hpp"
#include "robustness/governance.hpp"

namespace nullgraph {

enum class ClSampler { kBinarySearchVertex, kBinarySearchClass, kAlias };

struct ChungLuConfig {
  std::uint64_t seed = 1;
  ClSampler sampler = ClSampler::kBinarySearchVertex;
  /// Optional run governance, polled once per draw block; on a stop
  /// verdict the remaining blocks emit nothing (the output is truncated,
  /// never padded with zero-initialized edges).
  const RunGovernor* governor = nullptr;
  /// Optional exec-layer phase records (wall time / chunk counts).
  exec::PhaseTimingSink* timings = nullptr;
};

/// O(m) Chung-Lu: m edges from 2m weighted draws (loopy multigraph).
EdgeList chung_lu_multigraph(const DegreeDistribution& dist,
                             const ChungLuConfig& config = {});

/// O(m) simple: chung_lu_multigraph with loops and duplicates erased.
EdgeList erased_chung_lu(const DegreeDistribution& dist,
                         const ChungLuConfig& config = {});

/// O(n^2)-edgeskip: Bernoulli Chung-Lu via edge skipping (always simple).
EdgeList bernoulli_chung_lu(const DegreeDistribution& dist,
                            std::uint64_t seed = 1);

}  // namespace nullgraph
