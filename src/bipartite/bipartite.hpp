#pragma once
// Bipartite null models: uniformly random simple bipartite graphs with
// prescribed left and right degree sequences — the null space behind
// ecology's species-site matrices, recommender user-item graphs, and
// affiliation networks (Section VI's overlapping-community models reduce
// to this space too).
//
// Implementation note: a simple bipartite graph IS a simple digraph whose
// out-stubs all live on the left side and in-stubs on the right, so the
// whole pipeline — probability solver, edge-skipping, degree-preserving
// swaps (the "checkerboard swaps" of the ecology literature), exact
// realization — is the directed machinery behind a left/right facade.
// Gale-Ryser gets a direct O(|classes|^2) implementation as well.
//
// Edges are Arc{left_id, right_id}; both sides number from 0
// independently, grouped ascending by degree class (same convention as
// DegreeDistribution).

#include <cstdint>
#include <vector>

#include "directed/directed_distribution.hpp"
#include "ds/degree_distribution.hpp"
#include "robustness/governance.hpp"

namespace nullgraph {

class BipartiteDistribution {
 public:
  BipartiteDistribution() = default;

  /// Left and right (degree, count) classes; throws std::invalid_argument
  /// when the two sides' stub totals differ (no bipartite graph exists).
  BipartiteDistribution(std::vector<DegreeClass> left,
                        std::vector<DegreeClass> right);

  static BipartiteDistribution from_sequences(
      const std::vector<std::uint64_t>& left_degrees,
      const std::vector<std::uint64_t>& right_degrees);

  std::uint64_t num_left() const noexcept { return num_left_; }
  std::uint64_t num_right() const noexcept { return num_right_; }
  std::uint64_t num_edges() const noexcept { return num_edges_; }
  const std::vector<DegreeClass>& left_classes() const noexcept {
    return left_;
  }
  const std::vector<DegreeClass>& right_classes() const noexcept {
    return right_;
  }

  /// Per-vertex target degrees in id order.
  std::vector<std::uint64_t> left_sequence() const;
  std::vector<std::uint64_t> right_sequence() const;

  /// The equivalent directed distribution: left classes become (in=0,
  /// out=degree), right classes (in=degree, out=0). Note the directed
  /// class ordering puts the right side first; bipartite_null_graph owns
  /// the id mapping, use it rather than decoding ids by hand.
  DirectedDegreeDistribution as_directed() const;

 private:
  std::vector<DegreeClass> left_, right_;  // ascending by degree
  std::uint64_t num_left_ = 0, num_right_ = 0, num_edges_ = 0;
};

/// Gale-Ryser: does a simple bipartite graph with these degree sequences
/// exist? Direct class-based test, O(|left classes| * |right classes|).
bool is_bigraphical(const std::vector<std::uint64_t>& left_degrees,
                    const std::vector<std::uint64_t>& right_degrees);

/// Exact realization (via the Kleitman-Wang construction on the directed
/// encoding). Throws std::invalid_argument when not bigraphical. Edges
/// come back in (left, right) ids.
ArcList gale_ryser_realization(
    const std::vector<std::uint64_t>& left_degrees,
    const std::vector<std::uint64_t>& right_degrees);

/// Uniformly random simple bipartite graph matching `dist` in expectation
/// (probability solver -> edge-skipping -> checkerboard swaps). A non-null
/// `governor` is polled by the underlying directed pipeline; a stop
/// returns the best graph so far.
ArcList bipartite_null_graph(const BipartiteDistribution& dist,
                             std::uint64_t seed = 1,
                             std::size_t swap_iterations = 10,
                             const RunGovernor* governor = nullptr);

/// Degree-preserving bipartite ("checkerboard") swaps on an existing
/// bipartite edge list; both sides' degrees are invariant, simplicity is
/// preserved. Returns the number of committed swaps.
std::size_t bipartite_swap(ArcList& edges, std::uint64_t num_left,
                           std::size_t iterations = 10,
                           std::uint64_t seed = 1);

}  // namespace nullgraph
