#include "bipartite/bipartite.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "directed/directed_generators.hpp"
#include "directed/directed_swap.hpp"

namespace nullgraph {

namespace {

std::vector<DegreeClass> normalize_classes(std::vector<DegreeClass> classes) {
  std::sort(classes.begin(), classes.end(),
            [](const DegreeClass& a, const DegreeClass& b) {
              return a.degree < b.degree;
            });
  std::size_t out = 0;
  for (std::size_t i = 0; i < classes.size(); ++i) {
    if (classes[i].count == 0) continue;
    if (out > 0 && classes[out - 1].degree == classes[i].degree) {
      classes[out - 1].count += classes[i].count;
    } else {
      classes[out++] = classes[i];
    }
  }
  classes.resize(out);
  return classes;
}

std::vector<std::uint64_t> expand(const std::vector<DegreeClass>& classes) {
  std::vector<std::uint64_t> sequence;
  for (const DegreeClass& c : classes)
    sequence.insert(sequence.end(), c.count, c.degree);
  return sequence;
}

}  // namespace

BipartiteDistribution::BipartiteDistribution(std::vector<DegreeClass> left,
                                             std::vector<DegreeClass> right)
    : left_(normalize_classes(std::move(left))),
      right_(normalize_classes(std::move(right))) {
  std::uint64_t left_stubs = 0, right_stubs = 0;
  for (const DegreeClass& c : left_) {
    num_left_ += c.count;
    left_stubs += c.degree * c.count;
  }
  for (const DegreeClass& c : right_) {
    num_right_ += c.count;
    right_stubs += c.degree * c.count;
  }
  if (left_stubs != right_stubs) {
    throw std::invalid_argument(
        "BipartiteDistribution: left and right stub totals differ");
  }
  num_edges_ = left_stubs;
}

BipartiteDistribution BipartiteDistribution::from_sequences(
    const std::vector<std::uint64_t>& left_degrees,
    const std::vector<std::uint64_t>& right_degrees) {
  auto to_classes = [](const std::vector<std::uint64_t>& degrees) {
    std::vector<DegreeClass> classes;
    classes.reserve(degrees.size());
    for (std::uint64_t d : degrees) classes.push_back({d, 1});
    return classes;
  };
  return BipartiteDistribution(to_classes(left_degrees),
                               to_classes(right_degrees));
}

std::vector<std::uint64_t> BipartiteDistribution::left_sequence() const {
  return expand(left_);
}

std::vector<std::uint64_t> BipartiteDistribution::right_sequence() const {
  return expand(right_);
}

DirectedDegreeDistribution BipartiteDistribution::as_directed() const {
  std::vector<DirectedDegreeClass> classes;
  classes.reserve(left_.size() + right_.size());
  for (const DegreeClass& c : left_) classes.push_back({0, c.degree, c.count});
  for (const DegreeClass& c : right_) classes.push_back({c.degree, 0, c.count});
  return DirectedDegreeDistribution(std::move(classes));
}

bool is_bigraphical(const std::vector<std::uint64_t>& left_degrees,
                    const std::vector<std::uint64_t>& right_degrees) {
  std::uint64_t left_total =
      std::accumulate(left_degrees.begin(), left_degrees.end(), 0ULL);
  std::uint64_t right_total =
      std::accumulate(right_degrees.begin(), right_degrees.end(), 0ULL);
  if (left_total != right_total) return false;
  // Gale-Ryser: with left sorted descending,
  //   for all k:  sum_{i<=k} a_i  <=  sum_j min(b_j, k).
  // Only k values where the sorted a strictly drops need checking.
  std::vector<std::uint64_t> a = left_degrees;
  std::vector<std::uint64_t> b = right_degrees;
  std::sort(a.rbegin(), a.rend());
  std::sort(b.rbegin(), b.rend());  // descending: b_1 >= b_2 >= ...
  // Prefix sums of b for the min() split: for threshold k, entries with
  // b_j > k contribute k each, the rest contribute b_j.
  std::vector<std::uint64_t> b_prefix(b.size() + 1, 0);
  for (std::size_t j = 0; j < b.size(); ++j)
    b_prefix[j + 1] = b_prefix[j] + b[j];
  unsigned long long lhs = 0;
  for (std::size_t k = 1; k <= a.size(); ++k) {
    lhs += a[k - 1];
    if (k < a.size() && a[k] == a[k - 1]) continue;  // not a drop point
    // Number of b entries strictly greater than k (b is descending).
    const auto split = std::lower_bound(
        b.begin(), b.end(), static_cast<std::uint64_t>(k),
        [](std::uint64_t value, std::uint64_t key) { return value > key; });
    const std::size_t greater = static_cast<std::size_t>(split - b.begin());
    const unsigned long long rhs =
        static_cast<unsigned long long>(greater) * k +
        (b_prefix[b.size()] - b_prefix[greater]);
    if (lhs > rhs) return false;
  }
  return true;
}

namespace {

/// Directed encoding over raw per-vertex sequences: left vertex v keeps id
/// v (out-stubs only), right vertex r becomes id num_left + r (in-stubs
/// only).
void raw_sequences(const std::vector<std::uint64_t>& left,
                   const std::vector<std::uint64_t>& right,
                   std::vector<std::uint64_t>& in_seq,
                   std::vector<std::uint64_t>& out_seq) {
  const std::size_t n = left.size() + right.size();
  in_seq.assign(n, 0);
  out_seq.assign(n, 0);
  for (std::size_t v = 0; v < left.size(); ++v) out_seq[v] = left[v];
  for (std::size_t r = 0; r < right.size(); ++r)
    in_seq[left.size() + r] = right[r];
}

}  // namespace

ArcList gale_ryser_realization(
    const std::vector<std::uint64_t>& left_degrees,
    const std::vector<std::uint64_t>& right_degrees) {
  std::vector<std::uint64_t> in_seq, out_seq;
  raw_sequences(left_degrees, right_degrees, in_seq, out_seq);
  ArcList arcs = kleitman_wang(in_seq, out_seq);
  const VertexId offset = static_cast<VertexId>(left_degrees.size());
  for (Arc& arc : arcs) arc.to -= offset;
  return arcs;
}

ArcList bipartite_null_graph(const BipartiteDistribution& dist,
                             std::uint64_t seed, std::size_t swap_iterations,
                             const RunGovernor* governor) {
  // Directed classes sort by (out, in) ascending: all right classes (out=0)
  // first, in-degree ascending, then the left classes, out-degree
  // ascending. Both match the bipartite id convention (ascending degree
  // per side), so the id mapping is a pair of offsets — except that a
  // degree-0 left class and a degree-0 right class would merge into one
  // (0,0) directed class. Zero-degree vertices touch no edges, so we strip
  // them for generation and the mapping below accounts for the gap.
  std::vector<DegreeClass> left = dist.left_classes();
  std::vector<DegreeClass> right = dist.right_classes();
  std::uint64_t left_zero = 0, right_zero = 0;
  if (!left.empty() && left.front().degree == 0) {
    left_zero = left.front().count;
    left.erase(left.begin());
  }
  if (!right.empty() && right.front().degree == 0) {
    right_zero = right.front().count;
    right.erase(right.begin());
  }
  std::vector<DirectedDegreeClass> classes;
  for (const DegreeClass& c : left) classes.push_back({0, c.degree, c.count});
  for (const DegreeClass& c : right)
    classes.push_back({c.degree, 0, c.count});
  const DirectedDegreeDistribution directed(std::move(classes));

  ArcList arcs =
      generate_directed_null_graph(directed, seed, swap_iterations, governor);

  std::uint64_t nonzero_right = 0;
  for (const DegreeClass& c : right) nonzero_right += c.count;
  const VertexId left_base = static_cast<VertexId>(nonzero_right);
  for (Arc& arc : arcs) {
    // from: left side, directed ids [nonzero_right, ...) in ascending
    // left-degree order -> bipartite left ids start after the zero block.
    arc.from = static_cast<VertexId>(arc.from - left_base + left_zero);
    // to: right side, directed ids [0, nonzero_right).
    arc.to = static_cast<VertexId>(arc.to + right_zero);
  }
  return arcs;
}

std::size_t bipartite_swap(ArcList& edges, std::uint64_t num_left,
                           std::size_t iterations, std::uint64_t seed) {
  const VertexId offset = static_cast<VertexId>(num_left);
  for (Arc& arc : edges) arc.to += offset;
  DirectedSwapConfig config;
  config.iterations = iterations;
  config.seed = seed;
  const DirectedSwapStats stats = directed_swap_arcs(edges, config);
  for (Arc& arc : edges) arc.to -= offset;
  return stats.total_swapped();
}

}  // namespace nullgraph
