#pragma once
// Generalized hierarchical / overlapping network generation (Section VI,
// last paragraph). A hierarchy is a list of LEVELS; each level is a list of
// subgraphs, and each subgraph assigns a share lambda of the degree of
// every member vertex. For every vertex, the lambdas of the subgraphs that
// contain it (across all levels) must sum to 1, so the union of all layer
// graphs retains the global degree distribution in expectation. Each layer
// is generated with generate_for_sequence, i.e. the full Algorithm IV.1
// pipeline.

#include <cstdint>
#include <vector>

#include "ds/edge_list.hpp"

namespace nullgraph {

struct SubgraphSpec {
  std::vector<VertexId> members;
  double lambda = 1.0;  // share of each member's degree spent in this layer
};

using HierarchyLevel = std::vector<SubgraphSpec>;

struct HierarchicalConfig {
  std::uint64_t seed = 1;
  std::size_t swap_iterations = 5;
  /// Maximum allowed deviation of any vertex's lambda sum from 1.
  double lambda_tolerance = 1e-6;
};

struct HierarchicalGraph {
  EdgeList edges;
  std::size_t layers_generated = 0;
  std::size_t merged_duplicates = 0;
};

/// Generates the union of all subgraph layers. Throws
/// std::invalid_argument when lambda shares do not sum to 1 per vertex,
/// when a subgraph has out-of-range members, or when lambda < 0.
HierarchicalGraph generate_hierarchical(
    const std::vector<std::uint64_t>& degrees,
    const std::vector<HierarchyLevel>& levels,
    const HierarchicalConfig& config = {});

}  // namespace nullgraph
