#include "lfr/hierarchical.hpp"

#include <cmath>
#include <stdexcept>

#include "core/null_model.hpp"
#include "util/rng.hpp"

namespace nullgraph {

HierarchicalGraph generate_hierarchical(
    const std::vector<std::uint64_t>& degrees,
    const std::vector<HierarchyLevel>& levels,
    const HierarchicalConfig& config) {
  const std::size_t n = degrees.size();
  // Validate the lambda shares: per vertex they must sum to 1.
  std::vector<double> lambda_sum(n, 0.0);
  for (const HierarchyLevel& level : levels) {
    for (const SubgraphSpec& subgraph : level) {
      if (subgraph.lambda < 0.0)
        throw std::invalid_argument("generate_hierarchical: lambda < 0");
      for (const VertexId v : subgraph.members) {
        if (v >= n)
          throw std::invalid_argument(
              "generate_hierarchical: member id out of range");
        lambda_sum[v] += subgraph.lambda;
      }
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    if (degrees[v] > 0 &&
        std::abs(lambda_sum[v] - 1.0) > config.lambda_tolerance)
      throw std::invalid_argument(
          "generate_hierarchical: lambda shares of a vertex do not sum to 1");
  }

  HierarchicalGraph result;
  std::uint64_t seed_chain = config.seed;
  GenerateConfig layer_config;
  layer_config.swap_iterations = config.swap_iterations;

  EdgeList merged;
  for (const HierarchyLevel& level : levels) {
    for (const SubgraphSpec& subgraph : level) {
      if (subgraph.members.size() < 2 || subgraph.lambda == 0.0) continue;
      std::vector<std::uint64_t> layer_degrees(subgraph.members.size());
      std::uint64_t sum = 0;
      for (std::size_t k = 0; k < subgraph.members.size(); ++k) {
        layer_degrees[k] = static_cast<std::uint64_t>(std::llround(
            subgraph.lambda *
            static_cast<double>(degrees[subgraph.members[k]])));
        sum += layer_degrees[k];
      }
      if (sum % 2 != 0) {
        // Parity nudge on the first positive entry.
        for (std::uint64_t& d : layer_degrees) {
          if (d > 0) {
            --d;
            break;
          }
        }
      }
      layer_config.seed = splitmix64_next(seed_chain);
      GenerateResult layer =
          generate_for_sequence(layer_degrees, layer_config);
      for (const Edge& e : layer.edges)
        merged.push_back(
            {subgraph.members[e.u], subgraph.members[e.v]});
      ++result.layers_generated;
    }
  }
  const std::size_t before = merged.size();
  result.edges = erase_nonsimple(merged);
  result.merged_duplicates = before - result.edges.size();
  return result;
}

}  // namespace nullgraph
