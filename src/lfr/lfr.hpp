#pragma once
// LFR-like hierarchical benchmark graphs (Section VI; Lancichinetti,
// Fortunato & Radicchi [19] via the layered approach of Slota & Garbus
// [34]). Vertex degrees follow one power law, community sizes another;
// each vertex splits its degree into an internal part (within its
// community) and an external part by the mixing parameter mu. Every layer
// — one null model per community plus one global external graph — is
// generated with this library's generate_for_sequence, so small skewed
// communities keep accurate degree distributions where plain Chung-Lu
// methods fail (the paper's observation).

#include <cstdint>
#include <vector>

#include "core/null_model.hpp"
#include "ds/edge_list.hpp"
#include "robustness/status.hpp"

namespace nullgraph {

struct LfrParams {
  std::uint64_t n = 10'000;
  double degree_exponent = 2.5;     // tau1
  std::uint64_t dmin = 4;
  std::uint64_t dmax = 100;
  double community_exponent = 1.8;  // tau2
  std::uint64_t cmin = 32;          // community size bounds
  std::uint64_t cmax = 512;
  double mu = 0.3;                  // target external/total degree ratio
  std::uint64_t seed = 1;
  std::size_t swap_iterations = 5;  // per layer
  /// One governor spans the whole run (all community layers plus the
  /// external layer): the deadline clock starts when generate_lfr is
  /// entered and is polled between layers and inside each layer's phases.
  GovernanceConfig governance;
  /// Telemetry handles, threaded into every community layer's
  /// generate_for_sequence call; each layer also gets its own trace span.
  obs::ObsContext obs;
};

struct LfrGraph {
  EdgeList edges;
  std::vector<std::uint32_t> community;  // per-vertex community id
  std::size_t num_communities = 0;
  double achieved_mu = 0.0;              // external / total edge endpoints
  /// duplicate internal/external edges removed while merging layers
  std::size_t merged_duplicates = 0;
  /// kOk when every layer ran to completion; otherwise the governance
  /// verdict that curtailed the run (remaining layers are missing their
  /// edges, so the returned graph under-realizes the degree targets).
  StatusCode curtailed = StatusCode::kOk;
  /// Community layers fully generated before any curtailment.
  std::size_t communities_completed = 0;
};

/// Generates an LFR-like graph. Throws std::invalid_argument on infeasible
/// parameters (e.g. cmax too small for the internal degrees).
LfrGraph generate_lfr(const LfrParams& params);

/// Recomputes the realized mixing parameter of a partitioned graph:
/// fraction of edge endpoints whose edge crosses communities.
double measured_mu(const EdgeList& edges,
                   const std::vector<std::uint32_t>& community);

}  // namespace nullgraph
