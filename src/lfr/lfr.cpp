#include "lfr/lfr.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "core/null_model.hpp"
#include "ds/concurrent_hash_set.hpp"
#include "exec/exec.hpp"
#include "gen/powerlaw.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace nullgraph {

namespace {

/// Power-law community sizes covering exactly n vertices.
std::vector<std::uint64_t> sample_community_sizes(const LfrParams& params,
                                                  Xoshiro256ss& rng) {
  std::vector<double> weights(params.cmax - params.cmin + 1);
  for (std::uint64_t s = params.cmin; s <= params.cmax; ++s)
    weights[s - params.cmin] =
        std::pow(static_cast<double>(s), -params.community_exponent);
  std::vector<double> cumulative(weights.size());
  std::partial_sum(weights.begin(), weights.end(), cumulative.begin());
  const double total = cumulative.back();

  std::vector<std::uint64_t> sizes;
  std::uint64_t covered = 0;
  while (covered < params.n) {
    const double u = rng.uniform() * total;
    const auto it = std::lower_bound(cumulative.begin(), cumulative.end(), u);
    std::uint64_t size =
        params.cmin + static_cast<std::uint64_t>(it - cumulative.begin());
    if (covered + size > params.n) size = params.n - covered;
    sizes.push_back(size);
    covered += size;
  }
  // A trimmed last community below cmin merges into its predecessor.
  if (sizes.size() > 1 && sizes.back() < params.cmin) {
    sizes[sizes.size() - 2] += sizes.back();
    sizes.pop_back();
  }
  return sizes;
}

void make_sum_even(std::vector<std::uint64_t>& degrees,
                   std::uint64_t ceiling) {
  std::uint64_t sum = 0;
  for (std::uint64_t d : degrees) sum += d;
  if (sum % 2 == 0 || degrees.empty()) return;
  // Bump the first adjustable entry; prefer +1 (stays within ceiling).
  for (std::uint64_t& d : degrees) {
    if (d + 1 <= ceiling) {
      ++d;
      return;
    }
  }
  for (std::uint64_t& d : degrees) {
    if (d > 0) {
      --d;
      return;
    }
  }
}

}  // namespace

LfrGraph generate_lfr(const LfrParams& params) {
  if (params.mu < 0.0 || params.mu > 1.0)
    throw std::invalid_argument("generate_lfr: mu must lie in [0, 1]");
  if (params.cmin < 2 || params.cmin > params.cmax ||
      params.cmax > params.n)
    throw std::invalid_argument("generate_lfr: bad community size bounds");
  if ((1.0 - params.mu) * static_cast<double>(params.dmax) >
      static_cast<double>(params.cmax - 1))
    throw std::invalid_argument(
        "generate_lfr: internal degrees cannot fit the largest community");

  Xoshiro256ss rng(params.seed);
  std::uint64_t seed_chain = params.seed ^ 0x5851f42d4c957f2dULL;

  // 1. Global degrees and their mu split.
  std::vector<std::uint64_t> degree = sample_powerlaw_sequence(
      params.n, params.degree_exponent, params.dmin, params.dmax,
      splitmix64_next(seed_chain));
  std::vector<std::uint64_t> internal(params.n), external(params.n);
  for (std::uint64_t v = 0; v < params.n; ++v) {
    internal[v] = static_cast<std::uint64_t>(std::llround(
        (1.0 - params.mu) * static_cast<double>(degree[v])));
    internal[v] = std::min(internal[v], degree[v]);
    external[v] = degree[v] - internal[v];
  }

  // 2. Communities and the capacity-respecting assignment: vertices in
  // descending internal degree pick a random community that still has room
  // and is large enough (internal degree <= size - 1).
  const std::vector<std::uint64_t> sizes = sample_community_sizes(params, rng);
  const std::size_t num_communities = sizes.size();
  std::vector<std::uint64_t> remaining = sizes;
  std::vector<std::uint32_t> community(params.n, 0);

  std::vector<std::uint32_t> by_internal(params.n);
  std::iota(by_internal.begin(), by_internal.end(), 0u);
  std::stable_sort(by_internal.begin(), by_internal.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return internal[a] > internal[b];
                   });
  // Communities sorted descending by size; the feasible set for a vertex is
  // a prefix that only grows as internal degrees shrink.
  std::vector<std::size_t> community_order(num_communities);
  std::iota(community_order.begin(), community_order.end(), 0u);
  std::sort(community_order.begin(), community_order.end(),
            [&](std::size_t a, std::size_t b) { return sizes[a] > sizes[b]; });
  for (const std::uint32_t v : by_internal) {
    std::size_t feasible = 0;
    while (feasible < num_communities &&
           sizes[community_order[feasible]] > internal[v])
      ++feasible;
    if (feasible == 0) {
      // No community large enough: clamp the internal degree (counted as
      // external instead) and use the largest community.
      const std::uint64_t cap = sizes[community_order[0]] - 1;
      external[v] += internal[v] - cap;
      internal[v] = cap;
      feasible = 1;
    }
    // Random feasible community with room; fall back to a linear scan when
    // sampling keeps hitting full ones.
    std::size_t chosen = num_communities;
    for (int attempt = 0; attempt < 32; ++attempt) {
      const std::size_t c = community_order[rng.bounded(feasible)];
      if (remaining[c] > 0) {
        chosen = c;
        break;
      }
    }
    if (chosen == num_communities) {
      for (std::size_t k = 0; k < feasible; ++k) {
        if (remaining[community_order[k]] > 0) {
          chosen = community_order[k];
          break;
        }
      }
    }
    if (chosen == num_communities)
      throw std::invalid_argument(
          "generate_lfr: ran out of community capacity for high internal "
          "degrees; increase cmax or mu");
    community[v] = static_cast<std::uint32_t>(chosen);
    --remaining[chosen];
  }

  // 3. One null-model layer per community (internal degrees)...
  std::vector<std::vector<std::uint32_t>> members(num_communities);
  for (std::uint32_t v = 0; v < params.n; ++v)
    members[community[v]].push_back(v);

  // One governor spans every layer: the deadline clock starts here, the
  // layers borrow it through GovernanceConfig::external, and the seed chain
  // still advances for skipped layers so a curtailed run never perturbs the
  // seeds of the layers that did complete.
  const RunGovernor governor(params.governance.budget,
                             params.governance.cancel,
                             params.governance.watchdog);
  const RunGovernor* gov =
      params.governance.external != nullptr ? params.governance.external
      : params.governance.enabled           ? &governor
                                            : nullptr;
  GenerateConfig layer_config;
  layer_config.swap_iterations = params.swap_iterations;
  layer_config.governance.external = gov;
  layer_config.obs = params.obs;
  obs::Counter* c_layers = params.obs.metrics != nullptr
                               ? params.obs.metrics->counter(
                                     "lfr.community_layers_completed")
                               : nullptr;

  LfrGraph graph;
  EdgeList merged;
  for (std::size_t c = 0; c < num_communities; ++c) {
    layer_config.seed = splitmix64_next(seed_chain);
    if (gov != nullptr && gov->should_stop() != StatusCode::kOk) continue;
    if (members[c].size() < 2) {
      ++graph.communities_completed;
      continue;
    }
    obs::TraceSpan layer_span(params.obs.trace, "lfr community layer");
    std::vector<std::uint64_t> local_degrees(members[c].size());
    for (std::size_t k = 0; k < members[c].size(); ++k)
      local_degrees[k] = internal[members[c][k]];
    make_sum_even(local_degrees, members[c].size() - 1);
    GenerateResult layer = generate_for_sequence(local_degrees, layer_config);
    for (const Edge& e : layer.edges)
      merged.push_back({members[c][e.u], members[c][e.v]});
    if (gov == nullptr || !gov->stopped()) {
      ++graph.communities_completed;
      if (c_layers != nullptr) c_layers->add(1);
    }
  }

  // 4. ...plus one global external layer.
  {
    make_sum_even(external, params.n);  // ceiling n is never binding
    layer_config.seed = splitmix64_next(seed_chain);
    if (gov == nullptr || gov->should_stop() == StatusCode::kOk) {
      obs::TraceSpan layer_span(params.obs.trace, "lfr external layer");
      GenerateResult layer = generate_for_sequence(external, layer_config);
      merged.insert(merged.end(), layer.edges.begin(), layer.edges.end());
    }
  }

  // 5. Merge: layers are individually simple; drop the rare cross-layer
  // duplicate (an external edge landing inside a community on a pair that
  // is already internally connected).
  const std::size_t before = merged.size();
  graph.edges = erase_nonsimple(merged);
  graph.merged_duplicates = before - graph.edges.size();
  graph.community = std::move(community);
  graph.num_communities = num_communities;
  graph.achieved_mu = measured_mu(graph.edges, graph.community);
  if (gov != nullptr && gov->stopped()) graph.curtailed = gov->stop_reason();
  return graph;
}

double measured_mu(const EdgeList& edges,
                   const std::vector<std::uint32_t>& community) {
  if (edges.empty()) return 0.0;
  const exec::ParallelContext ctx;
  const std::size_t external = exec::reduce<std::size_t>(
      ctx, edges.size(), exec::kDefaultGrain, 0,
      [&](const exec::Chunk& chunk) {
        std::size_t mine = 0;
        for (std::size_t i = chunk.begin; i < chunk.end; ++i)
          if (community[edges[i].u] != community[edges[i].v]) ++mine;
        return mine;
      },
      [](std::size_t a, std::size_t b) { return a + b; });
  return static_cast<double>(external) / static_cast<double>(edges.size());
}

}  // namespace nullgraph
