#include "robustness/repair.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/rng.hpp"

namespace nullgraph {

namespace {

std::uint64_t target_of(const std::vector<std::uint64_t>& targets,
                        VertexId v) {
  return v < targets.size() ? targets[v] : 0;
}

}  // namespace

RepairStats repair_to_degrees(EdgeList& edges,
                              const std::vector<std::uint64_t>& target_degrees,
                              std::uint64_t seed,
                              std::size_t max_rewire_attempts) {
  RepairStats stats;

  // Phase 1: erase self-loops and duplicates, first occurrence wins.
  std::unordered_set<EdgeKey> keys;
  keys.reserve(edges.size() * 2);
  {
    std::size_t w = 0;
    for (std::size_t r = 0; r < edges.size(); ++r) {
      const Edge e = edges[r];
      if (e.is_loop()) {
        ++stats.loops_erased;
        continue;
      }
      if (!keys.insert(e.key()).second) {
        ++stats.duplicates_erased;
        continue;
      }
      edges[w++] = e;
    }
    edges.resize(w);
  }

  // Current degrees over every vertex either side mentions.
  std::size_t n = target_degrees.size();
  for (const Edge& e : edges)
    n = std::max({n, static_cast<std::size_t>(e.u) + 1,
                  static_cast<std::size_t>(e.v) + 1});
  std::vector<std::uint64_t> degree(n, 0);
  for (const Edge& e : edges) {
    ++degree[e.u];
    ++degree[e.v];
  }

  // Phase 2: shed surplus. Two sweeps — first edges whose both endpoints
  // are over target (pure gain), then one-sided removals (the freed
  // endpoint joins the deficit pool and is reconnected in phase 3).
  const auto over = [&](VertexId v) {
    return degree[v] > target_of(target_degrees, v);
  };
  for (int both_required = 1; both_required >= 0; --both_required) {
    std::size_t w = 0;
    for (std::size_t r = 0; r < edges.size(); ++r) {
      const Edge e = edges[r];
      const bool remove = both_required ? over(e.u) && over(e.v)
                                        : over(e.u) || over(e.v);
      if (remove) {
        --degree[e.u];
        --degree[e.v];
        keys.erase(e.key());
        ++stats.surplus_edges_removed;
        continue;
      }
      edges[w++] = e;
    }
    edges.resize(w);
  }

  // Phase 3: reconnect deficit stubs.
  std::vector<VertexId> stubs;
  for (std::size_t v = 0; v < n; ++v) {
    const std::uint64_t want = target_of(target_degrees,
                                         static_cast<VertexId>(v));
    for (std::uint64_t k = degree[v]; k < want; ++k)
      stubs.push_back(static_cast<VertexId>(v));
  }
  Xoshiro256ss rng(seed);
  for (std::size_t i = stubs.size(); i > 1; --i)
    std::swap(stubs[i - 1], stubs[rng.bounded(i)]);

  std::size_t s = 0;
  for (; s + 1 < stubs.size(); s += 2) {
    const VertexId u = stubs[s];
    const VertexId v = stubs[s + 1];
    const Edge direct{u, v};
    if (!direct.is_loop() && !keys.contains(direct.key())) {
      edges.push_back(direct);
      keys.insert(direct.key());
      ++stats.edges_added;
      continue;
    }
    // Targeted rewire: consume {u,v}'s stubs through an existing edge
    // {x,y} -> {u,x}, {v,y} (or {u,y}, {v,x}); x and y keep their degrees.
    // Both orientations matter: when one side of the host lives in a
    // saturated region (every edge to u already present), the mirror
    // pairing is often still free.
    const auto try_host = [&](std::size_t idx) {
      const Edge host = edges[idx];
      for (int flip = 0; flip < 2; ++flip) {
        const Edge a{u, flip ? host.v : host.u};
        const Edge b{v, flip ? host.u : host.v};
        if (a.is_loop() || b.is_loop() || a.key() == b.key()) continue;
        if (keys.contains(a.key()) || keys.contains(b.key())) continue;
        keys.erase(host.key());
        edges[idx] = a;
        edges.push_back(b);
        keys.insert(a.key());
        keys.insert(b.key());
        ++stats.rewired_patches;
        return true;
      }
      return false;
    };
    bool placed = false;
    for (std::size_t attempt = 0;
         attempt < max_rewire_attempts && !edges.empty(); ++attempt) {
      if (try_host(rng.bounded(edges.size()))) {
        placed = true;
        break;
      }
    }
    if (!placed && !edges.empty()) {
      // Random sampling exhausted: scan every edge once from a random
      // offset — finds a feasible host whenever one exists at all.
      const std::size_t start = rng.bounded(edges.size());
      for (std::size_t off = 0; off < edges.size(); ++off) {
        if (try_host((start + off) % edges.size())) {
          placed = true;
          break;
        }
      }
    }
    if (!placed) stats.residual_deficit += 2;
  }
  stats.residual_deficit += stubs.size() - s;  // odd stub out, if any
  return stats;
}

std::size_t sanitize_probabilities(ProbabilityMatrix& matrix) {
  std::size_t fixed = 0;
  const std::size_t nc = matrix.num_classes();
  for (std::size_t i = 0; i < nc; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double p = matrix.at(i, j);
      if (std::isfinite(p) && p >= 0.0 && p <= 1.0) continue;
      matrix.set(i, j, std::isfinite(p) ? std::clamp(p, 0.0, 1.0) : 0.0);
      ++fixed;
    }
  }
  return fixed;
}

}  // namespace nullgraph
