#include "robustness/governance.hpp"

namespace nullgraph {

StallWatchdog::StallWatchdog(WatchdogConfig config) : config_(config) {
  if (config_.enabled && config_.window > 0)
    samples_.assign(config_.window, {0, 0});
}

void StallWatchdog::record(std::size_t attempted, std::size_t swapped) {
  if (samples_.empty()) return;
  auto& slot = samples_[next_];
  window_attempted_ += attempted - slot.first;
  window_swapped_ += swapped - slot.second;
  slot = {attempted, swapped};
  next_ = (next_ + 1) % samples_.size();
  if (filled_ < samples_.size()) ++filled_;
}

bool StallWatchdog::stalled() const noexcept {
  if (samples_.empty() || filled_ < samples_.size()) return false;
  if (window_attempted_ == 0) return false;
  return window_acceptance() <= config_.min_acceptance;
}

double StallWatchdog::window_acceptance() const noexcept {
  if (window_attempted_ == 0) return 0.0;
  return static_cast<double>(window_swapped_) /
         static_cast<double>(window_attempted_);
}

StatusCode RunGovernor::should_stop() const noexcept {
  const StatusCode prior = stop_reason();
  if (prior != StatusCode::kOk) return prior;
  if (cancel_.cancelled()) {
    trip(StatusCode::kCancelled);
    return stop_reason();
  }
  if (budget_.deadline_ms != 0 &&
      elapsed_ms() >= static_cast<double>(budget_.deadline_ms)) {
    trip(StatusCode::kDeadlineExceeded);
    return stop_reason();
  }
  return StatusCode::kOk;
}

bool RunGovernor::memory_exceeded(std::size_t bytes) const noexcept {
  if (budget_.max_memory_bytes == 0 || bytes <= budget_.max_memory_bytes)
    return false;
  trip(StatusCode::kMemoryBudget);
  return true;
}

}  // namespace nullgraph
