#pragma once
// Run governance: the temporal half of the robustness layer. PR 1's
// guardrails answer "is the output correct?"; this layer answers "is the
// run still allowed to keep going?" — three concerns a long generation
// must respect when a service schedules it:
//
//   RunBudget      wall-clock deadline, swap-iteration cap, and an
//                  optional memory ceiling for the swap phase's buffers.
//   CancelToken    cooperative cancellation: a copyable handle onto a
//                  shared flag, safe to trip from another thread or a
//                  signal handler (the store is lock-free).
//   StallWatchdog  sliding-window acceptance tracking for the swap chain;
//                  terminates chains whose acceptance collapses with
//                  kSwapStalled instead of spinning out the budget.
//
// RunGovernor bundles the three and is checked at CHUNK granularity inside
// the parallel loops (per degree-class row in the prob solver, per task in
// edge-skip, per round in the permutation, per iteration and per pair
// block in the swap phase) — never per element, so default-on governance
// stays off the critical path. A verdict is STICKY: once a run trips, every
// later should_stop() returns the same code, letting all phases drain
// cooperatively. Expiry never throws; the pipeline degrades gracefully by
// returning the best-so-far graph and recording a Curtailment in the
// PipelineReport (see invariants.hpp).

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "robustness/status.hpp"

namespace nullgraph {

/// Resource limits for one generation run. Zero means "unlimited" on every
/// axis, which is the default and costs one branch per governed chunk.
struct RunBudget {
  /// Wall-clock deadline for the whole run, measured from RunGovernor
  /// construction. Expiry -> kDeadlineExceeded.
  std::uint64_t deadline_ms = 0;
  /// Cap on swap-chain iterations regardless of what the caller requested
  /// (a service-side guard against unbounded mixing requests). Hitting the
  /// cap curtails the swap phase with kDeadlineExceeded semantics.
  std::size_t max_swap_iterations = 0;
  /// Ceiling on the swap phase's estimated buffer footprint (edge list +
  /// hash table + permutation targets). Exceeding it skips the phase with
  /// kMemoryBudget rather than risking the allocation.
  std::size_t max_memory_bytes = 0;

  bool unlimited() const noexcept {
    return deadline_ms == 0 && max_swap_iterations == 0 &&
           max_memory_bytes == 0;
  }
};

/// Copyable handle onto a shared cancellation flag. All copies observe the
/// same flag, so a token handed to a worker can be tripped from the caller,
/// another thread, or a signal handler (atomic store, async-signal-safe).
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void request_cancel() const noexcept {
    // relaxed: a standalone flag with no dependent data; pollers only need
    // eventual visibility, and relaxed keeps the store signal-safe & cheap.
    flag_->store(true, std::memory_order_relaxed);
  }
  [[nodiscard]] bool cancelled() const noexcept {
    // relaxed: see request_cancel — the flag orders nothing but itself.
    return flag_->load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Swap-chain stall detection policy. With the defaults the watchdog only
/// fires when `window` CONSECUTIVE iterations commit zero swaps while
/// proposing at least one — the deterministic signature of the rare-event
/// MCMC stall that force_swap_stall injects — so ordinary low-acceptance
/// chains are never cut.
struct WatchdogConfig {
  bool enabled = true;
  /// Sliding-window length in swap iterations; a verdict needs a full
  /// window, so chains shorter than this are never flagged.
  std::size_t window = 8;
  /// Windowed acceptance (committed / attempted) at or below this value
  /// is a stall. 0.0 means "only an all-zero window stalls".
  double min_acceptance = 0.0;
};

/// Sliding-window acceptance tracker implementing WatchdogConfig. Not
/// thread-safe; the swap phase feeds it from its serial per-iteration
/// bookkeeping.
class StallWatchdog {
 public:
  explicit StallWatchdog(WatchdogConfig config = {});

  /// Records one swap iteration's (attempted, committed) pair counts.
  void record(std::size_t attempted, std::size_t swapped);

  /// True when the window is full and its acceptance is at or below the
  /// configured floor (and at least one pair was attempted).
  [[nodiscard]] bool stalled() const noexcept;

  /// Committed / attempted over the current window contents (0 when the
  /// window is empty or nothing was attempted).
  [[nodiscard]] double window_acceptance() const noexcept;

 private:
  WatchdogConfig config_;
  std::vector<std::pair<std::size_t, std::size_t>> samples_;  // ring buffer
  std::size_t next_ = 0;
  std::size_t filled_ = 0;
  std::size_t window_attempted_ = 0;
  std::size_t window_swapped_ = 0;
};

/// One run's governance state: budget + cancel token + watchdog policy and
/// the sticky verdict. Thread-safe: should_stop() may be called from any
/// thread inside parallel regions; the first non-Ok verdict wins and is
/// returned forever after.
class RunGovernor {
 public:
  /// Ungoverned: unlimited budget, private token, default watchdog. Never
  /// stops unless note_stop() is called.
  RunGovernor() : RunGovernor(RunBudget{}, CancelToken{}, WatchdogConfig{}) {}

  RunGovernor(RunBudget budget, CancelToken cancel,
              WatchdogConfig watchdog = {})
      : budget_(budget),
        cancel_(std::move(cancel)),
        watchdog_(watchdog),
        start_(std::chrono::steady_clock::now()) {}

  /// kOk while the run may continue; kCancelled / kDeadlineExceeded once
  /// it may not. Sticky. Cancellation outranks the deadline.
  StatusCode should_stop() const noexcept;

  /// The sticky verdict without consulting the clock or token again.
  [[nodiscard]] StatusCode stop_reason() const noexcept {
    // relaxed: the verdict is a monotonic kOk->reason latch with no
    // dependent payload; a stale kOk read just delays draining one chunk.
    return static_cast<StatusCode>(tripped_.load(std::memory_order_relaxed));
  }
  [[nodiscard]] bool stopped() const noexcept {
    return stop_reason() != StatusCode::kOk;
  }

  /// Records an externally-decided stop (e.g. the swap phase's watchdog or
  /// iteration-budget verdicts) so later phases observe it too. First
  /// reason wins.
  void note_stop(StatusCode reason) const noexcept { trip(reason); }

  /// True (and the run trips kMemoryBudget) when `bytes` exceeds the
  /// configured ceiling; false (no side effect) otherwise.
  bool memory_exceeded(std::size_t bytes) const noexcept;

  /// Side-effect-free variant of memory_exceeded(): true when `bytes` is
  /// over the ceiling, but the verdict is NOT tripped. Spill-capable phases
  /// ask this first so crossing the ceiling degrades to disk (recorded as a
  /// DegradationEvent) instead of aborting the run with kMemoryBudget.
  [[nodiscard]] bool would_exceed_memory(std::size_t bytes) const noexcept {
    return budget_.max_memory_bytes != 0 && bytes > budget_.max_memory_bytes;
  }

  [[nodiscard]] double elapsed_ms() const noexcept {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

  const RunBudget& budget() const noexcept { return budget_; }
  const WatchdogConfig& watchdog() const noexcept { return watchdog_; }

 private:
  void trip(StatusCode reason) const noexcept {
    int expected = static_cast<int>(StatusCode::kOk);
    // relaxed: first-reason-wins CAS on a self-contained latch; no other
    // memory is published under this verdict, so no ordering is needed.
    tripped_.compare_exchange_strong(expected, static_cast<int>(reason),
                                     std::memory_order_relaxed);
  }

  RunBudget budget_;
  CancelToken cancel_;
  WatchdogConfig watchdog_;
  std::chrono::steady_clock::time_point start_;
  /// StatusCode of the first stop verdict (kOk while running). Mutable +
  /// atomic: should_stop() is const and called concurrently.
  mutable std::atomic<int> tripped_{static_cast<int>(StatusCode::kOk)};
};

}  // namespace nullgraph
