#pragma once
// Typed status layer: every way the generation pipeline can fail gets a
// stable code, so callers (and the CLI's exit-status contract) can react
// programmatically instead of string-matching exception messages. Status
// and Result<T> are the exception-free surface; StatusError carries a
// Status through the legacy throwing APIs (it derives from
// std::runtime_error, so existing catch sites keep working).

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace nullgraph {

/// Stable error taxonomy. Codes are append-only: their numeric values and
/// the CLI exit statuses derived from them are a documented contract
/// (README "Error handling & recovery"). The contract is machine-checked:
/// the semantic analyzer's exit-contract rule (scripts/analyze/) verifies
/// on every check run that this enum, the status_exit_code /
/// status_code_name switches, and the README exit-code table agree — add
/// a code here and the check tier fails until all three are updated.
enum class [[nodiscard]] StatusCode : int {
  kOk = 0,
  kInvalidArgument,        // caller passed something unusable (usage level)
  kIoError,                // file unreadable / unwritable
  kIoMalformed,            // parse failure: bad token, trailing garbage
  kNotGraphical,           // Erdős–Gallai rejects the input distribution
  kProbabilityOverflow,    // matrix entry outside [0,1] or non-finite
  kNonSimpleOutput,        // self-loops / multi-edges survived a phase
  kDegreeMismatch,         // degree sequence not preserved across a phase
  kSwapStagnation,         // swap chain made no progress on a dirty graph
  kConnectivityExhausted,  // connected-variant retry budget spent
  kRepairIncomplete,       // repair pass could not place all deficit stubs
  kInternal,               // unclassified failure
  kDeadlineExceeded,       // RunBudget wall-clock / iteration cap expired
  kCancelled,              // CancelToken tripped (signal or caller request)
  kSwapStalled,            // watchdog: swap acceptance collapsed to zero
  kCapacityExhausted,      // ConcurrentHashSet probe budget spent (table full)
  kMemoryBudget,           // RunBudget memory ceiling would be exceeded
  kCheckpointInvalid,      // checkpoint file failed magic/version/CRC checks
  kOverloaded,             // service admission control rejected the job
  kJobEvicted,             // queued/in-flight job dropped by daemon lifecycle
  kClientProtocol,         // malformed/slow client traffic on the wire
  kShardCorrupt,           // spill shard failed CRC/framing checks (fsck/resume)
};

/// Short stable identifier, e.g. "kNotGraphical".
[[nodiscard]] const char* status_code_name(StatusCode code) noexcept;

/// Process exit status the CLI maps each code to: 0 ok, 1 usage,
/// 2 unclassified runtime failure, 3+ one per typed class (stable).
[[nodiscard]] int status_exit_code(StatusCode code) noexcept;

/// [[nodiscard]]: a dropped Status is a swallowed failure. The analysis
/// tier (scripts/check.sh, -Werror=unused-result) turns any discard into a
/// build error; intentional discards must say why next to a (void) cast.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  [[nodiscard]] bool ok() const noexcept { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept {
    return message_;
  }

  /// "kNotGraphical: degree 9 exceeds n-1=7" (or "kOk").
  [[nodiscard]] std::string to_string() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Exception shim for the legacy throwing APIs: a Status that travels as a
/// std::runtime_error so pre-existing catch sites stay valid.
class StatusError : public std::runtime_error {
 public:
  explicit StatusError(Status status)
      : std::runtime_error(status.to_string()), status_(std::move(status)) {}

  const Status& status() const noexcept { return status_; }
  StatusCode code() const noexcept { return status_.code(); }

 private:
  Status status_;
};

/// Either a value or a non-ok Status. Minimal by design: the pipeline only
/// needs construction, ok(), value access, and status access.
/// [[nodiscard]] for the same reason as Status: dropping a Result drops
/// both the value and the failure it may carry.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    // A Result must never hold an OK status without a value.
    if (std::get<Status>(data_).ok())
      data_ = Status(StatusCode::kInternal, "Result built from ok status");
  }

  [[nodiscard]] bool ok() const noexcept {
    return std::holds_alternative<T>(data_);
  }

  [[nodiscard]] Status status() const {
    return ok() ? Status::Ok() : std::get<Status>(data_);
  }

  [[nodiscard]] T& value() & { return std::get<T>(data_); }
  [[nodiscard]] const T& value() const& { return std::get<T>(data_); }
  [[nodiscard]] T&& value() && { return std::get<T>(std::move(data_)); }

  /// Value or throw the carried status as a StatusError.
  [[nodiscard]] T take() && {
    if (!ok()) throw StatusError(std::get<Status>(data_));
    return std::get<T>(std::move(data_));
  }

 private:
  std::variant<T, Status> data_;
};

}  // namespace nullgraph
