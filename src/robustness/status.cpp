#include "robustness/status.hpp"

namespace nullgraph {

const char* status_code_name(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "kOk";
    case StatusCode::kInvalidArgument: return "kInvalidArgument";
    case StatusCode::kIoError: return "kIoError";
    case StatusCode::kIoMalformed: return "kIoMalformed";
    case StatusCode::kNotGraphical: return "kNotGraphical";
    case StatusCode::kProbabilityOverflow: return "kProbabilityOverflow";
    case StatusCode::kNonSimpleOutput: return "kNonSimpleOutput";
    case StatusCode::kDegreeMismatch: return "kDegreeMismatch";
    case StatusCode::kSwapStagnation: return "kSwapStagnation";
    case StatusCode::kConnectivityExhausted: return "kConnectivityExhausted";
    case StatusCode::kRepairIncomplete: return "kRepairIncomplete";
    case StatusCode::kInternal: return "kInternal";
    case StatusCode::kDeadlineExceeded: return "kDeadlineExceeded";
    case StatusCode::kCancelled: return "kCancelled";
    case StatusCode::kSwapStalled: return "kSwapStalled";
    case StatusCode::kCapacityExhausted: return "kCapacityExhausted";
    case StatusCode::kMemoryBudget: return "kMemoryBudget";
    case StatusCode::kCheckpointInvalid: return "kCheckpointInvalid";
    case StatusCode::kOverloaded: return "kOverloaded";
    case StatusCode::kJobEvicted: return "kJobEvicted";
    case StatusCode::kClientProtocol: return "kClientProtocol";
    case StatusCode::kShardCorrupt: return "kShardCorrupt";
  }
  return "kUnknown";
}

int status_exit_code(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return 0;
    case StatusCode::kInvalidArgument: return 1;
    case StatusCode::kInternal: return 2;
    case StatusCode::kIoError: return 3;
    case StatusCode::kIoMalformed: return 4;
    case StatusCode::kNotGraphical: return 5;
    case StatusCode::kProbabilityOverflow: return 6;
    case StatusCode::kNonSimpleOutput: return 7;
    case StatusCode::kDegreeMismatch: return 8;
    case StatusCode::kSwapStagnation: return 9;
    case StatusCode::kConnectivityExhausted: return 10;
    case StatusCode::kRepairIncomplete: return 11;
    case StatusCode::kDeadlineExceeded: return 12;
    case StatusCode::kCancelled: return 13;
    case StatusCode::kSwapStalled: return 14;
    case StatusCode::kCapacityExhausted: return 15;
    case StatusCode::kMemoryBudget: return 16;
    case StatusCode::kCheckpointInvalid: return 17;
    case StatusCode::kOverloaded: return 18;
    case StatusCode::kJobEvicted: return 19;
    case StatusCode::kClientProtocol: return 20;
    case StatusCode::kShardCorrupt: return 21;
  }
  return 2;
}

std::string Status::to_string() const {
  std::string out = status_code_name(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace nullgraph
