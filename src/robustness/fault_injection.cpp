#include "robustness/fault_injection.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace nullgraph {

EdgeFaultStats inject_edge_faults(EdgeList& edges, const FaultPlan& plan,
                                  const obs::ObsContext& obs) {
  EdgeFaultStats stats;
  if (!plan.edge_faults() || edges.empty()) return stats;
  if (obs.trace != nullptr) obs.trace->instant("fault: edge faults injected");
  Xoshiro256ss rng(plan.seed);
  for (std::size_t k = 0; k < plan.drop_edges && !edges.empty(); ++k) {
    const std::size_t i = rng.bounded(edges.size());
    edges[i] = edges.back();
    edges.pop_back();
    ++stats.dropped;
  }
  for (std::size_t k = 0; k < plan.duplicate_edges && !edges.empty(); ++k) {
    edges.push_back(edges[rng.bounded(edges.size())]);
    ++stats.duplicated;
  }
  for (std::size_t k = 0; k < plan.self_loops && !edges.empty(); ++k) {
    const Edge e = edges[rng.bounded(edges.size())];
    const VertexId v = rng.flip() ? e.u : e.v;
    edges.push_back({v, v});
    ++stats.loops_added;
  }
  if (obs.metrics != nullptr) {
    obs.metrics->counter("faults.edges_dropped")->add(stats.dropped);
    obs.metrics->counter("faults.edges_duplicated")->add(stats.duplicated);
    obs.metrics->counter("faults.self_loops_added")->add(stats.loops_added);
  }
  return stats;
}

std::size_t inject_probability_faults(ProbabilityMatrix& matrix,
                                      const FaultPlan& plan,
                                      const obs::ObsContext& obs) {
  const std::size_t nc = matrix.num_classes();
  if (plan.corrupt_prob_entries == 0 || nc == 0) return 0;
  if (obs.trace != nullptr)
    obs.trace->instant("fault: probability entries corrupted");
  Xoshiro256ss rng(plan.seed ^ 0x9e3779b97f4a7c15ULL);
  std::size_t poisoned = 0;
  for (std::size_t k = 0; k < plan.corrupt_prob_entries; ++k) {
    const std::size_t i = rng.bounded(nc);
    const std::size_t j = rng.bounded(nc);
    matrix.set(i, j, plan.corrupt_prob_value);
    ++poisoned;
  }
  if (obs.metrics != nullptr)
    obs.metrics->counter("faults.prob_entries_corrupted")->add(poisoned);
  return poisoned;
}

}  // namespace nullgraph
