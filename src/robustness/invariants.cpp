#include "robustness/invariants.hpp"

#include <cmath>

#include "exec/exec.hpp"

namespace nullgraph {

std::string PipelineReport::summary() const {
  std::string out;
  for (const PhaseCheck& c : checks) {
    out += c.phase;
    out += ": ";
    out += c.status.ok() ? "ok" : c.status.to_string();
    if (c.repaired) out += " (repaired)";
    out += '\n';
  }
  for (const Curtailment& c : curtailments) {
    out += c.phase;
    out += ": curtailed (";
    out += status_code_name(c.reason);
    out += ") after ";
    out += std::to_string(c.completed);
    out += '/';
    out += std::to_string(c.requested);
    if (c.acceptance > 0.0) {
      out += ", acceptance ";
      out += std::to_string(c.acceptance);
    }
    out += '\n';
  }
  for (const DegradationEvent& d : degradations) {
    out += d.phase;
    out += ": degraded to ";
    out += d.action;
    out += " (";
    out += status_code_name(d.trigger);
    out += " avoided)";
    if (!d.detail.empty()) {
      out += ": ";
      out += d.detail;
    }
    out += '\n';
  }
  for (const exec::PhaseTiming& t : phase_timings) {
    out += t.phase;
    out += ": ";
    out += std::to_string(t.wall_ms);
    out += " ms over ";
    out += std::to_string(t.chunks);
    out += " chunks";
    if (t.chunks_skipped > 0) {
      out += " (";
      out += std::to_string(t.chunks_skipped);
      out += " skipped by governance)";
    }
    out += ", ";
    out += std::to_string(t.threads);
    out += " threads\n";
  }
  return out;
}

Status check_graphical(const DegreeDistribution& dist) {
  if (dist.is_graphical()) return Status::Ok();
  return Status(StatusCode::kNotGraphical,
                "no simple graph realizes this degree distribution "
                "(Erdős–Gallai)");
}

Status check_probability_matrix(const ProbabilityMatrix& matrix,
                                const DegreeDistribution& dist,
                                double degree_tolerance) {
  const std::size_t nc = matrix.num_classes();
  for (std::size_t i = 0; i < nc; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double p = matrix.at(i, j);
      if (!std::isfinite(p))
        return Status(StatusCode::kProbabilityOverflow,
                      "non-finite probability at class pair (" +
                          std::to_string(i) + "," + std::to_string(j) + ")");
      if (p < 0.0 || p > 1.0)
        return Status(StatusCode::kProbabilityOverflow,
                      "probability " + std::to_string(p) +
                          " outside [0,1] at class pair (" +
                          std::to_string(i) + "," + std::to_string(j) + ")");
    }
  }
  // Soft check: the expected-degree system. Large residuals are a quality
  // signal (diagnose() exposes them too), not an invariant violation — but
  // surface the worst offender so strict callers can log it.
  double worst = 0.0;
  for (std::size_t c = 0; c < nc; ++c) {
    const double target = static_cast<double>(dist.degree_of_class(c));
    if (target <= 0.0) continue;
    const double err =
        std::abs(matrix.expected_degree(c, dist) - target) / target;
    worst = std::max(worst, err);
  }
  if (worst > degree_tolerance)
    return Status(StatusCode::kOk,
                  "expected-degree relative error " + std::to_string(worst) +
                      " exceeds tolerance (quality warning)");
  return Status::Ok();
}

Status check_simple(const EdgeList& edges) {
  return check_simple(census(edges));
}

Status check_simple(const SimplicityCensus& counts) {
  if (counts.simple()) return Status::Ok();
  return Status(StatusCode::kNonSimpleOutput,
                std::to_string(counts.self_loops) + " self-loops, " +
                    std::to_string(counts.multi_edges) + " multi-edges");
}

Status check_degrees_preserved(const std::vector<std::uint64_t>& expected,
                               const EdgeList& edges) {
  const std::vector<std::uint64_t> got = degrees_of(edges, expected.size());
  if (got.size() != expected.size())
    return Status(StatusCode::kDegreeMismatch,
                  "vertex count changed: " + std::to_string(expected.size()) +
                      " -> " + std::to_string(got.size()));
  for (std::size_t v = 0; v < got.size(); ++v) {
    if (got[v] != expected[v])
      return Status(StatusCode::kDegreeMismatch,
                    "vertex " + std::to_string(v) + " degree " +
                        std::to_string(expected[v]) + " -> " +
                        std::to_string(got[v]));
  }
  return Status::Ok();
}

namespace {

/// splitmix64 finalizer: full-avalanche per-vertex mix so the weighted sum
/// over degrees cannot cancel except by 64-bit coincidence.
std::uint64_t mix(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

std::uint64_t degree_fingerprint(const EdgeList& edges) {
  const exec::ParallelContext ctx;
  return exec::reduce<std::uint64_t>(
      ctx, edges.size(), exec::kDefaultGrain, 0,
      [&](const exec::Chunk& chunk) {
        std::uint64_t fp = 0;
        for (std::size_t i = chunk.begin; i < chunk.end; ++i)
          fp += mix(edges[i].u) + mix(edges[i].v);
        return fp;
      },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
}

Status check_degree_fingerprint(std::uint64_t expected,
                                const EdgeList& edges) {
  if (degree_fingerprint(edges) == expected) return Status::Ok();
  return Status(StatusCode::kDegreeMismatch,
                "degree-sequence fingerprint changed across the pipeline");
}

}  // namespace nullgraph
