#pragma once
// Per-phase invariant checks and the PipelineReport they accumulate into.
//
// Each phase of Algorithm IV.1 has a property the correctness argument
// leans on but the code historically never verified at runtime:
//   input           the distribution is graphical (Erdős–Gallai)
//   probabilities   every entry finite and in [0,1]; expected degrees
//                   close to target
//   edge generation simple output (census-based)
//   swaps           simplicity no worse, degree sequence preserved
// check_* functions verify one property and return a typed Status;
// PipelineReport records one PhaseCheck per check plus what recovery did
// about any violation. GuardrailConfig selects how violations are handled.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "ds/degree_distribution.hpp"
#include "ds/edge_list.hpp"
#include "exec/phase_timing.hpp"
#include "prob/probability_matrix.hpp"
#include "robustness/fault_injection.hpp"
#include "robustness/repair.hpp"
#include "robustness/status.hpp"

namespace nullgraph {

enum class RecoveryPolicy {
  kOff,     // no checks, no report (the pre-guardrail fast path)
  kReport,  // default: run checks, record violations, never alter output
  kStrict,  // first violation aborts with its typed StatusError
  kRepair,  // retry-with-reseed, then repair pass; report what was done
};

struct GuardrailConfig {
  RecoveryPolicy policy = RecoveryPolicy::kReport;
  /// Swap-phase retries with a reseeded chain before repair kicks in
  /// (kRepair only).
  std::size_t max_retries = 2;
  /// Seeded fault injection; inert unless armed (see fault_injection.hpp).
  FaultPlan faults;
};

struct PhaseCheck {
  std::string phase;   // "input", "probabilities", "edge generation", "swaps"
  Status status;       // violation found by the check (kOk when clean)
  bool repaired = false;  // recovery restored the invariant afterwards

  /// A check "holds" when the invariant was clean or has been repaired.
  bool holds() const noexcept { return status.ok() || repaired; }
};

/// One phase cut short by run governance (deadline, cancellation, stall
/// watchdog, or memory budget). Informational, never a failed check: a
/// curtailed run still returns its best-so-far graph, and kStrict does not
/// throw on curtailments — the caller reads the typed reason instead.
struct Curtailment {
  std::string phase;       // which phase was cut short
  StatusCode reason = StatusCode::kOk;  // kDeadlineExceeded / kCancelled / ...
  /// Work completed when the cut happened, e.g. swap iterations finished
  /// out of those requested.
  std::size_t completed = 0;
  std::size_t requested = 0;
  /// Swap phase only: accepted-swap fraction over the whole chain so far —
  /// "how mixed" the returned graph is. 0 for non-swap phases.
  double acceptance = 0.0;
};

/// One graceful-degradation decision: the run KEPT GOING in a reduced mode
/// instead of tripping a budget abort. Curtailment's sibling — curtailments
/// record work cut short, degradations record work re-routed (the memory
/// ceiling's spill-and-continue path: "edge generation" re-routed to disk,
/// "swaps" skipped because the graph never materializes in memory).
/// Informational like curtailments: never a failed check, never an abort,
/// and never an exit-code change — the run report is where they surface.
struct DegradationEvent {
  std::string phase;   // phase that degraded
  std::string action;  // what it did instead, e.g. "spill-to-disk"
  StatusCode trigger = StatusCode::kOk;  // budget that WOULD have tripped
  std::string detail;  // specifics for the report (dir, shard count, ...)
};

struct PipelineReport {
  std::vector<PhaseCheck> checks;
  std::vector<Curtailment> curtailments;
  std::vector<DegradationEvent> degradations;
  /// Per-phase execution records from the exec layer: wall time, chunk
  /// counts, and how many chunks governance skipped. Aggregated by phase
  /// name (see exec/phase_timing.hpp).
  std::vector<exec::PhaseTiming> phase_timings;
  std::size_t retries_used = 0;
  RepairStats repair;
  std::size_t probability_entries_sanitized = 0;
  /// What seeded fault injection actually did to this run (all zero when
  /// the FaultPlan was inert). Recorded so an injected fault is visible in
  /// the --report-json output, not just in the damage it causes.
  EdgeFaultStats faults_injected;
  std::size_t prob_entries_corrupted = 0;
  /// First governance stop reason, kOk for a run that went the distance.
  StatusCode curtailed_by() const noexcept {
    return curtailments.empty() ? StatusCode::kOk : curtailments.front().reason;
  }

  bool ok() const noexcept {
    for (const PhaseCheck& c : checks)
      if (!c.holds()) return false;
    return true;
  }
  /// First unrepaired violation (Ok when none).
  Status first_error() const {
    for (const PhaseCheck& c : checks)
      if (!c.holds()) return c.status;
    return Status::Ok();
  }
  /// One line per check, for logs / --verbose CLI output.
  std::string summary() const;
};

/// Erdős–Gallai gate on the input distribution.
Status check_graphical(const DegreeDistribution& dist);

/// Bounds and finiteness of every entry, plus the expected-degree system:
/// worst per-class relative error above `degree_tolerance` is reported in
/// the message (entries outside [0,1] are the hard failure).
Status check_probability_matrix(const ProbabilityMatrix& matrix,
                                const DegreeDistribution& dist,
                                double degree_tolerance = 0.25);

/// census()-based simplicity.
Status check_simple(const EdgeList& edges);

/// Same verdict from counts a caller already has (e.g. the swap phase
/// counts its input census while refilling the edge table — reusing it
/// keeps the default-on checks off the critical path).
Status check_simple(const SimplicityCensus& counts);

/// Exact degree-sequence preservation against a snapshot.
Status check_degrees_preserved(const std::vector<std::uint64_t>& expected,
                               const EdgeList& edges);

/// Order-independent 64-bit digest of the degree sequence:
/// sum over edges of mix(u) + mix(v) == sum over vertices of
/// degree(v) * mix(v), so equal digests mean equal degree sequences up to
/// a ~2^-64 collision. One streaming pass, no per-vertex array — this is
/// what the default-on degree check uses; kRepair recomputes exact
/// degrees from its pristine snapshot only when a repair actually runs.
std::uint64_t degree_fingerprint(const EdgeList& edges);

/// Degree preservation at fingerprint fidelity.
Status check_degree_fingerprint(std::uint64_t expected,
                                const EdgeList& edges);

}  // namespace nullgraph
