#pragma once
// Repair pass: restore simplicity and a target degree sequence on a
// damaged edge list (the recovery arm of the pipeline guardrails).
//
// The pass (after Bhuiyan et al.'s treat-infeasibility-as-a-phase design):
//   1. erase self-loops and duplicate edges (keep the first occurrence),
//   2. remove edges incident to vertices whose degree exceeds target
//      (preferring edges whose BOTH endpoints are over target),
//   3. collect the remaining per-vertex degree deficit as a stub list,
//      shuffle it (seeded), and reconnect pairs of stubs — directly when
//      the new edge is simple, otherwise through a targeted rewire: pick
//      an existing edge {x,y}, replace it with {u,x} and {v,y} (degrees of
//      x and y unchanged, u and v gain one each).
// Failures are bounded: a stub pair gets a fixed number of rewire
// attempts; what cannot be placed is reported as residual_deficit rather
// than looping forever. Deterministic for a fixed (input, targets, seed).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ds/edge_list.hpp"
#include "prob/probability_matrix.hpp"

namespace nullgraph {

struct RepairStats {
  std::size_t loops_erased = 0;
  std::size_t duplicates_erased = 0;
  std::size_t surplus_edges_removed = 0;
  std::size_t edges_added = 0;      // deficit stub pairs joined directly
  std::size_t rewired_patches = 0;  // stub pairs placed through a rewire
  std::size_t residual_deficit = 0; // stubs that could not be placed

  bool complete() const noexcept { return residual_deficit == 0; }
  bool touched() const noexcept {
    return loops_erased || duplicates_erased || surplus_edges_removed ||
           edges_added || rewired_patches;
  }
};

/// Repairs `edges` in place toward `target_degrees` (indexed by vertex id;
/// vertices beyond the vector are treated as target 0). Output is always
/// simple; the degree sequence matches the target exactly iff
/// stats.complete().
RepairStats repair_to_degrees(EdgeList& edges,
                              const std::vector<std::uint64_t>& target_degrees,
                              std::uint64_t seed = 1,
                              std::size_t max_rewire_attempts = 64);

/// Clamps every matrix entry into [0,1] and zeroes non-finite ones;
/// returns how many entries were altered. The repair-mode answer to
/// kProbabilityOverflow.
std::size_t sanitize_probabilities(ProbabilityMatrix& matrix);

}  // namespace nullgraph
