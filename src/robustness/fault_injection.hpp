#pragma once
// Deterministic, seeded fault injection for the generation pipeline.
//
// A FaultPlan is compiled in always and threaded through GenerateConfig,
// but a default-constructed plan is inert (active() == false) and costs one
// branch per phase. Tests — and the CLI's --inject-* flags — arm it to
// force every recovery path (repair, retry-with-reseed, typed failure)
// through the same code paths production would take, so error handling is
// exercised rather than trusted on faith.
//
// Faults are applied at fixed pipeline points:
//   drop_edges / duplicate_edges / self_loops  -> after edge generation
//                                                 (or on shuffle input)
//   corrupt_prob_entries                       -> after the probability
//                                                 heuristic, before checks
//   force_swap_stall                           -> replaces the swap phase
//                                                 with a zero-progress one
// All randomness derives from FaultPlan::seed, independent of the
// generation seed, so a fault scenario reproduces exactly.

#include <cstddef>
#include <cstdint>

#include "ds/edge_list.hpp"
#include "obs/obs_context.hpp"
#include "prob/probability_matrix.hpp"

namespace nullgraph {

struct FaultPlan {
  std::uint64_t seed = 0xfa017ULL;

  /// Remove this many randomly chosen edges (creates a degree deficit).
  std::size_t drop_edges = 0;
  /// Append copies of this many randomly chosen existing edges
  /// (creates multi-edges and a degree surplus).
  std::size_t duplicate_edges = 0;
  /// Append this many self-loops on randomly chosen existing endpoints.
  std::size_t self_loops = 0;

  /// Overwrite this many probability entries with corrupt_prob_value.
  std::size_t corrupt_prob_entries = 0;
  /// The poison value (default out-of-range; NaN also supported — the
  /// edge-skip traversal must survive either).
  double corrupt_prob_value = 4.0;

  /// Replace the swap phase with one that commits nothing, simulating the
  /// rare-event MCMC stall on pathological inputs.
  bool force_swap_stall = false;

  /// Sleep this long at the top of every swap iteration — and, in spill
  /// mode, before every shard commit — simulating a slow phase so
  /// deadline/watchdog paths and mid-spill SIGKILL windows can be drilled
  /// deterministically (--inject-slow-ms).
  std::uint64_t slow_phase_ms = 0;

  /// Fail the first N periodic checkpoint writes with a synthesized
  /// kIoError (ENOSPC/EIO drill, --inject-ckpt-fail). Each failed write
  /// still gets the bounded-backoff retry policy, so N<attempts exercises
  /// the recovered path and N>=attempts the surfaced-kIoError path.
  std::size_t fail_checkpoint_writes = 0;

  /// Fail the first N spill-shard commit attempts with a synthesized
  /// kIoError (--inject-spill-fail). Same retry policy as checkpoints;
  /// exhausting every attempt surfaces kIoError from the spill phase,
  /// because a lost shard — unlike a lost snapshot — is lost data.
  std::size_t fail_spill_writes = 0;

  // Daemon-level chaos hooks (nullgraph serve; inert for one-shot runs):

  /// Drop the first N accepted connections before reading a byte
  /// (--inject-accept-fail): clients see a clean close, the accept loop
  /// must keep serving everyone else.
  std::size_t accept_fail = 0;
  /// Treat every connection as a client that stalls this long mid-request
  /// (--inject-slow-client-ms): drives the daemon's request read deadline,
  /// which must answer kClientProtocol instead of wedging a reader slot.
  std::uint64_t slow_client_ms = 0;

  bool active() const noexcept {
    return drop_edges || duplicate_edges || self_loops ||
           corrupt_prob_entries || force_swap_stall || slow_phase_ms;
  }
  bool edge_faults() const noexcept {
    return drop_edges || duplicate_edges || self_loops;
  }
};

struct EdgeFaultStats {
  std::size_t dropped = 0;
  std::size_t duplicated = 0;
  std::size_t loops_added = 0;
};

/// Applies the plan's edge faults to `edges` in place (no-op when none are
/// armed). Deterministic for a fixed plan. When telemetry is attached, each
/// applied fault bumps a faults.* counter and armed plans emit an instant
/// trace event, so an injected fault is visible in the run report, not just
/// in the damage it causes.
EdgeFaultStats inject_edge_faults(EdgeList& edges, const FaultPlan& plan,
                                  const obs::ObsContext& obs = {});

/// Overwrites corrupt_prob_entries randomly chosen entries of `matrix` with
/// corrupt_prob_value; returns the number actually poisoned. Telemetry as
/// for inject_edge_faults.
std::size_t inject_probability_faults(ProbabilityMatrix& matrix,
                                      const FaultPlan& plan,
                                      const obs::ObsContext& obs = {});

}  // namespace nullgraph
