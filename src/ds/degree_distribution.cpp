#include "ds/degree_distribution.hpp"

#include <algorithm>
#include <stdexcept>

#include "ds/edge_list.hpp"
#include "exec/exec.hpp"

namespace nullgraph {

DegreeDistribution::DegreeDistribution(std::vector<DegreeClass> classes)
    : classes_(std::move(classes)) {
  std::sort(classes_.begin(), classes_.end(),
            [](const DegreeClass& a, const DegreeClass& b) {
              return a.degree < b.degree;
            });
  // Merge duplicate degrees, drop empty classes.
  std::size_t out = 0;
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    if (classes_[i].count == 0) continue;
    if (out > 0 && classes_[out - 1].degree == classes_[i].degree) {
      classes_[out - 1].count += classes_[i].count;
    } else {
      classes_[out++] = classes_[i];
    }
  }
  classes_.resize(out);
  rebuild();
  if (total_stubs_ % 2 != 0) {
    throw std::invalid_argument(
        "DegreeDistribution: total degree is odd; no graph realizes it");
  }
}

void DegreeDistribution::rebuild() {
  offsets_.assign(classes_.size() + 1, 0);
  total_vertices_ = 0;
  total_stubs_ = 0;
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    offsets_[c] = total_vertices_;
    total_vertices_ += classes_[c].count;
    total_stubs_ += classes_[c].degree * classes_[c].count;
  }
  offsets_[classes_.size()] = total_vertices_;
}

DegreeDistribution DegreeDistribution::from_degree_sequence(
    const std::vector<std::uint64_t>& degrees) {
  std::vector<std::uint64_t> sorted = degrees;
  std::sort(sorted.begin(), sorted.end());
  std::vector<DegreeClass> classes;
  for (std::size_t i = 0; i < sorted.size();) {
    std::size_t j = i;
    while (j < sorted.size() && sorted[j] == sorted[i]) ++j;
    classes.push_back({sorted[i], j - i});
    i = j;
  }
  return DegreeDistribution(std::move(classes));
}

DegreeDistribution DegreeDistribution::from_edges(
    const std::vector<Edge>& edges) {
  return from_degree_sequence(degrees_of(edges));
}

std::uint64_t DegreeDistribution::max_degree() const noexcept {
  return classes_.empty() ? 0 : classes_.back().degree;
}

std::uint64_t DegreeDistribution::min_degree() const noexcept {
  return classes_.empty() ? 0 : classes_.front().degree;
}

double DegreeDistribution::average_degree() const noexcept {
  return total_vertices_ == 0 ? 0.0
                              : static_cast<double>(total_stubs_) /
                                    static_cast<double>(total_vertices_);
}

std::size_t DegreeDistribution::class_of_vertex(std::uint64_t v) const
    noexcept {
  const auto it = std::upper_bound(offsets_.begin(), offsets_.end(), v);
  return static_cast<std::size_t>(it - offsets_.begin()) - 1;
}

std::size_t DegreeDistribution::class_of_degree(std::uint64_t degree) const
    noexcept {
  const auto it = std::lower_bound(
      classes_.begin(), classes_.end(), degree,
      [](const DegreeClass& c, std::uint64_t d) { return c.degree < d; });
  if (it == classes_.end() || it->degree != degree) return classes_.size();
  return static_cast<std::size_t>(it - classes_.begin());
}

std::vector<std::uint64_t> DegreeDistribution::to_degree_sequence() const {
  std::vector<std::uint64_t> sequence(total_vertices_);
  const exec::ParallelContext ctx;
  exec::for_chunks(ctx, classes_.size(), 1, [&](const exec::Chunk& chunk) {
    for (std::size_t c = chunk.begin; c < chunk.end; ++c) {
      for (std::uint64_t v = offsets_[c]; v < offsets_[c + 1]; ++v)
        sequence[v] = classes_[c].degree;
    }
  });
  return sequence;
}

bool DegreeDistribution::is_graphical() const {
  if (classes_.empty()) return true;
  if (total_stubs_ % 2 != 0) return false;
  const std::size_t nc = classes_.size();
  // Work over DESCENDING classes: index r = 0 is the largest degree.
  // desc_count[r] / desc_stubs[r] are prefix sums over the first r+1
  // descending classes.
  std::vector<std::uint64_t> degree_desc(nc), count_desc(nc);
  for (std::size_t r = 0; r < nc; ++r) {
    degree_desc[r] = classes_[nc - 1 - r].degree;
    count_desc[r] = classes_[nc - 1 - r].count;
  }
  std::vector<std::uint64_t> cum_count(nc + 1, 0), cum_stubs(nc + 1, 0);
  for (std::size_t r = 0; r < nc; ++r) {
    cum_count[r + 1] = cum_count[r] + count_desc[r];
    cum_stubs[r + 1] = cum_stubs[r] + degree_desc[r] * count_desc[r];
  }
  // Erdős–Gallai only needs checking at k values where the sorted degree
  // strictly decreases, i.e. at class boundaries k = cum_count[r+1].
  for (std::size_t r = 0; r < nc; ++r) {
    const unsigned __int128 k = cum_count[r + 1];
    const unsigned __int128 lhs = cum_stubs[r + 1];
    // RHS = k(k-1) + sum over remaining classes of count * min(degree, k).
    // Remaining classes r+1..nc-1 have strictly smaller degrees; find the
    // first with degree <= k (degrees descend, so binary search works).
    const auto split = std::lower_bound(
        degree_desc.begin() + static_cast<std::ptrdiff_t>(r + 1),
        degree_desc.end(), static_cast<std::uint64_t>(k),
        [](std::uint64_t d, std::uint64_t kk) { return d > kk; });
    const std::size_t s =
        static_cast<std::size_t>(split - degree_desc.begin());
    // Classes in (r, s): degree > k, contribute count * k.
    const unsigned __int128 big =
        static_cast<unsigned __int128>(cum_count[s] - cum_count[r + 1]) * k;
    // Classes in [s, nc): degree <= k, contribute their full stub count.
    const unsigned __int128 small = cum_stubs[nc] - cum_stubs[s];
    const unsigned __int128 rhs = k * (k - 1) + big + small;
    if (lhs > rhs) return false;
  }
  return true;
}

}  // namespace nullgraph
