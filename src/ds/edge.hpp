#pragma once
// Edge: an undirected vertex pair, 8 bytes. Vertex ids are 32-bit, which
// covers every instance in the paper (largest is Friendster, n = 40M) while
// letting an edge pack into a single 64-bit hash key.

#include <cstdint>
#include <functional>

namespace nullgraph {

using VertexId = std::uint32_t;
using EdgeKey = std::uint64_t;

struct Edge {
  VertexId u = 0;
  VertexId v = 0;

  friend constexpr bool operator==(const Edge&, const Edge&) noexcept =
      default;

  /// True when both endpoints coincide.
  constexpr bool is_loop() const noexcept { return u == v; }

  /// Endpoint-ordered copy (u <= v); undirected edges compare via this.
  constexpr Edge canonical() const noexcept {
    return u <= v ? Edge{u, v} : Edge{v, u};
  }

  /// Packs the canonical pair into one 64-bit key: min in the high word.
  /// Key uniqueness over canonical edges makes the hash table collision
  /// checks exact (no false "already present" answers).
  constexpr EdgeKey key() const noexcept {
    const Edge c = canonical();
    return (static_cast<EdgeKey>(c.u) << 32) | static_cast<EdgeKey>(c.v);
  }

  static constexpr Edge from_key(EdgeKey key) noexcept {
    return Edge{static_cast<VertexId>(key >> 32),
                static_cast<VertexId>(key & 0xffffffffULL)};
  }
};

static_assert(sizeof(Edge) == 8, "Edge must stay 8 bytes (Per.16)");

/// Strict weak order on canonical form; ties broken consistently so sorting
/// an edge list groups parallel edges together.
constexpr bool canonical_less(const Edge& a, const Edge& b) noexcept {
  return a.key() < b.key();
}

}  // namespace nullgraph

template <>
struct std::hash<nullgraph::Edge> {
  std::size_t operator()(const nullgraph::Edge& e) const noexcept {
    return std::hash<nullgraph::EdgeKey>{}(e.key());
  }
};
