#include "ds/concurrent_hash_set.hpp"

#include <bit>
#include <cassert>

namespace nullgraph {

namespace {
std::size_t table_capacity(std::size_t expected_keys) {
  const std::size_t wanted = expected_keys < 8 ? 16 : 2 * expected_keys;
  return std::bit_ceil(wanted);
}
}  // namespace

ConcurrentHashSet::ConcurrentHashSet(std::size_t expected_keys,
                                     Probing probing)
    : capacity_(table_capacity(expected_keys)),
      mask_(capacity_ - 1),
      probing_(probing),
      slots_(std::make_unique<std::atomic<std::uint64_t>[]>(capacity_)) {
  clear();
}

bool ConcurrentHashSet::test_and_set(std::uint64_t key) noexcept {
  assert(key != kEmpty && "sentinel key is reserved");
  const std::size_t start = static_cast<std::size_t>(hash(key)) & mask_;
  for (std::size_t attempt = 0; attempt < capacity_; ++attempt) {
    std::atomic<std::uint64_t>& slot = slots_[probe(start, attempt)];
    std::uint64_t observed = slot.load(std::memory_order_relaxed);
    if (observed == key) return true;
    if (observed == kEmpty) {
      if (slot.compare_exchange_strong(observed, key,
                                       std::memory_order_relaxed)) {
        return false;  // we inserted it
      }
      // Raced: `observed` now holds the winner's key.
      if (observed == key) return true;
      // A different key claimed this slot; keep probing.
    }
  }
  assert(false && "hash table full: load factor invariant violated");
  return true;
}

bool ConcurrentHashSet::contains(std::uint64_t key) const noexcept {
  const std::size_t start = static_cast<std::size_t>(hash(key)) & mask_;
  for (std::size_t attempt = 0; attempt < capacity_; ++attempt) {
    const std::uint64_t observed =
        slots_[probe(start, attempt)].load(std::memory_order_relaxed);
    if (observed == key) return true;
    if (observed == kEmpty) return false;
  }
  return false;
}

void ConcurrentHashSet::clear() noexcept {
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < capacity_; ++i)
    slots_[i].store(kEmpty, std::memory_order_relaxed);
}

std::size_t ConcurrentHashSet::size() const noexcept {
  std::size_t count = 0;
#pragma omp parallel for reduction(+ : count) schedule(static)
  for (std::size_t i = 0; i < capacity_; ++i)
    if (slots_[i].load(std::memory_order_relaxed) != kEmpty) ++count;
  return count;
}

}  // namespace nullgraph
