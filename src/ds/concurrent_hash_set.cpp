#include "ds/concurrent_hash_set.hpp"

#include <bit>
#include <cassert>

#include "exec/exec.hpp"

namespace nullgraph {

namespace {
std::size_t table_capacity(std::size_t expected_keys) {
  const std::size_t wanted = expected_keys < 8 ? 16 : 2 * expected_keys;
  return std::bit_ceil(wanted);
}
}  // namespace

ConcurrentHashSet::ConcurrentHashSet(std::size_t expected_keys,
                                     Probing probing)
    : capacity_(table_capacity(expected_keys)),
      mask_(capacity_ - 1),
      probing_(probing),
      slots_(std::make_unique<std::atomic<std::uint64_t>[]>(capacity_)) {
  clear();
}

InsertOutcome ConcurrentHashSet::insert(std::uint64_t key) noexcept {
  assert(key != kEmpty && "sentinel key is reserved");
  const std::size_t start = static_cast<std::size_t>(hash(key)) & mask_;
  for (std::size_t attempt = 0; attempt < capacity_; ++attempt) {
    std::atomic<std::uint64_t>& slot = slots_[probe(start, attempt)];
    // relaxed: slot keys are self-contained values (the packed edge IS the
    // payload); membership needs no ordering with any other location.
    std::uint64_t observed = slot.load(std::memory_order_relaxed);
    if (observed == key) {
      note_probes(attempt + 1);
      return InsertOutcome::kAlreadyPresent;
    }
    if (observed == kEmpty) {
      // relaxed: claiming a slot publishes nothing beyond the key itself,
      // so the CAS needs atomicity only, not acquire/release ordering.
      if (slot.compare_exchange_strong(observed, key,
                                       std::memory_order_relaxed)) {
#ifndef NDEBUG
        // relaxed: debug-only occupancy counter; fetch_add returns an
        // exact pre-value regardless of ordering.
        const std::size_t now =
            debug_size_.fetch_add(1, std::memory_order_relaxed) + 1;
        assert(2 * now <= capacity_ &&
               "hash table load factor invariant (<= 0.5) violated");
#endif
        note_probes(attempt + 1);
        return InsertOutcome::kInserted;
      }
      // Raced: `observed` now holds the winner's key.
      if (observed == key) {
        note_probes(attempt + 1);
        return InsertOutcome::kAlreadyPresent;
      }
      // A different key claimed this slot; keep probing.
    }
  }
  // The probe sequence visited every slot without finding `key` or a free
  // one: the table is genuinely full. Typed failure instead of spinning.
  note_probes(capacity_);
  return InsertOutcome::kTableFull;
}

obs::Histogram* ConcurrentHashSet::probe_histogram(
    obs::MetricsRegistry* registry) {
  if (registry == nullptr) return nullptr;
  return registry->histogram(
      "hashset.probe_length", 1,
      {1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128});
}

bool ConcurrentHashSet::contains(std::uint64_t key) const noexcept {
  const std::size_t start = static_cast<std::size_t>(hash(key)) & mask_;
  for (std::size_t attempt = 0; attempt < capacity_; ++attempt) {
    // relaxed: see insert() — keys are self-contained, misses on in-flight
    // inserts are documented behaviour.
    const std::uint64_t observed =
        slots_[probe(start, attempt)].load(std::memory_order_relaxed);
    if (observed == key) return true;
    if (observed == kEmpty) return false;
  }
  return false;
}

void ConcurrentHashSet::clear() noexcept {
  const exec::ParallelContext ctx;
  exec::for_chunks(ctx, capacity_, exec::kDefaultGrain,
                   [&](const exec::Chunk& chunk) {
                     // relaxed: clear() is documented as not safe against
                     // concurrent access; atomicity alone suffices.
                     for (std::size_t i = chunk.begin; i < chunk.end; ++i)
                       slots_[i].store(kEmpty, std::memory_order_relaxed);
                   });
#ifndef NDEBUG
  // relaxed: debug-only counter reset under the clear() exclusivity rule.
  debug_size_.store(0, std::memory_order_relaxed);
#endif
}

std::size_t ConcurrentHashSet::size() const noexcept {
  const exec::ParallelContext ctx;
  return exec::reduce<std::size_t>(
      ctx, capacity_, exec::kDefaultGrain, 0,
      [&](const exec::Chunk& chunk) {
        std::size_t count = 0;
        // relaxed: size() counts a snapshot; racing inserts may or may
        // not be seen either way, by contract.
        for (std::size_t i = chunk.begin; i < chunk.end; ++i)
          if (slots_[i].load(std::memory_order_relaxed) != kEmpty) ++count;
        return count;
      },
      [](std::size_t a, std::size_t b) { return a + b; });
}

}  // namespace nullgraph
