#pragma once
// CsrGraph: compressed sparse row adjacency built in parallel from an edge
// list. Used by the analysis module (triangles, assortativity) and by
// examples; the generators themselves work on flat edge lists.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "ds/edge_list.hpp"

namespace nullgraph {

class CsrGraph {
 public:
  /// Builds the undirected adjacency (each edge appears in both endpoint
  /// rows; self-loops appear twice in their row). `n` extends beyond the
  /// largest endpoint; pass 0 to infer. If `sort_rows`, each row is sorted
  /// ascending, enabling O(d_u + d_v) neighbourhood intersections.
  explicit CsrGraph(const EdgeList& edges, std::size_t n = 0,
                    bool sort_rows = true);

  std::size_t num_vertices() const noexcept { return offsets_.size() - 1; }
  std::size_t num_edges() const noexcept { return adjacency_.size() / 2; }

  std::span<const VertexId> neighbors(VertexId v) const noexcept {
    return {adjacency_.data() + offsets_[v],
            adjacency_.data() + offsets_[v + 1]};
  }

  std::uint64_t degree(VertexId v) const noexcept {
    return offsets_[v + 1] - offsets_[v];
  }

  bool rows_sorted() const noexcept { return rows_sorted_; }

  /// O(log d) membership test; requires sorted rows.
  bool has_edge(VertexId u, VertexId v) const noexcept;

 private:
  std::vector<std::uint64_t> offsets_;
  std::vector<VertexId> adjacency_;
  bool rows_sorted_ = false;
};

}  // namespace nullgraph
