#pragma once
// Shard-local simplicity checking: the dedup structure of out-of-core mode.
//
// The in-core pipeline proves simplicity with ONE ConcurrentHashSet sized
// for the whole edge list — exactly the allocation out-of-core mode exists
// to avoid. Spill shards make a global table unnecessary: shards are
// contiguous ranges of edge-skip UNITS (sharded_skip.hpp), units never
// share a candidate pair, and edge-skipping touches each candidate pair at
// most once — so a duplicate edge can only ever be a WITHIN-shard event,
// and checking each shard against a table sized for that shard alone is a
// complete check of the whole graph. Resident memory: one shard's table.
//
// (`nullgraph fsck --deep` re-proves the cross-shard half of this argument
// on disk via io/shard_merge.hpp's k-way merge census, guarding against a
// spill directory assembled from mismatched runs.)

#include <cstddef>
#include <cstdint>

#include "ds/edge_list.hpp"

namespace nullgraph {

/// Folds per-shard censuses into a whole-graph verdict. Feed shards in any
/// order; each add_shard() allocates a table for that shard only.
class ShardLocalCensus {
 public:
  /// Census of `shard` against a shard-local table, folded into total().
  /// Parallel inside the shard (same chunked reduce as ds::census).
  void add_shard(const EdgeList& shard);

  [[nodiscard]] const SimplicityCensus& total() const noexcept {
    return total_;
  }
  [[nodiscard]] std::uint64_t edges_seen() const noexcept {
    return edges_seen_;
  }
  /// Largest single-shard edge count observed — the resident-memory
  /// high-water mark of the dedup structure, reported as a spill gauge.
  [[nodiscard]] std::size_t max_shard_edges() const noexcept {
    return max_shard_edges_;
  }

 private:
  SimplicityCensus total_;
  std::uint64_t edges_seen_ = 0;
  std::size_t max_shard_edges_ = 0;
};

}  // namespace nullgraph
