#pragma once
// EdgeList: flat vector of undirected edges plus the parallel queries the
// generators and analysis code need (degree extraction, simplicity census,
// dedup). This is the central exchange format of the library.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ds/edge.hpp"

namespace nullgraph {

using EdgeList = std::vector<Edge>;

/// Counts of the ways an edge list can fail to be simple.
struct SimplicityCensus {
  std::size_t self_loops = 0;
  std::size_t multi_edges = 0;  // extra copies beyond the first of each edge

  bool simple() const noexcept { return self_loops == 0 && multi_edges == 0; }
};

/// Number of vertices implied by the largest endpoint (0 for empty lists).
std::size_t vertex_count(const EdgeList& edges);

/// Per-vertex degrees; self-loops contribute 2 to their endpoint, matching
/// the usual multigraph convention. `n` is a floor on the result size,
/// extending it beyond the largest endpoint (for isolated vertices); the
/// result always covers every endpoint. Pass 0 to infer.
std::vector<std::uint64_t> degrees_of(const EdgeList& edges,
                                      std::size_t n = 0);

/// Parallel census of self-loops and duplicate edges.
SimplicityCensus census(const EdgeList& edges);

/// True iff no self-loops and no duplicate undirected edges.
bool is_simple(const EdgeList& edges);

/// Copy with self-loops and duplicate edges removed ("erased" models keep
/// the first occurrence of each undirected edge).
EdgeList erase_nonsimple(const EdgeList& edges);

/// True when both lists contain the same multiset of undirected edges.
bool same_edge_multiset(const EdgeList& a, const EdgeList& b);

}  // namespace nullgraph
