#pragma once
// ConcurrentHashSet: the paper's thread-safe edge table (Section III-A,
// adapted from Slota et al. [33]). Open addressing over a flat array of
// atomic 64-bit keys; test_and_set needs one atomic CAS on the common path
// and blocks only when two threads race for the same slot. Linear probing
// by default, quadratic as a build-time policy for the ablation benchmark.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "obs/metrics.hpp"
#include "robustness/status.hpp"

namespace nullgraph {

enum class Probing { kLinear, kQuadratic };

/// Typed result of a bounded insert probe.
enum class InsertOutcome {
  kInserted,        // key was absent; we claimed a slot
  kAlreadyPresent,  // key was in the table
  kTableFull,       // probe budget (== capacity) spent without a free slot
};

/// kTableFull -> kCapacityExhausted; the other outcomes are not errors.
[[nodiscard]] inline StatusCode insert_status(InsertOutcome outcome) noexcept {
  return outcome == InsertOutcome::kTableFull ? StatusCode::kCapacityExhausted
                                              : StatusCode::kOk;
}

class ConcurrentHashSet {
 public:
  /// Reserved sentinel; inserting it is undefined (asserted in debug).
  /// Canonical simple-graph edge keys can never take this value: it would
  /// decode to the self-loop {0xffffffff, 0xffffffff}.
  static constexpr std::uint64_t kEmpty = ~0ULL;

  /// Table sized for `expected_keys` at a load factor <= 0.5 (capacity is
  /// the next power of two >= 2 * expected_keys, minimum 16).
  explicit ConcurrentHashSet(std::size_t expected_keys,
                             Probing probing = Probing::kLinear);

  ConcurrentHashSet(const ConcurrentHashSet&) = delete;
  ConcurrentHashSet& operator=(const ConcurrentHashSet&) = delete;

  /// Inserts `key` if absent, with a probe budget of `capacity()` attempts
  /// — the probe sequence visits every slot exactly once, so kTableFull is
  /// a definitive verdict, not a timeout. Thread-safe; lock-free. Debug
  /// builds assert the <= 0.5 load-factor invariant on every insert; in
  /// release a violated invariant degrades to kTableFull instead of an
  /// unbounded probe loop.
  [[nodiscard]] InsertOutcome insert(std::uint64_t key) noexcept;

  /// Inserts `key` if absent. Returns true when the key was ALREADY present
  /// (the paper's TestAndSet convention: true = reject the new edge).
  /// A full table also returns true — rejecting the candidate is always
  /// conservative for the swap phase (the proposed swap is simply not
  /// committed). Callers that must distinguish use insert().
  /// Thread-safe; lock-free.
  [[nodiscard]] bool test_and_set(std::uint64_t key) noexcept {
    return insert(key) != InsertOutcome::kInserted;
  }

  /// Insert for table refills where every key is known unique and the
  /// table is sized for the full key set (load factor <= 0.5), so the
  /// verdict carries no information. The one sanctioned discard.
  void preload(std::uint64_t key) noexcept { (void)insert(key); }

  /// True when `key` is in the table. Thread-safe against concurrent
  /// inserts (may miss keys being inserted concurrently).
  [[nodiscard]] bool contains(std::uint64_t key) const noexcept;

  /// Empties the table in parallel. NOT safe against concurrent access.
  void clear() noexcept;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Number of keys inserted since construction/clear(). O(capacity).
  [[nodiscard]] std::size_t size() const noexcept;

  /// Attach a probe-length histogram: every insert() records how many slots
  /// it visited (1 = direct hit). Null detaches; recording is wait-free and
  /// one branch when detached. The caller keeps ownership and must outlive
  /// concurrent inserts; attach before sharing the table across threads.
  void set_probe_histogram(obs::Histogram* hist) noexcept {
    probe_hist_ = hist;
  }

  /// The canonical probe-length histogram for a registry, shared by the
  /// swap and rewire phases: name "hashset.probe_length", buckets sized for
  /// an open-addressing table at <= 0.5 load (expected probes ~ low single
  /// digits; the tail is the diagnostic). Null registry -> null.
  static obs::Histogram* probe_histogram(obs::MetricsRegistry* registry);

 private:
  std::size_t probe(std::size_t index, std::size_t attempt) const noexcept {
    // Quadratic probing with (i + k(k+1)/2) visits every slot of a
    // power-of-two table exactly once (triangular-number probing).
    const std::size_t step =
        probing_ == Probing::kLinear ? attempt : attempt * (attempt + 1) / 2;
    return (index + step) & mask_;
  }
  static std::uint64_t hash(std::uint64_t key) noexcept {
    // splitmix64 finalizer: full-avalanche, cheap, good for packed keys
    // whose low bits (the second endpoint) vary fastest.
    key = (key ^ (key >> 30)) * 0xbf58476d1ce4e5b9ULL;
    key = (key ^ (key >> 27)) * 0x94d049bb133111ebULL;
    return key ^ (key >> 31);
  }

  /// Records one observation when a histogram is attached; `probes` is the
  /// number of slots the insert visited.
  void note_probes(std::size_t probes) const noexcept {
    if (probe_hist_ != nullptr)
      probe_hist_->record(static_cast<std::int64_t>(probes));
  }

  std::size_t capacity_ = 0;
  std::size_t mask_ = 0;
  Probing probing_ = Probing::kLinear;
  std::unique_ptr<std::atomic<std::uint64_t>[]> slots_;
  obs::Histogram* probe_hist_ = nullptr;  // borrowed, may be null
#ifndef NDEBUG
  /// Debug-only insert counter backing the load-factor assert; not
  /// maintained in release builds (a shared counter would contend on the
  /// swap phase's hot path).
  std::atomic<std::size_t> debug_size_{0};
#endif
};

}  // namespace nullgraph
