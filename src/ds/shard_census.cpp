#include "ds/shard_census.hpp"

#include <algorithm>

namespace nullgraph {

void ShardLocalCensus::add_shard(const EdgeList& shard) {
  // ds::census builds its hash table from the list it is handed, so
  // calling it per shard IS the external mode: the whole-graph table the
  // in-core pipeline would allocate never exists.
  const SimplicityCensus mine = census(shard);
  total_.self_loops += mine.self_loops;
  total_.multi_edges += mine.multi_edges;
  edges_seen_ += shard.size();
  max_shard_edges_ = std::max(max_shard_edges_, shard.size());
}

}  // namespace nullgraph
