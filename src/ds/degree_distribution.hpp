#pragma once
// DegreeDistribution: the {D, N} input of Algorithm IV.1 — unique degrees D
// with vertex counts N. Also fixes the library-wide vertex-id convention:
// classes are sorted by ascending degree and vertices are numbered
// contiguously per class, so class c owns ids [class_offset(c),
// class_offset(c) + count(c)). Algorithm IV.2 recovers global ids from
// in-class offsets through exactly these prefix sums.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace nullgraph {

struct DegreeClass {
  std::uint64_t degree = 0;
  std::uint64_t count = 0;

  friend bool operator==(const DegreeClass&, const DegreeClass&) = default;
};

class DegreeDistribution {
 public:
  DegreeDistribution() = default;

  /// From (degree, count) pairs in any order; merges duplicate degrees and
  /// drops zero-count entries. Throws std::invalid_argument if the total
  /// stub count is odd (no graph, simple or not, can realize it).
  explicit DegreeDistribution(std::vector<DegreeClass> classes);

  /// From a per-vertex degree sequence.
  static DegreeDistribution from_degree_sequence(
      const std::vector<std::uint64_t>& degrees);

  /// Observed distribution of an edge list (isolated vertices beyond the
  /// largest endpoint are not representable and therefore not counted).
  static DegreeDistribution from_edges(const std::vector<struct Edge>& edges);

  // --- Shape queries -----------------------------------------------------
  std::size_t num_classes() const noexcept { return classes_.size(); }
  const std::vector<DegreeClass>& classes() const noexcept { return classes_; }
  std::uint64_t num_vertices() const noexcept { return total_vertices_; }
  /// Sum of all degrees (2m of the paper).
  std::uint64_t num_stubs() const noexcept { return total_stubs_; }
  std::uint64_t num_edges() const noexcept { return total_stubs_ / 2; }
  std::uint64_t max_degree() const noexcept;
  std::uint64_t min_degree() const noexcept;
  double average_degree() const noexcept;

  bool empty() const noexcept { return classes_.empty(); }

  // --- Class/vertex id mapping -------------------------------------------
  /// First vertex id of class c (classes ascending by degree). The implied
  /// I array of Algorithm IV.2; class_offset(num_classes()) == n.
  std::uint64_t class_offset(std::size_t c) const noexcept {
    return offsets_[c];
  }
  std::uint64_t degree_of_class(std::size_t c) const noexcept {
    return classes_[c].degree;
  }
  std::uint64_t count_of_class(std::size_t c) const noexcept {
    return classes_[c].count;
  }
  /// Class index of a vertex id (binary search over offsets).
  std::size_t class_of_vertex(std::uint64_t v) const noexcept;
  std::uint64_t degree_of_vertex(std::uint64_t v) const noexcept {
    return classes_[class_of_vertex(v)].degree;
  }
  /// Index of an exact degree value, or num_classes() when absent.
  std::size_t class_of_degree(std::uint64_t degree) const noexcept;

  /// Materializes the per-vertex target degree sequence in id order.
  std::vector<std::uint64_t> to_degree_sequence() const;

  /// Erdős–Gallai test: can any SIMPLE graph realize this distribution?
  /// O(|D| log |D|) via class-boundary checks (the inequality only needs
  /// testing at indices where the sorted degree strictly drops).
  bool is_graphical() const;

  friend bool operator==(const DegreeDistribution&,
                         const DegreeDistribution&) = default;

 private:
  void rebuild();

  std::vector<DegreeClass> classes_;        // ascending by degree
  std::vector<std::uint64_t> offsets_;      // size |D|+1, prefix sums of N
  std::uint64_t total_vertices_ = 0;
  std::uint64_t total_stubs_ = 0;
};

}  // namespace nullgraph
