#include "ds/edge_list.hpp"

#include <algorithm>

#include "ds/concurrent_hash_set.hpp"
#include "util/parallel.hpp"

namespace nullgraph {

std::size_t vertex_count(const EdgeList& edges) {
  VertexId max_id = 0;
  bool any = false;
#pragma omp parallel for reduction(max : max_id) schedule(static)
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const VertexId hi = edges[i].u > edges[i].v ? edges[i].u : edges[i].v;
    if (hi > max_id) max_id = hi;
  }
  any = !edges.empty();
  return any ? static_cast<std::size_t>(max_id) + 1 : 0;
}

std::vector<std::uint64_t> degrees_of(const EdgeList& edges, std::size_t n) {
  // `n` is a floor, not an exact size: the edge list may reference vertices
  // beyond the caller's expectation (e.g. a generated graph measured against
  // a smaller target distribution), and those must not write out of bounds.
  n = std::max(n, vertex_count(edges));
  std::vector<std::uint64_t> degree(n, 0);
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const Edge e = edges[i];
#pragma omp atomic
    degree[e.u]++;
#pragma omp atomic
    degree[e.v]++;
  }
  return degree;
}

SimplicityCensus census(const EdgeList& edges) {
  SimplicityCensus result;
  ConcurrentHashSet seen(edges.size());
  std::size_t loops = 0;
  std::size_t dups = 0;
#pragma omp parallel for reduction(+ : loops, dups) schedule(static)
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const Edge e = edges[i];
    if (e.is_loop()) {
      ++loops;
      continue;
    }
    if (seen.test_and_set(e.key())) ++dups;
  }
  result.self_loops = loops;
  result.multi_edges = dups;
  return result;
}

bool is_simple(const EdgeList& edges) { return census(edges).simple(); }

EdgeList erase_nonsimple(const EdgeList& edges) {
  ConcurrentHashSet seen(edges.size());
  const int nthreads = max_threads();
  std::vector<EdgeList> kept(static_cast<std::size_t>(nthreads));
#pragma omp parallel num_threads(nthreads)
  {
    EdgeList& mine = kept[static_cast<std::size_t>(thread_id())];
#pragma omp for schedule(static)
    for (std::size_t i = 0; i < edges.size(); ++i) {
      const Edge e = edges[i];
      if (!e.is_loop() && !seen.test_and_set(e.key())) mine.push_back(e);
    }
  }
  return concat_buffers(kept);
}

bool same_edge_multiset(const EdgeList& a, const EdgeList& b) {
  if (a.size() != b.size()) return false;
  auto keys = [](const EdgeList& edges) {
    std::vector<EdgeKey> out(edges.size());
#pragma omp parallel for schedule(static)
    for (std::size_t i = 0; i < edges.size(); ++i) out[i] = edges[i].key();
    std::sort(out.begin(), out.end());
    return out;
  };
  return keys(a) == keys(b);
}

}  // namespace nullgraph
