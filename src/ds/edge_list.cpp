#include "ds/edge_list.hpp"

#include <algorithm>
#include <atomic>

#include "ds/concurrent_hash_set.hpp"
#include "exec/exec.hpp"

namespace nullgraph {

std::size_t vertex_count(const EdgeList& edges) {
  if (edges.empty()) return 0;
  const exec::ParallelContext ctx;
  const VertexId max_id = exec::reduce<VertexId>(
      ctx, edges.size(), exec::kDefaultGrain, 0,
      [&](const exec::Chunk& chunk) {
        VertexId hi = 0;
        for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
          const VertexId h = edges[i].u > edges[i].v ? edges[i].u : edges[i].v;
          if (h > hi) hi = h;
        }
        return hi;
      },
      [](VertexId a, VertexId b) { return a > b ? a : b; });
  return static_cast<std::size_t>(max_id) + 1;
}

std::vector<std::uint64_t> degrees_of(const EdgeList& edges, std::size_t n) {
  // `n` is a floor, not an exact size: the edge list may reference vertices
  // beyond the caller's expectation (e.g. a generated graph measured against
  // a smaller target distribution), and those must not write out of bounds.
  n = std::max(n, vertex_count(edges));
  std::vector<std::uint64_t> degree(n, 0);
  const exec::ParallelContext ctx;
  exec::for_chunks(ctx, edges.size(), exec::kDefaultGrain,
                   [&](const exec::Chunk& chunk) {
                     for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
                       const Edge e = edges[i];
                       // relaxed: independent degree tallies published by
                       // the loop barrier, not by these adds.
                       std::atomic_ref<std::uint64_t>(degree[e.u])
                           .fetch_add(1, std::memory_order_relaxed);
                       std::atomic_ref<std::uint64_t>(degree[e.v])
                           .fetch_add(1, std::memory_order_relaxed);
                     }
                   });
  return degree;
}

SimplicityCensus census(const EdgeList& edges) {
  ConcurrentHashSet seen(edges.size());
  const exec::ParallelContext ctx;
  return exec::reduce<SimplicityCensus>(
      ctx, edges.size(), exec::kDefaultGrain, SimplicityCensus{},
      [&](const exec::Chunk& chunk) {
        SimplicityCensus mine;
        for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
          const Edge e = edges[i];
          if (e.is_loop()) {
            ++mine.self_loops;
            continue;
          }
          if (seen.test_and_set(e.key())) ++mine.multi_edges;
        }
        return mine;
      },
      [](SimplicityCensus a, SimplicityCensus b) {
        a.self_loops += b.self_loops;
        a.multi_edges += b.multi_edges;
        return a;
      });
}

bool is_simple(const EdgeList& edges) { return census(edges).simple(); }

EdgeList erase_nonsimple(const EdgeList& edges) {
  ConcurrentHashSet seen(edges.size());
  const exec::ParallelContext ctx;
  return exec::collect<Edge>(
      ctx, edges.size(), exec::kDefaultGrain,
      [&](const exec::Chunk& chunk, std::vector<Edge>& out) {
        for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
          const Edge e = edges[i];
          if (!e.is_loop() && !seen.test_and_set(e.key())) out.push_back(e);
        }
      });
}

bool same_edge_multiset(const EdgeList& a, const EdgeList& b) {
  if (a.size() != b.size()) return false;
  auto keys = [](const EdgeList& edges) {
    std::vector<EdgeKey> out(edges.size());
    const exec::ParallelContext ctx;
    exec::for_chunks(ctx, edges.size(), exec::kDefaultGrain,
                     [&](const exec::Chunk& chunk) {
                       for (std::size_t i = chunk.begin; i < chunk.end; ++i)
                         out[i] = edges[i].key();
                     });
    std::sort(out.begin(), out.end());
    return out;
  };
  return keys(a) == keys(b);
}

}  // namespace nullgraph
