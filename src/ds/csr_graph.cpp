#include "ds/csr_graph.hpp"

#include <algorithm>
#include <atomic>

#include "util/prefix_sum.hpp"

namespace nullgraph {

CsrGraph::CsrGraph(const EdgeList& edges, std::size_t n, bool sort_rows) {
  if (n == 0) n = vertex_count(edges);
  std::vector<std::uint64_t> counts(n + 1, 0);
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < edges.size(); ++i) {
#pragma omp atomic
    counts[edges[i].u]++;
#pragma omp atomic
    counts[edges[i].v]++;
  }
  exclusive_prefix_sum(counts);
  offsets_ = counts;  // offsets_[v] = start of row v; counts reused as cursor
  adjacency_.resize(offsets_[n]);
  std::vector<std::atomic<std::uint64_t>> cursor(n);
#pragma omp parallel for schedule(static)
  for (std::size_t v = 0; v < n; ++v)
    cursor[v].store(offsets_[v], std::memory_order_relaxed);
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const Edge e = edges[i];
    adjacency_[cursor[e.u].fetch_add(1, std::memory_order_relaxed)] = e.v;
    adjacency_[cursor[e.v].fetch_add(1, std::memory_order_relaxed)] = e.u;
  }
  if (sort_rows) {
#pragma omp parallel for schedule(dynamic, 64)
    for (std::size_t v = 0; v < n; ++v) {
      std::sort(adjacency_.begin() + static_cast<std::ptrdiff_t>(offsets_[v]),
                adjacency_.begin() +
                    static_cast<std::ptrdiff_t>(offsets_[v + 1]));
    }
    rows_sorted_ = true;
  }
}

bool CsrGraph::has_edge(VertexId u, VertexId v) const noexcept {
  const auto row = neighbors(u);
  return std::binary_search(row.begin(), row.end(), v);
}

}  // namespace nullgraph
