#include "ds/csr_graph.hpp"

#include <algorithm>
#include <atomic>

#include "exec/exec.hpp"
#include "util/prefix_sum.hpp"

namespace nullgraph {

CsrGraph::CsrGraph(const EdgeList& edges, std::size_t n, bool sort_rows) {
  if (n == 0) n = vertex_count(edges);
  // Ungoverned throughout: a partially-built CSR (skipped scatter chunks)
  // would violate the offsets/adjacency invariant; callers govern the
  // generation phases that feed this, not the index build itself.
  const exec::ParallelContext ctx;
  std::vector<std::uint64_t> counts(n + 1, 0);
  exec::for_chunks(ctx, edges.size(), exec::kDefaultGrain,
                   [&](const exec::Chunk& chunk) {
                     for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
                       // relaxed: independent degree tallies; the loop
                       // barrier below publishes them before any read.
                       std::atomic_ref<std::uint64_t>(counts[edges[i].u])
                           .fetch_add(1, std::memory_order_relaxed);
                       std::atomic_ref<std::uint64_t>(counts[edges[i].v])
                           .fetch_add(1, std::memory_order_relaxed);
                     }
                   });
  exclusive_prefix_sum(counts);
  offsets_ = counts;  // offsets_[v] = start of row v; counts reused as cursor
  adjacency_.resize(offsets_[n]);
  std::vector<std::atomic<std::uint64_t>> cursor(n);
  exec::for_chunks(ctx, n, exec::kDefaultGrain, [&](const exec::Chunk& chunk) {
    // relaxed: cursor init before the fill loop; the barrier between the
    // two exec loops is the publication point.
    for (std::size_t v = chunk.begin; v < chunk.end; ++v)
      cursor[v].store(offsets_[v], std::memory_order_relaxed);
  });
  exec::for_chunks(ctx, edges.size(), exec::kDefaultGrain,
                   [&](const exec::Chunk& chunk) {
                     for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
                       const Edge e = edges[i];
                       // relaxed: fetch_add hands each writer a unique
                       // adjacency slot; slot contents are read only after
                       // the loop barrier.
                       adjacency_[cursor[e.u].fetch_add(
                           1, std::memory_order_relaxed)] = e.v;
                       adjacency_[cursor[e.v].fetch_add(
                           1, std::memory_order_relaxed)] = e.u;
                     }
                   });
  if (sort_rows) {
    exec::for_chunks(ctx, n, 64, [&](const exec::Chunk& chunk) {
      for (std::size_t v = chunk.begin; v < chunk.end; ++v) {
        std::sort(
            adjacency_.begin() + static_cast<std::ptrdiff_t>(offsets_[v]),
            adjacency_.begin() + static_cast<std::ptrdiff_t>(offsets_[v + 1]));
      }
    });
    rows_sorted_ = true;
  }
}

bool CsrGraph::has_edge(VertexId u, VertexId v) const noexcept {
  const auto row = neighbors(u);
  return std::binary_search(row.begin(), row.end(), v);
}

}  // namespace nullgraph
