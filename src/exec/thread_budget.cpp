#include "exec/thread_budget.hpp"

namespace nullgraph::exec {

namespace {
// One budget per OS thread. Plain int, no atomics: only the owning thread
// reads or writes its slot (the scheduler installs the lease on the same
// thread that runs the job's pipeline).
thread_local int t_thread_budget = 0;
}  // namespace

int current_thread_budget() noexcept { return t_thread_budget; }

int set_thread_budget(int threads) noexcept {
  const int previous = t_thread_budget;
  t_thread_budget = threads < 0 ? 0 : threads;
  return previous;
}

int ThreadArbiter::acquire(int want) {
  MutexLock lock(mutex_);
  ++jobs_;
  if (want <= 0) want = total_ / jobs_;
  const int available = total_ - committed_;
  int granted = want < available ? want : available;
  if (granted < 1) granted = 1;  // progress floor: may oversubscribe by 1
  committed_ += granted;
  return granted;
}

void ThreadArbiter::release(int granted) {
  MutexLock lock(mutex_);
  committed_ -= granted;
  if (jobs_ > 0) --jobs_;
  if (committed_ < 0) committed_ = 0;
}

int ThreadArbiter::committed() const {
  MutexLock lock(mutex_);
  return committed_;
}

}  // namespace nullgraph::exec
