#pragma once
// Multi-tenant thread arbitration for the exec layer.
//
// Historically one pipeline owned the machine: every ParallelContext left
// `threads == 0` and resolved to omp_get_max_threads(). The serve daemon
// breaks that assumption — N concurrent jobs each run a whole pipeline on
// their own scheduler thread, and each of those threads is a fresh OpenMP
// master that would ALSO claim the full machine, oversubscribing it N×.
//
// The fix is a per-job worker budget with two halves:
//
//   ThreadArbiter     one per daemon: hands out shares of the machine's
//                     worker threads (never more than `total` outstanding
//                     in aggregate, never less than 1 per job so every
//                     job makes progress).
//   ThreadBudgetLease RAII: acquires a share and installs it as the
//                     CALLING THREAD's budget. ParallelContext::
//                     resolved_threads() consults that thread-local budget
//                     whenever `threads == 0`, so every context built
//                     anywhere under the job — edge lists, hash-set
//                     preloads, permutation rounds — inherits the job's
//                     share with zero plumbing through the phase configs.
//
// The thread-local is keyed on the OS thread because a job IS a thread in
// the scheduler model (each slot runs its pipeline synchronously); OpenMP
// worker threads spawned inside the job's loops never construct contexts
// themselves, so the budget is read exactly where it was installed.
// Determinism is unaffected: chunk layout and RNG streams are
// thread-count-invariant by the exec layer's contract.

#include "util/parallel.hpp"
#include "util/thread_annotations.hpp"

namespace nullgraph::exec {

/// The calling thread's installed worker budget; 0 when none is installed
/// (one-shot CLI runs, tests), which keeps the historical whole-machine
/// default.
int current_thread_budget() noexcept;

/// Installs `threads` as the calling thread's budget and returns the
/// previous value (0 = none). Exposed for the lease and for tests; jobs
/// should use ThreadBudgetLease.
int set_thread_budget(int threads) noexcept;

/// Hands out shares of a fixed pool of worker threads. Grants never sum to
/// more than `total`, except that every grant is at least 1 — a saturated
/// pool degrades to time-slicing via the OS scheduler instead of blocking
/// a job forever. Thread-safe.
class ThreadArbiter {
 public:
  /// Pool size; defaults to the machine's OpenMP worker count.
  explicit ThreadArbiter(int total = 0)
      : total_(total > 0 ? total : max_threads()) {}

  /// Grant min(want, available) threads, floor 1. `want <= 0` asks for an
  /// equal share of the whole pool (total / outstanding jobs, floor 1).
  int acquire(int want) NG_EXCLUDES(mutex_);
  /// Returns a grant to the pool (pass exactly what acquire returned).
  void release(int granted) NG_EXCLUDES(mutex_);

  int total() const noexcept { return total_; }
  int committed() const NG_EXCLUDES(mutex_);

 private:
  const int total_;
  mutable Mutex mutex_;
  int committed_ NG_GUARDED_BY(mutex_) = 0;
  int jobs_ NG_GUARDED_BY(mutex_) = 0;
};

/// RAII job lease: acquires a share from the arbiter and installs it as
/// the calling thread's budget for the lease's lifetime. Construct at the
/// top of a scheduler job slot, before the pipeline runs.
class ThreadBudgetLease {
 public:
  ThreadBudgetLease(ThreadArbiter& arbiter, int want)
      : arbiter_(arbiter),
        granted_(arbiter.acquire(want)),
        previous_(set_thread_budget(granted_)) {}

  ~ThreadBudgetLease() {
    (void)set_thread_budget(previous_);
    arbiter_.release(granted_);
  }

  ThreadBudgetLease(const ThreadBudgetLease&) = delete;
  ThreadBudgetLease& operator=(const ThreadBudgetLease&) = delete;

  /// Worker threads this job may use.
  int threads() const noexcept { return granted_; }

 private:
  ThreadArbiter& arbiter_;
  int granted_;
  int previous_;
};

}  // namespace nullgraph::exec
