#pragma once
// ParallelContext: the per-run bundle every exec primitive takes as its
// first argument. It carries the four concerns the hand-rolled loops used
// to re-implement separately:
//
//   threads   worker count (0 = the OpenMP default, omp_get_max_threads())
//   seed      the run seed chunk-indexed RNG streams derive from
//   governor  chunk-granularity stop polling (may be null = ungoverned)
//   timings   where per-phase wall-time/chunk-count records go (may be null)
//   obs       telemetry handles (metrics registry / trace sink, may be null)
//
// Contexts are tiny value types: copy one and override a field (with_phase,
// with_seed) rather than mutating a shared instance.

#include <cstdint>

#include "exec/phase_timing.hpp"
#include "exec/thread_budget.hpp"
#include "obs/obs_context.hpp"
#include "robustness/governance.hpp"
#include "util/parallel.hpp"

namespace nullgraph::exec {

struct ParallelContext {
  /// Worker threads for parallel loops; 0 means the OpenMP default.
  int threads = 0;
  /// Run seed; each chunk derives its own decorrelated stream from
  /// (seed, chunk index), never from a thread id — see exec.hpp.
  std::uint64_t seed = 0;
  /// Polled once per chunk when non-null; a stopped governor makes every
  /// remaining chunk a no-op so the loop drains cooperatively.
  const RunGovernor* governor = nullptr;
  /// Receives one aggregated record per loop when non-null.
  PhaseTimingSink* timings = nullptr;
  /// Phase name for timing records and curtailment reporting.
  const char* phase = "";
  /// Telemetry: exec emits one trace span per loop when obs.trace is set;
  /// instrumented callers record counters/histograms through obs.metrics.
  obs::ObsContext obs;

  /// Worker count for the next loop. Explicit `threads` wins; otherwise
  /// the calling thread's installed job budget (the serve scheduler's
  /// per-job share, see thread_budget.hpp); otherwise the historical
  /// whole-machine OpenMP default.
  int resolved_threads() const noexcept {
    if (threads > 0) return threads;
    const int budget = current_thread_budget();
    return budget > 0 ? budget : max_threads();
  }

  /// Sticky verdict check for serial code between loops (per-round or
  /// per-iteration gates); the loops themselves poll internally.
  bool stopped() const noexcept {
    return governor != nullptr && governor->should_stop() != StatusCode::kOk;
  }

  ParallelContext with_phase(const char* name) const noexcept {
    ParallelContext copy = *this;
    copy.phase = name;
    return copy;
  }

  ParallelContext with_seed(std::uint64_t run_seed) const noexcept {
    ParallelContext copy = *this;
    copy.seed = run_seed;
    return copy;
  }
};

}  // namespace nullgraph::exec
