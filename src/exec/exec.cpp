#include "exec/exec.hpp"

namespace nullgraph::exec::detail {

namespace {
std::uint64_t mix(std::uint64_t x) noexcept {
  std::uint64_t state = x;
  return splitmix64_next(state);
}
}  // namespace

std::uint64_t raw_omp_hash_sum(const std::uint64_t* values, std::size_t n,
                               std::size_t grain) {
  const std::size_t nchunks = num_chunks(n, grain);
  std::uint64_t total = 0;
  const std::int64_t count = static_cast<std::int64_t>(nchunks);
#pragma omp parallel for schedule(dynamic, 1) reduction(+ : total)
  for (std::int64_t c = 0; c < count; ++c) {
    const auto [begin, end] =
        block_range(static_cast<std::size_t>(c), nchunks, n);
    std::uint64_t sum = 0;
    for (std::size_t i = begin; i < end; ++i) sum += mix(values[i]);
    total += sum;
  }
  return total;
}

std::uint64_t exec_hash_sum(const std::uint64_t* values, std::size_t n,
                            std::size_t grain) {
  const ParallelContext ctx;
  return reduce<std::uint64_t>(
      ctx, n, grain, 0,
      [&](const Chunk& chunk) {
        std::uint64_t sum = 0;
        for (std::size_t i = chunk.begin; i < chunk.end; ++i)
          sum += mix(values[i]);
        return sum;
      },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
}

}  // namespace nullgraph::exec::detail
