#pragma once
// Per-phase execution records produced by the exec layer. Every governed
// parallel loop reports one LoopSample (wall time, chunk counts, and —
// when chunk timing is on — per-chunk duration aggregates) to the sink its
// ParallelContext points at; the sink aggregates samples by phase name so
// a phase that launches many loops (e.g. one swap pair-loop per iteration)
// collapses into a single row in the final PipelineReport instead of
// hundreds.
//
// Rows are indexed by an unordered_map so record() is O(1) in the number
// of distinct phases — phases like "swaps" report once per iteration, and
// the old linear scan over rows made every report pay for every phase name
// ever seen.
//
// The sink is thread-safe (loops on different threads may report
// concurrently, e.g. nested LFR community layers) but reporting happens
// once per LOOP, not per chunk, so the mutex is far off the hot path.

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/thread_annotations.hpp"

namespace nullgraph::exec {

/// One governed loop's execution record, reported to the sink when the
/// loop finishes. Chunk-duration fields are populated only when the loop
/// ran with chunk timing enabled (ctx.timings attached); chunk_samples == 0
/// means "no per-chunk data".
struct LoopSample {
  double wall_ms = 0.0;
  std::size_t chunks = 0;
  std::size_t chunks_skipped = 0;
  int threads = 0;
  /// Duration of the fastest / slowest executed chunk and the sum over all
  /// executed (not skipped) chunks, in milliseconds.
  double chunk_ms_min = 0.0;
  double chunk_ms_max = 0.0;
  double chunk_ms_sum = 0.0;
  std::size_t chunk_samples = 0;
};

/// Aggregated execution record for one named phase.
struct PhaseTiming {
  std::string phase;
  /// Summed wall time of every loop reported under this phase name.
  double wall_ms = 0.0;
  /// Wall time of the single slowest loop — a phase whose sum is dominated
  /// by one straggler loop looks very different from one that is uniformly
  /// slow, and the sum alone cannot tell them apart.
  double max_loop_wall_ms = 0.0;
  /// Number of for_chunks/collect/reduce invocations aggregated in.
  std::size_t loops = 0;
  /// Total chunks scheduled across those loops.
  std::size_t chunks = 0;
  /// Chunks skipped because the run's governor had already stopped.
  std::size_t chunks_skipped = 0;
  /// Thread count of the most recent loop (they are all the same in
  /// practice; a context is built once per pipeline).
  int threads = 0;
  /// Per-chunk duration aggregates over every executed chunk of every loop
  /// in this phase (zero when chunk timing never ran for this phase).
  double chunk_ms_min = 0.0;
  double chunk_ms_max = 0.0;
  double chunk_ms_sum = 0.0;
  std::size_t chunk_samples = 0;

  double chunk_ms_mean() const noexcept {
    return chunk_samples == 0 ? 0.0
                              : chunk_ms_sum / static_cast<double>(chunk_samples);
  }
  /// Slowest chunk over mean chunk: 1.0 is a perfectly balanced phase,
  /// large values mean stragglers dominate the critical path.
  double load_imbalance() const noexcept {
    const double mean = chunk_ms_mean();
    return mean <= 0.0 ? 0.0 : chunk_ms_max / mean;
  }
};

/// Mutex-protected accumulator of PhaseTiming rows, keyed by phase name in
/// first-seen order. Header-only so the exec primitives stay usable from
/// header-only callers (util/prefix_sum.hpp) without a link dependency.
class PhaseTimingSink {
 public:
  void record(const std::string& phase, const LoopSample& sample)
      NG_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    const auto [it, inserted] = index_.try_emplace(phase, rows_.size());
    if (inserted) {
      rows_.emplace_back();
      rows_.back().phase = phase;
    }
    PhaseTiming& row = rows_[it->second];
    row.wall_ms += sample.wall_ms;
    if (sample.wall_ms > row.max_loop_wall_ms)
      row.max_loop_wall_ms = sample.wall_ms;
    ++row.loops;
    row.chunks += sample.chunks;
    row.chunks_skipped += sample.chunks_skipped;
    row.threads = sample.threads;
    if (sample.chunk_samples != 0) {
      if (row.chunk_samples == 0 || sample.chunk_ms_min < row.chunk_ms_min)
        row.chunk_ms_min = sample.chunk_ms_min;
      if (sample.chunk_ms_max > row.chunk_ms_max)
        row.chunk_ms_max = sample.chunk_ms_max;
      row.chunk_ms_sum += sample.chunk_ms_sum;
      row.chunk_samples += sample.chunk_samples;
    }
  }

  std::vector<PhaseTiming> snapshot() const NG_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return rows_;
  }

 private:
  mutable Mutex mutex_;
  std::vector<PhaseTiming> rows_ NG_GUARDED_BY(mutex_);
  std::unordered_map<std::string, std::size_t> index_ NG_GUARDED_BY(mutex_);
};

}  // namespace nullgraph::exec
