#pragma once
// Per-phase execution records produced by the exec layer. Every governed
// parallel loop reports one (wall time, chunk count, skipped-chunk count)
// sample to the sink its ParallelContext points at; the sink aggregates
// samples by phase name so a phase that launches many loops (e.g. one swap
// pair-loop per iteration) collapses into a single row in the final
// PipelineReport instead of hundreds.
//
// The sink is thread-safe (loops on different threads may report
// concurrently, e.g. nested LFR community layers) but reporting happens
// once per LOOP, not per chunk, so the mutex is far off the hot path.

#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

namespace nullgraph::exec {

/// Aggregated execution record for one named phase.
struct PhaseTiming {
  std::string phase;
  /// Summed wall time of every loop reported under this phase name.
  double wall_ms = 0.0;
  /// Number of for_chunks/collect/reduce invocations aggregated in.
  std::size_t loops = 0;
  /// Total chunks scheduled across those loops.
  std::size_t chunks = 0;
  /// Chunks skipped because the run's governor had already stopped.
  std::size_t chunks_skipped = 0;
  /// Thread count of the most recent loop (they are all the same in
  /// practice; a context is built once per pipeline).
  int threads = 0;
};

/// Mutex-protected accumulator of PhaseTiming rows, keyed by phase name in
/// first-seen order. Header-only so the exec primitives stay usable from
/// header-only callers (util/prefix_sum.hpp) without a link dependency.
class PhaseTimingSink {
 public:
  void record(const std::string& phase, double wall_ms, std::size_t chunks,
              std::size_t chunks_skipped, int threads) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (PhaseTiming& row : rows_) {
      if (row.phase == phase) {
        row.wall_ms += wall_ms;
        ++row.loops;
        row.chunks += chunks;
        row.chunks_skipped += chunks_skipped;
        row.threads = threads;
        return;
      }
    }
    rows_.push_back({phase, wall_ms, 1, chunks, chunks_skipped, threads});
  }

  std::vector<PhaseTiming> snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return rows_;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<PhaseTiming> rows_;
};

}  // namespace nullgraph::exec
