#pragma once
// The unified execution layer. Every parallel loop in the library runs
// through the three primitives below; raw `#pragma omp` is allowed only in
// this directory (enforced by the scripts/check.sh lint).
//
// Chunk model. An index space [0, n) is split into ceil(n / grain) chunks
// via block_range, so the chunk layout depends only on (n, grain) — never
// on the thread count. Chunks are scheduled dynamically over the context's
// threads; each chunk is processed by exactly one thread.
//
// Determinism contract. Anything derived from the Chunk handle is
// thread-count-invariant: chunk.rng() seeds a fresh xoshiro256** from
// (ctx.seed, chunk.index), collect() buffers output per CHUNK and
// concatenates in chunk-index order, and reduce() combines per-chunk
// partials serially in chunk-index order (deterministic even for floating
// point). A fixed seed therefore yields bit-identical output at 1, 2, or
// 64 threads.
//
// Governance hook points. When ctx.governor is set, each chunk polls
// should_stop() once before running; after the sticky verdict trips, every
// remaining chunk is skipped (collect emits nothing for it, reduce keeps
// its identity value) and the loop drains in one pass over the chunk
// indices. Per-chunk, never per-element: default-on governance stays off
// the critical path.
//
// Purity contract (machine-checked). Callbacks passed to these primitives
// are pure CPU work: the semantic analyzer (scripts/analyze/, rules
// exec-purity and rng-determinism) walks each callback's call cone and
// fails the check tier if it can reach blocking I/O, sleeping, or lock
// acquisition, or constructs an RNG engine whose seed does not flow from
// chunk.rng()/chunk_seed()/task_seed(). Deliberate exceptions carry an
// `analyzer-ok(<rule>): <reason>` comment at the call site.

#include <omp.h>

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "exec/parallel_context.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace nullgraph::exec {

/// Default chunk grain: big enough to amortize dispatch, small enough that
/// governance reacts in well under a millisecond of element work.
inline constexpr std::size_t kDefaultGrain = std::size_t{1} << 12;

/// Number of chunks a loop over [0, n) with the given grain schedules.
inline std::size_t num_chunks(std::size_t n, std::size_t grain) noexcept {
  if (n == 0) return 0;
  const std::size_t g = grain == 0 ? 1 : grain;
  return (n + g - 1) / g;
}

/// Grain yielding at most `parts` chunks (ceil(n / parts), min 1). Used by
/// loops that want one chunk per thread (e.g. the prefix-sum scan).
inline std::size_t balanced_grain(std::size_t n, std::size_t parts) noexcept {
  if (parts == 0) parts = 1;
  const std::size_t g = (n + parts - 1) / parts;
  return g == 0 ? 1 : g;
}

/// Stateless per-chunk stream seed: two splitmix64 rounds over
/// (seed, chunk), matching the task_seed discipline the edge-skip phase
/// already used. Depends only on the run seed and the chunk INDEX.
inline std::uint64_t chunk_seed(std::uint64_t seed,
                                std::uint64_t chunk) noexcept {
  std::uint64_t state = seed ^ (chunk * 0x9e3779b97f4a7c15ULL);
  (void)splitmix64_next(state);
  return splitmix64_next(state);
}

/// Handle passed to loop bodies: the chunk's index, its [begin, end) slice
/// of the iteration space, and the run seed its RNG stream derives from.
struct Chunk {
  std::size_t index;
  std::size_t begin;
  std::size_t end;
  std::uint64_t run_seed;

  std::size_t size() const noexcept { return end - begin; }

  /// Fresh decorrelated generator for this chunk; identical for a fixed
  /// (run seed, chunk index) at any thread count.
  Xoshiro256ss rng() const noexcept {
    return Xoshiro256ss(chunk_seed(run_seed, index));
  }
};

/// Governed chunked parallel-for over [0, n). `body(const Chunk&)` runs
/// once per non-skipped chunk, on exactly one thread.
template <typename Body>
void for_chunks(const ParallelContext& ctx, std::size_t n, std::size_t grain,
                Body&& body) {
  const std::size_t nchunks = num_chunks(n, grain);
  // Per-chunk durations are collected only when a timing sink is attached
  // (two steady_clock reads per multi-thousand-element chunk, and nothing —
  // not even the vector allocation — when it is not). -1.0 marks a chunk
  // skipped by governance.
  const bool time_chunks = ctx.timings != nullptr;
  std::vector<double> chunk_ms;
  if (time_chunks) chunk_ms.assign(nchunks, -1.0);
  obs::TraceSpan loop_span(ctx.obs.trace,
                           ctx.phase != nullptr ? ctx.phase : "loop");
  const auto start = std::chrono::steady_clock::now();
  std::int64_t skipped = 0;
  if (nchunks > 0) {
    const int nthreads = ctx.resolved_threads();
    const std::int64_t count = static_cast<std::int64_t>(nchunks);
#pragma omp parallel for schedule(dynamic, 1) num_threads(nthreads) \
    reduction(+ : skipped)
    for (std::int64_t c = 0; c < count; ++c) {
      if (ctx.governor != nullptr &&
          ctx.governor->should_stop() != StatusCode::kOk) {
        ++skipped;
        continue;
      }
      const std::size_t index = static_cast<std::size_t>(c);
      const auto [begin, end] = block_range(index, nchunks, n);
      if (time_chunks) {
        const auto chunk_start = std::chrono::steady_clock::now();
        body(Chunk{index, begin, end, ctx.seed});
        chunk_ms[index] = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - chunk_start)
                              .count();
      } else {
        body(Chunk{index, begin, end, ctx.seed});
      }
    }
  }
  if (ctx.timings != nullptr) {
    LoopSample sample;
    sample.wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    sample.chunks = nchunks;
    sample.chunks_skipped = static_cast<std::size_t>(skipped);
    sample.threads = ctx.resolved_threads();
    for (const double ms : chunk_ms) {
      if (ms < 0.0) continue;  // skipped chunk
      if (sample.chunk_samples == 0 || ms < sample.chunk_ms_min)
        sample.chunk_ms_min = ms;
      if (ms > sample.chunk_ms_max) sample.chunk_ms_max = ms;
      sample.chunk_ms_sum += ms;
      ++sample.chunk_samples;
    }
    ctx.timings->record(ctx.phase != nullptr ? ctx.phase : "", sample);
  }
}

/// Chunked parallel producer. `body(const Chunk&, std::vector<T>& out)`
/// appends this chunk's output to `out`; buffers are concatenated in
/// chunk-index order (moved, not copied), so the result is identical at
/// any thread count. Chunks skipped by governance contribute nothing.
template <typename T, typename Body>
std::vector<T> collect(const ParallelContext& ctx, std::size_t n,
                       std::size_t grain, Body&& body) {
  std::vector<std::vector<T>> buffers(num_chunks(n, grain));
  for_chunks(ctx, n, grain, [&](const Chunk& chunk) {
    body(chunk, buffers[chunk.index]);
  });
  return concat_buffers(buffers);
}

/// Chunked parallel reduction. `body(const Chunk&) -> T` produces one
/// partial per chunk; `combine(T, T) -> T` folds partials serially in
/// chunk-index order, so even floating-point reductions are deterministic
/// at any thread count. Skipped chunks keep the identity value.
template <typename T, typename Body, typename Combine>
T reduce(const ParallelContext& ctx, std::size_t n, std::size_t grain,
         T identity, Body&& body, Combine&& combine) {
  const std::size_t nchunks = num_chunks(n, grain);
  std::vector<T> partials(nchunks, identity);
  for_chunks(ctx, n, grain, [&](const Chunk& chunk) {
    partials[chunk.index] = body(chunk);
  });
  T result = std::move(identity);
  for (T& partial : partials) result = combine(std::move(result), std::move(partial));
  return result;
}

namespace detail {
/// Hand-rolled seed-style chunked loop (raw pragma, per-thread
/// accumulation) kept ONLY as the baseline for bench_guardrails'
/// exec-overhead comparison — the pre-refactor loop shape, frozen.
std::uint64_t raw_omp_hash_sum(const std::uint64_t* values, std::size_t n,
                               std::size_t grain);

/// The same computation through exec::reduce, for the overhead bench.
std::uint64_t exec_hash_sum(const std::uint64_t* values, std::size_t n,
                            std::size_t grain);
}  // namespace detail

}  // namespace nullgraph::exec
