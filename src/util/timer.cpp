#include "util/timer.hpp"

namespace nullgraph {

void PhaseTimer::stop() {
  if (current_.empty()) return;
  const double elapsed = watch_.seconds();
  for (auto& [name, seconds] : phases_) {
    if (name == current_) {
      seconds += elapsed;
      current_.clear();
      return;
    }
  }
  phases_.emplace_back(current_, elapsed);
  current_.clear();
}

double PhaseTimer::seconds(const std::string& phase) const noexcept {
  for (const auto& [name, seconds] : phases_)
    if (name == phase) return seconds;
  return 0.0;
}

double PhaseTimer::total_seconds() const noexcept {
  double total = 0.0;
  for (const auto& [name, seconds] : phases_) total += seconds;
  return total;
}

}  // namespace nullgraph
