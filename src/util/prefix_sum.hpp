#pragma once
// Blocked two-pass parallel prefix sums (the ParallelPrefixSums of
// Algorithm IV.2), expressed on the exec layer: one chunk per thread, a
// serial scan across the chunk totals between the two passes. O(n) work,
// O(n/p + p) parallel time.

#include <cstddef>
#include <vector>

#include "exec/exec.hpp"

namespace nullgraph {

namespace detail {

template <typename T, bool kInclusive>
T blocked_prefix_sum(std::vector<T>& values) {
  const std::size_t n = values.size();
  if (n == 0) return T{0};
  // Ungoverned on purpose: a governance-skipped chunk would leave a hole
  // in the scan and corrupt every offset after it.
  const exec::ParallelContext ctx;
  const std::size_t grain = exec::balanced_grain(
      n, static_cast<std::size_t>(ctx.resolved_threads()));
  const std::size_t nchunks = exec::num_chunks(n, grain);
  std::vector<T> totals(nchunks + 1, T{0});
  exec::for_chunks(ctx, n, grain, [&](const exec::Chunk& chunk) {
    T sum{0};
    for (std::size_t i = chunk.begin; i < chunk.end; ++i) sum += values[i];
    totals[chunk.index + 1] = sum;
  });
  for (std::size_t b = 1; b <= nchunks; ++b) totals[b] += totals[b - 1];
  exec::for_chunks(ctx, n, grain, [&](const exec::Chunk& chunk) {
    T running = totals[chunk.index];
    for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
      if constexpr (kInclusive) {
        running += values[i];
        values[i] = running;
      } else {
        const T value = values[i];
        values[i] = running;
        running += value;
      }
    }
  });
  return totals[nchunks];
}

}  // namespace detail

/// In-place exclusive prefix sum; returns the total (sum of all inputs).
template <typename T>
T exclusive_prefix_sum(std::vector<T>& values) {
  return detail::blocked_prefix_sum<T, false>(values);
}

/// In-place inclusive prefix sum; returns the total.
template <typename T>
T inclusive_prefix_sum(std::vector<T>& values) {
  return detail::blocked_prefix_sum<T, true>(values);
}

}  // namespace nullgraph
