#pragma once
// Blocked two-pass parallel prefix sums (the ParallelPrefixSums of
// Algorithm IV.2). O(n) work, O(n/p + p) parallel time.

#include <omp.h>

#include <cstddef>
#include <vector>

namespace nullgraph {

/// In-place exclusive prefix sum; returns the total (sum of all inputs).
template <typename T>
T exclusive_prefix_sum(std::vector<T>& values) {
  const std::size_t n = values.size();
  if (n == 0) return T{0};
  const int nthreads = omp_get_max_threads();
  std::vector<T> block_totals(static_cast<std::size_t>(nthreads) + 1, T{0});
#pragma omp parallel num_threads(nthreads)
  {
    const int tid = omp_get_thread_num();
    const std::size_t chunk = (n + nthreads - 1) / nthreads;
    const std::size_t begin = chunk * static_cast<std::size_t>(tid);
    const std::size_t end = begin + chunk < n ? begin + chunk : n;
    T sum{0};
    for (std::size_t i = begin; i < end; ++i) sum += values[i];
    block_totals[tid + 1] = sum;
#pragma omp barrier
#pragma omp single
    {
      for (int b = 1; b <= nthreads; ++b)
        block_totals[b] += block_totals[b - 1];
    }
    T running = block_totals[tid];
    for (std::size_t i = begin; i < end; ++i) {
      const T value = values[i];
      values[i] = running;
      running += value;
    }
  }
  return block_totals[static_cast<std::size_t>(nthreads)];
}

/// In-place inclusive prefix sum; returns the total. Same blocked two-pass
/// structure as the exclusive scan (a shift-left of the exclusive result
/// would race across block boundaries).
template <typename T>
T inclusive_prefix_sum(std::vector<T>& values) {
  const std::size_t n = values.size();
  if (n == 0) return T{0};
  const int nthreads = omp_get_max_threads();
  std::vector<T> block_totals(static_cast<std::size_t>(nthreads) + 1, T{0});
#pragma omp parallel num_threads(nthreads)
  {
    const int tid = omp_get_thread_num();
    const std::size_t chunk = (n + nthreads - 1) / nthreads;
    const std::size_t begin = chunk * static_cast<std::size_t>(tid);
    const std::size_t end = begin + chunk < n ? begin + chunk : n;
    T sum{0};
    for (std::size_t i = begin; i < end; ++i) sum += values[i];
    block_totals[tid + 1] = sum;
#pragma omp barrier
#pragma omp single
    {
      for (int b = 1; b <= nthreads; ++b)
        block_totals[b] += block_totals[b - 1];
    }
    T running = block_totals[tid];
    for (std::size_t i = begin; i < end; ++i) {
      running += values[i];
      values[i] = running;
    }
  }
  return block_totals[static_cast<std::size_t>(nthreads)];
}

}  // namespace nullgraph
