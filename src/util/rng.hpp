#pragma once
// Pseudo-random number generation for nullgraph.
//
// xoshiro256** (Blackman & Vigna) seeded through splitmix64, plus a pool of
// decorrelated per-thread streams. All generators in the library are seeded
// explicitly so runs are reproducible for a fixed seed and thread count.

#include <array>
#include <cstdint>
#include <vector>

namespace nullgraph {

/// Advance a splitmix64 state and return the next output. Used both as a
/// tiny standalone generator and as the seed expander for xoshiro256**.
constexpr std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256**: fast, high-quality 64-bit generator with 2^256-1 period.
class Xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words via splitmix64 so any 64-bit seed works.
  explicit Xoshiro256ss(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64_next(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of resolution.
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1); never returns 0, safe as a log() argument.
  double uniform_open() noexcept {
    return (static_cast<double>(next() >> 11) + 0.5) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). Lemire multiply-shift; the modulo bias
  /// is bound/2^64 which is negligible for any graph-sized bound.
  std::uint64_t bounded(std::uint64_t bound) noexcept {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Fair coin flip.
  bool flip() noexcept { return (next() >> 63) != 0; }

  /// Equivalent to 2^128 calls of next(); used to split one seed into
  /// provably non-overlapping parallel streams.
  void long_jump() noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

/// A pool of decorrelated generators, one per OpenMP thread. Streams are
/// derived by repeated long_jump() from a single seeded generator, so the
/// pool is reproducible for a fixed (seed, size) pair.
class RngPool {
 public:
  /// Builds `streams` generators (defaults to omp_get_max_threads()).
  explicit RngPool(std::uint64_t seed, int streams = 0);

  /// Generator for the calling OpenMP thread (by omp_get_thread_num()).
  Xoshiro256ss& local() noexcept;

  /// Generator for an explicit stream index.
  Xoshiro256ss& stream(int index) noexcept { return streams_[index]; }
  const Xoshiro256ss& stream(int index) const noexcept {
    return streams_[index];
  }

  int size() const noexcept { return static_cast<int>(streams_.size()); }

 private:
  std::vector<Xoshiro256ss> streams_;
};

}  // namespace nullgraph
