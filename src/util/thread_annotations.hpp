#pragma once
// Clang thread-safety annotation macros (NG_ prefix) and an annotated
// mutex wrapper. Under Clang with -Wthread-safety the compiler proves at
// build time that every NG_GUARDED_BY member is only touched with its
// capability held and that NG_REQUIRES contracts hold at each call site;
// under GCC (and Clang without the warning) every macro expands to
// nothing, so the annotations cost zero in any configuration.
//
// libstdc++'s std::mutex carries no capability attributes, so annotating
// members with GUARDED_BY(std::mutex) proves nothing. ng::Mutex below is
// the project's lockable type: a zero-overhead std::mutex wrapper that IS
// a capability, paired with the scoped ng::MutexLock. All cross-thread
// mutex-guarded state (MetricsRegistry, TraceSink, PhaseTimingSink) uses
// these, which is what makes the NULLGRAPH_THREAD_SAFETY analysis tier in
// scripts/check.sh meaningful. Atomics-based structures (ConcurrentHashSet
// slots, RunGovernor's sticky verdict, metric stripes) are their own
// synchronization; they document their protocol at each relaxed site (see
// the atomics lint rule) rather than through capabilities.

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define NG_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef NG_THREAD_ANNOTATION
#define NG_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Marks a type as a lockable capability (shows up as "mutex 'm'" in
/// diagnostics).
#define NG_CAPABILITY(name) NG_THREAD_ANNOTATION(capability(name))

/// Marks an RAII type whose constructor acquires and destructor releases a
/// capability.
#define NG_SCOPED_CAPABILITY NG_THREAD_ANNOTATION(scoped_lockable)

/// Member may only be read or written while `mutex` is held.
#define NG_GUARDED_BY(mutex) NG_THREAD_ANNOTATION(guarded_by(mutex))

/// Pointer member: the pointee (not the pointer) is guarded by `mutex`.
#define NG_PT_GUARDED_BY(mutex) NG_THREAD_ANNOTATION(pt_guarded_by(mutex))

/// Function requires the capability to be held by the caller.
#define NG_REQUIRES(...) \
  NG_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the capability and does not release it.
#define NG_ACQUIRE(...) NG_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define NG_RELEASE(...) NG_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function must NOT be called with the capability held (deadlock guard).
#define NG_EXCLUDES(...) NG_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define NG_RETURN_CAPABILITY(x) NG_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for code the analysis cannot model (e.g. init/teardown
/// that is single-threaded by contract). Use sparingly and say why.
#define NG_NO_THREAD_SAFETY_ANALYSIS \
  NG_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace nullgraph {

/// std::mutex with capability attributes: the lockable type every
/// mutex-guarded member in the project is annotated against.
class NG_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() NG_ACQUIRE() { inner_.lock(); }
  void unlock() NG_RELEASE() { inner_.unlock(); }

 private:
  std::mutex inner_;
};

/// Scoped lock over ng::Mutex (std::lock_guard carries no annotations on
/// libstdc++, so it is invisible to the analysis).
class NG_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) NG_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() NG_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

}  // namespace nullgraph
