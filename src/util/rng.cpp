#include "util/rng.hpp"

#include <omp.h>

namespace nullgraph {

void Xoshiro256ss::long_jump() noexcept {
  static constexpr std::array<std::uint64_t, 4> kLongJump = {
      0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL, 0x77710069854ee241ULL,
      0x39109bb02acbe635ULL};
  std::array<std::uint64_t, 4> acc{};
  for (std::uint64_t jump : kLongJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if (jump & (1ULL << bit)) {
        for (std::size_t w = 0; w < acc.size(); ++w) acc[w] ^= state_[w];
      }
      next();
    }
  }
  state_ = acc;
}

RngPool::RngPool(std::uint64_t seed, int streams) {
  if (streams <= 0) streams = omp_get_max_threads();
  streams_.reserve(static_cast<std::size_t>(streams));
  Xoshiro256ss base(seed);
  for (int s = 0; s < streams; ++s) {
    streams_.push_back(base);
    base.long_jump();
  }
}

Xoshiro256ss& RngPool::local() noexcept {
  return streams_[static_cast<std::size_t>(omp_get_thread_num()) %
                  streams_.size()];
}

}  // namespace nullgraph
