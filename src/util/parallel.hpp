#pragma once
// Thread introspection, block partitioning, and the buffer concatenation
// tail behind exec::collect. Pragma-free: raw OpenMP lives in src/exec/.

#include <omp.h>

#include <cstddef>
#include <iterator>
#include <utility>
#include <vector>

namespace nullgraph {

/// Number of threads an upcoming parallel region will use.
inline int max_threads() noexcept { return omp_get_max_threads(); }

/// Calling thread's index inside a parallel region (0 outside).
inline int thread_id() noexcept { return omp_get_thread_num(); }

/// Contiguous [begin, end) block of `n` items owned by block `block` of
/// `nblocks`. Remainder items are spread over the leading blocks, so block
/// sizes differ by at most one. Depends only on (block, nblocks, n): this
/// is what makes the exec layer's chunk layout thread-count-invariant.
inline std::pair<std::size_t, std::size_t> block_range(
    std::size_t block, std::size_t nblocks, std::size_t n) noexcept {
  const std::size_t base = n / nblocks;
  const std::size_t extra = n % nblocks;
  const std::size_t begin = block * base + (block < extra ? block : extra);
  const std::size_t size = base + (block < extra ? 1 : 0);
  return {begin, begin + size};
}

inline std::pair<std::size_t, std::size_t> block_range(
    int block, int nblocks, std::size_t n) noexcept {
  return block_range(static_cast<std::size_t>(block),
                     static_cast<std::size_t>(nblocks), n);
}

/// Concatenates per-chunk output buffers into one vector in buffer order,
/// MOVING elements (the buffers are left empty). One exact reserve up
/// front; for trivially-copyable payloads like Edge the per-buffer insert
/// degenerates to memmove, so the serial tail is memory-bound and
/// negligible next to the parallel producers that filled the buffers.
template <typename T>
std::vector<T> concat_buffers(std::vector<std::vector<T>>& buffers) {
  std::size_t total = 0;
  for (const std::vector<T>& buffer : buffers) total += buffer.size();
  std::vector<T> out;
  out.reserve(total);
  for (std::vector<T>& buffer : buffers) {
    out.insert(out.end(), std::make_move_iterator(buffer.begin()),
               std::make_move_iterator(buffer.end()));
    buffer.clear();
  }
  return out;
}

}  // namespace nullgraph
