#pragma once
// Thin OpenMP helpers: thread introspection, block partitioning, and the
// per-thread-buffer concatenation pattern used by every parallel generator.

#include <omp.h>

#include <cstddef>
#include <utility>
#include <vector>

#include "util/prefix_sum.hpp"

namespace nullgraph {

/// Number of threads an upcoming parallel region will use.
inline int max_threads() noexcept { return omp_get_max_threads(); }

/// Calling thread's index inside a parallel region (0 outside).
inline int thread_id() noexcept { return omp_get_thread_num(); }

/// Contiguous [begin, end) block of `n` items owned by block `tid` of
/// `nblocks`. Remainder items are spread over the leading blocks, so block
/// sizes differ by at most one.
inline std::pair<std::size_t, std::size_t> block_range(
    int tid, int nblocks, std::size_t n) noexcept {
  const std::size_t t = static_cast<std::size_t>(tid);
  const std::size_t b = static_cast<std::size_t>(nblocks);
  const std::size_t base = n / b;
  const std::size_t extra = n % b;
  const std::size_t begin = t * base + (t < extra ? t : extra);
  const std::size_t size = base + (t < extra ? 1 : 0);
  return {begin, begin + size};
}

/// Concatenates per-thread output buffers into one vector with a parallel
/// copy. The usual tail of "each thread appended to its own vector" code.
template <typename T>
std::vector<T> concat_buffers(std::vector<std::vector<T>>& buffers) {
  const int nb = static_cast<int>(buffers.size());
  std::vector<std::size_t> offsets(static_cast<std::size_t>(nb) + 1, 0);
  for (int b = 0; b < nb; ++b)
    offsets[b + 1] = offsets[b] + buffers[b].size();
  std::vector<T> out(offsets[nb]);
#pragma omp parallel for schedule(static)
  for (int b = 0; b < nb; ++b) {
    std::size_t pos = offsets[b];
    for (const T& item : buffers[b]) out[pos++] = item;
  }
  return out;
}

}  // namespace nullgraph
