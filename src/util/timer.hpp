#pragma once
// Wall-clock timing for phase breakdowns (Figure 6 of the paper).

#include <chrono>
#include <string>
#include <utility>
#include <vector>

namespace nullgraph {

/// Simple steady-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(Clock::now()) {}
  void reset() noexcept { start_ = Clock::now(); }
  /// Seconds since construction or last reset().
  double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates named phase durations, e.g. {"probabilities", "edges",
/// "swaps"}; repeated phases accumulate.
class PhaseTimer {
 public:
  void start(std::string phase) {
    current_ = std::move(phase);
    watch_.reset();
  }

  /// Closes the currently open phase (no-op when none is open).
  void stop();

  /// Total accumulated seconds for `phase` (0 when never recorded).
  double seconds(const std::string& phase) const noexcept;

  /// Sum over all phases.
  double total_seconds() const noexcept;

  const std::vector<std::pair<std::string, double>>& phases() const noexcept {
    return phases_;
  }

 private:
  Stopwatch watch_;
  std::string current_;
  std::vector<std::pair<std::string, double>> phases_;
};

}  // namespace nullgraph
