#pragma once
// Parallel random permutation after Shun, Gu, Blelloch, Fineman, Gibbons,
// "Sequential random permutation, list contraction and tree contraction are
// highly parallel" (SODA 2015) — the Permute(E) of Algorithm III.1.
//
// The Knuth shuffle (i = n-1 .. 1: swap A[i], A[H[i]], H[i] uniform on
// [0, i]) looks inherently sequential, but for a FIXED target array H the
// dependence structure is shallow: iteration i depends only on later
// iterations that touch cells i or H[i]. The parallel driver runs rounds of
// "reserve both cells with priority max(i); winners commit their swap",
// which reproduces the sequential result exactly in O(log n) rounds w.h.p.
//
// Targets are derived statelessly from (seed, i), so serial and parallel
// drivers agree bit-for-bit for any thread count — the basis of both our
// tests and the paper's serial-vs-parallel validation.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "exec/exec.hpp"
#include "robustness/governance.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace nullgraph {

/// Knuth-shuffle targets: H[i] uniform on [0, i], computed as a stateless
/// hash of (seed, i).
std::vector<std::uint64_t> knuth_targets(std::size_t n, std::uint64_t seed);

/// Statistics from one parallel permutation (for tests/benchmarks).
struct PermuteStats {
  std::size_t rounds = 0;
};

namespace detail {

/// Round-synchronous reservation driver shared by all element types.
/// `swap_cells(i, j)` must swap application data between cells i and j.
/// The optional governor is polled once per round; stopping mid-shuffle
/// leaves a partially-applied permutation, which is still a permutation of
/// the input (no element is lost or duplicated).
template <typename SwapFn>
PermuteStats run_reservation_rounds(std::size_t n,
                                    std::span<const std::uint64_t> targets,
                                    SwapFn&& swap_cells,
                                    const RunGovernor* governor = nullptr) {
  PermuteStats stats;
  if (n < 2) return stats;
  // Phases run ungoverned (a skipped chunk inside a round would strand
  // reservations); the governor gates between rounds instead, which is the
  // same cadence the hand-rolled loop used.
  const exec::ParallelContext ctx;
  exec::ParallelContext round_ctx = ctx;
  round_ctx.governor = governor;
  // Reservation array: holds the highest iteration index currently bidding
  // for each cell. Iteration 0 is a no-op (H[0] == 0), so 0 doubles as the
  // "free" sentinel and max() resolves priority.
  std::vector<std::atomic<std::uint64_t>> reservation(n);
  exec::for_chunks(ctx, n, exec::kDefaultGrain, [&](const exec::Chunk& chunk) {
    // relaxed: pre-round init; the loop barrier publishes the zeros.
    for (std::size_t c = chunk.begin; c < chunk.end; ++c)
      reservation[c].store(0, std::memory_order_relaxed);
  });

  std::vector<std::uint64_t> remaining(n - 1);
  exec::for_chunks(ctx, n - 1, exec::kDefaultGrain,
                   [&](const exec::Chunk& chunk) {
                     for (std::size_t k = chunk.begin; k < chunk.end; ++k)
                       remaining[k] = static_cast<std::uint64_t>(n - 1 - k);
                   });

  while (!remaining.empty()) {
    if (round_ctx.stopped()) break;
    ++stats.rounds;
    // Phase 1: every live iteration bids for its two cells.
    exec::for_chunks(ctx, remaining.size(), exec::kDefaultGrain,
                     [&](const exec::Chunk& chunk) {
                       for (std::size_t k = chunk.begin; k < chunk.end; ++k) {
                         const std::uint64_t i = remaining[k];
                         const std::uint64_t h = targets[i];
                         // relaxed: max-CAS bids carry no payload — the
                         // commit phase re-reads after the loop barrier,
                         // which is the only publication point.
                         std::uint64_t prev =
                             reservation[i].load(std::memory_order_relaxed);
                         while (prev < i &&
                                !reservation[i].compare_exchange_weak(
                                    prev, i, std::memory_order_relaxed)) {
                         }
                         // relaxed: same bid protocol for the target cell.
                         prev = reservation[h].load(std::memory_order_relaxed);
                         while (prev < i &&
                                !reservation[h].compare_exchange_weak(
                                    prev, i, std::memory_order_relaxed)) {
                         }
                       }
                     });
    // Phase 2: winners of BOTH cells commit; everyone else retries next
    // round. Winners are mutually disjoint on cells, so swaps are safe.
    // Per-chunk retry buffers concatenated in chunk order keep the live
    // set's order thread-count-invariant.
    std::vector<std::uint64_t> retries = exec::collect<std::uint64_t>(
        ctx, remaining.size(), exec::kDefaultGrain,
        [&](const exec::Chunk& chunk, std::vector<std::uint64_t>& mine) {
          for (std::size_t k = chunk.begin; k < chunk.end; ++k) {
            const std::uint64_t i = remaining[k];
            const std::uint64_t h = targets[i];
            // relaxed: bids were sealed by the inter-phase loop barrier;
            // these reads race with nothing.
            if (reservation[i].load(std::memory_order_relaxed) == i &&
                reservation[h].load(std::memory_order_relaxed) == i) {
              if (h != i) swap_cells(static_cast<std::size_t>(i),
                                     static_cast<std::size_t>(h));
            } else {
              mine.push_back(i);
            }
          }
        });
    // Phase 3: release only the cells still referenced by live iterations.
    exec::for_chunks(ctx, remaining.size(), exec::kDefaultGrain,
                     [&](const exec::Chunk& chunk) {
                       for (std::size_t k = chunk.begin; k < chunk.end; ++k) {
                         const std::uint64_t i = remaining[k];
                         // relaxed: release-for-next-round; the round's
                         // trailing loop barrier publishes the zeros.
                         reservation[i].store(0, std::memory_order_relaxed);
                         reservation[targets[i]].store(
                             0, std::memory_order_relaxed);
                       }
                     });
    remaining = std::move(retries);
  }
  return stats;
}

}  // namespace detail

/// Serial Knuth shuffle against explicit targets (the reference the
/// parallel driver must match exactly).
template <typename T>
void apply_targets_serial(std::span<T> values,
                          std::span<const std::uint64_t> targets) {
  for (std::size_t i = values.size(); i-- > 1;) {
    std::swap(values[i], values[targets[i]]);
  }
}

/// Parallel Knuth shuffle against explicit targets (Shun et al.).
template <typename T>
PermuteStats apply_targets_parallel(std::span<T> values,
                                    std::span<const std::uint64_t> targets,
                                    const RunGovernor* governor = nullptr) {
  return detail::run_reservation_rounds(
      values.size(), targets,
      [&](std::size_t i, std::size_t j) { std::swap(values[i], values[j]); },
      governor);
}

/// Uniformly permutes `values` in parallel.
template <typename T>
PermuteStats parallel_permute(std::span<T> values, std::uint64_t seed,
                              const RunGovernor* governor = nullptr) {
  const std::vector<std::uint64_t> targets =
      knuth_targets(values.size(), seed);
  return apply_targets_parallel(
      values,
      std::span<const std::uint64_t>(targets.data(), targets.size()),
      governor);
}

/// Uniformly permutes `values` serially; same output as parallel_permute
/// for the same seed.
template <typename T>
void serial_permute(std::span<T> values, std::uint64_t seed) {
  const std::vector<std::uint64_t> targets =
      knuth_targets(values.size(), seed);
  apply_targets_serial(values, std::span<const std::uint64_t>(
                                   targets.data(), targets.size()));
}

}  // namespace nullgraph
