#include "permute/permutation.hpp"

namespace nullgraph {

std::vector<std::uint64_t> knuth_targets(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint64_t> targets(n, 0);
  const exec::ParallelContext ctx;
  exec::for_chunks(ctx, n, exec::kDefaultGrain, [&](const exec::Chunk& chunk) {
    for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
      if (i == 0) continue;  // H[0] == 0 by definition
      // Stateless per-index stream: two splitmix64 steps decorrelate the
      // (seed, i) pair, then a Lemire reduction maps onto [0, i].
      std::uint64_t state = seed ^ (0x9e3779b97f4a7c15ULL * (i + 1));
      splitmix64_next(state);
      const std::uint64_t r = splitmix64_next(state);
      targets[i] = static_cast<std::uint64_t>(
          (static_cast<unsigned __int128>(r) * (i + 1)) >> 64);
    }
  });
  return targets;
}

}  // namespace nullgraph
