#include "core/double_edge_swap.hpp"

#include <chrono>
#include <thread>
#include <unordered_map>

#include "ds/concurrent_hash_set.hpp"
#include "exec/exec.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "permute/permutation.hpp"
#include "util/rng.hpp"

namespace nullgraph {

namespace {

/// Per-chunk counters for the table-refill and pair-swap reductions.
struct CensusCounts {
  std::size_t loops = 0;
  std::size_t dups = 0;
};

struct PairCounts {
  std::size_t swapped = 0;
  std::size_t rejected_existing = 0;
  std::size_t rejected_loop = 0;
};

/// Stateless fair coin for (seed, pair): selects the swap partnering.
bool pair_coin(std::uint64_t seed, std::uint64_t pair) {
  std::uint64_t state = seed ^ (pair * 0x9e3779b97f4a7c15ULL);
  return (splitmix64_next(state) >> 63) != 0;
}

/// The two candidate partnerings of Algorithm III.1 lines 11-16.
void propose(const Edge& e, const Edge& f, bool coin, Edge& g, Edge& h) {
  if (coin) {
    g = {e.u, f.u};  // {u, x}
    h = {e.v, f.v};  // {v, y}
  } else {
    g = {e.u, f.v};  // {u, y}
    h = {e.v, f.u};  // {v, x}
  }
}

}  // namespace

SwapStats swap_edges(EdgeList& edges, const SwapConfig& config) {
  SwapStats stats;
  const std::size_t m = edges.size();

  const RunGovernor* gov = config.governor;
  // Pre-allocation gate: a run already stopped (e.g. the memory-budget
  // check in null_model, or a cancellation before this phase) must not pay
  // for the table below — nor fabricate degenerate-path iterations.
  if (gov != nullptr) {
    const StatusCode verdict = gov->should_stop();
    if (verdict != StatusCode::kOk) {
      stats.stop_reason = verdict;
      stats.final_chain_state = config.start_iteration > 0
                                    ? config.resume_chain_state
                                    : config.seed;
      return stats;
    }
  }

  if (m < 2) {
    stats.iterations.resize(config.iterations);
    for (SwapIterationStats& it : stats.iterations)
      for (const Edge& e : edges)
        if (e.is_loop()) ++it.input_self_loops;
    return stats;
  }

  // Worst-case inserts per iteration: <= m refill keys plus 2 candidates
  // per pair — size for both so the table's <= 0.5 load invariant holds.
  ConcurrentHashSet table(m + 2 * (m / 2));
  table.set_probe_histogram(
      ConcurrentHashSet::probe_histogram(config.obs.metrics));
  // Counter handles are acquired once, outside the chain; per-iteration
  // recording is a handful of striped relaxed adds.
  obs::Counter* c_attempted = nullptr;
  obs::Counter* c_committed = nullptr;
  obs::Counter* c_rej_existing = nullptr;
  obs::Counter* c_rej_loop = nullptr;
  obs::Gauge* g_acceptance = nullptr;
  if (config.obs.metrics != nullptr) {
    c_attempted = config.obs.metrics->counter("swaps.attempted");
    c_committed = config.obs.metrics->counter("swaps.committed");
    c_rej_existing = config.obs.metrics->counter("swaps.rejected_existing");
    c_rej_loop = config.obs.metrics->counter("swaps.rejected_loop");
    g_acceptance =
        config.obs.metrics->gauge("swaps.windowed_acceptance_permille");
  }
  std::vector<std::uint8_t> ever_swapped;
  if (config.track_swapped_edges) ever_swapped.assign(m, 0);

  // The watchdog is armed only under governance: ungoverned callers (unit
  // tests, benchmarks) get exactly the historical run-to-completion chain.
  StallWatchdog watchdog(gov != nullptr ? gov->watchdog()
                                        : WatchdogConfig{.enabled = false});

  std::uint64_t seed_chain = config.start_iteration > 0
                                 ? config.resume_chain_state
                                 : config.seed;
  stats.final_chain_state = seed_chain;
  stats.iterations.reserve(config.iterations - config.start_iteration);
  // Refill/census passes run ungoverned: a skipped refill chunk would
  // leave keys out of T (risking duplicate commits) and undercount the
  // input census the simplicity proof leans on. Only the pair loop — the
  // expensive, skippable part — is governed.
  exec::ParallelContext refill_ctx;
  refill_ctx.timings = config.timings;
  refill_ctx.phase = "swaps";
  refill_ctx.obs = config.obs;
  exec::ParallelContext pair_ctx = refill_ctx;
  pair_ctx.governor = gov;
  for (std::size_t iter = config.start_iteration; iter < config.iterations;
       ++iter) {
    if (gov != nullptr) {
      if (gov->budget().max_swap_iterations != 0 &&
          iter >= gov->budget().max_swap_iterations)
        gov->note_stop(StatusCode::kDeadlineExceeded);
      const StatusCode verdict = gov->should_stop();
      if (verdict != StatusCode::kOk) {
        stats.stop_reason = verdict;
        break;
      }
    }
    obs::TraceSpan iter_span(config.obs.trace, "swap iteration");
    if (config.slow_iteration_ms != 0) {
      obs::TraceSpan slow_span(config.obs.trace, "injected slow iteration");
      std::this_thread::sleep_for(
          std::chrono::milliseconds(config.slow_iteration_ms));
    }
    stats.iterations.emplace_back();
    SwapIterationStats& it_stats = stats.iterations.back();
    const std::uint64_t permute_seed = splitmix64_next(seed_chain);
    const std::uint64_t coin_seed = splitmix64_next(seed_chain);

    // 1. T <- all current edges (multi-edge copies collapse to one key).
    //    Self-loop keys are skipped: a candidate is never a loop, so their
    //    presence in T could not block anything. The same pass counts the
    //    input simplicity census for free.
    if (stats.iterations.size() > 1) table.clear();
    const CensusCounts input = exec::reduce<CensusCounts>(
        refill_ctx, m, exec::kDefaultGrain, CensusCounts{},
        [&](const exec::Chunk& chunk) {
          CensusCounts mine;
          for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
            const Edge e = edges[i];
            if (e.is_loop()) {
              ++mine.loops;
              continue;
            }
            if (table.test_and_set(e.key())) ++mine.dups;
          }
          return mine;
        },
        [](CensusCounts a, CensusCounts b) {
          a.loops += b.loops;
          a.dups += b.dups;
          return a;
        });
    it_stats.input_self_loops = input.loops;
    it_stats.input_multi_edges = input.dups;

    // 2. Permute(E) — and the swap flags travel with their edges.
    const std::vector<std::uint64_t> targets = knuth_targets(m, permute_seed);
    const std::span<const std::uint64_t> target_span(targets.data(),
                                                     targets.size());
    apply_targets_parallel(std::span<Edge>(edges), target_span, gov);
    if (config.track_swapped_edges) {
      apply_targets_parallel(std::span<std::uint8_t>(ever_swapped),
                             target_span, gov);
    }

    // 3. Attempt one swap per adjacent pair. The exec chunk grain of 4096
    // replaces the old per-4096-pairs verdict refresh: the governor is
    // polled once per chunk, and a tripped run skips whole chunks (those
    // pairs keep their edges).
    const std::size_t pairs = m / 2;
    const PairCounts counts = exec::reduce<PairCounts>(
        pair_ctx, pairs, 4096, PairCounts{},
        [&](const exec::Chunk& chunk) {
          PairCounts mine;
          for (std::size_t k = chunk.begin; k < chunk.end; ++k) {
            const Edge e = edges[2 * k];
            const Edge f = edges[2 * k + 1];
            Edge g, h;
            propose(e, f, pair_coin(coin_seed, k), g, h);
            if (g.is_loop() || h.is_loop()) {
              ++mine.rejected_loop;
              continue;
            }
            // TestAndSet returns true when the key already exists -> reject.
            // A failed second insertion leaves g in T: a conservative
            // over-approximation, exactly as in the paper (no deletions).
            if (table.test_and_set(g.key()) || table.test_and_set(h.key())) {
              ++mine.rejected_existing;
              continue;
            }
            edges[2 * k] = g;
            edges[2 * k + 1] = h;
            ++mine.swapped;
            if (config.track_swapped_edges) {
              ever_swapped[2 * k] = 1;
              ever_swapped[2 * k + 1] = 1;
            }
          }
          return mine;
        },
        [](PairCounts a, PairCounts b) {
          a.swapped += b.swapped;
          a.rejected_existing += b.rejected_existing;
          a.rejected_loop += b.rejected_loop;
          return a;
        });
    it_stats.attempted = pairs;
    it_stats.swapped = counts.swapped;
    it_stats.rejected_existing = counts.rejected_existing;
    it_stats.rejected_loop = counts.rejected_loop;
    stats.final_chain_state = seed_chain;
    if (c_attempted != nullptr) {
      c_attempted->add(pairs);
      c_committed->add(counts.swapped);
      c_rej_existing->add(counts.rejected_existing);
      c_rej_loop->add(counts.rejected_loop);
    }
    // Windowed (this iteration only) acceptance, as permille: the cumulative
    // committed/attempted counters above hide a stalling chain's tail.
    if (g_acceptance != nullptr && pairs > 0)
      g_acceptance->set(
          static_cast<std::int64_t>(1000 * counts.swapped / pairs));

    if (gov != nullptr) {
      watchdog.record(it_stats.attempted, it_stats.swapped);
      if (watchdog.stalled()) gov->note_stop(StatusCode::kSwapStalled);
    }
    if (config.on_iteration) {
      SwapProgress progress;
      progress.completed_iterations = iter + 1;
      progress.total_iterations = config.iterations;
      progress.chain_state = seed_chain;
      progress.edges = &edges;
      config.on_iteration(progress);
    }
  }
  if (gov != nullptr && stats.stop_reason == StatusCode::kOk &&
      gov->stopped())
    stats.stop_reason = gov->stop_reason();

  if (config.track_swapped_edges) {
    stats.edges_ever_swapped = exec::reduce<std::size_t>(
        refill_ctx, m, exec::kDefaultGrain, 0,
        [&](const exec::Chunk& chunk) {
          std::size_t count = 0;
          for (std::size_t i = chunk.begin; i < chunk.end; ++i)
            count += ever_swapped[i];
          return count;
        },
        [](std::size_t a, std::size_t b) { return a + b; });
  }
  return stats;
}

SwapStats swap_edges_serial(EdgeList& edges, const SwapConfig& config) {
  // Reference MCMC with an EXACT edge table: replaced edges are removed, so
  // (unlike the parallel variant) no conservative rejections occur within
  // an iteration. Multi-edge inputs use per-key multiplicity counts.
  SwapStats stats;
  stats.iterations.resize(config.iterations);
  const std::size_t m = edges.size();
  if (m < 2) {
    for (SwapIterationStats& it : stats.iterations)
      for (const Edge& e : edges)
        if (e.is_loop()) ++it.input_self_loops;
    return stats;
  }

  std::unordered_map<EdgeKey, std::uint32_t> table;
  table.reserve(m * 2);
  for (const Edge& e : edges) ++table[e.key()];
  auto remove_key = [&table](EdgeKey key) {
    const auto it = table.find(key);
    if (it->second == 1)
      table.erase(it);
    else
      --it->second;
  };

  std::vector<std::uint8_t> ever_swapped;
  if (config.track_swapped_edges) ever_swapped.assign(m, 0);

  std::uint64_t seed_chain = config.seed;
  for (std::size_t iter = 0; iter < config.iterations; ++iter) {
    SwapIterationStats& it_stats = stats.iterations[iter];
    // Input census from the exact multiplicity table (kept incrementally,
    // unlike the parallel variant's refill): mirrors census() semantics.
    for (const auto& [key, mult] : table) {
      if (Edge::from_key(key).is_loop())
        it_stats.input_self_loops += mult;
      else
        it_stats.input_multi_edges += mult - 1;
    }
    const std::uint64_t permute_seed = splitmix64_next(seed_chain);
    const std::uint64_t coin_seed = splitmix64_next(seed_chain);
    const std::vector<std::uint64_t> targets = knuth_targets(m, permute_seed);
    const std::span<const std::uint64_t> target_span(targets.data(),
                                                     targets.size());
    apply_targets_serial(std::span<Edge>(edges), target_span);
    if (config.track_swapped_edges) {
      apply_targets_serial(std::span<std::uint8_t>(ever_swapped),
                           target_span);
    }

    const std::size_t pairs = m / 2;
    for (std::size_t k = 0; k < pairs; ++k) {
      const Edge e = edges[2 * k];
      const Edge f = edges[2 * k + 1];
      Edge g, h;
      propose(e, f, pair_coin(coin_seed, k), g, h);
      if (g.is_loop() || h.is_loop()) {
        ++it_stats.rejected_loop;
        continue;
      }
      if (g.key() == h.key() || table.contains(g.key()) ||
          table.contains(h.key())) {
        ++it_stats.rejected_existing;
        continue;
      }
      remove_key(e.key());
      remove_key(f.key());
      ++table[g.key()];
      ++table[h.key()];
      edges[2 * k] = g;
      edges[2 * k + 1] = h;
      ++it_stats.swapped;
      if (config.track_swapped_edges) {
        ever_swapped[2 * k] = 1;
        ever_swapped[2 * k + 1] = 1;
      }
    }
    it_stats.attempted = pairs;
    stats.final_chain_state = seed_chain;
  }

  if (config.track_swapped_edges) {
    std::size_t count = 0;
    for (std::uint8_t flag : ever_swapped) count += flag;
    stats.edges_ever_swapped = count;
  }
  return stats;
}

}  // namespace nullgraph
