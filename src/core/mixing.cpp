#include "core/mixing.hpp"

#include <cmath>

#include "util/rng.hpp"

namespace nullgraph {

std::size_t coverage_iterations(EdgeList edges, std::uint64_t seed,
                                std::size_t max_iterations,
                                const RunGovernor* governor) {
  const std::size_t m = edges.size();
  if (m == 0) return 0;
  // The tracked "ever swapped" flags live inside one swap_edges call (they
  // travel with the edges through each permutation), so probe whole
  // horizons: double the iteration budget until coverage saturates, then
  // binary-search the smallest sufficient horizon. Same seed -> the chain
  // replays identically, so the probes are consistent.
  const EdgeList working = std::move(edges);
  std::size_t covered = 0;
  std::size_t horizon = 1;
  while (horizon <= max_iterations) {
    // Governance is polled between whole-horizon probes, never inside one:
    // a probe cut short would corrupt the coverage search.
    if (governor != nullptr && governor->should_stop() != StatusCode::kOk)
      return max_iterations + 1;
    EdgeList copy = working;
    SwapConfig config;
    config.iterations = horizon;
    config.seed = seed;
    config.track_swapped_edges = true;
    const SwapStats stats = swap_edges(copy, config);
    covered = stats.edges_ever_swapped;
    if (covered == m) {
      // Binary-search the smallest sufficient horizon in [horizon/2+1, horizon].
      std::size_t lo = horizon / 2 + 1, hi = horizon;
      while (lo < hi) {
        if (governor != nullptr &&
            governor->should_stop() != StatusCode::kOk)
          return hi;  // best bound so far
        const std::size_t mid = lo + (hi - lo) / 2;
        EdgeList probe = working;
        SwapConfig probe_config;
        probe_config.iterations = mid;
        probe_config.seed = seed;
        probe_config.track_swapped_edges = true;
        if (swap_edges(probe, probe_config).edges_ever_swapped == m)
          hi = mid;
        else
          lo = mid + 1;
      }
      return lo;
    }
    horizon *= 2;
  }
  return max_iterations + 1;
}

std::vector<double> acceptance_profile(EdgeList edges,
                                       std::size_t iterations,
                                       std::uint64_t seed,
                                       const RunGovernor* governor) {
  SwapConfig config;
  config.iterations = iterations;
  config.seed = seed;
  config.governor = governor;
  const SwapStats stats = swap_edges(edges, config);
  std::vector<double> rates;
  rates.reserve(stats.iterations.size());
  for (const SwapIterationStats& it : stats.iterations) {
    rates.push_back(it.attempted == 0
                        ? 0.0
                        : static_cast<double>(it.swapped) /
                              static_cast<double>(it.attempted));
  }
  return rates;
}

std::vector<double> statistic_trace(
    EdgeList edges, std::size_t iterations,
    const std::function<double(const EdgeList&)>& statistic,
    std::uint64_t seed, const RunGovernor* governor) {
  std::vector<double> trace;
  trace.reserve(iterations + 1);
  trace.push_back(statistic(edges));
  std::uint64_t seed_chain = seed;
  for (std::size_t it = 0; it < iterations; ++it) {
    if (governor != nullptr && governor->should_stop() != StatusCode::kOk)
      break;  // governed: shorter trace
    SwapConfig config;
    config.iterations = 1;
    config.seed = splitmix64_next(seed_chain);
    swap_edges(edges, config);
    trace.push_back(statistic(edges));
  }
  return trace;
}

std::vector<double> autocorrelation(const std::vector<double>& trace,
                                    std::size_t max_lag) {
  const std::size_t n = trace.size();
  std::vector<double> result(max_lag + 1, 0.0);
  if (n < 2) return result;
  double mean = 0.0;
  for (double value : trace) mean += value;
  mean /= static_cast<double>(n);
  double variance = 0.0;
  for (double value : trace) variance += (value - mean) * (value - mean);
  if (variance <= 1e-30) return result;  // constant trace
  for (std::size_t lag = 0; lag <= max_lag && lag < n; ++lag) {
    double sum = 0.0;
    for (std::size_t t = 0; t + lag < n; ++t)
      sum += (trace[t] - mean) * (trace[t + lag] - mean);
    result[lag] = sum / variance;
  }
  return result;
}

std::size_t decorrelation_lag(const std::vector<double>& trace,
                              std::size_t max_lag, double threshold) {
  const std::vector<double> acf = autocorrelation(trace, max_lag);
  for (std::size_t lag = 1; lag <= max_lag && lag < acf.size(); ++lag)
    if (std::abs(acf[lag]) < threshold) return lag;
  return max_lag + 1;
}

}  // namespace nullgraph
