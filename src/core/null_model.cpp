#include "core/null_model.hpp"

#include <algorithm>
#include <numeric>

#include "analysis/components.hpp"
#include "prob/heuristics.hpp"
#include "skip/edge_skip.hpp"
#include "util/rng.hpp"

namespace nullgraph {

ProbabilityMatrix generate_probabilities(const DegreeDistribution& dist,
                                         ProbabilityMethod method,
                                         int refine_iterations) {
  ProbabilityMatrix matrix;
  switch (method) {
    case ProbabilityMethod::kGreedyAllocation:
      matrix = greedy_probabilities(dist);
      break;
    case ProbabilityMethod::kPaperStubMatching:
      matrix = stub_matching_probabilities(dist);
      break;
    case ProbabilityMethod::kChungLu:
      matrix = chung_lu_probabilities(dist);
      break;
  }
  if (refine_iterations > 0)
    refine_probabilities(matrix, dist, refine_iterations);
  return matrix;
}

GenerateResult generate_null_graph(const DegreeDistribution& dist,
                                   const GenerateConfig& config) {
  GenerateResult result;
  std::uint64_t seed_chain = config.seed;

  result.timing.start("probabilities");
  const ProbabilityMatrix P = generate_probabilities(
      dist, config.probability_method, config.refine_iterations);
  result.timing.stop();
  result.probability_diagnostics = diagnose(P, dist);

  result.timing.start("edge generation");
  EdgeSkipConfig skip_config;
  skip_config.seed = splitmix64_next(seed_chain);
  result.edges = edge_skip_generate(P, dist, skip_config);
  result.timing.stop();

  result.timing.start("swaps");
  SwapConfig swap_config;
  swap_config.iterations = config.swap_iterations;
  swap_config.seed = splitmix64_next(seed_chain);
  swap_config.track_swapped_edges = config.track_swapped_edges;
  result.swap_stats = swap_edges(result.edges, swap_config);
  result.timing.stop();
  return result;
}

GenerateResult shuffle_graph(EdgeList edges, const GenerateConfig& config) {
  GenerateResult result;
  result.edges = std::move(edges);
  result.timing.start("swaps");
  SwapConfig swap_config;
  swap_config.iterations = config.swap_iterations;
  swap_config.seed = config.seed;
  swap_config.track_swapped_edges = config.track_swapped_edges;
  result.swap_stats = swap_edges(result.edges, swap_config);
  result.timing.stop();
  return result;
}

ConnectedGenerateResult generate_connected_null_graph(
    const DegreeDistribution& dist, const GenerateConfig& config,
    std::size_t max_attempts) {
  ConnectedGenerateResult outcome;
  std::uint64_t seed_chain = config.seed ^ 0x2545f4914f6cdd1dULL;
  for (outcome.attempts_used = 1; outcome.attempts_used <= max_attempts;
       ++outcome.attempts_used) {
    GenerateConfig attempt = config;
    attempt.seed = splitmix64_next(seed_chain);
    outcome.result = generate_null_graph(dist, attempt);
    if (is_connected(outcome.result.edges, dist.num_vertices())) {
      outcome.connected = true;
      return outcome;
    }
  }
  outcome.attempts_used = max_attempts;
  return outcome;
}

GenerateResult generate_for_sequence(const std::vector<std::uint64_t>& degrees,
                                     const GenerateConfig& config) {
  const DegreeDistribution dist =
      DegreeDistribution::from_degree_sequence(degrees);
  GenerateResult result = generate_null_graph(dist, config);
  // The generator numbers vertices by ascending degree class; map id k back
  // to the k-th caller vertex in ascending-degree order (stable, so the
  // mapping is deterministic).
  std::vector<VertexId> by_degree(degrees.size());
  std::iota(by_degree.begin(), by_degree.end(), 0u);
  std::stable_sort(by_degree.begin(), by_degree.end(),
                   [&](VertexId a, VertexId b) {
                     return degrees[a] < degrees[b];
                   });
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < result.edges.size(); ++i) {
    Edge& e = result.edges[i];
    e = {by_degree[e.u], by_degree[e.v]};
  }
  return result;
}

}  // namespace nullgraph
