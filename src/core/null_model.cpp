#include "core/null_model.hpp"

#include <algorithm>
#include <bit>
#include <numeric>
#include <utility>

#include "analysis/components.hpp"
#include "core/out_of_core.hpp"
#include "exec/exec.hpp"
#include "io/checkpoint.hpp"
#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "prob/heuristics.hpp"
#include "robustness/fault_injection.hpp"
#include "robustness/repair.hpp"
#include "skip/edge_skip.hpp"
#include "util/rng.hpp"

namespace nullgraph {

namespace {

/// Appends a check; under kStrict a violated invariant aborts immediately
/// with its typed status.
void record(PipelineReport& report, RecoveryPolicy policy, std::string phase,
            Status status, bool repaired = false) {
  report.checks.push_back({std::move(phase), std::move(status), repaired});
  const PhaseCheck& check = report.checks.back();
  if (policy == RecoveryPolicy::kStrict && !check.holds())
    throw StatusError(check.status);
}

/// Marks every earlier failed check of `code` repaired (called once the
/// repair pass has restored the corresponding invariant).
void mark_repaired(PipelineReport& report, StatusCode code) {
  for (PhaseCheck& check : report.checks)
    if (check.status.code() == code) check.repaired = true;
}

/// Records a Curtailment for `phase` when the governor has stopped the run.
/// Curtailments are informational (the best-so-far graph is still
/// returned), so they never throw, even under kStrict.
void record_curtailment(PipelineReport& report, const RunGovernor* gov,
                        const obs::ObsContext& obs, const char* phase,
                        std::size_t completed, std::size_t requested,
                        double acceptance = 0.0) {
  if (gov == nullptr || !gov->stopped()) return;
  report.curtailments.push_back(
      {phase, gov->stop_reason(), completed, requested, acceptance});
  obs::emit_event(obs, obs::EventKind::kCurtailment, phase, completed,
                  status_code_name(gov->stop_reason()));
}

/// Estimated swap-phase buffer footprint (edge list + hash table +
/// permutation targets), checked against RunBudget::max_memory_bytes.
std::size_t swap_footprint_bytes(std::size_t m) {
  const std::size_t expected_keys = m + 2 * (m / 2);
  const std::size_t table_capacity =
      std::bit_ceil(expected_keys < 8 ? std::size_t{16} : 2 * expected_keys);
  return m * sizeof(Edge) + table_capacity * sizeof(std::uint64_t) +
         m * sizeof(std::uint64_t);
}

/// Installs the governance fields on a SwapConfig: governor, slow-phase
/// fault, and (when configured) the checkpoint sink that snapshots the
/// chain every `checkpoint_every` completed iterations and at the end.
/// Snapshot writes get one retry after a backoff (ENOSPC/EIO are often
/// transient); a write that fails twice is surfaced as a typed kIoError
/// check in `report` — never thrown, because a failed snapshot must not
/// abort the run it exists to protect.
void wire_swap_governance(SwapConfig& swap_config, const RunGovernor* gov,
                          const GovernanceConfig& governance,
                          const GuardrailConfig& guard,
                          PipelineReport* report) {
  swap_config.governor = gov;
  swap_config.slow_iteration_ms = guard.faults.slow_phase_ms;
  if (gov == nullptr || governance.checkpoint_every == 0 ||
      governance.checkpoint_path.empty())
    return;
  const std::size_t every = governance.checkpoint_every;
  const std::string path = governance.checkpoint_path;
  const std::uint64_t swap_seed = swap_config.seed;
  const obs::ObsContext obs = swap_config.obs;
  // shared_ptr: SwapConfig (and the closure) is copied by value on its way
  // into the swap phase, but the injection countdown must be one counter
  // across all copies or the drill would fail more writes than armed.
  auto inject_left =
      std::make_shared<std::size_t>(guard.faults.fail_checkpoint_writes);
  swap_config.on_iteration = [every, path, swap_seed, obs, report,
                              inject_left](const SwapProgress& p) {
    if (p.completed_iterations % every != 0 &&
        p.completed_iterations != p.total_iterations)
      return;
    Checkpoint ckpt;
    ckpt.swap_seed = swap_seed;
    ckpt.total_iterations = p.total_iterations;
    ckpt.completed_iterations = p.completed_iterations;
    ckpt.chain_state = p.chain_state;
    ckpt.degree_fingerprint = degree_fingerprint(*p.edges);
    ckpt.edges = *p.edges;
    CheckpointRetryPolicy policy;
    policy.inject_io_failures = inject_left.get();
    const Status status = write_checkpoint_with_retry(path, ckpt, policy);
    if (!status.ok()) {
      if (report != nullptr)
        report->checks.push_back({"checkpoint", status, false});
      if (obs.metrics != nullptr)
        obs.metrics->counter("checkpoint.write_failures")->add(1);
    } else if (obs.metrics != nullptr) {
      obs.metrics->counter("checkpoint.writes")->add(1);
    }
    obs::emit_event(obs, obs::EventKind::kCheckpoint, "swaps",
                    static_cast<std::uint64_t>(p.completed_iterations),
                    status.ok() ? "written" : "write failed");
  };
}

SwapStats run_swaps(EdgeList& edges, const SwapConfig& config,
                    bool force_stall) {
  if (force_stall) {
    // Injected stall: the phase "runs" its iterations but commits nothing,
    // reproducing the rare-event MCMC stagnation deterministically. The
    // input census is real (nothing moves between iterations), so the
    // piggybacked simplicity counts stay truthful.
    SwapStats stats;
    stats.iterations.resize(config.iterations);
    const SimplicityCensus c = census(edges);
    for (SwapIterationStats& it : stats.iterations) {
      it.input_self_loops = c.self_loops;
      it.input_multi_edges = c.multi_edges;
    }
    return stats;
  }
  return swap_edges(edges, config);
}

bool chain_stalled(const SwapStats& stats) {
  return !stats.iterations.empty() && stats.iterations.back().swapped == 0;
}

/// Census of the edge list as it entered the swap phase, free when at
/// least one iteration ran (the table-refill pass counted it).
SimplicityCensus input_census(const EdgeList& edges, const SwapStats& stats) {
  if (!stats.iterations.empty()) {
    const SwapIterationStats& first = stats.iterations.front();
    return {first.input_self_loops, first.input_multi_edges};
  }
  return census(edges);
}

/// Census of the swap phase's output. Free when the final iteration
/// started clean — committed swaps never create loops or duplicates, so a
/// clean start proves a clean finish; only a dirty chain pays for a real
/// census.
SimplicityCensus output_census(const EdgeList& edges, const SwapStats& stats) {
  if (!stats.iterations.empty()) {
    const SwapIterationStats& last = stats.iterations.back();
    if (last.input_self_loops == 0 && last.input_multi_edges == 0) return {};
  }
  return census(edges);
}

/// Swap phase under guardrails, shared by generate and shuffle.
/// `expected_fp` is the pre-fault degree fingerprint the phase must
/// preserve; `pristine` (kRepair only) is the pre-fault edge list whose
/// exact degrees become the repair target when a repair triggers. When
/// `input_phase` is set, the phase's input simplicity is recorded under
/// that name (generate's "edge generation" check — evaluated from the
/// swap table's free counts, so under kStrict the abort surfaces after
/// the swap pass rather than before it).
void swap_phase_with_recovery(EdgeList& edges, GenerateResult& result,
                              const GuardrailConfig& guard,
                              SwapConfig swap_config,
                              std::uint64_t expected_fp,
                              const EdgeList* pristine,
                              std::uint64_t retry_chain,
                              const char* input_phase) {
  const obs::ObsContext& obs = swap_config.obs;
  result.swap_stats =
      run_swaps(edges, swap_config, guard.faults.force_swap_stall);

  if (input_phase) {
    // kRepair defers to the post-swap repair pass; record the violation
    // now, mark_repaired flips it once the pass succeeds.
    record(result.report,
           guard.policy == RecoveryPolicy::kRepair ? RecoveryPolicy::kReport
                                                   : guard.policy,
           input_phase,
           check_simple(input_census(edges, result.swap_stats)));
  }

  Status simple = check_simple(output_census(edges, result.swap_stats));
  Status degrees = check_degree_fingerprint(expected_fp, edges);

  if (guard.policy == RecoveryPolicy::kRepair) {
    // Retry-with-reseed first: a fresh permutation stream can unstick a
    // stalled chain. Pointless for degree damage (swaps preserve degrees),
    // so only simplicity violations earn retries.
    while (!simple.ok() && degrees.ok() &&
           result.report.retries_used < guard.max_retries) {
      ++result.report.retries_used;
      if (obs.metrics != nullptr)
        obs.metrics->counter("recovery.swap_retries")->add(1);
      if (obs.trace != nullptr) obs.trace->instant("swap retry (reseed)");
      swap_config.seed = splitmix64_next(retry_chain);
      result.swap_stats =
          run_swaps(edges, swap_config, guard.faults.force_swap_stall);
      simple = check_simple(output_census(edges, result.swap_stats));
    }
    if (!simple.ok() || !degrees.ok()) {
      obs::TraceSpan repair_span(obs.trace, "repair pass");
      if (obs.metrics != nullptr)
        obs.metrics->counter("recovery.repairs")->add(1);
      const std::vector<std::uint64_t> target = degrees_of(*pristine);
      result.report.repair =
          repair_to_degrees(edges, target, splitmix64_next(retry_chain));
      if (check_simple(edges).ok()) {
        mark_repaired(result.report, StatusCode::kNonSimpleOutput);
        mark_repaired(result.report, StatusCode::kSwapStagnation);
      }
      if (check_degrees_preserved(target, edges).ok())
        mark_repaired(result.report, StatusCode::kDegreeMismatch);
      if (!result.report.repair.complete())
        record(result.report, guard.policy, "repair",
               Status(StatusCode::kRepairIncomplete,
                      std::to_string(result.report.repair.residual_deficit) +
                          " deficit stubs unplaced"));
    }
  }

  // Classify a persistent simplicity failure: no progress in the final
  // iteration means the chain stagnated rather than merely ran short.
  if (!simple.ok() && chain_stalled(result.swap_stats))
    simple = Status(StatusCode::kSwapStagnation,
                    "swap chain made no progress (" + simple.message() + ")");
  const bool simple_fixed = !simple.ok() && check_simple(edges).ok();
  record(result.report, guard.policy, "swaps", std::move(simple),
         simple_fixed);
  const bool degrees_fixed =
      !degrees.ok() && check_degree_fingerprint(expected_fp, edges).ok();
  record(result.report, guard.policy, "degrees", std::move(degrees),
         degrees_fixed);
}

/// Resolves the effective governor for a run: a borrowed external governor
/// wins (multi-layer drivers share one deadline across calls), otherwise
/// the run-local instance when governance is enabled, otherwise none.
const RunGovernor* resolve_governor(const GovernanceConfig& governance,
                                    const RunGovernor& local) {
  if (governance.external != nullptr) return governance.external;
  return governance.enabled ? &local : nullptr;
}

template <typename Fn>
auto run_checked(Fn&& fn) -> Result<decltype(fn())> {
  try {
    auto result = fn();
    Status err = result.report.first_error();
    if (!err.ok()) return err;
    return result;  // implicit move into Result<T>
  } catch (const StatusError& error) {
    return error.status();
  } catch (const std::exception& error) {
    return Status(StatusCode::kInternal, error.what());
  }
}

}  // namespace

ProbabilityMatrix generate_probabilities(const DegreeDistribution& dist,
                                         ProbabilityMethod method,
                                         int refine_iterations,
                                         const RunGovernor* governor,
                                         exec::PhaseTimingSink* timings) {
  ProbabilityMatrix matrix;
  switch (method) {
    case ProbabilityMethod::kGreedyAllocation:
      matrix = greedy_probabilities(dist, 32, governor);
      break;
    case ProbabilityMethod::kPaperStubMatching:
      matrix = stub_matching_probabilities(dist, governor);
      break;
    case ProbabilityMethod::kChungLu:
      matrix = chung_lu_probabilities(dist, governor, timings);
      break;
  }
  if (refine_iterations > 0)
    refine_probabilities(matrix, dist, refine_iterations, governor, timings);
  return matrix;
}

GenerateResult generate_null_graph(const DegreeDistribution& dist,
                                   const GenerateConfig& config) {
  GenerateResult result;
  const GuardrailConfig& guard = config.guardrails;
  const bool checking = guard.policy != RecoveryPolicy::kOff;
  std::uint64_t seed_chain = config.seed;

  // The governor is constructed here (starting the deadline clock) and
  // threaded through every phase; a null pointer keeps the phases on their
  // historical ungoverned paths. The timing sink collects exec-layer
  // chunk/wall records from every phase into report.phase_timings.
  const RunGovernor governor(config.governance.budget, config.governance.cancel,
                             config.governance.watchdog);
  const RunGovernor* gov = resolve_governor(config.governance, governor);
  exec::PhaseTimingSink sink;

  // A non-graphical input has no repair (we never rewrite the caller's
  // distribution): strict aborts, other policies record and proceed with
  // the usual best-effort realization.
  if (checking)
    record(result.report, guard.policy, "input", check_graphical(dist));

  result.timing.start("probabilities");
  ProbabilityMatrix P;
  {
    obs::TraceSpan span(config.obs.trace, "probabilities");
    obs::PhaseEventScope events(config.obs, "probabilities");
    P = generate_probabilities(dist, config.probability_method,
                               config.refine_iterations, gov, &sink);
  }
  result.timing.stop();
  record_curtailment(result.report, gov, config.obs, "probabilities", 0,
                     dist.num_classes());
  if (guard.faults.corrupt_prob_entries > 0)
    result.report.prob_entries_corrupted =
        inject_probability_faults(P, guard.faults, config.obs);
  if (checking) {
    Status status = check_probability_matrix(P, dist);
    bool repaired = false;
    if (!status.ok() && guard.policy == RecoveryPolicy::kRepair) {
      result.report.probability_entries_sanitized = sanitize_probabilities(P);
      repaired = check_probability_matrix(P, dist).ok();
    }
    record(result.report, guard.policy, "probabilities", std::move(status),
           repaired);
  }
  result.probability_diagnostics = diagnose(P, dist);

  // Out-of-core branch: when spill mode is armed and the projected
  // generation footprint would cross the memory ceiling (or --force-spill
  // is set), the ceiling DEGRADES the run to disk instead of tripping
  // kMemoryBudget. The spill driver consumes the same seed-chain draw the
  // in-core edge phase would, so shard concatenation is bit-identical to
  // the list this function would have produced.
  if (config.spill.enabled) {
    const std::size_t projected =
        generation_footprint_bytes(P.expected_edges(dist));
    if (config.spill.force ||
        (gov != nullptr && gov->would_exceed_memory(projected)))
      return generate_null_graph_spilled(dist, P, config, gov,
                                         std::move(result), &sink,
                                         splitmix64_next(seed_chain));
  }

  result.timing.start("edge generation");
  {
    obs::TraceSpan span(config.obs.trace, "edge generation");
    obs::PhaseEventScope events(config.obs, "edge generation");
    EdgeSkipConfig skip_config;
    skip_config.seed = splitmix64_next(seed_chain);
    skip_config.governor = gov;
    skip_config.timings = &sink;
    result.edges = edge_skip_generate(P, dist, skip_config);
  }
  result.timing.stop();
  record_curtailment(result.report, gov, config.obs, "edge generation",
                     result.edges.size(), 0);

  // Snapshot of the clean generation, taken before faults can damage it:
  // a streaming degree fingerprint for the preservation check, plus (under
  // kRepair only) a copy of the edge list — cheaper than counting degrees
  // up front, and the exact repair target is derived from it on demand.
  std::uint64_t expected_fp = 0;
  EdgeList pristine;
  if (checking) {
    expected_fp = degree_fingerprint(result.edges);
    if (guard.policy == RecoveryPolicy::kRepair) pristine = result.edges;
  }
  if (guard.faults.edge_faults())
    result.report.faults_injected =
        inject_edge_faults(result.edges, guard.faults, config.obs);

  result.timing.start("swaps");
  {
    obs::TraceSpan span(config.obs.trace, "swaps");
    obs::PhaseEventScope events(config.obs, "swaps");
    SwapConfig swap_config;
    swap_config.iterations = config.swap_iterations;
    swap_config.seed = splitmix64_next(seed_chain);
    swap_config.track_swapped_edges = config.track_swapped_edges;
    swap_config.timings = &sink;
    swap_config.obs = config.obs;
    wire_swap_governance(swap_config, gov, config.governance, guard,
                         &result.report);
    // The memory ceiling is checked against the phase's estimated footprint
    // BEFORE swap_edges allocates; a trip makes the phase return immediately
    // with the (simple by construction) edge-skip output as best-so-far.
    if (gov != nullptr)
      (void)gov->memory_exceeded(swap_footprint_bytes(result.edges.size()));
    if (checking) {
      swap_phase_with_recovery(
          result.edges, result, guard, swap_config, expected_fp,
          guard.policy == RecoveryPolicy::kRepair ? &pristine : nullptr,
          splitmix64_next(seed_chain), "edge generation");
    } else {
      result.swap_stats = swap_edges(result.edges, swap_config);
    }
  }
  result.timing.stop();
  record_curtailment(result.report, gov, config.obs, "swaps",
                     result.swap_stats.iterations.size(),
                     config.swap_iterations, result.swap_stats.acceptance());
  result.report.phase_timings = sink.snapshot();
  return result;
}

GenerateResult shuffle_graph(EdgeList edges, const GenerateConfig& config) {
  GenerateResult result;
  result.edges = std::move(edges);
  const GuardrailConfig& guard = config.guardrails;
  const bool checking = guard.policy != RecoveryPolicy::kOff;
  std::uint64_t seed_chain = config.seed;

  const RunGovernor governor(config.governance.budget, config.governance.cancel,
                             config.governance.watchdog);
  const RunGovernor* gov = resolve_governor(config.governance, governor);
  exec::PhaseTimingSink sink;

  // The input's own degree sequence is the contract; snapshot (fingerprint
  // plus, under kRepair, the pristine list itself) before any injected
  // corruption. No input simplicity check: dirty shuffle inputs are
  // legitimate — the swap chain is the documented multigraph cleaner.
  std::uint64_t expected_fp = 0;
  EdgeList pristine;
  if (checking) {
    expected_fp = degree_fingerprint(result.edges);
    if (guard.policy == RecoveryPolicy::kRepair) pristine = result.edges;
  }
  if (guard.faults.edge_faults())
    result.report.faults_injected =
        inject_edge_faults(result.edges, guard.faults, config.obs);

  result.timing.start("swaps");
  {
    obs::TraceSpan span(config.obs.trace, "swaps");
    obs::PhaseEventScope events(config.obs, "swaps");
    SwapConfig swap_config;
    swap_config.iterations = config.swap_iterations;
    swap_config.seed = splitmix64_next(seed_chain);
    swap_config.track_swapped_edges = config.track_swapped_edges;
    swap_config.timings = &sink;
    swap_config.obs = config.obs;
    wire_swap_governance(swap_config, gov, config.governance, guard,
                         &result.report);
    if (gov != nullptr)
      (void)gov->memory_exceeded(swap_footprint_bytes(result.edges.size()));
    if (checking) {
      swap_phase_with_recovery(
          result.edges, result, guard, swap_config, expected_fp,
          guard.policy == RecoveryPolicy::kRepair ? &pristine : nullptr,
          splitmix64_next(seed_chain), nullptr);
    } else {
      result.swap_stats = swap_edges(result.edges, swap_config);
    }
  }
  result.timing.stop();
  record_curtailment(result.report, gov, config.obs, "swaps",
                     result.swap_stats.iterations.size(),
                     config.swap_iterations, result.swap_stats.acceptance());
  result.report.phase_timings = sink.snapshot();
  return result;
}

GenerateResult resume_null_graph(const Checkpoint& checkpoint,
                                 const GenerateConfig& config) {
  GenerateResult result;
  result.edges = checkpoint.edges;
  const GuardrailConfig& guard = config.guardrails;
  const bool checking = guard.policy != RecoveryPolicy::kOff;

  const RunGovernor governor(config.governance.budget, config.governance.cancel,
                             config.governance.watchdog);
  const RunGovernor* gov = resolve_governor(config.governance, governor);
  exec::PhaseTimingSink sink;

  // The snapshot's fingerprint was computed from its own edge list when it
  // was written, so a mismatch here means memory corruption or a tampered
  // file that still passes CRC — reject rather than resume a broken chain.
  if (checking)
    record(result.report, guard.policy, "checkpoint",
           degree_fingerprint(result.edges) == checkpoint.degree_fingerprint
               ? Status::Ok()
               : Status(StatusCode::kCheckpointInvalid,
                        "degree fingerprint does not match snapshot"));

  const std::uint64_t expected_fp = degree_fingerprint(result.edges);

  result.timing.start("swaps");
  SwapConfig swap_config;
  swap_config.iterations =
      static_cast<std::size_t>(checkpoint.total_iterations);
  swap_config.seed = checkpoint.swap_seed;
  swap_config.start_iteration =
      static_cast<std::size_t>(checkpoint.completed_iterations);
  swap_config.resume_chain_state = checkpoint.chain_state;
  swap_config.track_swapped_edges = config.track_swapped_edges;
  swap_config.timings = &sink;
  swap_config.obs = config.obs;
  wire_swap_governance(swap_config, gov, config.governance, guard,
                         &result.report);
  if (gov != nullptr)
    (void)gov->memory_exceeded(swap_footprint_bytes(result.edges.size()));
  {
    obs::TraceSpan span(config.obs.trace, "swaps");
    obs::PhaseEventScope events(config.obs, "swaps");
    result.swap_stats = swap_edges(result.edges, swap_config);
  }
  result.timing.stop();
  record_curtailment(result.report, gov, config.obs, "swaps",
                     result.swap_stats.iterations.size(),
                     swap_config.iterations - swap_config.start_iteration,
                     result.swap_stats.acceptance());

  if (checking) {
    record(result.report, guard.policy, "swaps",
           check_simple(output_census(result.edges, result.swap_stats)));
    record(result.report, guard.policy, "degrees",
           check_degree_fingerprint(expected_fp, result.edges));
  }
  result.report.phase_timings = sink.snapshot();
  return result;
}

Result<GenerateResult> generate_null_graph_checked(
    const DegreeDistribution& dist, const GenerateConfig& config) {
  GenerateConfig checked = config;
  if (checked.guardrails.policy == RecoveryPolicy::kOff)
    checked.guardrails.policy = RecoveryPolicy::kReport;
  return run_checked([&] { return generate_null_graph(dist, checked); });
}

Result<GenerateResult> shuffle_graph_checked(EdgeList edges,
                                             const GenerateConfig& config) {
  GenerateConfig checked = config;
  if (checked.guardrails.policy == RecoveryPolicy::kOff)
    checked.guardrails.policy = RecoveryPolicy::kReport;
  return run_checked(
      [&] { return shuffle_graph(std::move(edges), checked); });
}

ConnectedGenerateResult generate_connected_null_graph(
    const DegreeDistribution& dist, const GenerateConfig& config,
    std::size_t max_attempts) {
  ConnectedGenerateResult outcome;
  std::uint64_t seed_chain = config.seed ^ 0x2545f4914f6cdd1dULL;
  for (outcome.attempts_used = 1; outcome.attempts_used <= max_attempts;
       ++outcome.attempts_used) {
    GenerateConfig attempt = config;
    attempt.seed = splitmix64_next(seed_chain);
    outcome.result = generate_null_graph(dist, attempt);
    if (is_connected(outcome.result.edges, dist.num_vertices())) {
      outcome.connected = true;
      return outcome;
    }
  }
  outcome.attempts_used = max_attempts;
  if (config.guardrails.policy != RecoveryPolicy::kOff)
    record(outcome.result.report, config.guardrails.policy, "connectivity",
           Status(StatusCode::kConnectivityExhausted,
                  "no connected sample in " + std::to_string(max_attempts) +
                      " attempts"));
  return outcome;
}

GenerateResult generate_for_sequence(const std::vector<std::uint64_t>& degrees,
                                     const GenerateConfig& config) {
  const DegreeDistribution dist =
      DegreeDistribution::from_degree_sequence(degrees);
  GenerateResult result = generate_null_graph(dist, config);
  // The generator numbers vertices by ascending degree class; map id k back
  // to the k-th caller vertex in ascending-degree order (stable, so the
  // mapping is deterministic).
  std::vector<VertexId> by_degree(degrees.size());
  std::iota(by_degree.begin(), by_degree.end(), 0u);
  std::stable_sort(by_degree.begin(), by_degree.end(),
                   [&](VertexId a, VertexId b) {
                     return degrees[a] < degrees[b];
                   });
  // Ungoverned: a skipped relabel chunk would leave a mixed id space.
  const exec::ParallelContext relabel_ctx;
  exec::for_chunks(relabel_ctx, result.edges.size(), exec::kDefaultGrain,
                   [&](const exec::Chunk& chunk) {
                     for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
                       Edge& e = result.edges[i];
                       e = {by_degree[e.u], by_degree[e.v]};
                     }
                   });
  return result;
}

}  // namespace nullgraph
