#pragma once
// Mixing-time diagnostics — the "more formal validation of uniform
// randomness per mixing time" the paper's Section IX calls for. Three
// measurable proxies:
//
//  * coverage_iterations: iterations until every edge has participated in
//    a committed swap (the paper's empirical mixing criterion).
//  * StatisticTrace / autocorrelation: run the chain, record a scalar
//    graph statistic per iteration, and estimate the lag at which its
//    autocorrelation decays — an MCMC practitioner's integrated
//    autocorrelation-style heuristic.
//  * acceptance_profile: per-iteration swap acceptance rates; the paper
//    conjectures required iterations track the chance of an unsuccessful
//    swap (density/skew), which this exposes directly.

#include <cstdint>
#include <functional>
#include <vector>

#include "core/double_edge_swap.hpp"
#include "ds/edge_list.hpp"

namespace nullgraph {

/// Runs swap iterations until every edge has swapped at least once (or
/// `max_iterations`); returns the iteration count (max_iterations + 1 when
/// the budget ran out). A governed diagnostic that is stopped mid-search
/// returns its best bound so far (max_iterations + 1 when none was found).
std::size_t coverage_iterations(EdgeList edges, std::uint64_t seed = 1,
                                std::size_t max_iterations = 256,
                                const RunGovernor* governor = nullptr);

/// Per-iteration acceptance rates for `iterations` swaps of a copy of
/// `edges`.
std::vector<double> acceptance_profile(EdgeList edges,
                                       std::size_t iterations,
                                       std::uint64_t seed = 1,
                                       const RunGovernor* governor = nullptr);

/// Records statistic(edges) after every swap iteration (index 0 = before
/// any swaps). Governed runs may return a shorter trace.
std::vector<double> statistic_trace(
    EdgeList edges, std::size_t iterations,
    const std::function<double(const EdgeList&)>& statistic,
    std::uint64_t seed = 1, const RunGovernor* governor = nullptr);

/// Lag-k autocorrelations (k = 0..max_lag) of a scalar trace; values[0] is
/// always 1 for non-constant traces, 0 for constant ones.
std::vector<double> autocorrelation(const std::vector<double>& trace,
                                    std::size_t max_lag);

/// Smallest lag at which |autocorrelation| drops below `threshold`
/// (max_lag + 1 when it never does): a decorrelation-time estimate for the
/// chain, in swap iterations.
std::size_t decorrelation_lag(const std::vector<double>& trace,
                              std::size_t max_lag, double threshold = 0.1);

}  // namespace nullgraph
