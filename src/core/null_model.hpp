#pragma once
// End-to-end null-model generation — Algorithm IV.1 and the public face of
// the library.
//
//   problem 1: shuffle_graph()        existing edge list -> uniform sample
//   problem 2: generate_null_graph()  degree distribution -> uniform sample
//
// generate_null_graph runs the paper's three phases: probability heuristic
// (Section IV-A), parallel edge-skipping (Algorithm IV.2), parallel
// double-edge swaps (Algorithm III.1), and reports per-phase wall times —
// the breakdown behind Figure 6.
//
// Every run is wrapped in pipeline guardrails (robustness/): per-phase
// invariant checks accumulate into GenerateResult::report, and
// GenerateConfig::guardrails selects what a violation does — record only
// (default), abort with a typed StatusError (kStrict), or recover via
// bounded retry-with-reseed plus a repair pass (kRepair). Seeded fault
// injection (GuardrailConfig::faults) exists so those paths are testable;
// it is inert unless armed.

#include <cstdint>
#include <string>

#include "core/double_edge_swap.hpp"
#include "ds/degree_distribution.hpp"
#include "ds/edge_list.hpp"
#include "obs/obs_context.hpp"
#include "prob/probability_matrix.hpp"
#include "robustness/governance.hpp"
#include "robustness/invariants.hpp"
#include "robustness/status.hpp"
#include "util/timer.hpp"

namespace nullgraph {

/// Run-governance wiring for one generation (see robustness/governance.hpp).
/// Disabled by default at the library level so embedded callers keep exact
/// historical behavior; the CLI enables it for every run, which is where
/// deadlines, Ctrl-C cancellation, the stall watchdog, and checkpoints are
/// service-facing defaults.
struct GovernanceConfig {
  /// Master switch: when false the other fields are ignored and no governor
  /// is threaded through the phases.
  bool enabled = false;
  RunBudget budget;
  CancelToken cancel;
  WatchdogConfig watchdog;
  /// Borrowed external governor. When set it overrides `enabled`/`budget`/
  /// `cancel`/`watchdog` and is threaded through every phase instead of a
  /// run-local governor — the hook multi-layer drivers (LFR) use to spread
  /// one deadline across many generate calls. Caller keeps ownership.
  const RunGovernor* external = nullptr;
  /// Write a checkpoint after every N completed swap iterations (0 = off;
  /// requires checkpoint_path). See io/checkpoint.hpp for the format.
  std::size_t checkpoint_every = 0;
  std::string checkpoint_path;
};

/// Out-of-core spill mode (DESIGN.md §10). When enabled, the generation
/// phase may re-route its output to CRC-framed shard files under `dir`
/// instead of RAM: always when `force` is set, otherwise exactly when the
/// projected in-core footprint would cross the governor's memory ceiling
/// (RunGovernor::would_exceed_memory — the ceiling DEGRADES the run to
/// disk instead of tripping kMemoryBudget). A spilled result returns an
/// empty in-memory edge list; the graph lives in the shard directory and
/// streams out via io/shard_merge.hpp. The swap phase is skipped (the
/// graph never materializes) and recorded as a DegradationEvent.
struct SpillConfig {
  /// Master switch (CLI --spill-dir). Off = exact historical behavior.
  bool enabled = false;
  /// Shard directory: manifest + shard files (created if absent).
  std::string dir;
  /// Explicit shard count; 0 auto-sizes so one shard's expected edges stay
  /// within a quarter of the memory ceiling (or a 256 MiB default when
  /// no ceiling is set).
  std::uint64_t shard_count = 0;
  /// Spill even when the projected footprint fits (--force-spill): drills,
  /// bit-identity tests, and pre-sharding for downstream consumers.
  bool force = false;
};

/// What the spill path did, attached to GenerateResult. `spilled` false
/// means the run stayed in-core and the rest of the fields are zero.
struct SpillSummary {
  bool spilled = false;
  std::string dir;
  std::uint64_t shard_count = 0;
  std::uint64_t edges_on_disk = 0;
  std::uint64_t shards_written = 0;
  /// Resume only: shards whose CRC proved them complete, trusted as-is.
  std::uint64_t shards_reused = 0;
  /// Largest single-shard edge count — the resident high-water mark.
  std::uint64_t max_shard_edges = 0;
};

enum class ProbabilityMethod {
  kGreedyAllocation,   // default: exact stub accounting (DESIGN.md §6)
  kPaperStubMatching,  // Section IV-A as published
  kChungLu,            // capped Chung-Lu (the O(n^2)-edgeskip baseline)
};

struct GenerateConfig {
  std::uint64_t seed = 1;
  std::size_t swap_iterations = 10;
  ProbabilityMethod probability_method = ProbabilityMethod::kGreedyAllocation;
  /// Extra fixed-point refinement sweeps on the probability matrix
  /// (0 = off; the paper's future-work correction).
  int refine_iterations = 0;
  bool track_swapped_edges = false;
  /// Invariant checks, recovery policy, and (test-only) fault injection.
  GuardrailConfig guardrails;
  /// Deadlines, cancellation, stall watchdog, checkpoints (off by default).
  GovernanceConfig governance;
  /// Out-of-core spill mode (off by default; see SpillConfig).
  SpillConfig spill;
  /// Telemetry handles (metrics registry / trace sink, both optional and
  /// borrowed). Default null handles keep every instrumentation site at
  /// one branch — the --report-json / --trace-out CLI flags attach real
  /// sinks. See src/obs/ and DESIGN.md §7.
  obs::ObsContext obs;
};

struct GenerateResult {
  EdgeList edges;
  PhaseTimer timing;  // phases: "probabilities", "edge generation", "swaps"
  SwapStats swap_stats;
  ProbabilityDiagnostics probability_diagnostics;
  /// Per-phase invariant checks and what recovery did about violations
  /// (empty when guardrails.policy == RecoveryPolicy::kOff).
  PipelineReport report;
  /// Out-of-core outcome: when spill.spilled, `edges` is empty and the
  /// graph lives in spill.dir (stream it with io/shard_merge.hpp).
  SpillSummary spill;
};

/// Phase 1 on its own: probabilities for `dist` by the chosen method. The
/// optional governor curtails the heuristic at per-row granularity; the
/// optional sink collects exec-layer records under "probabilities".
ProbabilityMatrix generate_probabilities(
    const DegreeDistribution& dist, ProbabilityMethod method,
    int refine_iterations = 0, const RunGovernor* governor = nullptr,
    exec::PhaseTimingSink* timings = nullptr);

/// Problem 2 (Algorithm IV.1): uniformly random simple graph matching
/// `dist` in expectation. Vertex ids follow the DegreeDistribution
/// convention (ascending degree classes, contiguous ids).
/// Under RecoveryPolicy::kStrict the first invariant violation throws a
/// StatusError carrying the typed code (kNotGraphical,
/// kProbabilityOverflow, kNonSimpleOutput, kDegreeMismatch,
/// kSwapStagnation).
GenerateResult generate_null_graph(const DegreeDistribution& dist,
                                   const GenerateConfig& config = {});

/// Problem 1: uniformly randomize an existing edge list while preserving
/// its exact degree sequence and simplicity (pure swap phase). Dirty
/// (multigraph) input is legal — swaps progressively clean it — but if the
/// output is still non-simple the report records kSwapStagnation (chain
/// made no progress) or kNonSimpleOutput, and kRepair finishes the job
/// with the repair pass.
GenerateResult shuffle_graph(EdgeList edges, const GenerateConfig& config = {});

/// Exception-free variants: run with checks at least at kReport strength
/// and fold any violation (or thrown StatusError) into the returned
/// Result's Status instead of throwing.
Result<GenerateResult> generate_null_graph_checked(
    const DegreeDistribution& dist, const GenerateConfig& config = {});
Result<GenerateResult> shuffle_graph_checked(EdgeList edges,
                                             const GenerateConfig& config = {});

/// Connectivity-conditioned variant: resamples (new seeds derived from
/// config.seed) until the generated graph is connected over all
/// dist.num_vertices() vertices, at most `max_attempts` times. Returns the
/// last attempt regardless; `attempts_used` and `connected` report the
/// outcome. Exhausting the budget records kConnectivityExhausted in the
/// result's report (and throws it under kStrict). Note the sample is
/// uniform over the CONNECTED subspace only in the rejection-sampling
/// sense (standard practice; swaps do not preserve connectivity, so
/// conditioning happens at whole-graph granularity).
struct ConnectedGenerateResult {
  GenerateResult result;
  std::size_t attempts_used = 0;
  bool connected = false;
};
ConnectedGenerateResult generate_connected_null_graph(
    const DegreeDistribution& dist, const GenerateConfig& config = {},
    std::size_t max_attempts = 32);

/// Continuation of a checkpointed run (see io/checkpoint.hpp): resumes the
/// swap chain from the snapshot's edge list and RNG stream position and
/// runs the remaining iterations. With the same thread count as the
/// original run the final edge list is bit-identical to the uninterrupted
/// one (determinism is a single-thread contract for the parallel swap
/// phase, matching DESIGN.md). GenerateConfig::seed and swap_iterations are
/// ignored — the checkpoint carries both; guardrails and governance apply
/// as usual. A snapshot whose degree fingerprint no longer matches its
/// edge list records kCheckpointInvalid (strict: throws).
struct Checkpoint;  // io/checkpoint.hpp
GenerateResult resume_null_graph(const Checkpoint& checkpoint,
                                 const GenerateConfig& config = {});

/// generate_null_graph for an explicit per-vertex target degree sequence:
/// output edges are relabeled so vertex i aims at degrees[i]. Within a
/// degree class vertices are exchangeable, so any consistent relabeling
/// yields the same distribution over graphs; used by the LFR layers.
GenerateResult generate_for_sequence(
    const std::vector<std::uint64_t>& degrees,
    const GenerateConfig& config = {});

}  // namespace nullgraph
