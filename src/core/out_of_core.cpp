#include "core/out_of_core.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

#include "ds/shard_census.hpp"
#include "io/shard_merge.hpp"
#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "skip/sharded_skip.hpp"
#include "util/rng.hpp"

namespace nullgraph {

namespace {

/// Same contract as null_model.cpp's file-local record(): append a check,
/// abort under kStrict on a violated invariant.
void record(PipelineReport& report, RecoveryPolicy policy, std::string phase,
            Status status, bool repaired = false) {
  report.checks.push_back({std::move(phase), std::move(status), repaired});
  const PhaseCheck& check = report.checks.back();
  if (policy == RecoveryPolicy::kStrict && !check.holds())
    throw StatusError(check.status);
}

std::string mib_string(std::size_t bytes) {
  return std::to_string((bytes + (std::size_t{1} << 20) - 1) >> 20) + " MiB";
}

/// Borrowed spill-phase instruments, all null when no registry is attached.
struct SpillInstruments {
  obs::Counter* shards_written = nullptr;
  obs::Counter* shards_reused = nullptr;
  obs::Counter* edges_spilled = nullptr;
  obs::Counter* bytes_written = nullptr;
  obs::Counter* write_retries = nullptr;
  obs::Counter* write_failures = nullptr;
  obs::Gauge* shard_count = nullptr;
  obs::Gauge* max_shard_edges = nullptr;
};

SpillInstruments spill_instruments(const obs::ObsContext& obs) {
  SpillInstruments ins;
  if (obs.metrics == nullptr) return ins;
  ins.shards_written = obs.metrics->counter("spill.shards_written");
  ins.shards_reused = obs.metrics->counter("spill.shards_reused");
  ins.edges_spilled = obs.metrics->counter("spill.edges_spilled");
  ins.bytes_written = obs.metrics->counter("spill.bytes_written");
  ins.write_retries = obs.metrics->counter("spill.write_retries");
  ins.write_failures = obs.metrics->counter("spill.write_failures");
  ins.shard_count = obs.metrics->gauge("spill.shard_count");
  ins.max_shard_edges = obs.metrics->gauge("spill.max_shard_edges");
  return ins;
}

/// Shared shard-write policy: bounded exponential backoff, the injection
/// countdown armed from FaultPlan::fail_spill_writes, retries counted.
CheckpointRetryPolicy shard_write_policy(std::size_t* inject_left,
                                         const SpillInstruments& ins) {
  CheckpointRetryPolicy policy;
  policy.inject_io_failures = inject_left;
  policy.retries = ins.write_retries;
  return policy;
}

/// Rebuilds the generation inputs a spill directory's manifest describes:
/// the degree distribution, the probability matrix (same method/refine as
/// the original run), and the shard plan. Deterministic — the manifest's
/// seed/edges_per_task land in `skip_config`, so regenerated shards are
/// bit-identical to the originals. kShardCorrupt when the manifest's
/// fields cannot name a valid pipeline.
Status pipeline_from_manifest(const ShardManifest& manifest,
                              const RunGovernor* gov,
                              exec::PhaseTimingSink* sink,
                              DegreeDistribution& dist, ProbabilityMatrix& P,
                              SkipShardPlan& plan,
                              EdgeSkipConfig& skip_config) {
  if (manifest.probability_method >
      static_cast<std::uint64_t>(ProbabilityMethod::kChungLu))
    return Status(StatusCode::kShardCorrupt,
                  "manifest probability method " +
                      std::to_string(manifest.probability_method) +
                      " is not a known heuristic");
  std::vector<DegreeClass> classes;
  classes.reserve(manifest.classes.size());
  for (const auto& [degree, count] : manifest.classes)
    classes.push_back({degree, count});
  try {
    dist = DegreeDistribution(std::move(classes));
  } catch (const std::exception& error) {
    return Status(StatusCode::kShardCorrupt,
                  std::string("manifest degree classes invalid: ") +
                      error.what());
  }
  if (dist.empty() || manifest.shard_count == 0 ||
      manifest.edges_per_task == 0)
    return Status(StatusCode::kShardCorrupt,
                  "manifest names an empty run (no classes/shards)");
  P = generate_probabilities(
      dist, static_cast<ProbabilityMethod>(manifest.probability_method),
      static_cast<int>(manifest.refine_iterations), gov, sink);
  skip_config.seed = manifest.seed;
  skip_config.edges_per_task = manifest.edges_per_task;
  skip_config.governor = gov;
  skip_config.timings = sink;
  plan = plan_edge_skip(P, dist, skip_config);
  return Status::Ok();
}

const RunGovernor* resolve_governor(const GovernanceConfig& governance,
                                    const RunGovernor& local) {
  if (governance.external != nullptr) return governance.external;
  return governance.enabled ? &local : nullptr;
}

void record_curtailment(PipelineReport& report, const RunGovernor* gov,
                        const obs::ObsContext& obs, const char* phase,
                        std::size_t completed, std::size_t requested) {
  if (gov == nullptr || !gov->stopped()) return;
  report.curtailments.push_back(
      {phase, gov->stop_reason(), completed, requested, 0.0});
  obs::emit_event(obs, obs::EventKind::kCurtailment, phase, completed,
                  status_code_name(gov->stop_reason()));
}

/// The swap phase cannot run against a graph that never materializes in
/// memory; every spilled run records that as a degradation, not a failure.
void record_swaps_skipped(PipelineReport& report, std::size_t iterations) {
  if (iterations == 0) return;
  report.degradations.push_back(
      {"swaps", "skipped", StatusCode::kMemoryBudget,
       "out-of-core graph stays on disk; rerun in-core (or raise "
       "--max-memory-mb) to mix via swaps"});
}

}  // namespace

std::size_t generation_footprint_bytes(double expected_edges) {
  if (!(expected_edges > 0.0)) return 0;
  const double raw = expected_edges * static_cast<double>(sizeof(Edge));
  // Final list + exec concat transient + census table ≈ 4x raw edge bytes.
  return static_cast<std::size_t>(raw * 4.0);
}

std::uint64_t auto_shard_count(double expected_edges,
                               std::size_t max_memory_bytes,
                               std::uint64_t unit_count) {
  const std::size_t kDefaultTarget = std::size_t{256} << 20;
  const std::size_t ceiling =
      max_memory_bytes != 0 ? max_memory_bytes : kDefaultTarget;
  // A shard's resident cost is ~4x its raw edge bytes (list + census
  // table + transients), so a quarter-ceiling target keeps the whole
  // phase within the ceiling. Floor of 64 KiB: below that the frame
  // overhead dominates and shard counts explode.
  const std::size_t target =
      std::max<std::size_t>(ceiling / 4, std::size_t{64} << 10);
  const double raw =
      std::max(expected_edges, 0.0) * static_cast<double>(sizeof(Edge));
  const std::uint64_t shards =
      static_cast<std::uint64_t>(raw / static_cast<double>(target)) + 1;
  const std::uint64_t cap = std::max<std::uint64_t>(unit_count, 1);
  return std::clamp<std::uint64_t>(shards, 1, cap);
}

GenerateResult generate_null_graph_spilled(
    const DegreeDistribution& dist, const ProbabilityMatrix& P,
    const GenerateConfig& config, const RunGovernor* gov,
    GenerateResult result, exec::PhaseTimingSink* sink,
    std::uint64_t skip_seed) {
  const GuardrailConfig& guard = config.guardrails;
  const bool checking = guard.policy != RecoveryPolicy::kOff;
  const SpillInstruments ins = spill_instruments(config.obs);

  result.timing.start("edge generation");
  {
    obs::TraceSpan span(config.obs.trace, "edge generation (spill)");

    EdgeSkipConfig skip_config;
    skip_config.seed = skip_seed;
    skip_config.governor = gov;
    skip_config.timings = sink;
    const SkipShardPlan plan = plan_edge_skip(P, dist, skip_config);

    const std::size_t ceiling =
        gov != nullptr ? gov->budget().max_memory_bytes : 0;
    const std::uint64_t shard_count =
        config.spill.shard_count != 0
            ? std::max<std::uint64_t>(config.spill.shard_count, 1)
            : auto_shard_count(plan.expected_edges, ceiling,
                               plan.unit_count());
    const std::size_t projected =
        generation_footprint_bytes(plan.expected_edges);
    const bool over_ceiling =
        gov != nullptr && gov->would_exceed_memory(projected);

    // The degradation is recorded up front — visible in the report even
    // when a later shard write fails and the run surfaces kIoError.
    {
      DegradationEvent event;
      event.phase = "edge generation";
      event.action = "spill-to-disk";
      event.trigger =
          over_ceiling ? StatusCode::kMemoryBudget : StatusCode::kOk;
      event.detail = "projected " + mib_string(projected) +
                     (over_ceiling ? " exceeds ceiling " + mib_string(ceiling)
                                   : " (forced)") +
                     "; " + std::to_string(shard_count) + " shards -> " +
                     config.spill.dir;
      obs::emit_event(config.obs, obs::EventKind::kDegradation,
                      "edge generation", shard_count, event.detail);
      result.report.degradations.push_back(std::move(event));
    }
    if (config.obs.trace != nullptr)
      config.obs.trace->instant("spill-to-disk");

    result.spill.spilled = true;
    result.spill.dir = config.spill.dir;
    result.spill.shard_count = shard_count;
    if (ins.shard_count != nullptr)
      ins.shard_count->set(static_cast<std::int64_t>(shard_count));

    Status setup = ensure_spill_dir(config.spill.dir);
    if (setup.ok()) {
      ShardManifest manifest;
      manifest.seed = skip_seed;
      manifest.edges_per_task = skip_config.edges_per_task;
      manifest.shard_count = shard_count;
      manifest.probability_method =
          static_cast<std::uint64_t>(config.probability_method);
      manifest.refine_iterations =
          static_cast<std::uint64_t>(std::max(config.refine_iterations, 0));
      manifest.classes.reserve(dist.num_classes());
      for (const DegreeClass& c : dist.classes())
        manifest.classes.push_back({c.degree, c.count});
      setup = write_shard_manifest(config.spill.dir, manifest);
    }
    if (!setup.ok()) {
      if (ins.write_failures != nullptr) ins.write_failures->add(1);
      record(result.report, guard.policy, "spill", std::move(setup));
      result.timing.stop();
      result.report.phase_timings = sink->snapshot();
      return result;
    }

    // Serial across shards (each shard is parallel inside): at most ONE
    // shard's edges + census table are resident at a time, which is the
    // bounded-memory contract the shard count was sized for.
    ShardLocalCensus shard_census;
    std::size_t inject_left = guard.faults.fail_spill_writes;
    const CheckpointRetryPolicy policy = shard_write_policy(&inject_left, ins);
    Status write_status = Status::Ok();
    for (std::uint64_t s = 0; s < shard_count; ++s) {
      if (gov != nullptr && gov->stopped()) break;
      if (guard.faults.slow_phase_ms > 0)
        std::this_thread::sleep_for(
            std::chrono::milliseconds(guard.faults.slow_phase_ms));
      const EdgeList shard =
          edge_skip_generate_shard(P, dist, plan, skip_config, s, shard_count);
      // A governance stop mid-shard leaves a partial unit range; never
      // commit it — resume regenerates this shard whole.
      if (gov != nullptr && gov->stopped()) break;
      if (checking) shard_census.add_shard(shard);
      SpillWriteStats wstats;
      write_status =
          write_spill_shard(config.spill.dir, s, shard_count, shard, policy,
                            &wstats);
      if (!write_status.ok()) break;
      ++result.spill.shards_written;
      result.spill.edges_on_disk += shard.size();
      result.spill.max_shard_edges =
          std::max<std::uint64_t>(result.spill.max_shard_edges, shard.size());
      if (ins.shards_written != nullptr) ins.shards_written->add(1);
      if (ins.edges_spilled != nullptr) ins.edges_spilled->add(shard.size());
      if (ins.bytes_written != nullptr)
        ins.bytes_written->add(wstats.bytes_written);
      if (config.obs.events != nullptr) {
        // Per committed SHARD (not per edge): firmly outside the hot loop.
        const std::string detail =
            "shard " + std::to_string(s) + "/" + std::to_string(shard_count);
        obs::emit_event(config.obs, obs::EventKind::kShardCommit,
                        "edge generation", shard.size(), detail);
      }
    }
    if (ins.max_shard_edges != nullptr)
      ins.max_shard_edges->set(
          static_cast<std::int64_t>(result.spill.max_shard_edges));

    record_curtailment(result.report, gov, config.obs, "edge generation",
                       result.spill.shards_written, shard_count);
    if (!write_status.ok()) {
      // Unlike a checkpoint, the shard IS the data: a commit that failed
      // even after the backoff retries fails the phase, typed.
      if (ins.write_failures != nullptr) ins.write_failures->add(1);
      record(result.report, guard.policy, "spill", std::move(write_status));
    } else if (checking &&
               result.spill.shards_written == result.spill.shard_count) {
      // Complete spill: the folded shard-local censuses are a full
      // simplicity proof (shards partition the candidate-pair space).
      record(result.report,
             guard.policy == RecoveryPolicy::kRepair ? RecoveryPolicy::kReport
                                                     : guard.policy,
             "edge generation", check_simple(shard_census.total()));
      record_swaps_skipped(result.report, config.swap_iterations);
    }
  }
  result.timing.stop();
  result.report.phase_timings = sink->snapshot();
  return result;
}

Result<GenerateResult> resume_from_spill(const std::string& dir,
                                         const GenerateConfig& config) {
  Result<ShardManifest> manifest_result = read_shard_manifest(dir);
  if (!manifest_result.ok()) return manifest_result.status();
  const ShardManifest manifest = std::move(manifest_result).value();

  GenerateResult result;
  const GuardrailConfig& guard = config.guardrails;
  const bool checking = guard.policy != RecoveryPolicy::kOff;
  const SpillInstruments ins = spill_instruments(config.obs);

  const RunGovernor governor(config.governance.budget, config.governance.cancel,
                             config.governance.watchdog);
  const RunGovernor* gov = resolve_governor(config.governance, governor);
  exec::PhaseTimingSink sink;

  try {
    // Rebuild the pipeline the manifest describes: same distribution,
    // heuristic, seed, and plan as the interrupted run.
    result.timing.start("probabilities");
    DegreeDistribution dist;
    ProbabilityMatrix P;
    SkipShardPlan plan;
    EdgeSkipConfig skip_config;
    Status rebuilt;
    {
      obs::TraceSpan span(config.obs.trace, "probabilities");
      rebuilt = pipeline_from_manifest(manifest, gov, &sink, dist, P, plan,
                                       skip_config);
    }
    result.timing.stop();
    if (!rebuilt.ok()) return rebuilt;
    if (checking) {
      record(result.report, guard.policy, "input", check_graphical(dist));
      record(result.report, guard.policy, "probabilities",
             check_probability_matrix(P, dist));
    }
    result.probability_diagnostics = diagnose(P, dist);

    const std::uint64_t shard_count = manifest.shard_count;
    result.spill.spilled = true;
    result.spill.dir = dir;
    result.spill.shard_count = shard_count;
    if (ins.shard_count != nullptr)
      ins.shard_count->set(static_cast<std::int64_t>(shard_count));

    result.timing.start("edge generation");
    {
      obs::TraceSpan span(config.obs.trace, "edge generation (resume)");
      ShardLocalCensus shard_census;
      std::size_t inject_left = guard.faults.fail_spill_writes;
      const CheckpointRetryPolicy policy =
          shard_write_policy(&inject_left, ins);
      Status write_status = Status::Ok();
      for (std::uint64_t s = 0; s < shard_count; ++s) {
        if (gov != nullptr && gov->stopped()) break;
        const std::string path = shard_path(dir, s);
        std::uint64_t shard_edges = 0;
        bool reused = false;
        if (checking) {
          // One streaming pass verifies AND yields the edges the census
          // needs; a header that names another run's geometry is treated
          // as corrupt (regenerated), same as a torn file.
          EdgeList edges;
          SpillShardInfo info;
          const Status read = read_spill_shard_blocks(
              path,
              [&edges](const Edge* block, std::size_t n) {
                edges.insert(edges.end(), block, block + n);
              },
              &info);
          if (read.ok() && info.shard_index == s &&
              info.shard_count == shard_count) {
            shard_census.add_shard(edges);
            shard_edges = edges.size();
            reused = true;
          }
        } else {
          SpillShardInfo info;
          if (validate_spill_shard(path, s, shard_count, &info).ok()) {
            shard_edges = info.edge_count;
            reused = true;
          }
        }
        if (!reused) {
          const EdgeList shard = edge_skip_generate_shard(
              P, dist, plan, skip_config, s, shard_count);
          if (gov != nullptr && gov->stopped()) break;
          if (checking) shard_census.add_shard(shard);
          SpillWriteStats wstats;
          write_status =
              write_spill_shard(dir, s, shard_count, shard, policy, &wstats);
          if (!write_status.ok()) break;
          shard_edges = shard.size();
          ++result.spill.shards_written;
          if (ins.shards_written != nullptr) ins.shards_written->add(1);
          if (ins.edges_spilled != nullptr)
            ins.edges_spilled->add(shard.size());
          if (ins.bytes_written != nullptr)
            ins.bytes_written->add(wstats.bytes_written);
          if (config.obs.events != nullptr) {
            const std::string detail = "shard " + std::to_string(s) + "/" +
                                       std::to_string(shard_count) +
                                       " regenerated";
            obs::emit_event(config.obs, obs::EventKind::kShardCommit,
                            "edge generation", shard.size(), detail);
          }
        } else {
          ++result.spill.shards_reused;
          if (ins.shards_reused != nullptr) ins.shards_reused->add(1);
        }
        result.spill.edges_on_disk += shard_edges;
        result.spill.max_shard_edges =
            std::max(result.spill.max_shard_edges, shard_edges);
      }
      if (ins.max_shard_edges != nullptr)
        ins.max_shard_edges->set(
            static_cast<std::int64_t>(result.spill.max_shard_edges));

      const std::uint64_t visited =
          result.spill.shards_written + result.spill.shards_reused;
      record_curtailment(result.report, gov, config.obs, "edge generation",
                         visited, shard_count);
      if (!write_status.ok()) {
        if (ins.write_failures != nullptr) ins.write_failures->add(1);
        record(result.report, guard.policy, "spill", std::move(write_status));
      } else if (visited == shard_count) {
        result.report.degradations.push_back(
            {"edge generation", "resume-from-spill", StatusCode::kOk,
             std::to_string(result.spill.shards_reused) + " shards reused, " +
                 std::to_string(result.spill.shards_written) +
                 " regenerated -> " + dir});
        obs::emit_event(config.obs, obs::EventKind::kDegradation,
                        "edge generation", visited,
                        result.report.degradations.back().detail);
        if (checking) {
          record(result.report,
                 guard.policy == RecoveryPolicy::kRepair
                     ? RecoveryPolicy::kReport
                     : guard.policy,
                 "edge generation", check_simple(shard_census.total()));
          record_swaps_skipped(result.report, config.swap_iterations);
        }
      }
    }
    result.timing.stop();
  } catch (const StatusError& error) {
    return error.status();
  }
  result.report.phase_timings = sink.snapshot();
  return result;
}

Result<FsckReport> fsck_spill_dir(const std::string& dir,
                                  const FsckOptions& options) {
  Result<ShardManifest> manifest_result = read_shard_manifest(dir);
  if (!manifest_result.ok()) return manifest_result.status();
  const ShardManifest manifest = std::move(manifest_result).value();

  FsckReport report;
  report.shard_count = manifest.shard_count;
  report.shards.reserve(manifest.shard_count);

  // Repair inputs are rebuilt lazily: a clean directory never pays for the
  // probability phase.
  bool ctx_ready = false;
  DegreeDistribution dist;
  ProbabilityMatrix P;
  SkipShardPlan plan;
  EdgeSkipConfig skip_config;
  exec::PhaseTimingSink sink;
  std::size_t inject_left = 0;  // fsck never injects write faults

  for (std::uint64_t s = 0; s < manifest.shard_count; ++s) {
    const std::string path = shard_path(dir, s);
    ShardVerdict verdict;
    verdict.shard = s;
    SpillShardInfo info;
    const Status status =
        validate_spill_shard(path, s, manifest.shard_count, &info);
    if (status.ok()) {
      verdict.state = ShardState::kOk;
      verdict.edges = info.edge_count;
    } else {
      verdict.state = status.code() == StatusCode::kIoError
                          ? ShardState::kMissing
                          : ShardState::kCorrupt;
      verdict.detail = status.message();
      if (options.repair) {
        if (!ctx_ready) {
          const Status rebuilt = pipeline_from_manifest(
              manifest, nullptr, &sink, dist, P, plan, skip_config);
          if (!rebuilt.ok()) return rebuilt;  // directory not trustworthy
          ctx_ready = true;
        }
        const EdgeList shard = edge_skip_generate_shard(
            P, dist, plan, skip_config, s, manifest.shard_count);
        CheckpointRetryPolicy policy;
        policy.inject_io_failures = &inject_left;
        const Status rewrite =
            write_spill_shard(dir, s, manifest.shard_count, shard, policy);
        if (rewrite.ok() &&
            validate_spill_shard(path, s, manifest.shard_count, &info).ok()) {
          verdict.state = ShardState::kRepaired;
          verdict.edges = info.edge_count;
        } else {
          verdict.state = ShardState::kUnrepairable;
          verdict.detail += rewrite.ok()
                                ? "; rewrite did not verify"
                                : "; rewrite failed: " + rewrite.message();
        }
      }
    }
    if (verdict.healthy()) report.total_edges += verdict.edges;
    report.shards.push_back(std::move(verdict));
  }

  bool all_healthy = true;
  for (const ShardVerdict& v : report.shards)
    if (!v.healthy()) all_healthy = false;
  if (options.deep && all_healthy && manifest.shard_count > 0) {
    Result<SimplicityCensus> deep =
        merged_census_external(dir, manifest.shard_count);
    if (!deep.ok()) return deep.status();
    report.deep_ran = true;
    report.deep_census = std::move(deep).value();
  }
  return report;
}

}  // namespace nullgraph
