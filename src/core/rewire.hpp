#pragma once
// Degree-preserving rewiring toward a target mixing pattern
// (Xulvi-Brunet & Sokolov): the double-edge-swap proposal machinery of
// Algorithm III.1 with a biased acceptance rule. With probability `bias`
// a proposed swap is accepted only if it moves degree assortativity in the
// requested direction (assortative: re-pair the two highest-degree and two
// lowest-degree endpoints; disassortative: pair highest with lowest);
// otherwise the uniform rule applies. bias = 0 reduces to the plain
// uniform swap chain; bias = 1 drives r toward its extreme subject to
// simplicity. Degrees and simplicity are preserved exactly throughout —
// this generates the "null models with tuned assortativity" family used
// to separate degree effects from mixing effects.

#include <cstdint>
#include <vector>

#include "ds/edge_list.hpp"
#include "exec/phase_timing.hpp"
#include "obs/obs_context.hpp"
#include "robustness/governance.hpp"

namespace nullgraph {

enum class MixingTarget { kAssortative, kDisassortative };

struct RewireConfig {
  std::size_t iterations = 10;
  std::uint64_t seed = 1;
  /// Fraction of proposals forced toward the target (XBS's p parameter).
  double bias = 1.0;
  MixingTarget target = MixingTarget::kAssortative;
  /// Optional run governance: polled at iteration boundaries and per chunk
  /// inside the pair loop. A curtailed rewire leaves `edges` a valid simple
  /// graph with the original degrees (committed swaps preserve both).
  const RunGovernor* governor = nullptr;
  /// Optional exec-layer phase records under the "rewire" phase name.
  exec::PhaseTimingSink* timings = nullptr;
  /// Optional telemetry: rewire.attempted / rewire.committed counters, the
  /// shared hash-set probe-length histogram, and one trace span per
  /// iteration (same contract as SwapConfig::obs).
  obs::ObsContext obs;
};

/// Per-iteration convergence sample: the biased chain's acceptance rate
/// decays toward zero as the mixing target saturates, and the decay curve
/// is the diagnostic for "has the rewire converged".
struct RewireIterationStats {
  std::size_t attempted = 0;
  std::size_t swapped = 0;
};

struct RewireStats {
  std::size_t attempted = 0;
  std::size_t swapped = 0;
  std::vector<RewireIterationStats> iterations;

  double acceptance() const noexcept {
    return attempted == 0
               ? 0.0
               : static_cast<double>(swapped) / static_cast<double>(attempted);
  }
};

/// Rewires `edges` in place toward the target mixing; returns statistics.
/// Requires a simple input; output stays simple with identical degrees.
RewireStats rewire_assortativity(EdgeList& edges,
                                 const RewireConfig& config = {});

}  // namespace nullgraph
