#include "core/rewire.hpp"

#include <algorithm>
#include <array>

#include "ds/concurrent_hash_set.hpp"
#include "exec/exec.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "permute/permutation.hpp"
#include "util/rng.hpp"

namespace nullgraph {

RewireStats rewire_assortativity(EdgeList& edges,
                                 const RewireConfig& config) {
  RewireStats stats;
  const std::size_t m = edges.size();
  if (m < 2) return stats;
  // Degrees never change under swaps; compute once.
  const std::vector<std::uint64_t> degree = degrees_of(edges);

  // Refill (<= m keys) plus 2 candidates per pair — sized so the <= 0.5
  // load-factor invariant holds through a whole iteration.
  ConcurrentHashSet table(m + 2 * (m / 2));
  table.set_probe_histogram(
      ConcurrentHashSet::probe_histogram(config.obs.metrics));
  obs::Counter* c_attempted = nullptr;
  obs::Counter* c_committed = nullptr;
  if (config.obs.metrics != nullptr) {
    c_attempted = config.obs.metrics->counter("rewire.attempted");
    c_committed = config.obs.metrics->counter("rewire.committed");
  }
  // The refill runs ungoverned (a skipped chunk would leave keys out of T
  // and risk duplicate commits); only the pair loop is skippable.
  exec::ParallelContext refill_ctx;
  refill_ctx.timings = config.timings;
  refill_ctx.phase = "rewire";
  refill_ctx.obs = config.obs;
  exec::ParallelContext pair_ctx = refill_ctx;
  pair_ctx.governor = config.governor;
  std::uint64_t seed_chain = config.seed;
  for (std::size_t iter = 0; iter < config.iterations; ++iter) {
    if (pair_ctx.stopped()) break;
    obs::TraceSpan iter_span(config.obs.trace, "rewire iteration");
    const std::uint64_t permute_seed = splitmix64_next(seed_chain);
    const std::uint64_t pair_seed = splitmix64_next(seed_chain);

    if (iter > 0) table.clear();
    exec::for_chunks(refill_ctx, m, exec::kDefaultGrain,
                     [&](const exec::Chunk& chunk) {
                       for (std::size_t i = chunk.begin; i < chunk.end; ++i)
                         table.preload(edges[i].key());
                     });

    const std::vector<std::uint64_t> targets = knuth_targets(m, permute_seed);
    apply_targets_parallel(std::span<Edge>(edges),
                           std::span<const std::uint64_t>(targets.data(),
                                                          targets.size()),
                           config.governor);

    const std::size_t pairs = m / 2;
    const std::size_t swapped = exec::reduce<std::size_t>(
        pair_ctx, pairs, 4096, 0,
        [&](const exec::Chunk& chunk) {
          std::size_t mine = 0;
          for (std::size_t k = chunk.begin; k < chunk.end; ++k) {
            const Edge e = edges[2 * k];
            const Edge f = edges[2 * k + 1];
            std::uint64_t state = pair_seed ^ (k * 0x9e3779b97f4a7c15ULL);
            const std::uint64_t randomness = splitmix64_next(state);

            Edge g, h;
            const bool force_target =
                (static_cast<double>(randomness >> 11) * 0x1.0p-53) <
                config.bias;
            if (force_target) {
              // Sort the four endpoints by degree (ties by id for
              // determinism).
              std::array<VertexId, 4> vs{e.u, e.v, f.u, f.v};
              std::sort(vs.begin(), vs.end(), [&](VertexId a, VertexId b) {
                if (degree[a] != degree[b]) return degree[a] < degree[b];
                return a < b;
              });
              if (config.target == MixingTarget::kAssortative) {
                // Two lowest together, two highest together.
                g = {vs[0], vs[1]};
                h = {vs[2], vs[3]};
              } else {
                // Lowest with highest, middle pair together.
                g = {vs[0], vs[3]};
                h = {vs[1], vs[2]};
              }
              // Already in the requested configuration? Nothing to gain.
              if ((g.key() == e.key() && h.key() == f.key()) ||
                  (g.key() == f.key() && h.key() == e.key()))
                continue;
            } else {
              // Uniform proposal, as in plain swap_edges.
              if (randomness & 1) {
                g = {e.u, f.u};
                h = {e.v, f.v};
              } else {
                g = {e.u, f.v};
                h = {e.v, f.u};
              }
            }
            if (g.is_loop() || h.is_loop()) continue;
            if (table.test_and_set(g.key()) || table.test_and_set(h.key()))
              continue;
            edges[2 * k] = g;
            edges[2 * k + 1] = h;
            ++mine;
          }
          return mine;
        },
        [](std::size_t a, std::size_t b) { return a + b; });
    stats.attempted += pairs;
    stats.swapped += swapped;
    stats.iterations.push_back({pairs, swapped});
    if (c_attempted != nullptr) {
      c_attempted->add(pairs);
      c_committed->add(swapped);
    }
  }
  return stats;
}

}  // namespace nullgraph
