#pragma once
// Out-of-core generation driver (DESIGN.md §10): the spill path of
// generate_null_graph, shard-granular resume, and the fsck engine.
//
// Memory-pressure degradation state machine:
//
//   in-core ──(spill disabled, swap footprint over ceiling)──> kMemoryBudget
//   in-core ──(spill enabled, projected generation footprint
//              over ceiling, or --force-spill)──────────────> SPILL
//   SPILL: per shard s = 0..S-1 of the canonical unit order
//          (skip/sharded_skip.hpp): generate shard -> shard-local census
//          (ds/shard_census.hpp) -> CRC-framed atomic commit
//          (io/spill.hpp, bounded-backoff retry) -> drop from memory.
//   SPILL ──(all shards committed)──> done: DegradationEvent recorded,
//          edges on disk, swaps skipped (second DegradationEvent).
//   SPILL ──(commit fails after retries)──> typed kIoError check (the
//          shard IS the data; unlike checkpoints the loss is surfaced).
//   SPILL ──(SIGKILL at any byte)──> resume_from_spill: the manifest
//          names every shard; CRC-complete shards are trusted, missing or
//          torn ones regenerate bit-identically from their stateless RNG
//          streams — the final shard set equals the uninterrupted run's.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/null_model.hpp"
#include "exec/phase_timing.hpp"
#include "io/spill.hpp"

namespace nullgraph {

/// Projected resident footprint of generating `expected_edges` in-core:
/// the final list, the exec-layer concat transients, and the census table
/// (≈4x raw edge bytes). The spill decision compares this projection —
/// not an observed allocation — so the ceiling is honored BEFORE the
/// allocation that would break it.
std::size_t generation_footprint_bytes(double expected_edges);

/// Shard count that keeps one shard's expected edges within a quarter of
/// the memory ceiling (256 MiB default when unlimited), clamped to
/// [1, unit_count]: a shard is never smaller than one unit.
std::uint64_t auto_shard_count(double expected_edges,
                               std::size_t max_memory_bytes,
                               std::uint64_t unit_count);

/// Pipeline-internal: the spill branch of generate_null_graph, entered
/// after the probability phase with its partial `result` (input +
/// probability checks, phase timings so far). `skip_seed` is the value
/// generate_null_graph would have handed EdgeSkipConfig — sharing it is
/// what makes spilled output bit-identical to the in-core edge list.
GenerateResult generate_null_graph_spilled(
    const DegreeDistribution& dist, const ProbabilityMatrix& P,
    const GenerateConfig& config, const RunGovernor* gov,
    GenerateResult result, exec::PhaseTimingSink* sink,
    std::uint64_t skip_seed);

/// Continues a spilled run from its directory alone: everything needed
/// (distribution, seed, shard plan) comes from the manifest, so a
/// SIGKILLed process resumes with `--resume <dir>` and no other inputs.
/// CRC-valid shards are trusted and re-censused; missing or corrupt ones
/// regenerate bit-identically. config contributes governance, guardrails,
/// and telemetry only (seed/method fields are ignored — the manifest
/// carries them). kIoError when the directory/manifest is unreadable,
/// kShardCorrupt when the manifest is torn.
Result<GenerateResult> resume_from_spill(const std::string& dir,
                                         const GenerateConfig& config);

/// `nullgraph fsck` engine.
struct FsckOptions {
  /// Regenerate missing/corrupt shards from the manifest (bit-identical).
  bool repair = false;
  /// Cross-shard simplicity proof via the external k-way merge census.
  bool deep = false;
};

enum class ShardState {
  kOk,            // CRC-complete, header matches
  kMissing,       // file absent/unopenable
  kCorrupt,       // torn frame, CRC mismatch, or header disagreement
  kRepaired,      // was missing/corrupt, regenerated and re-verified
  kUnrepairable,  // repair was requested but the rewrite failed
};

struct ShardVerdict {
  std::uint64_t shard = 0;
  ShardState state = ShardState::kOk;
  std::uint64_t edges = 0;
  std::string detail;  // empty for kOk

  [[nodiscard]] bool healthy() const noexcept {
    return state == ShardState::kOk || state == ShardState::kRepaired;
  }
};

struct FsckReport {
  std::uint64_t shard_count = 0;
  std::vector<ShardVerdict> shards;
  std::uint64_t total_edges = 0;  // over healthy shards
  bool deep_ran = false;
  SimplicityCensus deep_census;

  [[nodiscard]] bool ok() const noexcept {
    for (const ShardVerdict& v : shards)
      if (!v.healthy()) return false;
    return !deep_ran || deep_census.simple();
  }
};

/// Verifies (and with options.repair, repairs) a spill directory.
/// The Result is an error only when the directory itself is unusable
/// (unreadable or torn manifest); per-shard damage is reported in the
/// verdicts, and callers map !ok() to kShardCorrupt (CLI exit 21).
Result<FsckReport> fsck_spill_dir(const std::string& dir,
                                  const FsckOptions& options = {});

}  // namespace nullgraph
