#pragma once
// Parallel double-edge swaps — Algorithm III.1, the paper's primary
// contribution. Each iteration:
//
//   1. refill a concurrent hash table T with every current edge,
//   2. randomly permute the edge list in parallel (Shun et al.),
//   3. in parallel over adjacent pairs (E[2k], E[2k+1]) = ({u,v},{x,y}):
//      pick {u,x},{v,y} or {u,y},{v,x} by coin flip and commit the swap iff
//      both candidates TestAndSet as new and neither is a self-loop.
//
// Degree sequence is invariant; simplicity can only improve (candidates
// are checked against T, which over-approximates the live edge set within
// an iteration because replaced edges are deliberately left in the table —
// conservative rejections keep correctness without deletions). Run on a
// multigraph (e.g. the O(m) Chung-Lu output), iterations progressively
// eliminate multi-edges and self-loops; Figure 4's "O(m)" series.
//
// Swapping adjacent pairs of a uniformly permuted list picks, in parallel,
// disjoint uniformly-random edge pairs — the MCMC proposal of Milo et al.
// [22]; iterating mixes toward the uniform simple null model.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ds/edge_list.hpp"

namespace nullgraph {

struct SwapConfig {
  std::size_t iterations = 10;
  std::uint64_t seed = 1;
  /// Also permute a per-edge "has ever swapped" flag alongside the edges
  /// (costs one extra permutation pass per iteration); enables
  /// SwapStats::edges_ever_swapped, the paper's mixing diagnostic.
  bool track_swapped_edges = false;
};

struct SwapIterationStats {
  std::size_t attempted = 0;           // pairs considered
  std::size_t swapped = 0;             // pairs committed
  std::size_t rejected_existing = 0;   // candidate already in T
  std::size_t rejected_loop = 0;       // candidate was a self-loop
  /// Simplicity census of the edge list at the START of this iteration,
  /// counted for free while refilling T (same convention as census():
  /// multi_edges = copies beyond the first). Since committed swaps never
  /// introduce loops or duplicates, a final iteration starting clean
  /// proves the output simple without a separate pass.
  std::size_t input_self_loops = 0;
  std::size_t input_multi_edges = 0;
};

struct SwapStats {
  std::vector<SwapIterationStats> iterations;
  /// Edges that took part in >= 1 committed swap over all iterations
  /// (only when SwapConfig::track_swapped_edges).
  std::size_t edges_ever_swapped = 0;

  std::size_t total_swapped() const noexcept {
    std::size_t sum = 0;
    for (const auto& it : iterations) sum += it.swapped;
    return sum;
  }
};

/// Parallel Algorithm III.1; mutates `edges` in place.
SwapStats swap_edges(EdgeList& edges, const SwapConfig& config = {});

/// Serial reference: identical proposal distribution and acceptance rule,
/// one pair at a time against an exact current-edge table (no
/// over-approximation). Used to validate the parallel algorithm's
/// invariants and to reproduce the paper's serial timing comparisons.
SwapStats swap_edges_serial(EdgeList& edges, const SwapConfig& config = {});

}  // namespace nullgraph
