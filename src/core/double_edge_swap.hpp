#pragma once
// Parallel double-edge swaps — Algorithm III.1, the paper's primary
// contribution. Each iteration:
//
//   1. refill a concurrent hash table T with every current edge,
//   2. randomly permute the edge list in parallel (Shun et al.),
//   3. in parallel over adjacent pairs (E[2k], E[2k+1]) = ({u,v},{x,y}):
//      pick {u,x},{v,y} or {u,y},{v,x} by coin flip and commit the swap iff
//      both candidates TestAndSet as new and neither is a self-loop.
//
// Degree sequence is invariant; simplicity can only improve (candidates
// are checked against T, which over-approximates the live edge set within
// an iteration because replaced edges are deliberately left in the table —
// conservative rejections keep correctness without deletions). Run on a
// multigraph (e.g. the O(m) Chung-Lu output), iterations progressively
// eliminate multi-edges and self-loops; Figure 4's "O(m)" series.
//
// Swapping adjacent pairs of a uniformly permuted list picks, in parallel,
// disjoint uniformly-random edge pairs — the MCMC proposal of Milo et al.
// [22]; iterating mixes toward the uniform simple null model.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "ds/edge_list.hpp"
#include "exec/phase_timing.hpp"
#include "obs/obs_context.hpp"
#include "robustness/governance.hpp"

namespace nullgraph {

/// Chain position reported to SwapConfig::on_iteration after each completed
/// iteration — everything a checkpoint needs to resume the chain exactly.
struct SwapProgress {
  std::size_t completed_iterations = 0;  // absolute, includes resumed ones
  std::size_t total_iterations = 0;      // what the config asked for
  /// seed_chain value AFTER this iteration: resuming with
  /// SwapConfig::resume_chain_state = chain_state reproduces the
  /// uninterrupted chain bit-for-bit.
  std::uint64_t chain_state = 0;
  const EdgeList* edges = nullptr;       // current edge list (borrowed)
};

struct SwapConfig {
  std::size_t iterations = 10;
  std::uint64_t seed = 1;
  /// Also permute a per-edge "has ever swapped" flag alongside the edges
  /// (costs one extra permutation pass per iteration); enables
  /// SwapStats::edges_ever_swapped, the paper's mixing diagnostic.
  bool track_swapped_edges = false;

  /// Optional run governance: polled at iteration boundaries, permutation
  /// rounds, and every 4096 pairs inside the swap loop; also arms the stall
  /// watchdog with the governor's WatchdogConfig. A curtailed swap phase
  /// leaves `edges` a valid graph (committed swaps preserve degrees and
  /// never introduce loops or duplicates) and reports why in
  /// SwapStats::stop_reason.
  const RunGovernor* governor = nullptr;
  /// Optional exec-layer phase records (wall time / chunk counts),
  /// aggregated over all iterations under the "swaps" phase name.
  exec::PhaseTimingSink* timings = nullptr;
  /// Optional telemetry: swap counters (swaps.attempted / .committed /
  /// .rejected_existing / .rejected_loop), the shared hash-set probe-length
  /// histogram, and one trace span per iteration. Default (null handles)
  /// costs one branch per iteration.
  obs::ObsContext obs;
  /// FaultPlan::slow_phase_ms wiring: sleep this long at the top of every
  /// iteration so deadline/watchdog paths can be drilled deterministically.
  std::uint64_t slow_iteration_ms = 0;
  /// Resume: skip the first `start_iteration` iterations (already done
  /// before a checkpoint) and seed the per-iteration RNG chain from
  /// `resume_chain_state` instead of deriving it from `seed`.
  std::size_t start_iteration = 0;
  std::uint64_t resume_chain_state = 0;
  /// Checkpoint sink, called after every completed iteration.
  std::function<void(const SwapProgress&)> on_iteration;
};

struct SwapIterationStats {
  std::size_t attempted = 0;           // pairs considered
  std::size_t swapped = 0;             // pairs committed
  std::size_t rejected_existing = 0;   // candidate already in T
  std::size_t rejected_loop = 0;       // candidate was a self-loop
  /// Simplicity census of the edge list at the START of this iteration,
  /// counted for free while refilling T (same convention as census():
  /// multi_edges = copies beyond the first). Since committed swaps never
  /// introduce loops or duplicates, a final iteration starting clean
  /// proves the output simple without a separate pass.
  std::size_t input_self_loops = 0;
  std::size_t input_multi_edges = 0;
};

struct SwapStats {
  std::vector<SwapIterationStats> iterations;
  /// Edges that took part in >= 1 committed swap over all iterations
  /// (only when SwapConfig::track_swapped_edges).
  std::size_t edges_ever_swapped = 0;
  /// kOk when the chain ran to completion; the governance verdict
  /// (kDeadlineExceeded / kCancelled / kSwapStalled) when curtailed.
  StatusCode stop_reason = StatusCode::kOk;
  /// seed_chain value after the last completed iteration; feed into
  /// SwapConfig::resume_chain_state to continue the chain exactly.
  std::uint64_t final_chain_state = 0;

  std::size_t total_swapped() const noexcept {
    std::size_t sum = 0;
    for (const auto& it : iterations) sum += it.swapped;
    return sum;
  }
  /// Accepted-swap fraction over the whole recorded chain — the "how mixed
  /// is the returned graph" number a curtailment reports.
  double acceptance() const noexcept {
    std::size_t attempted = 0, swapped = 0;
    for (const auto& it : iterations) {
      attempted += it.attempted;
      swapped += it.swapped;
    }
    return attempted == 0
               ? 0.0
               : static_cast<double>(swapped) / static_cast<double>(attempted);
  }
};

/// Parallel Algorithm III.1; mutates `edges` in place.
SwapStats swap_edges(EdgeList& edges, const SwapConfig& config = {});

/// Serial reference: identical proposal distribution and acceptance rule,
/// one pair at a time against an exact current-edge table (no
/// over-approximation). Used to validate the parallel algorithm's
/// invariants and to reproduce the paper's serial timing comparisons.
SwapStats swap_edges_serial(EdgeList& edges, const SwapConfig& config = {});

}  // namespace nullgraph
