#pragma once
// R-MAT edge sampling, linear-work formulation (Hübschle-Schneider &
// Sanders, arXiv:1905.03525).
//
// Classic R-MAT descends `scale` levels per edge, drawing one quadrant
// (a/b/c/d) per level — O(scale) branchy work per edge. The linear-work
// trick: enumerate every length-k quadrant PATH once (4^k of them, each a
// (u-bits, v-bits) pair with a known probability), put the path
// distribution behind a Walker alias table, and compose each edge from
// floor(scale/k) table draws plus one shallower draw for the remainder
// bits — O(1) expected work per level-batch, one multiply-shift and one
// compare per draw.
//
// Determinism: edges are drawn through exec::collect with chunk-seeded
// streams, so output is bit-identical at any thread count, and a governed
// stop truncates at chunk granularity (fewer edges, never padding).

#include <cstdint>
#include <vector>

#include "ds/edge_list.hpp"
#include "exec/parallel_context.hpp"
#include "util/rng.hpp"

namespace nullgraph::model {

struct RmatParams {
  std::uint32_t scale = 16;            // n = 2^scale vertices
  std::uint64_t edges_per_vertex = 8;  // m = edges_per_vertex * n
  /// Quadrant probabilities; d = 1 - a - b - c is implied.
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  std::uint64_t seed = 1;
};

/// Walker alias table over all 4^depth quadrant paths; one sample() draws
/// `depth` R-MAT levels at once. Exposed for tests.
class QuadrantAliasTable {
 public:
  struct PathBits {
    std::uint32_t u = 0;
    std::uint32_t v = 0;
  };

  QuadrantAliasTable(double a, double b, double c, std::uint32_t depth);

  std::uint32_t depth() const noexcept { return depth_; }
  std::size_t size() const noexcept { return bits_.size(); }

  PathBits sample(Xoshiro256ss& rng) const noexcept {
    const std::size_t k = rng.bounded(bits_.size());
    return rng.uniform() < threshold_[k] ? bits_[k] : bits_[alias_[k]];
  }

 private:
  std::uint32_t depth_;
  std::vector<double> threshold_;   // Vose acceptance probability per slot
  std::vector<std::uint32_t> alias_;
  std::vector<PathBits> bits_;      // unpacked (u, v) bits per path
};

/// Draws m = edges_per_vertex << scale R-MAT edges. Endpoints are emitted
/// in canonical (min, max) order — the undirected convention of the rest
/// of the pipeline — making the output a vertex-labeled loopy multigraph.
EdgeList rmat_edges(const RmatParams& params, const exec::ParallelContext& ctx);

}  // namespace nullgraph::model
