#include "model/rmat.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "exec/exec.hpp"

namespace nullgraph::model {

QuadrantAliasTable::QuadrantAliasTable(double a, double b, double c,
                                       std::uint32_t depth)
    : depth_(depth) {
  if (depth == 0 || depth > 15)
    throw std::invalid_argument("QuadrantAliasTable: depth must be in 1..15");
  const double d = 1.0 - a - b - c;
  const double quadrant[4] = {a, b, c, d};
  const std::size_t size = std::size_t{1} << (2 * depth);
  std::vector<double> prob(size);
  bits_.resize(size);
  for (std::size_t path = 0; path < size; ++path) {
    double p = 1.0;
    std::uint32_t u = 0;
    std::uint32_t v = 0;
    // Most-significant base-4 digit = coarsest recursion level; quadrant
    // code q contributes its high bit to u, low bit to v.
    for (std::uint32_t level = 0; level < depth; ++level) {
      const std::uint32_t shift = 2 * (depth - 1 - level);
      const std::uint32_t q = (path >> shift) & 3u;
      p *= quadrant[q];
      u = (u << 1) | (q >> 1);
      v = (v << 1) | (q & 1u);
    }
    prob[path] = p;
    bits_[path] = {u, v};
  }

  // Vose's alias construction: scale to mean 1, split into small/large,
  // pair each deficit slot with a surplus donor.
  threshold_.assign(size, 1.0);
  alias_.assign(size, 0);
  std::vector<std::uint32_t> small, large;
  std::vector<double> scaled(size);
  for (std::size_t i = 0; i < size; ++i) {
    scaled[i] = prob[i] * static_cast<double>(size);
    (scaled[i] < 1.0 ? small : large).push_back(
        static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    threshold_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] -= 1.0 - scaled[s];
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Float residue: leftovers are within rounding of 1.0 — accept directly.
  for (const std::uint32_t i : large) threshold_[i] = 1.0;
  for (const std::uint32_t i : small) threshold_[i] = 1.0;
}

EdgeList rmat_edges(const RmatParams& params,
                    const exec::ParallelContext& ctx) {
  const std::uint32_t scale = params.scale;
  const std::uint64_t m = params.edges_per_vertex << scale;
  // Table depth caps at 8 (4^8 = 65536 paths, ~1.5 MiB of table) or the
  // full scale when smaller; the remainder levels get a second, shallower
  // table instead of per-level draws.
  const std::uint32_t full_depth = std::min<std::uint32_t>(scale, 8);
  const QuadrantAliasTable full(params.a, params.b, params.c, full_depth);
  const std::uint32_t full_draws = scale / full_depth;
  const std::uint32_t rem_depth = scale % full_depth;
  const QuadrantAliasTable* tail = nullptr;
  QuadrantAliasTable tail_storage =
      rem_depth > 0 ? QuadrantAliasTable(params.a, params.b, params.c,
                                         rem_depth)
                    : QuadrantAliasTable(params.a, params.b, params.c, 1);
  if (rem_depth > 0) tail = &tail_storage;

  return exec::collect<Edge>(
      ctx, static_cast<std::size_t>(m), std::size_t{1} << 16,
      [&](const exec::Chunk& chunk, std::vector<Edge>& out) {
        Xoshiro256ss rng = chunk.rng();
        out.reserve(chunk.size());
        for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
          std::uint64_t u = 0;
          std::uint64_t v = 0;
          for (std::uint32_t draw = 0; draw < full_draws; ++draw) {
            const auto bits = full.sample(rng);
            u = (u << full_depth) | bits.u;
            v = (v << full_depth) | bits.v;
          }
          if (tail != nullptr) {
            const auto bits = tail->sample(rng);
            u = (u << rem_depth) | bits.u;
            v = (v << rem_depth) | bits.v;
          }
          Edge edge{static_cast<VertexId>(std::min(u, v)),
                    static_cast<VertexId>(std::max(u, v))};
          out.push_back(edge);
        }
      });
}

}  // namespace nullgraph::model
