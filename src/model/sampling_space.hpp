#pragma once
// SamplingSpace: WHICH graph space a generator samples from, made explicit.
//
// Dutta, Fosdick & Clauset (arXiv:2105.12120) show that "a random graph
// with this degree sequence" is underdetermined: whether self-loops and
// multi-edges are allowed, and whether graphs are weighted by their
// stub-labelings or counted once per vertex-labeled graph, are four
// independent modeling choices — and conclusions drawn in one space do not
// transfer to another. Every backend therefore declares its space up
// front, the report's `model` block records it, and the driver censuses
// the output against it instead of leaving the choice implicit.

#include <string>

#include "robustness/status.hpp"

namespace nullgraph::model {

/// Stub-labeled spaces weight each graph by the number of stub matchings
/// realizing it (the natural output of configuration-model constructions);
/// vertex-labeled spaces count each graph once.
enum class Labeling { kStub, kVertex };

struct SamplingSpace {
  bool self_loops = false;
  bool multi_edges = false;
  Labeling labeling = Labeling::kVertex;

  friend bool operator==(const SamplingSpace&,
                         const SamplingSpace&) noexcept = default;
};

/// "stub" | "vertex".
const char* labeling_name(Labeling labeling) noexcept;

/// The loops/multis dimension as the CLI spells it:
/// "simple" | "loopy" | "multi" | "loopy-multi".
const char* space_name(const SamplingSpace& space) noexcept;

/// Both dimensions, e.g. "simple (vertex-labeled)" — for human surfaces.
std::string space_description(const SamplingSpace& space);

/// Parses a space_name into the loops/multis flags (labeling untouched by
/// the caller); kInvalidArgument on anything else.
Result<SamplingSpace> parse_space(const std::string& name);
Result<Labeling> parse_labeling(const std::string& name);

}  // namespace nullgraph::model
