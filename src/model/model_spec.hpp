#pragma once
// ModelSpec: one parsed generation request — which backend, which seed,
// which sampling space, and the backend-specific parameters as declared
// key/value strings. Every front end (cmd_generate, cmd_lfr, the serve
// job path) lowers its surface syntax into this one struct and hands it
// to model::run_model; nothing below the driver ever sees argv or JSON.

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "model/sampling_space.hpp"
#include "robustness/status.hpp"

namespace nullgraph::model {

struct ModelSpec {
  std::string backend = "null-model";
  std::uint64_t seed = 1;
  /// Unset = the backend's default_swap_iterations(). Setting it on a
  /// backend without swap support is a driver-level kInvalidArgument.
  std::optional<std::size_t> swap_iterations;
  /// Unset = the backend's default_space(). Must be one of the backend's
  /// supported_spaces() when set.
  std::optional<SamplingSpace> space;
  /// Backend parameters in request order; keys are the BackendParam keys
  /// the backend declares, values are verbatim request strings. Undeclared
  /// keys are a driver-level kInvalidArgument, never silently ignored.
  std::vector<std::pair<std::string, std::string>> params;

  /// First value for `key`, if present.
  std::optional<std::string> param(const std::string& key) const;
  bool has_param(const std::string& key) const {
    return param(key).has_value();
  }
  /// Strict parses (whole token must be consumed): kInvalidArgument names
  /// the offending key, the fallback applies only when the key is absent.
  Result<std::uint64_t> param_u64(const std::string& key,
                                  std::uint64_t fallback) const;
  Result<double> param_double(const std::string& key, double fallback) const;
};

}  // namespace nullgraph::model
