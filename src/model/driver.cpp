#include "model/driver.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

#include "io/graph_io.hpp"
#include "io/shard_merge.hpp"
#include "model/registry.hpp"

namespace nullgraph::model {
namespace {

std::string note_printf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

std::string note_printf(const char* fmt, ...) {
  char buffer[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);
  return buffer;
}

Status invalid(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}

/// Pre-flight: the spec may only ask for what the backend declares.
Status validate_spec(const ModelSpec& spec, const GeneratorBackend& backend,
                     const PipelineContext& ctx) {
  const BackendCapabilities caps = backend.capabilities();
  if (spec.swap_iterations.has_value() && !caps.swaps)
    return invalid("backend '" + spec.backend +
                   "' does not support --swaps");
  if (ctx.spill.enabled && !caps.spill)
    return invalid("backend '" + spec.backend +
                   "' does not support --spill-dir");
  if (ctx.governance.checkpoint_every > 0 && !caps.checkpoint)
    return invalid("backend '" + spec.backend +
                   "' does not support --checkpoint-every");
  if (spec.space.has_value()) {
    const auto supported = backend.supported_spaces();
    if (std::find(supported.begin(), supported.end(), *spec.space) ==
        supported.end()) {
      std::string joined;
      for (const SamplingSpace& space : supported) {
        if (!joined.empty()) joined += ", ";
        joined += space_description(space);
      }
      return invalid("backend '" + spec.backend +
                     "' does not sample the " +
                     space_description(*spec.space) + " space (supported: " +
                     joined + ")");
    }
  }
  const auto declared = backend.params();
  for (const auto& [key, value] : spec.params) {
    (void)value;
    const bool known =
        std::any_of(declared.begin(), declared.end(),
                    [&](const BackendParam& p) { return p.key == key; });
    if (!known)
      return invalid("unknown parameter '" + key + "' for backend '" +
                     spec.backend + "' (see `nullgraph backends`)");
  }
  return Status::Ok();
}

/// Output census against the declared space. Undirected output uses the
/// canonical-key census; directed output sorts ordered keys (antiparallel
/// arcs are NOT multi-edges); bipartite output skips the loop check (left
/// and right ids overlap numerically) and counts duplicate pairs.
void verify_space(GenerateOutput& out) {
  const SamplingSpace& space = out.space;
  std::size_t loops = 0;
  std::size_t multis = 0;
  if (out.directed || out.bipartite) {
    std::vector<EdgeKey> keys;
    keys.reserve(out.result.edges.size());
    for (const Edge& edge : out.result.edges) {
      if (!out.bipartite && edge.is_loop()) ++loops;
      keys.push_back((static_cast<EdgeKey>(edge.u) << 32) |
                     static_cast<EdgeKey>(edge.v));
    }
    std::sort(keys.begin(), keys.end());
    for (std::size_t i = 1; i < keys.size(); ++i)
      if (keys[i] == keys[i - 1]) ++multis;
  } else {
    const SimplicityCensus counts = census(out.result.edges);
    loops = counts.self_loops;
    multis = counts.multi_edges;
  }
  Status status = Status::Ok();
  const bool loop_violation = !space.self_loops && loops > 0;
  const bool multi_violation = !space.multi_edges && multis > 0;
  if (loop_violation || multi_violation) {
    status = Status(
        StatusCode::kNonSimpleOutput,
        note_printf("declared '%s' space violated: %zu self-loops, %zu "
                    "multi-edges",
                    space_name(space), loops, multis));
  }
  out.result.report.checks.push_back({"sampling space", status, false});
}

/// Artifact emission — the write-out half of the old CLI emit_result,
/// expressed as notes + a hard emit_error instead of direct prints/exits.
void emit_artifacts(const ModelRunOptions& options, ModelRun& run) {
  GenerateOutput& out = run.output;
  const GenerateResult& result = out.result;
  if (result.spill.spilled) {
    const SpillSummary& spill = result.spill;
    run.wrote_output = true;
    run.notes.push_back(note_printf(
        "spilled: %llu edges across %llu shards in %s "
        "(%llu written, %llu reused)",
        static_cast<unsigned long long>(spill.edges_on_disk),
        static_cast<unsigned long long>(spill.shard_count), spill.dir.c_str(),
        static_cast<unsigned long long>(spill.shards_written),
        static_cast<unsigned long long>(spill.shards_reused)));
    const bool complete =
        spill.shards_written + spill.shards_reused == spill.shard_count;
    if (!complete) {
      run.notes.push_back(note_printf(
          "spill incomplete; continue with --resume %s", spill.dir.c_str()));
      // A curtailed spill keeps the curtailment's typed code (the caller
      // maps it), but an incomplete spill with a hard error — a shard
      // write that exhausted its retries — is a missing-output failure:
      // typed even in record-only mode, because the shard IS the data.
      const Status err = result.report.first_error();
      if (!err.ok() && result.report.curtailed_by() == StatusCode::kOk)
        run.emit_error = err;
      return;
    }
    if (!options.out_path.empty()) {
      std::uint64_t merged = 0;
      const Status status = concat_shards_to_text_file(
          spill.dir, spill.shard_count, options.out_path, &merged);
      if (!status.ok()) {
        run.emit_error = status;
        return;
      }
      run.edges_written = merged;
      run.notes.push_back(note_printf("merged %llu edges -> %s",
                                      static_cast<unsigned long long>(merged),
                                      options.out_path.c_str()));
    }
  } else if (!options.out_path.empty()) {
    const Status status =
        write_edge_list_file_atomic(options.out_path, result.edges);
    if (!status.ok()) {
      run.emit_error = status;
      return;
    }
    run.edges_written = result.edges.size();
    run.wrote_output = true;
  }
  if (!options.communities_path.empty() && !out.community.empty()) {
    std::string body;
    for (std::size_t v = 0; v < out.community.size(); ++v)
      body += std::to_string(v) + ' ' + std::to_string(out.community[v]) +
              '\n';
    const Status status =
        write_text_file_atomic(options.communities_path, body);
    if (!status.ok()) run.emit_error = status;
  }
}

}  // namespace

Result<ModelRun> run_model(const ModelSpec& spec, const PipelineContext& ctx,
                           const ModelRunOptions& options) {
  const GeneratorBackend* backend = find_backend(spec.backend);
  if (backend == nullptr)
    return invalid("unknown backend '" + spec.backend + "' (known: " +
                   known_backend_names() + ")");
  if (const Status status = validate_spec(spec, *backend, ctx); !status.ok())
    return status;

  Result<GenerateOutput> generated = backend->generate(spec, ctx);
  if (!generated.ok()) return generated.status();

  ModelRun run;
  run.output = std::move(generated).value();
  run.notes = std::move(run.output.notes);
  run.output.notes.clear();

  // The census needs the edges in memory; spilled runs already carried
  // their census through the shard pipeline's guardrails.
  if (!run.output.space_verified && !run.output.result.spill.spilled)
    verify_space(run.output);

  const BackendCapabilities caps = backend->capabilities();
  run.model.backend = std::string(backend->name());
  run.model.space = space_name(run.output.space);
  run.model.self_loops = run.output.space.self_loops;
  run.model.multi_edges = run.output.space.multi_edges;
  run.model.labeling = labeling_name(run.output.space.labeling);
  run.model.capabilities = caps.names();
  run.model.space_verified = run.output.space_verified;

  emit_artifacts(options, run);
  return run;
}

}  // namespace nullgraph::model
