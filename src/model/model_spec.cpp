#include "model/model_spec.hpp"

#include <cerrno>
#include <cstdlib>

namespace nullgraph::model {

namespace {

Status bad_param(const std::string& key, const std::string& value,
                 const char* kind) {
  return Status(StatusCode::kInvalidArgument,
                "invalid " + std::string(kind) + " for parameter '" + key +
                    "': '" + value + "'");
}

}  // namespace

std::optional<std::string> ModelSpec::param(const std::string& key) const {
  for (const auto& [k, v] : params)
    if (k == key) return v;
  return std::nullopt;
}

Result<std::uint64_t> ModelSpec::param_u64(const std::string& key,
                                           std::uint64_t fallback) const {
  const auto value = param(key);
  if (!value) return fallback;
  if (value->empty() ||
      value->find_first_not_of("0123456789") != std::string::npos)
    return bad_param(key, *value, "integer");
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value->c_str(), &end, 10);
  if (errno == ERANGE || end != value->c_str() + value->size())
    return bad_param(key, *value, "integer");
  return static_cast<std::uint64_t>(parsed);
}

Result<double> ModelSpec::param_double(const std::string& key,
                                       double fallback) const {
  const auto value = param(key);
  if (!value) return fallback;
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(value->c_str(), &end);
  if (value->empty() || end != value->c_str() + value->size() ||
      errno == ERANGE)
    return bad_param(key, *value, "number");
  return parsed;
}

}  // namespace nullgraph::model
