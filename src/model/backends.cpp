// The built-in GeneratorBackend implementations: the five pre-registry
// generators (null-model, chung-lu, directed, bipartite, lfr) plus the
// linear-work R-MAT backend, all plugged into the same substrate.
//
// Registration is an explicit call from registry.cpp (lazy, on first
// lookup) — NOT static initializers, which a static-library link would
// dead-strip.

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <utility>

#include "analysis/metrics.hpp"
#include "bipartite/bipartite.hpp"
#include "core/null_model.hpp"
#include "directed/directed_generators.hpp"
#include "exec/parallel_context.hpp"
#include "exec/phase_timing.hpp"
#include "gen/chung_lu.hpp"
#include "gen/powerlaw.hpp"
#include "io/graph_io.hpp"
#include "lfr/lfr.hpp"
#include "model/registry.hpp"
#include "model/rmat.hpp"
#include "obs/event_log.hpp"

namespace nullgraph::model {
namespace {

std::string format_note(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

std::string format_note(const char* fmt, ...) {
  char buffer[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);
  return buffer;
}

/// Resolves the effective governor for backends whose kernels take a
/// borrowed `const RunGovernor*`: an external (test-owned) governor wins,
/// otherwise a local one is built from the config, otherwise null. The
/// deadline clock starts at construction — build this immediately before
/// the generation call.
class GovernorScope {
 public:
  explicit GovernorScope(const GovernanceConfig& governance)
      : local_(governance.budget, governance.cancel, governance.watchdog),
        governor_(governance.external != nullptr
                      ? governance.external
                      : (governance.enabled ? &local_ : nullptr)) {}

  const RunGovernor* get() const noexcept { return governor_; }

 private:
  RunGovernor local_;
  const RunGovernor* governor_;
};

/// A governed stop becomes a Curtailment entry so report.curtailed_by()
/// and the CLI's typed exit code see it — same contract the null-model
/// pipeline implements internally.
void record_curtailment(PipelineReport& report, const RunGovernor* governor,
                        const obs::ObsContext& obs, const char* phase,
                        std::size_t completed, std::size_t requested) {
  if (governor == nullptr || !governor->stopped()) return;
  report.curtailments.push_back(
      {phase, governor->stop_reason(), completed, requested, 0.0});
  obs::emit_event(obs, obs::EventKind::kCurtailment, phase, completed,
                  status_code_name(governor->stop_reason()));
}

/// Shared degree-distribution input: --dist FILE wins, otherwise the
/// power-law parameters (with per-backend defaults). `require_source` adds
/// the null model's "explicitly pick one" rule; the others default to a
/// power law so a bare `--backend chung-lu` run works.
Result<DegreeDistribution> dist_from_spec(const ModelSpec& spec,
                                          bool require_source) {
  if (const auto file = spec.param("dist"); file && !file->empty())
    return try_read_degree_distribution_file(*file);
  if (require_source && !spec.has_param("powerlaw"))
    return Status(StatusCode::kInvalidArgument,
                  "need --dist FILE or --powerlaw");
  PowerlawParams params;
  params.n = 100000;
  params.dmax = 1000;
  const Result<std::uint64_t> n = spec.param_u64("n", params.n);
  if (!n.ok()) return n.status();
  params.n = n.value();
  const Result<double> gamma = spec.param_double("gamma", params.gamma);
  if (!gamma.ok()) return gamma.status();
  params.gamma = gamma.value();
  const Result<std::uint64_t> dmin = spec.param_u64("dmin", params.dmin);
  if (!dmin.ok()) return dmin.status();
  params.dmin = dmin.value();
  const Result<std::uint64_t> dmax = spec.param_u64("dmax", params.dmax);
  if (!dmax.ok()) return dmax.status();
  params.dmax = dmax.value();
  if (params.n == 0)
    return Status(StatusCode::kInvalidArgument, "--n must be positive");
  if (params.dmin == 0 || params.dmax < params.dmin)
    return Status(StatusCode::kInvalidArgument,
                  "--dmin/--dmax must satisfy 1 <= dmin <= dmax");
  return powerlaw_distribution(params);
}

std::vector<BackendParam> degree_input_params() {
  return {
      {"dist", "FILE", "degree distribution file ('degree count' lines)"},
      {"powerlaw", "", "synthetic power-law distribution (default source)"},
      {"n", "N", "power-law vertex count (default 100000)"},
      {"gamma", "G", "power-law exponent (default 2.5)"},
      {"dmin", "D", "minimum degree (default 1)"},
      {"dmax", "D", "maximum degree (default 1000)"},
  };
}

// ---------------------------------------------------------------------------
// null-model: the paper's Algorithm IV.1 pipeline.

class NullModelBackend final : public GeneratorBackend {
 public:
  std::string_view name() const noexcept override { return "null-model"; }
  std::string_view summary() const noexcept override {
    return "uniform simple graphs from a degree distribution "
           "(edge-skip + swap mixing; the paper's pipeline)";
  }
  BackendCapabilities capabilities() const override {
    BackendCapabilities caps;
    caps.swaps = true;
    caps.spill = true;
    caps.checkpoint = true;
    caps.degree_input = true;
    return caps;
  }
  SamplingSpace default_space() const override {
    return {false, false, Labeling::kVertex};
  }
  std::vector<SamplingSpace> supported_spaces() const override {
    return {default_space()};
  }
  std::vector<BackendParam> params() const override {
    return degree_input_params();
  }

  Result<GenerateOutput> generate(const ModelSpec& spec,
                                  const PipelineContext& ctx) const override {
    Result<DegreeDistribution> dist =
        dist_from_spec(spec, /*require_source=*/true);
    if (!dist.ok()) return dist.status();
    GenerateConfig config;
    config.seed = spec.seed;
    config.swap_iterations =
        spec.swap_iterations.value_or(default_swap_iterations());
    config.guardrails = ctx.guardrails;
    config.governance = ctx.governance;
    config.spill = ctx.spill;
    config.obs = ctx.obs;
    GenerateOutput out;
    Result<GenerateResult> run =
        generate_null_graph_checked(dist.value(), config);
    if (!run.ok()) return run.status();
    out.result = std::move(run).value();
    out.space = default_space();
    // The pipeline's own guardrail census + swap invariants cover the
    // space; a second driver census would double the check.
    out.space_verified = true;
    if (!out.result.spill.spilled) {
      const QualityErrors errors =
          quality_errors(dist.value(), out.result.edges);
      out.notes.push_back(format_note(
          "generated %zu edges (target %llu); err: edges %.2f%% dmax "
          "%.2f%%; %.3f s",
          out.result.edges.size(),
          static_cast<unsigned long long>(dist.value().num_edges()),
          100 * errors.edge_count, 100 * errors.max_degree,
          out.result.timing.total_seconds()));
    }
    return out;
  }
};

// ---------------------------------------------------------------------------
// chung-lu: the O(m) baselines. The sampling space SELECTS the algorithm —
// stub-labeled loopy-multi is the raw multigraph, stub-labeled simple the
// erased variant, vertex-labeled simple the Bernoulli/edge-skip variant
// (exactly the three estimators Section VIII compares).

class ChungLuBackend final : public GeneratorBackend {
 public:
  std::string_view name() const noexcept override { return "chung-lu"; }
  std::string_view summary() const noexcept override {
    return "O(m) Chung-Lu draws; --space picks raw multigraph, erased, or "
           "Bernoulli variant";
  }
  BackendCapabilities capabilities() const override {
    BackendCapabilities caps;
    caps.degree_input = true;
    return caps;
  }
  SamplingSpace default_space() const override {
    return {true, true, Labeling::kStub};
  }
  std::vector<SamplingSpace> supported_spaces() const override {
    return {{true, true, Labeling::kStub},
            {false, false, Labeling::kStub},
            {false, false, Labeling::kVertex}};
  }
  std::vector<BackendParam> params() const override {
    auto params = degree_input_params();
    params.push_back({"sampler", "NAME",
                      "endpoint sampler: vertex | class | alias "
                      "(default vertex; stub-labeled spaces only)"});
    return params;
  }

  Result<GenerateOutput> generate(const ModelSpec& spec,
                                  const PipelineContext& ctx) const override {
    Result<DegreeDistribution> dist =
        dist_from_spec(spec, /*require_source=*/false);
    if (!dist.ok()) return dist.status();
    const SamplingSpace space = spec.space.value_or(default_space());
    ChungLuConfig config;
    config.seed = spec.seed;
    if (const auto sampler = spec.param("sampler")) {
      if (*sampler == "vertex") {
        config.sampler = ClSampler::kBinarySearchVertex;
      } else if (*sampler == "class") {
        config.sampler = ClSampler::kBinarySearchClass;
      } else if (*sampler == "alias") {
        config.sampler = ClSampler::kAlias;
      } else {
        return Status(StatusCode::kInvalidArgument,
                      "unknown sampler '" + *sampler +
                          "' (vertex|class|alias)");
      }
    }
    const GovernorScope governor(ctx.governance);
    exec::PhaseTimingSink sink;
    config.governor = governor.get();
    config.timings = &sink;
    GenerateOutput out;
    out.result.timing.start("chung-lu draws");
    if (space.labeling == Labeling::kVertex) {
      // Bernoulli Chung-Lu runs through the edge-skip kernel, which has no
      // chunk-granular governor hook, so poll (not just read the latch)
      // here: should_stop() is what trips on a pre-cancelled token or an
      // already-expired deadline before the draw starts.
      if (governor.get() == nullptr ||
          governor.get()->should_stop() == StatusCode::kOk)
        out.result.edges = bernoulli_chung_lu(dist.value(), spec.seed);
    } else if (space.multi_edges) {
      out.result.edges = chung_lu_multigraph(dist.value(), config);
    } else {
      out.result.edges = erased_chung_lu(dist.value(), config);
    }
    out.result.timing.stop();
    record_curtailment(out.result.report, governor.get(), ctx.obs, "chung-lu",
                       out.result.edges.size(),
                       static_cast<std::size_t>(dist.value().num_edges()));
    out.result.report.phase_timings = sink.snapshot();
    out.space = space;
    // The erased/Bernoulli variants are simple by construction, but the
    // driver census doubles as the regression check for exactly that
    // claim, so leave verification to it.
    out.space_verified = false;
    out.notes.push_back(format_note(
        "chung-lu (%s): %zu edges in %.3f s", space_name(space),
        out.result.edges.size(), out.result.timing.total_seconds()));
    return out;
  }
};

// ---------------------------------------------------------------------------
// directed: Algorithm IV.1 on simple digraphs (each undirected degree
// class becomes an (in=d, out=d) joint class).

class DirectedBackend final : public GeneratorBackend {
 public:
  std::string_view name() const noexcept override { return "directed"; }
  std::string_view summary() const noexcept override {
    return "uniform simple digraphs; undirected classes become (in=d, "
           "out=d) joint classes";
  }
  BackendCapabilities capabilities() const override {
    BackendCapabilities caps;
    caps.swaps = true;
    caps.directed = true;
    caps.degree_input = true;
    return caps;
  }
  SamplingSpace default_space() const override {
    return {false, false, Labeling::kVertex};
  }
  std::vector<SamplingSpace> supported_spaces() const override {
    return {default_space()};
  }
  std::vector<BackendParam> params() const override {
    return degree_input_params();
  }

  Result<GenerateOutput> generate(const ModelSpec& spec,
                                  const PipelineContext& ctx) const override {
    Result<DegreeDistribution> dist =
        dist_from_spec(spec, /*require_source=*/false);
    if (!dist.ok()) return dist.status();
    std::vector<DirectedDegreeClass> classes;
    classes.reserve(dist.value().classes().size());
    for (const DegreeClass& c : dist.value().classes())
      classes.push_back({c.degree, c.degree, c.count});
    const DirectedDegreeDistribution directed(std::move(classes));
    const GovernorScope governor(ctx.governance);
    GenerateOutput out;
    out.result.timing.start("directed pipeline");
    const ArcList arcs = generate_directed_null_graph(
        directed, spec.seed,
        spec.swap_iterations.value_or(default_swap_iterations()),
        governor.get());
    out.result.timing.stop();
    out.result.edges.reserve(arcs.size());
    for (const Arc& arc : arcs) out.result.edges.push_back({arc.from, arc.to});
    record_curtailment(out.result.report, governor.get(), ctx.obs, "directed",
                       out.result.edges.size(),
                       static_cast<std::size_t>(directed.num_arcs()));
    out.space = default_space();
    out.space_verified = false;
    out.directed = true;
    out.notes.push_back(format_note(
        "directed: %zu arcs (target %llu) in %.3f s", out.result.edges.size(),
        static_cast<unsigned long long>(directed.num_arcs()),
        out.result.timing.total_seconds()));
    return out;
  }
};

// ---------------------------------------------------------------------------
// bipartite: checkerboard null model; one degree distribution is applied
// to BOTH sides (equal stub totals by construction, so a bipartite graph
// always exists).

class BipartiteBackend final : public GeneratorBackend {
 public:
  std::string_view name() const noexcept override { return "bipartite"; }
  std::string_view summary() const noexcept override {
    return "uniform simple bipartite graphs; the distribution applies to "
           "both sides";
  }
  BackendCapabilities capabilities() const override {
    BackendCapabilities caps;
    caps.swaps = true;
    caps.bipartite = true;
    caps.degree_input = true;
    return caps;
  }
  SamplingSpace default_space() const override {
    return {false, false, Labeling::kVertex};
  }
  std::vector<SamplingSpace> supported_spaces() const override {
    return {default_space()};
  }
  std::vector<BackendParam> params() const override {
    return degree_input_params();
  }

  Result<GenerateOutput> generate(const ModelSpec& spec,
                                  const PipelineContext& ctx) const override {
    Result<DegreeDistribution> dist =
        dist_from_spec(spec, /*require_source=*/false);
    if (!dist.ok()) return dist.status();
    const BipartiteDistribution bipartite(dist.value().classes(),
                                          dist.value().classes());
    const GovernorScope governor(ctx.governance);
    GenerateOutput out;
    out.result.timing.start("bipartite pipeline");
    const ArcList arcs = bipartite_null_graph(
        bipartite, spec.seed,
        spec.swap_iterations.value_or(default_swap_iterations()),
        governor.get());
    out.result.timing.stop();
    out.result.edges.reserve(arcs.size());
    for (const Arc& arc : arcs) out.result.edges.push_back({arc.from, arc.to});
    record_curtailment(out.result.report, governor.get(), ctx.obs, "bipartite",
                       out.result.edges.size(),
                       static_cast<std::size_t>(bipartite.num_edges()));
    out.space = default_space();
    out.space_verified = false;
    out.bipartite = true;
    out.bipartite_left = bipartite.num_left();
    out.notes.push_back(format_note(
        "bipartite: %zu edges (target %llu, %llu left / %llu right) in "
        "%.3f s",
        out.result.edges.size(),
        static_cast<unsigned long long>(bipartite.num_edges()),
        static_cast<unsigned long long>(bipartite.num_left()),
        static_cast<unsigned long long>(bipartite.num_right()),
        out.result.timing.total_seconds()));
    return out;
  }
};

// ---------------------------------------------------------------------------
// lfr: layered community benchmark; every layer is a null-model run.

class LfrBackend final : public GeneratorBackend {
 public:
  std::string_view name() const noexcept override { return "lfr"; }
  std::string_view summary() const noexcept override {
    return "LFR-like community benchmark (one null-model layer per "
           "community + external layer)";
  }
  BackendCapabilities capabilities() const override {
    BackendCapabilities caps;
    caps.swaps = true;
    caps.communities = true;
    return caps;
  }
  SamplingSpace default_space() const override {
    return {false, false, Labeling::kVertex};
  }
  std::vector<SamplingSpace> supported_spaces() const override {
    return {default_space()};
  }
  std::size_t default_swap_iterations() const override { return 5; }
  std::vector<BackendParam> params() const override {
    return {
        {"n", "N", "vertex count (default 10000)"},
        {"mu", "MU", "target mixing parameter (default 0.3)"},
        {"dmin", "D", "minimum degree (default 4)"},
        {"dmax", "D", "maximum degree (default 100)"},
        {"cmin", "C", "minimum community size (default 32)"},
        {"cmax", "C", "maximum community size (default 512)"},
        {"tau1", "T", "degree exponent (default 2.5)"},
        {"tau2", "T", "community-size exponent (default 1.8)"},
    };
  }

  Result<GenerateOutput> generate(const ModelSpec& spec,
                                  const PipelineContext& ctx) const override {
    LfrParams params;
    const Result<std::uint64_t> n = spec.param_u64("n", params.n);
    if (!n.ok()) return n.status();
    params.n = n.value();
    const Result<double> mu = spec.param_double("mu", params.mu);
    if (!mu.ok()) return mu.status();
    params.mu = mu.value();
    const Result<std::uint64_t> dmin = spec.param_u64("dmin", params.dmin);
    if (!dmin.ok()) return dmin.status();
    params.dmin = dmin.value();
    const Result<std::uint64_t> dmax = spec.param_u64("dmax", params.dmax);
    if (!dmax.ok()) return dmax.status();
    params.dmax = dmax.value();
    const Result<std::uint64_t> cmin = spec.param_u64("cmin", params.cmin);
    if (!cmin.ok()) return cmin.status();
    params.cmin = cmin.value();
    const Result<std::uint64_t> cmax = spec.param_u64("cmax", params.cmax);
    if (!cmax.ok()) return cmax.status();
    params.cmax = cmax.value();
    const Result<double> tau1 =
        spec.param_double("tau1", params.degree_exponent);
    if (!tau1.ok()) return tau1.status();
    params.degree_exponent = tau1.value();
    const Result<double> tau2 =
        spec.param_double("tau2", params.community_exponent);
    if (!tau2.ok()) return tau2.status();
    params.community_exponent = tau2.value();
    params.seed = spec.seed;
    params.swap_iterations =
        spec.swap_iterations.value_or(default_swap_iterations());
    params.governance = ctx.governance;
    params.obs = ctx.obs;
    LfrGraph graph = generate_lfr(params);
    GenerateOutput out;
    out.notes.push_back(format_note(
        "lfr: %zu edges, %zu communities, achieved mu %.4f",
        graph.edges.size(), graph.num_communities, graph.achieved_mu));
    if (graph.curtailed != StatusCode::kOk) {
      out.result.report.curtailments.push_back(
          {"lfr layers", graph.curtailed, graph.communities_completed,
           graph.num_communities, 0.0});
    }
    out.result.edges = std::move(graph.edges);
    out.community = std::move(graph.community);
    out.space = default_space();
    out.space_verified = false;
    // Keep the layer scalars for the report's `lfr` block; the edge list
    // and partition live in their canonical slots above.
    out.lfr = std::move(graph);
    out.lfr->edges.clear();
    out.lfr->community.clear();
    return out;
  }
};

// ---------------------------------------------------------------------------
// rmat: the new, degree-distribution-free power-law backend.

class RmatBackend final : public GeneratorBackend {
 public:
  std::string_view name() const noexcept override { return "rmat"; }
  std::string_view summary() const noexcept override {
    return "linear-work R-MAT (alias tables over quadrant paths, "
           "arXiv:1905.03525)";
  }
  BackendCapabilities capabilities() const override {
    return BackendCapabilities{};
  }
  SamplingSpace default_space() const override {
    return {true, true, Labeling::kVertex};
  }
  std::vector<SamplingSpace> supported_spaces() const override {
    return {{true, true, Labeling::kVertex},
            {false, false, Labeling::kVertex}};
  }
  std::vector<BackendParam> params() const override {
    return {
        {"scale", "K", "2^K vertices (default 16, max 30)"},
        {"edge-factor", "E", "E * 2^K edges drawn (default 8)"},
        {"a", "P", "upper-left quadrant probability (default 0.57)"},
        {"b", "P", "upper-right quadrant probability (default 0.19)"},
        {"c", "P", "lower-left quadrant probability (default 0.19)"},
    };
  }

  Result<GenerateOutput> generate(const ModelSpec& spec,
                                  const PipelineContext& ctx) const override {
    RmatParams params;
    const Result<std::uint64_t> scale = spec.param_u64("scale", params.scale);
    if (!scale.ok()) return scale.status();
    if (scale.value() == 0 || scale.value() > 30)
      return Status(StatusCode::kInvalidArgument,
                    "--scale must be in 1..30");
    params.scale = static_cast<std::uint32_t>(scale.value());
    const Result<std::uint64_t> factor =
        spec.param_u64("edge-factor", params.edges_per_vertex);
    if (!factor.ok()) return factor.status();
    if (factor.value() == 0 || factor.value() > (1ull << 32))
      return Status(StatusCode::kInvalidArgument,
                    "--edge-factor must be in 1..2^32");
    params.edges_per_vertex = factor.value();
    const Result<double> a = spec.param_double("a", params.a);
    if (!a.ok()) return a.status();
    params.a = a.value();
    const Result<double> b = spec.param_double("b", params.b);
    if (!b.ok()) return b.status();
    params.b = b.value();
    const Result<double> c = spec.param_double("c", params.c);
    if (!c.ok()) return c.status();
    params.c = c.value();
    if (!(params.a > 0) || !(params.b > 0) || !(params.c > 0) ||
        !(params.a + params.b + params.c < 1.0))
      return Status(StatusCode::kInvalidArgument,
                    "--a/--b/--c must be positive with a + b + c < 1");
    params.seed = spec.seed;

    const SamplingSpace space = spec.space.value_or(default_space());
    const GovernorScope governor(ctx.governance);
    exec::PhaseTimingSink sink;
    exec::ParallelContext pctx;
    pctx.seed = spec.seed;
    pctx.governor = governor.get();
    pctx.timings = &sink;
    pctx.phase = "rmat";
    pctx.obs = ctx.obs;
    GenerateOutput out;
    out.result.timing.start("rmat draws");
    out.result.edges = rmat_edges(params, pctx);
    out.result.timing.stop();
    const std::size_t drawn = out.result.edges.size();
    if (!space.self_loops && !space.multi_edges) {
      out.result.timing.start("erase nonsimple");
      out.result.edges = erase_nonsimple(out.result.edges);
      out.result.timing.stop();
    }
    record_curtailment(
        out.result.report, governor.get(), ctx.obs, "rmat", drawn,
        static_cast<std::size_t>(params.edges_per_vertex << params.scale));
    out.result.report.phase_timings = sink.snapshot();
    out.space = space;
    out.space_verified = false;
    out.notes.push_back(format_note(
        "rmat: %zu edges (scale %u, %llu drawn) in %.3f s",
        out.result.edges.size(), params.scale,
        static_cast<unsigned long long>(drawn),
        out.result.timing.total_seconds()));
    return out;
  }
};

}  // namespace

namespace detail {

void register_builtin_backends() {
  register_backend(std::make_unique<NullModelBackend>());
  register_backend(std::make_unique<ChungLuBackend>());
  register_backend(std::make_unique<DirectedBackend>());
  register_backend(std::make_unique<BipartiteBackend>());
  register_backend(std::make_unique<LfrBackend>());
  register_backend(std::make_unique<RmatBackend>());
}

}  // namespace detail
}  // namespace nullgraph::model
