#include "model/registry.hpp"

#include <cstdio>
#include <mutex>
#include <utility>

#include "util/thread_annotations.hpp"

namespace nullgraph::model {

std::vector<std::string> BackendCapabilities::names() const {
  std::vector<std::string> out;
  if (swaps) out.push_back("swaps");
  if (spill) out.push_back("spill");
  if (checkpoint) out.push_back("checkpoint");
  if (directed) out.push_back("directed");
  if (bipartite) out.push_back("bipartite");
  if (communities) out.push_back("communities");
  if (degree_input) out.push_back("degree-input");
  return out;
}

namespace detail {
/// Defined in backends.cpp. The hard symbol reference from here is what
/// keeps the built-in backends linked in: self-registering static
/// initializers in a member of a static library would be dropped by the
/// linker, so registration is an explicit call instead.
void register_builtin_backends();
}  // namespace detail

namespace {

struct Registry {
  Mutex mutex;
  std::vector<std::unique_ptr<GeneratorBackend>> backends
      NG_GUARDED_BY(mutex);
};

Registry& registry() {
  static Registry r;
  return r;
}

void ensure_builtins() {
  static std::once_flag once;
  std::call_once(once, [] { detail::register_builtin_backends(); });
}

}  // namespace

void register_backend(std::unique_ptr<GeneratorBackend> backend) {
  Registry& r = registry();
  MutexLock lock(r.mutex);
  for (auto& existing : r.backends) {
    if (existing->name() == backend->name()) {
      existing = std::move(backend);
      return;
    }
  }
  r.backends.push_back(std::move(backend));
}

const GeneratorBackend* find_backend(std::string_view name) {
  ensure_builtins();
  Registry& r = registry();
  MutexLock lock(r.mutex);
  for (const auto& backend : r.backends)
    if (backend->name() == name) return backend.get();
  return nullptr;
}

std::vector<const GeneratorBackend*> all_backends() {
  ensure_builtins();
  Registry& r = registry();
  MutexLock lock(r.mutex);
  std::vector<const GeneratorBackend*> out;
  out.reserve(r.backends.size());
  for (const auto& backend : r.backends) out.push_back(backend.get());
  return out;
}

std::string known_backend_names() {
  std::string joined;
  for (const GeneratorBackend* backend : all_backends()) {
    if (!joined.empty()) joined += ", ";
    joined += backend->name();
  }
  return joined;
}

std::string registry_usage_text() {
  std::string out =
      "backends (generate --backend NAME; `nullgraph backends` for "
      "parameters):\n";
  for (const GeneratorBackend* backend : all_backends()) {
    std::string line = "  ";
    line += backend->name();
    while (line.size() < 14) line += ' ';
    line += backend->summary();
    line += '\n';
    out += line;
  }
  return out;
}

std::string describe_backends() {
  std::string out;
  for (const GeneratorBackend* backend : all_backends()) {
    const BackendCapabilities caps = backend->capabilities();
    out += backend->name();
    out += " — ";
    out += backend->summary();
    out += '\n';
    out += "  capabilities:  ";
    std::string joined;
    for (const std::string& cap : caps.names()) {
      if (!joined.empty()) joined += ' ';
      joined += cap;
    }
    out += joined.empty() ? "(none)" : joined;
    out += '\n';
    out += "  default space: " + space_description(backend->default_space());
    out += '\n';
    const auto spaces = backend->supported_spaces();
    if (spaces.size() > 1) {
      out += "  spaces:        ";
      joined.clear();
      for (const SamplingSpace& space : spaces) {
        if (!joined.empty()) joined += ", ";
        joined += space_description(space);
      }
      out += joined + '\n';
    }
    if (caps.swaps) {
      out += "  default swaps: " +
             std::to_string(backend->default_swap_iterations()) + '\n';
    }
    const auto params = backend->params();
    if (!params.empty()) {
      out += "  params:\n";
      for (const BackendParam& param : params) {
        std::string line = "    --" + param.key;
        if (!param.value_hint.empty()) line += ' ' + param.value_hint;
        while (line.size() < 22) line += ' ';
        out += line + param.help + '\n';
      }
    }
  }
  return out;
}

}  // namespace nullgraph::model
