#pragma once
// run_model: the one pipeline tail every backend shares. What the five
// generator commands used to copy by hand — request validation, the
// sampling-space census, graph/community write-out (in-core atomic write
// or spill-shard merge), and the report's `model` block — happens here,
// once, for whichever backend the spec names.
//
// Front ends translate their surface (argv, job JSON) into a ModelSpec,
// call run_model, print run.notes, and map run.emit_error / the report's
// curtailment to an exit code. Nothing else.

#include <cstdint>
#include <string>
#include <vector>

#include "model/backend.hpp"
#include "obs/report.hpp"
#include "robustness/status.hpp"

namespace nullgraph::model {

struct ModelRunOptions {
  /// Edge-list output path; empty = leave edges in memory (the caller
  /// prints stats or streams them itself). Spilled runs merge their
  /// shards here with bounded memory.
  std::string out_path;
  /// Community-partition output ("vertex community" lines); written when
  /// non-empty and the backend produced a partition.
  std::string communities_path;
};

struct ModelRun {
  GenerateOutput output;
  /// The report's `model` block, filled for every run (hand to
  /// RunReportInputs::model).
  obs::ModelBlock model;
  /// Human-facing stderr lines in print order: backend notes first, then
  /// write-out notes (spill summary, merge confirmation, resume hint).
  std::vector<std::string> notes;
  /// Hard artifact failure (output write, shard merge, or a spill that
  /// exhausted its write retries): typed even under record-only guardrail
  /// policy, because the artifact IS the product.
  Status emit_error = Status::Ok();
  std::uint64_t edges_written = 0;
  /// True when --out / the spill directory consumed the edges (callers
  /// then skip their in-memory stats printout).
  bool wrote_output = false;
};

/// Validates `spec` against the backend's declared capabilities, runs it,
/// verifies the sampling space, emits artifacts. kInvalidArgument for
/// unknown backend / undeclared parameter / unsupported space / swaps or
/// spill on a backend without them; backend errors pass through typed.
Result<ModelRun> run_model(const ModelSpec& spec, const PipelineContext& ctx,
                           const ModelRunOptions& options = {});

}  // namespace nullgraph::model
