#pragma once
// The backend registry: name -> GeneratorBackend, process-wide.
//
// Built-in backends self-register lazily on first lookup (an explicit
// call into backends.cpp, NOT static initializers — those get dead-
// stripped out of static libraries). Tests may register additional
// backends; registering an existing name replaces it.

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "model/backend.hpp"

namespace nullgraph::model {

/// Registers (or replaces, by name) a backend. Thread-safe. Replacement
/// invalidates pointers previously returned for that name — a tests-only
/// concern; production code registers once at startup.
void register_backend(std::unique_ptr<GeneratorBackend> backend);

/// Looks up a backend; nullptr when unknown. The pointer stays valid for
/// the process lifetime (unless a test replaces that name).
const GeneratorBackend* find_backend(std::string_view name);

/// Every registered backend, in registration order (built-ins first).
std::vector<const GeneratorBackend*> all_backends();

/// Registered names joined with ", " — for error messages.
std::string known_backend_names();

/// The CLI usage section generated from the registry, so help text cannot
/// drift from what is actually registered.
std::string registry_usage_text();

/// The `nullgraph backends` body: per backend, its summary, capabilities,
/// sampling spaces, and declared parameters.
std::string describe_backends();

}  // namespace nullgraph::model
