#include "model/sampling_space.hpp"

namespace nullgraph::model {

const char* labeling_name(Labeling labeling) noexcept {
  return labeling == Labeling::kStub ? "stub" : "vertex";
}

const char* space_name(const SamplingSpace& space) noexcept {
  if (space.self_loops && space.multi_edges) return "loopy-multi";
  if (space.self_loops) return "loopy";
  if (space.multi_edges) return "multi";
  return "simple";
}

std::string space_description(const SamplingSpace& space) {
  return std::string(space_name(space)) + " (" +
         labeling_name(space.labeling) + "-labeled)";
}

Result<SamplingSpace> parse_space(const std::string& name) {
  SamplingSpace space;
  if (name == "simple") {
    // defaults
  } else if (name == "loopy") {
    space.self_loops = true;
  } else if (name == "multi") {
    space.multi_edges = true;
  } else if (name == "loopy-multi") {
    space.self_loops = true;
    space.multi_edges = true;
  } else {
    return Status(StatusCode::kInvalidArgument,
                  "unknown sampling space '" + name +
                      "' (simple|loopy|multi|loopy-multi)");
  }
  return space;
}

Result<Labeling> parse_labeling(const std::string& name) {
  if (name == "stub") return Labeling::kStub;
  if (name == "vertex") return Labeling::kVertex;
  return Status(StatusCode::kInvalidArgument,
                "unknown labeling '" + name + "' (stub|vertex)");
}

}  // namespace nullgraph::model
