#pragma once
// GeneratorBackend: the one interface every graph model implements.
//
// A backend turns (ModelSpec, PipelineContext) into a GenerateOutput; the
// registry driver (model/driver.hpp) owns everything around that call —
// request validation against the backend's declared capabilities, the
// sampling-space census, the report's `model` block, and graph write-out.
// Adding a model to the whole toolchain (CLI flags, serve jobs, report
// schema, smoke tier) is: implement this interface, register it, done.
//
// Backends receive the governance/guardrail/spill/telemetry wiring through
// PipelineContext and are expected to honor what they declare: a backend
// with `capabilities().swaps == false` never sees spec.swap_iterations
// (the driver rejects it first), one with `spill == false` never sees an
// enabled SpillConfig.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/null_model.hpp"
#include "lfr/lfr.hpp"
#include "model/model_spec.hpp"
#include "model/sampling_space.hpp"

namespace nullgraph::model {

/// One declared backend parameter; `key` is both the CLI flag (--key) and
/// the job-spec params key. Empty `value_hint` marks a boolean flag.
struct BackendParam {
  std::string key;
  std::string value_hint;
  std::string help;
};

struct BackendCapabilities {
  bool swaps = false;        // honors spec.swap_iterations
  bool spill = false;        // honors SpillConfig (out-of-core degradation)
  bool checkpoint = false;   // honors governance.checkpoint_every/_path
  bool directed = false;     // output edges are ordered arcs
  bool bipartite = false;    // output edges are (left, right) pairs
  bool communities = false;  // output carries a community partition
  bool degree_input = false; // consumes a target degree distribution

  /// The set bits as stable kebab-case names (report + `backends` text).
  std::vector<std::string> names() const;
};

/// The substrate handles a backend inherits: guardrail policy + fault
/// injection, run governance (deadline/cancel/memory/checkpoint), spill
/// config, and borrowed telemetry sinks. Front ends build it once.
struct PipelineContext {
  GuardrailConfig guardrails;
  GovernanceConfig governance;
  SpillConfig spill;
  obs::ObsContext obs;
};

struct GenerateOutput {
  /// Edges, timings, report, spill summary — the same shape the null-model
  /// pipeline has always produced; backends without a native report fill
  /// in what they have (curtailments, phase timings).
  GenerateResult result;
  /// The space actually sampled this run (after any spec.space override).
  SamplingSpace space;
  /// True when the pipeline structurally guarantees `space` (e.g. the
  /// null-model census + swap invariants); the driver then skips its own
  /// output census.
  bool space_verified = false;
  /// Edges are ordered arcs (u -> v); {u,v} and {v,u} are distinct.
  bool directed = false;
  /// Edges are (left, right) with both sides independently numbered from
  /// 0; numeric id collisions across sides are not loops.
  bool bipartite = false;
  std::uint64_t bipartite_left = 0;
  /// Community partition (LFR); empty for partition-free models.
  std::vector<std::uint32_t> community;
  /// LFR layer scalars for the report's `lfr` block; `edges`/`community`
  /// inside it are left empty — the canonical copies live above.
  std::optional<LfrGraph> lfr;
  /// Human-facing stderr lines the CLI prints verbatim, in order (e.g. the
  /// null model's quality-error line).
  std::vector<std::string> notes;
};

class GeneratorBackend {
 public:
  virtual ~GeneratorBackend() = default;

  /// Stable registry key (kebab-case): "null-model", "chung-lu", ...
  virtual std::string_view name() const noexcept = 0;
  /// One-line human description for usage text and `nullgraph backends`.
  virtual std::string_view summary() const noexcept = 0;
  virtual BackendCapabilities capabilities() const = 0;
  virtual SamplingSpace default_space() const = 0;
  virtual std::vector<SamplingSpace> supported_spaces() const = 0;
  virtual std::vector<BackendParam> params() const = 0;
  virtual std::size_t default_swap_iterations() const { return 10; }

  /// Runs the model. The spec has already been validated against the
  /// declared capabilities/spaces/params; implementations still own
  /// value-level validation (a malformed --gamma is theirs to reject).
  virtual Result<GenerateOutput> generate(const ModelSpec& spec,
                                          const PipelineContext& ctx) const = 0;
};

}  // namespace nullgraph::model
