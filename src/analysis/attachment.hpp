#pragma once
// Empirical pairwise attachment probabilities — the measurement behind
// Figures 1 and 4. For a reference degree distribution, the attachment
// probability between degree classes i and j is the fraction of candidate
// pairs realized as edges, averaged over an ensemble of sample graphs.
// Vertices map to classes by the library's id convention (class-contiguous
// ids), so matrices from different generators share dimensions and compare
// entrywise via ProbabilityMatrix::l1_distance.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ds/degree_distribution.hpp"
#include "ds/edge_list.hpp"
#include "prob/probability_matrix.hpp"

namespace nullgraph {

/// Accumulates edge counts per class pair over an ensemble, then averages
/// into per-pair probabilities.
class AttachmentAccumulator {
 public:
  explicit AttachmentAccumulator(const DegreeDistribution& reference);

  /// Adds one sample graph (ids must follow the reference's convention).
  void add(const EdgeList& edges);

  std::size_t num_samples() const noexcept { return samples_; }

  /// Average probability matrix over the samples added so far:
  /// counts / (samples * |pair space|).
  ProbabilityMatrix average() const;

 private:
  const DegreeDistribution& reference_;
  std::vector<std::uint64_t> pair_counts_;  // packed lower triangle
  std::size_t samples_ = 0;
};

/// One-shot convenience: attachment probabilities of a single graph.
ProbabilityMatrix empirical_attachment(const EdgeList& edges,
                                       const DegreeDistribution& reference);

/// Figure 1's curve: attachment probabilities between the LARGEST degree
/// class and every class, one entry per reference class.
std::vector<double> max_degree_attachment_row(const ProbabilityMatrix& P);

}  // namespace nullgraph
