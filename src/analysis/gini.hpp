#pragma once
// Gini coefficient of a degree sequence — the skew measure of Figure 3
// (Ceriani & Verme [9]). 0 = perfectly even degrees, ->1 = all degree mass
// on a few hubs.

#include <cstdint>
#include <vector>

#include "ds/degree_distribution.hpp"

namespace nullgraph {

/// Gini of an arbitrary non-negative sequence; O(n log n) (sorts a copy).
double gini_coefficient(std::vector<std::uint64_t> values);

/// Gini straight from a degree distribution, O(|D|) using the grouped form
/// of the sorted-sequence formula.
double gini_coefficient(const DegreeDistribution& dist);

}  // namespace nullgraph
