#pragma once
// Shortest-path statistics: BFS distances, sampled average path length and
// a pseudo-diameter. The third classic null-model comparison (after motifs
// and mixing): is a network's "small world" distance profile explained by
// its degree sequence?

#include <cstdint>
#include <vector>

#include "ds/csr_graph.hpp"

namespace nullgraph {

/// BFS hop distances from `source`; unreachable vertices get kUnreachable.
inline constexpr std::uint32_t kUnreachable = ~0u;
std::vector<std::uint32_t> bfs_distances(const CsrGraph& graph,
                                         VertexId source);

struct PathStats {
  double average_distance = 0.0;  // over reachable sampled pairs
  std::uint32_t max_distance = 0; // pseudo-diameter over the samples
  std::size_t reachable_pairs = 0;
  std::size_t sampled_sources = 0;
};

/// Average distance / pseudo-diameter from `samples` random BFS sources
/// (exact when samples >= n: every vertex becomes a source once).
PathStats sampled_path_stats(const CsrGraph& graph, std::size_t samples,
                             std::uint64_t seed = 1);

}  // namespace nullgraph
