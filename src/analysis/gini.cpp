#include "analysis/gini.hpp"

#include <algorithm>

namespace nullgraph {

double gini_coefficient(std::vector<std::uint64_t> values) {
  const std::size_t n = values.size();
  if (n == 0) return 0.0;
  std::sort(values.begin(), values.end());
  // Sorted-sequence identity: G = 2 sum(i * x_i) / (n sum x) - (n+1)/n,
  // ranks i 1-based ascending.
  long double rank_weighted = 0.0L;
  long double total = 0.0L;
  for (std::size_t i = 0; i < n; ++i) {
    rank_weighted +=
        static_cast<long double>(i + 1) * static_cast<long double>(values[i]);
    total += static_cast<long double>(values[i]);
  }
  if (total == 0.0L) return 0.0;
  const long double nd = static_cast<long double>(n);
  return static_cast<double>(2.0L * rank_weighted / (nd * total) -
                             (nd + 1.0L) / nd);
}

double gini_coefficient(const DegreeDistribution& dist) {
  const std::uint64_t n = dist.num_vertices();
  if (n == 0) return 0.0;
  // Same identity with equal-degree runs collapsed: ranks of class c are
  // o_c+1 .. o_c+n_c, whose sum is n_c o_c + n_c(n_c+1)/2.
  long double rank_weighted = 0.0L;
  for (std::size_t c = 0; c < dist.num_classes(); ++c) {
    const long double d =
        static_cast<long double>(dist.degree_of_class(c));
    const long double nc = static_cast<long double>(dist.count_of_class(c));
    const long double oc = static_cast<long double>(dist.class_offset(c));
    rank_weighted += d * (nc * oc + nc * (nc + 1.0L) / 2.0L);
  }
  const long double total = static_cast<long double>(dist.num_stubs());
  if (total == 0.0L) return 0.0;
  const long double nd = static_cast<long double>(n);
  return static_cast<double>(2.0L * rank_weighted / (nd * total) -
                             (nd + 1.0L) / nd);
}

}  // namespace nullgraph
