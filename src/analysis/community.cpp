#include "analysis/community.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>

#include "util/rng.hpp"

namespace nullgraph {

double modularity(const EdgeList& edges,
                  const std::vector<std::uint32_t>& community) {
  if (edges.empty()) return 0.0;
  std::uint32_t num_communities = 0;
  for (const std::uint32_t c : community)
    num_communities = std::max(num_communities, c + 1);
  std::vector<double> internal(num_communities, 0.0);
  std::vector<double> degree_mass(num_communities, 0.0);
  for (const Edge& e : edges) {
    const std::uint32_t cu = community[e.u];
    const std::uint32_t cv = community[e.v];
    if (cu == cv) internal[cu] += 1.0;
    degree_mass[cu] += 1.0;
    degree_mass[cv] += 1.0;
  }
  const double m = static_cast<double>(edges.size());
  double q = 0.0;
  for (std::uint32_t c = 0; c < num_communities; ++c) {
    const double fraction = degree_mass[c] / (2.0 * m);
    q += internal[c] / m - fraction * fraction;
  }
  return q;
}

std::vector<std::uint32_t> label_propagation(
    const CsrGraph& graph, const LabelPropagationConfig& config) {
  const std::size_t n = graph.num_vertices();
  std::vector<std::uint32_t> label(n);
  std::iota(label.begin(), label.end(), 0u);
  if (n == 0) return label;

  Xoshiro256ss rng(config.seed);
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0u);
  // Scratch: frequency of each candidate label among a vertex's neighbours.
  std::unordered_map<std::uint32_t, std::uint32_t> frequency;
  std::vector<std::uint32_t> best_labels;

  for (std::size_t round = 0; round < config.max_rounds; ++round) {
    // Random visit order each round (asynchronous LPA).
    for (std::size_t i = n; i-- > 1;) {
      std::swap(order[i], order[rng.bounded(i + 1)]);
    }
    bool changed = false;
    for (const VertexId v : order) {
      const auto neighbors = graph.neighbors(v);
      if (neighbors.empty()) continue;
      frequency.clear();
      std::uint32_t best_count = 0;
      for (const VertexId u : neighbors) {
        const std::uint32_t count = ++frequency[label[u]];
        best_count = std::max(best_count, count);
      }
      best_labels.clear();
      for (const auto& [candidate, count] : frequency)
        if (count == best_count) best_labels.push_back(candidate);
      const std::uint32_t chosen =
          best_labels[rng.bounded(best_labels.size())];
      if (chosen != label[v]) {
        label[v] = chosen;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return compact_labels(std::move(label));
}

double normalized_mutual_information(const std::vector<std::uint32_t>& a,
                                     const std::vector<std::uint32_t>& b) {
  const std::size_t n = a.size();
  if (n == 0 || b.size() != n) return 0.0;
  const std::vector<std::uint32_t> ca = compact_labels(a);
  const std::vector<std::uint32_t> cb = compact_labels(b);
  std::uint32_t ka = 0, kb = 0;
  for (std::uint32_t label : ca) ka = std::max(ka, label + 1);
  for (std::uint32_t label : cb) kb = std::max(kb, label + 1);

  std::vector<double> pa(ka, 0.0), pb(kb, 0.0);
  std::unordered_map<std::uint64_t, double> joint;
  const double inv_n = 1.0 / static_cast<double>(n);
  for (std::size_t v = 0; v < n; ++v) {
    pa[ca[v]] += inv_n;
    pb[cb[v]] += inv_n;
    joint[(static_cast<std::uint64_t>(ca[v]) << 32) | cb[v]] += inv_n;
  }
  auto entropy = [](const std::vector<double>& p) {
    double h = 0.0;
    for (double value : p)
      if (value > 0.0) h -= value * std::log(value);
    return h;
  };
  const double ha = entropy(pa);
  const double hb = entropy(pb);
  double mutual = 0.0;
  for (const auto& [key, pab] : joint) {
    const double marginal =
        pa[static_cast<std::uint32_t>(key >> 32)] *
        pb[static_cast<std::uint32_t>(key & 0xffffffffu)];
    if (pab > 0.0 && marginal > 0.0)
      mutual += pab * std::log(pab / marginal);
  }
  if (ha <= 0.0 && hb <= 0.0) return 1.0;  // both trivial and equal
  if (ha <= 0.0 || hb <= 0.0) return 0.0;
  return mutual / std::sqrt(ha * hb);
}

std::vector<std::uint32_t> compact_labels(std::vector<std::uint32_t> labels) {
  std::unordered_map<std::uint32_t, std::uint32_t> remap;
  remap.reserve(labels.size() / 4 + 1);
  for (std::uint32_t& label : labels) {
    const auto [it, inserted] =
        remap.try_emplace(label, static_cast<std::uint32_t>(remap.size()));
    label = it->second;
  }
  return labels;
}

}  // namespace nullgraph
