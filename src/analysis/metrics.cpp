#include "analysis/metrics.hpp"

#include <cmath>

#include "analysis/gini.hpp"
#include "exec/exec.hpp"

namespace nullgraph {

QualityErrors quality_errors(const DegreeDistribution& target,
                             const EdgeList& generated) {
  QualityErrors errors;
  const std::uint64_t n = target.num_vertices();
  const std::vector<std::uint64_t> degrees = degrees_of(generated, n);

  const double m_target = static_cast<double>(target.num_edges());
  const double m_out = static_cast<double>(generated.size());
  errors.edge_count = m_target > 0 ? std::abs(m_out - m_target) / m_target : 0;

  const exec::ParallelContext ctx;
  const std::uint64_t dmax_out = exec::reduce<std::uint64_t>(
      ctx, degrees.size(), exec::kDefaultGrain, 0,
      [&](const exec::Chunk& chunk) {
        std::uint64_t mine = 0;
        for (std::size_t v = chunk.begin; v < chunk.end; ++v)
          if (degrees[v] > mine) mine = degrees[v];
        return mine;
      },
      [](std::uint64_t a, std::uint64_t b) { return a > b ? a : b; });
  const double dmax_target = static_cast<double>(target.max_degree());
  errors.max_degree =
      dmax_target > 0
          ? std::abs(static_cast<double>(dmax_out) - dmax_target) /
                dmax_target
          : 0;

  const double gini_target = gini_coefficient(target);
  const double gini_out = gini_coefficient(degrees);
  errors.gini =
      gini_target > 0 ? std::abs(gini_out - gini_target) / gini_target : 0;
  return errors;
}

std::vector<double> per_degree_errors(const DegreeDistribution& target,
                                      const EdgeList& generated) {
  const std::uint64_t n = target.num_vertices();
  const std::vector<std::uint64_t> degrees = degrees_of(generated, n);
  const std::uint64_t dmax = target.max_degree();
  std::vector<std::uint64_t> histogram(dmax + 2, 0);
  for (std::uint64_t d : degrees) {
    // Degrees above the target max all land in the overflow bucket; they
    // count as "not matching any target class".
    ++histogram[d <= dmax ? d : dmax + 1];
  }
  std::vector<double> errors(target.num_classes(), 0.0);
  for (std::size_t c = 0; c < target.num_classes(); ++c) {
    const double want = static_cast<double>(target.count_of_class(c));
    const double got =
        static_cast<double>(histogram[target.degree_of_class(c)]);
    errors[c] = want > 0 ? std::abs(got - want) / want : 0.0;
  }
  return errors;
}

double degree_assortativity(const EdgeList& edges) {
  if (edges.empty()) return 0.0;
  const std::vector<std::uint64_t> degrees = degrees_of(edges);
  // Newman's Pearson correlation over edge endpoint degree pairs. The
  // serial chunk-order combine makes the sums (hence r) independent of
  // thread count.
  struct Sums {
    double jk = 0.0, half = 0.0, sq = 0.0;
  };
  const exec::ParallelContext ctx;
  const Sums sums = exec::reduce<Sums>(
      ctx, edges.size(), exec::kDefaultGrain, Sums{},
      [&](const exec::Chunk& chunk) {
        Sums mine;
        for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
          const double j = static_cast<double>(degrees[edges[i].u]);
          const double k = static_cast<double>(degrees[edges[i].v]);
          mine.jk += j * k;
          mine.half += 0.5 * (j + k);
          mine.sq += 0.5 * (j * j + k * k);
        }
        return mine;
      },
      [](Sums a, Sums b) {
        a.jk += b.jk;
        a.half += b.half;
        a.sq += b.sq;
        return a;
      });
  const double inv_m = 1.0 / static_cast<double>(edges.size());
  const double mean = inv_m * sums.half;
  const double numerator = inv_m * sums.jk - mean * mean;
  const double denominator = inv_m * sums.sq - mean * mean;
  if (std::abs(denominator) < 1e-15) return 0.0;
  return numerator / denominator;
}

QualityErrors average(const std::vector<QualityErrors>& samples) {
  QualityErrors mean;
  if (samples.empty()) return mean;
  for (const QualityErrors& s : samples) {
    mean.edge_count += s.edge_count;
    mean.max_degree += s.max_degree;
    mean.gini += s.gini;
  }
  const double k = static_cast<double>(samples.size());
  mean.edge_count /= k;
  mean.max_degree /= k;
  mean.gini /= k;
  return mean;
}

}  // namespace nullgraph
