#include "analysis/attachment.hpp"

#include <atomic>

#include "exec/exec.hpp"

namespace nullgraph {

AttachmentAccumulator::AttachmentAccumulator(
    const DegreeDistribution& reference)
    : reference_(reference),
      pair_counts_(reference.num_classes() * (reference.num_classes() + 1) /
                       2,
                   0) {}

void AttachmentAccumulator::add(const EdgeList& edges) {
  ++samples_;
  const exec::ParallelContext ctx;
  exec::for_chunks(
      ctx, edges.size(), exec::kDefaultGrain, [&](const exec::Chunk& chunk) {
        for (std::size_t k = chunk.begin; k < chunk.end; ++k) {
          std::size_t ci = reference_.class_of_vertex(edges[k].u);
          std::size_t cj = reference_.class_of_vertex(edges[k].v);
          if (ci < cj) std::swap(ci, cj);
          const std::size_t index = ci * (ci + 1) / 2 + cj;
          std::atomic_ref<std::uint64_t> slot(pair_counts_[index]);
          // relaxed: histogram tally read only after the loop barrier.
          slot.fetch_add(1, std::memory_order_relaxed);
        }
      });
}

ProbabilityMatrix AttachmentAccumulator::average() const {
  const std::size_t nc = reference_.num_classes();
  ProbabilityMatrix matrix(nc);
  if (samples_ == 0) return matrix;
  for (std::size_t i = 0; i < nc; ++i) {
    const double ni = static_cast<double>(reference_.count_of_class(i));
    for (std::size_t j = 0; j <= i; ++j) {
      const double nj = static_cast<double>(reference_.count_of_class(j));
      const double pairs = i == j ? ni * (ni - 1.0) / 2.0 : ni * nj;
      if (pairs <= 0.0) continue;
      const double count =
          static_cast<double>(pair_counts_[i * (i + 1) / 2 + j]);
      matrix.set(i, j, count / (static_cast<double>(samples_) * pairs));
    }
  }
  return matrix;
}

ProbabilityMatrix empirical_attachment(const EdgeList& edges,
                                       const DegreeDistribution& reference) {
  AttachmentAccumulator accumulator(reference);
  accumulator.add(edges);
  return accumulator.average();
}

std::vector<double> max_degree_attachment_row(const ProbabilityMatrix& P) {
  const std::size_t nc = P.num_classes();
  std::vector<double> row(nc, 0.0);
  for (std::size_t j = 0; j < nc; ++j) row[j] = P.at(nc - 1, j);
  return row;
}

}  // namespace nullgraph
