#pragma once
// Small-motif counting — the intro's motivating application (Milo et al.
// [23]): a motif is significant when its count in the observed graph is
// extreme against the null-model ensemble. Triangles and wedges are the
// canonical probes and give the global clustering coefficient.

#include <cstdint>

#include "ds/csr_graph.hpp"
#include "ds/edge_list.hpp"

namespace nullgraph {

/// Exact triangle count via sorted-neighbourhood intersection on each edge
/// (u < v to count each triangle three times, divided out). O(sum over
/// edges of d_u + d_v). Requires a sorted-row CSR.
std::uint64_t count_triangles(const CsrGraph& graph);

/// Number of wedges (paths of length 2) = sum_v C(d_v, 2).
std::uint64_t count_wedges(const CsrGraph& graph);

/// Global clustering coefficient: 3 * triangles / wedges (0 if no wedges).
double global_clustering(const CsrGraph& graph);

/// Z-score of `observed` against an ensemble with the given sample mean
/// and (population) standard deviation; 0 when the deviation vanishes.
double z_score(double observed, double mean, double stddev);

/// Running mean/variance accumulator (Welford) for ensemble statistics.
class EnsembleStats {
 public:
  void add(double value) noexcept;
  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return mean_; }
  double variance() const noexcept;  // population variance
  double stddev() const noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace nullgraph
