#pragma once
// Community-structure analysis: modularity (the introduction's second
// motivating application — modularity is DEFINED against a null-model
// expectation), a label-propagation community detector, and normalized
// mutual information. Together with the LFR generator (Section VI) these
// close the loop the benchmark exists for: generate graphs of rising
// mixing mu, run a detector, and watch recovery degrade.

#include <cstdint>
#include <vector>

#include "ds/csr_graph.hpp"
#include "ds/edge_list.hpp"

namespace nullgraph {

/// Newman-Girvan modularity of a vertex partition:
///   Q = sum_c [ e_c / m  -  (d_c / 2m)^2 ]
/// where e_c is the number of intra-community edges and d_c the total
/// degree of community c. Self-loops follow the usual convention (count
/// once in e_c, twice in d_c).
double modularity(const EdgeList& edges,
                  const std::vector<std::uint32_t>& community);

struct LabelPropagationConfig {
  std::uint64_t seed = 1;
  std::size_t max_rounds = 64;
};

/// Asynchronous label propagation (Raghavan et al.): every vertex adopts
/// the most frequent label among its neighbours (ties broken uniformly at
/// random) until labels stabilize. Returns a dense relabeled partition
/// (labels in [0, #communities)).
std::vector<std::uint32_t> label_propagation(
    const CsrGraph& graph, const LabelPropagationConfig& config = {});

/// Normalized mutual information between two partitions of the same vertex
/// set: I(A;B) / sqrt(H(A) H(B)); 1 = identical partitions, 0 =
/// independent. Returns 1 when both partitions are trivial (single
/// cluster) and identical in size.
double normalized_mutual_information(const std::vector<std::uint32_t>& a,
                                     const std::vector<std::uint32_t>& b);

/// Renumbers labels densely (first-seen order); helper for comparing
/// partitions produced by different tools.
std::vector<std::uint32_t> compact_labels(std::vector<std::uint32_t> labels);

}  // namespace nullgraph
