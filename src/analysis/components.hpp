#pragma once
// Connected components via union-find. Null-model practice often needs to
// know (or condition on) connectivity: double-edge swaps do NOT preserve
// connectedness, so pipelines that require a connected null sample
// regenerate until this reports one component.

#include <cstdint>
#include <vector>

#include "ds/edge_list.hpp"

namespace nullgraph {

/// Weighted quick-union with path halving.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n);

  /// Representative of v's set (with path compression).
  std::uint32_t find(std::uint32_t v) noexcept;

  /// Merges the sets of a and b; returns true when they were distinct.
  bool unite(std::uint32_t a, std::uint32_t b) noexcept;

  std::size_t num_sets() const noexcept { return num_sets_; }
  std::size_t size_of(std::uint32_t v) noexcept { return size_[find(v)]; }

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> size_;
  std::size_t num_sets_ = 0;
};

struct ComponentSummary {
  std::size_t num_components = 0;       // over n vertices (isolated count)
  std::size_t largest_size = 0;
  std::vector<std::uint32_t> component; // per-vertex component id (dense)
};

/// Components of the graph on `n` vertices (0 = infer from edges).
ComponentSummary connected_components(const EdgeList& edges,
                                      std::size_t n = 0);

/// True when all n vertices lie in one component (false for n = 0).
bool is_connected(const EdgeList& edges, std::size_t n = 0);

}  // namespace nullgraph
