#include "analysis/paths.hpp"

#include <algorithm>
#include <numeric>

#include "exec/exec.hpp"
#include "util/rng.hpp"

namespace nullgraph {

std::vector<std::uint32_t> bfs_distances(const CsrGraph& graph,
                                         VertexId source) {
  const std::size_t n = graph.num_vertices();
  std::vector<std::uint32_t> distance(n, kUnreachable);
  std::vector<VertexId> frontier{source};
  distance[source] = 0;
  std::uint32_t depth = 0;
  std::vector<VertexId> next;
  while (!frontier.empty()) {
    ++depth;
    next.clear();
    for (const VertexId v : frontier) {
      for (const VertexId u : graph.neighbors(v)) {
        if (distance[u] == kUnreachable) {
          distance[u] = depth;
          next.push_back(u);
        }
      }
    }
    frontier.swap(next);
  }
  return distance;
}

PathStats sampled_path_stats(const CsrGraph& graph, std::size_t samples,
                             std::uint64_t seed) {
  PathStats stats;
  const std::size_t n = graph.num_vertices();
  if (n == 0) return stats;

  std::vector<VertexId> sources;
  if (samples >= n) {
    sources.resize(n);
    std::iota(sources.begin(), sources.end(), 0u);
  } else {
    Xoshiro256ss rng(seed);
    sources.reserve(samples);
    for (std::size_t s = 0; s < samples; ++s)
      sources.push_back(static_cast<VertexId>(rng.bounded(n)));
  }

  // One BFS per chunk item; grain 1 because per-source cost dominates.
  struct Totals {
    long double distance_sum = 0.0L;
    std::size_t pairs = 0;
    std::uint32_t max_distance = 0;
  };
  const exec::ParallelContext ctx;
  const Totals totals = exec::reduce<Totals>(
      ctx, sources.size(), 1, Totals{},
      [&](const exec::Chunk& chunk) {
        Totals mine;
        for (std::size_t s = chunk.begin; s < chunk.end; ++s) {
          const auto distance = bfs_distances(graph, sources[s]);
          for (std::size_t v = 0; v < n; ++v) {
            if (v == sources[s] || distance[v] == kUnreachable) continue;
            mine.distance_sum += distance[v];
            ++mine.pairs;
            mine.max_distance = std::max(mine.max_distance, distance[v]);
          }
        }
        return mine;
      },
      [](Totals a, Totals b) {
        a.distance_sum += b.distance_sum;
        a.pairs += b.pairs;
        a.max_distance = std::max(a.max_distance, b.max_distance);
        return a;
      });
  stats.sampled_sources = sources.size();
  stats.reachable_pairs = totals.pairs;
  stats.max_distance = totals.max_distance;
  stats.average_distance =
      totals.pairs
          ? static_cast<double>(totals.distance_sum /
                                static_cast<long double>(totals.pairs))
          : 0.0;
  return stats;
}

}  // namespace nullgraph
