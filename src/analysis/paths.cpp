#include "analysis/paths.hpp"

#include <algorithm>
#include <numeric>

#include "util/rng.hpp"

namespace nullgraph {

std::vector<std::uint32_t> bfs_distances(const CsrGraph& graph,
                                         VertexId source) {
  const std::size_t n = graph.num_vertices();
  std::vector<std::uint32_t> distance(n, kUnreachable);
  std::vector<VertexId> frontier{source};
  distance[source] = 0;
  std::uint32_t depth = 0;
  std::vector<VertexId> next;
  while (!frontier.empty()) {
    ++depth;
    next.clear();
    for (const VertexId v : frontier) {
      for (const VertexId u : graph.neighbors(v)) {
        if (distance[u] == kUnreachable) {
          distance[u] = depth;
          next.push_back(u);
        }
      }
    }
    frontier.swap(next);
  }
  return distance;
}

PathStats sampled_path_stats(const CsrGraph& graph, std::size_t samples,
                             std::uint64_t seed) {
  PathStats stats;
  const std::size_t n = graph.num_vertices();
  if (n == 0) return stats;

  std::vector<VertexId> sources;
  if (samples >= n) {
    sources.resize(n);
    std::iota(sources.begin(), sources.end(), 0u);
  } else {
    Xoshiro256ss rng(seed);
    sources.reserve(samples);
    for (std::size_t s = 0; s < samples; ++s)
      sources.push_back(static_cast<VertexId>(rng.bounded(n)));
  }

  long double distance_sum = 0.0L;
  std::size_t pairs = 0;
  std::uint32_t max_distance = 0;
#pragma omp parallel for schedule(dynamic, 1) \
    reduction(+ : distance_sum, pairs) reduction(max : max_distance)
  for (std::size_t s = 0; s < sources.size(); ++s) {
    const auto distance = bfs_distances(graph, sources[s]);
    for (std::size_t v = 0; v < n; ++v) {
      if (v == sources[s] || distance[v] == kUnreachable) continue;
      distance_sum += distance[v];
      ++pairs;
      max_distance = std::max(max_distance, distance[v]);
    }
  }
  stats.sampled_sources = sources.size();
  stats.reachable_pairs = pairs;
  stats.max_distance = max_distance;
  stats.average_distance =
      pairs ? static_cast<double>(distance_sum / pairs) : 0.0;
  return stats;
}

}  // namespace nullgraph
