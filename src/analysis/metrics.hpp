#pragma once
// Output-quality metrics: how closely a generated graph matches its target
// degree distribution (Figures 2 and 3) plus degree assortativity.

#include <cstdint>
#include <vector>

#include "ds/degree_distribution.hpp"
#include "ds/edge_list.hpp"

namespace nullgraph {

/// The three Figure 3 error measures, as relative (fractional) errors.
struct QualityErrors {
  double edge_count = 0.0;  // | m_out - m_target | / m_target
  double max_degree = 0.0;  // | dmax_out - dmax_target | / dmax_target
  double gini = 0.0;        // | G_out - G_target | / G_target
};

QualityErrors quality_errors(const DegreeDistribution& target,
                             const EdgeList& generated);

/// Per-degree relative error of the output degree histogram vs the target
/// (Figure 2). Entry k corresponds to target class k:
///   | n_out(d_k) - n_target(d_k) | / n_target(d_k).
std::vector<double> per_degree_errors(const DegreeDistribution& target,
                                      const EdgeList& generated);

/// Pearson degree assortativity over edges (Newman [26]); NaN-free: returns
/// 0 for degenerate (constant-degree or empty) graphs.
double degree_assortativity(const EdgeList& edges);

/// Average of QualityErrors over several trials (helper for Figure 3).
QualityErrors average(const std::vector<QualityErrors>& samples);

}  // namespace nullgraph
