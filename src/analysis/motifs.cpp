#include "analysis/motifs.hpp"

#include <algorithm>
#include <cmath>

namespace nullgraph {

std::uint64_t count_triangles(const CsrGraph& graph) {
  const std::size_t n = graph.num_vertices();
  std::uint64_t triangles = 0;
  // For every ordered neighbour pair u < v, intersect N(u) and N(v) above
  // v: counts each triangle once per its smallest vertex.
#pragma omp parallel for reduction(+ : triangles) schedule(dynamic, 64)
  for (std::size_t u = 0; u < n; ++u) {
    const auto nu = graph.neighbors(static_cast<VertexId>(u));
    for (const VertexId v : nu) {
      if (v <= u) continue;
      const auto nv = graph.neighbors(v);
      // two-pointer intersection of the > v suffixes
      auto iu = std::lower_bound(nu.begin(), nu.end(), v + 1);
      auto iv = std::lower_bound(nv.begin(), nv.end(), v + 1);
      while (iu != nu.end() && iv != nv.end()) {
        if (*iu < *iv) {
          ++iu;
        } else if (*iv < *iu) {
          ++iv;
        } else {
          ++triangles;
          ++iu;
          ++iv;
        }
      }
    }
  }
  return triangles;
}

std::uint64_t count_wedges(const CsrGraph& graph) {
  const std::size_t n = graph.num_vertices();
  std::uint64_t wedges = 0;
#pragma omp parallel for reduction(+ : wedges) schedule(static)
  for (std::size_t v = 0; v < n; ++v) {
    const std::uint64_t d = graph.degree(static_cast<VertexId>(v));
    wedges += d * (d - 1) / 2;
  }
  return wedges;
}

double global_clustering(const CsrGraph& graph) {
  const std::uint64_t wedges = count_wedges(graph);
  if (wedges == 0) return 0.0;
  return 3.0 * static_cast<double>(count_triangles(graph)) /
         static_cast<double>(wedges);
}

double z_score(double observed, double mean, double stddev) {
  if (stddev <= 0.0) return 0.0;
  return (observed - mean) / stddev;
}

void EnsembleStats::add(double value) noexcept {
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double EnsembleStats::variance() const noexcept {
  return count_ > 0 ? m2_ / static_cast<double>(count_) : 0.0;
}

double EnsembleStats::stddev() const noexcept {
  return std::sqrt(variance());
}

}  // namespace nullgraph
