#include "analysis/motifs.hpp"

#include <algorithm>
#include <cmath>

#include "exec/exec.hpp"

namespace nullgraph {

std::uint64_t count_triangles(const CsrGraph& graph) {
  const std::size_t n = graph.num_vertices();
  // For every ordered neighbour pair u < v, intersect N(u) and N(v) above
  // v: counts each triangle once per its smallest vertex. Small grain —
  // per-vertex work is wildly uneven on skewed degree sequences.
  const exec::ParallelContext ctx;
  return exec::reduce<std::uint64_t>(
      ctx, n, 64, 0,
      [&](const exec::Chunk& chunk) {
        std::uint64_t mine = 0;
        for (std::size_t u = chunk.begin; u < chunk.end; ++u) {
          const auto nu = graph.neighbors(static_cast<VertexId>(u));
          for (const VertexId v : nu) {
            if (v <= u) continue;
            const auto nv = graph.neighbors(v);
            // two-pointer intersection of the > v suffixes
            auto iu = std::lower_bound(nu.begin(), nu.end(), v + 1);
            auto iv = std::lower_bound(nv.begin(), nv.end(), v + 1);
            while (iu != nu.end() && iv != nv.end()) {
              if (*iu < *iv) {
                ++iu;
              } else if (*iv < *iu) {
                ++iv;
              } else {
                ++mine;
                ++iu;
                ++iv;
              }
            }
          }
        }
        return mine;
      },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
}

std::uint64_t count_wedges(const CsrGraph& graph) {
  const std::size_t n = graph.num_vertices();
  const exec::ParallelContext ctx;
  return exec::reduce<std::uint64_t>(
      ctx, n, exec::kDefaultGrain, 0,
      [&](const exec::Chunk& chunk) {
        std::uint64_t mine = 0;
        for (std::size_t v = chunk.begin; v < chunk.end; ++v) {
          const std::uint64_t d = graph.degree(static_cast<VertexId>(v));
          mine += d * (d - 1) / 2;
        }
        return mine;
      },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
}

double global_clustering(const CsrGraph& graph) {
  const std::uint64_t wedges = count_wedges(graph);
  if (wedges == 0) return 0.0;
  return 3.0 * static_cast<double>(count_triangles(graph)) /
         static_cast<double>(wedges);
}

double z_score(double observed, double mean, double stddev) {
  if (stddev <= 0.0) return 0.0;
  return (observed - mean) / stddev;
}

void EnsembleStats::add(double value) noexcept {
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double EnsembleStats::variance() const noexcept {
  return count_ > 0 ? m2_ / static_cast<double>(count_) : 0.0;
}

double EnsembleStats::stddev() const noexcept {
  return std::sqrt(variance());
}

}  // namespace nullgraph
