#include "analysis/components.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>

namespace nullgraph {

UnionFind::UnionFind(std::size_t n)
    : parent_(n), size_(n, 1), num_sets_(n) {
  std::iota(parent_.begin(), parent_.end(), 0u);
}

std::uint32_t UnionFind::find(std::uint32_t v) noexcept {
  while (parent_[v] != v) {
    parent_[v] = parent_[parent_[v]];  // path halving
    v = parent_[v];
  }
  return v;
}

bool UnionFind::unite(std::uint32_t a, std::uint32_t b) noexcept {
  a = find(a);
  b = find(b);
  if (a == b) return false;
  if (size_[a] < size_[b]) std::swap(a, b);
  parent_[b] = a;
  size_[a] += size_[b];
  --num_sets_;
  return true;
}

ComponentSummary connected_components(const EdgeList& edges, std::size_t n) {
  if (n == 0) n = vertex_count(edges);
  ComponentSummary summary;
  UnionFind sets(n);
  for (const Edge& e : edges) sets.unite(e.u, e.v);
  summary.num_components = sets.num_sets();
  summary.component.resize(n);
  std::unordered_map<std::uint32_t, std::uint32_t> remap;
  remap.reserve(sets.num_sets());
  for (std::size_t v = 0; v < n; ++v) {
    const std::uint32_t root = sets.find(static_cast<std::uint32_t>(v));
    const auto [it, inserted] =
        remap.try_emplace(root, static_cast<std::uint32_t>(remap.size()));
    summary.component[v] = it->second;
    summary.largest_size =
        std::max(summary.largest_size,
                 sets.size_of(static_cast<std::uint32_t>(v)));
  }
  return summary;
}

bool is_connected(const EdgeList& edges, std::size_t n) {
  if (n == 0) n = vertex_count(edges);
  if (n == 0) return false;
  UnionFind sets(n);
  for (const Edge& e : edges) {
    sets.unite(e.u, e.v);
    if (sets.num_sets() == 1) return true;
  }
  return sets.num_sets() == 1;
}

}  // namespace nullgraph
