#include "gen/chung_lu.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "gen/datasets.hpp"

namespace nullgraph {
namespace {

DegreeDistribution small_dist() {
  return DegreeDistribution({{1, 400}, {2, 200}, {8, 50}, {40, 5}});
}

TEST(ChungLuMultigraph, ExactEdgeCount) {
  const DegreeDistribution dist = small_dist();
  const EdgeList edges = chung_lu_multigraph(dist);
  EXPECT_EQ(edges.size(), dist.num_edges());
}

TEST(ChungLuMultigraph, EndpointsInRange) {
  const DegreeDistribution dist = small_dist();
  const EdgeList edges = chung_lu_multigraph(dist);
  for (const Edge& e : edges) {
    EXPECT_LT(e.u, dist.num_vertices());
    EXPECT_LT(e.v, dist.num_vertices());
  }
}

TEST(ChungLuMultigraph, DeterministicPerSeed) {
  const DegreeDistribution dist = small_dist();
  ChungLuConfig config;
  config.seed = 4;
  const EdgeList a = chung_lu_multigraph(dist, config);
  const EdgeList b = chung_lu_multigraph(dist, config);
  EXPECT_TRUE(same_edge_multiset(a, b));
}

TEST(ChungLuMultigraph, ExpectedDegreesMatchTargets) {
  // Average over several graphs: the O(m) model matches in expectation.
  const DegreeDistribution dist = small_dist();
  std::vector<double> mean(dist.num_vertices(), 0.0);
  const int samples = 40;
  for (int s = 0; s < samples; ++s) {
    ChungLuConfig config;
    config.seed = 1000 + s;
    const auto degrees =
        degrees_of(chung_lu_multigraph(dist, config), dist.num_vertices());
    for (std::size_t v = 0; v < mean.size(); ++v)
      mean[v] += static_cast<double>(degrees[v]);
  }
  // Check the hub class (target degree 40) and the bulk (degree 1).
  const auto sequence = dist.to_degree_sequence();
  double hub_mean = 0.0;
  int hubs = 0;
  double leaf_mean = 0.0;
  int leaves = 0;
  for (std::size_t v = 0; v < mean.size(); ++v) {
    mean[v] /= samples;
    if (sequence[v] == 40) {
      hub_mean += mean[v];
      ++hubs;
    } else if (sequence[v] == 1) {
      leaf_mean += mean[v];
      ++leaves;
    }
  }
  EXPECT_NEAR(hub_mean / hubs, 40.0, 2.5);
  EXPECT_NEAR(leaf_mean / leaves, 1.0, 0.1);
}

class SamplerSweep : public ::testing::TestWithParam<ClSampler> {};

TEST_P(SamplerSweep, DegreeBiasMatchesWeights) {
  // Each sampler draws endpoints proportional to degree: the total stub
  // mass landing on the hub class must be close to its weight share.
  const DegreeDistribution dist({{1, 1000}, {50, 10}});
  ChungLuConfig config;
  config.sampler = GetParam();
  config.seed = 99;
  const EdgeList edges = chung_lu_multigraph(dist, config);
  std::uint64_t hub_endpoints = 0;
  for (const Edge& e : edges) {
    if (e.u >= 1000) ++hub_endpoints;
    if (e.v >= 1000) ++hub_endpoints;
  }
  const double share = 500.0 / 1500.0;  // hub stubs / total stubs
  const double draws = 2.0 * static_cast<double>(edges.size());
  const double sigma = std::sqrt(draws * share * (1 - share));
  EXPECT_NEAR(static_cast<double>(hub_endpoints), draws * share,
              5 * sigma);
}

INSTANTIATE_TEST_SUITE_P(AllSamplers, SamplerSweep,
                         ::testing::Values(ClSampler::kBinarySearchVertex,
                                           ClSampler::kBinarySearchClass,
                                           ClSampler::kAlias));

TEST(ErasedChungLu, OutputIsSimple) {
  const DegreeDistribution dist = small_dist();
  const EdgeList edges = erased_chung_lu(dist);
  EXPECT_TRUE(is_simple(edges));
  EXPECT_LE(edges.size(), dist.num_edges());
}

TEST(ErasedChungLu, LosesEdgesOnSkewedInput) {
  // The Figure 2 failure mode: erasure visibly undershoots m.
  const DegreeDistribution dist = as20_like();
  const EdgeList edges = erased_chung_lu(dist);
  EXPECT_LT(edges.size(), dist.num_edges());
}

TEST(BernoulliChungLu, SimpleByConstruction) {
  const DegreeDistribution dist = small_dist();
  const EdgeList edges = bernoulli_chung_lu(dist);
  EXPECT_TRUE(is_simple(edges));
}

TEST(BernoulliChungLu, EdgeCountNearTargetOnMildInput) {
  // Without cap saturation the Bernoulli CL expected edge count equals m
  // up to the diagonal correction.
  const DegreeDistribution dist({{4, 2000}});
  const EdgeList edges = bernoulli_chung_lu(dist, 3);
  const double m = static_cast<double>(dist.num_edges());
  EXPECT_NEAR(static_cast<double>(edges.size()), m, 5 * std::sqrt(m));
}

TEST(BernoulliChungLu, UndershootsOnSkewedInput) {
  // Cap saturation loses edge mass: the documented O(n^2)-edgeskip bias.
  const DegreeDistribution dist = as20_like();
  const EdgeList edges = bernoulli_chung_lu(dist, 3);
  EXPECT_LT(static_cast<double>(edges.size()),
            static_cast<double>(dist.num_edges()));
}

}  // namespace
}  // namespace nullgraph
