#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

namespace nullgraph {
namespace {

TEST(BlockRange, CoversEverythingOnce) {
  const std::size_t n = 103;
  const int blocks = 7;
  std::vector<int> hits(n, 0);
  std::size_t expected_begin = 0;
  for (int b = 0; b < blocks; ++b) {
    const auto [begin, end] = block_range(b, blocks, n);
    EXPECT_EQ(begin, expected_begin);
    for (std::size_t i = begin; i < end; ++i) ++hits[i];
    expected_begin = end;
  }
  EXPECT_EQ(expected_begin, n);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(BlockRange, BalancedWithinOne) {
  const std::size_t n = 1000;
  const int blocks = 7;
  std::size_t min_size = n, max_size = 0;
  for (int b = 0; b < blocks; ++b) {
    const auto [begin, end] = block_range(b, blocks, n);
    min_size = std::min(min_size, end - begin);
    max_size = std::max(max_size, end - begin);
  }
  EXPECT_LE(max_size - min_size, 1u);
}

TEST(BlockRange, MoreBlocksThanItems) {
  const std::size_t n = 3;
  const int blocks = 8;
  std::size_t total = 0;
  for (int b = 0; b < blocks; ++b) {
    const auto [begin, end] = block_range(b, blocks, n);
    total += end - begin;
  }
  EXPECT_EQ(total, n);
}

TEST(BlockRange, EmptyInput) {
  const auto [begin, end] = block_range(0, 4, 0);
  EXPECT_EQ(begin, end);
}

TEST(ConcatBuffers, MergesInOrder) {
  std::vector<std::vector<int>> buffers{{1, 2}, {}, {3}, {4, 5, 6}};
  const std::vector<int> merged = concat_buffers(buffers);
  EXPECT_EQ(merged, (std::vector<int>{1, 2, 3, 4, 5, 6}));
}

TEST(ConcatBuffers, AllEmpty) {
  std::vector<std::vector<int>> buffers(5);
  EXPECT_TRUE(concat_buffers(buffers).empty());
}

TEST(ConcatBuffers, LargeRoundTrip) {
  const int nb = 9;
  std::vector<std::vector<std::uint64_t>> buffers(nb);
  std::uint64_t next = 0;
  for (int b = 0; b < nb; ++b)
    for (int k = 0; k < 1000 + b; ++k) buffers[b].push_back(next++);
  const auto merged = concat_buffers(buffers);
  ASSERT_EQ(merged.size(), next);
  for (std::uint64_t i = 0; i < next; ++i) EXPECT_EQ(merged[i], i);
}

TEST(Threads, MaxThreadsPositive) { EXPECT_GE(max_threads(), 1); }

TEST(Threads, ThreadIdZeroOutsideParallel) { EXPECT_EQ(thread_id(), 0); }

}  // namespace
}  // namespace nullgraph
