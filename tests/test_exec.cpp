#include "exec/exec.hpp"

#include <gtest/gtest.h>
#include <omp.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "core/null_model.hpp"
#include "gen/chung_lu.hpp"
#include "lfr/lfr.hpp"
#include "skip/edge_skip.hpp"
#include "util/parallel.hpp"

namespace nullgraph {
namespace {

using exec::Chunk;
using exec::ParallelContext;

// ---------------------------------------------------------------- block_range

TEST(BlockRange, CoversSpaceExactlyOnceInOrder) {
  for (std::size_t n : {0ul, 1ul, 7ul, 64ul, 1000ul, 1001ul}) {
    for (std::size_t nblocks : {1ul, 2ul, 3ul, 7ul, 64ul}) {
      std::size_t expected_begin = 0;
      for (std::size_t b = 0; b < nblocks; ++b) {
        const auto [begin, end] = block_range(b, nblocks, n);
        EXPECT_EQ(begin, expected_begin) << "n=" << n << " b=" << b;
        EXPECT_LE(begin, end);
        expected_begin = end;
      }
      EXPECT_EQ(expected_begin, n) << "n=" << n << " nblocks=" << nblocks;
    }
  }
}

TEST(BlockRange, RemainderSpreadOverLeadingBlocks) {
  // 10 items over 4 blocks: sizes 3,3,2,2 — differ by at most one, larger
  // blocks first.
  const std::size_t n = 10, nblocks = 4;
  std::vector<std::size_t> sizes;
  for (std::size_t b = 0; b < nblocks; ++b) {
    const auto [begin, end] = block_range(b, nblocks, n);
    sizes.push_back(end - begin);
  }
  EXPECT_EQ(sizes, (std::vector<std::size_t>{3, 3, 2, 2}));
}

TEST(BlockRange, MoreBlocksThanItemsYieldsEmptyTrailingBlocks) {
  // n < nblocks: the first n blocks get one item each, the rest are empty.
  const std::size_t n = 3, nblocks = 8;
  for (std::size_t b = 0; b < nblocks; ++b) {
    const auto [begin, end] = block_range(b, nblocks, n);
    EXPECT_EQ(end - begin, b < n ? 1u : 0u) << "b=" << b;
  }
}

TEST(BlockRange, ZeroItemsEveryBlockEmpty) {
  for (std::size_t b = 0; b < 5; ++b) {
    const auto [begin, end] = block_range(b, std::size_t{5}, std::size_t{0});
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 0u);
  }
}

TEST(BlockRange, IntOverloadMatchesSizeTOverload) {
  for (int b = 0; b < 7; ++b) {
    const auto a = block_range(b, 7, std::size_t{1000});
    const auto s = block_range(static_cast<std::size_t>(b), std::size_t{7},
                               std::size_t{1000});
    EXPECT_EQ(a, s);
  }
}

// ------------------------------------------------------- chunk layout helpers

TEST(ExecChunks, NumChunksIsCeilDivision) {
  EXPECT_EQ(exec::num_chunks(0, 16), 0u);
  EXPECT_EQ(exec::num_chunks(1, 16), 1u);
  EXPECT_EQ(exec::num_chunks(16, 16), 1u);
  EXPECT_EQ(exec::num_chunks(17, 16), 2u);
  EXPECT_EQ(exec::num_chunks(100, 0), 100u);  // grain 0 degrades to 1
}

TEST(ExecChunks, BalancedGrainYieldsAtMostParts) {
  for (std::size_t n : {1ul, 5ul, 100ul, 1000ul}) {
    for (std::size_t parts : {1ul, 3ul, 8ul}) {
      const std::size_t grain = exec::balanced_grain(n, parts);
      EXPECT_LE(exec::num_chunks(n, grain), parts);
    }
  }
  EXPECT_GE(exec::balanced_grain(0, 4), 1u);
  EXPECT_GE(exec::balanced_grain(5, 0), 1u);
}

TEST(ExecChunks, ChunkSeedDependsOnSeedAndIndexOnly) {
  EXPECT_EQ(exec::chunk_seed(7, 3), exec::chunk_seed(7, 3));
  EXPECT_NE(exec::chunk_seed(7, 3), exec::chunk_seed(7, 4));
  EXPECT_NE(exec::chunk_seed(7, 3), exec::chunk_seed(8, 3));
}

TEST(ExecChunks, ChunkRngStreamIsReproducible) {
  const Chunk chunk{5, 100, 200, 42};
  Xoshiro256ss a = chunk.rng();
  Xoshiro256ss b = chunk.rng();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), b.next());
  EXPECT_EQ(chunk.size(), 100u);
}

// ------------------------------------------------------------- for_chunks

TEST(ForChunks, VisitsEveryIndexExactlyOnce) {
  const std::size_t n = 10'000;
  std::vector<int> visits(n, 0);
  const ParallelContext ctx;
  exec::for_chunks(ctx, n, 64, [&](const Chunk& chunk) {
    for (std::size_t i = chunk.begin; i < chunk.end; ++i) ++visits[i];
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(visits[i], 1) << i;
}

TEST(ForChunks, EmptyRangeRunsNoBody) {
  bool ran = false;
  const ParallelContext ctx;
  exec::for_chunks(ctx, 0, 64, [&](const Chunk&) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ForChunks, ChunkIndicesMatchBlockRangeLayout) {
  const std::size_t n = 1001, grain = 64;
  const std::size_t nchunks = exec::num_chunks(n, grain);
  std::vector<std::pair<std::size_t, std::size_t>> ranges(nchunks);
  const ParallelContext ctx;
  exec::for_chunks(ctx, n, grain, [&](const Chunk& chunk) {
    ranges[chunk.index] = {chunk.begin, chunk.end};
  });
  for (std::size_t c = 0; c < nchunks; ++c)
    EXPECT_EQ(ranges[c], block_range(c, nchunks, n)) << c;
}

TEST(ForChunks, StoppedGovernorSkipsAllChunksAndCountsThem) {
  const RunGovernor governor;
  governor.note_stop(StatusCode::kCancelled);
  exec::PhaseTimingSink sink;
  ParallelContext ctx;
  ctx.governor = &governor;
  ctx.timings = &sink;
  ctx.phase = "skiptest";
  std::atomic<int> ran{0};
  exec::for_chunks(ctx, 1000, 100, [&](const Chunk&) { ++ran; });
  EXPECT_EQ(ran.load(), 0);
  const auto rows = sink.snapshot();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].phase, "skiptest");
  EXPECT_EQ(rows[0].chunks, 10u);
  EXPECT_EQ(rows[0].chunks_skipped, 10u);
}

TEST(ForChunks, TimingSinkAggregatesLoopsByPhaseName) {
  exec::PhaseTimingSink sink;
  ParallelContext ctx;
  ctx.timings = &sink;
  ctx.phase = "phase-a";
  exec::for_chunks(ctx, 100, 10, [](const Chunk&) {});
  exec::for_chunks(ctx, 50, 10, [](const Chunk&) {});
  exec::for_chunks(ctx.with_phase("phase-b"), 10, 10, [](const Chunk&) {});
  const auto rows = sink.snapshot();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].phase, "phase-a");
  EXPECT_EQ(rows[0].loops, 2u);
  EXPECT_EQ(rows[0].chunks, 15u);
  EXPECT_EQ(rows[1].phase, "phase-b");
  EXPECT_EQ(rows[1].loops, 1u);
}

// --------------------------------------------------------- collect / reduce

std::vector<std::uint64_t> collect_draws(int threads, std::uint64_t seed) {
  ParallelContext ctx;
  ctx.threads = threads;
  ctx.seed = seed;
  return exec::collect<std::uint64_t>(
      ctx, 50'000, 1 << 10, [](const Chunk& chunk, auto& out) {
        Xoshiro256ss rng = chunk.rng();
        for (std::size_t i = chunk.begin; i < chunk.end; ++i)
          out.push_back(rng.next());
      });
}

TEST(Collect, OutputIdenticalAtOneTwoEightThreads) {
  const auto one = collect_draws(1, 99);
  const auto two = collect_draws(2, 99);
  const auto eight = collect_draws(8, 99);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
  EXPECT_NE(one, collect_draws(1, 100));  // the seed does matter
}

TEST(Collect, VariableLengthChunkOutputKeepsChunkOrder) {
  // Chunk c emits c copies of c: the concatenation must be sorted.
  ParallelContext ctx;
  const auto out = exec::collect<std::size_t>(
      ctx, 100, 1, [](const Chunk& chunk, auto& buffer) {
        for (std::size_t k = 0; k < chunk.index; ++k)
          buffer.push_back(chunk.index);
      });
  EXPECT_EQ(out.size(), 99u * 100u / 2u);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
}

TEST(Collect, StoppedGovernorYieldsEmptyOutput) {
  const RunGovernor governor;
  governor.note_stop(StatusCode::kDeadlineExceeded);
  ParallelContext ctx;
  ctx.governor = &governor;
  const auto out = exec::collect<int>(
      ctx, 1000, 10, [](const Chunk&, auto& buffer) { buffer.push_back(1); });
  EXPECT_TRUE(out.empty());
}

double reduce_float_sum(int threads) {
  ParallelContext ctx;
  ctx.threads = threads;
  // Values spanning many magnitudes: a thread-order-dependent combine would
  // give different roundoff on different thread counts.
  return exec::reduce<double>(
      ctx, 200'000, 1 << 10, 0.0,
      [](const Chunk& chunk) {
        double mine = 0.0;
        for (std::size_t i = chunk.begin; i < chunk.end; ++i)
          mine += std::exp(-static_cast<double>(i % 37)) * (i + 1);
        return mine;
      },
      [](double a, double b) { return a + b; });
}

TEST(Reduce, FloatingPointSumBitIdenticalAcrossThreadCounts) {
  const double one = reduce_float_sum(1);
  EXPECT_EQ(one, reduce_float_sum(2));
  EXPECT_EQ(one, reduce_float_sum(8));
}

TEST(Reduce, SumMatchesSerialReference) {
  const std::size_t n = 12'345;
  const ParallelContext ctx;
  const std::uint64_t total = exec::reduce<std::uint64_t>(
      ctx, n, 100, 0,
      [](const Chunk& chunk) {
        std::uint64_t mine = 0;
        for (std::size_t i = chunk.begin; i < chunk.end; ++i) mine += i;
        return mine;
      },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  EXPECT_EQ(total, n * (n - 1) / 2);
}

TEST(Reduce, StoppedGovernorKeepsIdentity) {
  const RunGovernor governor;
  governor.note_stop(StatusCode::kCancelled);
  ParallelContext ctx;
  ctx.governor = &governor;
  const int result = exec::reduce<int>(
      ctx, 1000, 10, -7, [](const Chunk&) { return 1000; },
      [](int a, int b) { return a + b; });
  // 100 skipped chunks each keep the identity; the fold of identities is
  // whatever combine makes of them — for + that's 101 * identity.
  EXPECT_EQ(result, -7 * 101);
}

TEST(Reduce, BenchHelpersAgree) {
  std::vector<std::uint64_t> values(100'000);
  std::iota(values.begin(), values.end(), 17u);
  EXPECT_EQ(exec::detail::raw_omp_hash_sum(values.data(), values.size(), 4096),
            exec::detail::exec_hash_sum(values.data(), values.size(), 4096));
}

// ----------------------------------- thread-count invariance of generators

class ThreadSweep : public ::testing::Test {
 protected:
  void SetUp() override { saved_threads_ = omp_get_max_threads(); }
  void TearDown() override { omp_set_num_threads(saved_threads_); }
  int saved_threads_ = 1;
};

DegreeDistribution sweep_dist() {
  return DegreeDistribution({{1, 500}, {2, 300}, {5, 120}, {16, 30}, {50, 6}});
}

TEST_F(ThreadSweep, EdgeSkipBitIdenticalAtAnyThreadCount) {
  const DegreeDistribution dist = sweep_dist();
  const ProbabilityMatrix P =
      generate_probabilities(dist, ProbabilityMethod::kGreedyAllocation);
  EdgeSkipConfig config;
  config.seed = 21;
  std::vector<EdgeList> runs;
  for (int threads : {1, 2, 8}) {
    omp_set_num_threads(threads);
    runs.push_back(edge_skip_generate(P, dist, config));
  }
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
}

TEST_F(ThreadSweep, ChungLuMultigraphBitIdenticalAtAnyThreadCount) {
  const DegreeDistribution dist = sweep_dist();
  ChungLuConfig config;
  config.seed = 33;
  std::vector<EdgeList> runs;
  for (int threads : {1, 2, 8}) {
    omp_set_num_threads(threads);
    runs.push_back(chung_lu_multigraph(dist, config));
  }
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
}

TEST_F(ThreadSweep, FullPipelineSameEdgeMultisetAtAnyThreadCount) {
  const DegreeDistribution dist = sweep_dist();
  GenerateConfig config;
  config.seed = 5;
  config.swap_iterations = 0;  // swap phase is MCMC over a shared table
  std::vector<EdgeList> runs;
  for (int threads : {1, 2, 8}) {
    omp_set_num_threads(threads);
    runs.push_back(generate_null_graph(dist, config).edges);
  }
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
}

// --------------------------------------------- governance coverage (library)

TEST(GovernanceCoverage, PreCancelledTokenCurtailsGenerate) {
  GenerateConfig config;
  config.governance.enabled = true;
  config.governance.cancel.request_cancel();
  const GenerateResult result = generate_null_graph(sweep_dist(), config);
  ASSERT_FALSE(result.report.curtailments.empty());
  EXPECT_EQ(result.report.curtailments.front().reason, StatusCode::kCancelled);
}

TEST(GovernanceCoverage, PhaseTimingsRecordedInPipelineReport) {
  GenerateConfig config;
  config.seed = 3;
  config.swap_iterations = 2;
  const GenerateResult result = generate_null_graph(sweep_dist(), config);
  ASSERT_FALSE(result.report.phase_timings.empty());
  bool saw_edge_generation = false;
  for (const auto& row : result.report.phase_timings) {
    EXPECT_GT(row.loops, 0u);
    if (row.phase == "edge generation") saw_edge_generation = true;
  }
  EXPECT_TRUE(saw_edge_generation);
}

TEST(GovernanceCoverage, ExternalGovernorOverridesLocalConfig) {
  const RunGovernor external;
  external.note_stop(StatusCode::kDeadlineExceeded);
  GenerateConfig config;
  config.governance.enabled = false;  // external must win regardless
  config.governance.external = &external;
  const GenerateResult result = generate_null_graph(sweep_dist(), config);
  ASSERT_FALSE(result.report.curtailments.empty());
  EXPECT_EQ(result.report.curtailments.front().reason,
            StatusCode::kDeadlineExceeded);
}

TEST(GovernanceCoverage, PreCancelledTokenCurtailsLfr) {
  LfrParams params;
  params.n = 2000;
  params.cmin = 40;
  params.cmax = 200;
  params.governance.enabled = true;
  params.governance.cancel.request_cancel();
  const LfrGraph graph = generate_lfr(params);
  EXPECT_EQ(graph.curtailed, StatusCode::kCancelled);
  EXPECT_EQ(graph.communities_completed, 0u);
}

TEST(GovernanceCoverage, UngovernedLfrCompletesAllLayers) {
  LfrParams params;
  params.n = 2000;
  params.cmin = 40;
  params.cmax = 200;
  const LfrGraph graph = generate_lfr(params);
  EXPECT_EQ(graph.curtailed, StatusCode::kOk);
  EXPECT_EQ(graph.communities_completed, graph.num_communities);
}

}  // namespace
}  // namespace nullgraph
