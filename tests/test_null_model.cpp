#include "core/null_model.hpp"

#include <gtest/gtest.h>
#include <omp.h>

#include <algorithm>
#include <cmath>

#include "analysis/metrics.hpp"
#include "gen/datasets.hpp"
#include "gen/powerlaw.hpp"
#include "skip/erdos_renyi.hpp"

namespace nullgraph {
namespace {

TEST(GenerateNullGraph, OutputIsSimple) {
  const DegreeDistribution dist = as20_like();
  const GenerateResult result = generate_null_graph(dist);
  EXPECT_TRUE(is_simple(result.edges));
}

TEST(GenerateNullGraph, EdgeCountCloseToTarget) {
  const DegreeDistribution dist = as20_like();
  const GenerateResult result = generate_null_graph(dist);
  const double m = static_cast<double>(dist.num_edges());
  EXPECT_NEAR(static_cast<double>(result.edges.size()), m, 0.03 * m);
}

TEST(GenerateNullGraph, MaxDegreeCloseToTarget) {
  const DegreeDistribution dist = as20_like();
  const GenerateResult result = generate_null_graph(dist);
  const QualityErrors errors = quality_errors(dist, result.edges);
  EXPECT_LT(errors.max_degree, 0.05);
}

TEST(GenerateNullGraph, RecordsAllThreePhases) {
  const DegreeDistribution dist({{2, 500}, {6, 100}});
  const GenerateResult result = generate_null_graph(dist);
  ASSERT_EQ(result.timing.phases().size(), 3u);
  EXPECT_EQ(result.timing.phases()[0].first, "probabilities");
  EXPECT_EQ(result.timing.phases()[1].first, "edge generation");
  EXPECT_EQ(result.timing.phases()[2].first, "swaps");
}

TEST(GenerateNullGraph, SwapStatsMatchIterations) {
  const DegreeDistribution dist({{2, 500}, {6, 100}});
  GenerateConfig config;
  config.swap_iterations = 7;
  const GenerateResult result = generate_null_graph(dist, config);
  EXPECT_EQ(result.swap_stats.iterations.size(), 7u);
}

TEST(GenerateNullGraph, DeterministicPerSeed) {
  // The swap phase resolves rare candidate collisions by atomic race, so
  // strict determinism is a single-thread contract (see README); pin it.
  const int saved_threads = omp_get_max_threads();
  omp_set_num_threads(1);
  const DegreeDistribution dist({{2, 500}, {6, 100}});
  GenerateConfig config;
  config.seed = 31;
  const GenerateResult a = generate_null_graph(dist, config);
  const GenerateResult b = generate_null_graph(dist, config);
  EXPECT_TRUE(same_edge_multiset(a.edges, b.edges));
  omp_set_num_threads(saved_threads);
}

TEST(GenerateNullGraph, ProbabilityDiagnosticsExposed) {
  const DegreeDistribution dist = as20_like();
  const GenerateResult result = generate_null_graph(dist);
  EXPECT_LT(result.probability_diagnostics.relative_edge_error, 0.02);
  EXPECT_LE(result.probability_diagnostics.max_probability, 1.0 + 1e-12);
}

class MethodSweep : public ::testing::TestWithParam<ProbabilityMethod> {};

TEST_P(MethodSweep, AllProbabilityMethodsProduceSimpleGraphs) {
  const DegreeDistribution dist = as20_like();
  GenerateConfig config;
  config.probability_method = GetParam();
  config.swap_iterations = 2;
  const GenerateResult result = generate_null_graph(dist, config);
  EXPECT_TRUE(is_simple(result.edges));
  EXPECT_GT(result.edges.size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Methods, MethodSweep,
                         ::testing::Values(
                             ProbabilityMethod::kGreedyAllocation,
                             ProbabilityMethod::kPaperStubMatching,
                             ProbabilityMethod::kChungLu));

TEST(ShuffleGraph, PreservesDegreesExactly) {
  EdgeList original = erdos_renyi(1000, 0.01, 5);
  auto degrees_before = degrees_of(original, 1000);
  const GenerateResult result = shuffle_graph(original);
  EXPECT_TRUE(is_simple(result.edges));
  EXPECT_EQ(degrees_of(result.edges, 1000), degrees_before);
}

TEST(ShuffleGraph, RewiresTopology) {
  EdgeList original = erdos_renyi(1000, 0.01, 6);
  const EdgeList copy = original;
  const GenerateResult result = shuffle_graph(std::move(original));
  EXPECT_FALSE(same_edge_multiset(result.edges, copy));
}

TEST(GenerateForSequence, TargetsCallerIndexing) {
  // Vertex 0 is the hub; after relabeling its expected degree must be the
  // largest. Use a deterministic skew to make the check crisp.
  std::vector<std::uint64_t> degrees{50, 1, 1, 1, 1, 1};
  degrees.resize(56, 1);  // 50 stubs for the hub + 55 leaves, even total
  // total = 50 + 55 = 105, odd: bump one leaf to 2.
  degrees[1] = 2;
  GenerateConfig config;
  config.swap_iterations = 2;
  const GenerateResult result = generate_for_sequence(degrees, config);
  const auto realized = degrees_of(result.edges, degrees.size());
  std::uint64_t best = 0;
  for (std::uint64_t d : realized) best = std::max(best, d);
  EXPECT_EQ(realized[0], best);  // the hub kept its identity
  EXPECT_GT(realized[0], 30u);
}

TEST(GenerateForSequence, AverageDegreesConvergeToTargets) {
  const std::vector<std::uint64_t> degrees{8, 4, 4, 2, 2, 2, 1, 1, 1, 1,
                                           1, 1, 1, 1, 1, 1, 1, 1};
  std::vector<double> mean(degrees.size(), 0.0);
  const int samples = 60;
  for (int s = 0; s < samples; ++s) {
    GenerateConfig config;
    config.seed = 100 + s;
    config.swap_iterations = 2;
    const GenerateResult result = generate_for_sequence(degrees, config);
    const auto realized = degrees_of(result.edges, degrees.size());
    for (std::size_t v = 0; v < mean.size(); ++v)
      mean[v] += static_cast<double>(realized[v]);
  }
  for (std::size_t v = 0; v < mean.size(); ++v) {
    mean[v] /= samples;
    EXPECT_NEAR(mean[v], static_cast<double>(degrees[v]),
                std::max(1.0, 0.35 * static_cast<double>(degrees[v])))
        << "vertex " << v;
  }
}

TEST(GenerateNullGraph, LargePowerlawEndToEnd) {
  PowerlawParams params;
  params.n = 50000;
  params.gamma = 2.4;
  params.dmax = 500;
  const DegreeDistribution dist = powerlaw_distribution(params);
  GenerateConfig config;
  config.swap_iterations = 3;
  const GenerateResult result = generate_null_graph(dist, config);
  EXPECT_TRUE(is_simple(result.edges));
  const QualityErrors errors = quality_errors(dist, result.edges);
  EXPECT_LT(errors.edge_count, 0.02);
  EXPECT_LT(errors.max_degree, 0.05);
  // Gini has an inherent floor: every expectation-matching Bernoulli
  // generator Poisson-smears the low degrees (target degree-1 vertices
  // realize degree 0 ~37% of the time), inflating inequality — the
  // low-degree error the paper's discussion concedes for all Chung-Lu
  // style generators. Assert it stays within that known regime.
  EXPECT_LT(errors.gini, 0.5);
}


TEST(GenerateNullGraph, RefinementPathRuns) {
  // Chung-Lu probabilities + fixed-point refinement through the public
  // config: output must be simple and edge count repaired vs raw CL.
  const DegreeDistribution dist = as20_like();
  GenerateConfig config;
  config.probability_method = ProbabilityMethod::kChungLu;
  config.refine_iterations = 16;
  config.swap_iterations = 1;
  const GenerateResult refined = generate_null_graph(dist, config);
  config.refine_iterations = 0;
  const GenerateResult raw = generate_null_graph(dist, config);
  EXPECT_TRUE(is_simple(refined.edges));
  const double m = static_cast<double>(dist.num_edges());
  const double refined_err =
      std::abs(static_cast<double>(refined.edges.size()) - m) / m;
  const double raw_err =
      std::abs(static_cast<double>(raw.edges.size()) - m) / m;
  EXPECT_LT(refined_err, raw_err);
}

}  // namespace
}  // namespace nullgraph
