#include "analysis/gini.hpp"

#include <gtest/gtest.h>

#include "gen/powerlaw.hpp"

namespace nullgraph {
namespace {

TEST(Gini, UniformValuesAreZero) {
  EXPECT_NEAR(gini_coefficient(std::vector<std::uint64_t>(100, 7)), 0.0,
              1e-12);
}

TEST(Gini, EmptyAndZeroInputs) {
  EXPECT_DOUBLE_EQ(gini_coefficient(std::vector<std::uint64_t>{}), 0.0);
  EXPECT_DOUBLE_EQ(gini_coefficient(std::vector<std::uint64_t>(5, 0)), 0.0);
}

TEST(Gini, SingleHubApproachesOne) {
  std::vector<std::uint64_t> values(1000, 0);
  values[0] = 1000;
  EXPECT_GT(gini_coefficient(values), 0.99);
}

TEST(Gini, KnownSmallExample) {
  // x = {1, 3}: G = mean abs diff / (2 * mean) = 2 / (2*2) = 0.5... per the
  // population formula: sum|xi-xj| = 2*|1-3| = 4; 2 n^2 mu = 2*4*2 = 16;
  // G = 4/16 = 0.25.
  EXPECT_NEAR(gini_coefficient(std::vector<std::uint64_t>{1, 3}), 0.25,
              1e-12);
}

TEST(Gini, OrderInsensitive) {
  EXPECT_DOUBLE_EQ(gini_coefficient(std::vector<std::uint64_t>{5, 1, 3}),
                   gini_coefficient(std::vector<std::uint64_t>{3, 5, 1}));
}

TEST(Gini, DistributionFormMatchesSequenceForm) {
  PowerlawParams params;
  params.n = 20000;
  params.gamma = 2.2;
  params.dmax = 300;
  const DegreeDistribution dist = powerlaw_distribution(params);
  const double from_dist = gini_coefficient(dist);
  const double from_sequence = gini_coefficient(dist.to_degree_sequence());
  EXPECT_NEAR(from_dist, from_sequence, 1e-9);
}

TEST(Gini, SkewedBeatsFlat) {
  PowerlawParams flat;
  flat.n = 5000;
  flat.gamma = 4.0;
  flat.dmax = 20;
  PowerlawParams skewed;
  skewed.n = 5000;
  skewed.gamma = 1.8;
  skewed.dmax = 500;
  EXPECT_GT(gini_coefficient(powerlaw_distribution(skewed)),
            gini_coefficient(powerlaw_distribution(flat)));
}

TEST(Gini, ScaleInvariant) {
  const std::vector<std::uint64_t> base{1, 2, 3, 4, 10};
  std::vector<std::uint64_t> scaled;
  for (std::uint64_t v : base) scaled.push_back(v * 7);
  EXPECT_NEAR(gini_coefficient(base), gini_coefficient(scaled), 1e-12);
}

}  // namespace
}  // namespace nullgraph
