#include "ds/edge.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace nullgraph {
namespace {

TEST(Edge, CanonicalOrdersEndpoints) {
  EXPECT_EQ((Edge{5, 3}.canonical()), (Edge{3, 5}));
  EXPECT_EQ((Edge{3, 5}.canonical()), (Edge{3, 5}));
  EXPECT_EQ((Edge{4, 4}.canonical()), (Edge{4, 4}));
}

TEST(Edge, LoopDetection) {
  EXPECT_TRUE((Edge{7, 7}.is_loop()));
  EXPECT_FALSE((Edge{7, 8}.is_loop()));
  EXPECT_TRUE((Edge{0, 0}.is_loop()));
}

TEST(Edge, KeyIsOrientationInvariant) {
  EXPECT_EQ((Edge{1, 2}.key()), (Edge{2, 1}.key()));
  EXPECT_NE((Edge{1, 2}.key()), (Edge{1, 3}.key()));
}

TEST(Edge, KeyRoundTrips) {
  const Edge e{123456, 654321};
  EXPECT_EQ(Edge::from_key(e.key()), e.canonical());
}

TEST(Edge, KeyPacksMinHigh) {
  const Edge e{2, 1};
  EXPECT_EQ(e.key(), (static_cast<EdgeKey>(1) << 32) | 2u);
}

TEST(Edge, ExtremeVertexIds) {
  const VertexId big = 0xfffffffeu;
  const Edge e{big, 0};
  EXPECT_EQ(Edge::from_key(e.key()), (Edge{0, big}));
}

TEST(Edge, KeyInjectiveOnCanonicalPairs) {
  std::unordered_set<EdgeKey> keys;
  for (VertexId u = 0; u < 40; ++u)
    for (VertexId v = u; v < 40; ++v) keys.insert(Edge{u, v}.key());
  EXPECT_EQ(keys.size(), 40u * 41u / 2u);
}

TEST(Edge, CanonicalLessIsStrictWeakOrder) {
  const Edge a{1, 2}, b{2, 1}, c{1, 3};
  EXPECT_FALSE(canonical_less(a, b));
  EXPECT_FALSE(canonical_less(b, a));
  EXPECT_TRUE(canonical_less(a, c));
  EXPECT_FALSE(canonical_less(c, a));
}

TEST(Edge, StdHashUsesCanonicalForm) {
  const std::hash<Edge> hasher;
  EXPECT_EQ(hasher(Edge{9, 4}), hasher(Edge{4, 9}));
}

}  // namespace
}  // namespace nullgraph
