#include "util/timer.hpp"

#include <gtest/gtest.h>

namespace nullgraph {
namespace {

TEST(Stopwatch, MeasuresNonNegative) {
  Stopwatch watch;
  EXPECT_GE(watch.seconds(), 0.0);
}

TEST(Stopwatch, ResetRestarts) {
  Stopwatch watch;
  double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GT(sink, 0.0);  // keeps the busy-wait from being optimized out
  const double before = watch.seconds();
  watch.reset();
  EXPECT_LE(watch.seconds(), before + 1.0);
}

TEST(PhaseTimer, RecordsPhases) {
  PhaseTimer timer;
  timer.start("a");
  timer.stop();
  timer.start("b");
  timer.stop();
  EXPECT_EQ(timer.phases().size(), 2u);
  EXPECT_GE(timer.seconds("a"), 0.0);
  EXPECT_GE(timer.seconds("b"), 0.0);
}

TEST(PhaseTimer, UnknownPhaseIsZero) {
  PhaseTimer timer;
  EXPECT_EQ(timer.seconds("never"), 0.0);
}

TEST(PhaseTimer, RepeatedPhaseAccumulates) {
  PhaseTimer timer;
  timer.start("x");
  timer.stop();
  const double first = timer.seconds("x");
  timer.start("x");
  double sink = 0;
  for (int i = 0; i < 10000; ++i) sink += i;
  EXPECT_GT(sink, 0.0);  // keeps the busy-wait from being optimized out
  timer.stop();
  EXPECT_GE(timer.seconds("x"), first);
  EXPECT_EQ(timer.phases().size(), 1u);
}

TEST(PhaseTimer, StopWithoutStartIsNoop) {
  PhaseTimer timer;
  timer.stop();
  EXPECT_TRUE(timer.phases().empty());
}

TEST(PhaseTimer, TotalIsSumOfPhases) {
  PhaseTimer timer;
  timer.start("a");
  timer.stop();
  timer.start("b");
  timer.stop();
  EXPECT_DOUBLE_EQ(timer.total_seconds(),
                   timer.seconds("a") + timer.seconds("b"));
}

}  // namespace
}  // namespace nullgraph
