#include "ds/csr_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.hpp"

namespace nullgraph {
namespace {

TEST(CsrGraph, TriangleAdjacency) {
  const EdgeList edges{{0, 1}, {1, 2}, {2, 0}};
  const CsrGraph graph(edges);
  EXPECT_EQ(graph.num_vertices(), 3u);
  EXPECT_EQ(graph.num_edges(), 3u);
  for (VertexId v = 0; v < 3; ++v) EXPECT_EQ(graph.degree(v), 2u);
  const auto n0 = graph.neighbors(0);
  EXPECT_EQ(std::vector<VertexId>(n0.begin(), n0.end()),
            (std::vector<VertexId>{1, 2}));
}

TEST(CsrGraph, RowsSortedByDefault) {
  const EdgeList edges{{0, 3}, {0, 1}, {0, 2}};
  const CsrGraph graph(edges);
  const auto row = graph.neighbors(0);
  EXPECT_TRUE(std::is_sorted(row.begin(), row.end()));
  EXPECT_TRUE(graph.rows_sorted());
}

TEST(CsrGraph, UnsortedOptionSkipsSort) {
  const EdgeList edges{{0, 3}, {0, 1}};
  const CsrGraph graph(edges, 0, /*sort_rows=*/false);
  EXPECT_FALSE(graph.rows_sorted());
  EXPECT_EQ(graph.degree(0), 2u);
}

TEST(CsrGraph, HasEdgeBothDirections) {
  const EdgeList edges{{0, 1}, {2, 1}};
  const CsrGraph graph(edges);
  EXPECT_TRUE(graph.has_edge(0, 1));
  EXPECT_TRUE(graph.has_edge(1, 0));
  EXPECT_TRUE(graph.has_edge(1, 2));
  EXPECT_FALSE(graph.has_edge(0, 2));
}

TEST(CsrGraph, SelfLoopAppearsTwiceInRow) {
  const EdgeList edges{{0, 0}};
  const CsrGraph graph(edges);
  EXPECT_EQ(graph.degree(0), 2u);
  const auto row = graph.neighbors(0);
  EXPECT_EQ(row[0], 0u);
  EXPECT_EQ(row[1], 0u);
}

TEST(CsrGraph, ExplicitVertexCountAddsIsolated) {
  const EdgeList edges{{0, 1}};
  const CsrGraph graph(edges, 10);
  EXPECT_EQ(graph.num_vertices(), 10u);
  EXPECT_EQ(graph.degree(9), 0u);
  EXPECT_TRUE(graph.neighbors(9).empty());
}

TEST(CsrGraph, EmptyEdgeList) {
  const CsrGraph graph(EdgeList{}, 4);
  EXPECT_EQ(graph.num_vertices(), 4u);
  EXPECT_EQ(graph.num_edges(), 0u);
}

TEST(CsrGraph, RandomGraphDegreesMatchEdgeList) {
  Xoshiro256ss rng(2024);
  EdgeList edges;
  const std::size_t n = 500;
  for (int i = 0; i < 20000; ++i) {
    edges.push_back({static_cast<VertexId>(rng.bounded(n)),
                     static_cast<VertexId>(rng.bounded(n))});
  }
  const CsrGraph graph(edges, n);
  const auto degrees = degrees_of(edges, n);
  for (std::size_t v = 0; v < n; ++v)
    EXPECT_EQ(graph.degree(static_cast<VertexId>(v)), degrees[v]);
  EXPECT_EQ(graph.num_edges(), edges.size());
}

}  // namespace
}  // namespace nullgraph
