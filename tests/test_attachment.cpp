#include "analysis/attachment.hpp"

#include <gtest/gtest.h>

#include "gen/havel_hakimi.hpp"
#include "skip/erdos_renyi.hpp"

namespace nullgraph {
namespace {

TEST(EmpiricalAttachment, CompleteGraphSaturates) {
  const DegreeDistribution dist({{4, 5}});  // K5
  const EdgeList edges = havel_hakimi(dist);
  const ProbabilityMatrix P = empirical_attachment(edges, dist);
  EXPECT_NEAR(P.at(0, 0), 1.0, 1e-12);
}

TEST(EmpiricalAttachment, CrossClassCounting) {
  // Star: hub class {4,1}, leaf class {1,4}; our convention numbers leaves
  // 0..3 and the hub 4. All 4 edges are cross-class.
  const DegreeDistribution dist({{1, 4}, {4, 1}});
  const EdgeList star{{4, 0}, {4, 1}, {4, 2}, {4, 3}};
  const ProbabilityMatrix P = empirical_attachment(star, dist);
  EXPECT_NEAR(P.at(1, 0), 1.0, 1e-12);  // all hub-leaf pairs realized
  EXPECT_NEAR(P.at(0, 0), 0.0, 1e-12);  // no leaf-leaf edges
}

TEST(AttachmentAccumulator, AveragesOverSamples) {
  const DegreeDistribution dist({{1, 2}});
  AttachmentAccumulator acc(dist);
  acc.add({{0, 1}});  // edge present
  acc.add({});        // edge absent
  EXPECT_EQ(acc.num_samples(), 2u);
  EXPECT_NEAR(acc.average().at(0, 0), 0.5, 1e-12);
}

TEST(AttachmentAccumulator, EmptyAverageIsZero) {
  const DegreeDistribution dist({{1, 2}});
  const AttachmentAccumulator acc(dist);
  EXPECT_EQ(acc.num_samples(), 0u);
  EXPECT_DOUBLE_EQ(acc.average().at(0, 0), 0.0);
}

TEST(EmpiricalAttachment, ErdosRenyiRecoversP) {
  // Uniform p over a single class: the measured attachment probability is
  // a consistent estimator of p.
  const DegreeDistribution dist({{2, 2000}});
  AttachmentAccumulator acc(dist);
  const double p = 0.002;
  for (int s = 0; s < 10; ++s)
    acc.add(erdos_renyi(2000, p, 100 + s));
  EXPECT_NEAR(acc.average().at(0, 0), p, 0.0002);
}

TEST(MaxDegreeAttachmentRow, ExtractsLastRow) {
  ProbabilityMatrix P(3);
  P.set(2, 0, 0.1);
  P.set(2, 1, 0.2);
  P.set(2, 2, 0.3);
  const std::vector<double> row = max_degree_attachment_row(P);
  EXPECT_EQ(row, (std::vector<double>{0.1, 0.2, 0.3}));
}

}  // namespace
}  // namespace nullgraph
