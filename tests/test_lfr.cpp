#include "lfr/lfr.hpp"

#include <gtest/gtest.h>
#include <omp.h>

#include <stdexcept>

#include "ds/edge_list.hpp"

namespace nullgraph {
namespace {

LfrParams small_params() {
  LfrParams params;
  params.n = 3000;
  params.degree_exponent = 2.5;
  params.dmin = 4;
  params.dmax = 60;
  params.community_exponent = 1.5;
  params.cmin = 40;
  params.cmax = 300;
  params.mu = 0.3;
  params.seed = 11;
  params.swap_iterations = 2;
  return params;
}

TEST(GenerateLfr, BasicShape) {
  const LfrGraph graph = generate_lfr(small_params());
  EXPECT_TRUE(is_simple(graph.edges));
  EXPECT_EQ(graph.community.size(), 3000u);
  EXPECT_GT(graph.num_communities, 5u);
  EXPECT_GT(graph.edges.size(), 3000u);  // avg degree >= dmin = 4
}

TEST(GenerateLfr, EveryVertexHasValidCommunity) {
  const LfrGraph graph = generate_lfr(small_params());
  for (const std::uint32_t c : graph.community)
    EXPECT_LT(c, graph.num_communities);
}

TEST(GenerateLfr, AchievedMuNearTarget) {
  LfrParams params = small_params();
  const LfrGraph graph = generate_lfr(params);
  EXPECT_NEAR(graph.achieved_mu, params.mu, 0.08);
}

class MuSweep : public ::testing::TestWithParam<double> {};

TEST_P(MuSweep, MixingTracksParameter) {
  LfrParams params = small_params();
  params.mu = GetParam();
  const LfrGraph graph = generate_lfr(params);
  EXPECT_NEAR(graph.achieved_mu, params.mu, 0.10);
  EXPECT_TRUE(is_simple(graph.edges));
}

INSTANTIATE_TEST_SUITE_P(MixingLevels, MuSweep,
                         ::testing::Values(0.1, 0.2, 0.4, 0.6));

TEST(GenerateLfr, CommunitySizesWithinBounds) {
  const LfrGraph graph = generate_lfr(small_params());
  std::vector<std::uint64_t> sizes(graph.num_communities, 0);
  for (const std::uint32_t c : graph.community) ++sizes[c];
  std::uint64_t total = 0;
  for (std::uint64_t s : sizes) total += s;
  EXPECT_EQ(total, 3000u);
}

TEST(GenerateLfr, DegreesRoughlyMatchPowerlawRange) {
  LfrParams params = small_params();
  const LfrGraph graph = generate_lfr(params);
  const auto degrees = degrees_of(graph.edges, params.n);
  std::uint64_t dmax = 0;
  double sum = 0.0;
  for (std::uint64_t d : degrees) {
    dmax = std::max(dmax, d);
    sum += static_cast<double>(d);
  }
  EXPECT_LE(dmax, params.dmax + params.dmax / 2);
  EXPECT_GT(sum / static_cast<double>(params.n),
            0.7 * static_cast<double>(params.dmin));
}

TEST(GenerateLfr, RejectsBadParameters) {
  LfrParams params = small_params();
  params.mu = 1.5;
  EXPECT_THROW(generate_lfr(params), std::invalid_argument);
  params = small_params();
  params.cmin = 1;
  EXPECT_THROW(generate_lfr(params), std::invalid_argument);
  params = small_params();
  // Internal degree (1-mu)*dmax larger than any community can host.
  params.mu = 0.0;
  params.dmax = 1000;
  params.cmax = 100;
  EXPECT_THROW(generate_lfr(params), std::invalid_argument);
}

TEST(GenerateLfr, DeterministicPerSeed) {
  // The swap phase resolves rare candidate collisions by atomic race, so
  // strict determinism is a single-thread contract (see README); pin it.
  const int saved_threads = omp_get_max_threads();
  omp_set_num_threads(1);
  const LfrGraph a = generate_lfr(small_params());
  const LfrGraph b = generate_lfr(small_params());
  EXPECT_TRUE(same_edge_multiset(a.edges, b.edges));
  EXPECT_EQ(a.community, b.community);
  omp_set_num_threads(saved_threads);
}

TEST(MeasuredMu, HandComputedPartition) {
  const EdgeList edges{{0, 1}, {2, 3}, {0, 2}, {1, 3}};
  const std::vector<std::uint32_t> community{0, 0, 1, 1};
  // 2 of 4 edges cross.
  EXPECT_DOUBLE_EQ(measured_mu(edges, community), 0.5);
}

TEST(MeasuredMu, EmptyGraph) {
  EXPECT_DOUBLE_EQ(measured_mu({}, {}), 0.0);
}

}  // namespace
}  // namespace nullgraph
