#include "prob/probability_matrix.hpp"

#include <gtest/gtest.h>

namespace nullgraph {
namespace {

TEST(ProbabilityMatrix, SymmetricStorage) {
  ProbabilityMatrix matrix(3);
  matrix.set(2, 0, 0.25);
  EXPECT_DOUBLE_EQ(matrix.at(0, 2), 0.25);
  EXPECT_DOUBLE_EQ(matrix.at(2, 0), 0.25);
  matrix.set(0, 2, 0.5);
  EXPECT_DOUBLE_EQ(matrix.at(2, 0), 0.5);
}

TEST(ProbabilityMatrix, ZeroInitialized) {
  const ProbabilityMatrix matrix(4);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j) EXPECT_DOUBLE_EQ(matrix.at(i, j), 0.0);
}

TEST(ProbabilityMatrix, AddAccumulates) {
  ProbabilityMatrix matrix(2);
  matrix.add(0, 1, 0.1);
  matrix.add(1, 0, 0.2);
  EXPECT_NEAR(matrix.at(0, 1), 0.3, 1e-12);
}

TEST(ProbabilityMatrix, ClampBoundsEntries) {
  ProbabilityMatrix matrix(2);
  matrix.set(0, 0, 1.7);
  matrix.set(0, 1, -0.3);
  matrix.set(1, 1, 0.4);
  matrix.clamp();
  EXPECT_DOUBLE_EQ(matrix.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(matrix.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(matrix.at(1, 1), 0.4);
}

TEST(ProbabilityMatrix, MaxValue) {
  ProbabilityMatrix matrix(3);
  matrix.set(1, 2, 0.6);
  matrix.set(0, 0, 0.2);
  EXPECT_DOUBLE_EQ(matrix.max_value(), 0.6);
}

TEST(ProbabilityMatrix, ExpectedDegreeMatchesHandComputation) {
  // classes: degree 1 x 2 vertices, degree 2 x 2 vertices.
  const DegreeDistribution dist({{1, 2}, {2, 2}});
  ProbabilityMatrix matrix(2);
  matrix.set(0, 0, 0.1);
  matrix.set(0, 1, 0.2);
  matrix.set(1, 1, 0.3);
  // class 0: 2*0.1 + 2*0.2 - 0.1 = 0.5
  EXPECT_NEAR(matrix.expected_degree(0, dist), 0.5, 1e-12);
  // class 1: 2*0.2 + 2*0.3 - 0.3 = 0.7
  EXPECT_NEAR(matrix.expected_degree(1, dist), 0.7, 1e-12);
}

TEST(ProbabilityMatrix, ExpectedEdgesMatchesHandComputation) {
  const DegreeDistribution dist({{1, 2}, {2, 2}});
  ProbabilityMatrix matrix(2);
  matrix.set(0, 0, 0.1);
  matrix.set(0, 1, 0.2);
  matrix.set(1, 1, 0.3);
  // C(2,2)*0.1 + 2*2*0.2 + C(2,2)*0.3 = 0.1 + 0.8 + 0.3
  EXPECT_NEAR(matrix.expected_edges(dist), 1.2, 1e-12);
}

TEST(ProbabilityMatrix, L1Distance) {
  ProbabilityMatrix a(2), b(2);
  a.set(0, 0, 0.5);
  b.set(0, 1, 0.25);
  EXPECT_NEAR(ProbabilityMatrix::l1_distance(a, b), 0.75, 1e-12);
  EXPECT_NEAR(ProbabilityMatrix::l1_distance(a, a), 0.0, 1e-12);
}

TEST(Diagnose, PerfectMatrixHasTinyErrors) {
  // Regular graph: every vertex degree 3, n = 10; P = 3/9 on the single
  // class solves the system exactly.
  const DegreeDistribution dist({{3, 10}});
  ProbabilityMatrix matrix(1);
  matrix.set(0, 0, 3.0 / 9.0);
  const ProbabilityDiagnostics diag = diagnose(matrix, dist);
  EXPECT_NEAR(diag.max_relative_degree_error, 0.0, 1e-12);
  EXPECT_NEAR(diag.relative_edge_error, 0.0, 1e-12);
  EXPECT_NEAR(diag.max_probability, 1.0 / 3.0, 1e-12);
}

TEST(Diagnose, ReportsDegreeError) {
  const DegreeDistribution dist({{3, 10}});
  ProbabilityMatrix matrix(1);
  matrix.set(0, 0, 0.5);  // expected degree 4.5 instead of 3
  const ProbabilityDiagnostics diag = diagnose(matrix, dist);
  EXPECT_NEAR(diag.max_relative_degree_error, 0.5, 1e-12);
}


TEST(ProbabilityMatrix, WeightedL1CountsPairSpaces) {
  // classes: degree 1 x 2, degree 2 x 3 -> spaces: C(2,2)=1, 2*3=6,
  // C(3,2)=3 pairs.
  const DegreeDistribution dist({{1, 2}, {2, 4}});
  ProbabilityMatrix a(2), b(2);
  a.set(0, 0, 0.5);   // diagonal space: C(2,2) = 1 pair
  b.set(1, 0, 0.25);  // cross space: 2*4 = 8 pairs
  a.set(1, 1, 0.1);   // diagonal space: C(4,2) = 6 pairs
  // |0.5|*1 + |0.25|*8 + |0.1|*6 = 0.5 + 2 + 0.6
  EXPECT_NEAR(ProbabilityMatrix::weighted_l1_distance(a, b, dist), 3.1,
              1e-12);
}

TEST(ProbabilityMatrix, WeightedL1ZeroForIdenticalMatrices) {
  const DegreeDistribution dist({{1, 2}, {2, 4}});
  ProbabilityMatrix a(2);
  a.set(1, 0, 0.3);
  EXPECT_DOUBLE_EQ(ProbabilityMatrix::weighted_l1_distance(a, a, dist), 0.0);
}

}  // namespace
}  // namespace nullgraph
