#include "gen/havel_hakimi.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

#include "gen/powerlaw.hpp"
#include "skip/erdos_renyi.hpp"
#include "util/rng.hpp"

namespace nullgraph {
namespace {

void expect_realizes(const DegreeDistribution& dist) {
  const EdgeList edges = havel_hakimi(dist);
  EXPECT_TRUE(is_simple(edges));
  const auto degrees = degrees_of(edges, dist.num_vertices());
  const auto target = dist.to_degree_sequence();
  ASSERT_EQ(degrees.size(), target.size());
  for (std::size_t v = 0; v < degrees.size(); ++v)
    EXPECT_EQ(degrees[v], target[v]) << "vertex " << v;
}

TEST(HavelHakimi, Triangle) { expect_realizes(DegreeDistribution({{2, 3}})); }

TEST(HavelHakimi, CompleteGraphK5) {
  expect_realizes(DegreeDistribution({{4, 5}}));
}

TEST(HavelHakimi, Star) {
  expect_realizes(DegreeDistribution({{1, 7}, {7, 1}}));
}

TEST(HavelHakimi, SingleEdgePlusIsolated) {
  expect_realizes(DegreeDistribution({{0, 5}, {1, 2}}));
}

TEST(HavelHakimi, RegularGraphs) {
  for (std::uint64_t d : {1ULL, 2ULL, 3ULL, 4ULL, 7ULL}) {
    expect_realizes(DegreeDistribution({{d, 8}}));
  }
}

TEST(HavelHakimi, EmptyDistribution) {
  EXPECT_TRUE(havel_hakimi(DegreeDistribution{}).empty());
}

TEST(HavelHakimi, ThrowsOnNonGraphical) {
  EXPECT_THROW(havel_hakimi(DegreeDistribution({{3, 2}, {1, 2}, {0, 1}})),
               std::invalid_argument);
  EXPECT_THROW(havel_hakimi(DegreeDistribution({{2000, 1}, {2, 1000}})),
               std::invalid_argument);
}

TEST(HavelHakimi, PowerlawDistribution) {
  PowerlawParams params;
  params.n = 5000;
  params.gamma = 2.3;
  params.dmin = 1;
  params.dmax = 300;
  expect_realizes(powerlaw_distribution(params));
}

TEST(HavelHakimiSequence, RealizesCallerOrder) {
  const std::vector<std::uint64_t> degrees{3, 1, 2, 1, 1, 2};
  const EdgeList edges = havel_hakimi_sequence(degrees);
  EXPECT_TRUE(is_simple(edges));
  const auto realized = degrees_of(edges, degrees.size());
  for (std::size_t v = 0; v < degrees.size(); ++v)
    EXPECT_EQ(realized[v], degrees[v]);
}

TEST(HavelHakimiSequence, ThrowsOnOddSum) {
  EXPECT_THROW(havel_hakimi_sequence({1, 1, 1}), std::invalid_argument);
}

class HavelHakimiRandomSweep : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(HavelHakimiRandomSweep, RealizesDegreesOfRandomGraphs) {
  // Degrees harvested from an actual graph are graphical by construction.
  const EdgeList sample = erdos_renyi(400, 0.02, GetParam());
  const auto degrees = degrees_of(sample, 400);
  const EdgeList rebuilt = havel_hakimi_sequence(degrees);
  EXPECT_TRUE(is_simple(rebuilt));
  const auto realized = degrees_of(rebuilt, 400);
  for (std::size_t v = 0; v < 400; ++v) EXPECT_EQ(realized[v], degrees[v]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HavelHakimiRandomSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 99, 12345));

TEST(HavelHakimi, ManyEqualBlocksStress) {
  // Long runs of equal degrees exercise the partial-block bookkeeping.
  expect_realizes(DegreeDistribution({{2, 1000}, {3, 1000}, {10, 100}}));
}

}  // namespace
}  // namespace nullgraph
