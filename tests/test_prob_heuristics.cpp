#include "prob/heuristics.hpp"

#include <gtest/gtest.h>

#include "gen/datasets.hpp"
#include "gen/powerlaw.hpp"

namespace nullgraph {
namespace {

DegreeDistribution skewed_distribution() {
  PowerlawParams params;
  params.n = 2000;
  params.gamma = 2.2;
  params.dmin = 1;
  params.dmax = 200;
  return powerlaw_distribution(params);
}

TEST(ChungLuProbabilities, MatchesFormulaWhenUncapped) {
  const DegreeDistribution dist({{2, 50}, {4, 25}});
  const double two_m = static_cast<double>(dist.num_stubs());
  const ProbabilityMatrix P = chung_lu_probabilities(dist);
  EXPECT_NEAR(P.at(0, 0), 4.0 / two_m, 1e-12);
  EXPECT_NEAR(P.at(0, 1), 8.0 / two_m, 1e-12);
  EXPECT_NEAR(P.at(1, 1), 16.0 / two_m, 1e-12);
}

TEST(ChungLuProbabilities, CapsAtOne) {
  // Hub degree so large that d_i d_j > 2m.
  const DegreeDistribution dist({{100, 1}, {1, 100}});
  const ProbabilityMatrix P = chung_lu_probabilities(dist);
  EXPECT_DOUBLE_EQ(P.at(1, 1), 1.0);  // 100*100/200 = 50, capped
  EXPECT_LE(P.max_value(), 1.0);
}

TEST(ChungLuProbabilities, SkewedHasLargeDegreeError) {
  // The motivating failure (Figures 1-2): capped CL misses the max degree.
  const DegreeDistribution dist = as20_like();
  const ProbabilityMatrix P = chung_lu_probabilities(dist);
  const ProbabilityDiagnostics diag = diagnose(P, dist);
  EXPECT_GT(diag.max_relative_degree_error, 0.10);
}

TEST(GreedyProbabilities, EntriesAreProbabilities) {
  const ProbabilityMatrix P = greedy_probabilities(skewed_distribution());
  EXPECT_LE(P.max_value(), 1.0 + 1e-12);
}

TEST(GreedyProbabilities, SolvesExpectedDegreeSystemOnSkewedInput) {
  const DegreeDistribution dist = skewed_distribution();
  const ProbabilityMatrix P = greedy_probabilities(dist);
  const ProbabilityDiagnostics diag = diagnose(P, dist);
  // The paper's claim for its probability step: expected output matches the
  // input distribution. Our allocator should land within a few percent on
  // every class and much closer in aggregate.
  EXPECT_LT(diag.max_relative_degree_error, 0.05)
      << "worst class off by more than 5%";
  EXPECT_LT(diag.relative_edge_error, 0.01);
  EXPECT_LT(diag.total_relative_stub_error, 0.01);
}

TEST(GreedyProbabilities, MatchesMaxDegreeClassTightly) {
  const DegreeDistribution dist = as20_like();
  const ProbabilityMatrix P = greedy_probabilities(dist);
  const std::size_t top = dist.num_classes() - 1;
  const double expected = P.expected_degree(top, dist);
  const double target = static_cast<double>(dist.max_degree());
  EXPECT_NEAR(expected / target, 1.0, 0.02);
}

TEST(GreedyProbabilities, RegularGraphExactSolution) {
  const DegreeDistribution dist({{3, 10}});
  const ProbabilityMatrix P = greedy_probabilities(dist);
  EXPECT_NEAR(P.at(0, 0), 3.0 / 9.0, 1e-9);
}

TEST(GreedyProbabilities, CompleteGraphHitsCap) {
  // degree n-1 for all vertices: only K_n works, P must be 1.
  const DegreeDistribution dist({{4, 5}});
  const ProbabilityMatrix P = greedy_probabilities(dist);
  EXPECT_NEAR(P.at(0, 0), 1.0, 1e-9);
}

TEST(StubMatchingProbabilities, EntriesAreProbabilities) {
  const ProbabilityMatrix P = stub_matching_probabilities(skewed_distribution());
  EXPECT_LE(P.max_value(), 1.0 + 1e-12);
  EXPECT_GE(P.max_value(), 0.0);
}

TEST(StubMatchingProbabilities, ReasonableExpectedEdges) {
  const DegreeDistribution dist = skewed_distribution();
  const ProbabilityMatrix P = stub_matching_probabilities(dist);
  const ProbabilityDiagnostics diag = diagnose(P, dist);
  // The paper's heuristic is looser than the greedy allocator but must stay
  // in the right ballpark ("error is small for non-contrived networks").
  EXPECT_LT(diag.relative_edge_error, 0.25);
}

TEST(RefineProbabilities, ImprovesChungLuDegreeError) {
  const DegreeDistribution dist = as20_like();
  ProbabilityMatrix P = chung_lu_probabilities(dist);
  const double before = diagnose(P, dist).total_relative_stub_error;
  refine_probabilities(P, dist, 32);
  const double after = diagnose(P, dist).total_relative_stub_error;
  EXPECT_LT(after, before);
}

TEST(RefineProbabilities, KeepsEntriesInRange) {
  const DegreeDistribution dist = skewed_distribution();
  ProbabilityMatrix P = chung_lu_probabilities(dist);
  refine_probabilities(P, dist, 8);
  EXPECT_LE(P.max_value(), 1.0 + 1e-12);
}

TEST(GreedyProbabilities, EmptyDistribution) {
  const DegreeDistribution dist;
  const ProbabilityMatrix P = greedy_probabilities(dist);
  EXPECT_EQ(P.num_classes(), 0u);
}

class HeuristicDatasetSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(HeuristicDatasetSweep, GreedyResidualsSmallOnPaperDatasets) {
  const auto spec = find_dataset(GetParam());
  ASSERT_TRUE(spec.has_value());
  // Small scale keeps the sweep fast; the shapes stay skewed.
  const DegreeDistribution dist =
      build_dataset(*spec, std::min(1.0, 20000.0 / spec->n));
  const ProbabilityMatrix P = greedy_probabilities(dist);
  const ProbabilityDiagnostics diag = diagnose(P, dist);
  EXPECT_LT(diag.relative_edge_error, 0.02) << GetParam();
  EXPECT_LT(diag.max_relative_degree_error, 0.10) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Datasets, HeuristicDatasetSweep,
                         ::testing::Values("Meso", "as20", "WikiTalk",
                                           "LiveJournal"));

}  // namespace
}  // namespace nullgraph
