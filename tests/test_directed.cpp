#include "directed/directed_distribution.hpp"
#include "directed/directed_generators.hpp"
#include "directed/directed_swap.hpp"

#include <gtest/gtest.h>
#include <omp.h>

#include <algorithm>
#include <array>
#include <set>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace nullgraph {
namespace {

// --- Arc basics -----------------------------------------------------------

TEST(Arc, KeyIsOrdered) {
  EXPECT_NE((Arc{1, 2}.key()), (Arc{2, 1}.key()));
  EXPECT_EQ((Arc{1, 2}.key()), (Arc{1, 2}.key()));
}

TEST(Arc, LoopDetection) {
  EXPECT_TRUE((Arc{3, 3}.is_loop()));
  EXPECT_FALSE((Arc{3, 4}.is_loop()));
}

TEST(ArcCensus, CountsLoopsAndDuplicates) {
  const ArcList arcs{{0, 1}, {1, 0}, {0, 1}, {2, 2}};
  const ArcCensus result = census(arcs);
  EXPECT_EQ(result.self_loops, 1u);
  EXPECT_EQ(result.duplicate_arcs, 1u);  // second {0,1}; {1,0} is distinct
  EXPECT_FALSE(result.simple());
  EXPECT_TRUE(is_simple(ArcList{{0, 1}, {1, 0}}));
}

TEST(ArcDegrees, InAndOutSeparate) {
  const ArcList arcs{{0, 1}, {0, 2}, {2, 1}};
  EXPECT_EQ(out_degrees_of(arcs), (std::vector<std::uint64_t>{2, 0, 1}));
  EXPECT_EQ(in_degrees_of(arcs), (std::vector<std::uint64_t>{0, 2, 1}));
}

// --- DirectedDegreeDistribution --------------------------------------------

TEST(DirectedDistribution, MergesJointClasses) {
  const DirectedDegreeDistribution dist(
      {{1, 2, 3}, {1, 2, 2}, {2, 1, 5}});
  ASSERT_EQ(dist.num_classes(), 2u);
  EXPECT_EQ(dist.num_vertices(), 10u);
  EXPECT_EQ(dist.num_arcs(), 1u * 5 + 1u * 10);  // in totals
}

TEST(DirectedDistribution, ThrowsOnImbalancedTotals) {
  EXPECT_THROW(DirectedDegreeDistribution({{2, 1, 4}}),
               std::invalid_argument);
  EXPECT_NO_THROW(DirectedDegreeDistribution({{1, 1, 4}}));
}

TEST(DirectedDistribution, SequencesRoundTrip) {
  const std::vector<std::uint64_t> in{2, 0, 1};
  const std::vector<std::uint64_t> out{1, 1, 1};
  const auto dist = DirectedDegreeDistribution::from_sequences(in, out);
  EXPECT_EQ(dist.num_vertices(), 3u);
  EXPECT_EQ(dist.num_arcs(), 3u);
  // Sequences come back sorted by class, so compare as multisets.
  auto back_in = dist.in_sequence();
  auto back_out = dist.out_sequence();
  std::vector<std::pair<std::uint64_t, std::uint64_t>> pairs;
  for (std::size_t v = 0; v < 3; ++v) pairs.push_back({back_in[v], back_out[v]});
  std::sort(pairs.begin(), pairs.end());
  EXPECT_EQ(pairs, (std::vector<std::pair<std::uint64_t, std::uint64_t>>{
                       {0, 1}, {1, 1}, {2, 1}}));
}

TEST(DirectedDistribution, FromArcs) {
  const ArcList arcs{{0, 1}, {0, 2}, {1, 2}};
  const auto dist = DirectedDegreeDistribution::from_arcs(arcs);
  EXPECT_EQ(dist.num_arcs(), 3u);
  EXPECT_EQ(dist.max_out_degree(), 2u);
  EXPECT_EQ(dist.max_in_degree(), 2u);
}

// --- Kleitman-Wang ----------------------------------------------------------

TEST(KleitmanWang, RealizesExactSequences) {
  const std::vector<std::uint64_t> in{1, 1, 1};
  const std::vector<std::uint64_t> out{1, 1, 1};
  const ArcList arcs = kleitman_wang(in, out);
  EXPECT_TRUE(is_simple(arcs));
  EXPECT_EQ(in_degrees_of(arcs, 3), in);
  EXPECT_EQ(out_degrees_of(arcs, 3), out);
}

TEST(KleitmanWang, CompleteDigraph) {
  // K4 directed both ways: in = out = 3 for 4 vertices.
  const std::vector<std::uint64_t> degrees(4, 3);
  const ArcList arcs = kleitman_wang(degrees, degrees);
  EXPECT_EQ(arcs.size(), 12u);
  EXPECT_TRUE(is_simple(arcs));
}

TEST(KleitmanWang, ThrowsOnNonDigraphical) {
  // One vertex wants out-degree 3 but only 2 other vertices accept arcs.
  EXPECT_THROW(kleitman_wang({0, 1, 2}, {3, 0, 0}), std::invalid_argument);
  EXPECT_THROW(kleitman_wang({1, 1}, {1, 0}), std::invalid_argument);
}

TEST(KleitmanWang, SelfLoopExclusionMatters) {
  // n=2, each wants in=1,out=1: only the 2-cycle works (no loops).
  const ArcList arcs = kleitman_wang({1, 1}, {1, 1});
  EXPECT_EQ(arcs.size(), 2u);
  EXPECT_TRUE(is_simple(arcs));
}

TEST(IsDigraphical, AgreesWithRandomDigraphDegrees) {
  Xoshiro256ss rng(8);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 20;
    ArcList arcs;
    for (VertexId u = 0; u < n; ++u)
      for (VertexId v = 0; v < n; ++v)
        if (u != v && rng.uniform() < 0.15) arcs.push_back({u, v});
    EXPECT_TRUE(is_digraphical(in_degrees_of(arcs, n),
                               out_degrees_of(arcs, n)));
  }
}

TEST(IsDigraphical, ExhaustiveOracleN3) {
  // Enumerate all 2^6 simple digraphs on 3 vertices; a degree-pair profile
  // is digraphical iff some subset realizes it.
  std::set<std::array<std::uint64_t, 6>> realizable;
  const Arc all_arcs[6] = {{0, 1}, {0, 2}, {1, 0}, {1, 2}, {2, 0}, {2, 1}};
  for (int mask = 0; mask < 64; ++mask) {
    std::array<std::uint64_t, 6> profile{};  // in0,in1,in2,out0,out1,out2
    for (int b = 0; b < 6; ++b) {
      if (mask & (1 << b)) {
        ++profile[all_arcs[b].to];
        ++profile[3 + all_arcs[b].from];
      }
    }
    realizable.insert(profile);
  }
  for (std::uint64_t i0 = 0; i0 <= 2; ++i0)
    for (std::uint64_t i1 = 0; i1 <= 2; ++i1)
      for (std::uint64_t i2 = 0; i2 <= 2; ++i2)
        for (std::uint64_t o0 = 0; o0 <= 2; ++o0)
          for (std::uint64_t o1 = 0; o1 <= 2; ++o1)
            for (std::uint64_t o2 = 0; o2 <= 2; ++o2) {
              if (i0 + i1 + i2 != o0 + o1 + o2) continue;
              const bool expected = realizable.contains(
                  {i0, i1, i2, o0, o1, o2});
              EXPECT_EQ(is_digraphical({i0, i1, i2}, {o0, o1, o2}), expected)
                  << i0 << i1 << i2 << "/" << o0 << o1 << o2;
            }
}

// --- Probabilities ----------------------------------------------------------

DirectedDegreeDistribution skewed_directed() {
  // Skewed joint distribution with matching totals.
  return DirectedDegreeDistribution({
      {1, 1, 500},
      {2, 1, 200},
      {1, 2, 200},
      {10, 4, 20},
      {4, 10, 20},
      {60, 60, 2},
  });
}

TEST(DirectedGreedyProbabilities, SolvesBothMarginals) {
  const DirectedDegreeDistribution dist = skewed_directed();
  const DirectedProbabilityMatrix P = directed_greedy_probabilities(dist);
  EXPECT_LE(P.max_value(), 1.0 + 1e-12);
  for (std::size_t c = 0; c < dist.num_classes(); ++c) {
    const double out_target =
        static_cast<double>(dist.class_at(c).out_degree);
    const double in_target = static_cast<double>(dist.class_at(c).in_degree);
    if (out_target > 0)
      EXPECT_NEAR(P.expected_out_degree(c, dist) / out_target, 1.0, 0.06)
          << "class " << c;
    if (in_target > 0)
      EXPECT_NEAR(P.expected_in_degree(c, dist) / in_target, 1.0, 0.06)
          << "class " << c;
  }
  EXPECT_NEAR(P.expected_arcs(dist) / static_cast<double>(dist.num_arcs()),
              1.0, 0.02);
}

TEST(DirectedChungLuProbabilities, CapsAtOne) {
  const DirectedProbabilityMatrix P =
      directed_chung_lu_probabilities(skewed_directed());
  EXPECT_LE(P.max_value(), 1.0);
}

// --- Edge skip ---------------------------------------------------------------

TEST(DirectedEdgeSkip, ProbabilityOneGivesAllOrderedPairs) {
  const DirectedDegreeDistribution dist({{3, 3, 4}});
  DirectedProbabilityMatrix P(1);
  P.set(0, 0, 1.0);
  const ArcList arcs = directed_edge_skip(P, dist);
  EXPECT_EQ(arcs.size(), 12u);  // 4*3 ordered non-loop pairs
  EXPECT_TRUE(is_simple(arcs));
}

TEST(DirectedEdgeSkip, CrossClassDirectionality) {
  // Arcs only from class 1 (ids 2..4) to class 0 (ids 0..1).
  const DirectedDegreeDistribution dist({{0, 2, 3}, {3, 0, 2}});
  // classes sort by out-degree: class 0 = (in 3, out 0) count 2 -> ids 0,1;
  // class 1 = (in 0, out 2) count 3 -> ids 2..4.
  DirectedProbabilityMatrix P(2);
  P.set(1, 0, 1.0);
  const ArcList arcs = directed_edge_skip(P, dist);
  EXPECT_EQ(arcs.size(), 6u);
  for (const Arc& a : arcs) {
    EXPECT_GE(a.from, 2u);
    EXPECT_LT(a.to, 2u);
  }
}

TEST(DirectedEdgeSkip, ExpectedCountWithinBounds) {
  const DirectedDegreeDistribution dist({{2, 2, 2000}});
  DirectedProbabilityMatrix P(1);
  const double p = 0.001;
  P.set(0, 0, p);
  const double space = 2000.0 * 1999.0;
  const double expect = p * space;
  const double sigma = std::sqrt(expect);
  const ArcList arcs = directed_edge_skip(P, dist, 5);
  EXPECT_NEAR(static_cast<double>(arcs.size()), expect, 5 * sigma);
  EXPECT_TRUE(is_simple(arcs));
}

// --- O(m) model ---------------------------------------------------------------

TEST(DirectedChungLu, ExactArcCount) {
  const DirectedDegreeDistribution dist = skewed_directed();
  EXPECT_EQ(directed_chung_lu_multigraph(dist).size(), dist.num_arcs());
}

TEST(DirectedChungLu, ErasedIsSimple) {
  const DirectedDegreeDistribution dist = skewed_directed();
  const ArcList arcs = erased_directed_chung_lu(dist);
  EXPECT_TRUE(is_simple(arcs));
  EXPECT_LE(arcs.size(), dist.num_arcs());
}

// --- Swaps ---------------------------------------------------------------------

TEST(DirectedSwap, PreservesInAndOutDegreesExactly) {
  const DirectedDegreeDistribution dist = skewed_directed();
  ArcList arcs = kleitman_wang(dist.in_sequence(), dist.out_sequence());
  const std::size_t n = dist.num_vertices();
  const auto in_before = in_degrees_of(arcs, n);
  const auto out_before = out_degrees_of(arcs, n);
  const DirectedSwapStats stats =
      directed_swap_arcs(arcs, {.iterations = 5, .seed = 3});
  EXPECT_GT(stats.total_swapped(), 0u);
  EXPECT_EQ(in_degrees_of(arcs, n), in_before);
  EXPECT_EQ(out_degrees_of(arcs, n), out_before);
  EXPECT_TRUE(is_simple(arcs));
}

TEST(DirectedSwap, RewiresTopology) {
  const DirectedDegreeDistribution dist = skewed_directed();
  ArcList arcs = kleitman_wang(dist.in_sequence(), dist.out_sequence());
  const ArcList original = arcs;
  directed_swap_arcs(arcs, {.iterations = 2, .seed = 4});
  EXPECT_FALSE(same_arc_multiset(arcs, original));
}

TEST(DirectedSwap, StatsConsistent) {
  const DirectedDegreeDistribution dist = skewed_directed();
  ArcList arcs = kleitman_wang(dist.in_sequence(), dist.out_sequence());
  const DirectedSwapStats stats =
      directed_swap_arcs(arcs, {.iterations = 3, .seed = 5});
  for (const auto& it : stats.iterations) {
    EXPECT_EQ(it.attempted, arcs.size() / 2);
    EXPECT_EQ(it.attempted,
              it.swapped + it.rejected_existing + it.rejected_loop);
  }
}

// --- End-to-end ------------------------------------------------------------------

TEST(DirectedNullGraph, SimpleAndNearTargets) {
  const DirectedDegreeDistribution dist = skewed_directed();
  const ArcList arcs = generate_directed_null_graph(dist, 9, 3);
  EXPECT_TRUE(is_simple(arcs));
  const double m = static_cast<double>(dist.num_arcs());
  EXPECT_NEAR(static_cast<double>(arcs.size()), m, 0.05 * m);
  // Hub class (60, 60): realized in/out degrees of its 2 vertices should
  // land near 60 (expectation matching).
  const auto in_realized = in_degrees_of(arcs, dist.num_vertices());
  const auto out_realized = out_degrees_of(arcs, dist.num_vertices());
  const auto in_target = dist.in_sequence();
  double hub_in = 0, hub_out = 0;
  int hubs = 0;
  for (std::size_t v = 0; v < in_target.size(); ++v) {
    if (in_target[v] == 60) {
      hub_in += static_cast<double>(in_realized[v]);
      hub_out += static_cast<double>(out_realized[v]);
      ++hubs;
    }
  }
  ASSERT_EQ(hubs, 2);
  EXPECT_NEAR(hub_in / hubs, 60.0, 12.0);
  EXPECT_NEAR(hub_out / hubs, 60.0, 12.0);
}

TEST(DirectedNullGraph, DeterministicPerSeed) {
  // The swap phase resolves rare candidate collisions by atomic race, so
  // strict determinism is a single-thread contract (see README); pin it.
  const int saved_threads = omp_get_max_threads();
  omp_set_num_threads(1);
  const DirectedDegreeDistribution dist = skewed_directed();
  EXPECT_TRUE(same_arc_multiset(generate_directed_null_graph(dist, 1, 2),
                                generate_directed_null_graph(dist, 1, 2)));
  EXPECT_FALSE(same_arc_multiset(generate_directed_null_graph(dist, 1, 2),
                                 generate_directed_null_graph(dist, 2, 2)));
  omp_set_num_threads(saved_threads);
}

class DirectedSwapSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DirectedSwapSweep, InvariantsAcrossSeeds) {
  Xoshiro256ss rng(GetParam());
  ArcList arcs;
  const std::size_t n = 300;
  for (VertexId u = 0; u < n; ++u)
    for (VertexId v = 0; v < n; ++v)
      if (u != v && rng.uniform() < 0.01) arcs.push_back({u, v});
  const auto in_before = in_degrees_of(arcs, n);
  const auto out_before = out_degrees_of(arcs, n);
  directed_swap_arcs(arcs, {.iterations = 4, .seed = GetParam() * 7 + 1});
  EXPECT_EQ(in_degrees_of(arcs, n), in_before);
  EXPECT_EQ(out_degrees_of(arcs, n), out_before);
  EXPECT_TRUE(is_simple(arcs));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DirectedSwapSweep,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace nullgraph
