// Failure-injection and extreme-input tests: boundary ids, degenerate
// distributions, capacity edges, and invalid-input error paths across
// modules — the inputs a downstream user will eventually feed us.

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "core/double_edge_swap.hpp"
#include "core/null_model.hpp"
#include "ds/concurrent_hash_set.hpp"
#include "ds/csr_graph.hpp"
#include "ds/degree_distribution.hpp"
#include "gen/chung_lu.hpp"
#include "gen/havel_hakimi.hpp"
#include "prob/heuristics.hpp"
#include "robustness/invariants.hpp"
#include "robustness/repair.hpp"
#include "robustness/status.hpp"
#include "skip/edge_skip.hpp"

namespace nullgraph {
namespace {

TEST(Robustness, LargeVertexIdsSurviveRoundTrips) {
  const VertexId big = 0xfffffff0u;
  const EdgeList edges{{big, big - 1}, {big - 2, big - 3}};
  EXPECT_TRUE(is_simple(edges));
  const SimplicityCensus c = census(edges);
  EXPECT_TRUE(c.simple());
  // degrees_of on such ids would need 16 GB; census/key paths must not.
  EXPECT_EQ(Edge::from_key(edges[0].key()), edges[0].canonical());
}

TEST(Robustness, SingleVertexDistributions) {
  // Degree 0, one vertex: trivially graphical, generates nothing.
  const DegreeDistribution dist({{0, 1}});
  EXPECT_TRUE(dist.is_graphical());
  const GenerateResult result = generate_null_graph(dist);
  EXPECT_TRUE(result.edges.empty());
}

TEST(Robustness, AllZeroDegrees) {
  const DegreeDistribution dist({{0, 1000}});
  EXPECT_EQ(dist.num_edges(), 0u);
  EXPECT_TRUE(generate_null_graph(dist).edges.empty());
  EXPECT_TRUE(havel_hakimi(dist).empty());
}

TEST(Robustness, TwoVerticesOneEdge) {
  const DegreeDistribution dist({{1, 2}});
  const GenerateResult result = generate_null_graph(dist);
  // The only simple realization is the single edge; swaps cannot break it.
  EXPECT_LE(result.edges.size(), 1u);
  EXPECT_TRUE(is_simple(result.edges));
  EXPECT_EQ(havel_hakimi(dist).size(), 1u);
}

TEST(Robustness, HugeDegreesInDistributionArithmetic) {
  // Stub totals near 2^40: moments must not overflow.
  const std::uint64_t d = 1ULL << 20;
  const DegreeDistribution dist({{d, 1ULL << 20}});
  EXPECT_EQ(dist.num_stubs(), 1ULL << 40);
  EXPECT_DOUBLE_EQ(dist.average_degree(), static_cast<double>(d));
  // d = n - ... not graphical? degree 2^20 among 2^20 vertices: max simple
  // degree is n-1 = 2^20 - 1 < d -> not graphical.
  EXPECT_FALSE(dist.is_graphical());
}

TEST(Robustness, ExactCapacityHashSet) {
  // Insert exactly expected_keys distinct keys twice; capacity math must
  // hold with zero headroom misjudgment.
  for (std::size_t keys : {1ul, 2ul, 15ul, 16ul, 17ul, 1023ul, 1024ul}) {
    ConcurrentHashSet set(keys);
    for (std::uint64_t k = 1; k <= keys; ++k)
      EXPECT_FALSE(set.test_and_set(k * 0x9e3779b97f4a7c15ULL | 1));
    for (std::uint64_t k = 1; k <= keys; ++k)
      EXPECT_TRUE(set.test_and_set(k * 0x9e3779b97f4a7c15ULL | 1));
  }
}

TEST(Robustness, SwapOddEdgeCountLeavesLastEdgeAlone) {
  EdgeList edges{{0, 1}, {2, 3}, {4, 5}};
  swap_edges(edges, {.iterations = 4, .seed = 1});
  EXPECT_EQ(edges.size(), 3u);
  EXPECT_TRUE(is_simple(edges));
}

TEST(Robustness, SwapAllMultiEdgeInput) {
  // Pathological input: m copies of the same edge. Swaps cannot fix a
  // 2-vertex multigraph (every proposal is a loop or duplicate), but must
  // not crash or lose edges.
  EdgeList edges(10, Edge{0, 1});
  swap_edges(edges, {.iterations = 5, .seed = 2});
  EXPECT_EQ(edges.size(), 10u);
  const auto degrees = degrees_of(edges);
  EXPECT_EQ(degrees[0] + degrees[1], 20u);
}

TEST(Robustness, EdgeSkipNearZeroProbability) {
  // p so small the first skip usually overshoots a big space: must not
  // hang, overflow, or emit out-of-range pairs.
  const DegreeDistribution dist({{2, 2'000'000}});
  ProbabilityMatrix P(1);
  P.set(0, 0, 1e-12);
  const EdgeList edges = edge_skip_generate(P, dist, {.seed = 3});
  for (const Edge& e : edges) {
    EXPECT_LT(e.u, 2'000'000u);
    EXPECT_LT(e.v, 2'000'000u);
  }
  EXPECT_LT(edges.size(), 100u);  // expectation = 2e-12 * 2e12 = 2
}

TEST(Robustness, EdgeSkipProbabilityAboveOneClamps) {
  // clamp() guards the generators, but edge_skip itself must also treat
  // p >= 1 as "take everything" rather than looping.
  const DegreeDistribution dist({{2, 50}});
  ProbabilityMatrix P(1);
  P.set(0, 0, 1.5);
  EXPECT_EQ(edge_skip_generate(P, dist).size(), 50u * 49u / 2u);
}

TEST(Robustness, ChungLuZeroEdgeDistributionReturnsEmpty) {
  // All weight on vertices with degree 0: m = 0, nothing to draw.
  const DegreeDistribution dist({{0, 10}});
  EXPECT_TRUE(chung_lu_multigraph(dist).empty());
  EXPECT_TRUE(erased_chung_lu(dist).empty());
  EXPECT_TRUE(bernoulli_chung_lu(dist).empty());
}

TEST(Robustness, GreedyProbabilitiesDegenerateInputs) {
  // Single vertex with nonzero degree is not realizable (no partner);
  // the solver must not crash and diagnostics must expose the residual.
  const DegreeDistribution dist({{2, 1}});
  const ProbabilityMatrix P = greedy_probabilities(dist);
  const ProbabilityDiagnostics diag = diagnose(P, dist);
  EXPECT_EQ(diag.max_relative_degree_error, 1.0);  // nothing allocatable
}

TEST(Robustness, CsrGraphSingleVertexSelfLoop) {
  const CsrGraph graph(EdgeList{{0, 0}});
  EXPECT_EQ(graph.num_vertices(), 1u);
  EXPECT_EQ(graph.degree(0), 2u);
  EXPECT_TRUE(graph.has_edge(0, 0));
}

TEST(Robustness, GenerateForSequenceAllEqualDegrees) {
  const std::vector<std::uint64_t> degrees(64, 3);
  const GenerateResult result = generate_for_sequence(degrees);
  EXPECT_TRUE(is_simple(result.edges));
  const auto realized = degrees_of(result.edges, 64);
  double mean = 0;
  for (auto d : realized) mean += static_cast<double>(d);
  EXPECT_NEAR(mean / 64.0, 3.0, 0.75);
}

TEST(Robustness, ShuffleGraphWithLoopsAndDuplicatesImproves) {
  // shuffle_graph on a dirty input: simplicity violations cannot increase.
  EdgeList dirty{{0, 0}, {1, 2}, {1, 2}, {3, 4}, {5, 6}, {7, 8}, {2, 3}};
  const SimplicityCensus before = census(dirty);
  GenerateConfig config;
  config.seed = 5;
  config.swap_iterations = 20;
  const GenerateResult result = shuffle_graph(std::move(dirty), config);
  const SimplicityCensus after = census(result.edges);
  EXPECT_LE(after.self_loops + after.multi_edges,
            before.self_loops + before.multi_edges);
}

// ---------------------------------------------------------------------------
// Typed status layer

TEST(StatusLayer, CodeNamesAndExitCodesAreStable) {
  EXPECT_STREQ(status_code_name(StatusCode::kOk), "kOk");
  EXPECT_STREQ(status_code_name(StatusCode::kNotGraphical), "kNotGraphical");
  EXPECT_STREQ(status_code_name(StatusCode::kSwapStagnation),
               "kSwapStagnation");
  // The CLI exit-code contract documented in README.
  EXPECT_EQ(status_exit_code(StatusCode::kOk), 0);
  EXPECT_EQ(status_exit_code(StatusCode::kInvalidArgument), 1);
  EXPECT_EQ(status_exit_code(StatusCode::kInternal), 2);
  EXPECT_EQ(status_exit_code(StatusCode::kIoError), 3);
  EXPECT_EQ(status_exit_code(StatusCode::kIoMalformed), 4);
  EXPECT_EQ(status_exit_code(StatusCode::kNotGraphical), 5);
  EXPECT_EQ(status_exit_code(StatusCode::kProbabilityOverflow), 6);
  EXPECT_EQ(status_exit_code(StatusCode::kNonSimpleOutput), 7);
  EXPECT_EQ(status_exit_code(StatusCode::kDegreeMismatch), 8);
  EXPECT_EQ(status_exit_code(StatusCode::kSwapStagnation), 9);
  EXPECT_EQ(status_exit_code(StatusCode::kConnectivityExhausted), 10);
  EXPECT_EQ(status_exit_code(StatusCode::kRepairIncomplete), 11);
}

TEST(StatusLayer, ResultHoldsValueOrStatus) {
  Result<int> good(42);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  EXPECT_TRUE(good.status().ok());

  Result<int> bad(Status(StatusCode::kIoMalformed, "nope"));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kIoMalformed);
  EXPECT_THROW((void)std::move(bad).take(), StatusError);
}

TEST(StatusLayer, StatusErrorIsARuntimeError) {
  try {
    throw StatusError(Status(StatusCode::kNotGraphical, "odd stubs"));
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("kNotGraphical"),
              std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Invariant checkers

TEST(Invariants, GraphicalGate) {
  EXPECT_TRUE(check_graphical(DegreeDistribution({{2, 4}})).ok());
  // One vertex of degree 4 among 3 vertices: d > n-1, not graphical.
  const DegreeDistribution bad({{4, 1}, {1, 2}});
  EXPECT_EQ(check_graphical(bad).code(), StatusCode::kNotGraphical);
}

TEST(Invariants, ProbabilityBounds) {
  const DegreeDistribution dist({{2, 4}});
  ProbabilityMatrix P(1);
  P.set(0, 0, 0.5);
  EXPECT_TRUE(check_probability_matrix(P, dist).ok());
  P.set(0, 0, 1.5);
  EXPECT_EQ(check_probability_matrix(P, dist).code(),
            StatusCode::kProbabilityOverflow);
  P.set(0, 0, std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(check_probability_matrix(P, dist).code(),
            StatusCode::kProbabilityOverflow);
}

TEST(Invariants, SimplicityAndDegreePreservation) {
  const EdgeList clean{{0, 1}, {2, 3}};
  EXPECT_TRUE(check_simple(clean).ok());
  const EdgeList dirty{{0, 1}, {0, 1}, {2, 2}};
  EXPECT_EQ(check_simple(dirty).code(), StatusCode::kNonSimpleOutput);

  const auto degrees = degrees_of(clean, 4);
  EXPECT_TRUE(check_degrees_preserved(degrees, clean).ok());
  EXPECT_EQ(check_degrees_preserved(degrees, EdgeList{{0, 1}}).code(),
            StatusCode::kDegreeMismatch);
}

// ---------------------------------------------------------------------------
// Repair pass

TEST(Repair, ErasesLoopsAndDuplicatesAndPatchesDeficit) {
  // Target: the clean 3-regular-ish graph below. Damage it with a loop,
  // a duplicate, and a dropped edge, then demand full restoration.
  const EdgeList clean{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}, {1, 3}};
  const auto target = degrees_of(clean, 4);
  EdgeList damaged = clean;
  damaged.pop_back();                // drop {1,3}: deficit at 1 and 3
  damaged.push_back({2, 2});         // self-loop
  damaged.push_back({0, 1});         // duplicate
  const RepairStats stats = repair_to_degrees(damaged, target, 7);
  EXPECT_TRUE(stats.complete());
  EXPECT_EQ(stats.loops_erased, 1u);
  EXPECT_EQ(stats.duplicates_erased, 1u);
  EXPECT_TRUE(is_simple(damaged));
  EXPECT_EQ(degrees_of(damaged, 4), target);
}

TEST(Repair, ShedsSurplusBackToTarget) {
  const EdgeList clean{{0, 1}, {2, 3}};
  const auto target = degrees_of(clean, 4);
  // Extra simple edges push 0 and 2 over target.
  EdgeList damaged{{0, 1}, {2, 3}, {0, 2}};
  const RepairStats stats = repair_to_degrees(damaged, target, 11);
  EXPECT_TRUE(stats.complete());
  EXPECT_GE(stats.surplus_edges_removed, 1u);
  EXPECT_TRUE(is_simple(damaged));
  EXPECT_EQ(degrees_of(damaged, 4), target);
}

TEST(Repair, UsesTargetedRewireWhenDirectEdgeWouldDuplicate) {
  // K4 minus edge {0,1}... actually: deficit stubs at 0 and 1 but {0,1}
  // already exists, so the pass must route through an existing edge.
  EdgeList edges{{0, 1}, {2, 3}, {2, 4}, {3, 4}};
  std::vector<std::uint64_t> target = degrees_of(edges, 5);
  ++target[0];
  ++target[1];
  const RepairStats stats = repair_to_degrees(edges, target, 13);
  EXPECT_TRUE(stats.complete());
  EXPECT_GE(stats.rewired_patches, 1u);
  EXPECT_TRUE(is_simple(edges));
  EXPECT_EQ(degrees_of(edges, 5), target);
}

TEST(Repair, ReportsResidualInsteadOfLooping) {
  // Two vertices, target degree 2 each, only edge space {0,1}: one stub
  // pair placeable, the rest must come back as residual, not a hang.
  EdgeList edges;
  const std::vector<std::uint64_t> target{2, 2};
  const RepairStats stats = repair_to_degrees(edges, target, 17);
  EXPECT_FALSE(stats.complete());
  EXPECT_GT(stats.residual_deficit, 0u);
  EXPECT_TRUE(is_simple(edges));
}

TEST(Repair, SanitizeProbabilitiesFixesPoisonedEntries) {
  ProbabilityMatrix P(2);
  P.set(0, 0, 0.5);
  P.set(1, 0, 3.0);
  P.set(1, 1, std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(sanitize_probabilities(P), 2u);
  EXPECT_DOUBLE_EQ(P.at(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(P.at(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(P.at(1, 1), 0.0);
}

// ---------------------------------------------------------------------------
// Pipeline guardrails (no faults): report populated, strict gates inputs

TEST(Guardrails, DefaultReportRecordsCleanPhases) {
  const DegreeDistribution dist({{2, 50}, {4, 10}});
  const GenerateResult result = generate_null_graph(dist);
  EXPECT_TRUE(result.report.ok());
  EXPECT_TRUE(result.report.first_error().ok());
  // input, probabilities, edge generation, swaps, degrees
  EXPECT_EQ(result.report.checks.size(), 5u);
  EXPECT_FALSE(result.report.summary().empty());
}

TEST(Guardrails, PolicyOffSkipsChecksEntirely) {
  const DegreeDistribution dist({{2, 50}});
  GenerateConfig config;
  config.guardrails.policy = RecoveryPolicy::kOff;
  const GenerateResult result = generate_null_graph(dist, config);
  EXPECT_TRUE(result.report.checks.empty());
}

TEST(Guardrails, StrictRejectsNonGraphicalInput) {
  // One vertex of degree 4 among 3 vertices: d > n-1, not graphical.
  const DegreeDistribution worse({{4, 1}, {1, 2}});
  ASSERT_FALSE(worse.is_graphical());
  GenerateConfig config;
  config.guardrails.policy = RecoveryPolicy::kStrict;
  try {
    generate_null_graph(worse, config);
    FAIL() << "expected StatusError";
  } catch (const StatusError& error) {
    EXPECT_EQ(error.code(), StatusCode::kNotGraphical);
  }
}

TEST(Guardrails, CheckedVariantReturnsTypedErrorInsteadOfThrowing) {
  const DegreeDistribution worse({{4, 1}, {1, 2}});
  GenerateConfig config;
  config.guardrails.policy = RecoveryPolicy::kStrict;
  const auto result = generate_null_graph_checked(worse, config);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotGraphical);

  const auto good = generate_null_graph_checked(DegreeDistribution({{2, 40}}));
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(is_simple(good.value().edges));
}

TEST(Guardrails, ConnectivityExhaustionIsTyped) {
  // Four vertices of degree 1: every realization is two disjoint edges,
  // never connected.
  const DegreeDistribution dist({{1, 4}});
  const ConnectedGenerateResult outcome =
      generate_connected_null_graph(dist, {}, 3);
  EXPECT_FALSE(outcome.connected);
  EXPECT_EQ(outcome.result.report.first_error().code(),
            StatusCode::kConnectivityExhausted);

  GenerateConfig strict;
  strict.guardrails.policy = RecoveryPolicy::kStrict;
  try {
    generate_connected_null_graph(dist, strict, 3);
    FAIL() << "expected StatusError";
  } catch (const StatusError& error) {
    EXPECT_EQ(error.code(), StatusCode::kConnectivityExhausted);
  }
}

TEST(Guardrails, ShuffleReportsStagnationOnUnfixableInput) {
  // 2-vertex multigraph: every proposal is a loop or duplicate, so the
  // chain stalls and the report must say so (typed, not silent).
  EdgeList edges(6, Edge{0, 1});
  GenerateConfig config;
  config.swap_iterations = 4;
  const GenerateResult result = shuffle_graph(std::move(edges), config);
  EXPECT_FALSE(result.report.ok());
  EXPECT_EQ(result.report.first_error().code(), StatusCode::kSwapStagnation);
}

}  // namespace
}  // namespace nullgraph
