// Failure-injection and extreme-input tests: boundary ids, degenerate
// distributions, capacity edges, and invalid-input error paths across
// modules — the inputs a downstream user will eventually feed us.

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "core/double_edge_swap.hpp"
#include "core/null_model.hpp"
#include "ds/concurrent_hash_set.hpp"
#include "ds/csr_graph.hpp"
#include "ds/degree_distribution.hpp"
#include "gen/chung_lu.hpp"
#include "gen/havel_hakimi.hpp"
#include "prob/heuristics.hpp"
#include "skip/edge_skip.hpp"

namespace nullgraph {
namespace {

TEST(Robustness, LargeVertexIdsSurviveRoundTrips) {
  const VertexId big = 0xfffffff0u;
  const EdgeList edges{{big, big - 1}, {big - 2, big - 3}};
  EXPECT_TRUE(is_simple(edges));
  const SimplicityCensus c = census(edges);
  EXPECT_TRUE(c.simple());
  // degrees_of on such ids would need 16 GB; census/key paths must not.
  EXPECT_EQ(Edge::from_key(edges[0].key()), edges[0].canonical());
}

TEST(Robustness, SingleVertexDistributions) {
  // Degree 0, one vertex: trivially graphical, generates nothing.
  const DegreeDistribution dist({{0, 1}});
  EXPECT_TRUE(dist.is_graphical());
  const GenerateResult result = generate_null_graph(dist);
  EXPECT_TRUE(result.edges.empty());
}

TEST(Robustness, AllZeroDegrees) {
  const DegreeDistribution dist({{0, 1000}});
  EXPECT_EQ(dist.num_edges(), 0u);
  EXPECT_TRUE(generate_null_graph(dist).edges.empty());
  EXPECT_TRUE(havel_hakimi(dist).empty());
}

TEST(Robustness, TwoVerticesOneEdge) {
  const DegreeDistribution dist({{1, 2}});
  const GenerateResult result = generate_null_graph(dist);
  // The only simple realization is the single edge; swaps cannot break it.
  EXPECT_LE(result.edges.size(), 1u);
  EXPECT_TRUE(is_simple(result.edges));
  EXPECT_EQ(havel_hakimi(dist).size(), 1u);
}

TEST(Robustness, HugeDegreesInDistributionArithmetic) {
  // Stub totals near 2^40: moments must not overflow.
  const std::uint64_t d = 1ULL << 20;
  const DegreeDistribution dist({{d, 1ULL << 20}});
  EXPECT_EQ(dist.num_stubs(), 1ULL << 40);
  EXPECT_DOUBLE_EQ(dist.average_degree(), static_cast<double>(d));
  // d = n - ... not graphical? degree 2^20 among 2^20 vertices: max simple
  // degree is n-1 = 2^20 - 1 < d -> not graphical.
  EXPECT_FALSE(dist.is_graphical());
}

TEST(Robustness, ExactCapacityHashSet) {
  // Insert exactly expected_keys distinct keys twice; capacity math must
  // hold with zero headroom misjudgment.
  for (std::size_t keys : {1ul, 2ul, 15ul, 16ul, 17ul, 1023ul, 1024ul}) {
    ConcurrentHashSet set(keys);
    for (std::uint64_t k = 1; k <= keys; ++k)
      EXPECT_FALSE(set.test_and_set(k * 0x9e3779b97f4a7c15ULL | 1));
    for (std::uint64_t k = 1; k <= keys; ++k)
      EXPECT_TRUE(set.test_and_set(k * 0x9e3779b97f4a7c15ULL | 1));
  }
}

TEST(Robustness, SwapOddEdgeCountLeavesLastEdgeAlone) {
  EdgeList edges{{0, 1}, {2, 3}, {4, 5}};
  swap_edges(edges, {.iterations = 4, .seed = 1});
  EXPECT_EQ(edges.size(), 3u);
  EXPECT_TRUE(is_simple(edges));
}

TEST(Robustness, SwapAllMultiEdgeInput) {
  // Pathological input: m copies of the same edge. Swaps cannot fix a
  // 2-vertex multigraph (every proposal is a loop or duplicate), but must
  // not crash or lose edges.
  EdgeList edges(10, Edge{0, 1});
  swap_edges(edges, {.iterations = 5, .seed = 2});
  EXPECT_EQ(edges.size(), 10u);
  const auto degrees = degrees_of(edges);
  EXPECT_EQ(degrees[0] + degrees[1], 20u);
}

TEST(Robustness, EdgeSkipNearZeroProbability) {
  // p so small the first skip usually overshoots a big space: must not
  // hang, overflow, or emit out-of-range pairs.
  const DegreeDistribution dist({{2, 2'000'000}});
  ProbabilityMatrix P(1);
  P.set(0, 0, 1e-12);
  const EdgeList edges = edge_skip_generate(P, dist, {.seed = 3});
  for (const Edge& e : edges) {
    EXPECT_LT(e.u, 2'000'000u);
    EXPECT_LT(e.v, 2'000'000u);
  }
  EXPECT_LT(edges.size(), 100u);  // expectation = 2e-12 * 2e12 = 2
}

TEST(Robustness, EdgeSkipProbabilityAboveOneClamps) {
  // clamp() guards the generators, but edge_skip itself must also treat
  // p >= 1 as "take everything" rather than looping.
  const DegreeDistribution dist({{2, 50}});
  ProbabilityMatrix P(1);
  P.set(0, 0, 1.5);
  EXPECT_EQ(edge_skip_generate(P, dist).size(), 50u * 49u / 2u);
}

TEST(Robustness, ChungLuZeroEdgeDistributionReturnsEmpty) {
  // All weight on vertices with degree 0: m = 0, nothing to draw.
  const DegreeDistribution dist({{0, 10}});
  EXPECT_TRUE(chung_lu_multigraph(dist).empty());
  EXPECT_TRUE(erased_chung_lu(dist).empty());
  EXPECT_TRUE(bernoulli_chung_lu(dist).empty());
}

TEST(Robustness, GreedyProbabilitiesDegenerateInputs) {
  // Single vertex with nonzero degree is not realizable (no partner);
  // the solver must not crash and diagnostics must expose the residual.
  const DegreeDistribution dist({{2, 1}});
  const ProbabilityMatrix P = greedy_probabilities(dist);
  const ProbabilityDiagnostics diag = diagnose(P, dist);
  EXPECT_EQ(diag.max_relative_degree_error, 1.0);  // nothing allocatable
}

TEST(Robustness, CsrGraphSingleVertexSelfLoop) {
  const CsrGraph graph(EdgeList{{0, 0}});
  EXPECT_EQ(graph.num_vertices(), 1u);
  EXPECT_EQ(graph.degree(0), 2u);
  EXPECT_TRUE(graph.has_edge(0, 0));
}

TEST(Robustness, GenerateForSequenceAllEqualDegrees) {
  const std::vector<std::uint64_t> degrees(64, 3);
  const GenerateResult result = generate_for_sequence(degrees);
  EXPECT_TRUE(is_simple(result.edges));
  const auto realized = degrees_of(result.edges, 64);
  double mean = 0;
  for (auto d : realized) mean += static_cast<double>(d);
  EXPECT_NEAR(mean / 64.0, 3.0, 0.75);
}

TEST(Robustness, ShuffleGraphWithLoopsAndDuplicatesImproves) {
  // shuffle_graph on a dirty input: simplicity violations cannot increase.
  EdgeList dirty{{0, 0}, {1, 2}, {1, 2}, {3, 4}, {5, 6}, {7, 8}, {2, 3}};
  const SimplicityCensus before = census(dirty);
  const GenerateResult result = shuffle_graph(std::move(dirty),
                                              {.seed = 5,
                                               .swap_iterations = 20});
  const SimplicityCensus after = census(result.edges);
  EXPECT_LE(after.self_loops + after.multi_edges,
            before.self_loops + before.multi_edges);
}

}  // namespace
}  // namespace nullgraph
