// Cross-module integration tests: the statistical claims of Section VIII at
// test-suite scale. Each test exercises the full pipeline (probabilities ->
// edge-skipping -> swaps -> analysis) the way the benchmark harness does.

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/attachment.hpp"
#include "analysis/metrics.hpp"
#include "core/double_edge_swap.hpp"
#include "core/null_model.hpp"
#include "gen/chung_lu.hpp"
#include "gen/datasets.hpp"
#include "gen/havel_hakimi.hpp"
#include "gen/powerlaw.hpp"

namespace nullgraph {
namespace {

DegreeDistribution test_instance() {
  PowerlawParams params;
  params.n = 1500;
  params.gamma = 2.3;
  params.dmax = 120;
  return powerlaw_distribution(params);
}

/// Baseline attachment matrix: Havel-Hakimi + heavy swapping, averaged
/// (the paper's "uniform random" reference).
ProbabilityMatrix baseline_attachment(const DegreeDistribution& dist,
                                      int samples, std::size_t iterations) {
  AttachmentAccumulator acc(dist);
  for (int s = 0; s < samples; ++s) {
    EdgeList edges = havel_hakimi(dist);
    swap_edges(edges, {.iterations = iterations,
                       .seed = 900 + static_cast<std::uint64_t>(s)});
    acc.add(edges);
  }
  return acc.average();
}

TEST(Integration, SwappingConvergesAttachmentProbabilities) {
  // Figure 4's shape: our generator's attachment error against the uniform
  // baseline shrinks as swap iterations increase.
  const DegreeDistribution dist = test_instance();
  const ProbabilityMatrix base = baseline_attachment(dist, 6, 32);

  auto error_at = [&](std::size_t iterations) {
    AttachmentAccumulator acc(dist);
    for (int s = 0; s < 6; ++s) {
      GenerateConfig config;
      config.seed = 100 + static_cast<std::uint64_t>(s) * 17;
      config.swap_iterations = iterations;
      acc.add(generate_null_graph(dist, config).edges);
    }
    return ProbabilityMatrix::l1_distance(acc.average(), base);
  };

  const double no_swaps = error_at(0);
  const double some_swaps = error_at(4);
  const double many_swaps = error_at(16);
  EXPECT_LT(many_swaps, no_swaps);
  EXPECT_LE(many_swaps, some_swaps * 1.5);  // monotone up to noise
}

TEST(Integration, OurMethodBeatsBernoulliChungLuOnMaxDegree) {
  // Figure 3's headline: the probability solver fixes the d_max error that
  // capped Chung-Lu probabilities cause.
  const DegreeDistribution dist = as20_like();
  std::vector<QualityErrors> ours, bernoulli;
  for (int s = 0; s < 5; ++s) {
    GenerateConfig config;
    config.seed = 40 + static_cast<std::uint64_t>(s);
    config.swap_iterations = 1;
    ours.push_back(quality_errors(dist, generate_null_graph(dist, config).edges));
    bernoulli.push_back(quality_errors(
        dist, bernoulli_chung_lu(dist, 40 + static_cast<std::uint64_t>(s))));
  }
  EXPECT_LT(average(ours).max_degree, average(bernoulli).max_degree);
  EXPECT_LT(average(ours).edge_count, average(bernoulli).edge_count);
}

TEST(Integration, ErasedModelUndershootsOurMethodMatches) {
  const DegreeDistribution dist = as20_like();
  const EdgeList erased = erased_chung_lu(dist, {.seed = 3});
  GenerateConfig config;
  config.swap_iterations = 1;
  config.seed = 3;
  const EdgeList ours = generate_null_graph(dist, config).edges;
  const double m = static_cast<double>(dist.num_edges());
  const double erased_err =
      std::abs(static_cast<double>(erased.size()) - m) / m;
  const double ours_err = std::abs(static_cast<double>(ours.size()) - m) / m;
  EXPECT_LT(ours_err, erased_err);
}

TEST(Integration, OmModelSimplifiesUnderSwaps) {
  // Section VIII-A: "about two dozen or so swap iterations is sufficient to
  // eliminate all multi-edges with the O(m) approach".
  const DegreeDistribution dist = as20_like();
  EdgeList edges = chung_lu_multigraph(dist, {.seed = 9});
  std::size_t previous = census(edges).multi_edges + census(edges).self_loops;
  ASSERT_GT(previous, 0u);
  for (int round = 0; round < 20; ++round) {
    swap_edges(edges, {.iterations = 5,
                       .seed = 70 + static_cast<std::uint64_t>(round)});
    const SimplicityCensus c = census(edges);
    const std::size_t current = c.multi_edges + c.self_loops;
    EXPECT_LE(current, previous);
    previous = current;
    if (current == 0) break;
  }
  EXPECT_EQ(previous, 0u);
}

TEST(Integration, MixingDiagnosticNearlyAllEdgesSwapOnce) {
  // Section VIII-C: one iteration swaps ~99.9% of edges on sparse graphs;
  // after a few iterations essentially every edge has swapped.
  const DegreeDistribution dist = test_instance();
  GenerateConfig config;
  config.swap_iterations = 5;
  config.track_swapped_edges = true;
  const GenerateResult result = generate_null_graph(dist, config);
  const double fraction =
      static_cast<double>(result.swap_stats.edges_ever_swapped) /
      static_cast<double>(result.edges.size());
  EXPECT_GT(fraction, 0.98);
}

TEST(Integration, EndToEndPhasesDominatedBySwaps) {
  // Figure 6's shape: for skewed inputs with several iterations, swapping
  // dominates probability generation (|D| << m).
  const DegreeDistribution dist = build_dataset(*find_dataset("WikiTalk"),
                                                0.02);
  GenerateConfig config;
  config.swap_iterations = 10;
  const GenerateResult result = generate_null_graph(dist, config);
  EXPECT_GT(result.timing.seconds("swaps"),
            result.timing.seconds("probabilities"));
}

}  // namespace
}  // namespace nullgraph
