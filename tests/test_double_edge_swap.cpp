#include "core/double_edge_swap.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "gen/chung_lu.hpp"
#include "gen/datasets.hpp"
#include "gen/havel_hakimi.hpp"
#include "skip/erdos_renyi.hpp"

namespace nullgraph {
namespace {

std::vector<std::uint64_t> sorted_degrees(const EdgeList& edges,
                                          std::size_t n) {
  auto degrees = degrees_of(edges, n);
  std::sort(degrees.begin(), degrees.end());
  return degrees;
}

TEST(SwapEdges, PreservesDegreeSequenceExactly) {
  EdgeList edges = erdos_renyi(500, 0.02, 1);
  const auto before = sorted_degrees(edges, 500);
  swap_edges(edges, {.iterations = 5, .seed = 2});
  EXPECT_EQ(sorted_degrees(edges, 500), before);
}

TEST(SwapEdges, PreservesSimplicity) {
  EdgeList edges = erdos_renyi(500, 0.02, 3);
  ASSERT_TRUE(is_simple(edges));
  swap_edges(edges, {.iterations = 8, .seed = 4});
  EXPECT_TRUE(is_simple(edges));
}

TEST(SwapEdges, PreservesEdgeCount) {
  EdgeList edges = erdos_renyi(300, 0.05, 5);
  const std::size_t m = edges.size();
  swap_edges(edges, {.iterations = 3, .seed = 6});
  EXPECT_EQ(edges.size(), m);
}

TEST(SwapEdges, ActuallyRewires) {
  EdgeList edges = erdos_renyi(500, 0.02, 7);
  const EdgeList original = edges;
  const SwapStats stats = swap_edges(edges, {.iterations = 1, .seed = 8});
  EXPECT_FALSE(same_edge_multiset(edges, original));
  EXPECT_GT(stats.total_swapped(), 0u);
}

TEST(SwapEdges, StatsAreConsistent) {
  EdgeList edges = erdos_renyi(400, 0.03, 9);
  const std::size_t m = edges.size();
  const SwapStats stats = swap_edges(edges, {.iterations = 4, .seed = 10});
  ASSERT_EQ(stats.iterations.size(), 4u);
  for (const SwapIterationStats& it : stats.iterations) {
    EXPECT_EQ(it.attempted, m / 2);
    EXPECT_EQ(it.attempted,
              it.swapped + it.rejected_existing + it.rejected_loop);
  }
}

TEST(SwapEdges, HighSuccessRateOnSparseGraphs) {
  // Sparse ER: candidate collisions are rare, most swaps commit — the
  // premise behind the paper's "one iteration swaps 99.9% of edges".
  EdgeList edges = erdos_renyi(20000, 0.0005, 11);
  const SwapStats stats = swap_edges(edges, {.iterations = 1, .seed = 12});
  const double rate = static_cast<double>(stats.iterations[0].swapped) /
                      static_cast<double>(stats.iterations[0].attempted);
  EXPECT_GT(rate, 0.95);
}

TEST(SwapEdges, TracksSwappedEdgesFraction) {
  EdgeList edges = erdos_renyi(10000, 0.001, 13);
  const std::size_t m = edges.size();
  SwapConfig config;
  config.iterations = 6;
  config.seed = 14;
  config.track_swapped_edges = true;
  const SwapStats stats = swap_edges(edges, config);
  EXPECT_GT(stats.edges_ever_swapped, (m * 95) / 100);
  EXPECT_LE(stats.edges_ever_swapped, m);
}

TEST(SwapEdges, EliminatesMultiEdgesFromChungLu) {
  // O(m) Chung-Lu output starts non-simple; iterating swaps simplifies it
  // (Section VIII-A: "about two dozen or so swap iterations").
  const DegreeDistribution dist = as20_like();
  EdgeList edges = chung_lu_multigraph(dist, {.seed = 15});
  const SimplicityCensus before = census(edges);
  ASSERT_GT(before.multi_edges + before.self_loops, 0u);
  swap_edges(edges, {.iterations = 100, .seed = 16});
  const SimplicityCensus after = census(edges);
  EXPECT_EQ(after.multi_edges, 0u);
  EXPECT_EQ(after.self_loops, 0u);
}

TEST(SwapEdges, NoOpOnTinyInputs) {
  EdgeList empty;
  EXPECT_EQ(swap_edges(empty, {.iterations = 2}).total_swapped(), 0u);
  EdgeList one{{0, 1}};
  swap_edges(one, {.iterations = 2});
  EXPECT_EQ(one.size(), 1u);
}

TEST(SwapEdgesSerial, PreservesInvariants) {
  EdgeList edges = erdos_renyi(300, 0.03, 17);
  const auto before = sorted_degrees(edges, 300);
  const SwapStats stats =
      swap_edges_serial(edges, {.iterations = 3, .seed = 18});
  EXPECT_EQ(sorted_degrees(edges, 300), before);
  EXPECT_TRUE(is_simple(edges));
  EXPECT_GT(stats.total_swapped(), 0u);
}

TEST(SwapEdgesSerial, AcceptanceRatesAgreeOnSparseInput) {
  // The parallel table over-approximates the live edge set, so individual
  // decisions can differ from the exact serial table, but on a sparse graph
  // both should accept nearly everything and land within a whisker.
  EdgeList parallel_edges = erdos_renyi(2000, 0.01, 19);
  EdgeList serial_edges = parallel_edges;
  const SwapConfig config{.iterations = 1, .seed = 20};
  const SwapStats par = swap_edges(parallel_edges, config);
  const SwapStats ser = swap_edges_serial(serial_edges, config);
  const double pairs = static_cast<double>(par.iterations[0].attempted);
  const double par_rate = static_cast<double>(par.iterations[0].swapped) / pairs;
  const double ser_rate = static_cast<double>(ser.iterations[0].swapped) / pairs;
  EXPECT_GT(par_rate, 0.9);
  EXPECT_GT(ser_rate, 0.9);
  EXPECT_NEAR(par_rate, ser_rate, 0.02);
}

TEST(SwapEdgesSerial, IdenticalProposalsSameCoinSeeds) {
  // Serial and parallel share permutation targets and coins, so on a graph
  // where no rejections occur the outputs match exactly.
  EdgeList a{{0, 1}, {2, 3}, {4, 5}, {6, 7}};
  EdgeList b = a;
  const SwapConfig config{.iterations = 1, .seed = 21};
  swap_edges(a, config);
  swap_edges_serial(b, config);
  EXPECT_TRUE(same_edge_multiset(a, b));
}

class SwapInvariantSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {
};

TEST_P(SwapInvariantSweep, DegreeAndSimplicityInvariants) {
  const auto [seed, iterations] = GetParam();
  EdgeList edges = erdos_renyi(800, 0.01, seed);
  const auto before = sorted_degrees(edges, 800);
  swap_edges(edges, {.iterations = iterations, .seed = seed * 31 + 7});
  EXPECT_EQ(sorted_degrees(edges, 800), before);
  EXPECT_TRUE(is_simple(edges));
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndIterations, SwapInvariantSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 42u),
                       ::testing::Values(1u, 2u, 10u)));

TEST(SwapEdges, HavelHakimiOutputStaysRealizing) {
  // The full quality pipeline: HH construct then mix; degrees must match
  // the distribution exactly at every step.
  const DegreeDistribution dist = as20_like();
  EdgeList edges = havel_hakimi(dist);
  swap_edges(edges, {.iterations = 5, .seed = 77});
  EXPECT_TRUE(is_simple(edges));
  const auto degrees = degrees_of(edges, dist.num_vertices());
  const auto target = dist.to_degree_sequence();
  for (std::size_t v = 0; v < target.size(); ++v)
    ASSERT_EQ(degrees[v], target[v]) << "vertex " << v;
}

}  // namespace
}  // namespace nullgraph
