// Statistical validation of the swap MCMC (the Milo et al. [22]-style
// experiment of Section III-A): for a tiny degree sequence whose simple
// labeled realizations we can enumerate, repeated swapping from a FIXED
// start must visit every realization with equal frequency.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/double_edge_swap.hpp"
#include "ds/edge_list.hpp"

namespace nullgraph {
namespace {

std::string graph_signature(EdgeList edges) {
  std::vector<EdgeKey> keys;
  keys.reserve(edges.size());
  for (const Edge& e : edges) keys.push_back(e.key());
  std::sort(keys.begin(), keys.end());
  std::string signature;
  for (EdgeKey k : keys) signature += std::to_string(k) + ",";
  return signature;
}

/// Chi-square statistic of observed counts against a uniform expectation.
double chi_square(const std::map<std::string, int>& counts, int trials,
                  std::size_t cells) {
  const double expected = static_cast<double>(trials) / cells;
  double stat = 0.0;
  for (const auto& [sig, count] : counts) {
    const double diff = count - expected;
    stat += diff * diff / expected;
  }
  // Unvisited cells contribute their full expectation.
  stat += expected * static_cast<double>(cells - counts.size());
  return stat;
}

struct UniformityCase {
  const char* name;
  EdgeList start;
  std::size_t num_realizations;  // labeled simple graphs with these degrees
  double chi_square_limit;       // ~ alpha = 1e-4 for (cells - 1) dof
};

class UniformitySweep : public ::testing::TestWithParam<UniformityCase> {};

TEST_P(UniformitySweep, SwapChainVisitsRealizationsUniformly) {
  const UniformityCase& test_case = GetParam();
  const int trials = 6000;
  std::map<std::string, int> counts;
  for (int t = 0; t < trials; ++t) {
    EdgeList edges = test_case.start;
    // Enough iterations on a tiny graph to mix thoroughly.
    swap_edges(edges,
               {.iterations = 30,
                .seed = static_cast<std::uint64_t>(t) * 0x9e3779b9u + 12345});
    EXPECT_TRUE(is_simple(edges));
    ++counts[graph_signature(std::move(edges))];
  }
  EXPECT_EQ(counts.size(), test_case.num_realizations) << test_case.name;
  EXPECT_LT(chi_square(counts, trials, test_case.num_realizations),
            test_case.chi_square_limit)
      << test_case.name;
}

INSTANTIATE_TEST_SUITE_P(
    TinySequences, UniformitySweep,
    ::testing::Values(
        // degrees (1,1,1,1): the 3 perfect matchings of 4 vertices.
        // chi2(2 dof) at 1e-4 ~ 18.4
        UniformityCase{"matching4", {{0, 1}, {2, 3}}, 3, 18.4},
        // degrees (2,2,2,2): the 3 labeled 4-cycles.
        UniformityCase{
            "cycle4", {{0, 1}, {1, 2}, {2, 3}, {3, 0}}, 3, 18.4},
        // degrees (1,1,1,1,1,1): the 15 perfect matchings of 6 vertices.
        // chi2(14 dof) at 1e-4 ~ 42.6
        UniformityCase{
            "matching6", {{0, 1}, {2, 3}, {4, 5}}, 15, 42.6}),
    [](const ::testing::TestParamInfo<UniformityCase>& info) {
      return info.param.name;
    });

TEST(Uniformity, SerialChainAlsoUniform) {
  // Same experiment through the serial reference implementation.
  const int trials = 3000;
  std::map<std::string, int> counts;
  for (int t = 0; t < trials; ++t) {
    EdgeList edges{{0, 1}, {2, 3}};
    swap_edges_serial(
        edges, {.iterations = 30,
                .seed = static_cast<std::uint64_t>(t) * 2654435761u + 7});
    ++counts[graph_signature(std::move(edges))];
  }
  EXPECT_EQ(counts.size(), 3u);
  EXPECT_LT(chi_square(counts, trials, 3), 18.4);
}

TEST(Uniformity, ChainIsIrreducibleAcrossRealizations) {
  // From one fixed start the chain must reach ALL 4-cycle realizations,
  // not merely stay near the start.
  std::set<std::string> visited;
  for (int t = 0; t < 200 && visited.size() < 3; ++t) {
    EdgeList edges{{0, 1}, {1, 2}, {2, 3}, {3, 0}};
    swap_edges(edges, {.iterations = 10,
                       .seed = static_cast<std::uint64_t>(t) + 555});
    visited.insert(graph_signature(std::move(edges)));
  }
  EXPECT_EQ(visited.size(), 3u);
}

}  // namespace
}  // namespace nullgraph
