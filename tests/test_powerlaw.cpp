#include "gen/powerlaw.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

namespace nullgraph {
namespace {

TEST(PowerlawDistribution, VertexCountExact) {
  PowerlawParams params;
  params.n = 12345;
  params.dmax = 50;
  const DegreeDistribution dist = powerlaw_distribution(params);
  EXPECT_EQ(dist.num_vertices(), 12345u);
}

TEST(PowerlawDistribution, StubTotalEven) {
  for (std::uint64_t n : {100u, 101u, 9999u}) {
    PowerlawParams params;
    params.n = n;
    params.dmax = 40;
    const DegreeDistribution dist = powerlaw_distribution(params);
    EXPECT_EQ(dist.num_stubs() % 2, 0u);
  }
}

TEST(PowerlawDistribution, ForcesMaxDegree) {
  PowerlawParams params;
  params.n = 5000;
  params.gamma = 3.0;  // steep: tail would otherwise be empty
  params.dmax = 200;
  const DegreeDistribution dist = powerlaw_distribution(params);
  EXPECT_EQ(dist.max_degree(), 200u);
}

TEST(PowerlawDistribution, GraphicalByDefault) {
  PowerlawParams params;
  params.n = 300;
  params.gamma = 1.5;  // heavy tail, would often fail Erdős–Gallai raw
  params.dmax = 200;
  const DegreeDistribution dist = powerlaw_distribution(params);
  EXPECT_TRUE(dist.is_graphical());
}

TEST(PowerlawDistribution, CountsDecreaseWithDegree) {
  PowerlawParams params;
  params.n = 100000;
  params.gamma = 2.5;
  params.dmax = 100;
  params.force_dmax = false;
  const DegreeDistribution dist = powerlaw_distribution(params);
  // Power law: low-degree classes dominate.
  EXPECT_GT(dist.classes().front().count, dist.classes().back().count);
  EXPECT_EQ(dist.min_degree(), 1u);
}

TEST(PowerlawDistribution, RespectsDmin) {
  PowerlawParams params;
  params.n = 1000;
  params.dmin = 5;
  params.dmax = 50;
  const DegreeDistribution dist = powerlaw_distribution(params);
  EXPECT_GE(dist.min_degree(), 5u);
}

TEST(PowerlawDistribution, RejectsBadParameters) {
  PowerlawParams params;
  params.dmin = 10;
  params.dmax = 5;
  EXPECT_THROW(powerlaw_distribution(params), std::invalid_argument);
  params = {};
  params.dmin = 0;
  EXPECT_THROW(powerlaw_distribution(params), std::invalid_argument);
  params = {};
  params.n = 0;
  EXPECT_THROW(powerlaw_distribution(params), std::invalid_argument);
}

TEST(FitPowerlawGamma, HitsTargetAverage) {
  const double gamma = fit_powerlaw_gamma(10000, 4.0, 1, 200);
  PowerlawParams params;
  params.n = 100000;  // large n: apportionment ~ continuous
  params.gamma = gamma;
  params.dmax = 200;
  params.force_dmax = false;
  const DegreeDistribution dist = powerlaw_distribution(params);
  EXPECT_NEAR(dist.average_degree(), 4.0, 0.25);
}

TEST(FitPowerlawGamma, MonotoneInTarget) {
  const double steep = fit_powerlaw_gamma(1000, 2.0, 1, 100);
  const double flat = fit_powerlaw_gamma(1000, 10.0, 1, 100);
  EXPECT_GT(steep, flat);  // lower average needs steeper decay
}

TEST(SamplePowerlawSequence, BoundsAndParity) {
  const auto degrees = sample_powerlaw_sequence(10001, 2.5, 2, 60, 9);
  ASSERT_EQ(degrees.size(), 10001u);
  std::uint64_t sum = 0;
  for (std::uint64_t d : degrees) {
    EXPECT_GE(d, 2u);
    EXPECT_LE(d, 60u);
    sum += d;
  }
  EXPECT_EQ(sum % 2, 0u);
}

TEST(SamplePowerlawSequence, DeterministicPerSeed) {
  EXPECT_EQ(sample_powerlaw_sequence(100, 2.0, 1, 30, 5),
            sample_powerlaw_sequence(100, 2.0, 1, 30, 5));
  EXPECT_NE(sample_powerlaw_sequence(100, 2.0, 1, 30, 5),
            sample_powerlaw_sequence(100, 2.0, 1, 30, 6));
}

}  // namespace
}  // namespace nullgraph
