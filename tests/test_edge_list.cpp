#include "ds/edge_list.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.hpp"

namespace nullgraph {
namespace {

TEST(VertexCount, EmptyList) { EXPECT_EQ(vertex_count({}), 0u); }

TEST(VertexCount, LargestEndpointPlusOne) {
  EXPECT_EQ(vertex_count({{0, 5}, {2, 3}}), 6u);
}

TEST(DegreesOf, SimplePath) {
  const EdgeList edges{{0, 1}, {1, 2}};
  const auto degrees = degrees_of(edges);
  EXPECT_EQ(degrees, (std::vector<std::uint64_t>{1, 2, 1}));
}

TEST(DegreesOf, SelfLoopCountsTwice) {
  const EdgeList edges{{0, 0}};
  EXPECT_EQ(degrees_of(edges)[0], 2u);
}

TEST(DegreesOf, ExplicitVertexCountExtends) {
  const EdgeList edges{{0, 1}};
  const auto degrees = degrees_of(edges, 5);
  ASSERT_EQ(degrees.size(), 5u);
  EXPECT_EQ(degrees[4], 0u);
}

TEST(Census, CleanGraph) {
  const EdgeList edges{{0, 1}, {1, 2}, {2, 0}};
  const SimplicityCensus result = census(edges);
  EXPECT_EQ(result.self_loops, 0u);
  EXPECT_EQ(result.multi_edges, 0u);
  EXPECT_TRUE(result.simple());
}

TEST(Census, CountsLoopsAndDuplicates) {
  const EdgeList edges{{0, 1}, {1, 0}, {2, 2}, {0, 1}, {3, 3}};
  const SimplicityCensus result = census(edges);
  EXPECT_EQ(result.self_loops, 2u);
  EXPECT_EQ(result.multi_edges, 2u);  // two extra copies of {0,1}
  EXPECT_FALSE(result.simple());
}

TEST(IsSimple, DetectsReversedDuplicate) {
  EXPECT_FALSE(is_simple({{0, 1}, {1, 0}}));
  EXPECT_TRUE(is_simple({{0, 1}, {1, 2}}));
}

TEST(EraseNonsimple, RemovesLoopsAndDuplicates) {
  const EdgeList edges{{0, 1}, {1, 0}, {2, 2}, {1, 2}};
  const EdgeList cleaned = erase_nonsimple(edges);
  EXPECT_EQ(cleaned.size(), 2u);
  EXPECT_TRUE(is_simple(cleaned));
}

TEST(EraseNonsimple, KeepsSimpleGraphIntact) {
  const EdgeList edges{{0, 1}, {1, 2}, {2, 3}};
  EXPECT_TRUE(same_edge_multiset(erase_nonsimple(edges), edges));
}

TEST(SameEdgeMultiset, OrientationAndOrderInsensitive) {
  EXPECT_TRUE(same_edge_multiset({{0, 1}, {2, 3}}, {{3, 2}, {1, 0}}));
  EXPECT_FALSE(same_edge_multiset({{0, 1}}, {{0, 2}}));
  EXPECT_FALSE(same_edge_multiset({{0, 1}}, {{0, 1}, {0, 1}}));
}

TEST(EraseNonsimple, LargeRandomStaysConsistent) {
  Xoshiro256ss rng(404);
  EdgeList edges;
  for (int i = 0; i < 50000; ++i) {
    edges.push_back({static_cast<VertexId>(rng.bounded(300)),
                     static_cast<VertexId>(rng.bounded(300))});
  }
  const EdgeList cleaned = erase_nonsimple(edges);
  EXPECT_TRUE(is_simple(cleaned));
  // Census agrees: originals = kept + loops + duplicates.
  const SimplicityCensus result = census(edges);
  EXPECT_EQ(cleaned.size() + result.self_loops + result.multi_edges,
            edges.size());
}

}  // namespace
}  // namespace nullgraph
