#include "core/mixing.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/metrics.hpp"
#include "gen/datasets.hpp"
#include "gen/havel_hakimi.hpp"
#include "skip/erdos_renyi.hpp"

namespace nullgraph {
namespace {

TEST(CoverageIterations, SparseGraphCoversQuickly) {
  const EdgeList edges = erdos_renyi(20000, 0.0005, 1);
  const std::size_t iterations = coverage_iterations(edges, 2, 64);
  EXPECT_GE(iterations, 1u);
  EXPECT_LE(iterations, 8u);
}

TEST(CoverageIterations, SkewedGraphNeedsMore) {
  const EdgeList sparse = erdos_renyi(20000, 0.0005, 1);
  const EdgeList skewed = havel_hakimi(as20_like());
  const std::size_t sparse_iters = coverage_iterations(sparse, 2, 128);
  const std::size_t skewed_iters = coverage_iterations(skewed, 2, 128);
  EXPECT_GT(skewed_iters, sparse_iters);
  EXPECT_LE(skewed_iters, 128u);
}

TEST(CoverageIterations, EmptyGraphIsZero) {
  EXPECT_EQ(coverage_iterations({}, 1, 8), 0u);
}

TEST(AcceptanceProfile, RatesInUnitIntervalAndStable) {
  const EdgeList edges = erdos_renyi(5000, 0.002, 4);
  const auto rates = acceptance_profile(edges, 6, 5);
  ASSERT_EQ(rates.size(), 6u);
  for (double rate : rates) {
    EXPECT_GE(rate, 0.0);
    EXPECT_LE(rate, 1.0);
  }
  // Sparse ER: high and steady.
  EXPECT_GT(rates.front(), 0.9);
  EXPECT_NEAR(rates.front(), rates.back(), 0.05);
}

TEST(StatisticTrace, RecordsInitialAndPerIteration) {
  const EdgeList edges = erdos_renyi(1000, 0.01, 6);
  const auto trace = statistic_trace(
      edges, 5, [](const EdgeList& e) { return degree_assortativity(e); },
      7);
  ASSERT_EQ(trace.size(), 6u);
  EXPECT_NEAR(trace[0], degree_assortativity(edges), 1e-12);
}

TEST(Autocorrelation, WhiteNoiseDecaysImmediately) {
  std::vector<double> noise;
  std::uint64_t state = 42;
  for (int i = 0; i < 2000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    noise.push_back(static_cast<double>(state >> 11) * 0x1.0p-53);
  }
  const auto acf = autocorrelation(noise, 10);
  EXPECT_NEAR(acf[0], 1.0, 1e-9);
  for (std::size_t lag = 1; lag <= 10; ++lag)
    EXPECT_LT(std::abs(acf[lag]), 0.1) << "lag " << lag;
}

TEST(Autocorrelation, PersistentSignalStaysHigh) {
  std::vector<double> ramp;
  for (int i = 0; i < 200; ++i) ramp.push_back(static_cast<double>(i));
  const auto acf = autocorrelation(ramp, 5);
  EXPECT_GT(acf[1], 0.9);
}

TEST(Autocorrelation, ConstantTraceIsZero) {
  const std::vector<double> constant(100, 3.0);
  const auto acf = autocorrelation(constant, 5);
  for (double value : acf) EXPECT_DOUBLE_EQ(value, 0.0);
}

TEST(DecorrelationLag, WhiteNoiseIsOne) {
  std::vector<double> noise;
  std::uint64_t state = 7;
  for (int i = 0; i < 2000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    noise.push_back(static_cast<double>(state >> 11) * 0x1.0p-53);
  }
  EXPECT_EQ(decorrelation_lag(noise, 10), 1u);
}

TEST(DecorrelationLag, RampNeverDecorrelates) {
  std::vector<double> ramp;
  for (int i = 0; i < 50; ++i) ramp.push_back(static_cast<double>(i));
  EXPECT_EQ(decorrelation_lag(ramp, 5), 6u);
}

TEST(MixingEndToEnd, SwapChainDecorrelatesAssortativity) {
  // Start from the maximally structured Havel-Hakimi realization: the
  // assortativity trace must decorrelate within a modest number of
  // iterations (the paper's empirical-mixing claim, quantified).
  const EdgeList edges = havel_hakimi(as20_like());
  const auto trace = statistic_trace(
      edges, 40, [](const EdgeList& e) { return degree_assortativity(e); },
      11);
  // The chain leaves the structured start quickly...
  EXPECT_GT(std::abs(trace.front() - trace.back()), 1e-4);
  // ...and the steady-state tail looks decorrelated at small lags.
  const std::vector<double> tail(trace.begin() + 10, trace.end());
  EXPECT_LE(decorrelation_lag(tail, 8, 0.5), 8u);
}

}  // namespace
}  // namespace nullgraph
