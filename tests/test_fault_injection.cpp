// Seeded fault injection drives every guardrail recovery path: each
// FaultPlan fault class must end in either a successful repair (simplicity
// and degree sequence restored, verified via census()/degrees_of) or a
// clean typed failure with the documented StatusCode — never a crash, a
// hang, or a silently non-simple edge list.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/null_model.hpp"
#include "ds/degree_distribution.hpp"
#include "robustness/fault_injection.hpp"
#include "robustness/repair.hpp"
#include "robustness/status.hpp"
#include "skip/edge_skip.hpp"

namespace nullgraph {
namespace {

/// Ring on n vertices: simple, connected, every degree exactly 2 — the
/// cleanest possible shuffle input for exact degree assertions.
EdgeList ring(VertexId n) {
  EdgeList edges;
  for (VertexId i = 0; i < n; ++i) edges.push_back({i, (i + 1u) % n});
  return edges;
}

StatusCode strict_shuffle_code(EdgeList edges, const FaultPlan& faults,
                               std::size_t swap_iterations = 4) {
  GenerateConfig config;
  config.swap_iterations = swap_iterations;
  config.guardrails.policy = RecoveryPolicy::kStrict;
  config.guardrails.faults = faults;
  try {
    shuffle_graph(std::move(edges), config);
  } catch (const StatusError& error) {
    return error.code();
  }
  return StatusCode::kOk;
}

// ---------------------------------------------------------------------------
// Fault class: drop_edges

TEST(FaultInjection, DropEdgesStrictSurfacesDegreeMismatch) {
  FaultPlan faults;
  faults.drop_edges = 3;
  EXPECT_EQ(strict_shuffle_code(ring(40), faults),
            StatusCode::kDegreeMismatch);
}

TEST(FaultInjection, DropEdgesRepairRestoresDegrees) {
  const EdgeList original = ring(40);
  const auto target = degrees_of(original, 40);
  FaultPlan faults;
  faults.drop_edges = 3;
  GenerateConfig config;
  config.swap_iterations = 4;
  config.guardrails.policy = RecoveryPolicy::kRepair;
  config.guardrails.faults = faults;
  const GenerateResult result = shuffle_graph(original, config);
  EXPECT_TRUE(result.report.ok()) << result.report.summary();
  EXPECT_TRUE(census(result.edges).simple());
  EXPECT_EQ(degrees_of(result.edges, 40), target);
  EXPECT_TRUE(result.report.repair.touched());
}

// ---------------------------------------------------------------------------
// Fault class: duplicate_edges

TEST(FaultInjection, DuplicatesWithStallStrictSurfacesSwapStagnation) {
  FaultPlan faults;
  faults.duplicate_edges = 4;
  faults.force_swap_stall = true;
  EXPECT_EQ(strict_shuffle_code(ring(40), faults),
            StatusCode::kSwapStagnation);
}

TEST(FaultInjection, DuplicatesWithoutSwapsStrictSurfacesNonSimpleOutput) {
  FaultPlan faults;
  faults.duplicate_edges = 4;
  EXPECT_EQ(strict_shuffle_code(ring(40), faults, /*swap_iterations=*/0),
            StatusCode::kNonSimpleOutput);
}

TEST(FaultInjection, DuplicatesRepairRestoresSimplicityAndDegrees) {
  const EdgeList original = ring(40);
  const auto target = degrees_of(original, 40);
  FaultPlan faults;
  faults.duplicate_edges = 4;
  faults.force_swap_stall = true;  // retries stall too: repair must finish
  GenerateConfig config;
  config.swap_iterations = 4;
  config.guardrails.policy = RecoveryPolicy::kRepair;
  config.guardrails.faults = faults;
  const GenerateResult result = shuffle_graph(original, config);
  EXPECT_TRUE(result.report.ok()) << result.report.summary();
  EXPECT_TRUE(census(result.edges).simple());
  EXPECT_EQ(degrees_of(result.edges, 40), target);
  EXPECT_GE(result.report.repair.duplicates_erased, 1u);
}

// ---------------------------------------------------------------------------
// Fault class: self_loops

TEST(FaultInjection, SelfLoopsStrictSurfacesStagnationUnderStall) {
  FaultPlan faults;
  faults.self_loops = 3;
  faults.force_swap_stall = true;
  EXPECT_EQ(strict_shuffle_code(ring(40), faults),
            StatusCode::kSwapStagnation);
}

TEST(FaultInjection, SelfLoopsRepairRestoresSimplicityAndDegrees) {
  const EdgeList original = ring(40);
  const auto target = degrees_of(original, 40);
  FaultPlan faults;
  faults.self_loops = 3;
  faults.force_swap_stall = true;
  GenerateConfig config;
  config.swap_iterations = 4;
  config.guardrails.policy = RecoveryPolicy::kRepair;
  config.guardrails.faults = faults;
  const GenerateResult result = shuffle_graph(original, config);
  EXPECT_TRUE(result.report.ok()) << result.report.summary();
  EXPECT_TRUE(census(result.edges).simple());
  // Loops raised degrees above the snapshot; repair sheds them exactly.
  EXPECT_EQ(degrees_of(result.edges, 40), target);
  EXPECT_GE(result.report.repair.loops_erased, 1u);
}

// ---------------------------------------------------------------------------
// Fault class: corrupt_prob_entries

TEST(FaultInjection, CorruptProbabilityStrictSurfacesOverflow) {
  const DegreeDistribution dist({{2, 60}, {4, 12}});
  FaultPlan faults;
  faults.corrupt_prob_entries = 1;  // default poison 4.0 > 1
  GenerateConfig config;
  config.guardrails.policy = RecoveryPolicy::kStrict;
  config.guardrails.faults = faults;
  try {
    generate_null_graph(dist, config);
    FAIL() << "expected StatusError";
  } catch (const StatusError& error) {
    EXPECT_EQ(error.code(), StatusCode::kProbabilityOverflow);
  }
}

TEST(FaultInjection, CorruptProbabilityRepairSanitizesAndCompletes) {
  const DegreeDistribution dist({{2, 60}, {4, 12}});
  FaultPlan faults;
  faults.corrupt_prob_entries = 2;
  faults.corrupt_prob_value = std::numeric_limits<double>::quiet_NaN();
  GenerateConfig config;
  config.guardrails.policy = RecoveryPolicy::kRepair;
  config.guardrails.faults = faults;
  const GenerateResult result = generate_null_graph(dist, config);
  EXPECT_TRUE(result.report.ok()) << result.report.summary();
  EXPECT_GE(result.report.probability_entries_sanitized, 1u);
  EXPECT_TRUE(census(result.edges).simple());
}

TEST(FaultInjection, NaNProbabilityInReportModeDoesNotHang) {
  // Record-only mode leaves the poisoned matrix in place: the edge-skip
  // traversal must skip the NaN space rather than loop or corrupt indices.
  const DegreeDistribution dist({{2, 100}});
  ProbabilityMatrix P(1);
  P.set(0, 0, std::numeric_limits<double>::quiet_NaN());
  const EdgeList edges = edge_skip_generate(P, dist, {});
  EXPECT_TRUE(edges.empty());

  FaultPlan faults;
  faults.corrupt_prob_entries = 1;
  faults.corrupt_prob_value = std::numeric_limits<double>::quiet_NaN();
  GenerateConfig config;
  config.guardrails.policy = RecoveryPolicy::kReport;  // record, don't fix
  config.guardrails.faults = faults;
  const GenerateResult result = generate_null_graph(dist, config);
  EXPECT_FALSE(result.report.ok());
  EXPECT_EQ(result.report.first_error().code(),
            StatusCode::kProbabilityOverflow);
}

// ---------------------------------------------------------------------------
// Fault class: force_swap_stall

TEST(FaultInjection, StallAloneOnCleanGraphIsNotAnError) {
  // A stalled chain on an already-simple graph violates nothing: the
  // output is a valid (if unmixed) sample; the report stays clean.
  const DegreeDistribution dist({{2, 60}});
  FaultPlan faults;
  faults.force_swap_stall = true;
  GenerateConfig config;
  config.guardrails.policy = RecoveryPolicy::kStrict;
  config.guardrails.faults = faults;
  const GenerateResult result = generate_null_graph(dist, config);
  EXPECT_TRUE(result.report.ok());
  EXPECT_EQ(result.swap_stats.total_swapped(), 0u);
  EXPECT_TRUE(census(result.edges).simple());
}

// ---------------------------------------------------------------------------
// All fault classes at once, end to end through generate

TEST(FaultInjection, CombinedFaultsRepairEndToEnd) {
  const DegreeDistribution dist({{2, 80}, {4, 20}, {8, 4}});
  FaultPlan faults;
  faults.drop_edges = 2;
  faults.duplicate_edges = 2;
  faults.self_loops = 2;
  faults.corrupt_prob_entries = 1;
  faults.force_swap_stall = true;
  GenerateConfig config;
  config.seed = 9;
  config.swap_iterations = 3;
  config.guardrails.policy = RecoveryPolicy::kRepair;
  config.guardrails.max_retries = 2;
  config.guardrails.faults = faults;
  const GenerateResult result = generate_null_graph(dist, config);
  EXPECT_TRUE(result.report.ok()) << result.report.summary();
  const SimplicityCensus c = census(result.edges);
  EXPECT_EQ(c.self_loops, 0u);
  EXPECT_EQ(c.multi_edges, 0u);
  EXPECT_TRUE(result.report.repair.touched());
}

TEST(FaultInjection, RepairFallsBackAfterRetriesExhaust) {
  // Retries only fire when degrees are intact but simplicity is not, so
  // feed a dirty input (its own degrees are the snapshot) and force every
  // retry to stall; the pass must still converge and count the retries.
  EdgeList original = ring(30);
  original.push_back({0, 1});  // duplicate of the first ring edge
  FaultPlan faults;
  faults.force_swap_stall = true;
  GenerateConfig config;
  config.guardrails.policy = RecoveryPolicy::kRepair;
  config.guardrails.max_retries = 2;
  config.guardrails.faults = faults;
  const GenerateResult result = shuffle_graph(original, config);
  EXPECT_EQ(result.report.retries_used, 2u);
  EXPECT_TRUE(result.report.ok()) << result.report.summary();
  EXPECT_TRUE(census(result.edges).simple());
}

// ---------------------------------------------------------------------------
// Determinism: a fault scenario reproduces exactly

TEST(FaultInjection, InjectionAndRepairAreDeterministic) {
  FaultPlan faults;
  faults.seed = 1234;
  faults.drop_edges = 2;
  faults.duplicate_edges = 2;
  faults.self_loops = 1;
  EdgeList a = ring(50), b = ring(50);
  inject_edge_faults(a, faults);
  inject_edge_faults(b, faults);
  EXPECT_EQ(a, b);

  const auto target = degrees_of(ring(50), 50);
  const RepairStats sa = repair_to_degrees(a, target, 77);
  const RepairStats sb = repair_to_degrees(b, target, 77);
  EXPECT_EQ(a, b);
  EXPECT_EQ(sa.residual_deficit, sb.residual_deficit);
  EXPECT_TRUE(sa.complete());
  EXPECT_EQ(degrees_of(a, 50), target);
}

// Dirty legitimate input (no faults): kRepair finishes what swaps cannot.
TEST(FaultInjection, RepairPolicyCleansDirtyShuffleInput) {
  EdgeList dirty{{0, 0}, {1, 2}, {1, 2}, {3, 4}, {5, 6}, {7, 8}, {2, 3}};
  const auto target = degrees_of(dirty, 9);  // loops count 2, dups count
  GenerateConfig config;
  config.seed = 5;
  config.swap_iterations = 6;
  config.guardrails.policy = RecoveryPolicy::kRepair;
  const GenerateResult result = shuffle_graph(std::move(dirty), config);
  EXPECT_TRUE(result.report.ok()) << result.report.summary();
  EXPECT_TRUE(census(result.edges).simple());
  EXPECT_EQ(degrees_of(result.edges, 9), target);
}

}  // namespace
}  // namespace nullgraph
