#include "ds/degree_distribution.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "ds/edge_list.hpp"
#include "util/rng.hpp"

namespace nullgraph {
namespace {

TEST(DegreeDistribution, SortsAndMergesClasses) {
  const DegreeDistribution dist({{3, 1}, {1, 3}, {3, 2}, {2, 0}});
  ASSERT_EQ(dist.num_classes(), 2u);
  EXPECT_EQ(dist.classes()[0], (DegreeClass{1, 3}));
  EXPECT_EQ(dist.classes()[1], (DegreeClass{3, 3}));
}

TEST(DegreeDistribution, ThrowsOnOddStubTotal) {
  EXPECT_THROW(DegreeDistribution({{3, 1}}), std::invalid_argument);
  EXPECT_NO_THROW(DegreeDistribution({{3, 2}}));
}

TEST(DegreeDistribution, BasicMoments) {
  const DegreeDistribution dist({{1, 4}, {2, 3}, {5, 2}});
  EXPECT_EQ(dist.num_vertices(), 9u);
  EXPECT_EQ(dist.num_stubs(), 20u);
  EXPECT_EQ(dist.num_edges(), 10u);
  EXPECT_EQ(dist.max_degree(), 5u);
  EXPECT_EQ(dist.min_degree(), 1u);
  EXPECT_DOUBLE_EQ(dist.average_degree(), 20.0 / 9.0);
}

TEST(DegreeDistribution, EmptyDistribution) {
  const DegreeDistribution dist;
  EXPECT_TRUE(dist.empty());
  EXPECT_EQ(dist.num_vertices(), 0u);
  EXPECT_EQ(dist.max_degree(), 0u);
  EXPECT_TRUE(dist.is_graphical());
}

TEST(DegreeDistribution, ClassOffsetsArePrefixSums) {
  const DegreeDistribution dist({{1, 4}, {2, 3}, {5, 2}});
  EXPECT_EQ(dist.class_offset(0), 0u);
  EXPECT_EQ(dist.class_offset(1), 4u);
  EXPECT_EQ(dist.class_offset(2), 7u);
  EXPECT_EQ(dist.class_offset(3), 9u);
}

TEST(DegreeDistribution, ClassOfVertexInverseOfOffsets) {
  const DegreeDistribution dist({{1, 4}, {2, 3}, {5, 2}});
  for (std::uint64_t v = 0; v < dist.num_vertices(); ++v) {
    const std::size_t c = dist.class_of_vertex(v);
    EXPECT_GE(v, dist.class_offset(c));
    EXPECT_LT(v, dist.class_offset(c + 1));
  }
  EXPECT_EQ(dist.degree_of_vertex(0), 1u);
  EXPECT_EQ(dist.degree_of_vertex(4), 2u);
  EXPECT_EQ(dist.degree_of_vertex(8), 5u);
}

TEST(DegreeDistribution, ClassOfDegreeFindsExactOrEnd) {
  const DegreeDistribution dist({{1, 4}, {2, 3}, {5, 2}});
  EXPECT_EQ(dist.class_of_degree(1), 0u);
  EXPECT_EQ(dist.class_of_degree(5), 2u);
  EXPECT_EQ(dist.class_of_degree(3), dist.num_classes());
  EXPECT_EQ(dist.class_of_degree(99), dist.num_classes());
}

TEST(DegreeDistribution, SequenceRoundTrip) {
  const std::vector<std::uint64_t> degrees{3, 1, 4, 1, 5, 4, 4, 2};
  const auto dist = DegreeDistribution::from_degree_sequence(degrees);
  auto sorted = degrees;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(dist.to_degree_sequence(), sorted);
}

TEST(DegreeDistribution, FromEdges) {
  const EdgeList edges{{0, 1}, {1, 2}, {1, 3}};
  const auto dist = DegreeDistribution::from_edges(edges);
  // degrees: 1,3,1,1
  ASSERT_EQ(dist.num_classes(), 2u);
  EXPECT_EQ(dist.classes()[0], (DegreeClass{1, 3}));
  EXPECT_EQ(dist.classes()[1], (DegreeClass{3, 1}));
}

// --- Erdős–Gallai ---------------------------------------------------------

/// Textbook O(n^2) Erdős–Gallai on a raw sequence, as the oracle.
bool erdos_gallai_naive(std::vector<std::uint64_t> degrees) {
  std::sort(degrees.rbegin(), degrees.rend());
  const std::size_t n = degrees.size();
  std::uint64_t total = std::accumulate(degrees.begin(), degrees.end(), 0ULL);
  if (total % 2 != 0) return false;
  for (std::size_t k = 1; k <= n; ++k) {
    unsigned long long lhs = 0;
    for (std::size_t i = 0; i < k; ++i) lhs += degrees[i];
    unsigned long long rhs = static_cast<unsigned long long>(k) * (k - 1);
    for (std::size_t i = k; i < n; ++i)
      rhs += std::min<std::uint64_t>(degrees[i], k);
    if (lhs > rhs) return false;
  }
  return true;
}

TEST(ErdosGallai, KnownGraphicalSequences) {
  EXPECT_TRUE(DegreeDistribution({{2, 3}}).is_graphical());      // triangle
  EXPECT_TRUE(DegreeDistribution({{1, 2}}).is_graphical());      // one edge
  EXPECT_TRUE(DegreeDistribution({{3, 4}}).is_graphical());      // K4
  EXPECT_TRUE(DegreeDistribution({{1, 3}, {3, 1}}).is_graphical());  // star
}

TEST(ErdosGallai, KnownNonGraphicalSequences) {
  // Two vertices of degree 3 with only two degree-1 partners: impossible.
  EXPECT_FALSE(DegreeDistribution({{3, 2}, {1, 2}, {0, 1}}).is_graphical());
  // n-1 = 3 < 4: single vertex of degree 4 with 4 degree-1 partners is
  // fine, but degree 4 with only 2 partners is not.
  EXPECT_FALSE(DegreeDistribution({{4, 1}, {1, 2}, {0, 2}}).is_graphical());
}

class ErdosGallaiSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ErdosGallaiSweep, MatchesNaiveOracleOnRandomSequences) {
  Xoshiro256ss rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 2 + rng.bounded(12);
    std::vector<std::uint64_t> degrees(n);
    for (auto& d : degrees) d = rng.bounded(n + 2);  // may exceed n-1
    // Make the stub total even so the distribution constructor accepts it.
    const std::uint64_t total =
        std::accumulate(degrees.begin(), degrees.end(), 0ULL);
    if (total % 2 != 0) {
      if (degrees[0] > 0)
        --degrees[0];
      else
        ++degrees[0];
    }
    const auto dist = DegreeDistribution::from_degree_sequence(degrees);
    EXPECT_EQ(dist.is_graphical(), erdos_gallai_naive(degrees))
        << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ErdosGallaiSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 77, 999));

TEST(ErdosGallai, LargeRegularIsGraphical) {
  EXPECT_TRUE(DegreeDistribution({{10, 100000}}).is_graphical());
}

TEST(ErdosGallai, HubHeavierThanGraphFails) {
  // A vertex of degree 2000 in a 1001-vertex graph.
  EXPECT_FALSE(
      DegreeDistribution({{2000, 1}, {2, 1000}}).is_graphical());
}

}  // namespace
}  // namespace nullgraph
