// Distributional property tests for edge-skipping: beyond matching the
// expected COUNT, the skip process must make each candidate pair an
// independent Bernoulli(p) — per-index inclusion frequencies and simple
// pairwise-independence probes across many seeds.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "ds/degree_distribution.hpp"
#include "prob/probability_matrix.hpp"
#include "skip/edge_skip.hpp"

namespace nullgraph {
namespace {

TEST(EdgeSkipDistribution, PerPairInclusionIsUniform) {
  // Single class of 30 vertices, p = 0.2: each of the 435 pairs must be
  // selected with frequency ~ p across R independent graphs.
  const DegreeDistribution dist({{2, 30}});
  ProbabilityMatrix P(1);
  const double p = 0.2;
  P.set(0, 0, p);
  const int runs = 4000;
  std::map<EdgeKey, int> counts;
  for (int r = 0; r < runs; ++r) {
    for (const Edge& e :
         edge_skip_generate_serial(P, dist, 1000 + static_cast<std::uint64_t>(r)))
      ++counts[e.key()];
  }
  EXPECT_EQ(counts.size(), 435u);  // every pair appears at least once
  const double sigma = std::sqrt(p * (1 - p) / runs);
  int outliers = 0;
  for (const auto& [key, count] : counts) {
    const double freq = static_cast<double>(count) / runs;
    if (std::abs(freq - p) > 4 * sigma) ++outliers;
  }
  // 4-sigma outliers among 435 pairs: expected ~0.03; allow a couple.
  EXPECT_LE(outliers, 2);
}

TEST(EdgeSkipDistribution, ChiSquareOverPairFrequencies) {
  const DegreeDistribution dist({{2, 20}});  // 190 pairs
  ProbabilityMatrix P(1);
  const double p = 0.1;
  P.set(0, 0, p);
  const int runs = 3000;
  std::map<EdgeKey, int> counts;
  for (int r = 0; r < runs; ++r) {
    for (const Edge& e :
         edge_skip_generate_serial(P, dist, 77 + static_cast<std::uint64_t>(r)))
      ++counts[e.key()];
  }
  // Chi-square against Binomial(runs, p) mean with normal approximation:
  // sum over pairs of (count - runs*p)^2 / (runs*p*(1-p)) ~ chi2(190).
  const double expected = runs * p;
  const double variance = runs * p * (1 - p);
  double stat = 0.0;
  std::size_t cells = 190;
  for (const auto& [key, count] : counts) {
    const double diff = count - expected;
    stat += diff * diff / variance;
  }
  stat += (expected * expected / variance) *
          static_cast<double>(cells - counts.size());
  // chi2(190) at alpha ~ 1e-4 is about 266.
  EXPECT_LT(stat, 266.0);
}

TEST(EdgeSkipDistribution, AdjacentIndicesUncorrelated) {
  // Geometric skipping touches indices sequentially; verify no induced
  // correlation between adjacent space indices: P(both of a fixed adjacent
  // index pair selected) ~ p^2.
  const DegreeDistribution dist({{2, 40}});
  ProbabilityMatrix P(1);
  const double p = 0.15;
  P.set(0, 0, p);
  const int runs = 6000;
  // Track two fixed adjacent candidate pairs in the triangular space:
  // index 0 -> (u=1,v=0), index 1 -> (u=2,v=0).
  const EdgeKey first = Edge{1, 0}.key();
  const EdgeKey second = Edge{2, 0}.key();
  int both = 0, first_only = 0, second_only = 0;
  for (int r = 0; r < runs; ++r) {
    bool saw_first = false, saw_second = false;
    for (const Edge& e :
         edge_skip_generate_serial(P, dist, 5000 + static_cast<std::uint64_t>(r))) {
      if (e.key() == first) saw_first = true;
      if (e.key() == second) saw_second = true;
    }
    both += saw_first && saw_second;
    first_only += saw_first;
    second_only += saw_second;
  }
  const double p1 = static_cast<double>(first_only) / runs;
  const double p2 = static_cast<double>(second_only) / runs;
  const double p12 = static_cast<double>(both) / runs;
  const double sigma =
      std::sqrt(p * p * (1 - p * p) / runs);  // for the joint frequency
  EXPECT_NEAR(p1, p, 5 * std::sqrt(p * (1 - p) / runs));
  EXPECT_NEAR(p2, p, 5 * std::sqrt(p * (1 - p) / runs));
  EXPECT_NEAR(p12, p * p, 6 * sigma);
}

TEST(EdgeSkipDistribution, CrossSpaceCountsIndependentlyCorrect) {
  // Two classes with different probabilities: each space's count matches
  // its own p within binomial bounds, simultaneously.
  const DegreeDistribution dist({{1, 100}, {3, 50}});
  ProbabilityMatrix P(2);
  P.set(0, 0, 0.02);
  P.set(1, 0, 0.10);
  P.set(1, 1, 0.30);
  double count_00 = 0, count_10 = 0, count_11 = 0;
  const int runs = 300;
  for (int r = 0; r < runs; ++r) {
    for (const Edge& e :
         edge_skip_generate(P, dist, {.seed = 42 + static_cast<std::uint64_t>(r)})) {
      const Edge c = e.canonical();
      const bool u_low = c.u < 100, v_low = c.v < 100;
      if (u_low && v_low)
        ++count_00;
      else if (!u_low && !v_low)
        ++count_11;
      else
        ++count_10;
    }
  }
  auto check = [&](double total, double p, double space) {
    const double expected = p * space;
    const double sigma = std::sqrt(p * (1 - p) * space / runs);
    EXPECT_NEAR(total / runs, expected, 5 * sigma + 0.5);
  };
  check(count_00, 0.02, 100.0 * 99.0 / 2.0);
  check(count_10, 0.10, 100.0 * 50.0);
  check(count_11, 0.30, 50.0 * 49.0 / 2.0);
}

}  // namespace
}  // namespace nullgraph
