#include "io/graph_io.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace nullgraph {
namespace {

TEST(EdgeListIo, RoundTrip) {
  const EdgeList edges{{0, 1}, {5, 2}, {3, 3}};
  std::stringstream stream;
  write_edge_list(stream, edges);
  EXPECT_EQ(read_edge_list(stream), edges);
}

TEST(EdgeListIo, SkipsCommentsAndBlanks) {
  std::stringstream stream(
      "# SNAP style header\n% matrix market style\n\n  \t\n0 1\n2 3\n");
  const EdgeList edges = read_edge_list(stream);
  EXPECT_EQ(edges, (EdgeList{{0, 1}, {2, 3}}));
}

TEST(EdgeListIo, ThrowsOnMalformedLine) {
  std::stringstream stream("0 1\nbroken\n");
  EXPECT_THROW(read_edge_list(stream), std::runtime_error);
}

TEST(EdgeListIo, RejectsTrailingTokens) {
  std::stringstream stream("1 2 3\n");
  const auto result = try_read_edge_list(stream);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoMalformed);
}

TEST(EdgeListIo, RejectsNegativeVertexIds) {
  // "-1" must not wrap into a huge unsigned id.
  std::stringstream stream("-1 2\n");
  const auto result = try_read_edge_list(stream);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoMalformed);
  EXPECT_NE(result.status().message().find("negative"), std::string::npos);
}

TEST(EdgeListIo, RejectsIdsBeyondVertexIdRange) {
  std::stringstream stream("4294967296 2\n");  // 2^32 > max VertexId
  const auto result = try_read_edge_list(stream);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoMalformed);
}

TEST(EdgeListIo, RejectsSingleField) {
  std::stringstream stream("7\n");
  const auto result = try_read_edge_list(stream);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoMalformed);
}

TEST(EdgeListIo, TryReadMissingFileReturnsIoError) {
  const auto result = try_read_edge_list_file("/nonexistent/nope.txt");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(EdgeListIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/nullgraph_edges.txt";
  const EdgeList edges{{10, 20}, {30, 40}};
  write_edge_list_file(path, edges);
  EXPECT_EQ(read_edge_list_file(path), edges);
}

TEST(EdgeListIo, MissingFileThrows) {
  EXPECT_THROW(read_edge_list_file("/nonexistent/nope.txt"),
               std::runtime_error);
}

TEST(DegreeDistributionIo, RoundTrip) {
  const DegreeDistribution dist({{1, 10}, {3, 4}, {7, 2}});
  std::stringstream stream;
  write_degree_distribution(stream, dist);
  EXPECT_EQ(read_degree_distribution(stream), dist);
}

TEST(DegreeDistributionIo, CommentsAndValidation) {
  std::stringstream stream("# degree count\n2 5\n4 1\n");
  const DegreeDistribution dist = read_degree_distribution(stream);
  EXPECT_EQ(dist.num_vertices(), 6u);
  EXPECT_EQ(dist.num_stubs(), 14u);
}

TEST(DegreeDistributionIo, OddTotalRejectedAsNotGraphical) {
  std::stringstream stream("3 1\n");
  const auto result = try_read_degree_distribution(stream);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotGraphical);
  // The throwing wrapper surfaces the same failure as a StatusError.
  std::stringstream again("3 1\n");
  try {
    read_degree_distribution(again);
    FAIL() << "expected StatusError";
  } catch (const StatusError& error) {
    EXPECT_EQ(error.code(), StatusCode::kNotGraphical);
  }
}

TEST(DegreeDistributionIo, RejectsTrailingTokensAndNegatives) {
  std::stringstream trailing("2 5 9\n");
  EXPECT_EQ(try_read_degree_distribution(trailing).status().code(),
            StatusCode::kIoMalformed);
  std::stringstream negative("2 -5\n");
  EXPECT_EQ(try_read_degree_distribution(negative).status().code(),
            StatusCode::kIoMalformed);
}

TEST(DegreeDistributionIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/nullgraph_dist.txt";
  const DegreeDistribution dist({{2, 7}, {5, 2}});
  write_degree_distribution_file(path, dist);
  EXPECT_EQ(read_degree_distribution_file(path), dist);
}

}  // namespace
}  // namespace nullgraph
