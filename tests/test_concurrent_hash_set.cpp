#include "ds/concurrent_hash_set.hpp"

#include <gtest/gtest.h>
#include <omp.h>

#include <bit>
#include <set>
#include <vector>

#include "exec/exec.hpp"
#include "util/rng.hpp"

namespace nullgraph {
namespace {

TEST(ConcurrentHashSet, InsertReportsPriorPresence) {
  ConcurrentHashSet set(10);
  EXPECT_FALSE(set.test_and_set(42));  // new
  EXPECT_TRUE(set.test_and_set(42));   // already there
  EXPECT_FALSE(set.test_and_set(43));
}

TEST(ConcurrentHashSet, ContainsAfterInsert) {
  ConcurrentHashSet set(10);
  EXPECT_FALSE(set.contains(7));
  set.preload(7);
  EXPECT_TRUE(set.contains(7));
  EXPECT_FALSE(set.contains(8));
}

TEST(ConcurrentHashSet, CapacityIsPowerOfTwoWithHeadroom) {
  for (std::size_t keys : {0ul, 1ul, 7ul, 8ul, 100ul, 4096ul, 100000ul}) {
    ConcurrentHashSet set(keys);
    EXPECT_TRUE(std::has_single_bit(set.capacity()));
    EXPECT_GE(set.capacity(), std::max<std::size_t>(16, 2 * keys));
  }
}

TEST(ConcurrentHashSet, SizeTracksDistinctKeys) {
  ConcurrentHashSet set(100);
  for (std::uint64_t k = 0; k < 50; ++k) set.preload(k * 977 + 1);
  for (std::uint64_t k = 0; k < 50; ++k)
    EXPECT_TRUE(set.test_and_set(k * 977 + 1));
  EXPECT_EQ(set.size(), 50u);
}

TEST(ConcurrentHashSet, ClearEmptiesTable) {
  ConcurrentHashSet set(100);
  for (std::uint64_t k = 1; k <= 60; ++k) set.preload(k);
  set.clear();
  EXPECT_EQ(set.size(), 0u);
  for (std::uint64_t k = 1; k <= 60; ++k) EXPECT_FALSE(set.contains(k));
  EXPECT_FALSE(set.test_and_set(5));
}

TEST(ConcurrentHashSet, SurvivesFullLoadFactor) {
  // expected_keys keys must fit without the full-table assertion firing.
  const std::size_t keys = 10000;
  ConcurrentHashSet set(keys);
  Xoshiro256ss rng(7);
  std::set<std::uint64_t> oracle;
  while (oracle.size() < keys) oracle.insert(rng.next() | 1);
  for (std::uint64_t k : oracle) EXPECT_FALSE(set.test_and_set(k));
  EXPECT_EQ(set.size(), keys);
}

class ProbingSweep : public ::testing::TestWithParam<Probing> {};

TEST_P(ProbingSweep, MatchesStdSetOracle) {
  ConcurrentHashSet set(5000, GetParam());
  std::set<std::uint64_t> oracle;
  Xoshiro256ss rng(99);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t key = rng.bounded(8000) + 1;  // forces collisions
    const bool was_present = !oracle.insert(key).second;
    EXPECT_EQ(set.test_and_set(key), was_present) << "key " << key;
  }
  EXPECT_EQ(set.size(), oracle.size());
  for (std::uint64_t k : oracle) EXPECT_TRUE(set.contains(k));
}

TEST_P(ProbingSweep, AdversarialSameBucketKeys) {
  // Many keys, tiny table: long probe chains on both policies.
  ConcurrentHashSet set(32, GetParam());
  for (std::uint64_t k = 1; k <= 32; ++k) EXPECT_FALSE(set.test_and_set(k));
  for (std::uint64_t k = 1; k <= 32; ++k) EXPECT_TRUE(set.test_and_set(k));
}

INSTANTIATE_TEST_SUITE_P(Policies, ProbingSweep,
                         ::testing::Values(Probing::kLinear,
                                           Probing::kQuadratic));

TEST(ConcurrentHashSet, InsertReturnsTypedOutcome) {
  ConcurrentHashSet set(10);
  EXPECT_EQ(set.insert(42), InsertOutcome::kInserted);
  EXPECT_EQ(set.insert(42), InsertOutcome::kAlreadyPresent);
  EXPECT_EQ(set.insert(43), InsertOutcome::kInserted);
}

TEST(ConcurrentHashSet, InsertStatusMapsOnlyFullToError) {
  EXPECT_EQ(insert_status(InsertOutcome::kInserted), StatusCode::kOk);
  EXPECT_EQ(insert_status(InsertOutcome::kAlreadyPresent), StatusCode::kOk);
  EXPECT_EQ(insert_status(InsertOutcome::kTableFull),
            StatusCode::kCapacityExhausted);
}

#ifdef NDEBUG
// Release-only: debug builds assert the <= 0.5 load-factor invariant long
// before the table can physically fill, so the bounded-probe verdict is
// only reachable with NDEBUG.
TEST(ConcurrentHashSet, OverfilledTableReportsFullNotLivelock) {
  ConcurrentHashSet set(1);  // minimum capacity: 16 slots
  const std::size_t capacity = set.capacity();
  for (std::uint64_t k = 1; k <= capacity; ++k)
    EXPECT_EQ(set.insert(k), InsertOutcome::kInserted);
  // Every slot taken: the probe budget must return a definitive verdict
  // (historically this was an unbounded probe loop).
  EXPECT_EQ(set.insert(capacity + 1), InsertOutcome::kTableFull);
  // test_and_set degrades to "reject the candidate" — conservative for the
  // swap phase.
  EXPECT_TRUE(set.test_and_set(capacity + 1));
  // Keys that did get in are still found.
  EXPECT_EQ(set.insert(1), InsertOutcome::kAlreadyPresent);
}
#endif

TEST(ConcurrentHashSet, ParallelInsertExactlyOneWinnerPerKey) {
  const std::size_t keys = 50000;
  ConcurrentHashSet set(keys);
  // Every key inserted twice from a parallel loop: exactly one call per key
  // may report "new".
  const exec::ParallelContext ctx;
  const std::size_t winners = exec::reduce<std::size_t>(
      ctx, 2 * keys, 64, 0,
      [&](const exec::Chunk& chunk) {
        std::size_t mine = 0;
        for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
          const std::uint64_t key = static_cast<std::uint64_t>(i % keys) + 1;
          if (!set.test_and_set(key)) ++mine;
        }
        return mine;
      },
      [](std::size_t a, std::size_t b) { return a + b; });
  EXPECT_EQ(winners, keys);
  EXPECT_EQ(set.size(), keys);
}

TEST(ConcurrentHashSet, ParallelMixedContention) {
  const std::size_t distinct = 997;  // prime, heavy contention
  ConcurrentHashSet set(distinct);
  const exec::ParallelContext ctx;
  const std::size_t winners = exec::reduce<std::size_t>(
      ctx, 100000, exec::kDefaultGrain, 0,
      [&](const exec::Chunk& chunk) {
        std::size_t mine = 0;
        for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
          std::uint64_t state = i;
          const std::uint64_t key = splitmix64_next(state) % distinct + 1;
          if (!set.test_and_set(key)) ++mine;
        }
        return mine;
      },
      [](std::size_t a, std::size_t b) { return a + b; });
  EXPECT_EQ(winners, set.size());
  EXPECT_LE(set.size(), distinct);
}

}  // namespace
}  // namespace nullgraph
