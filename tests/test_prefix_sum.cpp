#include "util/prefix_sum.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "util/rng.hpp"

namespace nullgraph {
namespace {

TEST(ExclusivePrefixSum, EmptyVector) {
  std::vector<std::uint64_t> values;
  EXPECT_EQ(exclusive_prefix_sum(values), 0u);
}

TEST(ExclusivePrefixSum, SingleElement) {
  std::vector<std::uint64_t> values{7};
  EXPECT_EQ(exclusive_prefix_sum(values), 7u);
  EXPECT_EQ(values[0], 0u);
}

TEST(ExclusivePrefixSum, SmallKnown) {
  std::vector<std::uint64_t> values{1, 2, 3, 4};
  EXPECT_EQ(exclusive_prefix_sum(values), 10u);
  EXPECT_EQ(values, (std::vector<std::uint64_t>{0, 1, 3, 6}));
}

TEST(InclusivePrefixSum, SmallKnown) {
  std::vector<std::uint64_t> values{1, 2, 3, 4};
  EXPECT_EQ(inclusive_prefix_sum(values), 10u);
  EXPECT_EQ(values, (std::vector<std::uint64_t>{1, 3, 6, 10}));
}

TEST(InclusivePrefixSum, Empty) {
  std::vector<std::int64_t> values;
  EXPECT_EQ(inclusive_prefix_sum(values), 0);
}

TEST(ExclusivePrefixSum, SignedValues) {
  std::vector<std::int64_t> values{5, -3, 2, -4};
  EXPECT_EQ(exclusive_prefix_sum(values), 0);
  EXPECT_EQ(values, (std::vector<std::int64_t>{0, 5, 2, 4}));
}

TEST(ExclusivePrefixSum, DoubleValues) {
  std::vector<double> values{0.5, 1.5, 2.0};
  EXPECT_DOUBLE_EQ(exclusive_prefix_sum(values), 4.0);
  EXPECT_DOUBLE_EQ(values[2], 2.0);
}

class PrefixSumSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(PrefixSumSweep, MatchesStdExclusiveScan) {
  const auto [n, seed] = GetParam();
  Xoshiro256ss rng(seed);
  std::vector<std::uint64_t> values(n);
  for (auto& v : values) v = rng.bounded(1000);
  std::vector<std::uint64_t> expected(n);
  std::exclusive_scan(values.begin(), values.end(), expected.begin(), 0ULL);
  const std::uint64_t total =
      std::accumulate(values.begin(), values.end(), 0ULL);
  EXPECT_EQ(exclusive_prefix_sum(values), total);
  EXPECT_EQ(values, expected);
}

TEST_P(PrefixSumSweep, MatchesStdInclusiveScan) {
  const auto [n, seed] = GetParam();
  Xoshiro256ss rng(seed ^ 0xabcdef);
  std::vector<std::uint64_t> values(n);
  for (auto& v : values) v = rng.bounded(1000);
  std::vector<std::uint64_t> expected(n);
  std::inclusive_scan(values.begin(), values.end(), expected.begin());
  inclusive_prefix_sum(values);
  EXPECT_EQ(values, expected);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, PrefixSumSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 15, 64, 1000, 65537),
                       ::testing::Values(1u, 42u, 20260705u)));

}  // namespace
}  // namespace nullgraph
