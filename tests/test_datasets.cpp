#include "gen/datasets.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace nullgraph {
namespace {

TEST(Datasets, RegistryHasTheEightPaperInstances) {
  const auto& specs = paper_datasets();
  ASSERT_EQ(specs.size(), 8u);
  EXPECT_EQ(specs[0].name, "Meso");
  EXPECT_EQ(specs[1].name, "as20");
  EXPECT_EQ(specs[7].name, "uk-2005");
}

TEST(Datasets, QualitySubsetIsFirstFour) {
  const auto quality = quality_datasets();
  ASSERT_EQ(quality.size(), 4u);
  EXPECT_EQ(quality[3].name, "DBPedia");
}

TEST(Datasets, FindByName) {
  EXPECT_TRUE(find_dataset("Twitter").has_value());
  EXPECT_FALSE(find_dataset("nope").has_value());
}

TEST(Datasets, BuildMatchesTargetsAtFullScale) {
  const DegreeDistribution dist = build_dataset(*find_dataset("as20"), 1.0);
  const auto spec = *find_dataset("as20");
  EXPECT_NEAR(static_cast<double>(dist.num_vertices()),
              static_cast<double>(spec.n), 0.01 * spec.n);
  EXPECT_NEAR(static_cast<double>(dist.num_edges()),
              static_cast<double>(spec.m), 0.15 * spec.m);
  EXPECT_TRUE(dist.is_graphical());
}

TEST(Datasets, ScaleShrinksInstance) {
  const auto spec = *find_dataset("WikiTalk");
  const DegreeDistribution small = build_dataset(spec, 0.01);
  EXPECT_LT(small.num_vertices(), spec.n / 50);
  EXPECT_TRUE(small.is_graphical());
  EXPECT_EQ(small.num_stubs() % 2, 0u);
}

TEST(Datasets, As20LikeIsSkewed) {
  const DegreeDistribution dist = as20_like();
  EXPECT_GT(dist.max_degree(), 100u);
  EXPECT_LT(dist.average_degree(), 10.0);
  EXPECT_GT(dist.num_classes(), 10u);
}

TEST(Datasets, EnvScaleMultiplies) {
  const auto spec = *find_dataset("Meso");
  setenv("NULLGRAPH_BENCH_SCALE", "0.5", 1);
  const DegreeDistribution scaled = build_dataset(spec);
  unsetenv("NULLGRAPH_BENCH_SCALE");
  const DegreeDistribution normal = build_dataset(spec);
  EXPECT_LT(scaled.num_vertices(), normal.num_vertices());
}

TEST(Datasets, AllDefaultsBuildGraphical) {
  for (const DatasetSpec& spec : paper_datasets()) {
    // Cap work: build at most ~50k vertices per instance.
    const double scale =
        std::min(spec.default_scale, 50000.0 / static_cast<double>(spec.n));
    const DegreeDistribution dist = build_dataset(spec, scale);
    EXPECT_TRUE(dist.is_graphical()) << spec.name;
    EXPECT_GT(dist.num_edges(), 0u) << spec.name;
  }
}

}  // namespace
}  // namespace nullgraph
