// Spill-shard durability tests: CRC-framed round trips, rejection of every
// torn-write class (truncation mid-block, bit flips, header lies), manifest
// round trips, the bounded-backoff retry schedule under an injectable
// clock, yield-balanced shard boundaries, and the headline out-of-core
// contracts — a forced-spill run concatenates bit-identically to the
// in-core pipeline, and a damaged spill directory resumes by regenerating
// exactly the unhealthy shards, bit-identically.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "core/null_model.hpp"
#include "core/out_of_core.hpp"
#include "ds/degree_distribution.hpp"
#include "ds/edge_list.hpp"
#include "ds/shard_census.hpp"
#include "io/checkpoint.hpp"
#include "io/shard_merge.hpp"
#include "io/spill.hpp"
#include "prob/probability_matrix.hpp"
#include "robustness/status.hpp"
#include "skip/sharded_skip.hpp"

namespace nullgraph {
namespace {

std::string temp_dir(const char* name) {
  const std::string dir = ::testing::TempDir() + name;
  EXPECT_TRUE(ensure_spill_dir(dir).ok());
  return dir;
}

std::vector<unsigned char> slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::vector<unsigned char> bytes;
  int c;
  while ((c = std::fgetc(f)) != EOF)
    bytes.push_back(static_cast<unsigned char>(c));
  std::fclose(f);
  return bytes;
}

void spit(const std::string& path, const std::vector<unsigned char>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  if (!bytes.empty())
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

EdgeList sample_edges(std::size_t n) {
  EdgeList edges;
  edges.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    edges.push_back({static_cast<std::uint32_t>(i),
                     static_cast<std::uint32_t>(i * 7 + 1)});
  return edges;
}

// ---------------------------------------------------------- shard framing

TEST(SpillShard, RoundTripPreservesEdgesAndHeader) {
  const std::string dir = temp_dir("spill_roundtrip");
  // Two blocks plus a partial third: the frame boundaries are exercised.
  const EdgeList edges = sample_edges(2 * kSpillBlockEdges + 17);
  SpillWriteStats stats;
  ASSERT_TRUE(write_spill_shard(dir, 3, 8, edges, {}, &stats).ok());
  EXPECT_EQ(stats.blocks, 3u);
  EXPECT_GT(stats.bytes_written, edges.size() * sizeof(Edge));

  SpillShardInfo info;
  ASSERT_TRUE(validate_spill_shard(shard_path(dir, 3), 3, 8, &info).ok());
  EXPECT_EQ(info.shard_index, 3u);
  EXPECT_EQ(info.shard_count, 8u);
  EXPECT_EQ(info.edge_count, edges.size());

  const Result<EdgeList> loaded = read_spill_shard(shard_path(dir, 3));
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded.value(), edges);
  // The atomic commit leaves no temp file behind.
  std::FILE* tmp = std::fopen((shard_path(dir, 3) + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp != nullptr) std::fclose(tmp);
}

TEST(SpillShard, EmptyShardRoundTrips) {
  // A shard of a sparse region can legitimately hold zero edges; the file
  // still exists (resume distinguishes "empty" from "never written").
  const std::string dir = temp_dir("spill_empty");
  ASSERT_TRUE(write_spill_shard(dir, 0, 2, {}).ok());
  const Result<EdgeList> loaded = read_spill_shard(shard_path(dir, 0));
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  EXPECT_TRUE(loaded.value().empty());
}

TEST(SpillShard, MissingFileIsIoErrorNotCorrupt) {
  const std::string dir = temp_dir("spill_missing");
  const Result<EdgeList> loaded = read_spill_shard(shard_path(dir, 0));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(SpillShard, TruncationAnywhereIsShardCorrupt) {
  const std::string dir = temp_dir("spill_trunc");
  ASSERT_TRUE(write_spill_shard(dir, 0, 1, sample_edges(1000)).ok());
  const std::string path = shard_path(dir, 0);
  const std::vector<unsigned char> whole = slurp(path);
  // Cut mid-header, mid-block-frame, mid-payload, and one byte short of
  // the end marker: every torn prefix must be typed kShardCorrupt — the
  // signal resume and fsck key regeneration on — never accepted.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{10}, std::size_t{30}, whole.size() / 2,
        whole.size() - 1}) {
    spit(path, {whole.begin(), whole.begin() + keep});
    const Status verdict = validate_spill_shard(path, 0, 1);
    ASSERT_FALSE(verdict.ok()) << "accepted a " << keep << "-byte prefix";
    EXPECT_EQ(verdict.code(), StatusCode::kShardCorrupt)
        << "prefix length " << keep;
  }
}

TEST(SpillShard, FlippedBytesFailTheBlockCrc) {
  const std::string dir = temp_dir("spill_flip");
  ASSERT_TRUE(write_spill_shard(dir, 0, 1, sample_edges(500)).ok());
  const std::string path = shard_path(dir, 0);
  const std::vector<unsigned char> whole = slurp(path);
  // Header field, first payload byte, last payload byte, end-marker count.
  for (const std::size_t at : {std::size_t{12}, std::size_t{40},
                               whole.size() - 20, whole.size() - 6}) {
    std::vector<unsigned char> bad = whole;
    bad[at] ^= 0x01;
    spit(path, bad);
    const Status verdict = validate_spill_shard(path, 0, 1);
    ASSERT_FALSE(verdict.ok()) << "accepted flip at byte " << at;
    EXPECT_EQ(verdict.code(), StatusCode::kShardCorrupt);
  }
}

TEST(SpillShard, WrongHeaderIdentityIsShardCorrupt) {
  // A structurally sound shard from a different slot (or a different
  // sharding) must not pass validation under this slot's identity.
  const std::string dir = temp_dir("spill_identity");
  ASSERT_TRUE(write_spill_shard(dir, 2, 4, sample_edges(10)).ok());
  const std::string path = shard_path(dir, 2);
  EXPECT_TRUE(validate_spill_shard(path, 2, 4).ok());
  EXPECT_EQ(validate_spill_shard(path, 1, 4).code(),
            StatusCode::kShardCorrupt);
  EXPECT_EQ(validate_spill_shard(path, 2, 8).code(),
            StatusCode::kShardCorrupt);
}

TEST(SpillShard, BlockReaderStreamsInBoundedPieces) {
  const std::string dir = temp_dir("spill_stream");
  const EdgeList edges = sample_edges(kSpillBlockEdges + 100);
  ASSERT_TRUE(write_spill_shard(dir, 0, 1, edges).ok());
  EdgeList streamed;
  std::size_t largest_piece = 0;
  const Status read = read_spill_shard_blocks(
      shard_path(dir, 0), [&](const Edge* block, std::size_t count) {
        largest_piece = std::max(largest_piece, count);
        streamed.insert(streamed.end(), block, block + count);
      });
  ASSERT_TRUE(read.ok()) << read.to_string();
  EXPECT_EQ(streamed, edges);
  EXPECT_LE(largest_piece, kSpillBlockEdges);  // the memory bound
}

// -------------------------------------------------------------- manifest

ShardManifest sample_manifest() {
  ShardManifest m;
  m.seed = 0xabcdef12345678ULL;
  m.edges_per_task = 4096;
  m.shard_count = 7;
  m.probability_method = 1;
  m.refine_iterations = 2;
  m.classes = {{2, 120}, {3, 80}, {5, 20}};
  return m;
}

TEST(ShardManifest, RoundTripPreservesEveryField) {
  const std::string dir = temp_dir("manifest_roundtrip");
  ASSERT_TRUE(write_shard_manifest(dir, sample_manifest()).ok());
  const Result<ShardManifest> loaded = read_shard_manifest(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  const ShardManifest& m = loaded.value();
  EXPECT_EQ(m.seed, sample_manifest().seed);
  EXPECT_EQ(m.edges_per_task, 4096u);
  EXPECT_EQ(m.shard_count, 7u);
  EXPECT_EQ(m.probability_method, 1u);
  EXPECT_EQ(m.refine_iterations, 2u);
  EXPECT_EQ(m.classes, sample_manifest().classes);
}

TEST(ShardManifest, MissingManifestIsIoError) {
  const std::string dir = temp_dir("manifest_missing");
  const Result<ShardManifest> loaded = read_shard_manifest(dir);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(ShardManifest, TornManifestIsShardCorrupt) {
  // A half-written manifest poisons the whole directory: the reader must
  // type it kShardCorrupt (untrustworthy), not misparse it.
  const std::string dir = temp_dir("manifest_torn");
  ASSERT_TRUE(write_shard_manifest(dir, sample_manifest()).ok());
  const std::vector<unsigned char> whole = slurp(manifest_path(dir));
  spit(manifest_path(dir), {whole.begin(), whole.begin() + whole.size() / 2});
  const Result<ShardManifest> loaded = read_shard_manifest(dir);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kShardCorrupt);
}

// ----------------------------------------------------------- write retry

TEST(SpillRetry, BackoffScheduleDoublesUnderInjectedClock) {
  const std::string dir = temp_dir("spill_backoff");
  std::size_t failures = 2;
  std::vector<std::uint64_t> slept;
  CheckpointRetryPolicy policy;
  policy.backoff_ms = 25;
  policy.inject_io_failures = &failures;
  policy.sleep_fn = [&](std::uint64_t ms) { slept.push_back(ms); };
  ASSERT_TRUE(write_spill_shard(dir, 0, 1, sample_edges(8), policy).ok());
  // Retry k sleeps backoff_ms << (k-1): 25 then 50, never a wall-clock
  // wait because the injected clock absorbs them.
  EXPECT_EQ(slept, (std::vector<std::uint64_t>{25, 50}));
  EXPECT_TRUE(validate_spill_shard(shard_path(dir, 0), 0, 1).ok());
}

TEST(SpillRetry, ExhaustedAttemptsSurfaceTypedIoError) {
  const std::string dir = temp_dir("spill_exhaust");
  std::size_t failures = 3;  // one per attempt of the default policy
  CheckpointRetryPolicy policy;
  policy.inject_io_failures = &failures;
  policy.sleep_fn = [](std::uint64_t) {};
  const Status written = write_spill_shard(dir, 0, 1, sample_edges(8), policy);
  ASSERT_FALSE(written.ok());
  EXPECT_EQ(written.code(), StatusCode::kIoError);
  EXPECT_EQ(failures, 0u);
  // Nothing committed: the slot still reads as missing, not as torn.
  EXPECT_EQ(read_spill_shard(shard_path(dir, 0)).status().code(),
            StatusCode::kIoError);
}

// ----------------------------------------------- yield-balanced sharding

DegreeDistribution spill_dist() {
  // Heavy skew: the degree-316 class concentrates expected edges, so a
  // count-balanced unit slice would leave one shard holding most of the
  // graph — exactly what shard_unit_range exists to prevent.
  return DegreeDistribution({{2, 3000}, {3, 1500}, {7, 400}, {31, 120},
                             {316, 40}});
}

TEST(ShardUnitRange, ShardsTileTheUnitListExactly) {
  const DegreeDistribution dist = spill_dist();
  const ProbabilityMatrix P = generate_probabilities(dist, ProbabilityMethod::kGreedyAllocation);
  EdgeSkipConfig config;
  config.seed = 99;
  const SkipShardPlan plan = plan_edge_skip(P, dist, config);
  ASSERT_GT(plan.unit_count(), 0u);
  for (const std::uint64_t shards : {1u, 2u, 5u, 16u}) {
    std::uint64_t expect_begin = 0;
    for (std::uint64_t s = 0; s < shards; ++s) {
      const auto [begin, end] = shard_unit_range(plan, s, shards);
      EXPECT_EQ(begin, expect_begin) << "gap/overlap at shard " << s;
      EXPECT_LE(begin, end);
      expect_begin = end;
    }
    EXPECT_EQ(expect_begin, plan.unit_count()) << shards << " shards";
  }
}

TEST(ShardUnitRange, BoundariesBalanceExpectedYieldNotUnitCount) {
  const DegreeDistribution dist = spill_dist();
  const ProbabilityMatrix P = generate_probabilities(dist, ProbabilityMethod::kGreedyAllocation);
  const SkipShardPlan plan = plan_edge_skip(P, dist, {});
  const std::uint64_t shards = 4;
  const double target = plan.expected_edges / static_cast<double>(shards);
  const double max_unit =
      *std::max_element(plan.unit_yields.begin(), plan.unit_yields.end());
  for (std::uint64_t s = 0; s < shards; ++s) {
    const auto [begin, end] = shard_unit_range(plan, s, shards);
    const double yield = std::accumulate(
        plan.unit_yields.begin() + static_cast<std::ptrdiff_t>(begin),
        plan.unit_yields.begin() + static_cast<std::ptrdiff_t>(end), 0.0);
    // A shard overshoots its quota by at most one unit's yield (the cut
    // lands on unit boundaries) — the bound the memory model relies on.
    EXPECT_LE(yield, target + max_unit + 1e-6) << "shard " << s;
  }
}

TEST(ShardUnitRange, FallsBackToCountBalanceWithoutYields) {
  SkipShardPlan plan;
  plan.small_pairs = {0, 1, 2, 3, 4, 5};  // 6 units, no yields recorded
  const auto [b0, e0] = shard_unit_range(plan, 0, 3);
  const auto [b2, e2] = shard_unit_range(plan, 2, 3);
  EXPECT_EQ(e0 - b0, 2u);
  EXPECT_EQ(e2, 6u);
}

TEST(ShardedSkip, ConcatenatedShardsMatchInCoreGeneration) {
  const DegreeDistribution dist = spill_dist();
  const ProbabilityMatrix P = generate_probabilities(dist, ProbabilityMethod::kGreedyAllocation);
  EdgeSkipConfig config;
  config.seed = 7;
  const EdgeList whole = edge_skip_generate(P, dist, config);
  const SkipShardPlan plan = plan_edge_skip(P, dist, config);
  for (const std::uint64_t shards : {1u, 3u, 9u}) {
    EdgeList concat;
    for (std::uint64_t s = 0; s < shards; ++s) {
      const EdgeList piece =
          edge_skip_generate_shard(P, dist, plan, config, s, shards);
      concat.insert(concat.end(), piece.begin(), piece.end());
    }
    EXPECT_EQ(concat, whole) << shards << " shards";
  }
}

// ------------------------------------------------------------- footprint

TEST(SpillSizing, FootprintScalesWithExpectedEdges) {
  EXPECT_EQ(generation_footprint_bytes(0.0), 0u);
  EXPECT_EQ(generation_footprint_bytes(1000.0),
            static_cast<std::size_t>(1000 * sizeof(Edge) * 4));
}

TEST(SpillSizing, AutoShardCountClampsAndScales) {
  // Tiny graph: one shard no matter the ceiling.
  EXPECT_EQ(auto_shard_count(10.0, 64 << 20, 100), 1u);
  // Raw bytes far above the per-shard target: more shards, but never more
  // than there are units to slice.
  const double edges = 1e9;
  const std::uint64_t tight = auto_shard_count(edges, 16 << 20, 1u << 30);
  const std::uint64_t loose = auto_shard_count(edges, 1 << 30, 1u << 30);
  EXPECT_GT(tight, loose);
  EXPECT_EQ(auto_shard_count(edges, 16 << 20, 4), 4u);  // unit clamp
  EXPECT_GE(auto_shard_count(-1.0, 0, 0), 1u);          // degenerate floor
}

// ------------------------------------------------------------- census

TEST(ShardCensus, FoldsShardLocalVerdictsAndTracksHighWater) {
  ShardLocalCensus census;
  census.add_shard({{0, 1}, {1, 2}, {0, 1}});       // one duplicate
  census.add_shard({{3, 3}});                       // one self-loop
  census.add_shard({{4, 5}, {5, 6}, {6, 7}, {7, 8}});
  EXPECT_EQ(census.total().multi_edges, 1u);
  EXPECT_EQ(census.total().self_loops, 1u);
  EXPECT_EQ(census.edges_seen(), 8u);
  EXPECT_EQ(census.max_shard_edges(), 4u);
}

// ------------------------------------------- out-of-core pipeline e2e

GenerateConfig spill_config(const std::string& dir) {
  GenerateConfig config;
  config.seed = 42;
  config.swap_iterations = 0;
  config.spill.enabled = true;
  config.spill.force = true;
  config.spill.dir = dir;
  config.spill.shard_count = 5;
  return config;
}

TEST(OutOfCore, ForcedSpillIsBitIdenticalToInCore) {
  const std::string dir = temp_dir("ooc_identity");
  GenerateConfig config = spill_config(dir);
  const GenerateResult spilled = generate_null_graph(spill_dist(), config);
  ASSERT_TRUE(spilled.report.ok()) << spilled.report.summary();
  ASSERT_TRUE(spilled.spill.spilled);
  EXPECT_EQ(spilled.spill.shard_count, 5u);
  EXPECT_EQ(spilled.spill.shards_written, 5u);
  EXPECT_TRUE(spilled.edges.empty());  // the graph lives on disk

  config.spill.enabled = false;
  const GenerateResult in_core = generate_null_graph(spill_dist(), config);
  const Result<EdgeList> merged = load_all_shards(dir, 5);
  ASSERT_TRUE(merged.ok()) << merged.status().to_string();
  EXPECT_EQ(merged.value(), in_core.edges);
  EXPECT_EQ(spilled.spill.edges_on_disk, in_core.edges.size());

  // The forced spill is a degradation EVENT, not an error: trigger kOk.
  ASSERT_FALSE(spilled.report.degradations.empty());
  EXPECT_EQ(spilled.report.degradations.front().action, "spill-to-disk");
  EXPECT_EQ(spilled.report.degradations.front().trigger, StatusCode::kOk);
}

TEST(OutOfCore, ResumeRegeneratesExactlyTheDamagedShards) {
  const std::string dir = temp_dir("ooc_resume");
  const GenerateConfig config = spill_config(dir);
  const GenerateResult first = generate_null_graph(spill_dist(), config);
  ASSERT_TRUE(first.spill.spilled);
  const Result<EdgeList> before = load_all_shards(dir, 5);
  ASSERT_TRUE(before.ok());

  // SIGKILL aftermath, simulated: one shard vanished (rename never
  // happened), one is torn (truncated mid-block).
  ASSERT_EQ(std::remove(shard_path(dir, 1).c_str()), 0);
  const std::vector<unsigned char> whole = slurp(shard_path(dir, 3));
  spit(shard_path(dir, 3), {whole.begin(), whole.begin() + whole.size() / 2});

  const Result<GenerateResult> resumed = resume_from_spill(dir, config);
  ASSERT_TRUE(resumed.ok()) << resumed.status().to_string();
  EXPECT_EQ(resumed.value().spill.shards_reused, 3u);
  EXPECT_EQ(resumed.value().spill.shards_written, 2u);
  const Result<EdgeList> after = load_all_shards(dir, 5);
  ASSERT_TRUE(after.ok()) << after.status().to_string();
  EXPECT_EQ(after.value(), before.value())
      << "regenerated shards diverged from the originals";
}

TEST(OutOfCore, FsckClassifiesRepairsAndDeepChecks) {
  const std::string dir = temp_dir("ooc_fsck");
  const GenerateConfig config = spill_config(dir);
  ASSERT_TRUE(generate_null_graph(spill_dist(), config).spill.spilled);

  Result<FsckReport> clean = fsck_spill_dir(dir, {.repair = false, .deep = true});
  ASSERT_TRUE(clean.ok()) << clean.status().to_string();
  EXPECT_TRUE(clean.value().ok());
  EXPECT_TRUE(clean.value().deep_ran);
  EXPECT_EQ(clean.value().deep_census.multi_edges, 0u);

  ASSERT_EQ(std::remove(shard_path(dir, 0).c_str()), 0);
  const std::vector<unsigned char> whole = slurp(shard_path(dir, 2));
  std::vector<unsigned char> bad = whole;
  bad[bad.size() / 2] ^= 0x80;
  spit(shard_path(dir, 2), bad);

  const Result<FsckReport> damaged = fsck_spill_dir(dir);
  ASSERT_TRUE(damaged.ok());
  EXPECT_FALSE(damaged.value().ok());
  EXPECT_EQ(damaged.value().shards[0].state, ShardState::kMissing);
  EXPECT_EQ(damaged.value().shards[2].state, ShardState::kCorrupt);
  EXPECT_EQ(damaged.value().shards[1].state, ShardState::kOk);

  const Result<FsckReport> repaired = fsck_spill_dir(dir, {.repair = true});
  ASSERT_TRUE(repaired.ok());
  EXPECT_TRUE(repaired.value().ok());
  EXPECT_EQ(repaired.value().shards[0].state, ShardState::kRepaired);
  EXPECT_EQ(repaired.value().shards[2].state, ShardState::kRepaired);
  const Result<EdgeList> healed = load_all_shards(dir, 5);
  ASSERT_TRUE(healed.ok()) << healed.status().to_string();
}

TEST(OutOfCore, PersistentWriteFailureSurfacesTypedError) {
  // Spill writes that fail on every attempt are fatal to the phase (the
  // shard IS the data): the run reports kIoError, never aborts, and the
  // failure is visible as an unhealthy report rather than a silent exit.
  const std::string dir = temp_dir("ooc_writefail");
  GenerateConfig config = spill_config(dir);
  config.guardrails.faults.fail_spill_writes = 1000;  // every attempt
  const GenerateResult result = generate_null_graph(spill_dist(), config);
  EXPECT_FALSE(result.report.ok());
  EXPECT_EQ(result.report.first_error().code(), StatusCode::kIoError);
}

TEST(OutOfCore, ConcatStreamMatchesMergedListOnDisk) {
  const std::string dir = temp_dir("ooc_concat");
  const GenerateConfig config = spill_config(dir);
  ASSERT_TRUE(generate_null_graph(spill_dist(), config).spill.spilled);
  const std::string out = dir + "/merged.txt";
  std::uint64_t edges = 0;
  ASSERT_TRUE(concat_shards_to_text_file(dir, 5, out, &edges).ok());
  const Result<EdgeList> merged = load_all_shards(dir, 5);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(edges, merged.value().size());
  // Streamed text == in-memory list rendered the same way: count lines.
  std::uint64_t lines = 0;
  for (const unsigned char c : slurp(out)) lines += c == '\n';
  EXPECT_EQ(lines, merged.value().size());
}

}  // namespace
}  // namespace nullgraph
