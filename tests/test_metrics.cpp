#include "analysis/metrics.hpp"

#include <gtest/gtest.h>

#include "gen/havel_hakimi.hpp"
#include "skip/erdos_renyi.hpp"

namespace nullgraph {
namespace {

TEST(QualityErrors, ZeroForExactRealization) {
  const DegreeDistribution dist({{1, 6}, {3, 2}});
  const EdgeList edges = havel_hakimi(dist);
  const QualityErrors errors = quality_errors(dist, edges);
  EXPECT_DOUBLE_EQ(errors.edge_count, 0.0);
  EXPECT_DOUBLE_EQ(errors.max_degree, 0.0);
  EXPECT_NEAR(errors.gini, 0.0, 1e-12);
}

TEST(QualityErrors, DetectsMissingEdges) {
  const DegreeDistribution dist({{1, 6}, {3, 2}});
  EdgeList edges = havel_hakimi(dist);
  edges.pop_back();
  const QualityErrors errors = quality_errors(dist, edges);
  EXPECT_NEAR(errors.edge_count, 1.0 / static_cast<double>(dist.num_edges()),
              1e-12);
}

TEST(QualityErrors, DetectsMaxDegreeLoss) {
  const DegreeDistribution dist({{1, 8}, {4, 2}});
  // A graph with right edge count but flat degrees.
  const EdgeList flat{{0, 1}, {2, 3}, {4, 5}, {6, 7}, {8, 9}, {0, 2},
                      {1, 3}, {4, 6}};
  const QualityErrors errors = quality_errors(dist, flat);
  EXPECT_GT(errors.max_degree, 0.0);
}

TEST(PerDegreeErrors, ZeroForExactRealization) {
  const DegreeDistribution dist({{1, 6}, {3, 2}});
  const auto errors = per_degree_errors(dist, havel_hakimi(dist));
  for (double e : errors) EXPECT_DOUBLE_EQ(e, 0.0);
}

TEST(PerDegreeErrors, FlagsClassMismatch) {
  const DegreeDistribution dist({{1, 4}});  // wants 4 degree-1 vertices
  const EdgeList path{{0, 1}, {1, 2}, {2, 3}};  // degrees 1,2,2,1
  const auto errors = per_degree_errors(dist, path);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NEAR(errors[0], 0.5, 1e-12);  // only 2 of 4 degree-1 vertices
}

TEST(PerDegreeErrors, OverflowDegreesDoNotCrash) {
  const DegreeDistribution dist({{1, 2}});
  const EdgeList star{{0, 1}, {0, 2}, {0, 3}};  // degree 3 > target max 1
  const auto errors = per_degree_errors(dist, star);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_GT(errors[0], 0.0);
}

TEST(DegreeAssortativity, PerfectlyAssortativeGraph) {
  // Two disjoint cliques of equal degree: correlation is degenerate
  // (constant) -> 0 by convention; use a path + clique mix instead.
  const EdgeList edges{{0, 1}, {1, 2}, {2, 0},  // triangle: degrees 2
                       {3, 4}};                 // edge: degrees 1
  const double r = degree_assortativity(edges);
  EXPECT_GT(r, 0.99);  // like connects to like
}

TEST(DegreeAssortativity, StarIsDisassortative) {
  const EdgeList star{{0, 1}, {0, 2}, {0, 3}, {0, 4}};
  // All edges connect degree 4 to degree 1: r = -1 in the limit... for a
  // single star the variance structure gives r undefined/negative; assert
  // strictly negative. (Known result: stars yield r = -1 only with leaves
  // of mixed degree; here every edge is (4,1), a constant pair -> the
  // numerator and denominator both measure the same spread.)
  const double r = degree_assortativity(star);
  EXPECT_LE(r, 0.0);
}

TEST(DegreeAssortativity, EmptyGraphIsZero) {
  EXPECT_DOUBLE_EQ(degree_assortativity({}), 0.0);
}

TEST(DegreeAssortativity, RandomGraphNearZero) {
  const EdgeList edges = erdos_renyi(3000, 0.004, 8);
  EXPECT_NEAR(degree_assortativity(edges), 0.0, 0.06);
}

TEST(AverageQualityErrors, ComponentwiseMean) {
  const std::vector<QualityErrors> samples{
      {0.1, 0.2, 0.3}, {0.3, 0.4, 0.5}};
  const QualityErrors mean = average(samples);
  EXPECT_NEAR(mean.edge_count, 0.2, 1e-12);
  EXPECT_NEAR(mean.max_degree, 0.3, 1e-12);
  EXPECT_NEAR(mean.gini, 0.4, 1e-12);
}

TEST(AverageQualityErrors, EmptyIsZero) {
  const QualityErrors mean = average({});
  EXPECT_DOUBLE_EQ(mean.edge_count, 0.0);
}

}  // namespace
}  // namespace nullgraph
