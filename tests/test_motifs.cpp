#include "analysis/motifs.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "gen/havel_hakimi.hpp"
#include "skip/erdos_renyi.hpp"

namespace nullgraph {
namespace {

TEST(Triangles, SingleTriangle) {
  const CsrGraph graph(EdgeList{{0, 1}, {1, 2}, {2, 0}});
  EXPECT_EQ(count_triangles(graph), 1u);
}

TEST(Triangles, TreeHasNone) {
  const CsrGraph graph(EdgeList{{0, 1}, {1, 2}, {1, 3}, {3, 4}});
  EXPECT_EQ(count_triangles(graph), 0u);
}

TEST(Triangles, CompleteGraphCount) {
  // K6 has C(6,3) = 20 triangles.
  const DegreeDistribution dist({{5, 6}});
  const CsrGraph graph(havel_hakimi(dist));
  EXPECT_EQ(count_triangles(graph), 20u);
}

TEST(Triangles, TwoSharedEdgeTriangles) {
  const CsrGraph graph(EdgeList{{0, 1}, {1, 2}, {2, 0}, {1, 3}, {3, 2}});
  EXPECT_EQ(count_triangles(graph), 2u);
}

TEST(Wedges, PathAndStar) {
  // Path 0-1-2: one wedge at vertex 1.
  EXPECT_EQ(count_wedges(CsrGraph(EdgeList{{0, 1}, {1, 2}})), 1u);
  // Star with 4 leaves: C(4,2) = 6 wedges.
  EXPECT_EQ(
      count_wedges(CsrGraph(EdgeList{{0, 1}, {0, 2}, {0, 3}, {0, 4}})), 6u);
}

TEST(GlobalClustering, TriangleIsOne) {
  EXPECT_DOUBLE_EQ(global_clustering(CsrGraph(EdgeList{{0, 1}, {1, 2}, {2, 0}})),
                   1.0);
}

TEST(GlobalClustering, TreeIsZero) {
  EXPECT_DOUBLE_EQ(global_clustering(CsrGraph(EdgeList{{0, 1}, {1, 2}})), 0.0);
}

TEST(GlobalClustering, ErdosRenyiApproachesP) {
  // In G(n, p), expected clustering ~ p.
  const double p = 0.02;
  const CsrGraph graph(erdos_renyi(1500, p, 7));
  EXPECT_NEAR(global_clustering(graph), p, 0.006);
}

TEST(ZScore, BasicBehaviour) {
  EXPECT_DOUBLE_EQ(z_score(12.0, 10.0, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(z_score(8.0, 10.0, 2.0), -1.0);
  EXPECT_DOUBLE_EQ(z_score(5.0, 5.0, 0.0), 0.0);  // degenerate ensemble
}

TEST(EnsembleStats, WelfordMatchesDirectComputation) {
  EnsembleStats stats;
  const std::vector<double> values{1, 2, 3, 4, 100};
  double mean = 0;
  for (double v : values) {
    stats.add(v);
    mean += v;
  }
  mean /= static_cast<double>(values.size());
  double variance = 0;
  for (double v : values) variance += (v - mean) * (v - mean);
  variance /= static_cast<double>(values.size());
  EXPECT_EQ(stats.count(), values.size());
  EXPECT_NEAR(stats.mean(), mean, 1e-9);
  EXPECT_NEAR(stats.variance(), variance, 1e-9);
  EXPECT_NEAR(stats.stddev(), std::sqrt(variance), 1e-9);
}

TEST(EnsembleStats, EmptyIsZero) {
  const EnsembleStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

}  // namespace
}  // namespace nullgraph
