#include "core/rewire.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/metrics.hpp"
#include "gen/datasets.hpp"
#include "gen/havel_hakimi.hpp"
#include "skip/erdos_renyi.hpp"

namespace nullgraph {
namespace {

std::vector<std::uint64_t> sorted_degrees(const EdgeList& edges,
                                          std::size_t n) {
  auto degrees = degrees_of(edges, n);
  std::sort(degrees.begin(), degrees.end());
  return degrees;
}

TEST(Rewire, PreservesDegreesAndSimplicity) {
  EdgeList edges = erdos_renyi(2000, 0.005, 1);
  const auto before = sorted_degrees(edges, 2000);
  rewire_assortativity(edges, {.iterations = 5, .seed = 2, .bias = 1.0});
  EXPECT_EQ(sorted_degrees(edges, 2000), before);
  EXPECT_TRUE(is_simple(edges));
}

TEST(Rewire, AssortativeTargetRaisesR) {
  EdgeList edges = erdos_renyi(3000, 0.004, 3);
  const double before = degree_assortativity(edges);
  rewire_assortativity(edges, {.iterations = 20,
                               .seed = 4,
                               .bias = 1.0,
                               .target = MixingTarget::kAssortative});
  EXPECT_GT(degree_assortativity(edges), before + 0.1);
}

TEST(Rewire, DisassortativeTargetLowersR) {
  EdgeList edges = erdos_renyi(3000, 0.004, 5);
  const double before = degree_assortativity(edges);
  rewire_assortativity(edges, {.iterations = 20,
                               .seed = 6,
                               .bias = 1.0,
                               .target = MixingTarget::kDisassortative});
  EXPECT_LT(degree_assortativity(edges), before - 0.1);
}

TEST(Rewire, ZeroBiasBehavesLikeUniformChain) {
  // bias = 0: assortativity stays near the null expectation (about 0 for
  // an ER graph), unlike the driven chains above.
  EdgeList edges = erdos_renyi(3000, 0.004, 7);
  rewire_assortativity(edges, {.iterations = 20, .seed = 8, .bias = 0.0});
  EXPECT_NEAR(degree_assortativity(edges), 0.0, 0.06);
  EXPECT_TRUE(is_simple(edges));
}

TEST(Rewire, MonotoneProgressUnderFullBias) {
  // With bias 1 every committed move is toward the target, so r is
  // non-decreasing across blocks of iterations (up to measurement on the
  // same graph - exact, not statistical).
  EdgeList edges = erdos_renyi(1500, 0.006, 9);
  double previous = degree_assortativity(edges);
  for (int block = 0; block < 4; ++block) {
    rewire_assortativity(
        edges, {.iterations = 3,
                .seed = 10 + static_cast<std::uint64_t>(block),
                .bias = 1.0,
                .target = MixingTarget::kAssortative});
    const double current = degree_assortativity(edges);
    EXPECT_GE(current, previous - 1e-9);
    previous = current;
  }
}

TEST(Rewire, StatsAccumulateAcrossIterations) {
  EdgeList edges = erdos_renyi(1000, 0.01, 11);
  const RewireStats stats =
      rewire_assortativity(edges, {.iterations = 4, .seed = 12, .bias = 0.5});
  EXPECT_EQ(stats.attempted, 4 * (edges.size() / 2));
  EXPECT_GT(stats.swapped, 0u);
  EXPECT_LE(stats.swapped, stats.attempted);
}

TEST(Rewire, SkewedGraphExtremes) {
  // On the skewed as20-like graph the assortative drive produces strongly
  // positive r and the disassortative drive strongly negative r, from the
  // same start.
  const EdgeList base = havel_hakimi(as20_like());
  EdgeList up = base;
  EdgeList down = base;
  rewire_assortativity(up, {.iterations = 30,
                            .seed = 13,
                            .bias = 1.0,
                            .target = MixingTarget::kAssortative});
  rewire_assortativity(down, {.iterations = 30,
                              .seed = 13,
                              .bias = 1.0,
                              .target = MixingTarget::kDisassortative});
  EXPECT_GT(degree_assortativity(up), degree_assortativity(base));
  EXPECT_LT(degree_assortativity(down), degree_assortativity(base));
  EXPECT_TRUE(is_simple(up));
  EXPECT_TRUE(is_simple(down));
}

TEST(Rewire, TinyInputsNoop) {
  EdgeList empty;
  EXPECT_EQ(rewire_assortativity(empty).swapped, 0u);
  EdgeList one{{0, 1}};
  rewire_assortativity(one);
  EXPECT_EQ(one.size(), 1u);
}

}  // namespace
}  // namespace nullgraph
