#include "analysis/community.hpp"

#include <gtest/gtest.h>

#include "lfr/lfr.hpp"
#include "skip/erdos_renyi.hpp"

namespace nullgraph {
namespace {

// --- modularity ------------------------------------------------------------

TEST(Modularity, TwoCliquesOneBridge) {
  // Two triangles joined by one edge; the natural partition.
  const EdgeList edges{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3},
                       {2, 3}};
  const std::vector<std::uint32_t> split{0, 0, 0, 1, 1, 1};
  const std::vector<std::uint32_t> lumped{0, 0, 0, 0, 0, 0};
  // m=7; split: internal 3+3, degree mass 7 and 7 -> Q = 6/7 - 2*(0.5)^2.
  EXPECT_NEAR(modularity(edges, split), 6.0 / 7.0 - 0.5, 1e-12);
  // Single community always has Q = 0 (e = m, degree fraction 1).
  EXPECT_NEAR(modularity(edges, lumped), 0.0, 1e-12);
  EXPECT_GT(modularity(edges, split), modularity(edges, lumped));
}

TEST(Modularity, SingletonPartitionIsNegative) {
  const EdgeList edges{{0, 1}, {1, 2}};
  const std::vector<std::uint32_t> singletons{0, 1, 2};
  EXPECT_LT(modularity(edges, singletons), 0.0);
}

TEST(Modularity, EmptyGraph) {
  EXPECT_DOUBLE_EQ(modularity({}, {}), 0.0);
}

TEST(Modularity, RandomGraphAnyPartitionNearZero) {
  const EdgeList edges = erdos_renyi(2000, 0.005, 3);
  std::vector<std::uint32_t> halves(2000);
  for (std::size_t v = 0; v < 2000; ++v) halves[v] = v < 1000 ? 0 : 1;
  EXPECT_NEAR(modularity(edges, halves), 0.0, 0.05);
}

// --- compact_labels ----------------------------------------------------------

TEST(CompactLabels, FirstSeenOrder) {
  EXPECT_EQ(compact_labels({7, 7, 3, 7, 9}),
            (std::vector<std::uint32_t>{0, 0, 1, 0, 2}));
  EXPECT_EQ(compact_labels({}), (std::vector<std::uint32_t>{}));
}

// --- NMI ----------------------------------------------------------------------

TEST(Nmi, IdenticalPartitions) {
  const std::vector<std::uint32_t> a{0, 0, 1, 1, 2, 2};
  EXPECT_NEAR(normalized_mutual_information(a, a), 1.0, 1e-12);
  // Label names don't matter.
  const std::vector<std::uint32_t> renamed{5, 5, 9, 9, 1, 1};
  EXPECT_NEAR(normalized_mutual_information(a, renamed), 1.0, 1e-12);
}

TEST(Nmi, IndependentPartitionsNearZero) {
  // Orthogonal split: a = halves, b = parity.
  std::vector<std::uint32_t> a(1000), b(1000);
  for (std::size_t v = 0; v < 1000; ++v) {
    a[v] = v < 500 ? 0 : 1;
    b[v] = static_cast<std::uint32_t>(v % 2);
  }
  EXPECT_NEAR(normalized_mutual_information(a, b), 0.0, 0.01);
}

TEST(Nmi, PartialAgreementBetweenZeroAndOne) {
  std::vector<std::uint32_t> a(100), b(100);
  for (std::size_t v = 0; v < 100; ++v) {
    a[v] = v < 50 ? 0 : 1;
    b[v] = v < 40 ? 0 : 1;  // shifted boundary
  }
  const double nmi = normalized_mutual_information(a, b);
  EXPECT_GT(nmi, 0.2);
  EXPECT_LT(nmi, 1.0);
}

TEST(Nmi, MismatchedSizesReturnZero) {
  EXPECT_DOUBLE_EQ(normalized_mutual_information({0, 1}, {0}), 0.0);
}

// --- label propagation -----------------------------------------------------------

TEST(LabelPropagation, FindsTwoCliques) {
  // Two K5s joined by a single bridge edge.
  EdgeList edges;
  for (VertexId u = 0; u < 5; ++u)
    for (VertexId v = u + 1; v < 5; ++v) edges.push_back({u, v});
  for (VertexId u = 5; u < 10; ++u)
    for (VertexId v = u + 1; v < 10; ++v) edges.push_back({u, v});
  edges.push_back({4, 5});
  const CsrGraph graph(edges);
  const auto labels = label_propagation(graph, {.seed = 3});
  // All of 0..4 share a label; all of 5..9 share a label.
  for (VertexId v = 1; v < 5; ++v) EXPECT_EQ(labels[v], labels[0]);
  for (VertexId v = 6; v < 10; ++v) EXPECT_EQ(labels[v], labels[5]);
}

TEST(LabelPropagation, IsolatedVerticesKeepOwnLabels) {
  const CsrGraph graph(EdgeList{{0, 1}}, 4);
  const auto labels = label_propagation(graph);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_NE(labels[2], labels[3]);
}

TEST(LabelPropagation, RecoversLfrCommunitiesAtLowMixing) {
  LfrParams params;
  params.n = 2000;
  params.mu = 0.1;  // strong communities
  params.dmin = 8;
  params.dmax = 40;
  params.cmin = 60;
  params.cmax = 300;
  params.seed = 5;
  const LfrGraph planted = generate_lfr(params);
  const CsrGraph graph(planted.edges, params.n);
  const auto detected = label_propagation(graph, {.seed = 9});
  const double nmi =
      normalized_mutual_information(detected, planted.community);
  EXPECT_GT(nmi, 0.85);
}

TEST(LabelPropagation, DegradesAtHighMixing) {
  LfrParams params;
  params.n = 2000;
  params.dmin = 8;
  params.dmax = 40;
  params.cmin = 60;
  params.cmax = 300;
  params.seed = 5;
  params.mu = 0.1;
  const LfrGraph easy = generate_lfr(params);
  params.mu = 0.7;
  const LfrGraph hard = generate_lfr(params);
  const double nmi_easy = normalized_mutual_information(
      label_propagation(CsrGraph(easy.edges, params.n), {.seed = 2}),
      easy.community);
  const double nmi_hard = normalized_mutual_information(
      label_propagation(CsrGraph(hard.edges, params.n), {.seed = 2}),
      hard.community);
  EXPECT_GT(nmi_easy, nmi_hard);
}

}  // namespace
}  // namespace nullgraph
