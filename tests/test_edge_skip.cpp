#include "skip/edge_skip.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "skip/erdos_renyi.hpp"

namespace nullgraph {
namespace {

TEST(EdgeSkip, ProbabilityOneYieldsEveryPair) {
  // Single class of 6 vertices, p = 1: expect all C(6,2) = 15 pairs once.
  const DegreeDistribution dist({{5, 6}});
  ProbabilityMatrix P(1);
  P.set(0, 0, 1.0);
  const EdgeList edges = edge_skip_generate(P, dist);
  EXPECT_EQ(edges.size(), 15u);
  std::set<EdgeKey> keys;
  for (const Edge& e : edges) {
    EXPECT_NE(e.u, e.v);
    EXPECT_LT(e.u, 6u);
    EXPECT_LT(e.v, 6u);
    keys.insert(e.key());
  }
  EXPECT_EQ(keys.size(), 15u);
}

TEST(EdgeSkip, ProbabilityZeroYieldsNothing) {
  const DegreeDistribution dist({{2, 100}});
  ProbabilityMatrix P(1);
  EXPECT_TRUE(edge_skip_generate(P, dist).empty());
}

TEST(EdgeSkip, OffDiagonalFullSpace) {
  // Two classes (4 and 4 vertices); cross probability 1, rest 0: expect
  // exactly the 16 cross pairs, each connecting one vertex per class.
  const DegreeDistribution dist({{1, 4}, {3, 4}});  // ids 0..3 then 4..7
  ProbabilityMatrix P(2);
  P.set(1, 0, 1.0);
  const EdgeList edges = edge_skip_generate(P, dist);
  EXPECT_EQ(edges.size(), 16u);
  for (const Edge& e : edges) {
    const Edge c = e.canonical();
    EXPECT_LT(c.u, 4u);   // low class
    EXPECT_GE(c.v, 4u);   // high class
    EXPECT_LT(c.v, 8u);
  }
  std::set<EdgeKey> keys;
  for (const Edge& e : edges) keys.insert(e.key());
  EXPECT_EQ(keys.size(), 16u);
}

TEST(EdgeSkip, OutputIsAlwaysSimple) {
  const DegreeDistribution dist({{1, 300}, {5, 100}, {20, 10}});
  ProbabilityMatrix P(3);
  P.set(0, 0, 0.01);
  P.set(1, 0, 0.02);
  P.set(1, 1, 0.05);
  P.set(2, 0, 0.3);
  P.set(2, 1, 0.2);
  P.set(2, 2, 0.9);
  const EdgeList edges = edge_skip_generate(P, dist, {.seed = 9});
  EXPECT_TRUE(is_simple(edges));
}

TEST(EdgeSkip, SerialMatchesUnchunkedParallel) {
  const DegreeDistribution dist({{1, 500}, {4, 200}, {30, 20}});
  ProbabilityMatrix P(3);
  P.set(0, 0, 0.002);
  P.set(1, 0, 0.004);
  P.set(1, 1, 0.01);
  P.set(2, 0, 0.05);
  P.set(2, 1, 0.08);
  P.set(2, 2, 0.5);
  EdgeSkipConfig config;
  config.seed = 31337;
  config.edges_per_task = ~0ULL;  // disable splitting
  const EdgeList parallel_edges = edge_skip_generate(P, dist, config);
  const EdgeList serial_edges = edge_skip_generate_serial(P, dist, 31337);
  EXPECT_TRUE(same_edge_multiset(parallel_edges, serial_edges));
}

TEST(EdgeSkip, ChunkingPreservesExpectedCount) {
  // Same space sampled with and without chunk splitting: counts must agree
  // within binomial noise.
  const DegreeDistribution dist({{2, 3000}});
  ProbabilityMatrix P(1);
  const double p = 0.001;
  P.set(0, 0, p);
  const double space = 3000.0 * 2999.0 / 2.0;
  const double expect = p * space;
  const double sigma = std::sqrt(expect * (1 - p));
  EdgeSkipConfig fine;
  fine.seed = 5;
  fine.edges_per_task = 64;  // many chunks
  const double fine_count =
      static_cast<double>(edge_skip_generate(P, dist, fine).size());
  EXPECT_NEAR(fine_count, expect, 5 * sigma);
  EdgeSkipConfig coarse;
  coarse.seed = 5;
  coarse.edges_per_task = ~0ULL;
  const double coarse_count =
      static_cast<double>(edge_skip_generate(P, dist, coarse).size());
  EXPECT_NEAR(coarse_count, expect, 5 * sigma);
}

TEST(EdgeSkip, DeterministicForSeed) {
  const DegreeDistribution dist({{2, 1000}});
  ProbabilityMatrix P(1);
  P.set(0, 0, 0.01);
  const EdgeList a = edge_skip_generate(P, dist, {.seed = 77});
  const EdgeList b = edge_skip_generate(P, dist, {.seed = 77});
  EXPECT_TRUE(same_edge_multiset(a, b));
  const EdgeList c = edge_skip_generate(P, dist, {.seed = 78});
  EXPECT_FALSE(same_edge_multiset(a, c));
}

TEST(EdgeSkip, DiagonalDecodeCoversTriangleExactly) {
  // p = 1 on a diagonal space: decoded pairs must be exactly the
  // lower-triangle enumeration (u > v), no duplicates, no misses.
  const DegreeDistribution dist({{9, 10}});
  ProbabilityMatrix P(1);
  P.set(0, 0, 1.0);
  const EdgeList edges = edge_skip_generate_serial(P, dist, 1);
  ASSERT_EQ(edges.size(), 45u);
  std::set<std::pair<VertexId, VertexId>> seen;
  for (const Edge& e : edges) {
    EXPECT_GT(e.u, e.v);  // decode emits (hi offset + u, lo offset + v)
    seen.insert({e.u, e.v});
  }
  EXPECT_EQ(seen.size(), 45u);
}

class ErdosRenyiSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(ErdosRenyiSweep, EdgeCountWithinBinomialBounds) {
  const auto [n, p] = GetParam();
  const EdgeList edges = erdos_renyi(n, p, 12345);
  const double space = static_cast<double>(n) * (n - 1) / 2.0;
  const double expect = p * space;
  const double sigma = std::sqrt(expect * (1.0 - p));
  EXPECT_NEAR(static_cast<double>(edges.size()), expect,
              5.0 * sigma + 1.0);
  EXPECT_TRUE(is_simple(edges));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ErdosRenyiSweep,
    ::testing::Combine(::testing::Values(100u, 1000u, 5000u),
                       ::testing::Values(0.0005, 0.01, 0.2)));

TEST(ErdosRenyi, EmptyAndTinyGraphs) {
  EXPECT_TRUE(erdos_renyi(0, 0.5).empty());
  EXPECT_TRUE(erdos_renyi(1, 0.5).empty());
  const EdgeList pair = erdos_renyi(2, 1.0);
  ASSERT_EQ(pair.size(), 1u);
}

TEST(ErdosRenyi, VertexIdsInRange) {
  const EdgeList edges = erdos_renyi(50, 0.3, 2);
  for (const Edge& e : edges) {
    EXPECT_LT(e.u, 50u);
    EXPECT_LT(e.v, 50u);
  }
}

}  // namespace
}  // namespace nullgraph
