#include "lfr/hierarchical.hpp"

#include <gtest/gtest.h>
#include <omp.h>

#include <numeric>
#include <stdexcept>

#include "ds/edge_list.hpp"

namespace nullgraph {
namespace {

std::vector<VertexId> iota_members(VertexId begin, VertexId end) {
  std::vector<VertexId> members(end - begin);
  std::iota(members.begin(), members.end(), begin);
  return members;
}

TEST(GenerateHierarchical, SingleFullLayerBehavesLikeNullModel) {
  const std::vector<std::uint64_t> degrees(200, 4);
  const HierarchyLevel level{{iota_members(0, 200), 1.0}};
  const HierarchicalGraph graph = generate_hierarchical(degrees, {level});
  EXPECT_TRUE(is_simple(graph.edges));
  EXPECT_EQ(graph.layers_generated, 1u);
  EXPECT_NEAR(static_cast<double>(graph.edges.size()), 400.0, 60.0);
}

TEST(GenerateHierarchical, TwoLevelSplitPreservesTotalDegree) {
  // Level 1: two halves at lambda 0.5; level 2: global layer at 0.5.
  const std::size_t n = 400;
  const std::vector<std::uint64_t> degrees(n, 8);
  const HierarchyLevel communities{
      {iota_members(0, 200), 0.5},
      {iota_members(200, 400), 0.5},
  };
  const HierarchyLevel global{{iota_members(0, 400), 0.5}};
  const HierarchicalGraph graph =
      generate_hierarchical(degrees, {communities, global});
  EXPECT_EQ(graph.layers_generated, 3u);
  EXPECT_TRUE(is_simple(graph.edges));
  const auto realized = degrees_of(graph.edges, n);
  double mean = 0.0;
  for (std::uint64_t d : realized) mean += static_cast<double>(d);
  mean /= static_cast<double>(n);
  EXPECT_NEAR(mean, 8.0, 0.8);
}

TEST(GenerateHierarchical, OverlappingSubgraphsAllowed) {
  // One vertex block participates in two level-1 subgraphs at 0.25 each
  // plus the global 0.5 layer: shares sum to 1.
  const std::size_t n = 300;
  const std::vector<std::uint64_t> degrees(n, 8);
  const HierarchyLevel level1{
      {iota_members(0, 200), 0.25},
      {iota_members(100, 300), 0.25},
  };
  // Vertices 0..99 and 200..299 are in ONE level-1 subgraph (0.25), the
  // middle 100..199 in two (0.5). Give the outer blocks an extra layer.
  const HierarchyLevel level2{
      {iota_members(0, 100), 0.25},
      {iota_members(200, 300), 0.25},
  };
  const HierarchyLevel global{{iota_members(0, 300), 0.5}};
  const HierarchicalGraph graph =
      generate_hierarchical(degrees, {level1, level2, global});
  EXPECT_TRUE(is_simple(graph.edges));
  EXPECT_EQ(graph.layers_generated, 5u);
}

TEST(GenerateHierarchical, RejectsBadLambdaSums) {
  const std::vector<std::uint64_t> degrees(100, 4);
  const HierarchyLevel level{{iota_members(0, 100), 0.7}};  // sums to 0.7
  EXPECT_THROW(generate_hierarchical(degrees, {level}),
               std::invalid_argument);
}

TEST(GenerateHierarchical, RejectsNegativeLambda) {
  const std::vector<std::uint64_t> degrees(10, 2);
  const HierarchyLevel level{{iota_members(0, 10), -1.0}};
  EXPECT_THROW(generate_hierarchical(degrees, {level}),
               std::invalid_argument);
}

TEST(GenerateHierarchical, RejectsOutOfRangeMembers) {
  const std::vector<std::uint64_t> degrees(10, 2);
  const HierarchyLevel level{{{5, 20}, 1.0}};
  EXPECT_THROW(generate_hierarchical(degrees, {level}),
               std::invalid_argument);
}

TEST(GenerateHierarchical, ZeroDegreeVerticesNeedNoShares) {
  std::vector<std::uint64_t> degrees(50, 2);
  degrees[49] = 0;
  const HierarchyLevel level{{iota_members(0, 49), 1.0}};
  EXPECT_NO_THROW(generate_hierarchical(degrees, {level}));
}

TEST(GenerateHierarchical, DeterministicPerSeed) {
  // The swap phase resolves rare candidate collisions by atomic race, so
  // strict determinism is a single-thread contract (see README); pin it.
  const int saved_threads = omp_get_max_threads();
  omp_set_num_threads(1);
  const std::vector<std::uint64_t> degrees(100, 6);
  const HierarchyLevel level{{iota_members(0, 100), 1.0}};
  HierarchicalConfig config;
  config.seed = 5;
  const HierarchicalGraph a = generate_hierarchical(degrees, {level}, config);
  const HierarchicalGraph b = generate_hierarchical(degrees, {level}, config);
  EXPECT_TRUE(same_edge_multiset(a.edges, b.edges));
  omp_set_num_threads(saved_threads);
}

}  // namespace
}  // namespace nullgraph
